// Command checkfence checks the consistency of a concurrent data type
// implementation on a bounded symbolic test and a memory model,
// reproducing the black-box interface of the paper's Fig. 1:
//
//	checkfence -impl msn -test Tpc2 -model relaxed
//
// Implementations are the paper's Table 1 study set (ms2, msn,
// lazylist, harris, snark) plus derived variants (-nofence, -bug,
// -dropfence<k>); tests are the Fig. 8 names or raw notation such as
// "e ( ed | de )".
//
// -model may be repeated to check several memory models in one run;
// with -j N the checks run on a worker pool of N workers sharing one
// observation-set cache (the specification is model-independent, so it
// is mined once). Repeated models are by default checked as one model
// sweep: a single selector-guarded encoding solved once per model
// under assumption literals, with mining, preprocessing, and learned
// clauses shared across the sweep (-sweep off restores independent
// checks; verdicts are identical either way).
//
// Resource governance: -timeout, -conflicts, and -mem-mb budget each
// check's wall clock, SAT conflicts per solve, and learned-clause
// memory. A check that exhausts its budgets on every rung of the
// degradation ladder reports UNKNOWN rather than hanging or crashing.
//
// Exit codes (worst result wins, in the order listed):
//
//	2  a check could not run (internal or usage error)
//	1  a check found a violation (FAIL)
//	3  a check exhausted its budgets (UNKNOWN)
//	0  every check passed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
)

// The exit-code contract. Violation and budget exhaustion are
// verdicts, not errors: scripts can distinguish "proved wrong" (1)
// from "ran out of resources" (3) from "could not run" (2).
const (
	exitPass      = 0
	exitViolation = 1
	exitError     = 2
	exitUnknown   = 3
)

// severity orders exit codes by how much they should dominate the
// final code: error > violation > unknown > pass.
func severity(code int) int {
	switch code {
	case exitError:
		return 3
	case exitViolation:
		return 2
	case exitUnknown:
		return 1
	}
	return 0
}

// modelList collects repeated -model flags.
type modelList []memmodel.Model

func (m *modelList) String() string {
	parts := make([]string, len(*m))
	for i, mm := range *m {
		parts[i] = mm.String()
	}
	return strings.Join(parts, ",")
}

func (m *modelList) Set(s string) error {
	// Accept comma-separated values too: -model sc,tso,pso,relaxed.
	for _, part := range strings.Split(s, ",") {
		mm, err := memmodel.Parse(strings.TrimSpace(part))
		if err != nil {
			return err
		}
		*m = append(*m, mm)
	}
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, runs the suite,
// reports to stdout/stderr, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("checkfence", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var models modelList
	var (
		implName  = fs.String("impl", "", "implementation to check (see -list)")
		testName  = fs.String("test", "", "symbolic test name or Fig. 8 notation")
		specSrc   = fs.String("spec", "sat", "specification source: sat (mine from implementation) or refset")
		backend   = fs.String("backend", "auto", "verdict engine: auto (cost-based routing), rf (polynomial reads-from), sat, portfolio, cube")
		noRanges  = fs.Bool("no-range-analysis", false, "disable the range analysis of paper §3.4")
		jobs      = fs.Int("j", 1, "number of checks run concurrently (0 = GOMAXPROCS)")
		portfolio = fs.Int("portfolio", 0, "race this many diversified SAT configurations per solve (shared formula)")
		shareCls  = fs.Bool("share-clauses", false, "let portfolio members exchange low-LBD learned clauses")
		cube      = fs.Int("cube", 0, "cube-and-conquer the inclusion check and partition mining on this many workers")
		maxMine   = fs.Int("max-mine-iterations", 0, "cap mining enumeration iterations (0 = default)")
		cacheDir  = fs.String("spec-cache-dir", "", "persist mined observation sets in this directory")
		timeout   = fs.Duration("timeout", 0, "wall-clock budget per check; an exhausted check reports UNKNOWN, exit 3 (0 = none)")
		conflicts = fs.Int64("conflicts", 0, "SAT conflict budget per solve (0 = none)")
		memMB     = fs.Int("mem-mb", 0, "approximate learned-clause memory budget per solver, in MiB (0 = none)")
		list      = fs.Bool("list", false, "list implementations and tests")
		showSpec  = fs.Bool("show-spec", false, "print the mined observation set")
		stats     = fs.Bool("stats", false, "print Fig. 10-style statistics")
		simplify  = fs.Int("simplify", 0, "circuit simplification: 0 = full (default), 1/2 = AIG rewriting level, -1 = off (classic Tseitin)")
		noPreproc = fs.Bool("no-preprocess", false, "disable SatELite-style CNF preprocessing before solving")
		inproc    = fs.Bool("inprocess", true, "enable solver inprocessing (vivification, subsumption, tiered clause DB, chronological backtracking)")
		ordReduce = fs.Bool("order-reduce", true, "enable the model-aware memory-order encoding reduction")
		sweepFlag = fs.String("sweep", "auto", "model-sweep grouping across repeated -model values: auto (one shared encoding solved per model under assumptions) or off (independent checks)")
		validate  = fs.Bool("validate", true, "independently re-check counterexamples (axiom re-verification + interpreter replay)")
		remote    = fs.String("remote", "", "submit the checks to a checkfenced daemon at this base URL (resilient client: retries with backoff, honors Retry-After, falls back to polling on a broken stream)")
	)
	fs.Var(&models, "model", "memory model: sc, tso, pso, relaxed, serial (repeatable)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: checkfence -impl <name> -test <name> [-model sc|tso|pso|relaxed]... [-j N]")
		fmt.Fprintln(stderr, "       checkfence -list")
		fmt.Fprintln(stderr, "exit codes: 0 all checks passed, 1 violation found, 2 internal/usage error,")
		fmt.Fprintln(stderr, "            3 budgets exhausted (UNKNOWN); the worst code wins (2 > 1 > 3 > 0)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	if *list {
		printList(stdout)
		return exitPass
	}
	if *implName == "" || *testName == "" {
		fs.Usage()
		return exitError
	}
	if len(models) == 0 {
		models = modelList{memmodel.Relaxed}
	}
	be, err := core.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintln(stderr, "checkfence:", err)
		return exitError
	}
	sweep, err := core.ParseSweepMode(*sweepFlag)
	if err != nil {
		fmt.Fprintln(stderr, "checkfence:", err)
		return exitError
	}

	if *remote != "" {
		opts := core.Options{
			Model:                models[0],
			Backend:              be,
			DisableRangeAnalysis: *noRanges,
			Portfolio:            *portfolio,
			ShareClauses:         *shareCls,
			Cube:                 *cube,
			MaxMineIterations:    *maxMine,
			SimplifyLevel:        *simplify,
			NoPreprocess:         *noPreproc,
			NoInprocess:          !*inproc,
			NoOrderReduce:        !*ordReduce,
			ConflictBudget:       *conflicts,
			MemBudgetMB:          *memMB,
		}
		if !*validate {
			opts.ValidateTraces = core.ValidateOff
		}
		if *specSrc == "refset" {
			opts.SpecSource = core.SpecRef
		}
		return runRemote(*remote, *implName, *testName, models, opts, *timeout, *stats, stdout, stderr)
	}

	suite := make([]core.Job, len(models))
	for i, model := range models {
		opts := core.Options{
			Model:                model,
			Backend:              be,
			DisableRangeAnalysis: *noRanges,
			Portfolio:            *portfolio,
			ShareClauses:         *shareCls,
			Cube:                 *cube,
			MaxMineIterations:    *maxMine,
			SimplifyLevel:        *simplify,
			NoPreprocess:         *noPreproc,
			NoInprocess:          !*inproc,
			NoOrderReduce:        !*ordReduce,
			Deadline:             *timeout,
			ConflictBudget:       *conflicts,
			MemBudgetMB:          *memMB,
		}
		if !*validate {
			opts.ValidateTraces = core.ValidateOff
		}
		if *specSrc == "refset" {
			opts.SpecSource = core.SpecRef
		}
		suite[i] = core.Job{Impl: *implName, Test: *testName, Opts: opts}
	}

	results := core.RunSuite(suite, core.SuiteOptions{
		Parallelism:  *jobs,
		SpecCacheDir: *cacheDir,
		Sweep:        sweep,
	})

	exit := exitPass
	bump := func(code int) {
		if severity(code) > severity(exit) {
			exit = code
		}
	}
	printed := false
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintln(stderr, "checkfence:", r.Err)
			bump(exitError)
			continue
		}
		if printed {
			fmt.Fprintln(stdout)
		}
		printed = true
		bump(report(stdout, r.Res, *showSpec, *stats))
	}
	return exit
}

// report prints one check result and returns its exit code
// contribution.
func report(w io.Writer, res *core.Result, showSpec, stats bool) int {
	if showSpec && res.Spec != nil {
		fmt.Fprintf(w, "observation set (%d):\n", res.Spec.Len())
		for _, o := range res.Spec.All() {
			fmt.Fprintf(w, "  %s\n", o.Key())
		}
	}
	if stats {
		s := res.Stats
		fmt.Fprintf(w, "backend: %s (router: %s)\n", s.Backend, s.RouterDecision)
		if s.SweepGroups > 0 {
			fmt.Fprintf(w, "sweep: group of %d models, %d selector vars, %d guarded units\n",
				s.SweepModels, s.SelectorVars, s.SelectorUnits)
			if s.EncodesReused > 0 {
				fmt.Fprintf(w, "sweep sharing: encoding reused, %d observations seeded\n", s.SeededObs)
			}
			if s.SweepEarlyExit > 0 {
				fmt.Fprintln(w, "sweep sharing: decided by replaying a stronger model's counterexample")
			}
			if s.FrontCacheHits > 0 {
				fmt.Fprintf(w, "sweep sharing: %d build/unroll cache hits\n", s.FrontCacheHits)
			}
		}
		if s.AutoSerial {
			fmt.Fprintln(w, "auto guard: formula below parallelism thresholds, solved serially")
		}
		if s.RFSteps+s.RFExecs > 0 {
			fmt.Fprintf(w, "rf engine: %d steps, %d consistent of %d executions, %d case splits\n",
				s.RFSteps, s.RFConsistent, s.RFExecs, s.RFSplits)
		}
		fmt.Fprintf(w, "unrolled: %d instrs, %d loads, %d stores\n", s.Instrs, s.Loads, s.Stores)
		fmt.Fprintf(w, "circuit: %d gates\n", s.Gates)
		fmt.Fprintf(w, "cnf: %d vars, %d clauses\n", s.CNFVars, s.CNFClauses)
		if s.OrderVarsFixed+s.OrderVarsMerged > 0 {
			fmt.Fprintf(w, "order reduction: %d vars fixed, %d merged\n", s.OrderVarsFixed, s.OrderVarsMerged)
		}
		if s.PreCNFClauses != s.CNFClauses || s.PreCNFVars != s.CNFVars {
			fmt.Fprintf(w, "preprocessing: %d -> %d clauses in %v (%d vars eliminated, %d subsumed, %d strengthened)\n",
				s.PreCNFClauses, s.CNFClauses, s.PreprocessTime, s.VarsEliminated, s.ClausesSubsumed, s.ClausesStrengthened)
		}
		fmt.Fprintf(w, "observation set: %d (mined in %d iterations)\n", s.ObsSetSize, s.MineIterations)
		if s.SpecCacheHits+s.SpecCacheMisses > 0 {
			fmt.Fprintf(w, "spec cache: %d hits, %d misses\n", s.SpecCacheHits, s.SpecCacheMisses)
		}
		if s.SpecCacheResumed > 0 {
			fmt.Fprintf(w, "spec cache: %d mines resumed from checkpoint\n", s.SpecCacheResumed)
		}
		if s.SpecCacheCorrupt > 0 {
			fmt.Fprintf(w, "spec cache: %d corrupt entries quarantined\n", s.SpecCacheCorrupt)
		}
		if s.Cubes > 0 {
			fmt.Fprintf(w, "cubes: %d issued, %d refuted\n", s.Cubes, s.CubesRefuted)
		}
		if s.SharedExported+s.SharedImported > 0 {
			fmt.Fprintf(w, "clause sharing: %d exported, %d imported, %d useful\n",
				s.SharedExported, s.SharedImported, s.SharedUseful)
		}
		if s.VivifiedLits+s.SubsumedLearnts+s.ChronoBacktracks > 0 {
			fmt.Fprintf(w, "inprocessing: %d lits vivified from %d clauses, %d learnts subsumed, %d chrono backtracks\n",
				s.VivifiedLits, s.VivifiedClauses, s.SubsumedLearnts, s.ChronoBacktracks)
		}
		if s.TierCore+s.TierMid+s.TierLocal > 0 {
			fmt.Fprintf(w, "learnt tiers: %d core, %d mid, %d local\n", s.TierCore, s.TierMid, s.TierLocal)
		}
		fmt.Fprintf(w, "times: probe=%v mine=%v encode=%v refute=%v total=%v\n",
			s.ProbeTime, s.MineTime, s.EncodeTime, s.RefuteTime, s.TotalTime)
		fmt.Fprintf(w, "bound rounds: %d\n", s.BoundRounds)
	}

	switch res.Verdict {
	case core.VerdictUnknown:
		fmt.Fprintf(w, "UNKNOWN: %s / %s on %s (budgets exhausted)\n", res.Impl, res.Test, res.Model)
		printBudget(w, res.Budget)
		return exitUnknown
	case core.VerdictPass:
		fmt.Fprintf(w, "PASS: %s / %s on %s\n", res.Impl, res.Test, res.Model)
		if res.Budget != nil {
			printBudget(w, res.Budget)
		}
		return exitPass
	}
	if res.SeqBug {
		fmt.Fprintf(w, "FAIL: %s / %s has a sequential bug (independent of the memory model)\n",
			res.Impl, res.Test)
	} else {
		fmt.Fprintf(w, "FAIL: %s / %s on %s\n", res.Impl, res.Test, res.Model)
	}
	if res.Budget != nil {
		printBudget(w, res.Budget)
	}
	if res.Cex != nil {
		fmt.Fprintln(w, res.Cex)
	}
	return exitViolation
}

// printBudget summarizes the degradation ladder's exhausted rungs.
func printBudget(w io.Writer, b *core.BudgetReport) {
	if b == nil {
		return
	}
	var limits []string
	if b.Deadline > 0 {
		limits = append(limits, "timeout "+b.Deadline.String())
	}
	if b.ConflictBudget > 0 {
		limits = append(limits, fmt.Sprintf("conflicts %d", b.ConflictBudget))
	}
	if b.MemBudgetMB > 0 {
		limits = append(limits, fmt.Sprintf("mem %d MiB", b.MemBudgetMB))
	}
	if len(limits) > 0 {
		fmt.Fprintf(w, "  budgets: %s\n", strings.Join(limits, ", "))
	}
	for _, r := range b.Rungs {
		cause := r.Budget
		if cause == "" {
			cause = r.Err
		}
		fmt.Fprintf(w, "  rung %-13s exhausted after %v (%s)\n", r.Name, r.Duration.Round(time.Millisecond), cause)
	}
}

func printList(w io.Writer) {
	impls := harness.Implementations()
	names := make([]string, 0, len(impls))
	for n := range impls {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "implementations:")
	for _, n := range names {
		im := impls[n]
		var ops []string
		for _, op := range im.Ops {
			ops = append(ops, op.Mnemonic+"="+op.Func)
		}
		fmt.Fprintf(w, "  %-18s %-6s ops: %s\n", n, im.Kind, strings.Join(ops, " "))
	}
	fmt.Fprintln(w, "\ntests (per kind):")
	for _, im := range []string{"msn", "lazylist", "snark"} {
		impl := impls[im]
		tests, err := harness.TestsFor(impl)
		if err != nil {
			continue
		}
		names := make([]string, 0, len(tests))
		for n := range tests {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "  %s:\n", impl.Kind)
		for _, n := range names {
			fmt.Fprintf(w, "    %-8s\n", n)
		}
	}
}

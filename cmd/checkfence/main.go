// Command checkfence checks the consistency of a concurrent data type
// implementation on a bounded symbolic test and a memory model,
// reproducing the black-box interface of the paper's Fig. 1:
//
//	checkfence -impl msn -test Tpc2 -model relaxed
//
// Implementations are the paper's Table 1 study set (ms2, msn,
// lazylist, harris, snark) plus derived variants (-nofence, -bug,
// -dropfence<k>); tests are the Fig. 8 names or raw notation such as
// "e ( ed | de )".
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"checkfence/internal/core"
	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
)

func main() {
	var (
		implName  = flag.String("impl", "", "implementation to check (see -list)")
		testName  = flag.String("test", "", "symbolic test name or Fig. 8 notation")
		modelName = flag.String("model", "relaxed", "memory model: sc, tso, pso, relaxed, serial")
		specSrc   = flag.String("spec", "sat", "specification source: sat (mine from implementation) or refset")
		noRanges  = flag.Bool("no-range-analysis", false, "disable the range analysis of paper §3.4")
		list      = flag.Bool("list", false, "list implementations and tests")
		showSpec  = flag.Bool("show-spec", false, "print the mined observation set")
		stats     = flag.Bool("stats", false, "print Fig. 10-style statistics")
	)
	flag.Parse()

	if *list {
		printList()
		return
	}
	if *implName == "" || *testName == "" {
		fmt.Fprintln(os.Stderr, "usage: checkfence -impl <name> -test <name> [-model sc|tso|pso|relaxed]")
		fmt.Fprintln(os.Stderr, "       checkfence -list")
		os.Exit(2)
	}

	model, err := memmodel.Parse(*modelName)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{
		Model:                model,
		DisableRangeAnalysis: *noRanges,
	}
	if *specSrc == "refset" {
		opts.SpecSource = core.SpecRef
	}

	res, err := core.Check(*implName, *testName, opts)
	if err != nil {
		fatal(err)
	}

	if *showSpec && res.Spec != nil {
		fmt.Printf("observation set (%d):\n", res.Spec.Len())
		for _, o := range res.Spec.All() {
			fmt.Printf("  %s\n", o.Key())
		}
	}
	if *stats {
		s := res.Stats
		fmt.Printf("unrolled: %d instrs, %d loads, %d stores\n", s.Instrs, s.Loads, s.Stores)
		fmt.Printf("cnf: %d vars, %d clauses\n", s.CNFVars, s.CNFClauses)
		fmt.Printf("observation set: %d (mined in %d iterations)\n", s.ObsSetSize, s.MineIterations)
		fmt.Printf("times: probe=%v mine=%v encode=%v refute=%v total=%v\n",
			s.ProbeTime, s.MineTime, s.EncodeTime, s.RefuteTime, s.TotalTime)
		fmt.Printf("bound rounds: %d\n", s.BoundRounds)
	}

	if res.Pass {
		fmt.Printf("PASS: %s / %s on %s\n", res.Impl, res.Test, res.Model)
		return
	}
	if res.SeqBug {
		fmt.Printf("FAIL: %s / %s has a sequential bug (independent of the memory model)\n",
			res.Impl, res.Test)
	} else {
		fmt.Printf("FAIL: %s / %s on %s\n", res.Impl, res.Test, res.Model)
	}
	if res.Cex != nil {
		fmt.Println(res.Cex)
	}
	os.Exit(1)
}

func printList() {
	impls := harness.Implementations()
	names := make([]string, 0, len(impls))
	for n := range impls {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("implementations:")
	for _, n := range names {
		im := impls[n]
		var ops []string
		for _, op := range im.Ops {
			ops = append(ops, op.Mnemonic+"="+op.Func)
		}
		fmt.Printf("  %-18s %-6s ops: %s\n", n, im.Kind, strings.Join(ops, " "))
	}
	fmt.Println("\ntests (per kind):")
	for _, im := range []string{"msn", "lazylist", "snark"} {
		impl := impls[im]
		tests, err := harness.TestsFor(impl)
		if err != nil {
			continue
		}
		names := make([]string, 0, len(tests))
		for n := range tests {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("  %s:\n", impl.Kind)
		for _, n := range names {
			fmt.Printf("    %-8s\n", n)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "checkfence:", err)
	os.Exit(1)
}

// Command checkfence checks the consistency of a concurrent data type
// implementation on a bounded symbolic test and a memory model,
// reproducing the black-box interface of the paper's Fig. 1:
//
//	checkfence -impl msn -test Tpc2 -model relaxed
//
// Implementations are the paper's Table 1 study set (ms2, msn,
// lazylist, harris, snark) plus derived variants (-nofence, -bug,
// -dropfence<k>); tests are the Fig. 8 names or raw notation such as
// "e ( ed | de )".
//
// -model may be repeated to check several memory models in one run;
// with -j N the checks run on a worker pool of N workers sharing one
// observation-set cache (the specification is model-independent, so it
// is mined once). The exit code is 1 when any check fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"checkfence/internal/core"
	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
)

// modelList collects repeated -model flags.
type modelList []memmodel.Model

func (m *modelList) String() string {
	parts := make([]string, len(*m))
	for i, mm := range *m {
		parts[i] = mm.String()
	}
	return strings.Join(parts, ",")
}

func (m *modelList) Set(s string) error {
	// Accept comma-separated values too: -model sc,tso,pso,relaxed.
	for _, part := range strings.Split(s, ",") {
		mm, err := memmodel.Parse(strings.TrimSpace(part))
		if err != nil {
			return err
		}
		*m = append(*m, mm)
	}
	return nil
}

func main() {
	var models modelList
	var (
		implName  = flag.String("impl", "", "implementation to check (see -list)")
		testName  = flag.String("test", "", "symbolic test name or Fig. 8 notation")
		specSrc   = flag.String("spec", "sat", "specification source: sat (mine from implementation) or refset")
		noRanges  = flag.Bool("no-range-analysis", false, "disable the range analysis of paper §3.4")
		jobs      = flag.Int("j", 1, "number of checks run concurrently (0 = GOMAXPROCS)")
		portfolio = flag.Int("portfolio", 0, "race this many diversified SAT configurations per solve (shared formula)")
		shareCls  = flag.Bool("share-clauses", false, "let portfolio members exchange low-LBD learned clauses")
		cube      = flag.Int("cube", 0, "cube-and-conquer the inclusion check and partition mining on this many workers")
		maxMine   = flag.Int("max-mine-iterations", 0, "cap mining enumeration iterations (0 = default)")
		cacheDir  = flag.String("spec-cache-dir", "", "persist mined observation sets in this directory")
		list      = flag.Bool("list", false, "list implementations and tests")
		showSpec  = flag.Bool("show-spec", false, "print the mined observation set")
		stats     = flag.Bool("stats", false, "print Fig. 10-style statistics")
		simplify  = flag.Int("simplify", 0, "circuit simplification: 0 = full (default), 1/2 = AIG rewriting level, -1 = off (classic Tseitin)")
		noPreproc = flag.Bool("no-preprocess", false, "disable SatELite-style CNF preprocessing before solving")
		validate  = flag.Bool("validate", true, "independently re-check counterexamples (axiom re-verification + interpreter replay)")
	)
	flag.Var(&models, "model", "memory model: sc, tso, pso, relaxed, serial (repeatable)")
	flag.Parse()

	if *list {
		printList()
		return
	}
	if *implName == "" || *testName == "" {
		fmt.Fprintln(os.Stderr, "usage: checkfence -impl <name> -test <name> [-model sc|tso|pso|relaxed]... [-j N]")
		fmt.Fprintln(os.Stderr, "       checkfence -list")
		os.Exit(2)
	}
	if len(models) == 0 {
		models = modelList{memmodel.Relaxed}
	}

	suite := make([]core.Job, len(models))
	for i, model := range models {
		opts := core.Options{
			Model:                model,
			DisableRangeAnalysis: *noRanges,
			Portfolio:            *portfolio,
			ShareClauses:         *shareCls,
			Cube:                 *cube,
			MaxMineIterations:    *maxMine,
			SimplifyLevel:        *simplify,
			NoPreprocess:         *noPreproc,
		}
		if !*validate {
			opts.ValidateTraces = core.ValidateOff
		}
		if *specSrc == "refset" {
			opts.SpecSource = core.SpecRef
		}
		suite[i] = core.Job{Impl: *implName, Test: *testName, Opts: opts}
	}

	results := core.RunSuite(suite, core.SuiteOptions{
		Parallelism:  *jobs,
		SpecCacheDir: *cacheDir,
	})

	exit := 0
	for i, r := range results {
		if r.Err != nil {
			fmt.Fprintln(os.Stderr, "checkfence:", r.Err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		if !report(r.Res, *showSpec, *stats) {
			exit = 1
		}
	}
	os.Exit(exit)
}

// report prints one check result and returns whether it passed.
func report(res *core.Result, showSpec, stats bool) bool {
	if showSpec && res.Spec != nil {
		fmt.Printf("observation set (%d):\n", res.Spec.Len())
		for _, o := range res.Spec.All() {
			fmt.Printf("  %s\n", o.Key())
		}
	}
	if stats {
		s := res.Stats
		fmt.Printf("unrolled: %d instrs, %d loads, %d stores\n", s.Instrs, s.Loads, s.Stores)
		fmt.Printf("circuit: %d gates\n", s.Gates)
		fmt.Printf("cnf: %d vars, %d clauses\n", s.CNFVars, s.CNFClauses)
		if s.PreCNFClauses != s.CNFClauses || s.PreCNFVars != s.CNFVars {
			fmt.Printf("preprocessing: %d -> %d clauses in %v (%d vars eliminated, %d subsumed, %d strengthened)\n",
				s.PreCNFClauses, s.CNFClauses, s.PreprocessTime, s.VarsEliminated, s.ClausesSubsumed, s.ClausesStrengthened)
		}
		fmt.Printf("observation set: %d (mined in %d iterations)\n", s.ObsSetSize, s.MineIterations)
		if s.SpecCacheHits+s.SpecCacheMisses > 0 {
			fmt.Printf("spec cache: %d hits, %d misses\n", s.SpecCacheHits, s.SpecCacheMisses)
		}
		if s.Cubes > 0 {
			fmt.Printf("cubes: %d issued, %d refuted\n", s.Cubes, s.CubesRefuted)
		}
		if s.SharedExported+s.SharedImported > 0 {
			fmt.Printf("clause sharing: %d exported, %d imported, %d useful\n",
				s.SharedExported, s.SharedImported, s.SharedUseful)
		}
		fmt.Printf("times: probe=%v mine=%v encode=%v refute=%v total=%v\n",
			s.ProbeTime, s.MineTime, s.EncodeTime, s.RefuteTime, s.TotalTime)
		fmt.Printf("bound rounds: %d\n", s.BoundRounds)
	}

	if res.Pass {
		fmt.Printf("PASS: %s / %s on %s\n", res.Impl, res.Test, res.Model)
		return true
	}
	if res.SeqBug {
		fmt.Printf("FAIL: %s / %s has a sequential bug (independent of the memory model)\n",
			res.Impl, res.Test)
	} else {
		fmt.Printf("FAIL: %s / %s on %s\n", res.Impl, res.Test, res.Model)
	}
	if res.Cex != nil {
		fmt.Println(res.Cex)
	}
	return false
}

func printList() {
	impls := harness.Implementations()
	names := make([]string, 0, len(impls))
	for n := range impls {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("implementations:")
	for _, n := range names {
		im := impls[n]
		var ops []string
		for _, op := range im.Ops {
			ops = append(ops, op.Mnemonic+"="+op.Func)
		}
		fmt.Printf("  %-18s %-6s ops: %s\n", n, im.Kind, strings.Join(ops, " "))
	}
	fmt.Println("\ntests (per kind):")
	for _, im := range []string{"msn", "lazylist", "snark"} {
		impl := impls[im]
		tests, err := harness.TestsFor(impl)
		if err != nil {
			continue
		}
		names := make([]string, 0, len(tests))
		for n := range tests {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("  %s:\n", impl.Kind)
		for _, n := range names {
			fmt.Printf("    %-8s\n", n)
		}
	}
}

package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"checkfence/internal/daemon"
)

// TestExitCodes pins the CLI's exit-code contract: 0 all pass, 1 a
// violation, 2 internal/usage error, 3 budgets exhausted (UNKNOWN),
// with the worst code winning across -model runs (2 > 1 > 3 > 0).
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		want    int
		wantOut string // substring of stdout, "" = don't care
		wantErr string // substring of stderr, "" = don't care
	}{
		{
			name: "usage error",
			args: []string{"-impl", "ms2"},
			want: exitError, wantErr: "usage:",
		},
		{
			name: "unknown implementation",
			args: []string{"-impl", "no-such-impl", "-test", "T0"},
			want: exitError, wantErr: "no-such-impl",
		},
		{
			name: "unknown flag",
			args: []string{"-definitely-not-a-flag"},
			want: exitError,
		},
		{
			name: "list",
			args: []string{"-list"},
			want: exitPass, wantOut: "implementations:",
		},
		{
			name: "pass",
			args: []string{"-impl", "ms2", "-test", "T0", "-model", "sc"},
			want: exitPass, wantOut: "PASS: ms2 / T0 on sc",
		},
		{
			name: "violation",
			args: []string{"-impl", "ms2-nofence", "-test", "T0", "-model", "relaxed"},
			want: exitViolation, wantOut: "FAIL: ms2-nofence / T0 on relaxed",
		},
		{
			name: "budget exhausted",
			args: []string{"-impl", "snark", "-test", "Da", "-model", "relaxed", "-timeout", "30ms"},
			want: exitUnknown, wantOut: "UNKNOWN: snark / Da on relaxed",
		},
		{
			name: "violation outranks pass",
			args: []string{"-impl", "ms2-nofence", "-test", "T0", "-model", "serial,relaxed"},
			want: exitViolation,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Errorf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					got, tc.want, stdout.String(), stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
		})
	}
}

// TestSeverityOrder locks the worst-code-wins ordering itself.
func TestSeverityOrder(t *testing.T) {
	order := []int{exitError, exitViolation, exitUnknown, exitPass}
	for i := 0; i < len(order)-1; i++ {
		if severity(order[i]) <= severity(order[i+1]) {
			t.Errorf("severity(%d) = %d not above severity(%d) = %d",
				order[i], severity(order[i]), order[i+1], severity(order[i+1]))
		}
	}
}

// TestUnknownReportsRungs: the UNKNOWN report names the configured
// budget and at least one exhausted ladder rung.
func TestUnknownReportsRungs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	got := run([]string{"-impl", "snark", "-test", "Da", "-timeout", "30ms"}, &stdout, &stderr)
	if got != exitUnknown {
		t.Fatalf("exit = %d, want %d\nstderr: %s", got, exitUnknown, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "budgets: timeout 30ms") {
		t.Errorf("report missing budget line:\n%s", out)
	}
	if !strings.Contains(out, "rung ") {
		t.Errorf("report missing rung lines:\n%s", out)
	}
}

// TestRemoteMatchesLocal: -remote against a live daemon must print the
// same verdicts and exit code as a local run.
func TestRemoteMatchesLocal(t *testing.T) {
	srv := daemon.NewServer(daemon.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, tc := range []struct {
		args []string
		exit int
	}{
		{[]string{"-impl", "msn", "-test", "T0", "-model", "sc,tso"}, exitPass},
		{[]string{"-impl", "msn-nofence", "-test", "T0", "-model", "relaxed"}, exitViolation},
	} {
		var lout, lerr, rout, rerr bytes.Buffer
		local := run(tc.args, &lout, &lerr)
		remote := run(append([]string{"-remote", ts.URL}, tc.args...), &rout, &rerr)
		if local != tc.exit || remote != tc.exit {
			t.Fatalf("%v: local exit %d, remote exit %d, want %d\nremote stderr: %s",
				tc.args, local, remote, tc.exit, rerr.String())
		}
		for _, want := range []string{"PASS:", "FAIL:"} {
			if strings.Contains(lout.String(), want) != strings.Contains(rout.String(), want) {
				t.Errorf("%v: verdict lines differ\nlocal:\n%s\nremote:\n%s",
					tc.args, lout.String(), rout.String())
			}
		}
	}
}

// TestRemoteRetriesSaturatedDaemon: a 503 + Retry-After submission must
// be retried, not surfaced as a failure.
func TestRemoteRetriesSaturatedDaemon(t *testing.T) {
	srv := daemon.NewServer(daemon.Config{})
	var rejected atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/check" && rejected.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "admission gate saturated", http.StatusServiceUnavailable)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	var stdout, stderr bytes.Buffer
	got := run([]string{"-remote", proxy.URL, "-impl", "ms2", "-test", "T0", "-model", "sc"}, &stdout, &stderr)
	if got != exitPass {
		t.Fatalf("exit = %d, want %d\nstderr: %s", got, exitPass, stderr.String())
	}
	if rejected.Load() < 2 {
		t.Fatalf("daemon saw %d submissions, want a retry after the 503", rejected.Load())
	}
	if !strings.Contains(stdout.String(), "PASS:") {
		t.Errorf("missing PASS line:\n%s", stdout.String())
	}
}

package main

// Remote mode: -remote URL submits the checks to a running checkfenced
// daemon instead of solving them in-process, and renders the streamed
// NDJSON verdicts with the same exit-code contract as local runs.
//
// The client path is built to survive a flaky daemon or network:
//
//   - Submission retries with exponential backoff plus jitter on
//     connection errors and 5xx, and honors Retry-After when the
//     daemon sheds load (503 "admission gate saturated").
//   - The verdict stream has no overall timeout (solves take as long
//     as they take) but a response-header timeout, so a hung daemon
//     fails fast instead of hanging the CLI.
//   - If the stream breaks after the batch was admitted, the client
//     falls back to polling GET /v1/jobs/{id} for the verdicts it has
//     not yet seen (the daemon finishes admitted batches even when the
//     submitting connection dies); polls ride fleet.RetryClient with
//     per-request timeouts and the same backoff policy.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/daemon"
	"checkfence/internal/fleet"
	"checkfence/internal/job"
	"checkfence/internal/memmodel"
)

// remoteRunner holds the wiring of one remote submission.
type remoteRunner struct {
	base   string // daemon base URL, no trailing slash
	client *http.Client
	poll   fleet.RetryClient
	stdout io.Writer
	stderr io.Writer
	stats  bool
}

// runRemote submits one batch (impl/test across the given models) to
// the daemon and reports each verdict, returning the process exit
// code. opts is the per-model-independent option set; model selection
// rides the batch entry's Models list.
func runRemote(base string, implName, testName string, models []memmodel.Model,
	opts core.Options, timeout time.Duration, stats bool, stdout, stderr io.Writer) int {

	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.String()
	}
	req := daemon.BatchRequest{
		Jobs: []daemon.BatchJob{{
			Check:  job.FromOptions(implName, testName, opts),
			Models: names,
		}},
		Timeout: job.Duration(timeout),
	}

	r := &remoteRunner{
		base: strings.TrimRight(base, "/"),
		client: &http.Client{
			// No overall timeout: the response streams for as long as
			// the solves run. A header timeout still bounds a daemon
			// that accepts the connection and then hangs.
			Transport: &http.Transport{ResponseHeaderTimeout: 30 * time.Second},
		},
		stdout: stdout,
		stderr: stderr,
		stats:  stats,
	}
	exit, err := r.run(context.Background(), &req)
	if err != nil {
		fmt.Fprintln(stderr, "checkfence:", err)
		return exitError
	}
	return exit
}

// run submits the batch and consumes verdicts, falling back to the
// poll path on a broken stream.
func (r *remoteRunner) run(ctx context.Context, req *daemon.BatchRequest) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return exitError, err
	}
	resp, err := r.submit(ctx, body)
	if err != nil {
		return exitError, err
	}
	defer resp.Body.Close()

	exit := exitPass
	bump := func(code int) {
		if severity(code) > severity(exit) {
			exit = code
		}
	}

	var ids []string
	seen := map[string]bool{}
	printed := false
	emit := func(line *daemon.ResultLine) {
		if seen[line.ID] {
			return
		}
		seen[line.ID] = true
		if printed {
			fmt.Fprintln(r.stdout)
		}
		printed = true
		bump(r.report(line))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	streamDone := false
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			continue
		}
		switch head.Type {
		case "batch":
			var b daemon.BatchLine
			if err := json.Unmarshal(raw, &b); err == nil {
				ids = b.Jobs
			}
		case "result":
			var line daemon.ResultLine
			if err := json.Unmarshal(raw, &line); err == nil {
				emit(&line)
			}
		case "done":
			streamDone = true
		}
	}
	if err := sc.Err(); err != nil && !streamDone {
		fmt.Fprintf(r.stderr, "checkfence: verdict stream broken (%v), polling for remaining jobs\n", err)
	}
	if streamDone && len(seen) >= len(ids) {
		return exit, nil
	}
	if len(ids) == 0 {
		// The stream died before the batch header: nothing admitted
		// that we know of, so there is nothing to poll for.
		return exitError, fmt.Errorf("verdict stream ended before the batch was acknowledged")
	}
	// The batch was admitted; collect the verdicts we missed by
	// polling. The daemon hints Retry-After: 1 while a job runs.
	for _, id := range ids {
		if seen[id] {
			continue
		}
		line, err := r.pollJob(ctx, id)
		if err != nil {
			fmt.Fprintf(r.stderr, "checkfence: polling job %s: %v\n", id, err)
			bump(exitError)
			continue
		}
		emit(line)
	}
	return exit, nil
}

// submit posts the batch, retrying with backoff on transient failures
// and honoring the daemon's Retry-After when it sheds load. Returns
// the open streaming response.
func (r *remoteRunner) submit(ctx context.Context, body []byte) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt <= 4; attempt++ {
		if attempt > 0 {
			d := backoffDelay(attempt)
			if hint := retryAfterOf(lastErr); hint > d {
				d = hint
			}
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			r.base+"/v1/check", strings.NewReader(string(body)))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 200 && resp.StatusCode <= 299 {
			return resp, nil
		}
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		serr := &fleet.StatusError{Code: resp.StatusCode, Body: strings.TrimSpace(string(b))}
		if resp.StatusCode != http.StatusTooManyRequests &&
			resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode < 500 {
			return nil, serr
		}
		if s := resp.Header.Get("Retry-After"); s != "" {
			if n, perr := strconv.Atoi(s); perr == nil && n > 0 {
				lastErr = &retryAfterError{err: serr, after: time.Duration(n) * time.Second}
				continue
			}
		}
		lastErr = serr
	}
	return nil, fmt.Errorf("submitting batch: %w", lastErr)
}

// retryAfterError wraps a transient submit failure with the server's
// Retry-After hint.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

func retryAfterOf(err error) time.Duration {
	if ra, ok := err.(*retryAfterError); ok {
		return ra.after
	}
	return 0
}

// backoffDelay is the submit backoff for re-attempt n (1-based):
// exponential from 200ms, capped at 5s, with up to 50% jitter.
func backoffDelay(n int) time.Duration {
	d := 200 * time.Millisecond << uint(n-1)
	if d > 5*time.Second || d <= 0 {
		d = 5 * time.Second
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// pollJob polls GET /v1/jobs/{id} until the job is done. Transport
// failures within one poll ride fleet.RetryClient's backoff; between
// polls the client sleeps the daemon's hinted second.
func (r *remoteRunner) pollJob(ctx context.Context, id string) (*daemon.ResultLine, error) {
	url := r.base + "/v1/jobs/" + id
	for {
		var st daemon.JobStatus
		if err := r.poll.GetJSON(ctx, url, &st); err != nil {
			return nil, err
		}
		if st.State == "done" && st.Result != nil {
			return st.Result, nil
		}
		select {
		case <-time.After(time.Second):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// report renders one remote verdict with the local exit-code contract.
func (r *remoteRunner) report(line *daemon.ResultLine) int {
	w := r.stdout
	if line.Error != "" {
		fmt.Fprintln(r.stderr, "checkfence:", line.Error)
		return exitError
	}
	if r.stats && line.Stats != nil {
		s := line.Stats
		if s.RouterDecision != "" {
			fmt.Fprintf(w, "backend: %s (router: %s)\n", s.Backend, s.RouterDecision)
		} else if s.Backend != "" {
			fmt.Fprintf(w, "backend: %s\n", s.Backend)
		}
		if s.CNFVars+s.CNFClauses > 0 {
			fmt.Fprintf(w, "cnf: %d vars, %d clauses\n", s.CNFVars, s.CNFClauses)
		}
		fmt.Fprintf(w, "observation set: %d\n", s.ObsSetSize)
		if s.CacheHits+s.CacheMisses > 0 {
			fmt.Fprintf(w, "spec cache: %d hits, %d misses\n", s.CacheHits, s.CacheMisses)
		}
		if s.TotalTime != "" {
			fmt.Fprintf(w, "times: total=%s\n", s.TotalTime)
		}
	}
	printRungs := func() {
		if line.Budget == nil {
			return
		}
		for _, rung := range line.Budget.Rungs {
			fmt.Fprintf(w, "  rung %s exhausted\n", rung)
		}
	}
	switch line.Verdict {
	case "unknown":
		fmt.Fprintf(w, "UNKNOWN: %s / %s on %s (budgets exhausted)\n", line.Impl, line.Test, line.Model)
		printRungs()
		return exitUnknown
	case "pass":
		fmt.Fprintf(w, "PASS: %s / %s on %s\n", line.Impl, line.Test, line.Model)
		printRungs()
		return exitPass
	}
	if line.SeqBug {
		fmt.Fprintf(w, "FAIL: %s / %s has a sequential bug (independent of the memory model)\n",
			line.Impl, line.Test)
	} else {
		fmt.Fprintf(w, "FAIL: %s / %s on %s\n", line.Impl, line.Test, line.Model)
	}
	printRungs()
	if line.Cex != "" {
		fmt.Fprintln(w, line.Cex)
	}
	return exitViolation
}

// Command benchtab regenerates the tables and figures of the paper's
// evaluation (Section 4) from the Go reproduction:
//
//	benchtab -table 1          Table 1: the implementations studied
//	benchtab -table 10a        Fig. 10a: inclusion-check statistics
//	benchtab -fig 10b          Fig. 10b: time/size vs. memory accesses
//	benchtab -fig 11a          Fig. 11a: specification mining (incl. refset)
//	benchtab -fig 11b          Fig. 11b: average runtime breakdown
//	benchtab -fig 11c          Fig. 11c: range analysis on/off
//	benchtab -fig 12           Fig. 12: observation-set vs. commit-point method
//	benchtab -table fences     §4.2: fence sufficiency/necessity matrix
//	benchtab -fig sc-vs-relaxed §4.4: model choice impact on runtime
//	benchtab -fig encode       formula minimization on/off (writes BENCH_encode.json)
//	benchtab -fig solve        intra-check parallelism: serial vs portfolio vs cube (writes BENCH_solve.json)
//	benchtab -fig backend      multi-backend routing: rf vs SAT, auto vs forced (writes BENCH_backend.json)
//	benchtab -fig sweep        model-sweep grouping: shared encoding vs independent checks (writes BENCH_sweep.json)
//	benchtab -fig daemon       checking as a service: HTTP batch vs direct suite (writes BENCH_daemon.json)
//	benchtab -fig fleet        distributed fan-out: serial vs 1 vs 3 fleet workers (writes BENCH_fleet.json)
//
// Absolute times differ from the paper's 2007 testbed; the shapes
// (growth trends, ratios, who wins) are the reproduction target. Use
// -budget to bound per-check time and -quick to restrict to the small
// tests.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"checkfence/internal/bench"
)

func main() {
	var (
		table   = flag.String("table", "", "regenerate a table: 1, 10a, fences")
		fig     = flag.String("fig", "", "regenerate a figure: 10b, 11a, 11b, 11c, 12, sc-vs-relaxed")
		quick   = flag.Bool("quick", false, "restrict to small tests (fast)")
		budget  = flag.Duration("budget", 10*time.Minute, "per-check time budget (checks expected to exceed it are skipped)")
		jobs    = flag.Int("j", 1, "number of checks run concurrently (> 1 disables -budget's early exit)")
		encJSON = flag.String("encode-json", "BENCH_encode.json", "artifact path for -fig encode (\"\" = print only)")
		slvJSON = flag.String("solve-json", "BENCH_solve.json", "artifact path for -fig solve (\"\" = print only)")
		bakJSON = flag.String("backend-json", "BENCH_backend.json", "artifact path for -fig backend (\"\" = print only)")
		swpJSON = flag.String("sweep-json", "BENCH_sweep.json", "artifact path for -fig sweep (\"\" = print only)")
		dmnJSON = flag.String("daemon-json", "BENCH_daemon.json", "artifact path for -fig daemon (\"\" = print only)")
		fltJSON = flag.String("fleet-json", "BENCH_fleet.json", "artifact path for -fig fleet (\"\" = print only)")
		width   = flag.Int("width", 4, "worker count for -fig solve (portfolio members / cube workers)")
	)
	flag.Parse()

	r := bench.Runner{Quick: *quick, Budget: *budget, Out: os.Stdout, Jobs: *jobs}
	var err error
	switch {
	case *table == "1":
		err = r.Table1()
	case *table == "10a":
		err = r.Fig10a()
	case *table == "fences":
		err = r.FenceTable()
	case *fig == "10b":
		err = r.Fig10b()
	case *fig == "11a":
		err = r.Fig11a()
	case *fig == "11b":
		err = r.Fig11b()
	case *fig == "11c":
		err = r.Fig11c()
	case *fig == "12":
		err = r.Fig12()
	case *fig == "sc-vs-relaxed":
		err = r.ModelChoice()
	case *fig == "encode":
		err = r.EncodeReport(*encJSON)
	case *fig == "solve":
		err = r.SolveReport(*slvJSON, *width)
	case *fig == "backend":
		err = r.BackendReport(*bakJSON)
	case *fig == "sweep":
		err = r.SweepReport(*swpJSON)
	case *fig == "daemon":
		err = r.DaemonReport(*dmnJSON)
	case *fig == "fleet":
		err = r.FleetReport(*fltJSON)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

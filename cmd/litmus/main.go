// Command litmus runs classic memory-model litmus tests against the
// axiomatic models, including the IRIW execution of the paper's
// Fig. 2 (possible on PowerPC/IA-32/IA-64, but not on Relaxed, which
// globally orders stores).
//
//	litmus            # run all litmus tests on all models
//	litmus iriw sb    # run selected tests
package main

import (
	"fmt"
	"os"

	"checkfence/internal/litmus"
	"checkfence/internal/memmodel"
)

func main() {
	selected := map[string]bool{}
	for _, a := range os.Args[1:] {
		selected[a] = true
	}
	models := []memmodel.Model{memmodel.SequentialConsistency, memmodel.TSO, memmodel.PSO, memmodel.Relaxed}
	failures := 0
	for _, t := range litmus.Tests() {
		if len(selected) > 0 && !selected[t.Name] {
			continue
		}
		fmt.Printf("%-12s %s\n", t.Name, t.Desc)
		for _, m := range models {
			observable, err := t.Observable(m)
			if err != nil {
				fmt.Fprintln(os.Stderr, "litmus:", err)
				os.Exit(1)
			}
			expect := t.AllowedOn[m]
			status := "ok"
			if observable != expect {
				status = "UNEXPECTED"
				failures++
			}
			fmt.Printf("    %-8s observable=%-5v expected=%-5v %s\n", m, observable, expect, status)
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// Command checkfenced serves CheckFence verification over HTTP:
// POST /v1/check accepts a batch of serializable check descriptions
// and streams NDJSON verdicts; GET /v1/jobs/{id} polls a finished
// job; GET /metrics exposes Prometheus-format counters (verdicts,
// router decisions, sweep groups, spec cache traffic, budget
// exhaustions); GET /healthz answers liveness probes.
//
// All batches share one admission gate bounding concurrent solver
// work and one spec cache whose disk tier (-spec-cache-dir) is
// content-addressed: concurrent clients requesting the same mining
// problem trigger exactly one miner. SIGINT/SIGTERM drain in-flight
// batches for -drain, then cancel the rest; interrupted miners leave
// resumable checkpoints in the cache directory.
//
// Distributed mode: -coordinator turns the daemon into a fleet
// coordinator — checks are split into cube tasks (internal/fleet) and
// leased to workers polling /fleet/v1/*; every fault class (worker
// crash, hang, partition, duplicate delivery) degrades to
// slower-but-correct via requeue, quarantine, or local fallback, with
// the cause visible on /metrics. -worker URL runs the process as a
// pull worker against such a coordinator instead of serving HTTP.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/daemon"
	"checkfence/internal/fleet"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("checkfenced", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7757", "listen address")
	parallelism := fs.Int("j", 0, "max concurrent check units across all batches (0 = GOMAXPROCS)")
	cacheDir := fs.String("spec-cache-dir", "", "shared on-disk observation-set cache directory")
	timeout := fs.Duration("timeout", 0, "default per-job deadline for jobs without one (0 = none)")
	maxTimeout := fs.Duration("max-timeout", 0, "clamp on per-job deadlines (0 = unclamped)")
	maxBatch := fs.Int("max-batch", 0, "max jobs per batch after model expansion (0 = 256)")
	maxInflight := fs.Int("max-inflight", 0, "max admitted-but-unfinished jobs; excess batches get 503 + Retry-After (0 = unlimited)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain window before cancelling in-flight work")

	coordinator := fs.Bool("coordinator", false, "fleet coordinator mode: fan checks out to workers via /fleet/v1/*")
	workerURL := fs.String("worker", "", "fleet worker mode: pull cube tasks from this coordinator URL")
	workerID := fs.String("worker-id", "", "worker identity (default: host-pid)")
	lease := fs.Duration("lease", 30*time.Second, "coordinator: task lease duration (workers must heartbeat within it)")
	cubeDepth := fs.Int("cube-depth", 2, "coordinator: cube split depth (up to 2^depth cubes per check)")
	fleetRetries := fs.Int("fleet-retries", 3, "coordinator: dispatch attempts per cube before solving it locally")
	speculate := fs.Duration("speculate-after", 0, "coordinator: re-dispatch a straggling cube after this long (0 = never)")
	journalPath := fs.String("fleet-journal", "", "coordinator: crash-recovery journal path (JSON lines)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *workerURL != "" {
		return runWorker(*workerURL, *workerID, *cacheDir)
	}

	cfg := daemon.Config{
		Parallelism:    *parallelism,
		CacheDir:       *cacheDir,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxBatchJobs:   *maxBatch,
		MaxInflight:    *maxInflight,
	}
	var coord *fleet.Coordinator
	if *coordinator {
		var err error
		coord, err = fleet.NewCoordinator(fleet.CoordinatorConfig{
			CubeDepth:      *cubeDepth,
			Lease:          *lease,
			MaxRetries:     *fleetRetries,
			SpeculateAfter: *speculate,
			JournalPath:    *journalPath,
			Local: core.SuiteOptions{
				SpecCacheDir: *cacheDir,
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkfenced: %v\n", err)
			return 2
		}
		defer coord.Close()
		cfg.Fleet = coord
	}

	srv := daemon.NewServer(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkfenced: %v\n", err)
		return 2
	}
	mode := ""
	if coord != nil {
		mode = " (fleet coordinator)"
	}
	fmt.Printf("checkfenced listening on %s%s\n", ln.Addr(), mode)

	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("checkfenced: %v, draining (up to %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "checkfenced: drain cut short: %v\n", err)
		}
		httpSrv.Shutdown(context.Background())
		return 0
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "checkfenced: %v\n", err)
		return 2
	}
}

// runWorker runs the process as a fleet pull worker until interrupted.
func runWorker(url, id, cacheDir string) int {
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		ID:           id,
		URL:          url,
		SpecCacheDir: cacheDir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkfenced: %v\n", err)
		return 2
	}
	fmt.Printf("checkfenced worker %s pulling from %s\n", id, url)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = w.Run(ctx)
	st := w.Stats()
	fmt.Printf("checkfenced worker %s done: %d polled, %d completed, %d abandoned\n",
		id, st.Polled, st.Completed, st.Abandoned)
	if err != nil && err != context.Canceled {
		fmt.Fprintf(os.Stderr, "checkfenced: %v\n", err)
		return 2
	}
	return 0
}

// Command checkfenced serves CheckFence verification over HTTP:
// POST /v1/check accepts a batch of serializable check descriptions
// and streams NDJSON verdicts; GET /v1/jobs/{id} polls a finished
// job; GET /metrics exposes Prometheus-format counters (verdicts,
// router decisions, sweep groups, spec cache traffic, budget
// exhaustions); GET /healthz answers liveness probes.
//
// All batches share one admission gate bounding concurrent solver
// work and one spec cache whose disk tier (-spec-cache-dir) is
// content-addressed: concurrent clients requesting the same mining
// problem trigger exactly one miner. SIGINT/SIGTERM drain in-flight
// batches for -drain, then cancel the rest; interrupted miners leave
// resumable checkpoints in the cache directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"checkfence/internal/daemon"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("checkfenced", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7757", "listen address")
	parallelism := fs.Int("j", 0, "max concurrent check units across all batches (0 = GOMAXPROCS)")
	cacheDir := fs.String("spec-cache-dir", "", "shared on-disk observation-set cache directory")
	timeout := fs.Duration("timeout", 0, "default per-job deadline for jobs without one (0 = none)")
	maxTimeout := fs.Duration("max-timeout", 0, "clamp on per-job deadlines (0 = unclamped)")
	maxBatch := fs.Int("max-batch", 0, "max jobs per batch after model expansion (0 = 256)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain window before cancelling in-flight work")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	srv := daemon.NewServer(daemon.Config{
		Parallelism:    *parallelism,
		CacheDir:       *cacheDir,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxBatchJobs:   *maxBatch,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkfenced: %v\n", err)
		return 2
	}
	fmt.Printf("checkfenced listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("checkfenced: %v, draining (up to %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "checkfenced: drain cut short: %v\n", err)
		}
		httpSrv.Shutdown(context.Background())
		return 0
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "checkfenced: %v\n", err)
		return 2
	}
}

// Custom data type: verify a user-written concurrent data structure —
// a Treiber stack — through the public CheckDataType API, the
// workflow a library author would follow to place fences in their own
// code.
//
//	go run ./examples/customtype
package main

import (
	"fmt"
	"log"
	"strings"

	"checkfence"
)

// The Treiber stack: push and pop synchronize with a CAS on the top
// pointer. Like the study-set algorithms, it needs a store-store
// fence between initializing a node and publishing it, and a
// load-load fence before dereferencing the top pointer.
const treiberStack = `
typedef int value_t;

typedef struct node {
    struct node *next;
    value_t value;
} node_t;

typedef struct stack {
    node_t *top;
} stack_t;

extern void fence(char *type);
extern node_t *new_node();
extern void delete_node(node_t *n);

stack_t stk;

void init_stack(stack_t *s)
{
    s->top = 0;
}

void push(stack_t *s, value_t v)
{
    node_t *n = new_node();
    n->value = v;
    while (true) {
        node_t *top = s->top;
        n->next = top;
        fence("store-store");
        if (cas(&s->top, (unsigned) top, (unsigned) n))
            break;
    }
}

bool pop(stack_t *s, value_t *pvalue)
{
    while (true) {
        node_t *top = s->top;
        fence("load-load");
        if (top == 0)
            return false;
        node_t *next = top->next;
        if (cas(&s->top, (unsigned) top, (unsigned) next)) {
            *pvalue = top->value;
            delete_node(top);
            return true;
        }
    }
}
`

func main() {
	dt := checkfence.DataType{
		Name:     "treiber",
		Source:   checkfence.SyncSource() + treiberStack,
		InitFunc: "init_stack",
		Object:   "stk",
		Ops: []checkfence.Operation{
			{Mnemonic: "u", Func: "push", NumArgs: 1},
			{Mnemonic: "o", Func: "pop", HasRet: true, HasOut: true},
		},
	}

	for _, test := range []string{"( u | o )", "( uu | oo )", "u ( uo | ou )"} {
		res, err := checkfence.CheckDataType(dt, test, checkfence.Options{
			Model: checkfence.Relaxed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("treiber stack %-14s on relaxed: pass=%v (obs set %d, %d clauses)\n",
			test, res.Pass, res.Stats.ObsSetSize, res.Stats.CNFClauses)
		if !res.Pass {
			fmt.Println(res.Cex)
		}
	}

	// Without the publication fence the stack breaks on the relaxed
	// model: a popper can read the node's value before the pusher's
	// initialization reaches memory.
	broken := dt
	broken.Name = "treiber-nofence"
	broken.Source = checkfence.SyncSource() + removeFences(treiberStack)
	res, err := checkfence.CheckDataType(broken, "( u | o )", checkfence.Options{
		Model: checkfence.Relaxed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntreiber stack without fences on relaxed: pass=%v\n", res.Pass)
	if res.Cex != nil {
		fmt.Println(res.Cex)
	}
}

func removeFences(src string) string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		if !strings.Contains(line, `fence("`) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// Fence placement: reproduce the paper's §4.2 workflow — determine
// which memory ordering fences the Michael-Scott queue needs on a
// relaxed memory model, and verify each remaining fence is necessary.
//
//	go run ./examples/fenceplacement
package main

import (
	"fmt"
	"log"

	"checkfence/internal/fenceinfer"
	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
)

func main() {
	impl, err := harness.Get("msn")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("msn carries %d fences (paper Fig. 9)\n", harness.CountFences(impl.Source))
	fmt.Println("minimizing against test T0 on the relaxed model...")

	rep, err := fenceinfer.Minimize("msn", []string{"T0"}, memmodel.Relaxed)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Sufficient {
		log.Fatalf("the full fence set fails test %s", rep.FailedTest)
	}
	fmt.Printf("kept %d fences, removed %d (not exercised by these small tests)\n",
		len(rep.Kept), len(rep.Removed))
	for _, st := range rep.Status {
		if st.Necessary {
			fmt.Printf("  fence #%d is necessary: removing it fails %s\n",
				st.Index, st.FailingTest)
		} else {
			fmt.Printf("  fence #%d is not exercised by these tests\n", st.Index)
		}
	}
	fmt.Println("\nnote: the paper's caveat applies — \"our method may miss some")
	fmt.Println("fences if the tests do not cover the scenarios for which they")
	fmt.Println("are needed\"; larger tests exercise more fences.")
}

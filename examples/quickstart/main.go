// Quickstart: check the Michael-Scott non-blocking queue on the
// relaxed memory model, then show what goes wrong without fences.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"checkfence"
)

func main() {
	// 1. The fenced queue (paper Fig. 9) passes the producer/consumer
	//    test on the relaxed model.
	res, err := checkfence.Check("msn", "Tpc2", checkfence.Options{
		Model: checkfence.Relaxed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("msn / Tpc2 on relaxed: pass=%v (observation set: %d, %d SAT vars, %d clauses)\n",
		res.Pass, res.Stats.ObsSetSize, res.Stats.CNFVars, res.Stats.CNFClauses)

	// 2. The same algorithm as originally published — without memory
	//    ordering fences — fails: the checker produces a
	//    counterexample trace showing the reordered execution.
	res, err = checkfence.Check("msn-nofence", "T0", checkfence.Options{
		Model: checkfence.Relaxed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmsn-nofence / T0 on relaxed: pass=%v\n", res.Pass)
	if res.Cex != nil {
		fmt.Println(res.Cex)
	}

	// 3. On sequential consistency the unfenced version is fine —
	//    the bugs are purely memory-model induced.
	res, err = checkfence.Check("msn-nofence", "T0", checkfence.Options{
		Model: checkfence.SequentialConsistency,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("msn-nofence / T0 on sc: pass=%v\n", res.Pass)
}

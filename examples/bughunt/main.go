// Bug hunt: reproduce the two §4.1 findings of the paper —
//
//  1. the snark DCAS deque is incorrect as published: test D0 exposes
//     a violation quickly, even under sequential consistency, and
//
//  2. the published lazy-list pseudocode forgets to initialize the
//     'marked' field of new nodes; CheckFence flags the use of the
//     undefined value (a bug a prior PVS proof missed because it
//     verified hand-translated code, not the pseudocode).
//
//     go run ./examples/bughunt
package main

import (
	"fmt"
	"log"

	"checkfence"
)

func main() {
	fmt.Println("=== snark deque, test D0, sequential consistency ===")
	res, err := checkfence.Check("snark", "D0", checkfence.Options{
		Model: checkfence.SequentialConsistency,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Pass {
		fmt.Println("unexpected: no violation found")
	} else {
		fmt.Println("violation found (the algorithm is buggy as published):")
		fmt.Println(res.Cex)
	}

	fmt.Println("=== lazylist with the published missing initialization, test Sac ===")
	res, err = checkfence.Check("lazylist-bug", "Sac", checkfence.Options{
		Model: checkfence.SequentialConsistency,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Pass {
		fmt.Println("unexpected: no violation found")
	} else {
		fmt.Println("violation found (uninitialized 'marked' field read):")
		fmt.Println(res.Cex)
	}

	fmt.Println("=== the corrected lazylist passes the same test ===")
	res, err = checkfence.Check("lazylist", "Sac", checkfence.Options{
		Model: checkfence.SequentialConsistency,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lazylist / Sac: pass=%v\n", res.Pass)
}

package checkfence_test

// TestInprocessAblation runs whole checks four ways — both features
// on (the default), inprocessing off, order reduction off, and both
// off — and requires bit-identical verdicts and identical mined
// observation sets. Inprocessing rewrites only the solver's learnt
// database and the order reduction only renames/fixes equivalent
// order variables, so any observable difference is a soundness bug in
// one of them.

import (
	"fmt"
	"runtime"
	"testing"

	"checkfence"
)

func TestInprocessAblation(t *testing.T) {
	type pair struct {
		impl, test string
		model      checkfence.Model
	}
	pairs := []pair{
		{"ms2", "T0", checkfence.SequentialConsistency},
		{"ms2", "T0", checkfence.Relaxed},
		{"msn", "T0", checkfence.TSO},
		{"lazylist", "Sac", checkfence.PSO},
		{"msn-nofence", "T0", checkfence.Relaxed}, // fails: ablations must agree on the failure
	}
	variants := []struct {
		name string
		opts checkfence.Options
	}{
		{"default", checkfence.Options{}},
		{"no-inprocess", checkfence.Options{NoInprocess: true}},
		{"no-order-reduce", checkfence.Options{NoOrderReduce: true}},
		{"both-off", checkfence.Options{NoInprocess: true, NoOrderReduce: true}},
	}

	var jobs []checkfence.Job
	var names []string
	for _, p := range pairs {
		for _, v := range variants {
			opts := v.opts
			opts.Model = p.model
			// Private caches: every variant must actually mine.
			opts.SpecCache = checkfence.NewSpecCache("")
			jobs = append(jobs, checkfence.Job{Impl: p.impl, Test: p.test, Opts: opts})
			names = append(names, fmt.Sprintf("%s/%s/%s/%s", p.impl, p.test, p.model, v.name))
		}
	}
	results := checkfence.CheckSuite(jobs, checkfence.SuiteOptions{
		Parallelism: runtime.GOMAXPROCS(0),
	})

	for i := 0; i+len(variants)-1 < len(results); i += len(variants) {
		base := results[i]
		if base.Err != nil {
			t.Errorf("%s: %v", names[i], base.Err)
			continue
		}
		for off := 1; off < len(variants); off++ {
			abl, name := results[i+off], names[i+off]
			if abl.Err != nil {
				t.Errorf("%s: %v", name, abl.Err)
				continue
			}
			if abl.Res.Pass != base.Res.Pass || abl.Res.SeqBug != base.Res.SeqBug {
				t.Errorf("%s: verdict differs from default: pass=%v seqbug=%v, default pass=%v seqbug=%v",
					name, abl.Res.Pass, abl.Res.SeqBug, base.Res.Pass, base.Res.SeqBug)
			}
			if (abl.Res.Spec == nil) != (base.Res.Spec == nil) {
				t.Errorf("%s: only one ablation mined an observation set", name)
			} else if abl.Res.Spec != nil && !abl.Res.Spec.Equal(base.Res.Spec) {
				t.Errorf("%s: observation set differs from default (%d vs %d)",
					name, abl.Res.Spec.Len(), base.Res.Spec.Len())
			}
			if !abl.Res.Pass && abl.Res.Cex == nil {
				t.Errorf("%s: failed without a counterexample", name)
			}
		}
		// The ablation knobs must actually reach the solver: the default
		// run of a nontrivial check does inprocessing work and reduces
		// order variables; the ablated runs must report none.
		if base.Res.Stats.OrderVarsFixed+base.Res.Stats.OrderVarsMerged == 0 {
			t.Errorf("%s: default run reduced no order variables", names[i])
		}
		for off := 1; off < len(variants); off++ {
			abl, name := results[i+off], names[i+off]
			if abl.Err != nil {
				continue
			}
			switch variants[off].name {
			case "no-inprocess", "both-off":
				if abl.Res.Stats.VivifiedClauses+abl.Res.Stats.SubsumedLearnts+abl.Res.Stats.ChronoBacktracks != 0 {
					t.Errorf("%s: inprocessing counters nonzero with NoInprocess", name)
				}
			}
			switch variants[off].name {
			case "no-order-reduce", "both-off":
				if abl.Res.Stats.OrderVarsFixed+abl.Res.Stats.OrderVarsMerged != 0 {
					t.Errorf("%s: order-reduction counters nonzero with NoOrderReduce", name)
				}
			}
		}
	}
}

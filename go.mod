module checkfence

go 1.22

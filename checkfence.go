// Package checkfence is a Go reproduction of CheckFence (Burckhardt,
// Alur, Martin: "CheckFence: Checking Consistency of Concurrent Data
// Types on Relaxed Memory Models", PLDI 2007).
//
// CheckFence takes the C implementation of a concurrent data type, a
// bounded symbolic test program, and a memory model, and decides
// whether every concurrent execution of the test is observationally
// equivalent to a serial execution — i.e. whether the data type
// appears to its clients to execute operations atomically. If not, it
// produces a counterexample trace.
//
// The pipeline (paper Fig. 3): the C code is compiled to the untyped
// load-store language LSL, operation calls are inlined and loops
// lazily unrolled, a light-weight range analysis bounds values, then
// thread-local semantics and the axiomatic memory model are encoded
// into one propositional formula solved by a built-in CDCL SAT
// solver. A specification is first mined by enumerating the
// observations of serial executions; the inclusion check then asks
// for a concurrent execution whose observation is not in that set.
//
// The five study-set implementations of the paper's Table 1 (ms2,
// msn, lazylist, harris, snark) are bundled; custom C implementations
// can be checked through DataType.
//
// Quick start:
//
//	res, err := checkfence.Check("msn", "T0", checkfence.Options{
//	    Model: checkfence.Relaxed,
//	})
//	if err != nil { ... }
//	if !res.Pass {
//	    fmt.Println(res.Cex) // counterexample trace
//	}
package checkfence

import (
	"fmt"
	"sort"
	"strings"

	"checkfence/internal/core"
	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
	"checkfence/internal/spec"
	"checkfence/internal/trace"
)

// Model is a memory consistency model (paper §2.3).
type Model = memmodel.Model

// The supported memory models.
const (
	// SequentialConsistency requires a global interleaving of all
	// loads and stores respecting program order.
	SequentialConsistency = memmodel.SequentialConsistency
	// Relaxed is the paper's conservative approximation of SPARC
	// TSO/PSO/RMO, Alpha, and IBM 370/390/z: it relaxes ordering and
	// store atomicity as described in §2.3, and is the model fences
	// are placed against.
	Relaxed = memmodel.Relaxed
	// Serial treats operations as atomic; it defines the
	// specification side of the check.
	Serial = memmodel.Serial
	// TSO and PSO instantiate the framework for the stronger SPARC
	// models the paper names in §2.3.3 (extension): TSO relaxes only
	// store→load order, PSO additionally store→store.
	TSO = memmodel.TSO
	PSO = memmodel.PSO
)

// ParseModel converts "sc", "relaxed", or "serial" to a Model.
func ParseModel(s string) (Model, error) { return memmodel.Parse(s) }

// SpecSource selects how the specification (observation set) is
// obtained.
type SpecSource = core.SpecSource

// Specification sources.
const (
	// SpecSAT mines the observation set from the implementation with
	// the iterative SAT procedure of §3.2 (the default).
	SpecSAT = core.SpecSAT
	// SpecRef enumerates it from a built-in sequential reference
	// implementation (the paper's fast "refset" path).
	SpecRef = core.SpecRef
)

// Options configures a check. The zero value checks under sequential
// consistency with SAT-mined specifications and the range analysis
// enabled. Deadline, ConflictBudget, and MemBudgetMB bound the check's
// resources; a budgeted check that cannot finish reports
// VerdictUnknown instead of hanging.
type Options = core.Options

// Backend selects the verdict engine of a check (Options.Backend).
type Backend = core.Backend

// The backends. BackendAuto (the zero value) routes per check: small
// fragment programs go to the polynomial reads-from engine, everything
// else to SAT with a formula-size-aware parallelism choice. The forced
// backends pin one engine; a forced rf backend still degrades to SAT
// when it cannot answer.
const (
	BackendAuto      = core.BackendAuto
	BackendRF        = core.BackendRF
	BackendSAT       = core.BackendSAT
	BackendPortfolio = core.BackendPortfolio
	BackendCube      = core.BackendCube
)

// ParseBackend converts a -backend flag value ("auto", "rf", "sat",
// "portfolio", "cube") to a Backend.
func ParseBackend(s string) (Backend, error) { return core.ParseBackend(s) }

// Result is the outcome of a check. Verdict is three-valued: pass,
// fail (Cex holds the decoded counterexample and SeqBug tells whether
// the failure is already present in serial executions), or unknown
// (every degradation rung exhausted its resource budget; Budget
// explains what was tried). Stats carries the quantities of the
// paper's Fig. 10 table.
type Result = core.Result

// Verdict is the three-valued outcome of a check.
type Verdict = core.Verdict

// The verdicts.
const (
	VerdictPass    = core.VerdictPass
	VerdictFail    = core.VerdictFail
	VerdictUnknown = core.VerdictUnknown
)

// Rung is one step of the degradation ladder (Options.Ladder): a
// named solver strategy a budget-starved check is retried with.
type Rung = core.Rung

// BudgetReport explains a check's resource governance: the configured
// budgets and each exhausted ladder rung. Attached to every
// VerdictUnknown result, and to definitive results that a degraded
// rung produced.
type BudgetReport = core.BudgetReport

// RungReport records one exhausted ladder rung.
type RungReport = core.RungReport

// Stats quantifies one check (unrolled size, CNF size, observation
// set size, and per-phase times).
type Stats = core.Stats

// Trace is a decoded counterexample: the executed accesses in memory
// order with symbolic addresses and values.
type Trace = trace.Trace

// Observation is one vector of operation argument and return values.
type Observation = spec.Observation

// ObservationSet is a set of observations (the specification).
type ObservationSet = spec.Set

// Check verifies a bundled implementation (by name, e.g. "msn",
// "lazylist-bug", "snark-nofence") against a test (a Fig. 8 name such
// as "Tpc2", or raw notation such as "e ( ed | de )").
func Check(impl, test string, opts Options) (*Result, error) {
	return core.Check(impl, test, opts)
}

// Job is one check of a suite: an implementation name, a test name,
// and the per-check options.
type Job = core.Job

// SuiteResult pairs a suite job with its outcome.
type SuiteResult = core.SuiteResult

// SuiteOptions configures CheckSuite (parallelism, cancellation
// context, spec cache sharing, completion callback).
type SuiteOptions = core.SuiteOptions

// SweepMode controls model-sweep grouping in CheckSuite: under
// SweepAuto (the default) jobs identical in everything but Model are
// checked on one shared selector-guarded encoding, solved per model
// under assumption literals with learned clauses carried across the
// sweep; SweepOff checks every job independently. Verdicts and
// observation sets are identical either way.
type SweepMode = core.SweepMode

// The sweep modes.
const (
	SweepAuto = core.SweepAuto
	SweepOff  = core.SweepOff
)

// ParseSweepMode converts a -sweep flag value ("auto", "on", "off")
// to a SweepMode.
func ParseSweepMode(s string) (SweepMode, error) { return core.ParseSweepMode(s) }

// SpecCache memoizes mined observation sets across checks. The
// specification is model-independent (paper §3.2), so a suite checking
// one (implementation, test) pair under several memory models mines
// once. Safe for concurrent use; reusable across suites.
type SpecCache = core.SpecCache

// NewSpecCache returns an empty observation-set cache. A non-empty dir
// enables an on-disk mirror that persists sets across processes.
func NewSpecCache(dir string) *SpecCache { return core.NewSpecCache(dir) }

// CacheStats is a snapshot of a SpecCache's cumulative traffic (hits,
// misses, checkpoint resumes, quarantined entries).
type CacheStats = core.CacheStats

// Gate admission-controls units of work across independent CheckSuite
// calls: every unit (a single check or a whole model-sweep group)
// acquires a slot before running. Several concurrent suites sharing
// one Gate — the checkfenced daemon's batches — are bounded by one
// global concurrency limit instead of multiplying their pool sizes.
type Gate = core.Gate

// NewGate returns a Gate admitting n concurrent units (n <= 0 is
// treated as 1).
func NewGate(n int) Gate { return core.NewGate(n) }

// CheckSuite runs many checks on a bounded worker pool (SuiteOptions
// .Parallelism, default GOMAXPROCS) and returns their results in job
// order, independent of completion order. Observation sets are mined
// at most once per (implementation, test, bounds, spec source) via a
// shared cache. Verdicts and observation sets are identical to running
// the same jobs serially.
func CheckSuite(jobs []Job, opts SuiteOptions) []SuiteResult {
	return core.RunSuite(jobs, opts)
}

// Operation describes one operation of a custom data type.
type Operation struct {
	// Mnemonic is the single- or double-letter shorthand used in test
	// notation (e.g. "e", "d").
	Mnemonic string
	// Func is the C function name. Its first parameter must be a
	// pointer to the shared object; NumArgs value parameters follow;
	// an out-parameter pointer comes last when HasOut is set.
	Func    string
	NumArgs int
	HasRet  bool
	HasOut  bool
}

// DataType describes a custom implementation to check: complete C
// source (the bundled sync primitives cas/dcas/lock/unlock can be
// included with SyncSource), the initialization function, the global
// object passed to every operation, and the operation signatures.
type DataType struct {
	Name     string
	Source   string
	InitFunc string
	Object   string
	Ops      []Operation
	// Kind optionally names a built-in reference semantics ("queue",
	// "set", "deque") enabling SpecRef mining.
	Kind string
}

// SyncSource returns the C source of the bundled synchronization
// library (cas, dcas, lock, unlock and the lock_t type), for
// inclusion in custom data type sources.
func SyncSource() string {
	impls := harness.Implementations()
	// The sync library is embedded in every bundled source; recover
	// it from the registry by construction instead of re-reading.
	msn := impls["msn"]
	// The msn source is sync.c + msn.c; find the queue typedef that
	// starts the msn part.
	const marker = "typedef int value_t;"
	if i := strings.Index(msn.Source, marker); i >= 0 {
		return msn.Source[:i]
	}
	return ""
}

// CheckDataType verifies a custom data type against a test given in
// Fig. 8 notation (e.g. "( e | d )" with the data type's mnemonics).
func CheckDataType(dt DataType, testNotation string, opts Options) (*Result, error) {
	if len(dt.Ops) == 0 {
		return nil, fmt.Errorf("checkfence: data type %q has no operations", dt.Name)
	}
	ops := make([]harness.OpSig, len(dt.Ops))
	for i, op := range dt.Ops {
		ops[i] = harness.OpSig{
			Mnemonic: op.Mnemonic, Func: op.Func,
			NumArgs: op.NumArgs, HasRet: op.HasRet, HasOut: op.HasOut,
		}
	}
	impl := &harness.Impl{
		Name: dt.Name, Kind: dt.Kind, Source: dt.Source,
		InitFunc: dt.InitFunc, Obj: dt.Object, Ops: ops,
	}
	test, err := harness.ParseTest("custom", testNotation, impl)
	if err != nil {
		return nil, err
	}
	return core.CheckImpl(impl, test, opts)
}

// Implementations lists the bundled implementation names.
func Implementations() []string {
	m := harness.Implementations()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Tests lists the Fig. 8 test names applicable to a bundled
// implementation.
func Tests(implName string) ([]string, error) {
	impl, err := harness.Get(implName)
	if err != nil {
		return nil, err
	}
	tests, err := harness.TestsFor(impl)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(tests))
	for n := range tests {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

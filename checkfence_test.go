package checkfence_test

import (
	"strings"
	"testing"

	"checkfence"
)

func TestPublicCheck(t *testing.T) {
	res, err := checkfence.Check("msn", "T0", checkfence.Options{
		Model: checkfence.Relaxed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("msn/T0 must pass; cex:\n%v", res.Cex)
	}
	if res.Spec == nil || res.Spec.Len() == 0 {
		t.Error("result must carry the mined specification")
	}
}

func TestPublicCheckFailure(t *testing.T) {
	res, err := checkfence.Check("msn-nofence", "T0", checkfence.Options{
		Model: checkfence.Relaxed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass || res.Cex == nil {
		t.Fatal("unfenced queue must fail with a trace")
	}
	if !strings.Contains(res.Cex.String(), "memory order") {
		t.Error("trace must render the memory order")
	}
}

func TestImplementationsAndTests(t *testing.T) {
	impls := checkfence.Implementations()
	if len(impls) < 10 {
		t.Errorf("implementations = %v", impls)
	}
	tests, err := checkfence.Tests("msn")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, n := range tests {
		found[n] = true
	}
	for _, want := range []string{"T0", "T1", "Tpc6", "Ti2"} {
		if !found[want] {
			t.Errorf("missing test %s in %v", want, tests)
		}
	}
	if _, err := checkfence.Tests("nosuch"); err == nil {
		t.Error("unknown implementation must fail")
	}
}

func TestParseModel(t *testing.T) {
	for _, name := range []string{"sc", "relaxed", "serial", "tso", "pso"} {
		if _, err := checkfence.ParseModel(name); err != nil {
			t.Errorf("ParseModel(%q): %v", name, err)
		}
	}
}

func TestSyncSourceExported(t *testing.T) {
	src := checkfence.SyncSource()
	for _, fn := range []string{"bool cas(", "bool dcas(", "void lock(", "void unlock("} {
		if !strings.Contains(src, fn) {
			t.Errorf("SyncSource missing %q", fn)
		}
	}
}

func TestCheckDataTypeCounter(t *testing.T) {
	// A trivially racy counter: increments can be lost even under
	// sequential consistency, and CheckFence must say so.
	const counter = `
typedef struct counter { int n; } counter_t;
counter_t c;
extern void fence(char *type);
void init_counter(counter_t *ct) { ct->n = 0; }
int inc(counter_t *ct) {
    int v = ct->n;
    ct->n = v + 1;
    return v;
}
`
	dt := checkfence.DataType{
		Name:     "counter",
		Source:   counter,
		InitFunc: "init_counter",
		Object:   "c",
		Ops: []checkfence.Operation{
			{Mnemonic: "i", Func: "inc", HasRet: true},
		},
	}
	res, err := checkfence.CheckDataType(dt, "( i | i )", checkfence.Options{
		Model: checkfence.SequentialConsistency,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Error("racy counter must fail: both increments can read 0")
	}

	// The same counter with an atomic block is fine.
	const atomicCounter = `
typedef struct counter { int n; } counter_t;
counter_t c;
void init_counter(counter_t *ct) { ct->n = 0; }
int inc(counter_t *ct) {
    int v;
    atomic {
        v = ct->n;
        ct->n = v + 1;
    }
    return v;
}
`
	dt.Source = atomicCounter
	res, err = checkfence.CheckDataType(dt, "( i | i )", checkfence.Options{
		Model: checkfence.SequentialConsistency,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Errorf("atomic counter must pass; cex:\n%v", res.Cex)
	}
}

package checkfence_test

import (
	"strings"
	"sync"
	"testing"

	"checkfence"
)

func TestPublicCheck(t *testing.T) {
	res, err := checkfence.Check("msn", "T0", checkfence.Options{
		Model: checkfence.Relaxed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("msn/T0 must pass; cex:\n%v", res.Cex)
	}
	if res.Spec == nil || res.Spec.Len() == 0 {
		t.Error("result must carry the mined specification")
	}
}

func TestPublicCheckFailure(t *testing.T) {
	res, err := checkfence.Check("msn-nofence", "T0", checkfence.Options{
		Model: checkfence.Relaxed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass || res.Cex == nil {
		t.Fatal("unfenced queue must fail with a trace")
	}
	if !strings.Contains(res.Cex.String(), "memory order") {
		t.Error("trace must render the memory order")
	}
}

// TestConcurrentChecks locks in that two independent Check calls can
// run concurrently (the suite scheduler depends on it); run under
// -race this covers the full pipeline, parser through solver.
func TestConcurrentChecks(t *testing.T) {
	var wg sync.WaitGroup
	run := func(impl, test string, model checkfence.Model, wantPass bool) {
		defer wg.Done()
		res, err := checkfence.Check(impl, test, checkfence.Options{Model: model})
		if err != nil {
			t.Errorf("%s/%s: %v", impl, test, err)
			return
		}
		if res.Pass != wantPass {
			t.Errorf("%s/%s on %v: pass = %v, want %v", impl, test, model, res.Pass, wantPass)
		}
	}
	wg.Add(2)
	go run("ms2", "T0", checkfence.Relaxed, true)
	go run("msn-nofence", "T0", checkfence.PSO, false)
	wg.Wait()
}

// TestPublicCheckSuite exercises the public suite entry point with a
// shared spec cache. The two jobs differ only in model, so the default
// sweep groups them: one group-level mine (one cache miss, no second
// lookup) serves both members.
func TestPublicCheckSuite(t *testing.T) {
	jobs := []checkfence.Job{
		{Impl: "ms2", Test: "T0", Opts: checkfence.Options{Model: checkfence.SequentialConsistency}},
		{Impl: "ms2", Test: "T0", Opts: checkfence.Options{Model: checkfence.Relaxed}},
	}
	results := checkfence.CheckSuite(jobs, checkfence.SuiteOptions{Parallelism: 2})
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	hits, misses := 0, 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if !r.Res.Pass {
			t.Errorf("job %d must pass; cex:\n%v", i, r.Res.Cex)
		}
		hits += r.Res.Stats.SpecCacheHits
		misses += r.Res.Stats.SpecCacheMisses
	}
	if misses != 1 || hits != 0 {
		t.Errorf("spec cache traffic: %d misses, %d hits; want 1 and 0", misses, hits)
	}
	if results[0].Res.Stats.SweepGroups != 1 || results[1].Res.Stats.SweepGroups != 1 {
		t.Error("same-pair model jobs must form one sweep group by default")
	}
	if !results[0].Res.Spec.Equal(results[1].Res.Spec) {
		t.Error("the two jobs must share one observation set")
	}
}

func TestImplementationsAndTests(t *testing.T) {
	impls := checkfence.Implementations()
	if len(impls) < 10 {
		t.Errorf("implementations = %v", impls)
	}
	tests, err := checkfence.Tests("msn")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, n := range tests {
		found[n] = true
	}
	for _, want := range []string{"T0", "T1", "Tpc6", "Ti2"} {
		if !found[want] {
			t.Errorf("missing test %s in %v", want, tests)
		}
	}
	if _, err := checkfence.Tests("nosuch"); err == nil {
		t.Error("unknown implementation must fail")
	}
}

func TestParseModel(t *testing.T) {
	for _, name := range []string{"sc", "relaxed", "serial", "tso", "pso"} {
		if _, err := checkfence.ParseModel(name); err != nil {
			t.Errorf("ParseModel(%q): %v", name, err)
		}
	}
}

func TestSyncSourceExported(t *testing.T) {
	src := checkfence.SyncSource()
	for _, fn := range []string{"bool cas(", "bool dcas(", "void lock(", "void unlock("} {
		if !strings.Contains(src, fn) {
			t.Errorf("SyncSource missing %q", fn)
		}
	}
}

func TestCheckDataTypeCounter(t *testing.T) {
	// A trivially racy counter: increments can be lost even under
	// sequential consistency, and CheckFence must say so.
	const counter = `
typedef struct counter { int n; } counter_t;
counter_t c;
extern void fence(char *type);
void init_counter(counter_t *ct) { ct->n = 0; }
int inc(counter_t *ct) {
    int v = ct->n;
    ct->n = v + 1;
    return v;
}
`
	dt := checkfence.DataType{
		Name:     "counter",
		Source:   counter,
		InitFunc: "init_counter",
		Object:   "c",
		Ops: []checkfence.Operation{
			{Mnemonic: "i", Func: "inc", HasRet: true},
		},
	}
	res, err := checkfence.CheckDataType(dt, "( i | i )", checkfence.Options{
		Model: checkfence.SequentialConsistency,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Error("racy counter must fail: both increments can read 0")
	}

	// The same counter with an atomic block is fine.
	const atomicCounter = `
typedef struct counter { int n; } counter_t;
counter_t c;
void init_counter(counter_t *ct) { ct->n = 0; }
int inc(counter_t *ct) {
    int v;
    atomic {
        v = ct->n;
        ct->n = v + 1;
    }
    return v;
}
`
	dt.Source = atomicCounter
	res, err = checkfence.CheckDataType(dt, "( i | i )", checkfence.Options{
		Model: checkfence.SequentialConsistency,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Errorf("atomic counter must pass; cex:\n%v", res.Cex)
	}
}

package checkfence_test

// TestSweepAblation is the public-API sweep ablation: the same suite
// runs with model-sweep grouping on and off, and must produce
// identical verdicts, identical observation sets, and (on failures)
// counterexample traces that the independent validator accepted —
// the sweep is a pure performance transformation. The matrix covers a
// passing and a failing implementation under all five models, plus
// portfolio and cube solver strategies on the grouped jobs.

import (
	"testing"

	"checkfence"
)

func sweepAblationJobs(opts checkfence.Options) []checkfence.Job {
	models := []checkfence.Model{
		checkfence.Serial, checkfence.SequentialConsistency,
		checkfence.TSO, checkfence.PSO, checkfence.Relaxed,
	}
	var jobs []checkfence.Job
	for _, it := range []struct{ impl, test string }{
		{"ms2", "T0"},         // passes under every model
		{"msn-nofence", "T0"}, // fails under the relaxed models
	} {
		for _, m := range models {
			o := opts
			o.Model = m
			jobs = append(jobs, checkfence.Job{Impl: it.impl, Test: it.test, Opts: o})
		}
	}
	return jobs
}

func runSweepAblation(t *testing.T, jobs []checkfence.Job, parallelism int) {
	t.Helper()
	swept := checkfence.CheckSuite(jobs, checkfence.SuiteOptions{
		Parallelism: parallelism,
	})
	indep := checkfence.CheckSuite(jobs, checkfence.SuiteOptions{
		Parallelism: parallelism,
		Sweep:       checkfence.SweepOff,
	})
	groups := 0
	for i := range jobs {
		s, n := swept[i], indep[i]
		if s.Err != nil || n.Err != nil {
			t.Fatalf("job %d (%s/%s %v): sweep err=%v, independent err=%v",
				i, jobs[i].Impl, jobs[i].Test, jobs[i].Opts.Model, s.Err, n.Err)
		}
		if s.Res.Verdict != n.Res.Verdict || s.Res.Pass != n.Res.Pass || s.Res.SeqBug != n.Res.SeqBug {
			t.Errorf("job %d (%s/%s %v): sweep verdict=%v pass=%v seqbug=%v, independent verdict=%v pass=%v seqbug=%v",
				i, jobs[i].Impl, jobs[i].Test, jobs[i].Opts.Model,
				s.Res.Verdict, s.Res.Pass, s.Res.SeqBug,
				n.Res.Verdict, n.Res.Pass, n.Res.SeqBug)
		}
		if !s.Res.Spec.Equal(n.Res.Spec) {
			t.Errorf("job %d (%s/%s %v): observation sets differ (sweep %d, independent %d)",
				i, jobs[i].Impl, jobs[i].Test, jobs[i].Opts.Model,
				s.Res.Spec.Len(), n.Res.Spec.Len())
		}
		// Traces are validated inside the pipeline (Options
		// .ValidateTraces defaults to on, and a sweep early-exit replay
		// is validated by construction); here it suffices that every
		// failure carries one.
		if !s.Res.Pass && s.Res.Cex == nil {
			t.Errorf("job %d: sweep failure without a counterexample", i)
		}
		if !n.Res.Pass && n.Res.Cex == nil {
			t.Errorf("job %d: independent failure without a counterexample", i)
		}
		if jobs[i].Opts.Model == checkfence.Serial && s.Res.Stats.SweepGroups != 0 {
			t.Errorf("job %d: Serial job joined a sweep group", i)
		}
		groups += s.Res.Stats.SweepGroups
	}
	if groups == 0 {
		t.Error("no job carries sweep stats: the suite never grouped")
	}
}

func TestSweepAblation(t *testing.T) {
	runSweepAblation(t, sweepAblationJobs(checkfence.Options{}), 4)
}

// TestSweepAblationStrategies re-runs the ablation with the parallel
// solver strategies the sweep shares across its assumption solves:
// a clause-sharing portfolio and cube-and-conquer splitting (whose
// splitter must avoid branching on the frozen selector variables).
func TestSweepAblationStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy matrix is slow under -short")
	}
	for _, tc := range []struct {
		name string
		opts checkfence.Options
	}{
		{"portfolio", checkfence.Options{Portfolio: 2, ShareClauses: true}},
		{"cube", checkfence.Options{Cube: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			models := []checkfence.Model{
				checkfence.SequentialConsistency, checkfence.PSO, checkfence.Relaxed,
			}
			var jobs []checkfence.Job
			for _, m := range models {
				o := tc.opts
				o.Model = m
				jobs = append(jobs, checkfence.Job{Impl: "msn-nofence", Test: "T0", Opts: o})
			}
			runSweepAblation(t, jobs, 2)
		})
	}
}

// TestSweepStatsShape pins the sweep's stats contract: the group's
// leader (its strongest model) carries the shared costs, every other
// member reports the reused encoding and the seeded observation count,
// and all members report the group dimensions.
func TestSweepStatsShape(t *testing.T) {
	models := []checkfence.Model{
		checkfence.SequentialConsistency, checkfence.TSO,
		checkfence.PSO, checkfence.Relaxed,
	}
	jobs := make([]checkfence.Job, len(models))
	for i, m := range models {
		jobs[i] = checkfence.Job{Impl: "ms2", Test: "T0", Opts: checkfence.Options{Model: m}}
	}
	results := checkfence.CheckSuite(jobs, checkfence.SuiteOptions{Parallelism: 2})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		st := r.Res.Stats
		if st.SweepGroups != 1 || st.SweepModels != len(models) {
			t.Errorf("job %d: SweepGroups=%d SweepModels=%d, want 1 and %d",
				i, st.SweepGroups, st.SweepModels, len(models))
		}
		if st.SelectorVars != len(models) || st.SelectorUnits <= 0 {
			t.Errorf("job %d: SelectorVars=%d SelectorUnits=%d", i, st.SelectorVars, st.SelectorUnits)
		}
		if st.TotalTime <= 0 {
			t.Errorf("job %d: TotalTime not recorded", i)
		}
		if i == 0 {
			if st.EncodeTime <= 0 || st.MineTime <= 0 {
				t.Errorf("leader: shared costs not attributed (encode %v, mine %v)",
					st.EncodeTime, st.MineTime)
			}
			if st.EncodesReused != 0 {
				t.Errorf("leader reports EncodesReused=%d", st.EncodesReused)
			}
		} else {
			if st.EncodesReused != 1 {
				t.Errorf("job %d: EncodesReused=%d, want 1", i, st.EncodesReused)
			}
			if st.SeededObs != r.Res.Spec.Len() {
				t.Errorf("job %d: SeededObs=%d, want %d", i, st.SeededObs, r.Res.Spec.Len())
			}
			if st.EncodeTime != 0 {
				t.Errorf("job %d: non-leader charged EncodeTime %v", i, st.EncodeTime)
			}
			if st.ProbeTime != 0 {
				t.Errorf("job %d: non-leader charged ProbeTime %v (shared probe cost belongs to the leader only)", i, st.ProbeTime)
			}
		}
	}
}

package checkfence_test

// TestBackendAblation is the public-API backend ablation: the same
// checks run under auto routing, the forced reads-from engine, and the
// forced serial SAT engine, and must produce bit-identical verdicts
// and observation sets. The datatype's operations are single global
// accesses, so the tests compose into litmus shapes squarely inside
// the rf fragment — auto must route them to rf, not merely agree.

import (
	"testing"

	"checkfence"
)

func litmusDataType() checkfence.DataType {
	return checkfence.DataType{
		Name: "litmusdt", Kind: "litmus", Source: `
int x;
int y;

void init_lit(int *s) { x = 0; y = 0; }
void wx(int *s) { x = 1; }
void wy(int *s) { y = 1; }
int rx(int *s) { return x; }
int ry(int *s) { return y; }
`,
		InitFunc: "init_lit", Object: "x",
		Ops: []checkfence.Operation{
			{Mnemonic: "a", Func: "wx"},
			{Mnemonic: "b", Func: "wy"},
			{Mnemonic: "c", Func: "rx", HasRet: true},
			{Mnemonic: "d", Func: "ry", HasRet: true},
		},
	}
}

func TestBackendAblation(t *testing.T) {
	notations := []string{
		"( ad | bc )",           // store buffering
		"( ab | dc )",           // message passing
		"( da | cb )",           // load buffering
		"( a | b | cd | dc )",   // IRIW
		"( a | cc )",            // coherent read-read
		"( ad | bc | ab | dc )", // sb and mp combined
	}
	models := []checkfence.Model{
		checkfence.SequentialConsistency, checkfence.TSO,
		checkfence.PSO, checkfence.Relaxed,
	}
	backends := []checkfence.Backend{
		checkfence.BackendAuto, checkfence.BackendRF, checkfence.BackendSAT,
	}
	dt := litmusDataType()
	for _, notation := range notations {
		for _, model := range models {
			results := make([]*checkfence.Result, len(backends))
			for i, be := range backends {
				res, err := checkfence.CheckDataType(dt, notation,
					checkfence.Options{Model: model, Backend: be})
				if err != nil {
					t.Fatalf("%s on %s (backend %s): %v", notation, model, be, err)
				}
				results[i] = res
			}
			auto, rf, sat := results[0], results[1], results[2]
			if auto.Stats.Backend != "rf" {
				t.Errorf("%s on %s: auto routed to %q (%s), want rf",
					notation, model, auto.Stats.Backend, auto.Stats.RouterDecision)
			}
			for i, r := range results {
				if r.Pass != sat.Pass {
					t.Errorf("%s on %s: backend %s pass=%v, sat pass=%v",
						notation, model, backends[i], r.Pass, sat.Pass)
				}
				if !r.Spec.Equal(sat.Spec) {
					t.Errorf("%s on %s: backend %s observation set diverges from SAT (%d vs %d)",
						notation, model, backends[i], r.Spec.Len(), sat.Spec.Len())
				}
				if !r.Pass && r.Cex == nil {
					t.Errorf("%s on %s: backend %s failed without a counterexample",
						notation, model, backends[i])
				}
			}
			if rf.Stats.Backend != "rf" {
				t.Errorf("%s on %s: forced rf produced verdict on %q", notation, model, rf.Stats.Backend)
			}
		}
	}
}

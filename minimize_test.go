package checkfence_test

// TestMinimizationDifferential runs whole checks twice — once with
// the formula-minimization pipeline (AIG rewriting, polarity-aware
// encoding, CNF preprocessing) and once with classic Tseitin and no
// preprocessing — and requires bit-identical verdicts, identical
// mined observation sets, and valid counterexamples. Minimization is
// an encoding concern; any observable difference is a soundness bug.

import (
	"runtime"
	"testing"

	"checkfence"
)

func TestMinimizationDifferential(t *testing.T) {
	type pair struct {
		impl, test string
		models     []checkfence.Model
	}
	all := []checkfence.Model{
		checkfence.SequentialConsistency, checkfence.TSO,
		checkfence.PSO, checkfence.Relaxed,
	}
	scRelaxed := []checkfence.Model{checkfence.SequentialConsistency, checkfence.Relaxed}
	pairs := []pair{
		{"ms2", "T0", all},
		{"msn", "T0", all},
		{"lazylist", "Sac", all},
		{"harris", "Sac", scRelaxed},
		{"snark", "D0", scRelaxed},       // fails on relaxed: verdicts must still agree
		{"msn-nofence", "T0", scRelaxed}, // fails: exercises counterexample extraction
		{"ms2-nofence", "T0", scRelaxed},
	}
	if !testing.Short() {
		pairs = append(pairs, pair{"msn", "Ti2", []checkfence.Model{checkfence.Relaxed}})
	}

	var jobs []checkfence.Job
	for _, p := range pairs {
		for _, m := range p.models {
			// Private caches: both configurations must actually mine.
			jobs = append(jobs,
				checkfence.Job{Impl: p.impl, Test: p.test, Opts: checkfence.Options{
					Model: m, SpecCache: checkfence.NewSpecCache("")}},
				checkfence.Job{Impl: p.impl, Test: p.test, Opts: checkfence.Options{
					Model: m, SimplifyLevel: -1, NoPreprocess: true,
					SpecCache: checkfence.NewSpecCache("")}})
		}
	}
	results := checkfence.CheckSuite(jobs, checkfence.SuiteOptions{
		Parallelism: runtime.GOMAXPROCS(0),
	})

	for i := 0; i+1 < len(results); i += 2 {
		on, off := results[i], results[i+1]
		name := on.Job.Impl + "/" + on.Job.Test + "/" + on.Job.Opts.Model.String()
		if on.Err != nil || off.Err != nil {
			t.Errorf("%s: minimized err=%v, plain err=%v", name, on.Err, off.Err)
			continue
		}
		if on.Res.Pass != off.Res.Pass || on.Res.SeqBug != off.Res.SeqBug {
			t.Errorf("%s: verdicts differ: minimized pass=%v seqbug=%v, plain pass=%v seqbug=%v",
				name, on.Res.Pass, on.Res.SeqBug, off.Res.Pass, off.Res.SeqBug)
		}
		if (on.Res.Spec == nil) != (off.Res.Spec == nil) {
			t.Errorf("%s: only one run mined an observation set", name)
		} else if on.Res.Spec != nil && !on.Res.Spec.Equal(off.Res.Spec) {
			t.Errorf("%s: observation sets differ (%d vs %d)",
				name, on.Res.Spec.Len(), off.Res.Spec.Len())
		}
		for which, r := range map[string]*checkfence.Result{"minimized": on.Res, "plain": off.Res} {
			if r.Pass {
				continue
			}
			if r.Cex == nil {
				t.Errorf("%s: %s run failed without a counterexample", name, which)
				continue
			}
			if !r.Cex.IsErr && r.Spec != nil && r.Spec.Has(r.Cex.Observation) {
				t.Errorf("%s: %s counterexample observation is inside the specification", name, which)
			}
		}
	}
}

// Package fleet is the fault-tolerant distributed execution layer of
// checkfenced: a coordinator that splits hard checks into cube tasks
// (cross-process cube-and-conquer over memory-order variables, see
// core.CubeAssumptions) and hands them to pull-based workers under
// time-bounded leases, and the worker loop that executes them.
//
// The design center is fault tolerance, not speed: every failure class
// of a distributed deployment — worker crash, hang, network partition
// on the heartbeat or reply path, duplicate delivery, coordinator
// crash — degrades to slower-but-correct, never to a wrong or lost
// verdict:
//
//   - Dispatch is at-least-once: a cube whose lease expires (crashed,
//     hung, or partitioned worker) is requeued with exponential
//     backoff plus jitter. Aggregation is exactly-once: results are
//     deduplicated on the task identity (parent check fingerprint +
//     cube index), so redelivery, duplicate transport delivery, and
//     speculative re-dispatch cannot double-count a cube.
//   - A bounded retry budget ends with the coordinator solving the
//     cube locally — a verdict is never abandoned.
//   - A cube that costs N distinct workers their lease trips a
//     poison circuit breaker: it is quarantined and solved locally
//     with a stripped serial strategy, so one pathological formula
//     cannot grind the fleet down.
//   - Stragglers are speculatively re-dispatched; the first result
//     wins and the loser is dropped by the same dedup.
//   - Every worker has a sliding-window health score; a flaky worker
//     is drained (polls return no work) until it cools down.
//   - The coordinator journals plans and accepted results; a restart
//     replays the journal and re-runs only the missing cubes.
//
// Soundness of the aggregation (why the distributed verdict equals
// the serial one) is argued in DESIGN.md; the short form: cubes are
// jointly exhaustive sign combinations of order-variable ordinals, the
// pipeline front (mining, bound probing) is cube-independent, so
// any-FAIL / all-PASS over the cubes reconstructs the undivided
// verdict, and a PASS additionally asserts every cube mined an
// identical observation set.
package fleet

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/job"
	"checkfence/internal/spec"
)

// Task is one leased unit of work: a complete check description (a
// cube of a fan-out, or a whole check when the parent did not split).
type Task struct {
	// ID is the dedup identity: "<parent fingerprint>/<cube index>".
	ID string `json:"id"`
	// Check is the self-contained description the worker executes.
	Check job.Check `json:"check"`
	// LeaseMS is the granted lease in milliseconds: the worker must
	// heartbeat before it elapses or the task is requeued.
	LeaseMS int64 `json:"lease_ms"`
}

// PollRequest is the body of POST /fleet/v1/poll.
type PollRequest struct {
	Worker string `json:"worker"`
}

// PollResponse answers a poll: a task, or none plus a backoff hint.
type PollResponse struct {
	Task *Task `json:"task,omitempty"`
	// RetryAfterMS hints when to poll again when Task is nil.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// HeartbeatRequest is the body of POST /fleet/v1/heartbeat. A 410
// response means the lease is gone (expired and reassigned): the
// worker should abandon the task without reporting.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	TaskID string `json:"task_id"`
}

// ResultRequest is the body of POST /fleet/v1/result.
type ResultRequest struct {
	Worker  string  `json:"worker"`
	TaskID  string  `json:"task_id"`
	Outcome Outcome `json:"outcome"`
}

// Outcome is the serializable subset of core.Result a worker reports:
// everything aggregation and the daemon's wire rendering need. The
// observation set rides as its deterministic text serialization
// (spec.Set.WriteTo), so PASS aggregation can compare sets
// byte-for-byte across workers.
type Outcome struct {
	Verdict string `json:"verdict"` // "pass" | "fail" | "unknown"
	Pass    bool   `json:"pass"`
	SeqBug  bool   `json:"seq_bug,omitempty"`
	// Cex is the rendered counterexample trace (FAIL only).
	Cex string `json:"cex,omitempty"`
	// Spec is the mined observation set, serialized.
	Spec string `json:"spec,omitempty"`
	// Err is set when the check failed to run (an internal error, not
	// a verdict); the coordinator treats it as a task failure.
	Err string `json:"error,omitempty"`

	BoundRounds int          `json:"bound_rounds,omitempty"`
	ObsSetSize  int          `json:"obs_set_size,omitempty"`
	AssumedLits int          `json:"assumed_lits,omitempty"`
	Backend     string       `json:"backend,omitempty"`
	TotalTime   job.Duration `json:"total_time,omitempty"`
	// Budget summarizes resource-governance degradation on the worker
	// (ladder rungs exhausted before the verdict), one line per rung.
	Budget []string `json:"budget,omitempty"`
	// Degraded names the fleet-level degradation that produced this
	// outcome, when any ("local-fallback", "quarantine"). Set by the
	// coordinator, never by workers.
	Degraded string `json:"degraded,omitempty"`
}

// OutcomeFromResult renders a core result (or run error) as the wire
// outcome.
func OutcomeFromResult(res *core.Result, err error) Outcome {
	if err != nil {
		return Outcome{Err: err.Error()}
	}
	o := Outcome{
		Verdict:     res.Verdict.String(),
		Pass:        res.Pass,
		SeqBug:      res.SeqBug,
		BoundRounds: res.Stats.BoundRounds,
		ObsSetSize:  res.Stats.ObsSetSize,
		AssumedLits: res.Stats.AssumedLits,
		Backend:     res.Stats.Backend,
		TotalTime:   job.Duration(res.Stats.TotalTime),
	}
	if res.Cex != nil {
		o.Cex = res.Cex.String()
	}
	if res.Spec != nil {
		var b bytes.Buffer
		if _, werr := res.Spec.WriteTo(&b); werr == nil {
			o.Spec = b.String()
		}
	}
	if res.Budget != nil {
		for _, r := range res.Budget.Rungs {
			desc := r.Name
			if r.Budget != "" {
				desc += " (" + r.Budget + ")"
			}
			o.Budget = append(o.Budget, desc)
		}
	}
	return o
}

// SpecSet parses the outcome's serialized observation set (nil when
// absent or unparsable).
func (o *Outcome) SpecSet() *spec.Set {
	if o.Spec == "" {
		return nil
	}
	s, err := spec.ReadSet(strings.NewReader(o.Spec))
	if err != nil {
		return nil
	}
	return s
}

// TaskID renders the dedup identity of cube index i of the parent
// check with the given fingerprint.
func TaskID(parentFP string, i int) string {
	return fmt.Sprintf("%s/%d", parentFP, i)
}

// leaseDuration converts the wire lease field.
func (t *Task) leaseDuration() time.Duration {
	return time.Duration(t.LeaseMS) * time.Millisecond
}

package fleet

// The fleet chaos suite: every network-level fault class is injected
// at its worker hook point and the distributed verdict (and, for PASS,
// the observation set) is asserted bit-identical to the serial oracle
// — the ISSUE's contract that no fault degrades to a wrong or silent
// verdict, only to a slower one with the cause on the metrics surface.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/faultinject"
	"checkfence/internal/job"
)

func testCheck(impl, test, model string) job.Check {
	return job.Check{Program: job.Program{Name: impl}, Test: test, Model: model}
}

// serialOracle solves the undivided check in-process — the ground
// truth every distributed run must reproduce.
func serialOracle(t *testing.T, ck job.Check) Outcome {
	t.Helper()
	cj, err := ck.CoreJob()
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	res := core.RunSuite([]core.Job{cj}, core.SuiteOptions{Parallelism: 1})
	out := OutcomeFromResult(res[0].Res, res[0].Err)
	if out.Err != "" {
		t.Fatalf("oracle failed to run: %s", out.Err)
	}
	return out
}

// assertAgrees asserts the distributed outcome reproduces the oracle:
// same verdict bits, and for PASS a byte-identical observation set.
func assertAgrees(t *testing.T, got, want Outcome, label string) {
	t.Helper()
	if got.Err != "" {
		t.Fatalf("%s: distributed run errored: %s", label, got.Err)
	}
	if got.Verdict != want.Verdict || got.Pass != want.Pass || got.SeqBug != want.SeqBug {
		t.Fatalf("%s: distributed verdict %q (pass=%v seqbug=%v) != serial %q (pass=%v seqbug=%v)",
			label, got.Verdict, got.Pass, got.SeqBug, want.Verdict, want.Pass, want.SeqBug)
	}
	if want.Verdict == "pass" && got.Spec != want.Spec {
		t.Fatalf("%s: distributed observation set differs from serial:\n got: %q\nwant: %q",
			label, got.Spec, want.Spec)
	}
}

// fastConfig is a coordinator tuned for test time: short leases (the
// janitor runs at lease/4), near-immediate requeue backoff.
func fastConfig() CoordinatorConfig {
	return CoordinatorConfig{
		CubeDepth:      2,
		Lease:          120 * time.Millisecond,
		BaseBackoff:    5 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		PollRetryAfter: 5 * time.Millisecond,
	}
}

func newTestCoordinator(t *testing.T, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// startWorker runs an in-process worker against the coordinator until
// the test ends.
func startWorker(t *testing.T, c *Coordinator, id string, mod func(*WorkerConfig)) *Worker {
	t.Helper()
	cfg := WorkerConfig{ID: id, Local: c, PollInterval: 5 * time.Millisecond}
	if mod != nil {
		mod(&cfg)
	}
	w, err := NewWorker(cfg)
	if err != nil {
		t.Fatalf("NewWorker(%s): %v", id, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return w
}

func eventually(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v: %s", timeout, msg)
}

// TestDistributedMatchesSerial: the fault-free baseline — a passing
// and a failing check, each fanned out over cubes to two workers,
// must reproduce the serial verdict and (for PASS) observation set.
func TestDistributedMatchesSerial(t *testing.T) {
	c := newTestCoordinator(t, fastConfig())
	startWorker(t, c, "w1", nil)
	startWorker(t, c, "w2", nil)

	for _, tc := range []struct {
		label string
		ck    job.Check
	}{
		{"pass", testCheck("msn", "T0", "sc")},
		{"fail", testCheck("msn-nofence", "T0", "relaxed")},
	} {
		want := serialOracle(t, tc.ck)
		got, err := c.CheckDistributed(context.Background(), tc.ck)
		if err != nil {
			t.Fatalf("%s: CheckDistributed: %v", tc.label, err)
		}
		assertAgrees(t, got, want, tc.label)
	}
	m := c.Metrics()
	if m.TasksCompleted == 0 || m.TasksDispatched == 0 {
		t.Fatalf("no distributed work recorded: %+v", m)
	}
}

// TestFaultMatrix sweeps every network fault site across several
// seeds: three workers share one one-shot fault script, so exactly one
// injected failure strikes per run, and the aggregated verdict must
// still equal the serial oracle. Per-site metric assertions pin the
// degradation path that absorbed the fault.
func TestFaultMatrix(t *testing.T) {
	ck := testCheck("msn", "T0", "sc")
	want := serialOracle(t, ck)

	for _, site := range faultinject.NetworkSites() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", site, seed), func(t *testing.T) {
				c := newTestCoordinator(t, fastConfig())
				script := faultinject.NewScript(seed, 3, site)
				for i := 0; i < 3; i++ {
					startWorker(t, c, fmt.Sprintf("w%d", i), func(cfg *WorkerConfig) {
						cfg.Faults = script
					})
				}
				got, err := c.CheckDistributed(context.Background(), ck)
				if err != nil {
					t.Fatalf("CheckDistributed: %v", err)
				}
				assertAgrees(t, got, want, string(site))

				if script.Fired(site) == 0 {
					t.Fatalf("fault %s never fired (windowed occurrence never reached)", site)
				}
				m := c.Metrics()
				switch site {
				case faultinject.FleetWorkerCrash, faultinject.FleetDropResult:
					// The lease died with the fault; the janitor must have
					// reclaimed it and the cube must have been re-dispatched.
					if m.LeaseExpirations == 0 || m.Requeues == 0 {
						t.Fatalf("fault %s absorbed without lease expiry + requeue: %+v", site, m)
					}
				case faultinject.FleetDupResult:
					if m.DupResults == 0 {
						t.Fatalf("duplicate delivery not deduplicated: %+v", m)
					}
				}
			})
		}
	}
}

// TestPoisonQuarantine: a cube that kills every worker it touches must
// trip the circuit breaker after PoisonThreshold distinct victims and
// be solved locally — with the quarantine visible as the degradation
// cause, and the verdict still the serial one.
func TestPoisonQuarantine(t *testing.T) {
	cfg := fastConfig()
	cfg.Lease = 60 * time.Millisecond
	cfg.PoisonThreshold = 3
	cfg.MaxRetries = 10 // poison must trip before retry exhaustion
	c := newTestCoordinator(t, cfg)

	for i := 0; i < 3; i++ {
		startWorker(t, c, fmt.Sprintf("crasher%d", i), func(cfg *WorkerConfig) {
			cfg.Faults = &faultinject.Always{Sites: []faultinject.Site{faultinject.FleetWorkerCrash}}
		})
	}

	ck := testCheck("msn", "T0", "sc")
	ck.Backend = "rf" // single-cube fan-out: one poisoned task
	want := serialOracle(t, ck)
	got, err := c.CheckDistributed(context.Background(), ck)
	if err != nil {
		t.Fatalf("CheckDistributed: %v", err)
	}
	assertAgrees(t, got, want, "quarantine")
	if got.Degraded != "quarantine" {
		t.Fatalf("degradation cause = %q, want \"quarantine\"", got.Degraded)
	}
	m := c.Metrics()
	if m.Quarantines != 1 {
		t.Fatalf("Quarantines = %d, want 1 (metrics: %+v)", m.Quarantines, m)
	}
}

// TestRetryExhaustionFallsBackLocally: with a single worker that
// always drops its results, the bounded retry budget must end in a
// local solve — degradation, never a lost verdict.
func TestRetryExhaustionFallsBackLocally(t *testing.T) {
	cfg := fastConfig()
	cfg.Lease = 60 * time.Millisecond
	cfg.MaxRetries = 2
	cfg.PoisonThreshold = 10 // keep the breaker out of this path
	c := newTestCoordinator(t, cfg)
	startWorker(t, c, "dropper", func(cfg *WorkerConfig) {
		cfg.Faults = &faultinject.Always{Sites: []faultinject.Site{faultinject.FleetDropResult}}
	})

	ck := testCheck("ms2", "T0", "sc")
	ck.Backend = "rf"
	want := serialOracle(t, ck)
	got, err := c.CheckDistributed(context.Background(), ck)
	if err != nil {
		t.Fatalf("CheckDistributed: %v", err)
	}
	assertAgrees(t, got, want, "local-fallback")
	if got.Degraded != "local-fallback" {
		t.Fatalf("degradation cause = %q, want \"local-fallback\"", got.Degraded)
	}
	if m := c.Metrics(); m.LocalFallbacks == 0 {
		t.Fatalf("LocalFallbacks = 0, want > 0 (metrics: %+v)", m)
	}
}

// TestStragglerSpeculation: a straggling worker keeps its lease alive
// by heartbeating, so only the speculation horizon can unstick the
// cube — a second copy goes to a faster worker, whose result wins.
func TestStragglerSpeculation(t *testing.T) {
	cfg := fastConfig()
	cfg.Lease = 400 * time.Millisecond // janitor every 100ms
	cfg.SpeculateAfter = 150 * time.Millisecond
	c := newTestCoordinator(t, cfg)

	slow := startWorker(t, c, "slow", func(cfg *WorkerConfig) {
		cfg.SlowDown = 5 * time.Second
	})

	ck := testCheck("msn", "T0", "sc")
	ck.Backend = "rf" // single cube: the straggler holds the whole check
	want := serialOracle(t, ck)

	resc := make(chan Outcome, 1)
	go func() {
		out, err := c.CheckDistributed(context.Background(), ck)
		if err != nil {
			out = Outcome{Err: err.Error()}
		}
		resc <- out
	}()

	// Let the straggler take the lease before the fast worker exists.
	eventually(t, 2*time.Second, func() bool { return slow.Stats().Polled == 1 },
		"straggler never leased the task")
	startWorker(t, c, "fast", nil)

	select {
	case got := <-resc:
		assertAgrees(t, got, want, "speculation")
	case <-time.After(4 * time.Second):
		t.Fatal("speculated task did not finish ahead of the straggler")
	}
	if m := c.Metrics(); m.Speculations == 0 {
		t.Fatalf("Speculations = 0, want > 0 (metrics: %+v)", m)
	}
}

// TestWorkerDraining: a worker that keeps losing leases must stop
// receiving work for the drain cooldown.
func TestWorkerDraining(t *testing.T) {
	cfg := fastConfig()
	cfg.Lease = 60 * time.Millisecond
	cfg.HealthWindow = 4
	cfg.DrainFailures = 2
	cfg.DrainCooldown = time.Hour // once drained, stays drained for the test
	cfg.MaxRetries = 10
	cfg.PoisonThreshold = 10
	c := newTestCoordinator(t, cfg)

	flaky := startWorker(t, c, "flaky", func(cfg *WorkerConfig) {
		cfg.Faults = &faultinject.Always{Sites: []faultinject.Site{faultinject.FleetWorkerCrash}}
	})

	// Two independent single-cube checks so the flaky worker can fail
	// twice (it may not re-lease a task it already failed).
	cks := []job.Check{testCheck("ms2", "T0", "sc"), testCheck("ms2", "T0", "tso")}
	for i := range cks {
		cks[i].Backend = "rf"
	}
	resc := make(chan error, len(cks))
	for _, ck := range cks {
		go func(ck job.Check) {
			_, err := c.CheckDistributed(context.Background(), ck)
			resc <- err
		}(ck)
	}

	// The flaky worker crashes both; its leases expire; health records
	// two failures.
	eventually(t, 2*time.Second, func() bool { return flaky.Stats().Polled >= 2 },
		"flaky worker never leased both tasks")
	eventually(t, 2*time.Second, func() bool {
		for _, h := range c.WorkerHealth() {
			if h.Worker == "flaky" && h.Failures >= 2 {
				return true
			}
		}
		return false
	}, "flaky worker's lease losses never reached its health window")

	if resp := c.Poll("flaky"); resp.Task != nil {
		t.Fatal("drained worker was granted a task")
	}
	if m := c.Metrics(); m.WorkersDrained == 0 {
		t.Fatalf("WorkersDrained = 0, want > 0 (metrics: %+v)", m)
	}

	// A healthy worker finishes the actual verdicts.
	startWorker(t, c, "healthy", nil)
	for range cks {
		if err := <-resc; err != nil {
			t.Fatalf("CheckDistributed: %v", err)
		}
	}
}

// TestCrashRecoveryJournal kills a coordinator mid-sweep (one of two
// cubes done), restarts from the journal, and asserts: the plan is
// not re-split, the finished cube is replayed rather than re-run, no
// (parent, cube) is recorded twice, and the final verdict plus
// observation set match the serial oracle.
func TestCrashRecoveryJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	ck := testCheck("msn", "T0", "sc")
	want := serialOracle(t, ck)
	fp := ck.Fingerprint()

	// --- first life: plan 2 cubes, finish exactly one, crash. -------
	cfg := fastConfig()
	cfg.CubeDepth = 1
	cfg.JournalPath = path
	c1, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c1.CheckDistributed(ctx1, ck)
		errc <- err
	}()
	eventually(t, 2*time.Second, func() bool { return c1.QueueDepth() == 2 },
		"fan-out never planned")

	w1, err := NewWorker(WorkerConfig{ID: "w1", Local: c1})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	resp := c1.Poll("w1")
	if resp.Task == nil {
		t.Fatal("no task leased to w1")
	}
	w1.runTask(context.Background(), resp.Task)
	if got := w1.Stats().Completed; got != 1 {
		t.Fatalf("first life completed %d tasks, want 1", got)
	}

	cancel1() // the waiter is abandoned; the coordinator "crashes"
	if err := <-errc; err == nil {
		t.Fatal("abandoned CheckDistributed returned without error")
	}
	c1.Close()

	plans, dones := readJournal(t, path, fp)
	if plans != 1 {
		t.Fatalf("journal has %d plan records, want 1", plans)
	}
	if len(dones) != 1 {
		t.Fatalf("journal has %d done records after the crash, want 1", len(dones))
	}

	// --- second life: replay, run only the missing cube. ------------
	c2, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator (restart): %v", err)
	}
	defer c2.Close()
	w2 := startWorker(t, c2, "w2", nil)

	got, err := c2.CheckDistributed(context.Background(), ck)
	if err != nil {
		t.Fatalf("CheckDistributed (restart): %v", err)
	}
	assertAgrees(t, got, want, "crash recovery")

	if m := c2.Metrics(); m.JournalReplayed != 1 {
		t.Fatalf("JournalReplayed = %d, want 1", m.JournalReplayed)
	}
	if comp := w2.Stats().Completed; comp != 1 {
		t.Fatalf("second life re-ran %d cubes, want 1 (the missing one)", comp)
	}
	plans, dones = readJournal(t, path, fp)
	if plans != 1 {
		t.Fatalf("restart re-planned: %d plan records", plans)
	}
	if len(dones) != 2 {
		t.Fatalf("journal has %d done records, want 2", len(dones))
	}
	seen := map[int]int{}
	for _, idx := range dones {
		seen[idx]++
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("cube %d recorded %d times in the journal (double count)", idx, n)
		}
	}
}

// readJournal counts plan records and collects done-record cube
// indices for the parent.
func readJournal(t *testing.T, path, parent string) (plans int, dones []int) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("opening journal: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Parent != parent {
			continue
		}
		switch rec.Event {
		case "plan":
			plans++
		case "done":
			dones = append(dones, rec.Task)
		}
	}
	return plans, dones
}

// TestJournalSkipsCorruptTail: a torn write (crash mid-append) must
// degrade to re-running the cube, not to adopting a corrupt outcome.
func TestJournalSkipsCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	ck := testCheck("ms2", "T0", "sc")
	fp := ck.Fingerprint()

	j, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WritePlan(fp, []job.Check{ck, ck}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"event":"done","parent":"` + fp + `","task":1,"outcome":{"verdi`)
	f.Close()

	j2, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	plan, outs, err := j2.Replay(fp)
	if err != nil {
		t.Fatalf("Replay over a torn tail: %v", err)
	}
	if len(plan) != 2 {
		t.Fatalf("replayed plan of %d checks, want 2", len(plan))
	}
	if len(outs) != 0 {
		t.Fatalf("torn done record was adopted: %v", outs)
	}
}

// TestFleetOverHTTP runs the full lease protocol over real HTTP —
// poll, heartbeat, result through the coordinator's Handler — and
// asserts agreement with the serial oracle.
func TestFleetOverHTTP(t *testing.T) {
	c := newTestCoordinator(t, fastConfig())
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	for _, id := range []string{"h1", "h2"} {
		w, err := NewWorker(WorkerConfig{
			ID:           id,
			URL:          ts.URL,
			PollInterval: 5 * time.Millisecond,
			Client:       RetryClient{Timeout: 2 * time.Second},
		})
		if err != nil {
			t.Fatalf("NewWorker(%s): %v", id, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			w.Run(ctx)
		}()
		t.Cleanup(func() {
			cancel()
			<-done
		})
	}

	ck := testCheck("msn", "T0", "sc")
	want := serialOracle(t, ck)
	got, err := c.CheckDistributed(context.Background(), ck)
	if err != nil {
		t.Fatalf("CheckDistributed: %v", err)
	}
	assertAgrees(t, got, want, "http transport")
}

// TestSingleFlightSharesFanOut: concurrent CheckDistributed calls for
// the same description must share one fan-out.
func TestSingleFlightSharesFanOut(t *testing.T) {
	c := newTestCoordinator(t, fastConfig())
	startWorker(t, c, "w1", nil)

	ck := testCheck("ms2", "T0", "sc")
	want := serialOracle(t, ck)
	const callers = 4
	outs := make(chan Outcome, callers)
	for i := 0; i < callers; i++ {
		go func() {
			out, err := c.CheckDistributed(context.Background(), ck)
			if err != nil {
				out = Outcome{Err: err.Error()}
			}
			outs <- out
		}()
	}
	for i := 0; i < callers; i++ {
		assertAgrees(t, <-outs, want, "single-flight")
	}
	// One fan-out's worth of tasks, not four.
	if m := c.Metrics(); m.TasksCompleted > 4 {
		t.Fatalf("single-flight violated: %d tasks completed for one 4-cube check", m.TasksCompleted)
	}
}

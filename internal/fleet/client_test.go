package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryClientRetriesTransient: 5xx responses are retried until the
// server recovers, and the eventual 2xx body is decoded.
func TestRetryClientRetriesTransient(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "try later", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"ok": "yes"})
	}))
	defer ts.Close()

	c := RetryClient{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	var out map[string]string
	if err := c.PostJSON(context.Background(), ts.URL, map[string]int{"n": 1}, &out); err != nil {
		t.Fatalf("PostJSON: %v", err)
	}
	if out["ok"] != "yes" {
		t.Fatalf("decoded %v, want ok=yes", out)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 failures + success)", got)
	}
}

// TestRetryClientHonorsRetryAfter: a 503 with Retry-After must stretch
// the backoff to at least the server's hint.
func TestRetryClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "saturated", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c := RetryClient{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	start := time.Now()
	if err := c.PostJSON(context.Background(), ts.URL, struct{}{}, nil); err != nil {
		t.Fatalf("PostJSON: %v", err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %v, want >= 1s (the Retry-After hint)", elapsed)
	}
}

// TestRetryClient410Terminal: 410 Gone (lease lost) must not be
// retried and must surface as a typed StatusError.
func TestRetryClient410Terminal(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "lease gone", http.StatusGone)
	}))
	defer ts.Close()

	c := RetryClient{BaseDelay: time.Millisecond}
	err := c.PostJSON(context.Background(), ts.URL, struct{}{}, nil)
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Code != http.StatusGone {
		t.Fatalf("error = %v, want *StatusError with code 410", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("terminal 410 was retried: %d calls", got)
	}
}

// TestRetryClientPerRequestTimeout: a hung server must fail the
// attempt at the per-request timeout, not hang the caller.
func TestRetryClientPerRequestTimeout(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Far longer than the client's per-request timeout, but bounded
		// so the test server can close.
		time.Sleep(2 * time.Second)
	}))
	defer ts.Close()

	c := RetryClient{Timeout: 50 * time.Millisecond, Retries: -1}
	start := time.Now()
	err := c.PostJSON(context.Background(), ts.URL, struct{}{}, nil)
	if err == nil {
		t.Fatal("PostJSON against a hung server succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timeout took %v, want ~50ms", elapsed)
	}
}

// TestGetJSONPollPath: the GET path shares the retry policy (used by
// the checkfence remote client against /v1/jobs/{id}).
func TestGetJSONPollPath(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET expected", http.StatusMethodNotAllowed)
			return
		}
		if calls.Add(1) == 1 {
			http.Error(w, "blip", http.StatusBadGateway)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"state": "done"})
	}))
	defer ts.Close()

	c := RetryClient{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	var out map[string]string
	if err := c.GetJSON(context.Background(), ts.URL, &out); err != nil {
		t.Fatalf("GetJSON: %v", err)
	}
	if out["state"] != "done" {
		t.Fatalf("decoded %v, want state=done", out)
	}
}

package fleet

// The fleet worker: a pull loop that polls the coordinator for cube
// tasks, executes them through the ordinary core pipeline, heartbeats
// its lease while computing, and reports the outcome. The worker holds
// no authoritative state — crashing one at any point loses at most a
// lease, which the coordinator's janitor reclaims.
//
// The network fault sites (faultinject.NetworkSites) hook the loop at
// the exact points the real failures would strike:
//
//	FleetWorkerCrash    — after taking the lease, before any result:
//	                      the task is abandoned silently (no heartbeat,
//	                      no report), like a process crash.
//	FleetStallHeartbeat — the heartbeat loop never starts; the compute
//	                      continues and the result arrives after the
//	                      lease is gone (the coordinator must reject
//	                      it as late).
//	FleetDropResult     — the finished result is discarded instead of
//	                      posted (reply-path partition).
//	FleetDupResult      — the result is posted twice (at-least-once
//	                      transport retry); the coordinator must
//	                      deduplicate.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/faultinject"
)

// WorkerConfig configures a fleet worker.
type WorkerConfig struct {
	// ID identifies the worker to the coordinator (lease bookkeeping,
	// health scoring). Required.
	ID string
	// URL is the coordinator base URL ("http://host:port"). Required
	// unless Local is set.
	URL string
	// Local short-circuits HTTP: the worker calls the coordinator
	// in-process (tests, and the coordinator's own embedded workers).
	Local *Coordinator
	// Client is the HTTP policy (zero value = defaults).
	Client RetryClient
	// PollInterval is the idle re-poll period when the coordinator has
	// no work and sent no hint (0 = 250ms).
	PollInterval time.Duration
	// SpecCacheDir enables the worker's on-disk observation-set cache.
	SpecCacheDir string
	// Faults arms the network fault sites (chaos tests only).
	Faults faultinject.Faults
	// SlowDown delays each execution (straggler simulation in tests).
	SlowDown time.Duration
}

func (c WorkerConfig) pollInterval() time.Duration {
	if c.PollInterval <= 0 {
		return 250 * time.Millisecond
	}
	return c.PollInterval
}

// WorkerStats counts one worker's activity.
type WorkerStats struct {
	Polled    int64 // tasks received
	Completed int64 // results posted
	Abandoned int64 // tasks dropped (crash/stall/drop faults, lost leases)
}

// Worker runs the pull loop. Create with NewWorker, run with Run.
type Worker struct {
	cfg   WorkerConfig
	cache *core.SpecCache

	polled    atomic.Int64
	completed atomic.Int64
	abandoned atomic.Int64
}

// NewWorker validates the config and builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("fleet: worker needs an ID")
	}
	if cfg.URL == "" && cfg.Local == nil {
		return nil, fmt.Errorf("fleet: worker needs a coordinator URL")
	}
	return &Worker{cfg: cfg, cache: core.NewSpecCache(cfg.SpecCacheDir)}, nil
}

// Stats returns a snapshot of the worker's counters.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		Polled:    w.polled.Load(),
		Completed: w.completed.Load(),
		Abandoned: w.abandoned.Load(),
	}
}

// Run polls, executes, and reports until ctx is cancelled.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.poll(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// The retry client already backed off; pause and re-poll.
			if !sleep(ctx, w.cfg.pollInterval()) {
				return ctx.Err()
			}
			continue
		}
		if resp.Task == nil {
			wait := w.cfg.pollInterval()
			if resp.RetryAfterMS > 0 {
				wait = time.Duration(resp.RetryAfterMS) * time.Millisecond
			}
			if !sleep(ctx, wait) {
				return ctx.Err()
			}
			continue
		}
		w.polled.Add(1)
		w.runTask(ctx, resp.Task)
	}
}

// runTask executes one leased task with heartbeat renewal and fault
// hooks.
func (w *Worker) runTask(ctx context.Context, t *Task) {
	if w.fire(faultinject.FleetWorkerCrash) {
		// Simulated process crash: the lease dies with us.
		w.abandoned.Add(1)
		return
	}

	// Heartbeat while computing; a 410 means the lease is gone
	// (expired and requeued) — cancel the solve and abandon, so the
	// redispatched copy does not race a late result.
	leaseLost := make(chan struct{})
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	stalled := w.fire(faultinject.FleetStallHeartbeat)
	if stalled {
		close(hbDone)
	} else {
		go w.heartbeatLoop(ctx, t, leaseLost, hbStop, hbDone)
	}

	out := w.execute(ctx, t, leaseLost)
	close(hbStop)
	<-hbDone

	select {
	case <-leaseLost:
		w.abandoned.Add(1)
		return
	default:
	}
	if w.fire(faultinject.FleetDropResult) {
		w.abandoned.Add(1)
		return
	}
	if err := w.report(ctx, t, out); err != nil {
		w.abandoned.Add(1)
		return
	}
	w.completed.Add(1)
	if w.fire(faultinject.FleetDupResult) {
		w.report(ctx, t, out) // duplicate delivery; dedup absorbs it
	}
}

// heartbeatLoop renews the lease every third of it. A terminal 410
// closes leaseLost.
func (w *Worker) heartbeatLoop(ctx context.Context, t *Task, leaseLost, stop, done chan struct{}) {
	defer close(done)
	period := t.leaseDuration() / 3
	if period <= 0 {
		period = time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-tick.C:
			if !w.heartbeat(ctx, t) {
				close(leaseLost)
				return
			}
		}
	}
}

// execute runs the task's check through the ordinary pipeline. A
// closed leaseLost channel aborts the solve at its next check point.
func (w *Worker) execute(ctx context.Context, t *Task, leaseLost <-chan struct{}) Outcome {
	if w.cfg.SlowDown > 0 {
		sleep(ctx, w.cfg.SlowDown)
	}
	cj, err := t.Check.CoreJob()
	if err != nil {
		return Outcome{Err: err.Error()}
	}
	dctx, cancel := cancelOn(ctx, leaseLost)
	defer cancel()
	results := core.RunSuite([]core.Job{cj}, core.SuiteOptions{
		Parallelism: 1,
		Context:     dctx,
		SpecCache:   w.cache,
	})
	return OutcomeFromResult(results[0].Res, results[0].Err)
}

// cancelOn derives a context cancelled when extra closes. The caller
// must call the returned cancel to release the relay goroutine.
func cancelOn(ctx context.Context, extra <-chan struct{}) (context.Context, context.CancelFunc) {
	dctx, cancel := context.WithCancel(ctx)
	go func() {
		select {
		case <-extra:
			cancel()
		case <-dctx.Done():
		}
	}()
	return dctx, cancel
}

func (w *Worker) fire(site faultinject.Site) bool {
	return w.cfg.Faults != nil && w.cfg.Faults.Fire(site)
}

// ---- transport (HTTP or in-process) ----------------------------------

func (w *Worker) poll(ctx context.Context) (PollResponse, error) {
	if w.cfg.Local != nil {
		return w.cfg.Local.Poll(w.cfg.ID), nil
	}
	var resp PollResponse
	err := w.cfg.Client.PostJSON(ctx, w.cfg.URL+"/fleet/v1/poll",
		PollRequest{Worker: w.cfg.ID}, &resp)
	return resp, err
}

func (w *Worker) heartbeat(ctx context.Context, t *Task) bool {
	if w.cfg.Local != nil {
		return w.cfg.Local.Heartbeat(w.cfg.ID, t.ID)
	}
	err := w.cfg.Client.PostJSON(ctx, w.cfg.URL+"/fleet/v1/heartbeat",
		HeartbeatRequest{Worker: w.cfg.ID, TaskID: t.ID}, nil)
	if err == nil {
		return true
	}
	var serr *StatusError
	if errors.As(err, &serr) && serr.Code == 410 {
		return false
	}
	// Transient failure: keep computing, the next beat may get
	// through before the lease expires.
	return true
}

func (w *Worker) report(ctx context.Context, t *Task, out Outcome) error {
	if w.cfg.Local != nil {
		w.cfg.Local.acceptOutcome(t.ID, w.cfg.ID, out, false)
		return nil
	}
	return w.cfg.Client.PostJSON(ctx, w.cfg.URL+"/fleet/v1/result",
		ResultRequest{Worker: w.cfg.ID, TaskID: t.ID, Outcome: out}, nil)
}

// sleep waits d or until ctx is done; false on cancellation.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

package fleet

// Coordinator crash recovery. The journal is an append-only JSON-lines
// file: a "plan" record freezes a parent's fan-out (the exact cube
// descriptions, so a restarted coordinator re-dispatches the same
// cubes rather than re-planning — re-encoding could split differently
// and would invalidate the recorded outcomes), and one "done" record
// per accepted task outcome. Replay for a parent fingerprint returns
// the frozen plan and the outcomes already on disk; only the missing
// cubes run again. Records for unknown fingerprints and trailing
// partial lines (a crash mid-write) are skipped — recovery degrades to
// re-running a cube, never to adopting a corrupt outcome.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"checkfence/internal/job"
)

// journalRecord is one JSON line.
type journalRecord struct {
	Event   string      `json:"event"` // "plan" | "done"
	Parent  string      `json:"parent"`
	Checks  []job.Check `json:"checks,omitempty"` // plan: the frozen fan-out
	Task    int         `json:"task,omitempty"`   // done: cube index
	From    string      `json:"from,omitempty"`   // done: producing worker
	Outcome *Outcome    `json:"outcome,omitempty"`
}

type journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	enc  *json.Encoder
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: opening journal: %w", err)
	}
	return &journal{path: path, f: f, enc: json.NewEncoder(f)}, nil
}

func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// WritePlan freezes a parent's fan-out.
func (j *journal) WritePlan(parent string, checks []job.Check) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.enc.Encode(journalRecord{Event: "plan", Parent: parent, Checks: checks}); err != nil {
		return err
	}
	return j.f.Sync()
}

// WriteOutcome records one accepted task outcome. Called with the
// coordinator's aggregation already deduplicated, so each (parent,
// task) appears at most once per plan.
func (j *journal) WriteOutcome(t *task) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := t.outcome
	if err := j.enc.Encode(journalRecord{
		Event: "done", Parent: t.check.CubeOf, Task: t.check.CubeIndex,
		From: t.from, Outcome: &out,
	}); err != nil {
		return err
	}
	return j.f.Sync()
}

// Replay scans the journal for the parent's frozen plan and recorded
// outcomes. A nil plan means the parent was never planned (fresh
// start). Outcomes recorded before the (latest) plan record of the
// parent are honored — the plan is content-addressed by the parent
// fingerprint, so any recorded outcome for it stays valid.
func (j *journal) Replay(parent string) ([]job.Check, map[int]Outcome, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	f, err := os.Open(j.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("fleet: reading journal: %w", err)
	}
	defer f.Close()
	var plan []job.Check
	outs := map[int]Outcome{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // partial trailing write from a crash: skip
		}
		if rec.Parent != parent {
			continue
		}
		switch rec.Event {
		case "plan":
			plan = rec.Checks
		case "done":
			if rec.Outcome != nil {
				outs[rec.Task] = *rec.Outcome
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("fleet: scanning journal: %w", err)
	}
	if plan == nil {
		return nil, nil, nil
	}
	// Drop outcomes outside the plan (a corrupted index): the cube
	// will simply re-run.
	for i := range outs {
		if i < 0 || i >= len(plan) {
			delete(outs, i)
		}
	}
	return plan, outs, nil
}

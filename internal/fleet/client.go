package fleet

// RetryClient is the HTTP client policy shared by fleet workers and
// the checkfence remote CLI: per-request timeouts so a partitioned
// peer cannot hang the caller, retry with exponential backoff plus
// jitter on transient failures (connection errors, 5xx, 429), and
// honoring of Retry-After hints so a saturated server shapes its own
// load instead of being hammered.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"

	"time"
)

// RetryClient posts JSON with bounded retries. The zero value is
// usable (default policy, http.DefaultClient).
type RetryClient struct {
	// HTTP is the underlying client (nil = http.DefaultClient).
	HTTP *http.Client
	// Retries is the number of re-attempts after the first try
	// (0 = 4; negative disables retries).
	Retries int
	// BaseDelay seeds the exponential backoff (0 = 100ms).
	BaseDelay time.Duration
	// MaxDelay caps one backoff step (0 = 5s).
	MaxDelay time.Duration
	// Timeout bounds each individual request attempt (0 = 30s).
	Timeout time.Duration
}

func (c *RetryClient) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *RetryClient) retries() int {
	if c.Retries == 0 {
		return 4
	}
	if c.Retries < 0 {
		return 0
	}
	return c.Retries
}

func (c *RetryClient) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 30 * time.Second
	}
	return c.Timeout
}

// backoff returns the sleep before re-attempt n (1-based): an
// exponential of BaseDelay capped at MaxDelay, with up to 50% added
// jitter so a fleet of retrying clients decorrelates.
func (c *RetryClient) backoff(n int) time.Duration {
	base, max := c.BaseDelay, c.MaxDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << uint(n-1)
	if d > max || d <= 0 {
		d = max
	}
	// The global rand source is concurrency-safe; per-client state
	// would make RetryClient uncopyable for no benefit.
	jitter := time.Duration(rand.Int63n(int64(d)/2 + 1))
	return d + jitter
}

// StatusError is a non-2xx terminal response: the status and (briefly)
// the body, so callers can branch on codes like 410 Gone.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("http %d: %s", e.Code, e.Body)
}

// retryableStatus reports whether a status merits another attempt:
// throttling and server-side failures do, everything else (including
// 410 Gone, the lease-lost signal) is terminal.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// retryAfter extracts a Retry-After hint in seconds (0 when absent or
// unparsable; HTTP-date forms are ignored — the backoff covers them).
func retryAfter(resp *http.Response) time.Duration {
	s := resp.Header.Get("Retry-After")
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0
	}
	return time.Duration(n) * time.Second
}

// PostJSON posts in as JSON to url and decodes the 2xx response into
// out (skipped when out is nil). Transient failures are retried with
// backoff until the budget or ctx runs out; a server-provided
// Retry-After extends the backoff step. Terminal non-2xx responses
// return a *StatusError.
func (c *RetryClient) PostJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, url, body, out)
}

// GetJSON fetches url and decodes the 2xx response into out, with the
// same retry/backoff/Retry-After policy as PostJSON. This is the poll
// path of the checkfence remote client (GET /v1/jobs/{id}).
func (c *RetryClient) GetJSON(ctx context.Context, url string, out any) error {
	return c.do(ctx, http.MethodGet, url, nil, out)
}

func (c *RetryClient) do(ctx context.Context, method, url string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (last attempt: %v)", err, lastErr)
			}
			return err
		}
		wait, err := c.attempt(ctx, method, url, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if wait < 0 || attempt >= c.retries() {
			return err
		}
		backoff := c.backoff(attempt + 1)
		if wait > backoff {
			backoff = wait
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)
		}
	}
}

// attempt runs one request. The returned duration is a server
// Retry-After hint (>= 0 when the error is retryable, < 0 terminal).
func (c *RetryClient) attempt(ctx context.Context, method, url string, body []byte, out any) (time.Duration, error) {
	rctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, url, rd)
	if err != nil {
		return -1, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err // network-level: retryable
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		serr := &StatusError{Code: resp.StatusCode, Body: trimBody(b)}
		if retryableStatus(resp.StatusCode) {
			return retryAfter(resp), serr
		}
		return -1, serr
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return -1, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return -1, fmt.Errorf("fleet: decoding %s response: %w", url, err)
	}
	return -1, nil
}

// trimBody trims a response body for error messages.
func trimBody(b []byte) string {
	s := string(bytes.TrimSpace(b))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/job"
)

// CoordinatorConfig tunes the fault-tolerance machinery. The zero
// value is usable; every knob has a conservative default.
type CoordinatorConfig struct {
	// CubeDepth is the cube-and-conquer split depth for fan-out
	// planning: a check splits into up to 2^CubeDepth cubes (0 = 2).
	CubeDepth int
	// Lease is the lease granted per task; a worker must heartbeat
	// within it or the task requeues (0 = 30s).
	Lease time.Duration
	// MaxRetries bounds dispatch attempts per task before the
	// coordinator solves it locally (0 = 3).
	MaxRetries int
	// BaseBackoff seeds the exponential requeue backoff (0 = 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps one requeue backoff step (0 = 5s).
	MaxBackoff time.Duration
	// PoisonThreshold is the number of distinct workers a task may
	// cost their lease before it is quarantined and solved locally
	// with a stripped serial strategy (0 = 3).
	PoisonThreshold int
	// SpeculateAfter re-dispatches a task still leased after this long
	// to a second worker, first result wins (0 = never).
	SpeculateAfter time.Duration
	// HealthWindow is the per-worker sliding window length for health
	// scoring (0 = 8).
	HealthWindow int
	// DrainFailures drains a worker (polls return no work) when its
	// window holds at least this many failures (0 = 3).
	DrainFailures int
	// DrainCooldown is how long after its last failure a drained
	// worker stays drained (0 = 2x Lease).
	DrainCooldown time.Duration
	// JournalPath enables crash recovery: plans and accepted results
	// are appended as JSON lines and replayed on restart.
	JournalPath string
	// PollRetryAfter hints idle workers when to poll again (0 = 250ms).
	PollRetryAfter time.Duration
	// Local configures local (fallback and aggregation-oracle) solves.
	Local core.SuiteOptions
}

func (c CoordinatorConfig) cubeDepth() int {
	if c.CubeDepth <= 0 {
		return 2
	}
	return c.CubeDepth
}

func (c CoordinatorConfig) lease() time.Duration {
	if c.Lease <= 0 {
		return 30 * time.Second
	}
	return c.Lease
}

func (c CoordinatorConfig) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 3
	}
	return c.MaxRetries
}

func (c CoordinatorConfig) poisonThreshold() int {
	if c.PoisonThreshold <= 0 {
		return 3
	}
	return c.PoisonThreshold
}

func (c CoordinatorConfig) healthWindow() int {
	if c.HealthWindow <= 0 {
		return 8
	}
	return c.HealthWindow
}

func (c CoordinatorConfig) drainFailures() int {
	if c.DrainFailures <= 0 {
		return 3
	}
	return c.DrainFailures
}

func (c CoordinatorConfig) drainCooldown() time.Duration {
	if c.DrainCooldown > 0 {
		return c.DrainCooldown
	}
	return 2 * c.lease()
}

func (c CoordinatorConfig) pollRetryAfter() time.Duration {
	if c.PollRetryAfter <= 0 {
		return 250 * time.Millisecond
	}
	return c.PollRetryAfter
}

// Metrics is a snapshot of the coordinator's fault-tolerance
// counters, exposed on the daemon's /metrics surface.
type Metrics struct {
	TasksDispatched  int64 // leases granted (including re-dispatch)
	TasksCompleted   int64 // results accepted (first per task)
	LeaseExpirations int64 // leases lost to missing heartbeats
	Requeues         int64 // tasks put back after a lost lease or error
	Quarantines      int64 // poison circuit-breaker trips
	Speculations     int64 // straggler re-dispatches
	DupResults       int64 // duplicate results dropped by dedup
	LateResults      int64 // results rejected after lease reassignment
	LocalFallbacks   int64 // tasks solved locally after retry exhaustion
	SpecMismatches   int64 // PASS aggregations with divergent specs
	WorkersDrained   int64 // polls refused for unhealthy workers
	JournalReplayed  int64 // task outcomes restored from the journal
}

// task is one unit in the coordinator's queue.
type task struct {
	id    string
	check job.Check

	state      string               // "queued" | "leased" | "done"
	leases     map[string]time.Time // worker -> lease expiry
	attempts   int
	nextAt     time.Time // not dispatchable before (requeue backoff)
	failedBy   map[string]bool
	speculated bool
	queued     bool      // has an entry in the dispatch queue
	leasedAt   time.Time // first lease of the current dispatch round
	localCause string    // degradation cause when claimed for a local solve

	outcome Outcome
	from    string // worker (or "local"/"journal") that produced outcome
}

// parent is one undivided check being aggregated.
type parent struct {
	fp      string
	check   job.Check
	tasks   []*task
	pending int
	done    chan struct{}

	outcome Outcome
	err     error
}

// workerHealth is one worker's sliding interaction window: true =
// lease honored (result accepted), false = lease lost.
type workerHealth struct {
	window   []bool
	lastFail time.Time
}

func (h *workerHealth) record(ok bool, windowLen int) {
	h.window = append(h.window, ok)
	if len(h.window) > windowLen {
		h.window = h.window[len(h.window)-windowLen:]
	}
	if !ok {
		h.lastFail = time.Now()
	}
}

func (h *workerHealth) failures() int {
	n := 0
	for _, ok := range h.window {
		if !ok {
			n++
		}
	}
	return n
}

// Coordinator plans fan-outs, leases tasks to polling workers, and
// aggregates cube outcomes into parent verdicts. Create with
// NewCoordinator, mount Handler on an HTTP server, submit checks with
// CheckDistributed, stop with Close.
type Coordinator struct {
	cfg     CoordinatorConfig
	journal *journal
	rng     *rand.Rand

	mu      sync.Mutex
	queue   []*task // dispatch order; nextAt-gated
	tasks   map[string]*task
	done    map[string]bool // completed task IDs, for duplicate dedup
	parents map[string]*parent
	health  map[string]*workerHealth
	metrics Metrics

	janitorStop chan struct{}
	janitorDone chan struct{}
	closed      bool
}

// NewCoordinator builds a coordinator and starts its lease janitor.
// The journal (when configured) is opened and replayed lazily, per
// parent fingerprint, at CheckDistributed time.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	c := &Coordinator{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
		tasks:       map[string]*task{},
		done:        map[string]bool{},
		parents:     map[string]*parent{},
		health:      map[string]*workerHealth{},
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	if cfg.JournalPath != "" {
		j, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		c.journal = j
	}
	go c.janitor()
	return c, nil
}

// Close stops the janitor and the journal. In-flight CheckDistributed
// calls are not interrupted (cancel their contexts instead).
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.janitorStop)
	<-c.janitorDone
	if c.journal != nil {
		c.journal.Close()
	}
}

// Metrics returns a snapshot of the fault-tolerance counters.
func (c *Coordinator) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics
}

// janitor scans leases every lease/4 (bounded below at 10ms): expired
// leases requeue their task with backoff, long-running leased tasks
// are speculatively re-dispatched.
func (c *Coordinator) janitor() {
	defer close(c.janitorDone)
	period := c.cfg.lease() / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-c.janitorStop:
			return
		case <-t.C:
			c.sweepLeases()
		}
	}
}

// sweepLeases is one janitor pass.
func (c *Coordinator) sweepLeases() {
	now := time.Now()
	c.mu.Lock()
	var locals []*task
	for _, t := range c.tasks {
		if t.state != "leased" {
			continue
		}
		var oldest time.Time
		for w, exp := range t.leases {
			if now.After(exp) {
				delete(t.leases, w)
				t.failedBy[w] = true
				c.metrics.LeaseExpirations++
				c.healthLocked(w).record(false, c.cfg.healthWindow())
			} else if oldest.IsZero() || exp.Before(oldest) {
				oldest = exp
			}
		}
		if len(t.leases) == 0 {
			if lt := c.requeueLocked(t, now); lt != nil {
				locals = append(locals, lt)
			}
			continue
		}
		// Straggler speculation: the task is still honoring its lease
		// (heartbeats renew it) but has been out since its first lease
		// longer than the speculation horizon — put a second copy in
		// the queue; first result wins and dedup drops the loser.
		if c.cfg.SpeculateAfter > 0 && !t.speculated && !t.queued &&
			!t.leasedAt.IsZero() && now.Sub(t.leasedAt) > c.cfg.SpeculateAfter {
			t.speculated = true
			t.queued = true
			c.metrics.Speculations++
			c.queue = append(c.queue, t)
		}
	}
	c.mu.Unlock()
	for _, t := range locals {
		c.solveLocally(t, t.localCause)
	}
}

// requeueLocked puts a lease-less task back in the queue with
// exponential backoff plus jitter, or — when the retry budget or the
// poison circuit breaker trips — returns it for a local solve.
// Caller holds c.mu.
func (c *Coordinator) requeueLocked(t *task, now time.Time) *task {
	t.state = "queued"
	t.attempts++
	c.metrics.Requeues++
	if len(t.failedBy) >= c.cfg.poisonThreshold() {
		// The cube has cost several distinct workers their lease:
		// assume the formula (not the workers) is the problem and
		// solve it here with a stripped serial strategy.
		t.state = "done" // claimed by the local solver
		t.localCause = "quarantine"
		c.metrics.Quarantines++
		t.check = stripStrategy(t.check)
		return t
	}
	if t.attempts > c.cfg.maxRetries() {
		t.state = "done" // claimed by the local solver
		t.localCause = "local-fallback"
		c.metrics.LocalFallbacks++
		return t
	}
	backoff := c.cfg.BaseBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	max := c.cfg.MaxBackoff
	if max <= 0 {
		max = 5 * time.Second
	}
	d := backoff << uint(t.attempts-1)
	if d > max || d <= 0 {
		d = max
	}
	d += time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	t.nextAt = now.Add(d)
	t.speculated = false
	t.leasedAt = time.Time{}
	if !t.queued {
		t.queued = true
		c.queue = append(c.queue, t)
	}
	return nil
}

// stripStrategy removes intra-check parallelism from a quarantined
// cube's description: the local solve runs the plainest strategy that
// can still answer.
func stripStrategy(ck job.Check) job.Check {
	ck.Portfolio, ck.ShareClauses, ck.Cube = 0, false, 0
	if ck.Backend == "portfolio" || ck.Backend == "cube" {
		ck.Backend = "sat"
	}
	return ck
}

// solveLocally runs a task in the coordinator process (retry budget
// exhausted or quarantine) and feeds the outcome into aggregation.
// The verdict is degraded in provenance, never in value.
func (c *Coordinator) solveLocally(t *task, cause string) {
	out := c.runLocal(t.check)
	out.Degraded = cause
	c.acceptOutcome(t.id, "local", out, true)
}

// runLocal executes a check description in-process under the
// coordinator's local suite options.
func (c *Coordinator) runLocal(ck job.Check) Outcome {
	cj, err := ck.CoreJob()
	if err != nil {
		return Outcome{Err: err.Error()}
	}
	opts := c.cfg.Local
	opts.Parallelism = 1
	opts.OnResult = nil
	results := core.RunSuite([]core.Job{cj}, opts)
	return OutcomeFromResult(results[0].Res, results[0].Err)
}

// healthLocked returns (allocating) the worker's health record.
// Caller holds c.mu.
func (c *Coordinator) healthLocked(w string) *workerHealth {
	h := c.health[w]
	if h == nil {
		h = &workerHealth{}
		c.health[w] = h
	}
	return h
}

// drainedLocked reports whether the worker is currently drained:
// enough failures in its window and still inside the cooldown.
// Caller holds c.mu.
func (c *Coordinator) drainedLocked(w string) bool {
	h := c.health[w]
	if h == nil {
		return false
	}
	return h.failures() >= c.cfg.drainFailures() &&
		time.Since(h.lastFail) < c.cfg.drainCooldown()
}

// CheckDistributed verifies one check through the fleet: the check is
// split into cubes (when it splits), the cubes queued for workers, and
// the aggregated outcome returned once every cube has one. Concurrent
// calls for the same description share one fan-out (single-flight on
// the fingerprint). Cancelling ctx abandons the wait — queued work
// keeps its journal, so a restarted coordinator resumes it.
func (c *Coordinator) CheckDistributed(ctx context.Context, ck job.Check) (Outcome, error) {
	if err := ck.Validate(); err != nil {
		return Outcome{}, err
	}
	fp := ck.Fingerprint()

	c.mu.Lock()
	p, inflight := c.parents[fp]
	if !inflight {
		p = &parent{fp: fp, check: ck, done: make(chan struct{})}
		c.parents[fp] = p
	}
	c.mu.Unlock()

	if !inflight {
		if err := c.launch(p); err != nil {
			c.mu.Lock()
			delete(c.parents, fp)
			c.mu.Unlock()
			return Outcome{}, err
		}
	}

	select {
	case <-p.done:
	case <-ctx.Done():
		return Outcome{}, ctx.Err()
	}
	c.mu.Lock()
	delete(c.parents, fp)
	out, err := p.outcome, p.err
	c.mu.Unlock()
	return out, err
}

// launch plans the fan-out for a parent (or replays it from the
// journal) and queues its unfinished tasks.
func (c *Coordinator) launch(p *parent) error {
	var checks []job.Check
	var replayed map[int]Outcome
	if c.journal != nil {
		plan, outs, err := c.journal.Replay(p.fp)
		if err != nil {
			return err
		}
		checks, replayed = plan, outs
	}
	if checks == nil {
		var err error
		checks, err = c.plan(p.check)
		if err != nil {
			return err
		}
		if c.journal != nil {
			if err := c.journal.WritePlan(p.fp, checks); err != nil {
				return err
			}
		}
	}

	c.mu.Lock()
	p.tasks = make([]*task, len(checks))
	for i, ck := range checks {
		t := &task{
			id:       TaskID(p.fp, i),
			check:    ck,
			state:    "queued",
			leases:   map[string]time.Time{},
			failedBy: map[string]bool{},
		}
		p.tasks[i] = t
		if out, ok := replayed[i]; ok {
			t.state = "done"
			t.outcome = out
			t.from = "journal"
			c.done[t.id] = true
			c.metrics.JournalReplayed++
			continue
		}
		t.queued = true
		c.tasks[t.id] = t
		c.queue = append(c.queue, t)
		p.pending++
	}
	pending := p.pending
	c.mu.Unlock()
	if pending == 0 {
		c.finish(p)
	}
	return nil
}

// plan splits a check into cube descriptions, falling back to a
// single whole-check task when it does not usefully split (too few
// order variables, rf-forced backend, planning failure).
func (c *Coordinator) plan(ck job.Check) ([]job.Check, error) {
	fp := ck.Fingerprint()
	single := []job.Check{withCube(ck, fp, 0, nil)}
	if ck.Backend == "rf" {
		return single, nil // no SAT order variables to split on
	}
	impl, test, err := ck.Resolve()
	if err != nil {
		return nil, err
	}
	opts, err := ck.Options()
	if err != nil {
		return nil, err
	}
	cubes, err := core.CubeAssumptions(impl, test, opts, c.cfg.cubeDepth())
	if err != nil || len(cubes) < 2 {
		// Planning failure is not a check failure: degrade to an
		// undivided dispatch.
		return single, nil
	}
	out := make([]job.Check, len(cubes))
	for i, cube := range cubes {
		out[i] = withCube(ck, fp, i, cube)
	}
	return out, nil
}

// withCube stamps a description as cube i of the parent fingerprint.
func withCube(ck job.Check, fp string, i int, assume []int) job.Check {
	ck.Assume = append([]int(nil), assume...)
	ck.CubeOf = fp
	ck.CubeIndex = i
	// A cube must never join a model-sweep group on the worker (the
	// assumptions are per-encoding), and core excludes it; making it
	// explicit here keeps the wire description self-describing.
	if len(assume) > 0 {
		ck.Sweep = "off"
	}
	return ck
}

// acceptOutcome is the exactly-once aggregation point: the first
// outcome per task wins, everything else (duplicate delivery, late
// results after reassignment, speculative losers) is counted and
// dropped. local marks coordinator-produced outcomes.
func (c *Coordinator) acceptOutcome(taskID, worker string, out Outcome, local bool) bool {
	c.mu.Lock()
	if c.done[taskID] {
		// The task already has its one outcome: a transport-level
		// duplicate, a speculative loser, or a result that lost the
		// race to a local fallback.
		c.metrics.DupResults++
		c.mu.Unlock()
		return false
	}
	t, ok := c.tasks[taskID]
	if !ok {
		c.metrics.LateResults++
		c.mu.Unlock()
		return false
	}
	if !local {
		if _, leased := t.leases[worker]; !leased && t.state != "done" {
			// The worker lost its lease (expired and requeued) but the
			// result still arrived. With the task not yet claimed by a
			// local solve this is still useful work — but accepting it
			// would race the redispatched copy, so only accept when the
			// lease is current. Count it; the redispatch will answer.
			c.metrics.LateResults++
			c.healthLocked(worker).record(false, c.cfg.healthWindow())
			c.mu.Unlock()
			return false
		}
	}
	if out.Err != "" && !local {
		// The check failed to run on the worker: treat as a lost
		// lease — requeue with backoff (or fall back locally).
		delete(t.leases, worker)
		t.failedBy[worker] = true
		c.healthLocked(worker).record(false, c.cfg.healthWindow())
		var lt *task
		if len(t.leases) == 0 {
			lt = c.requeueLocked(t, time.Now())
		}
		c.mu.Unlock()
		if lt != nil {
			c.solveLocally(lt, lt.localCause)
		}
		return false
	}
	t.state = "done"
	t.outcome = out
	t.from = worker
	t.leases = map[string]time.Time{}
	c.metrics.TasksCompleted++
	c.done[taskID] = true
	if !local {
		c.healthLocked(worker).record(true, c.cfg.healthWindow())
	}
	delete(c.tasks, taskID)

	// Journal before aggregation: a crash after this line replays the
	// outcome instead of re-running the cube.
	var jerr error
	if c.journal != nil {
		jerr = c.journal.WriteOutcome(t)
	}
	p := c.parents[parentOf(t)]
	var finished *parent
	if p != nil {
		p.pending--
		if p.pending == 0 {
			finished = p
		}
	}
	c.mu.Unlock()
	_ = jerr // journal write failure degrades recovery, not the verdict
	if finished != nil {
		c.finish(finished)
	}
	return true
}

// parentOf extracts the parent fingerprint from a task.
func parentOf(t *task) string { return t.check.CubeOf }

// finish aggregates a parent's task outcomes and signals waiters.
func (c *Coordinator) finish(p *parent) {
	out, redo := aggregate(p.tasks)
	if redo {
		// PASS cubes disagreed on the observation set — an invariant
		// violation (mining is cube-independent). Degrade: discard the
		// distributed outcomes and solve the undivided check locally.
		c.mu.Lock()
		c.metrics.SpecMismatches++
		c.metrics.LocalFallbacks++
		c.mu.Unlock()
		out = c.runLocal(p.check)
		out.Degraded = "spec-mismatch"
	}
	c.mu.Lock()
	p.outcome = out
	close(p.done)
	c.mu.Unlock()
}

// aggregate folds cube outcomes into the parent verdict:
//
//	any FAIL  -> FAIL (deterministic pick: seq-bug first, then lowest
//	             bound-round count, then lowest cube index)
//	all PASS  -> PASS, requiring byte-identical observation sets
//	             (redo=true on mismatch)
//	otherwise -> UNKNOWN (some cube exhausted its budget; the merged
//	             budget trail is preserved)
//
// Soundness: the cubes are jointly exhaustive over the split
// variables, so an execution violating the specification exists iff it
// exists in some cube, and no execution violates it iff no cube has
// one. See DESIGN.md.
func aggregate(tasks []*task) (out Outcome, redo bool) {
	var fail, unknown *Outcome
	for i := range tasks {
		o := &tasks[i].outcome
		switch {
		case o.Err != "":
			// Local fallback also failed — surface the error.
			return *o, false
		case o.Verdict == "fail":
			if fail == nil || betterFail(o, fail) {
				fail = o
			}
		case o.Verdict == "unknown":
			if unknown == nil {
				unknown = o
			}
		}
	}
	if fail != nil {
		return *fail, false
	}
	if unknown != nil {
		return *unknown, false
	}
	// All PASS: the observation sets must agree byte-for-byte (the
	// specification is cube-independent).
	out = tasks[0].outcome
	for _, t := range tasks[1:] {
		if t.outcome.Spec != out.Spec {
			return Outcome{}, true
		}
		if t.outcome.Degraded != "" && out.Degraded == "" {
			out.Degraded = t.outcome.Degraded
		}
	}
	return out, false
}

// betterFail orders failing outcomes for deterministic adoption:
// sequential bugs dominate (they are model-independent and cheapest to
// explain), then the failure found at the fewest bound rounds.
func betterFail(a, b *Outcome) bool {
	if a.SeqBug != b.SeqBug {
		return a.SeqBug
	}
	return a.BoundRounds < b.BoundRounds
}

// ---- HTTP surface ----------------------------------------------------

// Handler returns the coordinator's HTTP API: POST /fleet/v1/poll,
// /fleet/v1/heartbeat, /fleet/v1/result.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/v1/poll", c.handlePoll)
	mux.HandleFunc("/fleet/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/fleet/v1/result", c.handleResult)
	return mux
}

func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if req.Worker == "" {
		http.Error(w, "worker id required", http.StatusBadRequest)
		return
	}
	resp := c.Poll(req.Worker)
	w.Header().Set("Content-Type", "application/json")
	if resp.Task == nil && resp.RetryAfterMS >= 1000 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", resp.RetryAfterMS/1000))
	}
	json.NewEncoder(w).Encode(resp)
}

// Poll hands the calling worker the next dispatchable task (or a
// retry hint). Drained workers get no work until their cooldown ends.
func (c *Coordinator) Poll(worker string) PollResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.drainedLocked(worker) {
		c.metrics.WorkersDrained++
		return PollResponse{RetryAfterMS: c.cfg.drainCooldown().Milliseconds()}
	}
	// One compacting scan: finished entries (local solves, speculative
	// copies whose primary won) are dropped, the first dispatchable
	// task is leased to the worker, everything else is kept in order.
	kept := c.queue[:0]
	var granted *task
	for _, t := range c.queue {
		if t.state == "done" {
			t.queued = false
			continue
		}
		if granted != nil || now.Before(t.nextAt) {
			kept = append(kept, t)
			continue
		}
		// A worker that already failed this task is excluded only while
		// the task is fresh in the queue — a grace of one lease past its
		// backoff. After that anyone may retry it: otherwise a fleet
		// whose every worker failed the task would starve it instead of
		// draining the retry budget into the local fallback.
		if t.failedBy[worker] && now.Before(t.nextAt.Add(c.cfg.lease())) {
			kept = append(kept, t)
			continue
		}
		if _, has := t.leases[worker]; has {
			kept = append(kept, t) // speculation must use a different worker
			continue
		}
		granted = t
		t.queued = false
	}
	c.queue = kept
	if granted == nil {
		return PollResponse{RetryAfterMS: c.cfg.pollRetryAfter().Milliseconds()}
	}
	granted.state = "leased"
	granted.leases[worker] = now.Add(c.cfg.lease())
	if granted.leasedAt.IsZero() {
		granted.leasedAt = now
	}
	c.metrics.TasksDispatched++
	return PollResponse{Task: &Task{
		ID:      granted.id,
		Check:   granted.check,
		LeaseMS: c.cfg.lease().Milliseconds(),
	}}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if c.Heartbeat(req.Worker, req.TaskID) {
		w.WriteHeader(http.StatusOK)
		return
	}
	http.Error(w, "lease gone", http.StatusGone)
}

// Heartbeat renews the worker's lease on the task; false means the
// lease is gone (expired and reassigned, or the task is finished) and
// the worker should abandon the work.
func (c *Coordinator) Heartbeat(worker, taskID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tasks[taskID]
	if !ok || t.state != "leased" {
		return false
	}
	if _, has := t.leases[worker]; !has {
		return false
	}
	t.leases[worker] = time.Now().Add(c.cfg.lease())
	return true
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !decodeInto(w, r, &req) {
		return
	}
	c.acceptOutcome(req.TaskID, req.Worker, req.Outcome, false)
	// Both accepted and deduplicated results answer 200: the worker's
	// obligation ends either way (at-least-once delivery semantics).
	w.WriteHeader(http.StatusOK)
}

// QueueDepth reports queued (dispatchable or backing-off) tasks.
func (c *Coordinator) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.queue {
		if t.state != "done" {
			n++
		}
	}
	return n
}

// WorkerHealth reports each known worker's failure count within its
// current window, sorted by worker id (metrics and tests).
func (c *Coordinator) WorkerHealth() []struct {
	Worker   string
	Failures int
} {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]struct {
		Worker   string
		Failures int
	}, 0, len(c.health))
	for w, h := range c.health {
		out = append(out, struct {
			Worker   string
			Failures int
		}{w, h.failures()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

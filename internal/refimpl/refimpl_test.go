package refimpl

import (
	"testing"

	"checkfence/internal/harness"
	"checkfence/internal/lsl"
)

func TestQueueSemantics(t *testing.T) {
	q := &Queue{}
	if ret, _ := q.Apply("d", 0); !ret.Equal(lsl.Int(0)) {
		t.Error("dequeue on empty must return false")
	}
	q.Apply("e", 1)
	q.Apply("e", 0)
	ret, out := q.Apply("d", 0)
	if !ret.Equal(lsl.Int(1)) || !out.Equal(lsl.Int(1)) {
		t.Errorf("first dequeue = %v, %v", ret, out)
	}
	ret, out = q.Apply("d", 0)
	if !ret.Equal(lsl.Int(1)) || !out.Equal(lsl.Int(0)) {
		t.Errorf("second dequeue = %v, %v (FIFO)", ret, out)
	}
}

func TestSetSemantics(t *testing.T) {
	s := NewSet()
	if ret, _ := s.Apply("c", 1); !ret.Equal(lsl.Int(0)) {
		t.Error("contains on empty must be false")
	}
	if ret, _ := s.Apply("a", 1); !ret.Equal(lsl.Int(1)) {
		t.Error("first add must succeed")
	}
	if ret, _ := s.Apply("a", 1); !ret.Equal(lsl.Int(0)) {
		t.Error("second add must fail")
	}
	if ret, _ := s.Apply("c", 1); !ret.Equal(lsl.Int(1)) {
		t.Error("contains must now be true")
	}
	if ret, _ := s.Apply("r", 1); !ret.Equal(lsl.Int(1)) {
		t.Error("remove must succeed")
	}
	if ret, _ := s.Apply("r", 1); !ret.Equal(lsl.Int(0)) {
		t.Error("second remove must fail")
	}
}

func TestDequeSemantics(t *testing.T) {
	d := &Deque{}
	d.Apply("al", 1) // [1]
	d.Apply("ar", 0) // [1 0]
	d.Apply("al", 0) // [0 1 0]
	if ret, out := d.Apply("rr", 0); !ret.Equal(lsl.Int(1)) || !out.Equal(lsl.Int(0)) {
		t.Errorf("popRight = %v, %v", ret, out)
	}
	if ret, out := d.Apply("rl", 0); !ret.Equal(lsl.Int(1)) || !out.Equal(lsl.Int(0)) {
		t.Errorf("popLeft = %v, %v", ret, out)
	}
	if ret, out := d.Apply("rl", 0); !ret.Equal(lsl.Int(1)) || !out.Equal(lsl.Int(1)) {
		t.Errorf("popLeft = %v, %v", ret, out)
	}
	if ret, _ := d.Apply("rr", 0); !ret.Equal(lsl.Int(0)) {
		t.Error("deque must now be empty")
	}
}

func TestCloneIndependence(t *testing.T) {
	q := &Queue{}
	q.Apply("e", 1)
	q2 := q.Clone()
	q2.Apply("d", 0)
	if ret, _ := q.Apply("d", 0); !ret.Equal(lsl.Int(1)) {
		t.Error("clone must not share state")
	}
	s := NewSet()
	s.Apply("a", 1)
	s2 := s.Clone()
	s2.Apply("r", 1)
	if ret, _ := s.Apply("c", 1); !ret.Equal(lsl.Int(1)) {
		t.Error("set clone must not share state")
	}
}

func TestKeyCanonical(t *testing.T) {
	a := NewSet()
	a.Apply("a", 1)
	a.Apply("a", 0)
	b := NewSet()
	b.Apply("a", 0)
	b.Apply("a", 1)
	if a.Key() != b.Key() {
		t.Errorf("set keys must be order independent: %q vs %q", a.Key(), b.Key())
	}
}

func enumerate(t *testing.T, implName, testName string) int {
	t.Helper()
	impl, err := harness.Get(implName)
	if err != nil {
		t.Fatal(err)
	}
	test, err := harness.GetTest(impl, testName)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Enumerate(impl, test)
	if err != nil {
		t.Fatal(err)
	}
	return set.Len()
}

func TestEnumerateT0(t *testing.T) {
	// T0 = (e | d): arg A in {0,1}; dequeue either misses (false,
	// undef) or gets A. 2 args x 2 outcomes = 4 observations.
	if n := enumerate(t, "msn", "T0"); n != 4 {
		t.Errorf("T0 observations = %d, want 4", n)
	}
}

func TestEnumerateTpc2(t *testing.T) {
	// Tpc2 = (ee | dd): known small set (paper: sets are small).
	n := enumerate(t, "msn", "Tpc2")
	if n == 0 || n > 64 {
		t.Errorf("Tpc2 observations = %d, implausible", n)
	}
	// FIFO sanity: enumerate by hand for fixed args (1,0):
	// dd sees: (miss,miss), (1,miss), (1,0) — never 0 before 1.
	impl, _ := harness.Get("msn")
	test, _ := harness.GetTest(impl, "Tpc2")
	set, err := Enumerate(impl, test)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range set.All() {
		// layout: e.arg, e.arg, d.ret, d.out, d.ret, d.out
		a1, a2 := o[0], o[1]
		r1, v1 := o[2], o[3]
		r2, v2 := o[4], o[5]
		if a1.Equal(lsl.Int(1)) && a2.Equal(lsl.Int(0)) &&
			r1.Equal(lsl.Int(1)) && r2.Equal(lsl.Int(1)) {
			if !v1.Equal(lsl.Int(1)) || !v2.Equal(lsl.Int(0)) {
				t.Errorf("FIFO violated in refimpl enumeration: %v", o.Key())
			}
		}
	}
}

func TestEnumerateDq(t *testing.T) {
	// Dq is the deep 8-thread deque test; the memoized enumeration
	// must handle it.
	n := enumerate(t, "snark", "Dq")
	if n == 0 {
		t.Error("Dq must have observations")
	}
	t.Logf("Dq observation set: %d", n)
}

func TestEnumerateInitSequence(t *testing.T) {
	// Sacr2 = aar (a | c | r): the init ops' returns are observed and
	// deterministic per argument assignment.
	n := enumerate(t, "lazylist", "Sacr2")
	if n == 0 {
		t.Error("Sacr2 must have observations")
	}
}

func TestNewMachineUnknownKind(t *testing.T) {
	if _, err := NewMachine("tree"); err == nil {
		t.Error("unknown kind must fail")
	}
}

// Package refimpl provides small, fast reference implementations of
// the three abstract data types of the study set (queue, set, deque)
// and a serial-execution enumerator over them.
//
// This is the paper's "refset" path (Fig. 11a): instead of mining the
// observation set from the concurrent C implementation with the SAT
// solver, the set is computed by explicitly enumerating all atomic
// interleavings of the test's operations against a trivially correct
// sequential implementation. Both paths must produce identical sets —
// the test suite checks this, which differentially validates the SAT
// encoder and the C translation.
package refimpl

import (
	"fmt"
	"sort"
	"strings"

	"checkfence/internal/harness"
	"checkfence/internal/lsl"
	"checkfence/internal/spec"
)

// Machine is a sequential abstract data type instance.
type Machine interface {
	// Apply executes one operation. arg is ignored when the operation
	// takes no argument. ret and out follow the harness observation
	// conventions: ret is Int(0/1) (or Undef when the operation has no
	// return value, in which case it is not observed), out is the
	// produced value or Undef.
	Apply(op string, arg int64) (ret, out lsl.Value)
	// Key renders the state canonically, for memoization.
	Key() string
	// Clone copies the machine.
	Clone() Machine
}

// Queue is a FIFO queue of small integers.
type Queue struct{ items []int64 }

// Apply implements Machine.
func (q *Queue) Apply(op string, arg int64) (lsl.Value, lsl.Value) {
	switch op {
	case "e":
		q.items = append(q.items, arg)
		return lsl.Undef(), lsl.Undef()
	case "d":
		if len(q.items) == 0 {
			return lsl.Int(0), lsl.Undef()
		}
		v := q.items[0]
		q.items = q.items[1:]
		return lsl.Int(1), lsl.Int(v)
	}
	panic("refimpl: unknown queue op " + op)
}

// Key implements Machine.
func (q *Queue) Key() string { return fmt.Sprint(q.items) }

// Clone implements Machine.
func (q *Queue) Clone() Machine { return &Queue{items: append([]int64(nil), q.items...)} }

// Set is a set of small integers.
type Set struct{ member map[int64]bool }

// NewSet returns an empty set.
func NewSet() *Set { return &Set{member: map[int64]bool{}} }

// Apply implements Machine.
func (s *Set) Apply(op string, arg int64) (lsl.Value, lsl.Value) {
	switch op {
	case "a":
		if s.member[arg] {
			return lsl.Int(0), lsl.Undef()
		}
		s.member[arg] = true
		return lsl.Int(1), lsl.Undef()
	case "c":
		return lsl.Bool(s.member[arg]), lsl.Undef()
	case "r":
		if !s.member[arg] {
			return lsl.Int(0), lsl.Undef()
		}
		delete(s.member, arg)
		return lsl.Int(1), lsl.Undef()
	}
	panic("refimpl: unknown set op " + op)
}

// Key implements Machine.
func (s *Set) Key() string {
	keys := make([]int64, 0, len(s.member))
	for k := range s.member {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return fmt.Sprint(keys)
}

// Clone implements Machine.
func (s *Set) Clone() Machine {
	m := map[int64]bool{}
	for k, v := range s.member {
		m[k] = v
	}
	return &Set{member: m}
}

// Deque is a double-ended queue of small integers.
type Deque struct{ items []int64 }

// Apply implements Machine.
func (d *Deque) Apply(op string, arg int64) (lsl.Value, lsl.Value) {
	switch op {
	case "al":
		d.items = append([]int64{arg}, d.items...)
		return lsl.Undef(), lsl.Undef()
	case "ar":
		d.items = append(d.items, arg)
		return lsl.Undef(), lsl.Undef()
	case "rl":
		if len(d.items) == 0 {
			return lsl.Int(0), lsl.Undef()
		}
		v := d.items[0]
		d.items = d.items[1:]
		return lsl.Int(1), lsl.Int(v)
	case "rr":
		if len(d.items) == 0 {
			return lsl.Int(0), lsl.Undef()
		}
		v := d.items[len(d.items)-1]
		d.items = d.items[:len(d.items)-1]
		return lsl.Int(1), lsl.Int(v)
	}
	panic("refimpl: unknown deque op " + op)
}

// Key implements Machine.
func (d *Deque) Key() string { return fmt.Sprint(d.items) }

// Clone implements Machine.
func (d *Deque) Clone() Machine { return &Deque{items: append([]int64(nil), d.items...)} }

// NewMachine creates the reference machine for a data type kind.
func NewMachine(kind string) (Machine, error) {
	switch kind {
	case "queue":
		return &Queue{}, nil
	case "set":
		return NewSet(), nil
	case "deque":
		return &Deque{}, nil
	}
	return nil, fmt.Errorf("refimpl: unknown kind %q", kind)
}

// opSlot describes where one operation's observation values live in
// the flat observation vector.
type opSlot struct {
	op        harness.OpSig
	argIdx    int // index of the argument entry, -1 if none
	retIdx    int
	outIdx    int
	argValues int // number of argument entries (0 or 1)
}

// layout computes, in the harness's canonical entry order, the slots
// of every operation: init ops first, then threads in order.
func layout(impl *harness.Impl, test *harness.Test) (slots [][]opSlot, initSlots []opSlot, total int, err error) {
	next := 0
	mk := func(inv harness.Invocation) (opSlot, error) {
		op, ok := impl.OpByMnemonic(inv.Op)
		if !ok {
			return opSlot{}, fmt.Errorf("refimpl: unknown op %q", inv.Op)
		}
		s := opSlot{op: op, argIdx: -1, retIdx: -1, outIdx: -1}
		if op.NumArgs > 0 {
			s.argIdx = next
			s.argValues = op.NumArgs
			next += op.NumArgs
		}
		if op.HasRet {
			s.retIdx = next
			next++
		}
		if op.HasOut {
			s.outIdx = next
			next++
		}
		return s, nil
	}
	for _, inv := range test.Init {
		s, err := mk(inv)
		if err != nil {
			return nil, nil, 0, err
		}
		initSlots = append(initSlots, s)
	}
	for _, th := range test.Threads {
		var ts []opSlot
		for _, inv := range th {
			s, err := mk(inv)
			if err != nil {
				return nil, nil, 0, err
			}
			ts = append(ts, s)
		}
		slots = append(slots, ts)
	}
	return slots, initSlots, next, nil
}

// Enumerate computes the serial observation set of a test by
// exhaustive enumeration: all argument assignments from {0,1} and all
// atomic interleavings of the threads' operations. Suffix observation
// sets are memoized on (machine state, thread positions), which keeps
// the larger Fig. 8 tests tractable.
func Enumerate(impl *harness.Impl, test *harness.Test) (*spec.Set, error) {
	threadSlots, initSlots, total, err := layout(impl, test)
	if err != nil {
		return nil, err
	}
	base, err := NewMachine(impl.Kind)
	if err != nil {
		return nil, err
	}

	// Enumerate the argument assignment for every operation that
	// takes one: flatten all arg slots.
	var argSlots []*opSlot
	for i := range initSlots {
		if initSlots[i].argIdx >= 0 {
			argSlots = append(argSlots, &initSlots[i])
		}
	}
	for ti := range threadSlots {
		for i := range threadSlots[ti] {
			if threadSlots[ti][i].argIdx >= 0 {
				argSlots = append(argSlots, &threadSlots[ti][i])
			}
		}
	}
	if len(argSlots) > 20 {
		return nil, fmt.Errorf("refimpl: too many arguments (%d)", len(argSlots))
	}

	result := spec.NewSet()
	args := make(map[*opSlot]int64, len(argSlots))
	for mask := 0; mask < 1<<uint(len(argSlots)); mask++ {
		for i, s := range argSlots {
			args[s] = int64(mask >> uint(i) & 1)
		}
		obs := make(spec.Observation, total)
		for i := range obs {
			obs[i] = lsl.Undef()
		}
		m := base.Clone()
		// Serial init prefix.
		for i := range initSlots {
			applySlot(m, &initSlots[i], args, obs)
		}
		e := &enumerator{slots: threadSlots, args: args, memo: map[string][]partial{}}
		pos := make([]int, len(threadSlots))
		for _, suffix := range e.run(m, pos) {
			full := append(spec.Observation(nil), obs...)
			for _, kv := range suffix {
				full[kv.idx] = kv.val
			}
			result.Add(full)
		}
	}
	return result, nil
}

type kv struct {
	idx int
	val lsl.Value
}

// partial is a suffix observation: values for the entries of
// operations executed from some (state, positions) point on.
type partial []kv

type enumerator struct {
	slots [][]opSlot
	args  map[*opSlot]int64
	memo  map[string][]partial
}

func applySlot(m Machine, s *opSlot, args map[*opSlot]int64, obs spec.Observation) []kv {
	arg := int64(0)
	var out []kv
	if s.argIdx >= 0 {
		arg = args[s]
		if obs != nil {
			obs[s.argIdx] = lsl.Int(arg)
		}
		out = append(out, kv{s.argIdx, lsl.Int(arg)})
	}
	ret, outV := m.Apply(s.op.Mnemonic, arg)
	if s.retIdx >= 0 {
		if obs != nil {
			obs[s.retIdx] = ret
		}
		out = append(out, kv{s.retIdx, ret})
	}
	if s.outIdx >= 0 {
		if obs != nil {
			obs[s.outIdx] = outV
		}
		out = append(out, kv{s.outIdx, outV})
	}
	return out
}

func (e *enumerator) run(m Machine, pos []int) []partial {
	done := true
	for ti, p := range pos {
		if p < len(e.slots[ti]) {
			done = false
			_ = ti
			break
		}
	}
	if done {
		return []partial{nil}
	}
	key := m.Key() + "|" + fmt.Sprint(pos)
	if cached, ok := e.memo[key]; ok {
		return cached
	}
	var results []partial
	for ti := range e.slots {
		if pos[ti] >= len(e.slots[ti]) {
			continue
		}
		slot := &e.slots[ti][pos[ti]]
		m2 := m.Clone()
		prefix := applySlot(m2, slot, e.args, nil)
		pos2 := append([]int(nil), pos...)
		pos2[ti]++
		for _, suffix := range e.run(m2, pos2) {
			p := make(partial, 0, len(prefix)+len(suffix))
			p = append(p, prefix...)
			p = append(p, suffix...)
			results = append(results, p)
		}
	}
	e.memo[key] = results
	return results
}

// FormatSet renders an observation set compactly for debugging.
func FormatSet(s *spec.Set) string {
	var sb strings.Builder
	for _, o := range s.All() {
		sb.WriteString(o.Key())
		sb.WriteByte('\n')
	}
	return sb.String()
}

package lsl

import "fmt"

// Reg names a virtual register. Registers are single-assignment only
// after the encoder's symbolic compilation; at the LSL level they are
// ordinary mutable locals.
type Reg string

// Op is a primitive operation code.
type Op uint8

// Primitive operations. Arithmetic and logic operate on integers;
// OpField and OpIndex extend pointer component sequences; OpEq/OpNe
// compare any two values (cross-kind comparisons are false, matching
// null-pointer tests against the integer 0).
const (
	OpNone Op = iota
	OpAdd
	OpSub
	OpMul
	OpNeg
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpNot    // logical negation
	OpBool   // normalize to 0/1 (C truth test)
	OpAnd    // bitwise/logical and of already-normalized booleans
	OpOr     // bitwise/logical or of already-normalized booleans
	OpXor    // bitwise xor
	OpField  // args[0] must be a pointer; Imm is the offset appended
	OpIndex  // args[0] pointer, args[1] integer index appended
	OpIdent  // copy
	OpSelect // args[0] condition, args[1] then-value, args[2] else-value
)

var opNames = map[Op]string{
	OpNone: "none", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpNeg: "neg",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpNot: "not", OpBool: "bool", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpField: "field", OpIndex: "index", OpIdent: "ident", OpSelect: "select",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Arity returns the number of register arguments the operation takes.
func (o Op) Arity() int {
	switch o {
	case OpNeg, OpNot, OpBool, OpIdent, OpField:
		return 1
	case OpSelect:
		return 3
	default:
		return 2
	}
}

// FenceKind identifies one of the four memory ordering fences of the
// SPARC RMO style used by the paper: an X-Y fence orders all accesses
// of type X preceding it before all accesses of type Y following it.
type FenceKind uint8

const (
	FenceLoadLoad FenceKind = iota
	FenceLoadStore
	FenceStoreLoad
	FenceStoreStore
	numFenceKinds
)

// NumFenceKinds is the number of distinct fence kinds.
const NumFenceKinds = int(numFenceKinds)

func (k FenceKind) String() string {
	switch k {
	case FenceLoadLoad:
		return "load-load"
	case FenceLoadStore:
		return "load-store"
	case FenceStoreLoad:
		return "store-load"
	case FenceStoreStore:
		return "store-store"
	default:
		return fmt.Sprintf("FenceKind(%d)", uint8(k))
	}
}

// ParseFenceKind parses the string names used in C source
// (fence("load-load") etc.).
func ParseFenceKind(s string) (FenceKind, error) {
	switch s {
	case "load-load":
		return FenceLoadLoad, nil
	case "load-store":
		return FenceLoadStore, nil
	case "store-load":
		return FenceStoreLoad, nil
	case "store-store":
		return FenceStoreStore, nil
	}
	return 0, fmt.Errorf("lsl: unknown fence kind %q", s)
}

// OrdersBefore reports whether the fence orders an access of kind
// isLoadBefore (true: load, false: store) occurring before it.
func (k FenceKind) OrdersBefore(isLoad bool) bool {
	switch k {
	case FenceLoadLoad, FenceLoadStore:
		return isLoad
	default:
		return !isLoad
	}
}

// OrdersAfter reports whether the fence orders an access of kind
// isLoadAfter occurring after it.
func (k FenceKind) OrdersAfter(isLoad bool) bool {
	switch k {
	case FenceLoadLoad, FenceStoreLoad:
		return isLoad
	default:
		return !isLoad
	}
}

// LoopClass describes how the unroller treats a loop block.
type LoopClass uint8

const (
	// NotLoop marks plain tagged blocks (no back edge).
	NotLoop LoopClass = iota
	// BoundedLoop is unrolled lazily: an overflow probe decides whether
	// the current bound suffices (paper §3.3).
	BoundedLoop
	// SpinLoop is a side-effect-free retry loop (e.g. lock acquisition);
	// the paper's spin reduction restricts it to one visible iteration
	// with an assumption that it exits.
	SpinLoop
)

func (c LoopClass) String() string {
	switch c {
	case NotLoop:
		return "block"
	case BoundedLoop:
		return "loop"
	case SpinLoop:
		return "spin"
	default:
		return fmt.Sprintf("LoopClass(%d)", uint8(c))
	}
}

// Stmt is an LSL statement (paper Fig. 4).
type Stmt interface {
	isStmt()
	String() string
}

// ConstStmt assigns a constant value: r = v.
type ConstStmt struct {
	Dst Reg
	Val Value
}

// OpStmt applies a primitive operation: r = f(args). Imm carries the
// static offset for OpField.
type OpStmt struct {
	Dst  Reg
	Op   Op
	Args []Reg
	Imm  int64
}

// StoreStmt writes memory: *addr = src.
type StoreStmt struct {
	Addr Reg
	Src  Reg
}

// LoadStmt reads memory: dst = *addr.
type LoadStmt struct {
	Dst  Reg
	Addr Reg
}

// FenceStmt is a memory ordering fence.
type FenceStmt struct {
	Kind FenceKind
}

// AtomicStmt executes its body atomically: in program order and never
// interleaved with other threads (paper Fig. 6: CAS is modeled this
// way).
type AtomicStmt struct {
	Body []Stmt
}

// CallStmt invokes a procedure: rets = p(args). NoRetry marks the
// primed operation forms of the paper's Fig. 8 tests: all loops inside
// the call are restricted to a single iteration with an assumption
// that they exit.
type CallStmt struct {
	Proc    string
	Args    []Reg
	Rets    []Reg
	NoRetry bool
}

// BlockStmt is a tagged block. A break exits it; a continue (legal only
// when Loop != NotLoop) repeats it. Execution falls out of the block
// after the last statement.
type BlockStmt struct {
	Tag  string
	Loop LoopClass
	Body []Stmt
}

// BreakStmt conditionally exits the enclosing block with the matching
// tag: if (cond) break tag.
type BreakStmt struct {
	Cond Reg
	Tag  string
}

// ContinueStmt conditionally repeats the enclosing loop block with the
// matching tag: if (cond) continue tag.
type ContinueStmt struct {
	Cond Reg
	Tag  string
}

// AssertStmt checks a condition; a violated (or undefined) condition is
// a bug the checker reports.
type AssertStmt struct {
	Cond Reg
	Msg  string
}

// AssumeStmt restricts attention to executions satisfying the
// condition.
type AssumeStmt struct {
	Cond Reg
}

// HavocStmt assigns a nondeterministic integer of the given bit width.
// Test programs use it for unspecified operation arguments.
type HavocStmt struct {
	Dst  Reg
	Bits int
}

// AllocStmt models new_node(): it yields a pointer to a fresh memory
// object whose fields are initially undefined. Site labels the
// allocation for traces; the unroller assigns each dynamic instance a
// distinct base address.
type AllocStmt struct {
	Dst  Reg
	Site string
}

// OverflowStmt is inserted by the unroller at the point where a loop's
// unrolling bound is exhausted. LoopID identifies the loop instance so
// the lazy-bounds procedure can grow the right bound.
type OverflowStmt struct {
	LoopID int
}

func (*ConstStmt) isStmt()    {}
func (*OpStmt) isStmt()       {}
func (*StoreStmt) isStmt()    {}
func (*LoadStmt) isStmt()     {}
func (*FenceStmt) isStmt()    {}
func (*AtomicStmt) isStmt()   {}
func (*CallStmt) isStmt()     {}
func (*BlockStmt) isStmt()    {}
func (*BreakStmt) isStmt()    {}
func (*ContinueStmt) isStmt() {}
func (*AssertStmt) isStmt()   {}
func (*AssumeStmt) isStmt()   {}
func (*HavocStmt) isStmt()    {}
func (*AllocStmt) isStmt()    {}
func (*OverflowStmt) isStmt() {}

// Proc is an LSL procedure.
type Proc struct {
	Name    string
	Params  []Reg
	Results []Reg
	Body    []Stmt
}

// Global describes a named global memory object. Base is its assigned
// base address component; Size is the number of top-level slots (1 for
// scalars, field count for structs, element count for arrays).
type Global struct {
	Name string
	Base int64
	Size int
}

// Program is a collection of procedures and global objects sharing one
// address space.
type Program struct {
	Procs   map[string]*Proc
	Globals []Global

	// NextBase is the first unused base address; the unroller draws
	// fresh bases for allocation instances from here.
	NextBase int64
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{Procs: make(map[string]*Proc)}
}

// AddGlobal registers a global object and returns it.
func (p *Program) AddGlobal(name string, size int) Global {
	g := Global{Name: name, Base: p.NextBase, Size: size}
	p.Globals = append(p.Globals, g)
	p.NextBase++
	return g
}

// GlobalByName looks up a global by name.
func (p *Program) GlobalByName(name string) (Global, bool) {
	for _, g := range p.Globals {
		if g.Name == name {
			return g, true
		}
	}
	return Global{}, false
}

// AddProc registers a procedure, replacing any previous definition of
// the same name.
func (p *Program) AddProc(proc *Proc) { p.Procs[proc.Name] = proc }

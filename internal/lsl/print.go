package lsl

import (
	"fmt"
	"strings"
)

// String renders a statement in a compact single-line-per-statement
// form used by traces, tests, and the -dump-lsl debugging flag.
func (s *ConstStmt) String() string { return fmt.Sprintf("%s = %s", s.Dst, s.Val) }

func (s *OpStmt) String() string {
	args := make([]string, len(s.Args))
	for i, a := range s.Args {
		args[i] = string(a)
	}
	if s.Op == OpField {
		return fmt.Sprintf("%s = field(%s, %d)", s.Dst, args[0], s.Imm)
	}
	return fmt.Sprintf("%s = %s(%s)", s.Dst, s.Op, strings.Join(args, ", "))
}

func (s *StoreStmt) String() string { return fmt.Sprintf("*%s = %s", s.Addr, s.Src) }
func (s *LoadStmt) String() string  { return fmt.Sprintf("%s = *%s", s.Dst, s.Addr) }
func (s *FenceStmt) String() string { return fmt.Sprintf("fence %s", s.Kind) }

func (s *AtomicStmt) String() string {
	return fmt.Sprintf("atomic { %d stmts }", len(s.Body))
}

func (s *CallStmt) String() string {
	args := make([]string, len(s.Args))
	for i, a := range s.Args {
		args[i] = string(a)
	}
	rets := make([]string, len(s.Rets))
	for i, r := range s.Rets {
		rets[i] = string(r)
	}
	call := fmt.Sprintf("%s(%s)", s.Proc, strings.Join(args, ", "))
	if len(rets) == 0 {
		return call
	}
	return strings.Join(rets, ", ") + " = " + call
}

func (s *BlockStmt) String() string {
	return fmt.Sprintf("%s %s { %d stmts }", s.Loop, s.Tag, len(s.Body))
}

func (s *BreakStmt) String() string    { return fmt.Sprintf("if (%s) break %s", s.Cond, s.Tag) }
func (s *ContinueStmt) String() string { return fmt.Sprintf("if (%s) continue %s", s.Cond, s.Tag) }
func (s *AssertStmt) String() string   { return fmt.Sprintf("assert(%s) // %s", s.Cond, s.Msg) }
func (s *AssumeStmt) String() string   { return fmt.Sprintf("assume(%s)", s.Cond) }
func (s *HavocStmt) String() string    { return fmt.Sprintf("%s = havoc(%d bits)", s.Dst, s.Bits) }
func (s *AllocStmt) String() string    { return fmt.Sprintf("%s = alloc %s", s.Dst, s.Site) }
func (s *OverflowStmt) String() string { return fmt.Sprintf("overflow loop#%d", s.LoopID) }

// Format renders a statement list with nesting, for debugging dumps.
func Format(stmts []Stmt) string {
	var sb strings.Builder
	formatInto(&sb, stmts, 0)
	return sb.String()
}

func formatInto(sb *strings.Builder, stmts []Stmt, indent int) {
	pad := strings.Repeat("  ", indent)
	for _, s := range stmts {
		switch s := s.(type) {
		case *BlockStmt:
			fmt.Fprintf(sb, "%s%s %s {\n", pad, s.Loop, s.Tag)
			formatInto(sb, s.Body, indent+1)
			fmt.Fprintf(sb, "%s}\n", pad)
		case *AtomicStmt:
			fmt.Fprintf(sb, "%satomic {\n", pad)
			formatInto(sb, s.Body, indent+1)
			fmt.Fprintf(sb, "%s}\n", pad)
		default:
			fmt.Fprintf(sb, "%s%s\n", pad, s)
		}
	}
}

// CountStmts returns the number of non-block statements in a statement
// tree. It is the "instrs" metric of the paper's Fig. 10 table.
func CountStmts(stmts []Stmt) int {
	n := 0
	for _, s := range stmts {
		switch s := s.(type) {
		case *BlockStmt:
			n += CountStmts(s.Body)
		case *AtomicStmt:
			n += CountStmts(s.Body)
		default:
			n++
		}
	}
	return n
}

// CountAccesses returns the number of loads and stores in a statement
// tree.
func CountAccesses(stmts []Stmt) (loads, stores int) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *BlockStmt:
			l, st := CountAccesses(s.Body)
			loads, stores = loads+l, stores+st
		case *AtomicStmt:
			l, st := CountAccesses(s.Body)
			loads, stores = loads+l, stores+st
		case *LoadStmt:
			loads++
		case *StoreStmt:
			stores++
		}
	}
	return loads, stores
}

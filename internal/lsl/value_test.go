package lsl

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	if Undef().IsDefined() {
		t.Error("Undef reported defined")
	}
	if !Int(3).IsDefined() || !Ptr(1, 2).IsDefined() {
		t.Error("defined values reported undefined")
	}
	if Int(1).Kind != KindInt || Ptr(0).Kind != KindPtr {
		t.Error("wrong kinds")
	}
}

func TestValueTruthiness(t *testing.T) {
	cases := []struct {
		v      Value
		truthy bool
		ok     bool
	}{
		{Int(0), false, true},
		{Int(1), true, true},
		{Int(-7), true, true},
		{Ptr(0), true, true},
		{Ptr(3, 1), true, true},
		{Undef(), false, false},
	}
	for _, c := range cases {
		truthy, ok := c.v.IsTruthy()
		if truthy != c.truthy || ok != c.ok {
			t.Errorf("IsTruthy(%v) = %v,%v want %v,%v", c.v, truthy, ok, c.truthy, c.ok)
		}
	}
}

func TestValueEqualCrossKind(t *testing.T) {
	// The untyped semantics: a null pointer is the integer 0, and a
	// real pointer never equals an integer.
	if Ptr(0).Equal(Int(0)) {
		t.Error("pointer [0] must not equal integer 0")
	}
	if Int(0).Equal(Undef()) || Undef().Equal(Int(0)) {
		t.Error("undef must not equal int")
	}
	if !Undef().Equal(Undef()) {
		t.Error("undef equals undef")
	}
}

func TestValueEqualPointers(t *testing.T) {
	if !Ptr(1, 2, 3).Equal(Ptr(1, 2, 3)) {
		t.Error("identical pointers unequal")
	}
	if Ptr(1, 2).Equal(Ptr(1, 2, 0)) {
		t.Error("pointers of different depth must be unequal")
	}
	if Ptr(1, 2).Equal(Ptr(1, 3)) {
		t.Error("pointers with different offsets must be unequal")
	}
}

func TestValueField(t *testing.T) {
	p := Ptr(5)
	q, err := p.Field(2)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Equal(Ptr(5, 2)) {
		t.Errorf("Field: got %v", q)
	}
	if _, err := Int(1).Field(0); err == nil {
		t.Error("Field on integer must fail")
	}
	deep := Ptr(1, 1, 1, 1)
	if _, err := deep.Field(0); err == nil {
		t.Error("Field beyond MaxPtrDepth must fail")
	}
	// Field must not alias the receiver's backing array.
	r, _ := p.Field(7)
	s, _ := p.Field(9)
	if r.Ptr[1] != 7 || s.Ptr[1] != 9 {
		t.Error("Field shares backing storage between results")
	}
}

func TestLocOf(t *testing.T) {
	if LocOf(Ptr(1, 2, 3)) != Loc("1.2.3") {
		t.Errorf("LocOf = %q", LocOf(Ptr(1, 2, 3)))
	}
	if LocOf(Ptr(12)) == LocOf(Ptr(1, 2)) {
		t.Error("LocOf must be injective")
	}
}

func TestLocOfInjectiveQuick(t *testing.T) {
	f := func(a, b int8, c, d int8) bool {
		p := Ptr(int64(a), int64(b))
		q := Ptr(int64(c), int64(d))
		return p.Equal(q) == (LocOf(p) == LocOf(q))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualSymmetricQuick(t *testing.T) {
	gen := func(sel uint8, n int8, b int8, c int8) Value {
		switch sel % 3 {
		case 0:
			return Undef()
		case 1:
			return Int(int64(n))
		default:
			return Ptr(int64(b), int64(c))
		}
	}
	f := func(s1 uint8, n1, b1, c1 int8, s2 uint8, n2, b2, c2 int8) bool {
		v := gen(s1, n1, b1, c1)
		w := gen(s2, n2, b2, c2)
		return v.Equal(w) == w.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFenceKindOrdering(t *testing.T) {
	// Each X-Y fence orders X-type accesses before it and Y-type after.
	type row struct {
		k                       FenceKind
		loadBefore, storeBefore bool
		loadAfter, storeAfter   bool
	}
	rows := []row{
		{FenceLoadLoad, true, false, true, false},
		{FenceLoadStore, true, false, false, true},
		{FenceStoreLoad, false, true, true, false},
		{FenceStoreStore, false, true, false, true},
	}
	for _, r := range rows {
		if r.k.OrdersBefore(true) != r.loadBefore ||
			r.k.OrdersBefore(false) != r.storeBefore ||
			r.k.OrdersAfter(true) != r.loadAfter ||
			r.k.OrdersAfter(false) != r.storeAfter {
			t.Errorf("fence %v ordering predicate wrong", r.k)
		}
	}
}

func TestParseFenceKind(t *testing.T) {
	for _, k := range []FenceKind{FenceLoadLoad, FenceLoadStore, FenceStoreLoad, FenceStoreStore} {
		got, err := ParseFenceKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v: got %v, %v", k, got, err)
		}
	}
	if _, err := ParseFenceKind("full"); err == nil {
		t.Error("ParseFenceKind must reject unknown names")
	}
}

func TestCountStmtsAndAccesses(t *testing.T) {
	body := []Stmt{
		&ConstStmt{Dst: "r1", Val: Int(0)},
		&BlockStmt{Tag: "t", Body: []Stmt{
			&LoadStmt{Dst: "r2", Addr: "r1"},
			&AtomicStmt{Body: []Stmt{
				&LoadStmt{Dst: "r3", Addr: "r1"},
				&StoreStmt{Addr: "r1", Src: "r3"},
			}},
		}},
		&StoreStmt{Addr: "r1", Src: "r2"},
	}
	if n := CountStmts(body); n != 5 {
		t.Errorf("CountStmts = %d, want 5", n)
	}
	loads, stores := CountAccesses(body)
	if loads != 2 || stores != 2 {
		t.Errorf("CountAccesses = %d,%d want 2,2", loads, stores)
	}
}

func TestProgramGlobals(t *testing.T) {
	p := NewProgram()
	g1 := p.AddGlobal("x", 1)
	g2 := p.AddGlobal("y", 3)
	if g1.Base == g2.Base {
		t.Error("globals must get distinct bases")
	}
	got, ok := p.GlobalByName("y")
	if !ok || got.Base != g2.Base || got.Size != 3 {
		t.Errorf("GlobalByName(y) = %+v, %v", got, ok)
	}
	if _, ok := p.GlobalByName("z"); ok {
		t.Error("GlobalByName must fail for unknown names")
	}
}

func TestFormatNesting(t *testing.T) {
	body := []Stmt{
		&BlockStmt{Tag: "outer", Loop: BoundedLoop, Body: []Stmt{
			&BreakStmt{Cond: "c", Tag: "outer"},
		}},
	}
	s := Format(body)
	want := "loop outer {\n  if (c) break outer\n}\n"
	if s != want {
		t.Errorf("Format = %q, want %q", s, want)
	}
}

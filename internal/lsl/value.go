// Package lsl defines the load-store language (LSL), the untyped
// intermediate representation CheckFence compiles C code into before
// encoding executions as SAT formulas.
//
// LSL follows the abstract syntax of Fig. 4 of the PLDI'07 paper: a
// statement is a constant assignment, a primitive operation, a load or
// store, a memory ordering fence, an atomic block, a procedure call, a
// tagged block with conditional break/continue, or an assertion or
// assumption. Values (Fig. 5) are untyped at the language level but
// carry a runtime tag distinguishing undefined values, integers, and
// pointers represented as a base address followed by field/array
// offsets.
package lsl

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind is the runtime tag of an LSL value.
type Kind uint8

// The three runtime kinds of the untyped LSL value domain.
const (
	KindUndef Kind = iota // never assigned, or read from unwritten memory
	KindInt               // integer (also booleans: 0/1)
	KindPtr               // pointer: base address plus offset sequence
)

func (k Kind) String() string {
	switch k {
	case KindUndef:
		return "undef"
	case KindInt:
		return "int"
	case KindPtr:
		return "ptr"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// MaxPtrDepth bounds the length of a pointer component sequence
// (base + offsets). Struct/array nesting in the study set is shallow;
// the range analysis verifies the bound for each program.
const MaxPtrDepth = 4

// Value is an LSL runtime value. A pointer value [n1 n2 ... nk]
// consists of a base address n1 identifying a memory object and a
// sequence of field or array offsets, mirroring Fig. 5 of the paper.
// Keeping offsets separate from the base avoids arithmetic when
// encoding pointer operations.
type Value struct {
	Kind Kind
	Int  int64   // valid when Kind == KindInt
	Ptr  []int64 // valid when Kind == KindPtr; len >= 1, Ptr[0] is the base
}

// Undef is the undefined value.
func Undef() Value { return Value{Kind: KindUndef} }

// Int returns an integer value.
func Int(n int64) Value { return Value{Kind: KindInt, Int: n} }

// Bool returns the LSL encoding of a boolean (integers 0 and 1).
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// Ptr returns a pointer value with the given base and offsets.
func Ptr(base int64, offsets ...int64) Value {
	comps := append([]int64{base}, offsets...)
	return Value{Kind: KindPtr, Ptr: comps}
}

// PtrFromComponents returns a pointer value from a complete component
// sequence (base followed by offsets). The slice is not copied.
func PtrFromComponents(comps []int64) Value {
	if len(comps) == 0 {
		panic("lsl: pointer value needs at least a base component")
	}
	return Value{Kind: KindPtr, Ptr: comps}
}

// IsDefined reports whether v is not the undefined value.
func (v Value) IsDefined() bool { return v.Kind != KindUndef }

// IsTruthy reports whether v is a defined value that C would treat as
// true in a condition. The second result is false when v is undefined,
// in which case branching on v is a runtime error that CheckFence
// reports.
func (v Value) IsTruthy() (truthy, ok bool) {
	switch v.Kind {
	case KindInt:
		return v.Int != 0, true
	case KindPtr:
		return true, true // pointer values are always non-null
	default:
		return false, false
	}
}

// Depth returns the number of pointer components, or 0 for non-pointers.
func (v Value) Depth() int {
	if v.Kind != KindPtr {
		return 0
	}
	return len(v.Ptr)
}

// Field returns v extended with one more offset component. It is the
// dynamic semantics of the OpField/OpIndex primitives.
func (v Value) Field(offset int64) (Value, error) {
	if v.Kind != KindPtr {
		return Undef(), fmt.Errorf("lsl: field access on non-pointer value %v", v)
	}
	if len(v.Ptr) >= MaxPtrDepth {
		return Undef(), fmt.Errorf("lsl: pointer depth exceeds MaxPtrDepth=%d", MaxPtrDepth)
	}
	comps := make([]int64, len(v.Ptr)+1)
	copy(comps, v.Ptr)
	comps[len(v.Ptr)] = offset
	return PtrFromComponents(comps), nil
}

// Equal reports value equality: kinds must match, integers compare by
// value, and pointers compare componentwise including depth. A pointer
// is never equal to an integer, so comparing a pointer against the
// null constant 0 is false exactly when the pointer is a real object
// reference.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindUndef:
		return true
	case KindInt:
		return v.Int == w.Int
	case KindPtr:
		if len(v.Ptr) != len(w.Ptr) {
			return false
		}
		for i := range v.Ptr {
			if v.Ptr[i] != w.Ptr[i] {
				return false
			}
		}
		return true
	}
	return false
}

func (v Value) String() string {
	switch v.Kind {
	case KindUndef:
		return "undefined"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindPtr:
		parts := make([]string, len(v.Ptr))
		for i, c := range v.Ptr {
			parts[i] = strconv.FormatInt(c, 10)
		}
		return "[ " + strings.Join(parts, " ") + " ]"
	default:
		return fmt.Sprintf("value(kind=%d)", v.Kind)
	}
}

// Loc identifies a concrete memory location: a pointer value used as an
// address. It is the map-key form of a pointer Value.
type Loc string

// LocOf converts a pointer value to a location key. It panics if v is
// not a pointer; callers check the kind first and report an error.
func LocOf(v Value) Loc {
	if v.Kind != KindPtr {
		panic("lsl: LocOf on non-pointer " + v.String())
	}
	var sb strings.Builder
	for i, c := range v.Ptr {
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(strconv.FormatInt(c, 10))
	}
	return Loc(sb.String())
}

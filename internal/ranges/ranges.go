// Package ranges implements the light-weight flow-insensitive range
// analysis of paper §3.4. For each register and each memory location
// it computes a finite over-approximation of the values that can occur
// in a valid execution, and derives from it:
//
//  1. a bit width sufficient for all integer values,
//  2. a bound on pointer depth,
//  3. statically fixed bits of the representation, and
//  4. may-alias sets that prune the memory-model formula.
//
// Termination uses set-size capping: a set that grows past the cap
// becomes Top (unknown), which is sound (Top falls back to worst-case
// widths and all-pairs aliasing). This replaces the paper's
// traversal-count device with the same soundness guarantee.
package ranges

import (
	"checkfence/internal/lsl"
)

// Cap is the maximum tracked set size before a set widens to Top.
const Cap = 128

// ValueSet is a finite set of LSL values, or Top.
type ValueSet struct {
	Top    bool
	Values map[string]lsl.Value // keyed by rendered value
}

// NewValueSet returns an empty set.
func NewValueSet() *ValueSet {
	return &ValueSet{Values: map[string]lsl.Value{}}
}

func key(v lsl.Value) string { return v.String() }

// Add inserts a value, widening to Top past the cap. It reports
// whether the set changed.
func (s *ValueSet) Add(v lsl.Value) bool {
	if s.Top {
		return false
	}
	k := key(v)
	if _, ok := s.Values[k]; ok {
		return false
	}
	if len(s.Values) >= Cap {
		s.Top = true
		s.Values = nil
		return true
	}
	s.Values[k] = v
	return true
}

// AddAll unions other into s, reporting change.
func (s *ValueSet) AddAll(other *ValueSet) bool {
	if s.Top {
		return false
	}
	if other.Top {
		s.Top = true
		s.Values = nil
		return true
	}
	changed := false
	for _, v := range other.Values {
		if s.Add(v) {
			changed = true
		}
	}
	return changed
}

// Each visits the values (no-op for Top).
func (s *ValueSet) Each(f func(lsl.Value)) {
	for _, v := range s.Values {
		f(v)
	}
}

// Len returns the set size (0 for Top; check Top separately).
func (s *ValueSet) Len() int { return len(s.Values) }

// Info is the analysis result.
type Info struct {
	// Regs maps registers to their possible values.
	Regs map[lsl.Reg]*ValueSet
	// Locs maps memory locations to their possible stored values.
	Locs map[lsl.Loc]*ValueSet

	// IntWidth is a bit width (two's complement) sufficient for every
	// integer value and every pointer component (+1 encoding) that can
	// occur.
	IntWidth int
	// MaxPtrDepth is the deepest pointer component sequence seen.
	MaxPtrDepth int
	// Precise is false if any set widened to Top, in which case
	// IntWidth/alias information use worst-case defaults.
	Precise bool
}

// DefaultIntWidth is used when the analysis is disabled or imprecise.
const DefaultIntWidth = 9

// Analyze runs the analysis over unrolled, call-free bodies. The
// bodies of all threads (including initialization) must be passed
// together since they share memory.
func Analyze(bodies [][]lsl.Stmt) *Info {
	info := &Info{
		Regs:    map[lsl.Reg]*ValueSet{},
		Locs:    map[lsl.Loc]*ValueSet{},
		Precise: true,
	}
	reg := func(r lsl.Reg) *ValueSet {
		s, ok := info.Regs[r]
		if !ok {
			s = NewValueSet()
			info.Regs[r] = s
		}
		return s
	}
	loc := func(l lsl.Loc) *ValueSet {
		s, ok := info.Locs[l]
		if !ok {
			s = NewValueSet()
			info.Locs[l] = s
		}
		return s
	}

	// Propagate to fixpoint. The statement count bounds the chain
	// height; the cap bounds set growth, so this terminates.
	for {
		changed := false
		var walk func(stmts []lsl.Stmt)
		walk = func(stmts []lsl.Stmt) {
			for _, s := range stmts {
				switch s := s.(type) {
				case *lsl.ConstStmt:
					if reg(s.Dst).Add(s.Val) {
						changed = true
					}
				case *lsl.HavocStmt:
					for v := int64(0); v < 1<<uint(s.Bits); v++ {
						if reg(s.Dst).Add(lsl.Int(v)) {
							changed = true
						}
					}
				case *lsl.OpStmt:
					if applyOp(s, reg) {
						changed = true
					}
				case *lsl.StoreStmt:
					src := reg(s.Src)
					addrs := reg(s.Addr)
					if addrs.Top {
						// Unknown address: poison everything.
						for _, ls := range info.Locs {
							if ls.AddAll(src) {
								changed = true
							}
						}
						info.Precise = false
						continue
					}
					addrs.Each(func(a lsl.Value) {
						if a.Kind != lsl.KindPtr {
							return
						}
						if loc(lsl.LocOf(a)).AddAll(src) {
							changed = true
						}
					})
				case *lsl.LoadStmt:
					addrs := reg(s.Addr)
					dst := reg(s.Dst)
					if addrs.Top {
						if !dst.Top {
							dst.Top = true
							dst.Values = nil
							changed = true
						}
						continue
					}
					addrs.Each(func(a lsl.Value) {
						if a.Kind != lsl.KindPtr {
							return
						}
						if dst.AddAll(loc(lsl.LocOf(a))) {
							changed = true
						}
					})
					// A load may also observe the undefined initial
					// value.
					if dst.Add(lsl.Undef()) {
						changed = true
					}
				case *lsl.BlockStmt:
					walk(s.Body)
				case *lsl.AtomicStmt:
					walk(s.Body)
				}
			}
		}
		for _, b := range bodies {
			walk(b)
		}
		if !changed {
			break
		}
	}

	info.finalize()
	return info
}

// applyOp propagates values through a primitive operation.
func applyOp(s *lsl.OpStmt, reg func(lsl.Reg) *ValueSet) bool {
	dst := reg(s.Dst)
	if dst.Top {
		return false
	}
	arg := func(i int) *ValueSet { return reg(s.Args[i]) }

	switch s.Op {
	case lsl.OpIdent:
		return dst.AddAll(arg(0))
	case lsl.OpSelect:
		ch := dst.AddAll(arg(1))
		if dst.AddAll(arg(2)) {
			ch = true
		}
		return ch

	case lsl.OpBool, lsl.OpNot, lsl.OpEq, lsl.OpNe, lsl.OpLt, lsl.OpLe,
		lsl.OpGt, lsl.OpGe, lsl.OpAnd, lsl.OpOr:
		ch := dst.Add(lsl.Int(0))
		if dst.Add(lsl.Int(1)) {
			ch = true
		}
		return ch

	case lsl.OpField:
		a := arg(0)
		if a.Top {
			dst.Top = true
			dst.Values = nil
			return true
		}
		ch := false
		a.Each(func(v lsl.Value) {
			if v.Kind != lsl.KindPtr {
				return
			}
			if fv, err := v.Field(s.Imm); err == nil {
				if dst.Add(fv) {
					ch = true
				}
			}
		})
		return ch

	case lsl.OpIndex:
		a, idx := arg(0), arg(1)
		if a.Top || idx.Top {
			dst.Top = true
			dst.Values = nil
			return true
		}
		ch := false
		a.Each(func(v lsl.Value) {
			if v.Kind != lsl.KindPtr {
				return
			}
			idx.Each(func(iv lsl.Value) {
				if iv.Kind != lsl.KindInt {
					return
				}
				if fv, err := v.Field(iv.Int); err == nil {
					if dst.Add(fv) {
						ch = true
					}
				}
			})
		})
		return ch
	}

	// Binary integer arithmetic.
	apply := func(x, y int64) (int64, bool) {
		switch s.Op {
		case lsl.OpAdd:
			return x + y, true
		case lsl.OpSub:
			return x - y, true
		case lsl.OpMul:
			return x * y, true
		case lsl.OpXor:
			return x ^ y, true
		}
		return 0, false
	}
	if s.Op == lsl.OpNeg {
		a := arg(0)
		if a.Top {
			dst.Top = true
			dst.Values = nil
			return true
		}
		ch := false
		a.Each(func(v lsl.Value) {
			if v.Kind == lsl.KindInt && dst.Add(lsl.Int(-v.Int)) {
				ch = true
			}
		})
		return ch
	}
	a, b := arg(0), arg(1)
	if a.Top || b.Top {
		dst.Top = true
		dst.Values = nil
		return true
	}
	ch := false
	a.Each(func(x lsl.Value) {
		if x.Kind != lsl.KindInt {
			return
		}
		b.Each(func(y lsl.Value) {
			if y.Kind != lsl.KindInt {
				return
			}
			if r, ok := apply(x.Int, y.Int); ok {
				if dst.Add(lsl.Int(r)) {
					ch = true
				}
			}
		})
	})
	return ch
}

func (info *Info) finalize() {
	var maxAbs int64 = 1
	depth := 1
	scan := func(s *ValueSet) {
		if s.Top {
			info.Precise = false
			return
		}
		s.Each(func(v lsl.Value) {
			switch v.Kind {
			case lsl.KindInt:
				if v.Int > maxAbs {
					maxAbs = v.Int
				}
				if -v.Int > maxAbs {
					maxAbs = -v.Int
				}
			case lsl.KindPtr:
				if len(v.Ptr) > depth {
					depth = len(v.Ptr)
				}
				for _, c := range v.Ptr {
					// Components are stored shifted by one in the
					// encoding.
					if c+1 > maxAbs {
						maxAbs = c + 1
					}
				}
			}
		})
	}
	for _, s := range info.Regs {
		scan(s)
	}
	for _, s := range info.Locs {
		scan(s)
	}
	info.MaxPtrDepth = depth
	if info.Precise {
		// One extra bit for the sign in two's complement.
		w := 1
		for int64(1)<<uint(w) <= maxAbs {
			w++
		}
		info.IntWidth = w + 1
	} else {
		info.IntWidth = DefaultIntWidth
		info.MaxPtrDepth = lsl.MaxPtrDepth
	}
}

// AddrSet returns the possible addresses of an access through the
// given register, or nil when unknown (Top or absent).
func (info *Info) AddrSet(r lsl.Reg) []lsl.Value {
	s, ok := info.Regs[r]
	if !ok || s.Top {
		return nil
	}
	var out []lsl.Value
	s.Each(func(v lsl.Value) {
		if v.Kind == lsl.KindPtr {
			out = append(out, v)
		}
	})
	return out
}

// MayAlias reports whether two accesses may target the same location,
// based on their address registers. Unknown sets conservatively alias.
func (info *Info) MayAlias(a, b lsl.Reg) bool {
	sa := info.AddrSet(a)
	sb := info.AddrSet(b)
	if sa == nil || sb == nil {
		return true
	}
	seen := make(map[lsl.Loc]bool, len(sa))
	for _, v := range sa {
		seen[lsl.LocOf(v)] = true
	}
	for _, v := range sb {
		if seen[lsl.LocOf(v)] {
			return true
		}
	}
	return false
}

// Disabled returns an Info representing "analysis off": worst-case
// widths and universal aliasing, used for the Fig. 11c comparison.
func Disabled() *Info {
	return &Info{
		Regs:        map[lsl.Reg]*ValueSet{},
		Locs:        map[lsl.Loc]*ValueSet{},
		IntWidth:    DefaultIntWidth,
		MaxPtrDepth: lsl.MaxPtrDepth,
		Precise:     false,
	}
}

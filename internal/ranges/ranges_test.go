package ranges

import (
	"testing"
	"testing/quick"

	"checkfence/internal/interp"
	"checkfence/internal/lsl"
)

func TestValueSetBasics(t *testing.T) {
	s := NewValueSet()
	if !s.Add(lsl.Int(1)) || s.Add(lsl.Int(1)) {
		t.Error("Add must report novelty")
	}
	if !s.Add(lsl.Ptr(1)) {
		t.Error("pointer [1] must be distinct from integer 1")
	}
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestValueSetCapWidensToTop(t *testing.T) {
	s := NewValueSet()
	for i := int64(0); i < Cap+10; i++ {
		s.Add(lsl.Int(i))
	}
	if !s.Top {
		t.Error("set must widen to Top past the cap")
	}
	if s.Add(lsl.Int(999)) {
		t.Error("Top set must absorb values silently")
	}
}

func TestAnalyzeStraightLine(t *testing.T) {
	body := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "a", Val: lsl.Int(3)},
		&lsl.ConstStmt{Dst: "b", Val: lsl.Int(4)},
		&lsl.OpStmt{Dst: "c", Op: lsl.OpAdd, Args: []lsl.Reg{"a", "b"}},
		&lsl.ConstStmt{Dst: "p", Val: lsl.Ptr(0)},
		&lsl.StoreStmt{Addr: "p", Src: "c"},
		&lsl.LoadStmt{Dst: "d", Addr: "p"},
	}
	info := Analyze([][]lsl.Stmt{body})
	if !info.Precise {
		t.Fatal("analysis must stay precise")
	}
	cSet := info.Regs["c"]
	if cSet.Len() != 1 {
		t.Errorf("c has %d values", cSet.Len())
	}
	// d may read the stored 7 or the undefined initial value.
	dSet := info.Regs["d"]
	if dSet.Len() != 2 {
		t.Errorf("d has %d values, want {7, undefined}", dSet.Len())
	}
	// IntWidth must cover 7 plus a sign bit.
	if info.IntWidth < 4 {
		t.Errorf("IntWidth = %d", info.IntWidth)
	}
}

func TestAnalyzeAliasPruning(t *testing.T) {
	body := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "p", Val: lsl.Ptr(0)},
		&lsl.ConstStmt{Dst: "q", Val: lsl.Ptr(1)},
		&lsl.ConstStmt{Dst: "v", Val: lsl.Int(1)},
		&lsl.StoreStmt{Addr: "p", Src: "v"},
		&lsl.StoreStmt{Addr: "q", Src: "v"},
	}
	info := Analyze([][]lsl.Stmt{body})
	if info.MayAlias("p", "q") {
		t.Error("distinct constant addresses must not alias")
	}
	if !info.MayAlias("p", "p") {
		t.Error("identical registers must alias")
	}
	if !info.MayAlias("p", "unknown") {
		t.Error("unknown registers must conservatively alias")
	}
}

func TestAnalyzeHavocAndSelect(t *testing.T) {
	body := []lsl.Stmt{
		&lsl.HavocStmt{Dst: "h", Bits: 1},
		&lsl.ConstStmt{Dst: "x", Val: lsl.Int(10)},
		&lsl.ConstStmt{Dst: "y", Val: lsl.Int(20)},
		&lsl.OpStmt{Dst: "s", Op: lsl.OpSelect, Args: []lsl.Reg{"h", "x", "y"}},
	}
	info := Analyze([][]lsl.Stmt{body})
	if info.Regs["h"].Len() != 2 {
		t.Errorf("havoc set = %d", info.Regs["h"].Len())
	}
	if info.Regs["s"].Len() != 2 {
		t.Errorf("select set = %d", info.Regs["s"].Len())
	}
}

func TestAnalyzePointerField(t *testing.T) {
	body := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "p", Val: lsl.Ptr(2)},
		&lsl.OpStmt{Dst: "f", Op: lsl.OpField, Args: []lsl.Reg{"p"}, Imm: 1},
		&lsl.ConstStmt{Dst: "v", Val: lsl.Int(1)},
		&lsl.StoreStmt{Addr: "f", Src: "v"},
	}
	info := Analyze([][]lsl.Stmt{body})
	addrs := info.AddrSet("f")
	if len(addrs) != 1 || !addrs[0].Equal(lsl.Ptr(2, 1)) {
		t.Errorf("field address set = %v", addrs)
	}
	if info.MaxPtrDepth < 2 {
		t.Errorf("MaxPtrDepth = %d", info.MaxPtrDepth)
	}
}

func TestAnalyzeLoopFixpoint(t *testing.T) {
	// c accumulates: c = c + 1 inside a block read repeatedly; the
	// flow-insensitive analysis must terminate (cap) and stay sound.
	body := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "c", Val: lsl.Int(0)},
		&lsl.ConstStmt{Dst: "one", Val: lsl.Int(1)},
		&lsl.OpStmt{Dst: "c", Op: lsl.OpAdd, Args: []lsl.Reg{"c", "one"}},
		&lsl.OpStmt{Dst: "c", Op: lsl.OpAdd, Args: []lsl.Reg{"c", "one"}},
	}
	info := Analyze([][]lsl.Stmt{body})
	// c's set contains at least 0,1,2 (flow-insensitively it reaches
	// the cap or a fixpoint).
	cSet := info.Regs["c"]
	if !cSet.Top && cSet.Len() < 3 {
		t.Errorf("c set too small: %d", cSet.Len())
	}
}

func TestDisabledInfo(t *testing.T) {
	info := Disabled()
	if info.Precise {
		t.Error("disabled info must not claim precision")
	}
	if !info.MayAlias("a", "b") {
		t.Error("disabled info must alias everything")
	}
	if info.IntWidth != DefaultIntWidth || info.MaxPtrDepth != lsl.MaxPtrDepth {
		t.Errorf("defaults: %d, %d", info.IntWidth, info.MaxPtrDepth)
	}
}

// TestSoundnessAgainstInterpreter: for random straight-line programs,
// every value the interpreter computes must be in the analysis sets.
func TestSoundnessAgainstInterpreter(t *testing.T) {
	gen := func(seed int64) []lsl.Stmt {
		// Deterministic little program generator over registers
		// r0..r3 and locations [0],[1].
		var body []lsl.Stmt
		body = append(body,
			&lsl.ConstStmt{Dst: "r0", Val: lsl.Int(seed % 5)},
			&lsl.ConstStmt{Dst: "r1", Val: lsl.Int((seed / 5) % 5)},
			&lsl.ConstStmt{Dst: "p0", Val: lsl.Ptr(0)},
			&lsl.ConstStmt{Dst: "p1", Val: lsl.Ptr(1)},
		)
		// OpMul is excluded: products explode the tracked sets to the
		// cap, which makes each fixpoint pass quadratically expensive;
		// TestAnalyzeMulSoundness covers multiplication separately.
		ops := []lsl.Op{lsl.OpAdd, lsl.OpSub, lsl.OpEq, lsl.OpLt, lsl.OpXor}
		s := uint64(seed)
		for i := 0; i < 6; i++ {
			op := ops[s%uint64(len(ops))]
			s /= 3
			dst := lsl.Reg([]string{"r0", "r1", "r2", "r3"}[s%4])
			s /= 2
			a := lsl.Reg([]string{"r0", "r1"}[s%2])
			s /= 2
			b := lsl.Reg([]string{"r0", "r1"}[s%2])
			s = (s/2 + uint64(seed)) & 0x7fffffff
			body = append(body, &lsl.OpStmt{Dst: dst, Op: op, Args: []lsl.Reg{a, b}})
		}
		body = append(body,
			&lsl.StoreStmt{Addr: "p0", Src: "r2"},
			&lsl.LoadStmt{Dst: "r3", Addr: "p0"},
		)
		return body
	}

	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		body := gen(seed)
		info := Analyze([][]lsl.Stmt{body})
		p := lsl.NewProgram()
		p.AddGlobal("g0", 1)
		p.AddGlobal("g1", 1)
		m := interp.NewMachine(p)
		env, err := m.RunBody(body)
		if err != nil {
			return true // runtime errors are out of scope here
		}
		for reg, val := range env {
			set, ok := info.Regs[reg]
			if !ok {
				t.Logf("seed %d: register %s missing from analysis", seed, reg)
				return false
			}
			if set.Top {
				continue
			}
			found := false
			set.Each(func(v lsl.Value) {
				if v.Equal(val) {
					found = true
				}
			})
			if !found {
				t.Logf("seed %d: %s = %v not in analysis set", seed, reg, val)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestAnalyzeMulSoundness covers multiplication (which widens sets
// aggressively) on fixed programs.
func TestAnalyzeMulSoundness(t *testing.T) {
	body := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "a", Val: lsl.Int(3)},
		&lsl.ConstStmt{Dst: "b", Val: lsl.Int(5)},
		&lsl.OpStmt{Dst: "c", Op: lsl.OpMul, Args: []lsl.Reg{"a", "b"}},
		&lsl.OpStmt{Dst: "c", Op: lsl.OpMul, Args: []lsl.Reg{"c", "c"}},
	}
	info := Analyze([][]lsl.Stmt{body})
	p := lsl.NewProgram()
	m := interp.NewMachine(p)
	env, err := m.RunBody(body)
	if err != nil {
		t.Fatal(err)
	}
	set := info.Regs["c"]
	found := false
	set.Each(func(v lsl.Value) {
		if v.Equal(env["c"]) {
			found = true
		}
	})
	if !set.Top && !found {
		t.Errorf("c = %v not in analysis set", env["c"])
	}
	if info.IntWidth < 9 { // 225 needs 8 magnitude bits + sign
		t.Errorf("IntWidth = %d, must cover 225 signed", info.IntWidth)
	}
}

package unroll

import (
	"errors"
	"testing"

	"checkfence/internal/interp"
	"checkfence/internal/lsl"
)

// prog builds a program with one procedure "f" around the body.
func prog(procs ...*lsl.Proc) *lsl.Program {
	p := lsl.NewProgram()
	p.AddGlobal("g", 1)
	for _, pr := range procs {
		p.AddProc(pr)
	}
	return p
}

// runUnrolled interprets an unrolled body and returns the register
// environment.
func runUnrolled(t *testing.T, p *lsl.Program, body []lsl.Stmt) map[lsl.Reg]lsl.Value {
	t.Helper()
	m := interp.NewMachine(p)
	env, err := m.RunBody(body)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	return env
}

func TestInlineSimpleCall(t *testing.T) {
	add := &lsl.Proc{
		Name:    "add",
		Params:  []lsl.Reg{"a", "b"},
		Results: []lsl.Reg{"r"},
		Body: []lsl.Stmt{
			&lsl.OpStmt{Dst: "r", Op: lsl.OpAdd, Args: []lsl.Reg{"a", "b"}},
		},
	}
	p := prog(add)
	body := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "x", Val: lsl.Int(2)},
		&lsl.ConstStmt{Dst: "y", Val: lsl.Int(3)},
		&lsl.CallStmt{Proc: "add", Args: []lsl.Reg{"x", "y"}, Rets: []lsl.Reg{"z"}},
	}
	u := New(p, Options{})
	res, err := u.Expand(body, "t")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Body {
		if _, ok := s.(*lsl.CallStmt); ok {
			t.Fatal("call survived inlining")
		}
	}
	env := runUnrolled(t, p, res.Body)
	if v := env["t/z"]; !v.Equal(lsl.Int(5)) {
		t.Errorf("z = %v, want 5", v)
	}
}

func TestInlineTwoCallsDistinct(t *testing.T) {
	id := &lsl.Proc{
		Name: "id", Params: []lsl.Reg{"a"}, Results: []lsl.Reg{"r"},
		Body: []lsl.Stmt{&lsl.OpStmt{Dst: "r", Op: lsl.OpIdent, Args: []lsl.Reg{"a"}}},
	}
	p := prog(id)
	body := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "x", Val: lsl.Int(1)},
		&lsl.ConstStmt{Dst: "y", Val: lsl.Int(2)},
		&lsl.CallStmt{Proc: "id", Args: []lsl.Reg{"x"}, Rets: []lsl.Reg{"r1"}},
		&lsl.CallStmt{Proc: "id", Args: []lsl.Reg{"y"}, Rets: []lsl.Reg{"r2"}},
	}
	u := New(p, Options{})
	res, err := u.Expand(body, "t")
	if err != nil {
		t.Fatal(err)
	}
	env := runUnrolled(t, p, res.Body)
	if !env["t/r1"].Equal(lsl.Int(1)) || !env["t/r2"].Equal(lsl.Int(2)) {
		t.Errorf("r1=%v r2=%v", env["t/r1"], env["t/r2"])
	}
}

// loopProc counts down from its argument (needs `n` iterations).
func loopProc() *lsl.Proc {
	return &lsl.Proc{
		Name: "count", Params: []lsl.Reg{"n"}, Results: []lsl.Reg{"c"},
		Body: []lsl.Stmt{
			&lsl.ConstStmt{Dst: "c", Val: lsl.Int(0)},
			&lsl.ConstStmt{Dst: "one", Val: lsl.Int(1)},
			&lsl.BlockStmt{Tag: "L", Loop: lsl.BoundedLoop, Body: []lsl.Stmt{
				&lsl.OpStmt{Dst: "done", Op: lsl.OpLe, Args: []lsl.Reg{"n", "zero"}},
				&lsl.BreakStmt{Cond: "done", Tag: "L"},
				&lsl.OpStmt{Dst: "n", Op: lsl.OpSub, Args: []lsl.Reg{"n", "one"}},
				&lsl.OpStmt{Dst: "c", Op: lsl.OpAdd, Args: []lsl.Reg{"c", "one"}},
				&lsl.ContinueStmt{Cond: "one", Tag: "L"},
			}},
		},
	}
}

func TestUnrollLoopWithinBounds(t *testing.T) {
	p := prog(loopProc())
	body := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "zero", Val: lsl.Int(0)},
		&lsl.ConstStmt{Dst: "k", Val: lsl.Int(2)},
		&lsl.CallStmt{Proc: "count", Args: []lsl.Reg{"k"}, Rets: []lsl.Reg{"c"}},
	}
	// The callee references the caller-scope register "zero"; bind it
	// inside the proc instead for a well-formed test.
	p.Procs["count"].Body = append([]lsl.Stmt{
		&lsl.ConstStmt{Dst: "zero", Val: lsl.Int(0)},
	}, p.Procs["count"].Body...)

	u := New(p, Options{})
	res, err := u.Expand(body, "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loops) != 1 {
		t.Fatalf("loops = %d", len(res.Loops))
	}
	if res.Loops[0].Bound != 1 {
		t.Errorf("default bound = %d, want 1", res.Loops[0].Bound)
	}
	// With bound 1 and k=2, the interpreter hits the overflow marker.
	m := interp.NewMachine(p)
	_, err = m.RunBody(res.Body)
	if err == nil || !containsOverflow(err) {
		t.Errorf("expected overflow, got %v", err)
	}

	// Growing the bound makes the execution complete.
	u2 := New(p, Options{Bounds: map[string]int{res.Loops[0].Key: 3}})
	res2, err := u2.Expand(body, "t")
	if err != nil {
		t.Fatal(err)
	}
	env := runUnrolled(t, p, res2.Body)
	if v := env["t/c"]; !v.Equal(lsl.Int(2)) {
		t.Errorf("c = %v, want 2", v)
	}
}

func containsOverflow(err error) bool {
	return err != nil && (errors.Is(err, interp.ErrAssumeFailed) ||
		// overflow markers interpret as explicit errors
		errStr(err, "overflow"))
}

func errStr(err error, sub string) bool {
	s := err.Error()
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestLoopKeyStability(t *testing.T) {
	p := prog(loopProc())
	p.Procs["count"].Body = append([]lsl.Stmt{
		&lsl.ConstStmt{Dst: "zero", Val: lsl.Int(0)},
	}, p.Procs["count"].Body...)
	body := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "k", Val: lsl.Int(1)},
		&lsl.CallStmt{Proc: "count", Args: []lsl.Reg{"k"}, Rets: []lsl.Reg{"c1"}},
		&lsl.CallStmt{Proc: "count", Args: []lsl.Reg{"k"}, Rets: []lsl.Reg{"c2"}},
	}
	u1 := New(p, Options{})
	r1, err := u1.Expand(body, "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Loops) != 2 {
		t.Fatalf("loops = %d", len(r1.Loops))
	}
	if r1.Loops[0].Key == r1.Loops[1].Key {
		t.Fatal("distinct call sites must give distinct loop keys")
	}
	// Growing the first loop's bound must keep the second loop's key.
	u2 := New(p, Options{Bounds: map[string]int{r1.Loops[0].Key: 4}})
	r2, err := u2.Expand(body, "t")
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]int{}
	for _, li := range r2.Loops {
		keys[li.Key] = li.Bound
	}
	if keys[r1.Loops[0].Key] != 4 {
		t.Errorf("first loop bound = %d, want 4", keys[r1.Loops[0].Key])
	}
	if _, ok := keys[r1.Loops[1].Key]; !ok {
		t.Errorf("second loop key changed: %v", keys)
	}
}

func TestSpinLoopBecomesAssumption(t *testing.T) {
	p := prog()
	body := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "go", Val: lsl.Int(1)},
		&lsl.BlockStmt{Tag: "S", Loop: lsl.SpinLoop, Body: []lsl.Stmt{
			&lsl.ContinueStmt{Cond: "go", Tag: "S"},
		}},
	}
	u := New(p, Options{})
	res, err := u.Expand(body, "t")
	if err != nil {
		t.Fatal(err)
	}
	hasOverflow := false
	hasAssume := false
	var walk func([]lsl.Stmt)
	walk = func(stmts []lsl.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *lsl.OverflowStmt:
				hasOverflow = true
			case *lsl.AssumeStmt:
				hasAssume = true
			case *lsl.BlockStmt:
				walk(s.Body)
			}
		}
	}
	walk(res.Body)
	if hasOverflow {
		t.Error("spin loops must not emit overflow markers")
	}
	if !hasAssume {
		t.Error("spin loops must emit the exit assumption")
	}
	if !res.Loops[0].Spin {
		t.Error("loop must be recorded as spin")
	}
}

func TestNoRetryCallRestrictsLoops(t *testing.T) {
	p := prog(loopProc())
	p.Procs["count"].Body = append([]lsl.Stmt{
		&lsl.ConstStmt{Dst: "zero", Val: lsl.Int(0)},
	}, p.Procs["count"].Body...)
	body := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "k", Val: lsl.Int(5)},
		&lsl.CallStmt{Proc: "count", Args: []lsl.Reg{"k"}, Rets: []lsl.Reg{"c"}, NoRetry: true},
	}
	u := New(p, Options{})
	res, err := u.Expand(body, "t")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Loops[0].Spin || res.Loops[0].Bound != 1 {
		t.Errorf("NoRetry loop = %+v, want spin bound 1", res.Loops[0])
	}
	// The execution requiring 5 iterations is infeasible, not an
	// error.
	m := interp.NewMachine(p)
	_, err = m.RunBody(res.Body)
	if !errors.Is(err, interp.ErrAssumeFailed) {
		t.Errorf("expected infeasible, got %v", err)
	}
}

func TestAllocAssignsDistinctBases(t *testing.T) {
	p := prog()
	body := []lsl.Stmt{
		&lsl.AllocStmt{Dst: "p1", Site: "s"},
		&lsl.AllocStmt{Dst: "p2", Site: "s"},
	}
	u := New(p, Options{})
	res, err := u.Expand(body, "t")
	if err != nil {
		t.Fatal(err)
	}
	env := runUnrolled(t, p, res.Body)
	if env["t/p1"].Equal(env["t/p2"]) {
		t.Error("allocations must return distinct bases")
	}
	if len(res.Allocs) != 2 {
		t.Errorf("allocs = %d", len(res.Allocs))
	}
	for base := range res.Allocs {
		if base < p.NextBase {
			t.Errorf("allocation base %d collides with globals", base)
		}
	}
}

func TestUnrollErrors(t *testing.T) {
	p := prog()
	u := New(p, Options{})
	if _, err := u.Expand([]lsl.Stmt{
		&lsl.CallStmt{Proc: "nosuch"},
	}, "t"); err == nil {
		t.Error("call to undefined procedure must fail")
	}
	if _, err := u.Expand([]lsl.Stmt{
		&lsl.ContinueStmt{Cond: "c", Tag: "nowhere"},
	}, "t"); err == nil {
		t.Error("continue to unknown loop must fail")
	}
}

func TestRecursionLimited(t *testing.T) {
	rec := &lsl.Proc{
		Name: "rec",
		Body: []lsl.Stmt{&lsl.CallStmt{Proc: "rec"}},
	}
	p := prog(rec)
	u := New(p, Options{MaxCallDepth: 5})
	if _, err := u.Expand([]lsl.Stmt{&lsl.CallStmt{Proc: "rec"}}, "t"); err == nil {
		t.Error("unbounded recursion must be rejected")
	}
}

package unroll

import (
	"math/rand"
	"testing"

	"checkfence/internal/interp"
	"checkfence/internal/lsl"
)

// genLoopProgram builds a random program with a counted loop (at most
// maxIter iterations), conditional breaks, and memory traffic. The
// interpreter can run it directly (real loops) and after unrolling
// (bounded); with a sufficient bound both must agree.
func genLoopProgram(rng *rand.Rand, maxIter int64) []lsl.Stmt {
	regs := []lsl.Reg{"a", "b", "c"}
	var body []lsl.Stmt
	body = append(body,
		&lsl.ConstStmt{Dst: "p", Val: lsl.Ptr(0)},
		&lsl.ConstStmt{Dst: "one", Val: lsl.Int(1)},
		&lsl.ConstStmt{Dst: "zero", Val: lsl.Int(0)},
		&lsl.ConstStmt{Dst: "n", Val: lsl.Int(1 + rng.Int63n(maxIter))},
		&lsl.ConstStmt{Dst: "a", Val: lsl.Int(rng.Int63n(4))},
		&lsl.ConstStmt{Dst: "b", Val: lsl.Int(rng.Int63n(4))},
		&lsl.ConstStmt{Dst: "c", Val: lsl.Int(0)},
		&lsl.StoreStmt{Addr: "p", Src: "a"},
	)
	var loopBody []lsl.Stmt
	loopBody = append(loopBody,
		&lsl.OpStmt{Dst: "done", Op: lsl.OpLe, Args: []lsl.Reg{"n", "zero"}},
		&lsl.BreakStmt{Cond: "done", Tag: "L"},
		&lsl.OpStmt{Dst: "n", Op: lsl.OpSub, Args: []lsl.Reg{"n", "one"}},
	)
	for i := 0; i < 2+rng.Intn(4); i++ {
		dst := regs[rng.Intn(3)]
		switch rng.Intn(4) {
		case 0:
			loopBody = append(loopBody, &lsl.OpStmt{
				Dst: dst, Op: lsl.OpAdd, Args: []lsl.Reg{regs[rng.Intn(3)], "one"}})
		case 1:
			loopBody = append(loopBody, &lsl.StoreStmt{Addr: "p", Src: dst})
		case 2:
			loopBody = append(loopBody, &lsl.LoadStmt{Dst: dst, Addr: "p"})
		default:
			// Conditional early exit on a data value.
			loopBody = append(loopBody,
				&lsl.OpStmt{Dst: "esc", Op: lsl.OpGt, Args: []lsl.Reg{dst, "bigK"}},
				&lsl.BreakStmt{Cond: "esc", Tag: "L"})
		}
	}
	loopBody = append(loopBody, &lsl.ContinueStmt{Cond: "one", Tag: "L"})
	body = append(body,
		&lsl.ConstStmt{Dst: "bigK", Val: lsl.Int(6)},
		&lsl.BlockStmt{Tag: "L", Loop: lsl.BoundedLoop, Body: loopBody},
	)
	return body
}

// TestUnrollPreservesSemantics: interpreting the unrolled program (at
// a bound covering the loop) gives the same final registers and memory
// as interpreting the original.
func TestUnrollPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const maxIter = 3
	for iter := 0; iter < 120; iter++ {
		body := genLoopProgram(rng, maxIter)
		p := lsl.NewProgram()
		p.AddGlobal("g", 1)

		direct := interp.NewMachine(p)
		dEnv, dErr := direct.RunBody(body)

		u := New(p, Options{DefaultBound: maxIter + 1})
		res, err := u.Expand(body, "t")
		if err != nil {
			t.Fatalf("iter %d: unroll: %v", iter, err)
		}
		unrolledM := interp.NewMachine(p)
		uEnv, uErr := unrolledM.RunBody(res.Body)

		if (dErr == nil) != (uErr == nil) {
			t.Fatalf("iter %d: direct err=%v unrolled err=%v", iter, dErr, uErr)
		}
		if dErr != nil {
			continue
		}
		for _, r := range []lsl.Reg{"a", "b", "c", "n"} {
			dv, uv := dEnv[r], uEnv["t/"+r]
			if !dv.Equal(uv) {
				t.Fatalf("iter %d: register %s: direct %v, unrolled %v", iter, r, dv, uv)
			}
		}
		loc := lsl.LocOf(lsl.Ptr(0))
		if !direct.Mem[loc].Equal(unrolledM.Mem[loc]) {
			t.Fatalf("iter %d: memory: direct %v, unrolled %v",
				iter, direct.Mem[loc], unrolledM.Mem[loc])
		}
	}
}

// Package unroll implements the back-end's first transformation
// (paper §3.2-3.3): it inlines all operation calls and unrolls all
// loops, producing loop-free, call-free statement trees whose only
// remaining control flow is forward conditional breaks out of tagged
// blocks.
//
// Loop bounds are supplied per loop *instance* (identified by a
// stable hierarchical key, so growing one loop's bound does not
// renumber the others). Where a bound is exhausted the unroller
// plants either an overflow marker (the lazy-bound probe of §3.3
// checks whether any marker is reachable) or, for spin loops and
// primed operations, an assumption that the loop exits within the
// bound.
package unroll

import (
	"fmt"

	"checkfence/internal/lsl"
)

// Options configures unrolling.
type Options struct {
	// Bounds overrides the unrolling bound for specific loop
	// instances; missing entries use DefaultBound.
	Bounds map[string]int
	// DefaultBound is the initial bound for every loop (the paper
	// starts with one iteration).
	DefaultBound int
	// MaxCallDepth bounds inlining recursion.
	MaxCallDepth int
}

// LoopInfo describes one unrolled loop instance.
type LoopInfo struct {
	ID    int
	Key   string // stable hierarchical key
	Bound int    // bound used in this unrolling
	Spin  bool   // true if the overflow was converted to an assumption
}

// Result is the unrolled form of one code body.
type Result struct {
	Body   []lsl.Stmt
	Loops  []LoopInfo
	Allocs map[int64]string // base address -> allocation site key
}

// Unroller expands bodies against a program. A single Unroller should
// be used for all threads of a test so allocation bases stay globally
// unique.
type Unroller struct {
	prog     *lsl.Program
	opts     Options
	nextBase int64
	nextLoop int
}

// New creates an Unroller. Allocation bases start after the program's
// globals.
func New(prog *lsl.Program, opts Options) *Unroller {
	if opts.DefaultBound <= 0 {
		opts.DefaultBound = 1
	}
	if opts.MaxCallDepth <= 0 {
		opts.MaxCallDepth = 32
	}
	return &Unroller{prog: prog, opts: opts, nextBase: prog.NextBase}
}

// NextBase returns the next unused allocation base address.
func (u *Unroller) NextBase() int64 { return u.nextBase }

type uctx struct {
	prefix  string // instance path for register/tag renaming
	key     string // hierarchical key for loop identities
	depth   int
	noRetry bool
	// tagMap maps original (renamed) tags of loops being unrolled to
	// their (exitTag, iterationTag) pair.
	breakMap map[string]string // source tag -> target break tag
	contMap  map[string]string // source tag -> target break tag for continue
}

func (c *uctx) child() *uctx {
	bm := make(map[string]string, len(c.breakMap))
	for k, v := range c.breakMap {
		bm[k] = v
	}
	cm := make(map[string]string, len(c.contMap))
	for k, v := range c.contMap {
		cm[k] = v
	}
	return &uctx{prefix: c.prefix, key: c.key, depth: c.depth,
		noRetry: c.noRetry, breakMap: bm, contMap: cm}
}

// Expand unrolls one body (e.g. a thread's test code).
func (u *Unroller) Expand(body []lsl.Stmt, name string) (*Result, error) {
	res := &Result{Allocs: map[int64]string{}}
	ctx := &uctx{prefix: name, key: name,
		breakMap: map[string]string{}, contMap: map[string]string{}}
	out, err := u.stmts(body, ctx, res)
	if err != nil {
		return nil, err
	}
	res.Body = out
	return res, nil
}

func (u *Unroller) rename(ctx *uctx, r lsl.Reg) lsl.Reg {
	if r == "" {
		return r
	}
	return lsl.Reg(ctx.prefix + "/" + string(r))
}

func (u *Unroller) renameAll(ctx *uctx, rs []lsl.Reg) []lsl.Reg {
	out := make([]lsl.Reg, len(rs))
	for i, r := range rs {
		out[i] = u.rename(ctx, r)
	}
	return out
}

func (u *Unroller) stmts(in []lsl.Stmt, ctx *uctx, res *Result) ([]lsl.Stmt, error) {
	var out []lsl.Stmt
	for i, s := range in {
		o, err := u.stmt(s, i, ctx, res)
		if err != nil {
			return nil, err
		}
		out = append(out, o...)
	}
	return out, nil
}

func (u *Unroller) stmt(s lsl.Stmt, idx int, ctx *uctx, res *Result) ([]lsl.Stmt, error) {
	switch s := s.(type) {
	case *lsl.ConstStmt:
		return []lsl.Stmt{&lsl.ConstStmt{Dst: u.rename(ctx, s.Dst), Val: s.Val}}, nil

	case *lsl.OpStmt:
		return []lsl.Stmt{&lsl.OpStmt{
			Dst: u.rename(ctx, s.Dst), Op: s.Op,
			Args: u.renameAll(ctx, s.Args), Imm: s.Imm,
		}}, nil

	case *lsl.LoadStmt:
		return []lsl.Stmt{&lsl.LoadStmt{
			Dst: u.rename(ctx, s.Dst), Addr: u.rename(ctx, s.Addr)}}, nil

	case *lsl.StoreStmt:
		return []lsl.Stmt{&lsl.StoreStmt{
			Addr: u.rename(ctx, s.Addr), Src: u.rename(ctx, s.Src)}}, nil

	case *lsl.FenceStmt:
		return []lsl.Stmt{&lsl.FenceStmt{Kind: s.Kind}}, nil

	case *lsl.AssertStmt:
		return []lsl.Stmt{&lsl.AssertStmt{Cond: u.rename(ctx, s.Cond), Msg: s.Msg}}, nil

	case *lsl.AssumeStmt:
		return []lsl.Stmt{&lsl.AssumeStmt{Cond: u.rename(ctx, s.Cond)}}, nil

	case *lsl.HavocStmt:
		return []lsl.Stmt{&lsl.HavocStmt{Dst: u.rename(ctx, s.Dst), Bits: s.Bits}}, nil

	case *lsl.AllocStmt:
		base := u.nextBase
		u.nextBase++
		res.Allocs[base] = ctx.key + "/" + s.Site
		// Allocation is deterministic in the bounded model: lower it
		// to a constant pointer assignment.
		return []lsl.Stmt{&lsl.ConstStmt{Dst: u.rename(ctx, s.Dst), Val: lsl.Ptr(base)}}, nil

	case *lsl.AtomicStmt:
		body, err := u.stmts(s.Body, ctx, res)
		if err != nil {
			return nil, err
		}
		return []lsl.Stmt{&lsl.AtomicStmt{Body: body}}, nil

	case *lsl.BreakStmt:
		tag := ctx.prefix + "/" + s.Tag
		if t, ok := ctx.breakMap[s.Tag]; ok {
			tag = t
		}
		return []lsl.Stmt{&lsl.BreakStmt{Cond: u.rename(ctx, s.Cond), Tag: tag}}, nil

	case *lsl.ContinueStmt:
		t, ok := ctx.contMap[s.Tag]
		if !ok {
			return nil, fmt.Errorf("unroll: continue targets unknown loop %q", s.Tag)
		}
		return []lsl.Stmt{&lsl.BreakStmt{Cond: u.rename(ctx, s.Cond), Tag: t}}, nil

	case *lsl.CallStmt:
		return u.inline(s, idx, ctx, res)

	case *lsl.BlockStmt:
		if s.Loop == lsl.NotLoop {
			inner := ctx.child()
			inner.breakMap[s.Tag] = ctx.prefix + "/" + s.Tag
			body, err := u.stmts(s.Body, inner, res)
			if err != nil {
				return nil, err
			}
			return []lsl.Stmt{&lsl.BlockStmt{Tag: ctx.prefix + "/" + s.Tag, Body: body}}, nil
		}
		return u.unrollLoop(s, ctx, res)

	case *lsl.OverflowStmt:
		return []lsl.Stmt{s}, nil
	}
	return nil, fmt.Errorf("unroll: unsupported statement %T", s)
}

func (u *Unroller) unrollLoop(s *lsl.BlockStmt, ctx *uctx, res *Result) ([]lsl.Stmt, error) {
	key := ctx.key + "/" + s.Tag
	bound := u.opts.DefaultBound
	if b, ok := u.opts.Bounds[key]; ok {
		bound = b
	}
	spin := s.Loop == lsl.SpinLoop || ctx.noRetry
	if spin {
		bound = 1
		if b, ok := u.opts.Bounds[key]; ok {
			bound = b
		}
	}
	id := u.nextLoop
	u.nextLoop++
	res.Loops = append(res.Loops, LoopInfo{ID: id, Key: key, Bound: bound, Spin: spin})

	exitTag := ctx.prefix + "/" + s.Tag
	var outer []lsl.Stmt
	for i := 0; i < bound; i++ {
		iterTag := fmt.Sprintf("%s@%d", exitTag, i)
		inner := ctx.child()
		inner.key = fmt.Sprintf("%s@%d", key, i)
		inner.breakMap[s.Tag] = exitTag
		inner.contMap[s.Tag] = iterTag
		body, err := u.stmts(s.Body, inner, res)
		if err != nil {
			return nil, err
		}
		// Falling out of the body exits the loop.
		tr := lsl.Reg(fmt.Sprintf("%s.exit%d", exitTag, i))
		body = append(body,
			&lsl.ConstStmt{Dst: tr, Val: lsl.Int(1)},
			&lsl.BreakStmt{Cond: tr, Tag: exitTag})
		outer = append(outer, &lsl.BlockStmt{Tag: iterTag, Body: body})
	}
	// Reaching this point means a continue was taken in the last
	// permitted iteration.
	if spin {
		fr := lsl.Reg(exitTag + ".spinexit")
		outer = append(outer,
			&lsl.ConstStmt{Dst: fr, Val: lsl.Int(0)},
			&lsl.AssumeStmt{Cond: fr})
	} else {
		outer = append(outer, &lsl.OverflowStmt{LoopID: id})
	}
	return []lsl.Stmt{&lsl.BlockStmt{Tag: exitTag, Body: outer}}, nil
}

func (u *Unroller) inline(s *lsl.CallStmt, idx int, ctx *uctx, res *Result) ([]lsl.Stmt, error) {
	callee, ok := u.prog.Procs[s.Proc]
	if !ok {
		return nil, fmt.Errorf("unroll: call to undefined procedure %q", s.Proc)
	}
	if ctx.depth >= u.opts.MaxCallDepth {
		return nil, fmt.Errorf("unroll: call depth limit exceeded inlining %q", s.Proc)
	}
	if len(s.Args) != len(callee.Params) {
		return nil, fmt.Errorf("unroll: %s expects %d args, got %d",
			s.Proc, len(callee.Params), len(s.Args))
	}
	if len(s.Rets) > len(callee.Results) {
		return nil, fmt.Errorf("unroll: %s returns %d values, caller wants %d",
			s.Proc, len(callee.Results), len(s.Rets))
	}

	// The call instance is identified by its lexical position (the
	// statement index within the enclosing body), which is stable
	// across re-unrollings with different loop bounds.
	instance := fmt.Sprintf("%d:%s", idx, s.Proc)
	inner := &uctx{
		prefix:   ctx.prefix + "/" + instance,
		key:      ctx.key + "/" + instance,
		depth:    ctx.depth + 1,
		noRetry:  ctx.noRetry || s.NoRetry,
		breakMap: map[string]string{},
		contMap:  map[string]string{},
	}

	var out []lsl.Stmt
	// Bind parameters.
	for i, p := range callee.Params {
		out = append(out, &lsl.OpStmt{
			Dst: u.rename(inner, p), Op: lsl.OpIdent,
			Args: []lsl.Reg{u.rename(ctx, s.Args[i])},
		})
	}
	body, err := u.stmts(callee.Body, inner, res)
	if err != nil {
		return nil, err
	}
	out = append(out, body...)
	// Bind results.
	for i, r := range s.Rets {
		out = append(out, &lsl.OpStmt{
			Dst: u.rename(ctx, r), Op: lsl.OpIdent,
			Args: []lsl.Reg{u.rename(inner, callee.Results[i])},
		})
	}
	return out, nil
}

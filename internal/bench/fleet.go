package bench

// This file measures the distributed fan-out path: one check split
// into cube tasks and executed by fleet workers over the real lease
// protocol (HTTP poll/heartbeat/result), at fleet widths 1 and 3,
// against the serial in-process solve. Every row first asserts the
// distributed verdict — and, for PASS, the byte-exact observation
// set — equals the serial one; a fleet that answers differently is a
// correctness bug, not a scaling figure. The result is the
// BENCH_fleet.json artifact.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/fleet"
	"checkfence/internal/job"
)

// fleetPairs are the (implementation, test, model) rows; -quick keeps
// the cheap half.
var fleetPairs = []struct{ impl, test, model string }{
	{"ms2", "T0", "sc"},
	{"msn", "T0", "relaxed"},
	{"msn", "Tpc2", "relaxed"},
	{"lazylist", "Sac", "relaxed"},
	{"snark", "Da", "relaxed"},
}

var quickFleetPairs = map[string]bool{
	"ms2/T0": true, "msn/T0": true,
}

// FleetRow is one measurement: a check solved serially and through
// the fleet at widths 1 and 3.
type FleetRow struct {
	Impl    string `json:"impl"`
	Test    string `json:"test"`
	Model   string `json:"model"`
	Verdict string `json:"verdict"`
	Cubes   int    `json:"cubes"`
	// SerialSec is the undivided in-process solve; Fleet1Sec and
	// Fleet3Sec the distributed solve with 1 and 3 HTTP workers (best
	// of reps each).
	SerialSec float64 `json:"serial_sec"`
	Fleet1Sec float64 `json:"fleet1_sec"`
	Fleet3Sec float64 `json:"fleet3_sec"`
	// Speedup3 is Fleet1Sec / Fleet3Sec — the width-3 scaling of the
	// distributed path against itself (the honest figure: both sides
	// pay the same protocol overhead).
	Speedup3 float64 `json:"speedup_3"`
}

// FleetArtifact is the BENCH_fleet.json schema.
type FleetArtifact struct {
	GeneratedAt string     `json:"generated_at"`
	CPUs        int        `json:"cpus"`
	Rows        []FleetRow `json:"rows"`
}

// runFleetOnce solves the check through a fresh coordinator with n
// HTTP workers, returning the outcome, the cube count, and the wall
// time.
func runFleetOnce(ck job.Check, n int) (fleet.Outcome, int, float64, error) {
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		CubeDepth:      2,
		Lease:          5 * time.Second,
		PollRetryAfter: 5 * time.Millisecond,
	})
	if err != nil {
		return fleet.Outcome{}, 0, 0, err
	}
	defer coord.Close()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		w, err := fleet.NewWorker(fleet.WorkerConfig{
			ID:           fmt.Sprintf("bench-w%d", i),
			URL:          ts.URL,
			PollInterval: 5 * time.Millisecond,
		})
		if err != nil {
			return fleet.Outcome{}, 0, 0, err
		}
		go func() {
			w.Run(ctx)
			done <- struct{}{}
		}()
	}

	start := time.Now()
	out, err := coord.CheckDistributed(ctx, ck)
	wall := time.Since(start).Seconds()
	cancel()
	for i := 0; i < n; i++ {
		<-done
	}
	if err != nil {
		return fleet.Outcome{}, 0, 0, err
	}
	m := coord.Metrics()
	return out, int(m.TasksCompleted), wall, nil
}

// FleetReport measures the distributed fan-out against the serial
// solve, prints the comparison, and writes the artifact to jsonPath
// ("" = print only).
func (r *Runner) FleetReport(jsonPath string) error {
	art := FleetArtifact{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		CPUs:        runtime.NumCPU(),
	}

	r.printf("Distributed fan-out: serial vs fleet of 1 and 3 HTTP workers\n")
	r.printf("%-10s %-7s %-8s | %9s %9s %9s | %6s | %s\n",
		"impl", "test", "model", "serial[s]", "fleet1[s]", "fleet3[s]", "x3", "verdict")
	for _, pair := range fleetPairs {
		if r.Quick && !quickFleetPairs[pair.impl+"/"+pair.test] {
			continue
		}
		ck := job.Check{
			Program: job.Program{Name: pair.impl},
			Test:    pair.test,
			Model:   pair.model,
		}
		cj, err := ck.CoreJob()
		if err != nil {
			return err
		}

		const reps = 3
		var row FleetRow
		row.Impl, row.Test, row.Model = pair.impl, pair.test, pair.model
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			res := core.RunSuite([]core.Job{cj}, core.SuiteOptions{Parallelism: 1})
			serialSec := time.Since(start).Seconds()
			if res[0].Err != nil {
				return fmt.Errorf("bench: serial %s/%s: %w", pair.impl, pair.test, res[0].Err)
			}
			oracle := fleet.OutcomeFromResult(res[0].Res, nil)

			for _, n := range []int{1, 3} {
				out, cubes, wall, err := runFleetOnce(ck, n)
				if err != nil {
					return fmt.Errorf("bench: fleet(%d) %s/%s: %w", n, pair.impl, pair.test, err)
				}
				// Agreement before timing: a fleet that answers
				// differently from the serial solve is a bug.
				if out.Verdict != oracle.Verdict || out.SeqBug != oracle.SeqBug {
					return fmt.Errorf("bench: fleet(%d) disagrees with serial on %s/%s/%s: %s vs %s",
						n, pair.impl, pair.test, pair.model, out.Verdict, oracle.Verdict)
				}
				if oracle.Verdict == "pass" && out.Spec != oracle.Spec {
					return fmt.Errorf("bench: fleet(%d) observation set diverges from serial on %s/%s/%s",
						n, pair.impl, pair.test, pair.model)
				}
				if n == 1 {
					if rep == 0 || wall < row.Fleet1Sec {
						row.Fleet1Sec = wall
					}
				} else if rep == 0 || wall < row.Fleet3Sec {
					row.Fleet3Sec = wall
				}
				row.Cubes = cubes
			}
			if rep == 0 || serialSec < row.SerialSec {
				row.SerialSec = serialSec
			}
			if rep == 0 {
				row.Verdict = oracle.Verdict
			}
		}
		if row.Fleet3Sec > 0 {
			row.Speedup3 = row.Fleet1Sec / row.Fleet3Sec
		}
		art.Rows = append(art.Rows, row)
		r.printf("%-10s %-7s %-8s | %9.3f %9.3f %9.3f | %5.2fx | %s\n",
			row.Impl, row.Test, row.Model, row.SerialSec, row.Fleet1Sec, row.Fleet3Sec,
			row.Speedup3, row.Verdict)
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(&art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		r.printf("wrote %s\n", jsonPath)
	}
	return nil
}

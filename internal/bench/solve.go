package bench

// This file measures intra-check parallelism and the inprocessing
// optimizations: the slowest inclusion-check rows of the study set run
// four ways — serial (inprocessing + order reduction on, the default),
// clause-sharing portfolio, cube-and-conquer, and serial with
// inprocessing and the order reduction disabled — verifying identical
// verdicts and observation sets, and recording the solve-time speedups
// as the BENCH_solve.json artifact. The runs of a row execute
// sequentially (never overlapped) so wall-clock speedups are honest.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/memmodel"
)

// solvePairs are the rows with the heaviest inclusion-check solves at
// the study bounds, in suite order.
var solvePairs = []struct{ impl, test string }{
	{"msn", "Tpc2"},
	{"msn", "Ti2"},
	{"ms2", "Tpc2"},
	{"lazylist", "Sac"},
	{"lazylist", "Sar"},
	{"harris", "Sac"},
	{"snark", "D0"},
}

// quickSolvePairs keeps -quick runs to the cheaper half.
var quickSolvePairs = map[string]bool{
	"msn/Tpc2":     true,
	"ms2/Tpc2":     true,
	"lazylist/Sac": true,
	"snark/D0":     true,
}

// SolveRow is one (implementation, test) measurement of the
// parallel-solving comparison.
type SolveRow struct {
	Impl    string `json:"impl"`
	Test    string `json:"test"`
	Model   string `json:"model"`
	Verdict string `json:"verdict"`

	SerialSolveSec    float64 `json:"serial_solve_sec"`
	PortfolioSolveSec float64 `json:"portfolio_solve_sec"`
	CubeSolveSec      float64 `json:"cube_solve_sec"`
	// InprocOffSolveSec is the serial solve with inprocessing and the
	// order-encoding reduction both disabled — the pre-optimization
	// baseline the inproc_speedup column is measured against.
	InprocOffSolveSec float64 `json:"inproc_off_solve_sec"`

	// Speedups are serial_solve_sec over the parallel variant;
	// InprocSpeedup is inproc_off_solve_sec over serial_solve_sec.
	PortfolioSpeedup float64 `json:"portfolio_speedup"`
	CubeSpeedup      float64 `json:"cube_speedup"`
	InprocSpeedup    float64 `json:"inproc_speedup"`

	// ConflictsOn/ConflictsOff compare the serial search effort with
	// the features on vs. off.
	ConflictsOn  int64 `json:"conflicts_on"`
	ConflictsOff int64 `json:"conflicts_off"`

	Cubes          int   `json:"cubes"`
	CubesRefuted   int   `json:"cubes_refuted"`
	SharedExported int64 `json:"shared_exported"`
	SharedImported int64 `json:"shared_imported"`
	SharedUseful   int64 `json:"shared_useful"`

	// Inprocessing and order-reduction work of the default serial run.
	OrderVarsFixed  int   `json:"order_vars_fixed"`
	OrderVarsMerged int   `json:"order_vars_merged"`
	VivifiedLits    int64 `json:"vivified_lits"`
	SubsumedLearnts int64 `json:"subsumed_learnts"`
}

// SolveArtifact is the BENCH_solve.json schema.
type SolveArtifact struct {
	GeneratedAt string `json:"generated_at"`
	Model       string `json:"model"`
	Width       int    `json:"width"`
	// CPUs is the host's logical CPU count. Speedups are only
	// meaningful when it is >= Width: on fewer cores the parallel
	// variants time-slice and regress by construction.
	CPUs                   int        `json:"cpus"`
	Rows                   []SolveRow `json:"rows"`
	MedianPortfolioSpeedup float64    `json:"median_portfolio_speedup"`
	MedianCubeSpeedup      float64    `json:"median_cube_speedup"`
	MedianBestSpeedup      float64    `json:"median_best_speedup"`
	MedianInprocSpeedup    float64    `json:"median_inproc_speedup"`
}

// SolveReport runs the slowest inclusion-check rows serially, as a
// clause-sharing portfolio of the given width, and cube-and-conquer on
// the same number of workers; asserts that all three agree
// (verdicts, observation sets, counterexample validity); prints the
// comparison; and writes the artifact to jsonPath ("" = print only).
func (r *Runner) SolveReport(jsonPath string, width int) error {
	if width < 2 {
		width = 4
	}
	model := memmodel.Relaxed
	strategies := []struct {
		name string
		opts core.Options
	}{
		// Backends are pinned so the auto router's small-instance guard
		// cannot silently serialize the parallel variants being measured.
		{"serial", core.Options{Model: model, Backend: core.BackendSAT}},
		{"portfolio", core.Options{Model: model, Backend: core.BackendPortfolio, Portfolio: width, ShareClauses: true}},
		{"cube", core.Options{Model: model, Backend: core.BackendCube, Cube: width}},
		{"inproc-off", core.Options{Model: model, Backend: core.BackendSAT, NoInprocess: true, NoOrderReduce: true}},
	}

	r.printf("Intra-check parallelism and inprocessing: solve time per strategy (model: %s, width: %d)\n",
		model, width)
	r.printf("%-9s %-7s | %9s %9s %9s %9s | %6s %6s %6s | %s\n",
		"impl", "test", "serial[s]", "portf[s]", "cube[s]", "inoff[s]", "p-spd", "c-spd", "i-spd", "verdict")

	art := SolveArtifact{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Model:       model.String(),
		Width:       width,
		CPUs:        runtime.NumCPU(),
	}
	if art.CPUs < width {
		r.printf("note: %d CPUs < width %d; parallel variants time-slice and speedups below 1x are expected\n",
			art.CPUs, width)
	}
	var pSpeedups, cSpeedups, bestSpeedups, iSpeedups []float64
	for _, pair := range solvePairs {
		if r.Quick && !quickSolvePairs[pair.impl+"/"+pair.test] {
			continue
		}
		// The three runs execute back to back; each mines with a
		// private cache so no configuration benefits from another's
		// warm specification.
		rows := make([]Row, len(strategies))
		for i, strat := range strategies {
			opts := strat.opts
			opts.SpecCache = core.NewSpecCache("")
			res, err := core.Check(pair.impl, pair.test, opts)
			rows[i] = Row{Impl: pair.impl, Test: pair.test, Res: res, Err: err}
			if err != nil {
				return fmt.Errorf("bench: %s/%s (%s): %w", pair.impl, pair.test, strat.name, err)
			}
		}
		serial, portf, cube, inoff := rows[0], rows[1], rows[2], rows[3]
		if err := checkAgreement(serial, portf); err != nil {
			return fmt.Errorf("portfolio disagrees: %w", err)
		}
		if err := checkAgreement(serial, cube); err != nil {
			return fmt.Errorf("cube disagrees: %w", err)
		}
		if err := checkAgreement(serial, inoff); err != nil {
			return fmt.Errorf("inprocessing ablation disagrees: %w", err)
		}
		verdict := "pass"
		if !serial.Res.Pass {
			verdict = "FAIL"
			if serial.Res.SeqBug {
				verdict = "FAIL(seq)"
			}
		}
		row := SolveRow{
			Impl: pair.impl, Test: pair.test, Model: model.String(), Verdict: verdict,
			SerialSolveSec:    serial.Res.Stats.RefuteTime.Seconds(),
			PortfolioSolveSec: portf.Res.Stats.RefuteTime.Seconds(),
			CubeSolveSec:      cube.Res.Stats.RefuteTime.Seconds(),
			InprocOffSolveSec: inoff.Res.Stats.RefuteTime.Seconds(),
			ConflictsOn:       serial.Res.Stats.SolverStats.Conflicts,
			ConflictsOff:      inoff.Res.Stats.SolverStats.Conflicts,
			Cubes:             cube.Res.Stats.Cubes,
			CubesRefuted:      cube.Res.Stats.CubesRefuted,
			SharedExported:    portf.Res.Stats.SharedExported,
			SharedImported:    portf.Res.Stats.SharedImported,
			SharedUseful:      portf.Res.Stats.SharedUseful,
			OrderVarsFixed:    serial.Res.Stats.OrderVarsFixed,
			OrderVarsMerged:   serial.Res.Stats.OrderVarsMerged,
			VivifiedLits:      serial.Res.Stats.VivifiedLits,
			SubsumedLearnts:   serial.Res.Stats.SubsumedLearnts,
		}
		row.PortfolioSpeedup = speedup(row.SerialSolveSec, row.PortfolioSolveSec)
		row.CubeSpeedup = speedup(row.SerialSolveSec, row.CubeSolveSec)
		row.InprocSpeedup = speedup(row.InprocOffSolveSec, row.SerialSolveSec)
		art.Rows = append(art.Rows, row)
		pSpeedups = append(pSpeedups, row.PortfolioSpeedup)
		cSpeedups = append(cSpeedups, row.CubeSpeedup)
		iSpeedups = append(iSpeedups, row.InprocSpeedup)
		best := row.PortfolioSpeedup
		if row.CubeSpeedup > best {
			best = row.CubeSpeedup
		}
		bestSpeedups = append(bestSpeedups, best)
		r.printf("%-9s %-7s | %9.3f %9.3f %9.3f %9.3f | %5.2fx %5.2fx %5.2fx | %s\n",
			row.Impl, row.Test, row.SerialSolveSec, row.PortfolioSolveSec, row.CubeSolveSec,
			row.InprocOffSolveSec, row.PortfolioSpeedup, row.CubeSpeedup, row.InprocSpeedup, verdict)
	}
	if len(art.Rows) > 0 {
		art.MedianPortfolioSpeedup = median(pSpeedups)
		art.MedianCubeSpeedup = median(cSpeedups)
		art.MedianBestSpeedup = median(bestSpeedups)
		art.MedianInprocSpeedup = median(iSpeedups)
		r.printf("median speedups: portfolio %.2fx, cube %.2fx, best-of-both %.2fx, inprocessing %.2fx\n",
			art.MedianPortfolioSpeedup, art.MedianCubeSpeedup, art.MedianBestSpeedup,
			art.MedianInprocSpeedup)
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(&art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		r.printf("wrote %s\n", jsonPath)
	}
	return nil
}

func speedup(serial, parallel float64) float64 {
	if parallel <= 0 {
		return 1
	}
	return serial / parallel
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

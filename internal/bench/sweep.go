package bench

// This file measures model-sweep grouping: the same model-matrix suite
// runs with sweep grouping on (one selector-guarded encoding per
// (impl, test), solved per model under assumptions) and off (every job
// its own pipeline), both on a single worker so wall-clock time
// compares work, not scheduling. Every row first asserts per-job
// verdict and observation-set agreement — a sweep that wins by
// answering differently is a soundness bug, not a speedup. The result
// is the BENCH_sweep.json artifact.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/memmodel"
)

// sweepModels is the model matrix every row checks: the four
// non-Serial models, strongest first.
var sweepModels = []memmodel.Model{
	memmodel.SequentialConsistency, memmodel.TSO,
	memmodel.PSO, memmodel.Relaxed,
}

// sweepPairs are the (implementation, test) rows; -quick keeps the
// cheap half.
var sweepPairs = []struct{ impl, test string }{
	{"ms2", "T0"},
	{"msn", "T0"},
	{"msn-nofence", "T0"},
	{"ms2-nofence", "T0"},
	{"lazylist", "Sac"},
	{"ms2", "Tpc2"},
	{"msn", "Tpc2"},
}

var quickSweepPairs = map[string]bool{
	"ms2/T0": true, "msn/T0": true, "msn-nofence/T0": true, "ms2-nofence/T0": true,
}

// SweepRow is one measurement: a model-matrix suite for one
// (implementation, test), swept vs independent.
type SweepRow struct {
	Impl   string   `json:"impl"`
	Test   string   `json:"test"`
	Models []string `json:"models"`
	// Verdicts holds one verdict per model, in Models order; identical
	// between the two modes by construction (enforced before timing is
	// reported).
	Verdicts   []string `json:"verdicts"`
	ObsSetSize int      `json:"obs_set_size"`
	// SweepSec and IndepSec are single-worker suite wall times (best of
	// reps).
	SweepSec float64 `json:"sweep_sec"`
	IndepSec float64 `json:"indep_sec"`
	Speedup  float64 `json:"speedup"`
	// SeededObs is the total number of observations the sweep's
	// non-leader members reused instead of re-encoding; EarlyExits
	// counts members decided by replaying a stronger model's
	// counterexample without a solve.
	SeededObs  int `json:"seeded_obs"`
	EarlyExits int `json:"early_exits"`
	// SelectorUnits is the number of guarded program-order axioms the
	// shared encoding carries on top of its weakest-model base.
	SelectorUnits int `json:"selector_units"`
}

// SweepArtifact is the BENCH_sweep.json schema.
type SweepArtifact struct {
	GeneratedAt   string     `json:"generated_at"`
	CPUs          int        `json:"cpus"`
	Models        []string   `json:"models"`
	Rows          []SweepRow `json:"rows"`
	MedianSpeedup float64    `json:"median_speedup"`
}

// runSweepSuite runs the model matrix for one pair on a single worker
// and returns the results plus the wall time.
func runSweepSuite(impl, test string, mode core.SweepMode) ([]core.SuiteResult, float64, error) {
	jobs := make([]core.Job, len(sweepModels))
	for i, m := range sweepModels {
		jobs[i] = core.Job{Impl: impl, Test: test, Opts: core.Options{Model: m}}
	}
	start := time.Now()
	results := core.RunSuite(jobs, core.SuiteOptions{Parallelism: 1, Sweep: mode})
	wall := time.Since(start).Seconds()
	for i, r := range results {
		if r.Err != nil {
			return nil, 0, fmt.Errorf("bench: %s/%s on %s: %w", impl, test, sweepModels[i], r.Err)
		}
	}
	return results, wall, nil
}

// SweepReport measures model-sweep grouping, prints the comparison,
// and writes the artifact to jsonPath ("" = print only).
func (r *Runner) SweepReport(jsonPath string) error {
	art := SweepArtifact{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		CPUs:        runtime.NumCPU(),
	}
	for _, m := range sweepModels {
		art.Models = append(art.Models, m.String())
	}

	r.printf("Model-sweep grouping: one shared encoding vs independent checks (%d models, 1 worker)\n",
		len(sweepModels))
	r.printf("%-12s %-7s | %9s %9s | %8s | %6s %5s | %s\n",
		"impl", "test", "sweep[s]", "indep[s]", "speedup", "seeded", "early", "verdicts")
	var speedups []float64
	for _, pair := range sweepPairs {
		if r.Quick && !quickSweepPairs[pair.impl+"/"+pair.test] {
			continue
		}
		const reps = 3
		var row SweepRow
		row.Impl, row.Test = pair.impl, pair.test
		for _, m := range sweepModels {
			row.Models = append(row.Models, m.String())
		}
		for rep := 0; rep < reps; rep++ {
			swept, sweepSec, err := runSweepSuite(pair.impl, pair.test, core.SweepAuto)
			if err != nil {
				return err
			}
			indep, indepSec, err := runSweepSuite(pair.impl, pair.test, core.SweepOff)
			if err != nil {
				return err
			}
			verdicts := make([]string, len(swept))
			for i := range swept {
				a := Row{Impl: pair.impl, Test: pair.test, Res: swept[i].Res}
				b := Row{Impl: pair.impl, Test: pair.test, Res: indep[i].Res}
				if err := checkAgreement(a, b); err != nil {
					return fmt.Errorf("sweep disagrees with independent on %s: %w", sweepModels[i], err)
				}
				verdicts[i] = swept[i].Res.Verdict.String()
			}
			if rep == 0 || sweepSec < row.SweepSec {
				row.SweepSec = sweepSec
			}
			if rep == 0 || indepSec < row.IndepSec {
				row.IndepSec = indepSec
			}
			if rep == 0 {
				row.Verdicts = verdicts
				for _, sr := range swept {
					st := sr.Res.Stats
					row.SeededObs += st.SeededObs
					row.EarlyExits += st.SweepEarlyExit
					if st.SelectorUnits > row.SelectorUnits {
						row.SelectorUnits = st.SelectorUnits
					}
					if st.ObsSetSize > row.ObsSetSize {
						row.ObsSetSize = st.ObsSetSize
					}
				}
			}
		}
		row.Speedup = speedup(row.IndepSec, row.SweepSec)
		art.Rows = append(art.Rows, row)
		speedups = append(speedups, row.Speedup)
		r.printf("%-12s %-7s | %9.3f %9.3f | %7.2fx | %6d %5d | %v\n",
			row.Impl, row.Test, row.SweepSec, row.IndepSec, row.Speedup,
			row.SeededObs, row.EarlyExits, row.Verdicts)
	}
	art.MedianSpeedup = median(speedups)
	r.printf("median sweep speedup: %.2fx\n", art.MedianSpeedup)

	if jsonPath != "" {
		data, err := json.MarshalIndent(&art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		r.printf("wrote %s\n", jsonPath)
	}
	return nil
}

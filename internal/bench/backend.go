package bench

// This file measures the multi-backend router: litmus-scale rows (the
// programs the cost model routes to the polynomial reads-from engine)
// compare the rf solve against the serial SAT solve, and study-set rows
// compare the auto backend's end-to-end time against each forced
// backend, recording the router's decision per row. Every comparison
// first asserts verdict and observation-set agreement — a backend that
// wins by answering differently is a soundness bug, not a speedup. The
// result is the BENCH_backend.json artifact.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
)

// litmusBackendImpl is a four-operation datatype whose ops are single
// global accesses, composing into the classic litmus shapes. Mnemonics:
// a = write x, b = write y, c = read x, d = read y.
func litmusBackendImpl() *harness.Impl {
	return &harness.Impl{
		Name: "litmusdt", Kind: "litmus", Source: `
int x;
int y;

void init_lit(int *s) { x = 0; y = 0; }
void wx(int *s) { x = 1; }
void wy(int *s) { y = 1; }
int rx(int *s) { return x; }
int ry(int *s) { return y; }
`,
		InitFunc: "init_lit", Obj: "x",
		Ops: []harness.OpSig{
			{Mnemonic: "a", Func: "wx"},
			{Mnemonic: "b", Func: "wy"},
			{Mnemonic: "c", Func: "rx", HasRet: true},
			{Mnemonic: "d", Func: "ry", HasRet: true},
		},
	}
}

// litmusBackendTests are the litmus-scale rows.
var litmusBackendTests = []struct{ name, notation string }{
	{"sb", "( ad | bc )"},
	{"mp", "( ab | dc )"},
	{"lb", "( da | cb )"},
	{"iriw", "( a | b | cd | dc )"},
	{"corr", "( a | cc )"},
	{"sb+mp", "( ad | bc | ab | dc )"},
}

// backendHarnessPairs are the study-set rows of the auto-vs-forced
// comparison; -quick keeps the cheap third.
var backendHarnessPairs = []struct{ impl, test string }{
	{"msn", "T0"},
	{"ms2", "T0"},
	{"lazylist", "Sac"},
	{"msn", "Tpc2"},
	{"ms2", "Tpc2"},
	{"snark", "D0"},
}

var quickBackendPairs = map[string]bool{
	"msn/T0": true, "ms2/T0": true, "lazylist/Sac": true,
}

// BackendLitmusRow is one litmus-scale measurement: the same check
// solved by the reads-from engine and by the serial SAT pipeline.
type BackendLitmusRow struct {
	Name     string `json:"name"`
	Notation string `json:"notation"`
	Model    string `json:"model"`
	Verdict  string `json:"verdict"`
	// RouterDecision is the auto backend's reasoning on this row; the
	// litmus rows must all route to rf.
	RouterDecision string  `json:"router_decision"`
	ObsSetSize     int     `json:"obs_set_size"`
	RFSolveSec     float64 `json:"rf_solve_sec"`
	SerialSolveSec float64 `json:"serial_solve_sec"`
	RFSpeedup      float64 `json:"rf_speedup"`
}

// BackendHarnessRow is one study-set measurement: the auto backend
// against each forced backend, end to end.
type BackendHarnessRow struct {
	Impl           string  `json:"impl"`
	Test           string  `json:"test"`
	Model          string  `json:"model"`
	Verdict        string  `json:"verdict"`
	RouterDecision string  `json:"router_decision"`
	AutoSec        float64 `json:"auto_sec"`
	SATSec         float64 `json:"sat_sec"`
	PortfolioSec   float64 `json:"portfolio_sec"`
	CubeSec        float64 `json:"cube_sec"`
	BestBackend    string  `json:"best_backend"`
	// AutoVsBest is auto_sec over the best forced backend's time: 1.0
	// means auto matched the best single choice exactly, above 1.0 is
	// routing overhead or a misrouting.
	AutoVsBest float64 `json:"auto_vs_best"`
}

// BackendArtifact is the BENCH_backend.json schema.
type BackendArtifact struct {
	GeneratedAt     string              `json:"generated_at"`
	Model           string              `json:"model"`
	CPUs            int                 `json:"cpus"`
	LitmusRows      []BackendLitmusRow  `json:"litmus_rows"`
	HarnessRows     []BackendHarnessRow `json:"harness_rows"`
	MedianRFSpeedup float64             `json:"median_rf_speedup"`
	// MaxAutoVsBest is the worst auto_vs_best ratio over the harness
	// rows — the auto backend's worst-case cost of not being told the
	// right backend in advance.
	MaxAutoVsBest float64 `json:"max_auto_vs_best"`
}

// solveSec is the comparable per-backend work of a check: mining,
// encoding, and the inclusion solve (build and unroll are shared by
// every backend and excluded).
func solveSec(res *core.Result) float64 {
	return (res.Stats.MineTime + res.Stats.EncodeTime + res.Stats.RefuteTime).Seconds()
}

// checkBest runs one check reps times and keeps the fastest result —
// litmus checks finish in microseconds, where a single sample is noise.
func checkBest(impl *harness.Impl, test *harness.Test, opts core.Options, reps int) (*core.Result, error) {
	var best *core.Result
	for i := 0; i < reps; i++ {
		res, err := core.CheckImpl(impl, test, opts)
		if err != nil {
			return nil, err
		}
		if best == nil || solveSec(res) < solveSec(best) {
			best = res
		}
	}
	return best, nil
}

// BackendReport measures the multi-backend router, prints the
// comparison, and writes the artifact to jsonPath ("" = print only).
func (r *Runner) BackendReport(jsonPath string) error {
	model := memmodel.Relaxed
	art := BackendArtifact{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Model:       model.String(),
		CPUs:        runtime.NumCPU(),
	}

	r.printf("Multi-backend routing: rf vs serial SAT on litmus-scale rows (model: %s)\n", model)
	r.printf("%-7s %-22s | %11s %11s | %8s | %s\n",
		"row", "notation", "rf[s]", "serial[s]", "speedup", "verdict")
	impl := litmusBackendImpl()
	var rfSpeedups []float64
	for _, lt := range litmusBackendTests {
		test, err := harness.ParseTest(lt.name, lt.notation, impl)
		if err != nil {
			return fmt.Errorf("bench: %s: %w", lt.name, err)
		}
		const reps = 3
		auto, err := checkBest(impl, test, core.Options{Model: model}, reps)
		if err != nil {
			return fmt.Errorf("bench: %s (auto): %w", lt.name, err)
		}
		if auto.Stats.Backend != "rf" {
			return fmt.Errorf("bench: %s: auto routed to %q (%s), want rf",
				lt.name, auto.Stats.Backend, auto.Stats.RouterDecision)
		}
		serial, err := checkBest(impl, test, core.Options{Model: model, Backend: core.BackendSAT}, reps)
		if err != nil {
			return fmt.Errorf("bench: %s (sat): %w", lt.name, err)
		}
		a := Row{Impl: impl.Name, Test: lt.name, Res: auto}
		b := Row{Impl: impl.Name, Test: lt.name, Res: serial}
		if err := checkAgreement(a, b); err != nil {
			return fmt.Errorf("rf disagrees with SAT: %w", err)
		}
		verdict := "pass"
		if !auto.Pass {
			verdict = "FAIL"
		}
		row := BackendLitmusRow{
			Name: lt.name, Notation: lt.notation, Model: model.String(), Verdict: verdict,
			RouterDecision: auto.Stats.RouterDecision,
			ObsSetSize:     auto.Stats.ObsSetSize,
			RFSolveSec:     solveSec(auto),
			SerialSolveSec: solveSec(serial),
		}
		row.RFSpeedup = speedup(row.SerialSolveSec, row.RFSolveSec)
		art.LitmusRows = append(art.LitmusRows, row)
		rfSpeedups = append(rfSpeedups, row.RFSpeedup)
		r.printf("%-7s %-22s | %11.6f %11.6f | %7.1fx | %s\n",
			row.Name, row.Notation, row.RFSolveSec, row.SerialSolveSec, row.RFSpeedup, verdict)
	}
	art.MedianRFSpeedup = median(rfSpeedups)
	r.printf("median rf speedup: %.1fx\n\n", art.MedianRFSpeedup)

	r.printf("Auto backend vs forced backends on study-set rows (end-to-end, model: %s)\n", model)
	r.printf("%-9s %-7s | %9s %9s %9s %9s | %-9s %7s | %s\n",
		"impl", "test", "auto[s]", "sat[s]", "portf[s]", "cube[s]", "best", "a/best", "router")
	backends := []struct {
		name string
		opts core.Options
	}{
		{"sat", core.Options{Model: model, Backend: core.BackendSAT}},
		{"portfolio", core.Options{Model: model, Backend: core.BackendPortfolio}},
		{"cube", core.Options{Model: model, Backend: core.BackendCube}},
	}
	for _, pair := range backendHarnessPairs {
		if r.Quick && !quickBackendPairs[pair.impl+"/"+pair.test] {
			continue
		}
		// Best of five per backend: these rows run tens of milliseconds,
		// where single samples carry enough scheduler noise to fake a
		// routing regression.
		run := func(opts core.Options) (*core.Result, error) {
			var best *core.Result
			for i := 0; i < 5; i++ {
				o := opts
				o.SpecCache = core.NewSpecCache("")
				res, err := core.Check(pair.impl, pair.test, o)
				if err != nil {
					return nil, err
				}
				if best == nil || solveSec(res) < solveSec(best) {
					best = res
				}
			}
			return best, nil
		}
		auto, err := run(core.Options{Model: model})
		if err != nil {
			return fmt.Errorf("bench: %s/%s (auto): %w", pair.impl, pair.test, err)
		}
		secs := make([]float64, len(backends))
		bestName, bestSec := "", 0.0
		for i, be := range backends {
			res, err := run(be.opts)
			if err != nil {
				return fmt.Errorf("bench: %s/%s (%s): %w", pair.impl, pair.test, be.name, err)
			}
			if err := checkAgreement(Row{Impl: pair.impl, Test: pair.test, Res: auto},
				Row{Impl: pair.impl, Test: pair.test, Res: res}); err != nil {
				return fmt.Errorf("%s backend disagrees: %w", be.name, err)
			}
			secs[i] = solveSec(res)
			if bestName == "" || secs[i] < bestSec {
				bestName, bestSec = be.name, secs[i]
			}
		}
		verdict := "pass"
		if !auto.Pass {
			verdict = "FAIL"
			if auto.SeqBug {
				verdict = "FAIL(seq)"
			}
		}
		row := BackendHarnessRow{
			Impl: pair.impl, Test: pair.test, Model: model.String(), Verdict: verdict,
			RouterDecision: auto.Stats.RouterDecision,
			AutoSec:        solveSec(auto),
			SATSec:         secs[0], PortfolioSec: secs[1], CubeSec: secs[2],
			BestBackend: bestName,
		}
		if bestSec > 0 {
			row.AutoVsBest = row.AutoSec / bestSec
		}
		if row.AutoVsBest > art.MaxAutoVsBest {
			art.MaxAutoVsBest = row.AutoVsBest
		}
		art.HarnessRows = append(art.HarnessRows, row)
		r.printf("%-9s %-7s | %9.3f %9.3f %9.3f %9.3f | %-9s %6.2fx | %s\n",
			row.Impl, row.Test, row.AutoSec, row.SATSec, row.PortfolioSec, row.CubeSec,
			row.BestBackend, row.AutoVsBest, row.RouterDecision)
	}
	if len(art.HarnessRows) > 0 {
		r.printf("worst auto-vs-best ratio: %.2fx\n", art.MaxAutoVsBest)
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(&art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		r.printf("wrote %s\n", jsonPath)
	}
	return nil
}

package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTable1(t *testing.T) {
	var sb strings.Builder
	r := Runner{Quick: true, Out: &sb}
	if err := r.Table1(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range Impls {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s:\n%s", name, out)
		}
	}
}

func TestTestsForModes(t *testing.T) {
	q := Runner{Quick: true}
	f := Runner{Quick: false}
	for _, impl := range Impls {
		quick := q.TestsFor(impl)
		full := f.TestsFor(impl)
		if len(quick) == 0 || len(full) == 0 {
			t.Errorf("%s: empty test lists", impl)
		}
		if len(quick) > len(full) {
			t.Errorf("%s: quick list larger than full", impl)
		}
	}
}

func TestRunFig10Smallest(t *testing.T) {
	if testing.Short() {
		t.Skip("full checks")
	}
	var sb strings.Builder
	r := Runner{Quick: true, Budget: time.Minute, Out: &sb}
	// Smoke one row through the shared runner via Fig10a on a
	// restricted set.
	saved := quickTests
	defer func() { quickTests = saved }()
	quickTests = map[string][]string{
		"ms2": {"T0"}, "msn": {"T0"}, "lazylist": nil, "harris": nil, "snark": nil,
	}
	if err := r.Fig10a(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ms2") || !strings.Contains(out, "pass") {
		t.Errorf("Fig10a output:\n%s", out)
	}
}

// Package bench drives the experiments of the paper's Section 4 and
// renders them as the corresponding tables and figures. It is shared
// by cmd/benchtab and the root testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"time"

	"checkfence/internal/commit"
	"checkfence/internal/core"
	"checkfence/internal/fenceinfer"
	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
	"checkfence/internal/refimpl"
)

// Runner executes experiment suites.
type Runner struct {
	Quick  bool
	Budget time.Duration
	Out    io.Writer
	// Jobs sets the worker-pool width for the suite experiments
	// (Fig. 10/11): <= 1 runs the checks serially, preserving Budget's
	// early group exit; > 1 runs them through core.RunSuite with a
	// shared observation-set cache. Tables are rendered in suite order
	// either way, so the output is identical up to timing columns.
	Jobs int
}

func (r *Runner) printf(format string, args ...interface{}) {
	fmt.Fprintf(r.Out, format, args...)
}

// quickTests are the per-implementation test subsets that keep a full
// suite under a few minutes; the full sets follow the paper's Fig. 10
// rows.
var quickTests = map[string][]string{
	"ms2":      {"T0", "T1", "Ti2", "Tpc2"},
	"msn":      {"T0", "Ti2", "Tpc2"},
	"lazylist": {"Sac", "Sar", "Saa"},
	"harris":   {"Sac", "Saa"},
	"snark":    {"D0", "Da"},
}

// Impls is the Table 1 study set order.
var Impls = []string{"ms2", "msn", "lazylist", "harris", "snark"}

// TestsFor returns the experiment tests for an implementation under
// the current mode.
func (r *Runner) TestsFor(impl string) []string {
	if r.Quick {
		return quickTests[impl]
	}
	return harness.Fig10Tests[impl]
}

// Table1 prints the study set (paper Table 1).
func (r *Runner) Table1() error {
	rows := []struct{ name, title, desc string }{
		{"ms2", "Two-lock queue [33]", "Queue as linked list; independent head and tail locks."},
		{"msn", "Nonblocking queue [33]", "Same structure, but compare-and-swap instead of locks (Fig. 9)."},
		{"lazylist", "Lazy list-based set [6,18]", "Sorted linked list; per-node locks for add/remove, lock-free membership test."},
		{"harris", "Nonblocking set [16]", "Sorted linked list; compare-and-swap instead of locks."},
		{"snark", "Nonblocking deque [8,10]", "Doubly-linked list; double-compare-and-swap."},
	}
	r.printf("Table 1: the implementations studied\n")
	for _, row := range rows {
		impl, err := harness.Get(row.name)
		if err != nil {
			return err
		}
		r.printf("  %-9s %-28s %s (fences: %d)\n",
			row.name, row.title, row.desc, harness.CountFences(impl.Source))
	}
	return nil
}

// Row is one Fig. 10a measurement.
type Row struct {
	Impl, Test string
	Res        *core.Result
	Err        error
}

// RunFig10 collects the Fig. 10 measurements on the Relaxed model
// (the paper: "all tests use the memory model Relaxed"). Each row is
// passed to visit as soon as its turn in suite order comes up, so long
// suites show progress and serial and parallel runs print identically.
func (r *Runner) RunFig10(opts core.Options, visit func(Row)) []Row {
	if r.Jobs <= 1 {
		var rows []Row
		for _, impl := range Impls {
			for _, test := range r.TestsFor(impl) {
				start := time.Now()
				res, err := core.Check(impl, test, opts)
				row := Row{Impl: impl, Test: test, Res: res, Err: err}
				rows = append(rows, row)
				if visit != nil {
					visit(row)
				}
				if r.Budget > 0 && time.Since(start) > r.Budget {
					break // remaining tests of this group are larger still
				}
			}
		}
		return rows
	}
	var jobs []core.Job
	for _, impl := range Impls {
		for _, test := range r.TestsFor(impl) {
			jobs = append(jobs, core.Job{Impl: impl, Test: test, Opts: opts})
		}
	}
	return r.runSuite(jobs, visit)
}

// runSuite checks jobs on the Runner's worker pool and returns the
// rows in job order. visit is called in job order too: completed rows
// are buffered until their predecessors have been visited (OnResult
// calls are serialized by RunSuite, so no extra locking is needed).
func (r *Runner) runSuite(jobs []core.Job, visit func(Row)) []Row {
	workers := r.Jobs
	if workers < 1 {
		workers = 1
	}
	rows := make([]Row, len(jobs))
	ready := make([]bool, len(jobs))
	next := 0
	core.RunSuite(jobs, core.SuiteOptions{
		Parallelism: workers,
		OnResult: func(i int, sr core.SuiteResult) {
			rows[i] = Row{Impl: sr.Job.Impl, Test: sr.Job.Test, Res: sr.Res, Err: sr.Err}
			ready[i] = true
			for next < len(rows) && ready[next] {
				if visit != nil {
					visit(rows[next])
				}
				next++
			}
		},
	})
	return rows
}

// Fig10a prints the inclusion-check statistics table.
func (r *Runner) Fig10a() error {
	r.printf("Fig. 10a: inclusion check statistics (model: relaxed)\n")
	r.printf("%-9s %-7s %7s %6s %7s | %9s %9s %10s | %9s %9s | %s\n",
		"impl", "test", "instrs", "loads", "stores",
		"enc[s]", "vars", "clauses", "solve[s]", "total[s]", "verdict")
	r.RunFig10(core.Options{Model: memmodel.Relaxed}, func(row Row) {
		if row.Err != nil {
			r.printf("%-9s %-7s error: %v\n", row.Impl, row.Test, row.Err)
			return
		}
		s := row.Res.Stats
		verdict := "pass"
		if !row.Res.Pass {
			verdict = "FAIL"
			if row.Res.SeqBug {
				verdict = "FAIL(seq)"
			}
		}
		r.printf("%-9s %-7s %7d %6d %7d | %9.2f %9d %10d | %9.2f %9.2f | %s\n",
			row.Impl, row.Test, s.Instrs, s.Loads, s.Stores,
			s.EncodeTime.Seconds(), s.CNFVars, s.CNFClauses,
			s.RefuteTime.Seconds(), s.TotalTime.Seconds(), verdict)
	})
	return nil
}

// Fig10b prints the (memory accesses, solver time, formula size)
// series of the Fig. 10b charts.
func (r *Runner) Fig10b() error {
	r.printf("Fig. 10b: solver effort vs. memory accesses in the unrolled code\n")
	r.printf("%-9s %-7s %9s %12s %12s %14s\n",
		"impl", "test", "accesses", "solve[s]", "clauses", "alloc[MB]")
	rows := r.RunFig10(core.Options{Model: memmodel.Relaxed}, nil)
	for _, row := range rows {
		if row.Err != nil {
			continue
		}
		s := row.Res.Stats
		r.printf("%-9s %-7s %9d %12.3f %12d %14.1f\n",
			row.Impl, row.Test, s.Loads+s.Stores,
			s.RefuteTime.Seconds(), s.CNFClauses,
			float64(s.AllocBytes)/1e6)
	}
	return nil
}

// Fig11a prints the specification mining characterization, including
// the refset (reference implementation) path.
func (r *Runner) Fig11a() error {
	r.printf("Fig. 11a: specification mining (observation set size vs. enumeration time)\n")
	r.printf("%-9s %-7s %8s %10s %12s %14s\n",
		"impl", "test", "obs", "iters", "mine[s]", "refset[s]")
	var jobs []core.Job
	for _, impl := range Impls {
		for _, test := range r.TestsFor(impl) {
			jobs = append(jobs, core.Job{Impl: impl, Test: test,
				Opts: core.Options{Model: memmodel.Serial}})
		}
	}
	rows := r.runSuite(jobs, nil)
	for _, row := range rows {
		if row.Err != nil {
			r.printf("%-9s %-7s error: %v\n", row.Impl, row.Test, row.Err)
			continue
		}
		res := row.Res
		im, err := harness.Get(row.Impl)
		if err != nil {
			return err
		}
		tst, err := harness.GetTest(im, row.Test)
		if err != nil {
			return err
		}
		refStart := time.Now()
		refSet, err := refimpl.Enumerate(im, tst)
		refTime := time.Since(refStart)
		if err != nil {
			return err
		}
		agree := ""
		if res.Spec != nil && !res.SeqBug && !res.Spec.Equal(refSet) {
			agree = " (DISAGREES with refset!)"
		}
		r.printf("%-9s %-7s %8d %10d %12.3f %14.4f%s\n",
			row.Impl, row.Test, res.Stats.ObsSetSize, res.Stats.MineIterations,
			res.Stats.MineTime.Seconds(), refTime.Seconds(), agree)
	}
	return nil
}

// Fig11b prints the average runtime breakdown across the Fig. 10
// runs (paper: mining 38%, encoding 29%, refutation 33%).
func (r *Runner) Fig11b() error {
	rows := r.RunFig10(core.Options{Model: memmodel.Relaxed}, nil)
	var mine, enc, refute, probe, total time.Duration
	for _, row := range rows {
		if row.Err != nil {
			continue
		}
		s := row.Res.Stats
		mine += s.MineTime
		enc += s.EncodeTime
		refute += s.RefuteTime
		probe += s.ProbeTime
		total += s.TotalTime
	}
	if total == 0 {
		return fmt.Errorf("no successful runs")
	}
	pct := func(d time.Duration) float64 { return 100 * float64(d) / float64(total) }
	r.printf("Fig. 11b: average breakdown of total runtime\n")
	r.printf("  specification mining : %5.1f%%\n", pct(mine))
	r.printf("  encoding inclusion   : %5.1f%%\n", pct(enc))
	r.printf("  refutation (solver)  : %5.1f%%\n", pct(refute))
	r.printf("  loop bound probes    : %5.1f%%\n", pct(probe))
	r.printf("  (paper: mining 38%%, encoding 29%%, refutation 33%%)\n")
	return nil
}

// Fig11c prints runtimes with and without the range analysis.
func (r *Runner) Fig11c() error {
	r.printf("Fig. 11c: impact of the range analysis on runtime\n")
	r.printf("%-9s %-7s %12s %14s %8s\n", "impl", "test", "with[s]", "without[s]", "ratio")
	// Jobs come in (with, without) pairs per test; both run on the
	// pool, the table is emitted pairwise in suite order. Each job gets
	// a private spec cache: this experiment times the whole check
	// including mining, so the suite-wide cache would skew the
	// comparison.
	var jobs []core.Job
	for _, impl := range Impls {
		for _, test := range r.TestsFor(impl) {
			jobs = append(jobs,
				core.Job{Impl: impl, Test: test,
					Opts: core.Options{Model: memmodel.Relaxed,
						SpecCache: core.NewSpecCache("")}},
				core.Job{Impl: impl, Test: test,
					Opts: core.Options{Model: memmodel.Relaxed, DisableRangeAnalysis: true,
						SpecCache: core.NewSpecCache("")}})
		}
	}
	rows := r.runSuite(jobs, nil)
	var sumRatio float64
	var count int
	for i := 0; i+1 < len(rows); i += 2 {
		with, without := rows[i], rows[i+1]
		if with.Err != nil {
			r.printf("%-9s %-7s error: %v\n", with.Impl, with.Test, with.Err)
			continue
		}
		if without.Err != nil {
			r.printf("%-9s %-7s (without) error: %v\n", without.Impl, without.Test, without.Err)
			continue
		}
		ratio := without.Res.Stats.TotalTime.Seconds() / with.Res.Stats.TotalTime.Seconds()
		sumRatio += ratio
		count++
		r.printf("%-9s %-7s %12.3f %14.3f %7.2fx\n",
			with.Impl, with.Test, with.Res.Stats.TotalTime.Seconds(),
			without.Res.Stats.TotalTime.Seconds(), ratio)
	}
	if count > 0 {
		r.printf("average slowdown without range analysis: %.2fx (paper: ~42%% improvement, up to 3x)\n",
			sumRatio/float64(count))
	}
	return nil
}

// Fig12 compares the observation-set method against the commit-point
// method on the commit-annotated queue.
func (r *Runner) Fig12() error {
	tests := []string{"T0", "Ti2", "Tpc2"}
	if !r.Quick {
		tests = append(tests, "T1", "Ti3", "Tpc3")
	}
	r.printf("Fig. 12: observation-set method vs. commit-point method (msn-commit, relaxed)\n")
	r.printf("Times cover each method's check (mining + encoding + refutation);\n")
	r.printf("the loop-bound probes, identical in both methods, are excluded.\n")
	r.printf("%-7s %14s %14s %8s\n", "test", "obs-set[s]", "commit[s]", "speedup")
	var sum float64
	var count int
	for _, test := range tests {
		obsRes, err := core.Check("msn-commit", test, core.Options{Model: memmodel.Relaxed})
		if err != nil {
			return err
		}
		cpRes, err := commit.Check("msn-commit", test, memmodel.Relaxed)
		if err != nil {
			return err
		}
		if !obsRes.Pass || !cpRes.Pass {
			r.printf("%-7s unexpected verdicts: obs=%v commit=%v\n", test, obsRes.Pass, cpRes.Pass)
			continue
		}
		obsT := (obsRes.Stats.MineTime + obsRes.Stats.EncodeTime + obsRes.Stats.RefuteTime).Seconds()
		cpT := (cpRes.Stats.EncodeTime + cpRes.Stats.RefuteTime).Seconds()
		speedup := cpT / obsT
		sum += speedup
		count++
		r.printf("%-7s %14.3f %14.3f %7.2fx\n", test, obsT, cpT, speedup)
	}
	if count > 0 {
		r.printf("average speedup of the observation-set method: %.2fx (paper: 2.61x)\n",
			sum/float64(count))
	}
	return nil
}

// FenceTable prints the §4.2 results: fenced implementations pass on
// Relaxed, unfenced variants fail, everything passes on SC, and each
// fence of msn is individually necessary.
func (r *Runner) FenceTable() error {
	r.printf("Fence sufficiency (paper §4.2): model verdicts per variant\n")
	r.printf("%-18s %-7s %8s %10s\n", "impl", "test", "sc", "relaxed")
	pairs := []struct{ impl, test string }{
		{"ms2", "T0"}, {"ms2-nofence", "T0"},
		{"msn", "T0"}, {"msn-nofence", "T0"},
		{"lazylist", "Sac"}, {"lazylist-nofence", "Sac"},
		{"harris", "Sac"}, {"harris-nofence", "Sac"},
		{"snark-nofence", "D0"},
	}
	verdict := func(impl, test string, m memmodel.Model) string {
		res, err := core.Check(impl, test, core.Options{Model: m})
		if err != nil {
			return "err"
		}
		if res.Pass {
			return "pass"
		}
		if res.SeqBug {
			return "FAIL(seq)"
		}
		return "FAIL"
	}
	for _, p := range pairs {
		r.printf("%-18s %-7s %8s %10s\n", p.impl, p.test,
			verdict(p.impl, p.test, memmodel.SequentialConsistency),
			verdict(p.impl, p.test, memmodel.Relaxed))
	}

	r.printf("\nFence necessity (msn, tests T0+Ti2, model relaxed):\n")
	rep, err := fenceinfer.Minimize("msn", []string{"T0", "Ti2"}, memmodel.Relaxed)
	if err != nil {
		return err
	}
	r.printf("  candidate fences: %d, removable under these tests: %v\n",
		rep.Candidates, rep.Removed)
	for _, st := range rep.Status {
		mark := "necessary"
		if !st.Necessary {
			mark = "not exercised by these tests"
		}
		r.printf("  fence #%d: %s (witness: %s)\n", st.Index, mark, st.FailingTest)
	}
	return nil
}

// ModelChoice compares runtimes under SC and Relaxed (paper §4.4:
// "performance is about 4%% faster for sequential consistency, which
// is insignificant").
func (r *Runner) ModelChoice() error {
	r.printf("Model choice impact (paper §4.4)\n")
	r.printf("%-9s %-7s %10s %12s %8s\n", "impl", "test", "sc[s]", "relaxed[s]", "ratio")
	var sum float64
	var count int
	for _, impl := range Impls {
		if impl == "snark" {
			continue // fails on both models; timing not comparable
		}
		for _, test := range r.TestsFor(impl) {
			sc, err := core.Check(impl, test, core.Options{Model: memmodel.SequentialConsistency})
			if err != nil {
				continue
			}
			rel, err := core.Check(impl, test, core.Options{Model: memmodel.Relaxed})
			if err != nil {
				continue
			}
			ratio := rel.Stats.TotalTime.Seconds() / sc.Stats.TotalTime.Seconds()
			sum += ratio
			count++
			r.printf("%-9s %-7s %10.3f %12.3f %7.2fx\n", impl, test,
				sc.Stats.TotalTime.Seconds(), rel.Stats.TotalTime.Seconds(), ratio)
		}
	}
	if count > 0 {
		r.printf("average relaxed/sc runtime ratio: %.2f (paper: ~1.04)\n", sum/float64(count))
	}
	return nil
}

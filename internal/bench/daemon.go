package bench

// This file measures the checking-as-a-service path: the same
// model-matrix suite submitted to an in-process checkfenced server
// over HTTP vs run directly through core.RunSuite, both on one
// worker. Every row first asserts per-model verdict agreement — a
// service that answers differently from the library is a correctness
// bug, not an overhead figure. The result is the BENCH_daemon.json
// artifact: per-pair wall times and the service's protocol overhead
// (serialization, HTTP, NDJSON streaming) over the direct path.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/daemon"
)

// daemonPairs are the (implementation, test) rows; -quick keeps the
// cheap half.
var daemonPairs = []struct{ impl, test string }{
	{"ms2", "T0"},
	{"msn", "T0"},
	{"ms2-nofence", "T0"},
	{"msn-nofence", "T0"},
	{"ms2", "Tpc2"},
	{"lazylist", "Sac"},
}

var quickDaemonPairs = map[string]bool{
	"ms2/T0": true, "msn/T0": true, "ms2-nofence/T0": true,
}

// DaemonRow is one measurement: a model-matrix batch for one
// (implementation, test), served over HTTP vs run directly.
type DaemonRow struct {
	Impl   string   `json:"impl"`
	Test   string   `json:"test"`
	Models []string `json:"models"`
	// Verdicts holds one verdict per model, in Models order; identical
	// between the two paths by construction.
	Verdicts []string `json:"verdicts"`
	// HTTPSec and DirectSec are single-worker wall times (best of
	// reps); OverheadMs is their difference — the protocol cost.
	HTTPSec    float64 `json:"http_sec"`
	DirectSec  float64 `json:"direct_sec"`
	OverheadMs float64 `json:"overhead_ms"`
}

// DaemonArtifact is the BENCH_daemon.json schema.
type DaemonArtifact struct {
	GeneratedAt      string      `json:"generated_at"`
	CPUs             int         `json:"cpus"`
	Models           []string    `json:"models"`
	Rows             []DaemonRow `json:"rows"`
	MedianOverheadMs float64     `json:"median_overhead_ms"`
}

// postDaemonBatch submits one model-matrix batch and returns the
// verdict per model (request order) plus the wall time.
func postDaemonBatch(url, impl, test string, models []string) ([]string, float64, error) {
	req := map[string]any{
		"jobs": []map[string]any{{
			"program": map[string]any{"name": impl},
			"test":    test,
			"models":  models,
		}},
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	resp, err := http.Post(url+"/v1/check", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("bench: daemon %s/%s: %s", impl, test, resp.Status)
	}
	verdicts := make([]string, len(models))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			Type    string `json:"type"`
			Index   int    `json:"index"`
			Verdict string `json:"verdict"`
			Error   string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, 0, err
		}
		if line.Type != "result" {
			continue
		}
		if line.Error != "" {
			return nil, 0, fmt.Errorf("bench: daemon %s/%s[%d]: %s", impl, test, line.Index, line.Error)
		}
		verdicts[line.Index] = line.Verdict
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	wall := time.Since(start).Seconds()
	for i, v := range verdicts {
		if v == "" {
			return nil, 0, fmt.Errorf("bench: daemon %s/%s: no verdict for model %s", impl, test, models[i])
		}
	}
	return verdicts, wall, nil
}

// DaemonReport measures the HTTP service path against direct library
// checks, prints the comparison, and writes the artifact to jsonPath
// ("" = print only).
func (r *Runner) DaemonReport(jsonPath string) error {
	art := DaemonArtifact{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		CPUs:        runtime.NumCPU(),
	}
	models := make([]string, len(sweepModels))
	for i, m := range sweepModels {
		models[i] = m.String()
	}
	art.Models = models

	r.printf("Checking as a service: HTTP batch vs direct suite (%d models, 1 worker)\n", len(models))
	r.printf("%-12s %-7s | %9s %9s | %9s | %s\n",
		"impl", "test", "http[s]", "direct[s]", "overhead", "verdicts")
	var overheads []float64
	for _, pair := range daemonPairs {
		if r.Quick && !quickDaemonPairs[pair.impl+"/"+pair.test] {
			continue
		}
		const reps = 3
		var row DaemonRow
		row.Impl, row.Test, row.Models = pair.impl, pair.test, models
		for rep := 0; rep < reps; rep++ {
			// A fresh server per rep: the service must pay its own
			// mining, not reuse a previous rep's cache.
			srv := daemon.NewServer(daemon.Config{Parallelism: 1})
			ts := httptest.NewServer(srv)
			httpVerdicts, httpSec, err := postDaemonBatch(ts.URL, pair.impl, pair.test, models)
			ts.Close()
			if err != nil {
				return err
			}
			direct, directSec, err := runSweepSuite(pair.impl, pair.test, core.SweepAuto)
			if err != nil {
				return err
			}
			for i := range direct {
				if want := direct[i].Res.Verdict.String(); httpVerdicts[i] != want {
					return fmt.Errorf("bench: daemon disagrees with direct on %s/%s %s: %s vs %s",
						pair.impl, pair.test, models[i], httpVerdicts[i], want)
				}
			}
			if rep == 0 || httpSec < row.HTTPSec {
				row.HTTPSec = httpSec
			}
			if rep == 0 || directSec < row.DirectSec {
				row.DirectSec = directSec
			}
			if rep == 0 {
				row.Verdicts = httpVerdicts
			}
		}
		row.OverheadMs = (row.HTTPSec - row.DirectSec) * 1000
		art.Rows = append(art.Rows, row)
		overheads = append(overheads, row.OverheadMs)
		r.printf("%-12s %-7s | %9.3f %9.3f | %7.1fms | %v\n",
			row.Impl, row.Test, row.HTTPSec, row.DirectSec, row.OverheadMs, row.Verdicts)
	}
	art.MedianOverheadMs = median(overheads)
	r.printf("median service overhead: %.1fms per %d-model batch\n", art.MedianOverheadMs, len(models))

	if jsonPath != "" {
		data, err := json.MarshalIndent(&art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		r.printf("wrote %s\n", jsonPath)
	}
	return nil
}

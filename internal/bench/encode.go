package bench

// This file measures the formula-minimization layer: every suite
// check runs twice — once with the full pipeline (AIG rewriting,
// polarity-aware encoding, CNF preprocessing) and once with all of it
// disabled — verifying identical verdicts and observation sets, and
// recording formula sizes and solve times as the BENCH_encode.json
// artifact.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/memmodel"
)

// EncodeRow is one (implementation, test) measurement of the
// minimization comparison.
type EncodeRow struct {
	Impl    string `json:"impl"`
	Test    string `json:"test"`
	Model   string `json:"model"`
	Verdict string `json:"verdict"`

	// Minimized run.
	Gates      int     `json:"gates"`
	Vars       int     `json:"vars"`
	Clauses    int     `json:"clauses"`
	PreVars    int     `json:"pre_vars"`    // before CNF preprocessing
	PreClauses int     `json:"pre_clauses"` // before CNF preprocessing
	EncodeSec  float64 `json:"encode_sec"`
	PrepSec    float64 `json:"preprocess_sec"` // included in solve_sec
	SolveSec   float64 `json:"solve_sec"`
	TotalSec   float64 `json:"total_sec"`

	// Unminimized run (classic Tseitin, no rewriting, no
	// preprocessing).
	PlainGates     int     `json:"plain_gates"`
	PlainVars      int     `json:"plain_vars"`
	PlainClauses   int     `json:"plain_clauses"`
	PlainEncodeSec float64 `json:"plain_encode_sec"`
	PlainSolveSec  float64 `json:"plain_solve_sec"`
	PlainTotalSec  float64 `json:"plain_total_sec"`

	// ClauseReduction is 1 - clauses/plain_clauses.
	ClauseReduction float64 `json:"clause_reduction"`
}

// EncodeArtifact is the BENCH_encode.json schema.
type EncodeArtifact struct {
	GeneratedAt     string      `json:"generated_at"`
	Model           string      `json:"model"`
	Rows            []EncodeRow `json:"rows"`
	RowsAtLeast20   int         `json:"rows_at_least_20pct"`
	MeanReductionPc float64     `json:"mean_reduction_pct"`
}

// EncodeReport runs the suite with minimization on and off, asserts
// agreement (verdicts, observation sets, counterexample validity),
// prints the comparison, and writes the artifact to jsonPath ("" =
// print only). An agreement violation is an error: the minimization
// layer must be semantically invisible.
func (r *Runner) EncodeReport(jsonPath string) error {
	model := memmodel.Relaxed
	// (on, off) job pairs. Each job carries a private observation-set
	// cache so mining runs (and is timed) in both configurations.
	var jobs []core.Job
	for _, impl := range Impls {
		for _, test := range r.TestsFor(impl) {
			jobs = append(jobs,
				core.Job{Impl: impl, Test: test,
					Opts: core.Options{Model: model,
						SpecCache: core.NewSpecCache("")}},
				core.Job{Impl: impl, Test: test,
					Opts: core.Options{Model: model,
						SimplifyLevel: -1, NoPreprocess: true,
						SpecCache: core.NewSpecCache("")}})
		}
	}
	rows := r.runSuite(jobs, nil)

	r.printf("Formula minimization: CNF size and solve time, minimized vs. plain (model: %s)\n", model)
	r.printf("%-9s %-7s | %9s %10s %10s | %10s | %6s | %9s %9s | %s\n",
		"impl", "test", "gates", "pre-cls", "clauses", "plain-cls", "red.", "solve[s]", "plain[s]", "verdict")

	art := EncodeArtifact{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Model:       model.String(),
	}
	var sumRed float64
	for i := 0; i+1 < len(rows); i += 2 {
		on, off := rows[i], rows[i+1]
		if on.Err != nil || off.Err != nil {
			return fmt.Errorf("bench: %s/%s: on err=%v, off err=%v", on.Impl, on.Test, on.Err, off.Err)
		}
		if err := checkAgreement(on, off); err != nil {
			return err
		}
		s, p := on.Res.Stats, off.Res.Stats
		verdict := "pass"
		if !on.Res.Pass {
			verdict = "FAIL"
			if on.Res.SeqBug {
				verdict = "FAIL(seq)"
			}
		}
		red := 0.0
		if p.CNFClauses > 0 {
			red = 1 - float64(s.CNFClauses)/float64(p.CNFClauses)
		}
		row := EncodeRow{
			Impl: on.Impl, Test: on.Test, Model: model.String(), Verdict: verdict,
			Gates: s.Gates, Vars: s.CNFVars, Clauses: s.CNFClauses,
			PreVars: s.PreCNFVars, PreClauses: s.PreCNFClauses,
			EncodeSec: s.EncodeTime.Seconds(), PrepSec: s.PreprocessTime.Seconds(),
			SolveSec:   s.RefuteTime.Seconds(),
			TotalSec:   s.TotalTime.Seconds(),
			PlainGates: p.Gates, PlainVars: p.CNFVars, PlainClauses: p.CNFClauses,
			PlainEncodeSec: p.EncodeTime.Seconds(), PlainSolveSec: p.RefuteTime.Seconds(),
			PlainTotalSec:   p.TotalTime.Seconds(),
			ClauseReduction: red,
		}
		art.Rows = append(art.Rows, row)
		sumRed += red
		if red >= 0.20 {
			art.RowsAtLeast20++
		}
		r.printf("%-9s %-7s | %9d %10d %10d | %10d | %5.1f%% | %9.3f %9.3f | %s\n",
			row.Impl, row.Test, row.Gates, row.PreClauses, row.Clauses,
			row.PlainClauses, 100*red, row.SolveSec, row.PlainSolveSec, verdict)
	}
	if len(art.Rows) > 0 {
		art.MeanReductionPc = 100 * sumRed / float64(len(art.Rows))
		r.printf("mean clause reduction: %.1f%%; rows with >= 20%%: %d/%d\n",
			art.MeanReductionPc, art.RowsAtLeast20, len(art.Rows))
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(&art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		r.printf("wrote %s\n", jsonPath)
	}
	return nil
}

// checkAgreement asserts that the minimized and plain runs of one
// check are observationally identical.
func checkAgreement(on, off Row) error {
	where := fmt.Sprintf("bench: %s/%s", on.Impl, on.Test)
	if on.Res.Pass != off.Res.Pass || on.Res.SeqBug != off.Res.SeqBug {
		return fmt.Errorf("%s: verdicts differ: minimized pass=%v seqbug=%v, plain pass=%v seqbug=%v",
			where, on.Res.Pass, on.Res.SeqBug, off.Res.Pass, off.Res.SeqBug)
	}
	if (on.Res.Spec == nil) != (off.Res.Spec == nil) {
		return fmt.Errorf("%s: one run has an observation set, the other does not", where)
	}
	if on.Res.Spec != nil && !on.Res.Spec.Equal(off.Res.Spec) {
		return fmt.Errorf("%s: observation sets differ (%d vs %d observations)",
			where, on.Res.Spec.Len(), off.Res.Spec.Len())
	}
	for _, run := range []Row{on, off} {
		res := run.Res
		if res.Pass || res.Cex == nil {
			continue
		}
		// A non-error counterexample must be a genuinely new
		// observation (outside the mined set).
		if !res.Cex.IsErr && res.Spec != nil && res.Spec.Has(res.Cex.Observation) {
			return fmt.Errorf("%s: counterexample observation is inside the specification", where)
		}
	}
	return nil
}

// Package job defines the serializable check description: one
// CheckFence verification problem — program, test, memory model,
// unrolling bounds, backend selection, solver strategy, resource
// budgets, and cube assumptions — round-tripped through
// JSON. It is the wire format of the checkfenced daemon's /v1/check
// endpoint and the unit a cross-process cube-and-conquer fan-out
// ships to remote workers: everything a check depends on is in the
// description, so any process holding it can produce the same verdict.
//
// The description is canonicalizable: Fingerprint hashes a normalized
// rendering, giving content-addressed identities that line up with the
// spec cache's content-addressed observation-set tier.
package job

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
)

// Duration marshals a time.Duration as a Go duration string ("1m30s")
// and unmarshals either that form or a bare JSON number of
// nanoseconds (time.Duration's native unit).
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "30s"-style strings and nanosecond numbers.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, perr := time.ParseDuration(s)
		if perr != nil {
			return fmt.Errorf("job: bad duration %q: %w", s, perr)
		}
		*d = Duration(parsed)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("job: duration must be a string like \"30s\" or a nanosecond count: %s", data)
	}
	*d = Duration(n)
	return nil
}

// Op describes one operation of an inline program (mirrors
// harness.OpSig).
type Op struct {
	Mnemonic string `json:"mnemonic"`
	Func     string `json:"func"`
	NumArgs  int    `json:"num_args,omitempty"`
	HasRet   bool   `json:"has_ret,omitempty"`
	HasOut   bool   `json:"has_out,omitempty"`
}

// Program names the implementation under check. With only Name set it
// refers to a bundled registry implementation ("msn", "lazylist-bug",
// ...). With Source set it carries a complete inline C implementation
// — the daemon form of the library's CheckDataType — and Name merely
// labels results.
type Program struct {
	Name     string `json:"name"`
	Source   string `json:"source,omitempty"`
	InitFunc string `json:"init_func,omitempty"`
	Object   string `json:"object,omitempty"`
	Kind     string `json:"kind,omitempty"`
	Ops      []Op   `json:"ops,omitempty"`
}

// Inline reports whether the program carries its own source.
func (p Program) Inline() bool { return p.Source != "" }

// Check is one serializable verification job. The zero value of every
// optional field selects the library default, so a minimal description
// is just {"program":{"name":"msn"},"test":"T0","model":"relaxed"}.
type Check struct {
	Program Program `json:"program"`
	// Test is a Fig. 8 test name ("T0", "Tpc2") or raw notation
	// ("e ( ed | de )").
	Test string `json:"test"`
	// Model is the memory model: "sc", "tso", "pso", "relaxed",
	// "serial".
	Model string `json:"model"`
	// Backend selects the verdict engine: "auto" (default), "rf",
	// "sat", "portfolio", "cube".
	Backend string `json:"backend,omitempty"`
	// SpecSource is "sat" (default: mine from the implementation) or
	// "refset".
	SpecSource string `json:"spec_source,omitempty"`
	// Bounds seeds the per-loop unrolling bounds.
	Bounds map[string]int `json:"bounds,omitempty"`
	// MaxBoundRounds caps the lazy-unrolling iterations (0 = default).
	MaxBoundRounds int `json:"max_bound_rounds,omitempty"`

	// Solver strategy.
	Portfolio         int  `json:"portfolio,omitempty"`
	ShareClauses      bool `json:"share_clauses,omitempty"`
	Cube              int  `json:"cube,omitempty"`
	MaxMineIterations int  `json:"max_mine_iterations,omitempty"`
	SimplifyLevel     int  `json:"simplify_level,omitempty"`
	NoPreprocess      bool `json:"no_preprocess,omitempty"`
	NoInprocess       bool `json:"no_inprocess,omitempty"`
	NoOrderReduce     bool `json:"no_order_reduce,omitempty"`
	NoRangeAnalysis   bool `json:"no_range_analysis,omitempty"`
	NoValidate        bool `json:"no_validate,omitempty"`
	// Sweep is "auto" (default: join model-sweep groups) or "off".
	Sweep string `json:"sweep,omitempty"`

	// Budgets. A job exhausting them reports verdict "unknown" with a
	// budget report rather than erroring.
	Timeout        Duration `json:"timeout,omitempty"`
	ConflictBudget int64    `json:"conflict_budget,omitempty"`
	MemBudgetMB    int      `json:"mem_budget_mb,omitempty"`

	// Assume carries cube assumption literals for cross-process
	// cube-and-conquer fan-out: a coordinator splits one hard check
	// into descriptions differing only here, and each worker solves
	// its cube. Entries are signed 1-based ordinals into the check's
	// deterministic memory-order variable list (core.Options.Assume
	// has the full semantics); Options maps them through verbatim.
	Assume []int `json:"assume,omitempty"`

	// CubeOf and CubeIndex tie a fan-out cube back to its parent: a
	// coordinator stamps CubeOf with the undivided check's Fingerprint
	// and CubeIndex with the cube's position in the plan, so result
	// deduplication can key on (parent, index) across redeliveries and
	// worker restarts. Both are metadata — they do not alter what the
	// check computes — but they participate in Fingerprint so cubes of
	// the same parent never collide in content-addressed caches.
	CubeOf    string `json:"cube_of,omitempty"`
	CubeIndex int    `json:"cube_index,omitempty"`
}

// Validate checks the description without resolving the program:
// every enumerated field must parse and the program must be named.
func (c *Check) Validate() error {
	if c.Program.Name == "" {
		return fmt.Errorf("job: program.name is required")
	}
	if c.Test == "" {
		return fmt.Errorf("job: test is required")
	}
	if _, err := memmodel.Parse(c.model()); err != nil {
		return fmt.Errorf("job: %w", err)
	}
	if _, err := core.ParseBackend(c.backend()); err != nil {
		return fmt.Errorf("job: %w", err)
	}
	if _, err := parseSpecSource(c.SpecSource); err != nil {
		return err
	}
	if _, err := core.ParseSweepMode(c.Sweep); err != nil {
		return fmt.Errorf("job: %w", err)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("job: negative timeout %v", time.Duration(c.Timeout))
	}
	if c.Program.Inline() {
		if len(c.Program.Ops) == 0 {
			return fmt.Errorf("job: inline program %q has no operations", c.Program.Name)
		}
		if c.Program.InitFunc == "" || c.Program.Object == "" {
			return fmt.Errorf("job: inline program %q needs init_func and object", c.Program.Name)
		}
	}
	return nil
}

func (c *Check) model() string {
	if c.Model == "" {
		return "relaxed"
	}
	return c.Model
}

func (c *Check) backend() string {
	if c.Backend == "" {
		return "auto"
	}
	return c.Backend
}

func parseSpecSource(s string) (core.SpecSource, error) {
	switch s {
	case "", "sat":
		return core.SpecSAT, nil
	case "refset", "ref":
		return core.SpecRef, nil
	}
	return 0, fmt.Errorf("job: unknown spec source %q (want sat or refset)", s)
}

// Options maps the description onto the core check options.
func (c *Check) Options() (core.Options, error) {
	if err := c.Validate(); err != nil {
		return core.Options{}, err
	}
	model, _ := memmodel.Parse(c.model())
	backend, _ := core.ParseBackend(c.backend())
	src, _ := parseSpecSource(c.SpecSource)
	sweep, _ := core.ParseSweepMode(c.Sweep)
	opts := core.Options{
		Model:                model,
		Backend:              backend,
		SpecSource:           src,
		DisableRangeAnalysis: c.NoRangeAnalysis,
		MaxBoundRounds:       c.MaxBoundRounds,
		Portfolio:            c.Portfolio,
		ShareClauses:         c.ShareClauses,
		Cube:                 c.Cube,
		MaxMineIterations:    c.MaxMineIterations,
		SimplifyLevel:        c.SimplifyLevel,
		NoPreprocess:         c.NoPreprocess,
		NoInprocess:          c.NoInprocess,
		NoOrderReduce:        c.NoOrderReduce,
		Deadline:             time.Duration(c.Timeout),
		ConflictBudget:       c.ConflictBudget,
		MemBudgetMB:          c.MemBudgetMB,
		Sweep:                sweep,
	}
	if len(c.Bounds) > 0 {
		opts.InitialBounds = make(map[string]int, len(c.Bounds))
		for k, v := range c.Bounds {
			opts.InitialBounds[k] = v
		}
	}
	if c.NoValidate {
		opts.ValidateTraces = core.ValidateOff
	}
	if len(c.Assume) > 0 {
		opts.Assume = append([]int(nil), c.Assume...)
	}
	return opts, nil
}

// Resolve produces the implementation and test structures the
// description names: the harness registry for bundled programs, a
// freshly built harness.Impl for inline source.
func (c *Check) Resolve() (*harness.Impl, *harness.Test, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	if !c.Program.Inline() {
		impl, err := harness.Get(c.Program.Name)
		if err != nil {
			return nil, nil, err
		}
		test, err := harness.GetTest(impl, c.Test)
		if err != nil {
			return nil, nil, err
		}
		return impl, test, nil
	}
	ops := make([]harness.OpSig, len(c.Program.Ops))
	for i, op := range c.Program.Ops {
		ops[i] = harness.OpSig{
			Mnemonic: op.Mnemonic, Func: op.Func,
			NumArgs: op.NumArgs, HasRet: op.HasRet, HasOut: op.HasOut,
		}
	}
	impl := &harness.Impl{
		Name: c.Program.Name, Kind: c.Program.Kind, Source: c.Program.Source,
		InitFunc: c.Program.InitFunc, Obj: c.Program.Object, Ops: ops,
	}
	test, err := harness.GetTest(impl, c.Test)
	if err != nil {
		return nil, nil, err
	}
	return impl, test, nil
}

// CoreJob renders the description as a core suite job: options mapped,
// program and test resolved (inline programs ride the Job's resolved
// references, so RunSuite's scheduler — sweep grouping included —
// treats them exactly like bundled ones).
func (c *Check) CoreJob() (core.Job, error) {
	opts, err := c.Options()
	if err != nil {
		return core.Job{}, err
	}
	impl, test, err := c.Resolve()
	if err != nil {
		return core.Job{}, err
	}
	j := core.Job{Impl: impl.Name, Test: test.Name, Opts: opts}
	if c.Program.Inline() {
		j.ImplRef = impl
		j.TestRef = test
	}
	return j, nil
}

// FromOptions renders a (bundled implementation, test, options) triple
// as a description, inverting Options. Used to mirror CLI invocations
// onto the wire format.
func FromOptions(implName, testName string, o core.Options) Check {
	c := Check{
		Program:           Program{Name: implName},
		Test:              testName,
		Model:             o.Model.String(),
		NoRangeAnalysis:   o.DisableRangeAnalysis,
		MaxBoundRounds:    o.MaxBoundRounds,
		Portfolio:         o.Portfolio,
		ShareClauses:      o.ShareClauses,
		Cube:              o.Cube,
		MaxMineIterations: o.MaxMineIterations,
		SimplifyLevel:     o.SimplifyLevel,
		NoPreprocess:      o.NoPreprocess,
		NoInprocess:       o.NoInprocess,
		NoOrderReduce:     o.NoOrderReduce,
		Timeout:           Duration(o.Deadline),
		ConflictBudget:    o.ConflictBudget,
		MemBudgetMB:       o.MemBudgetMB,
	}
	if o.Backend != core.BackendAuto {
		c.Backend = o.Backend.String()
	}
	if o.SpecSource == core.SpecRef {
		c.SpecSource = "refset"
	}
	if o.Sweep == core.SweepOff {
		c.Sweep = "off"
	}
	if o.ValidateTraces == core.ValidateOff {
		c.NoValidate = true
	}
	if len(o.InitialBounds) > 0 {
		c.Bounds = make(map[string]int, len(o.InitialBounds))
		for k, v := range o.InitialBounds {
			c.Bounds[k] = v
		}
	}
	if len(o.Assume) > 0 {
		c.Assume = append([]int(nil), o.Assume...)
	}
	return c
}

// Fingerprint returns a content-addressed identity of the description:
// the hex SHA-256 of a canonical rendering (defaults normalized, map
// keys sorted). Two descriptions with equal fingerprints request the
// same check.
func (c *Check) Fingerprint() string {
	h := sha256.New()
	write := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
	}
	write("program", c.Program.Name, c.Program.Source, c.Program.InitFunc,
		c.Program.Object, c.Program.Kind)
	for _, op := range c.Program.Ops {
		write("op", op.Mnemonic, op.Func,
			strconv.Itoa(op.NumArgs), strconv.FormatBool(op.HasRet), strconv.FormatBool(op.HasOut))
	}
	write("test", c.Test, "model", c.model(), "backend", c.backend(),
		"spec", c.SpecSource, "sweep", c.Sweep)
	keys := make([]string, 0, len(c.Bounds))
	for k := range c.Bounds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		write("bound", k, strconv.Itoa(c.Bounds[k]))
	}
	write("mbr", strconv.Itoa(c.MaxBoundRounds),
		"pf", strconv.Itoa(c.Portfolio), "shc", strconv.FormatBool(c.ShareClauses),
		"cube", strconv.Itoa(c.Cube), "mmi", strconv.Itoa(c.MaxMineIterations),
		"simp", strconv.Itoa(c.SimplifyLevel),
		"nopre", strconv.FormatBool(c.NoPreprocess),
		"noinp", strconv.FormatBool(c.NoInprocess),
		"noord", strconv.FormatBool(c.NoOrderReduce),
		"nora", strconv.FormatBool(c.NoRangeAnalysis),
		"noval", strconv.FormatBool(c.NoValidate),
		"to", time.Duration(c.Timeout).String(),
		"cb", strconv.FormatInt(c.ConflictBudget, 10),
		"mem", strconv.Itoa(c.MemBudgetMB))
	for _, a := range c.Assume {
		write("assume", strconv.Itoa(a))
	}
	if c.CubeOf != "" || c.CubeIndex != 0 {
		write("cubeof", c.CubeOf, "cubeidx", strconv.Itoa(c.CubeIndex))
	}
	return hex.EncodeToString(h.Sum(nil))
}

package job

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/memmodel"
)

func TestRoundTrip(t *testing.T) {
	c := Check{
		Program:           Program{Name: "msn"},
		Test:              "T0",
		Model:             "tso",
		Backend:           "portfolio",
		SpecSource:        "refset",
		Bounds:            map[string]int{"L0": 2},
		MaxBoundRounds:    5,
		Portfolio:         3,
		ShareClauses:      true,
		Cube:              8,
		MaxMineIterations: 100,
		SimplifyLevel:     2,
		NoPreprocess:      true,
		NoInprocess:       true,
		NoOrderReduce:     true,
		NoRangeAnalysis:   true,
		NoValidate:        true,
		Sweep:             "off",
		Timeout:           Duration(90 * time.Second),
		ConflictBudget:    1 << 20,
		MemBudgetMB:       256,
		Assume:            []int{3, -7},
		CubeOf:            "deadbeef",
		CubeIndex:         2,
	}
	data, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	var back Check
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatalf("round trip changed the description:\n%s\n%s", data, again)
	}
	if back.Fingerprint() != c.Fingerprint() {
		t.Error("fingerprint changed across round trip")
	}
}

func TestDurationForms(t *testing.T) {
	var c Check
	if err := json.Unmarshal([]byte(`{"program":{"name":"msn"},"test":"T0","timeout":"1m30s"}`), &c); err != nil {
		t.Fatal(err)
	}
	if time.Duration(c.Timeout) != 90*time.Second {
		t.Errorf("string timeout = %v, want 90s", time.Duration(c.Timeout))
	}
	if err := json.Unmarshal([]byte(`{"program":{"name":"msn"},"test":"T0","timeout":5000000000}`), &c); err != nil {
		t.Fatal(err)
	}
	if time.Duration(c.Timeout) != 5*time.Second {
		t.Errorf("numeric timeout = %v, want 5s", time.Duration(c.Timeout))
	}
	if err := json.Unmarshal([]byte(`{"timeout":"fast"}`), &c); err == nil {
		t.Error("expected error for unparsable duration")
	}
}

func TestOptionsMapping(t *testing.T) {
	c := Check{
		Program:        Program{Name: "msn"},
		Test:           "T0",
		Model:          "pso",
		Backend:        "sat",
		SpecSource:     "refset",
		Sweep:          "off",
		NoValidate:     true,
		Timeout:        Duration(2 * time.Second),
		ConflictBudget: 777,
		Bounds:         map[string]int{"L1": 3},
	}
	opts, err := c.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Model != memmodel.PSO {
		t.Errorf("model = %v", opts.Model)
	}
	if opts.Backend != core.BackendSAT {
		t.Errorf("backend = %v", opts.Backend)
	}
	if opts.SpecSource != core.SpecRef {
		t.Errorf("spec source = %v", opts.SpecSource)
	}
	if opts.Sweep != core.SweepOff {
		t.Errorf("sweep = %v", opts.Sweep)
	}
	if opts.ValidateTraces != core.ValidateOff {
		t.Errorf("validate = %v", opts.ValidateTraces)
	}
	if opts.Deadline != 2*time.Second {
		t.Errorf("deadline = %v", opts.Deadline)
	}
	if opts.ConflictBudget != 777 {
		t.Errorf("conflict budget = %d", opts.ConflictBudget)
	}
	if opts.InitialBounds["L1"] != 3 {
		t.Errorf("bounds = %v", opts.InitialBounds)
	}
}

func TestFromOptionsInverts(t *testing.T) {
	orig := core.Options{
		Model:          memmodel.TSO,
		Backend:        core.BackendCube,
		SpecSource:     core.SpecRef,
		Sweep:          core.SweepOff,
		ValidateTraces: core.ValidateOff,
		Portfolio:      2,
		Cube:           16,
		Deadline:       time.Minute,
		InitialBounds:  map[string]int{"L0": 4},
	}
	c := FromOptions("ms2", "Tr1", orig)
	got, err := c.Options()
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != orig.Model || got.Backend != orig.Backend ||
		got.SpecSource != orig.SpecSource || got.Sweep != orig.Sweep ||
		got.ValidateTraces != orig.ValidateTraces ||
		got.Portfolio != orig.Portfolio || got.Cube != orig.Cube ||
		got.Deadline != orig.Deadline {
		t.Errorf("FromOptions . Options != identity:\norig %+v\ngot  %+v", orig, got)
	}
	if got.InitialBounds["L0"] != 4 {
		t.Errorf("bounds lost: %v", got.InitialBounds)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		c    Check
		want string
	}{
		{"no program", Check{Test: "T0"}, "program.name"},
		{"no test", Check{Program: Program{Name: "msn"}}, "test is required"},
		{"bad model", Check{Program: Program{Name: "msn"}, Test: "T0", Model: "ppc"}, "ppc"},
		{"bad backend", Check{Program: Program{Name: "msn"}, Test: "T0", Backend: "z3"}, "z3"},
		{"bad spec source", Check{Program: Program{Name: "msn"}, Test: "T0", SpecSource: "oracle"}, "spec source"},
		{"bad sweep", Check{Program: Program{Name: "msn"}, Test: "T0", Sweep: "sideways"}, "sideways"},
		{"negative timeout", Check{Program: Program{Name: "msn"}, Test: "T0", Timeout: Duration(-1)}, "negative timeout"},
		{"inline no ops", Check{Program: Program{Name: "x", Source: "int x;"}, Test: "T0"}, "no operations"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.c.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestAssumeConsumed(t *testing.T) {
	c := Check{Program: Program{Name: "msn"}, Test: "T0", Assume: []int{3, -7}}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate should accept assumptions (wire round-trip): %v", err)
	}
	opts, err := c.Options()
	if err != nil {
		t.Fatalf("Options should consume assumptions: %v", err)
	}
	if len(opts.Assume) != 2 || opts.Assume[0] != 3 || opts.Assume[1] != -7 {
		t.Errorf("Options.Assume = %v, want [3 -7]", opts.Assume)
	}
	// The mapping must copy, not alias: a coordinator reuses one
	// description template across cubes.
	opts.Assume[0] = 99
	if c.Assume[0] != 3 {
		t.Error("Options aliased the description's Assume slice")
	}
	back := FromOptions("msn", "T0", opts)
	if len(back.Assume) != 2 || back.Assume[0] != 99 || back.Assume[1] != -7 {
		t.Errorf("FromOptions lost assumptions: %v", back.Assume)
	}
}

func TestCubeFieldsRoundTrip(t *testing.T) {
	parent := Check{Program: Program{Name: "msn"}, Test: "T0", Model: "relaxed"}
	cube := parent
	cube.Assume = []int{1, -2}
	cube.CubeOf = parent.Fingerprint()
	cube.CubeIndex = 1

	data, err := json.Marshal(&cube)
	if err != nil {
		t.Fatal(err)
	}
	var back Check
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.CubeOf != cube.CubeOf || back.CubeIndex != 1 {
		t.Errorf("cube lineage lost: of=%q idx=%d", back.CubeOf, back.CubeIndex)
	}
	if back.Fingerprint() != cube.Fingerprint() {
		t.Error("fingerprint changed across round trip")
	}
	if cube.Fingerprint() == parent.Fingerprint() {
		t.Error("a cube must not collide with its parent in content-addressed caches")
	}
	sibling := cube
	sibling.Assume = []int{-1, -2}
	sibling.CubeIndex = 2
	if sibling.Fingerprint() == cube.Fingerprint() {
		t.Error("sibling cubes must have distinct fingerprints")
	}
}

func TestResolveRegistryAndInline(t *testing.T) {
	reg := Check{Program: Program{Name: "msn"}, Test: "T0"}
	impl, test, err := reg.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if impl.Name != "msn" || test == nil {
		t.Errorf("registry resolve: %v %v", impl, test)
	}

	// Inline program cloned from a bundled one must resolve and check
	// identically to the registry path.
	inline := Check{
		Program: Program{
			Name:     "inline-msn",
			Source:   impl.Source,
			InitFunc: impl.InitFunc,
			Object:   impl.Obj,
			Kind:     impl.Kind,
		},
		Test: "T0",
	}
	for _, op := range impl.Ops {
		inline.Program.Ops = append(inline.Program.Ops, Op{
			Mnemonic: op.Mnemonic, Func: op.Func,
			NumArgs: op.NumArgs, HasRet: op.HasRet, HasOut: op.HasOut,
		})
	}
	iimpl, itest, err := inline.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if iimpl.Name != "inline-msn" || itest.Name != test.Name {
		t.Errorf("inline resolve: %v %v", iimpl.Name, itest.Name)
	}
	j, err := inline.CoreJob()
	if err != nil {
		t.Fatal(err)
	}
	if j.ImplRef == nil || j.TestRef == nil {
		t.Error("inline CoreJob should carry resolved refs")
	}
	if rj, err := reg.CoreJob(); err != nil || rj.ImplRef != nil {
		t.Errorf("registry CoreJob should not carry refs: %v %v", rj.ImplRef, err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := Check{Program: Program{Name: "msn"}, Test: "T0", Model: "relaxed"}
	b := a
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical descriptions should share a fingerprint")
	}
	// Defaults normalize: empty model == "relaxed".
	c := a
	c.Model = ""
	if c.Fingerprint() != a.Fingerprint() {
		t.Error("default model should fingerprint like its explicit form")
	}
	d := a
	d.Model = "tso"
	if d.Fingerprint() == a.Fingerprint() {
		t.Error("model change should change the fingerprint")
	}
	e := a
	e.Cube = 4
	if e.Fingerprint() == a.Fingerprint() {
		t.Error("strategy change should change the fingerprint")
	}
}

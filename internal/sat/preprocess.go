package sat

// This file implements SatELite-style CNF preprocessing (Eén &
// Biere, "Effective Preprocessing in SAT through Variable and Clause
// Elimination", SAT 2005): backward subsumption, self-subsuming
// resolution, and bounded variable elimination over the root-level
// clause database.
//
// Preprocess is designed to run once, after the formula is loaded and
// before the first Solve, and to stay compatible with CheckFence's
// incremental use of the solver afterwards. The contract is:
//
//   - Callers Freeze every variable that later clauses, assumptions,
//     or model reads may mention (error literal, observation bits,
//     memory-order variables). Frozen variables are never eliminated.
//   - Clauses added after Preprocess (the mining loop's blocking
//     clauses, the inclusion check's exclusion clauses) may therefore
//     only mention live variables; AddClause panics otherwise, which
//     turns a contract violation into a loud failure instead of a
//     silent unsoundness.
//   - Model values of eliminated variables are reconstructed by
//     extendModel after every Sat result (replaying the elimination
//     stack in reverse), so Value works uniformly.

import (
	"sort"
	"time"
)

// Elimination bounds: a variable is only eliminated when each
// polarity occurs in at most bveOccLimit clauses, every resolvent has
// at most bveLenLimit literals, and the number of non-tautological
// resolvents does not exceed the number of clauses removed (the
// SatELite "no growth" rule).
const (
	bveOccLimit = 12
	bveLenLimit = 16
	bveRounds   = 3
)

// Preprocess simplifies the root-level clause database in place.
// It returns false when simplification derives unsatisfiability
// (subsequent Solve calls return Unsat). Learned clauses are dropped:
// preprocessing is meant to run before search.
func (s *Solver) Preprocess() bool {
	if !s.ok {
		return false
	}
	start := time.Now()
	defer func() { s.preStats.preprocessTime += time.Since(start) }()
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.ok = false
		return false
	}

	s.preStats.preVars = len(s.assigns)
	s.preStats.preClauses = len(s.clauses)

	for _, c := range s.learnts {
		s.detach(c)
	}
	s.learnts = s.learnts[:0]

	p := newPrep(s)
	if !p.conflict && p.applyUnits() && p.subsumePass() {
		// Round 0 tries every variable; later rounds only revisit
		// variables whose occurrence lists shrank (clause killed or
		// strengthened), where new elimination chances can appear.
		vars := make([]int, 0, len(s.assigns))
		for v := range s.assigns {
			vars = append(vars, v)
		}
		for round := 0; round < bveRounds; round++ {
			changed := p.bvePass(vars)
			if !p.applyUnits() || !p.subsumePass() {
				break
			}
			vars = p.takeTouched()
			if !changed || len(vars) == 0 {
				break
			}
		}
	}
	if p.conflict {
		s.ok = false
		return false
	}
	p.rebuild()
	return true
}

// prep is the preprocessing working set: clause literal slices
// (sorted; nil = removed), variable-set signatures for the subsumption
// filter, and per-literal occurrence lists (lazily filtered, so they
// may contain stale entries).
type prep struct {
	s        *Solver
	cls      [][]Lit
	sig      []uint64
	occ      [][]int
	units    []Lit
	conflict bool

	// dirty queues clause indices pending (re-)subsumption: every new
	// clause plus every strengthened one.
	dirty []int
	// touchMark/touchList collect variables whose occurrence lists
	// shrank, i.e. fresh bounded-variable-elimination candidates.
	touchMark []bool
	touchList []int
	// stale[l] is set when strengthen removed l from some clause,
	// leaving a stale entry in occ[l]; liveOcc only pays for the
	// per-entry membership re-check on such lists.
	stale []bool
}

func newPrep(s *Solver) *prep {
	p := &prep{
		s:         s,
		cls:       make([][]Lit, 0, len(s.clauses)),
		sig:       make([]uint64, 0, len(s.clauses)),
		dirty:     make([]int, 0, len(s.clauses)),
		occ:       make([][]int, 2*len(s.assigns)),
		touchMark: make([]bool, len(s.assigns)),
		stale:     make([]bool, 2*len(s.assigns)),
	}
	// One arena for every clause's literals and one for the
	// occurrence lists: on large formulas the per-clause and per-list
	// allocations dominate otherwise.
	total := 0
	counts := make([]int, 2*len(s.assigns))
	for _, c := range s.clauses {
		satisfied := false
		for _, l := range c.lits {
			if s.value(l) == lTrue {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		for _, l := range c.lits {
			if s.value(l) == lUndef {
				total++
				counts[l]++
			}
		}
	}
	occArena := make([]int, total)
	off := 0
	for l, n := range counts {
		p.occ[l] = occArena[off : off : off+n]
		off += n
	}
	arena := make([]Lit, 0, total)
	for _, c := range s.clauses {
		satisfied := false
		for _, l := range c.lits {
			if s.value(l) == lTrue {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		start := len(arena)
		for _, l := range c.lits {
			if s.value(l) == lUndef {
				arena = append(arena, l)
			}
		}
		p.addClause(arena[start:len(arena):len(arena)])
	}
	return p
}

func sortLits(lits []Lit) {
	// Insertion sort: clauses are short and often nearly sorted
	// (AddClause sorts, watch swaps only disturb the first two slots).
	for i := 1; i < len(lits); i++ {
		l := lits[i]
		j := i - 1
		for j >= 0 && lits[j] > l {
			lits[j+1] = lits[j]
			j--
		}
		lits[j+1] = l
	}
}

func signature(lits []Lit) uint64 {
	var sig uint64
	for _, l := range lits {
		sig |= 1 << uint(l.Var()&63)
	}
	return sig
}

// addClause inserts a simplified clause into the working set,
// routing empty clauses to the conflict flag and units to the pending
// queue.
func (p *prep) addClause(lits []Lit) {
	switch len(lits) {
	case 0:
		p.conflict = true
		return
	case 1:
		p.units = append(p.units, lits[0])
		return
	}
	sortLits(lits)
	i := len(p.cls)
	p.cls = append(p.cls, lits)
	p.sig = append(p.sig, signature(lits))
	for _, l := range lits {
		p.occ[l] = append(p.occ[l], i)
	}
	p.dirty = append(p.dirty, i)
}

// kill removes clause i and records its variables as elimination
// candidates (their occurrence counts just dropped).
func (p *prep) kill(i int) {
	for _, l := range p.cls[i] {
		p.touch(l.Var())
	}
	p.cls[i] = nil
}

func (p *prep) touch(v int) {
	if !p.touchMark[v] {
		p.touchMark[v] = true
		p.touchList = append(p.touchList, v)
	}
}

func (p *prep) takeTouched() []int {
	out := p.touchList
	p.touchList = nil
	for _, v := range out {
		p.touchMark[v] = false
	}
	return out
}

func containsLit(lits []Lit, l Lit) bool {
	for _, x := range lits {
		if x == l {
			return true
		}
	}
	return false
}

// liveOcc filters occ[l] down to clauses that are alive and still
// contain l, compacting the list in place. The membership re-check is
// only needed after a strengthen left stale entries for l.
func (p *prep) liveOcc(l Lit) []int {
	occ := p.occ[l]
	out := occ[:0]
	if p.stale[l] {
		for _, i := range occ {
			if p.cls[i] != nil && containsLit(p.cls[i], l) {
				out = append(out, i)
			}
		}
		p.stale[l] = false
	} else {
		for _, i := range occ {
			if p.cls[i] != nil {
				out = append(out, i)
			}
		}
	}
	p.occ[l] = out
	return out
}

// applyUnits drains the pending unit queue: enqueue each unit on the
// solver trail at the root level and simplify the working set against
// it (satisfied clauses die, falsified literals are removed). Returns
// false on conflict.
func (p *prep) applyUnits() bool {
	s := p.s
	for len(p.units) > 0 {
		u := p.units[len(p.units)-1]
		p.units = p.units[:len(p.units)-1]
		switch s.value(u) {
		case lTrue:
			continue
		case lFalse:
			p.conflict = true
			return false
		}
		s.uncheckedEnqueue(u, nil)
		for _, i := range p.liveOcc(u) {
			p.kill(i)
		}
		for _, i := range p.liveOcc(u.Not()) {
			p.strengthen(i, u.Not())
			if p.conflict {
				return false
			}
		}
	}
	return true
}

// strengthen removes literal l from clause i (self-subsuming
// resolution or unit simplification), demoting it to the unit queue
// or conflict flag when it shrinks below two literals.
func (p *prep) strengthen(i int, l Lit) {
	lits := p.cls[i]
	out := lits[:0]
	for _, x := range lits {
		if x != l {
			out = append(out, x)
		}
	}
	p.touch(l.Var())
	p.stale[l] = true
	switch len(out) {
	case 0:
		p.conflict = true
	case 1:
		p.units = append(p.units, out[0])
		p.touch(out[0].Var())
		p.cls[i] = nil
	default:
		p.cls[i] = out
		p.sig[i] = signature(out)
		p.dirty = append(p.dirty, i)
	}
}

// subsumeCheck tests whether clause c subsumes d modulo at most one
// flipped literal. It returns (-1, true) for plain subsumption
// (c ⊆ d), (l, true) when exactly one literal of c occurs flipped in
// d as l — resolving c and d on it yields d \ {l}, so d may be
// strengthened by removing l — and (0, false) otherwise. Both clauses
// must be sorted.
func subsumeCheck(c, d []Lit) (Lit, bool) {
	var flipped Lit = -1
	j := 0
	for _, l := range c {
		v := l.Var()
		for j < len(d) && d[j].Var() < v {
			j++
		}
		if j == len(d) || d[j].Var() != v {
			return 0, false
		}
		if d[j] != l {
			if flipped >= 0 {
				return 0, false
			}
			flipped = d[j]
		}
		j++
	}
	return flipped, true
}

// subsumePass performs backward subsumption and self-subsuming
// resolution over the dirty queue (new and strengthened clauses) to a
// fixpoint. Returns false on conflict.
func (p *prep) subsumePass() bool {
	for len(p.dirty) > 0 {
		i := p.dirty[len(p.dirty)-1]
		p.dirty = p.dirty[:len(p.dirty)-1]
		c := p.cls[i]
		if c == nil {
			continue
		}
		// Candidates must contain some literal of c (possibly flipped
		// on one position), so every candidate appears in occ[l] or
		// occ[l.Not()] for any single l in c (a flip elsewhere leaves
		// l itself in the candidate). Pick the l minimizing the
		// combined scan.
		best := c[0]
		bestCost := len(p.occ[best]) + len(p.occ[best.Not()])
		for _, l := range c[1:] {
			if cost := len(p.occ[l]) + len(p.occ[l.Not()]); cost < bestCost {
				best, bestCost = l, cost
			}
		}
		for pass := 0; pass < 2; pass++ {
			lit := best
			if pass == 1 {
				lit = best.Not()
			}
			for _, j := range p.liveOcc(lit) {
				d := p.cls[j]
				if j == i || d == nil || len(d) < len(c) || p.sig[i]&^p.sig[j] != 0 {
					continue
				}
				rem, ok := subsumeCheck(c, d)
				if !ok {
					continue
				}
				if rem < 0 {
					p.kill(j)
					p.s.preStats.clausesSubsumed++
					continue
				}
				// strengthen re-queues j itself (it may subsume others
				// now) and records the removed variable as touched.
				p.strengthen(j, rem)
				p.s.preStats.clausesStrengthened++
				if p.conflict {
					return false
				}
			}
		}
		if len(p.units) > 0 && !p.applyUnits() {
			return false
		}
	}
	return true
}

// resolve returns the resolvent of a and b on variable v, reporting
// whether it is a tautology. Both inputs are sorted and the result is
// sorted.
func resolve(a, b []Lit, v int) ([]Lit, bool) {
	out := make([]Lit, 0, len(a)+len(b)-2)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var l Lit
		switch {
		case i == len(a):
			l = b[j]
			j++
		case j == len(b):
			l = a[i]
			i++
		case a[i] <= b[j]:
			l = a[i]
			if a[i] == b[j] {
				j++
			}
			i++
		default:
			l = b[j]
			j++
		}
		if l.Var() == v {
			continue
		}
		if n := len(out); n > 0 && out[n-1] == l.Not() {
			return nil, true
		}
		if n := len(out); n > 0 && out[n-1] == l {
			continue
		}
		out = append(out, l)
	}
	return out, false
}

// bvePass attempts bounded variable elimination on the given
// candidate variables, cheapest (fewest occurrences) first. Returns
// whether any variable was eliminated.
func (p *prep) bvePass(vars []int) bool {
	s := p.s
	type cand struct{ v, n int }
	cands := make([]cand, 0, len(vars))
	for _, v := range vars {
		if s.frozen[v] || s.eliminated[v] || s.assigns[v] != lUndef {
			continue
		}
		// Raw occurrence-list lengths over-approximate the live counts;
		// they only order the pass, and the hard limits are re-checked
		// against compacted lists below.
		n := len(p.occ[Pos(v)]) + len(p.occ[Neg(v)])
		if n > 4*bveOccLimit {
			continue
		}
		cands = append(cands, cand{v, n})
	}
	// Cheapest-first with the variable index as tie-breaker keeps the
	// pass deterministic.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n < cands[j].n
		}
		return cands[i].v < cands[j].v
	})

	changed := false
	for _, c := range cands {
		v := c.v
		if s.assigns[v] != lUndef {
			continue // assigned by a unit derived since the scan
		}
		pos := p.liveOcc(Pos(v))
		neg := p.liveOcc(Neg(v))
		if len(pos) > bveOccLimit || len(neg) > bveOccLimit {
			continue
		}
		limit := len(pos) + len(neg)
		resolvents := make([][]Lit, 0, limit)
		ok := true
		for _, i := range pos {
			for _, j := range neg {
				r, taut := resolve(p.cls[i], p.cls[j], v)
				if taut {
					continue
				}
				if len(r) > bveLenLimit || len(resolvents) == limit {
					ok = false
					break
				}
				resolvents = append(resolvents, r)
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}

		entry := elimEntry{v: v}
		for _, list := range [2][]int{pos, neg} {
			for _, i := range list {
				saved := make([]Lit, len(p.cls[i]))
				copy(saved, p.cls[i])
				entry.clauses = append(entry.clauses, saved)
				p.kill(i)
			}
		}
		s.elimStack = append(s.elimStack, entry)
		s.eliminated[v] = true
		s.preStats.varsEliminated++
		for _, r := range resolvents {
			p.addClause(r)
		}
		if len(p.units) > 0 && !p.applyUnits() {
			return changed
		}
		changed = true
	}
	return changed
}

// rebuild replaces the solver's clause database and watcher lists
// with the surviving working set.
func (p *prep) rebuild() {
	s := p.s
	for i := range s.watches {
		s.watches[i] = nil
	}
	clauses := make([]*clause, 0, len(p.cls))
	for _, lits := range p.cls {
		if lits == nil {
			continue
		}
		c := &clause{lits: lits}
		clauses = append(clauses, c)
		s.attach(c)
	}
	s.clauses = clauses
	s.stats.Clauses = len(clauses)
	// Units derived during preprocessing were applied to the working
	// set structurally, so their propagation over the new database is
	// already reflected; skip re-propagating them.
	s.qhead = len(s.trail)
}

// extendModel reconstructs model values for eliminated variables by
// replaying the elimination stack in reverse: each variable defaults
// to false and is flipped to true exactly when one of its saved
// clauses with a positive occurrence is otherwise unsatisfied. The
// saved clauses of a variable only mention variables eliminated later
// (already reconstructed) or never (assigned by search), so the walk
// is well-founded.
func (s *Solver) extendModel() {
	for i := len(s.elimStack) - 1; i >= 0; i-- {
		e := s.elimStack[i]
		s.extVals[e.v] = lFalse
		pl := Pos(e.v)
		for _, cl := range e.clauses {
			if !containsLit(cl, pl) {
				continue // satisfied by v = false
			}
			satisfied := false
			for _, l := range cl {
				if l.Var() != e.v && s.ValueLit(l) {
					satisfied = true
					break
				}
			}
			if !satisfied {
				s.extVals[e.v] = lTrue
				break
			}
		}
	}
}

package sat

import (
	"math/rand"
	"testing"
)

// addLearnt installs a learnt clause directly in the database, the way
// record would, so the inprocessing primitives can be unit-tested
// without driving a full search to manufacture the exact clause.
func addLearnt(s *Solver, tier int8, act float64, used bool, lits ...Lit) *clause {
	c := &clause{lits: lits, learnt: true, lbd: len(lits), activity: act, tier: tier, used: used}
	s.learnts = append(s.learnts, c)
	s.learntLits += int64(len(lits))
	s.attach(c)
	return c
}

func TestTierFor(t *testing.T) {
	s := New()
	for _, tc := range []struct {
		lbd  int
		want int8
	}{{1, tierCore}, {3, tierCore}, {4, tierMid}, {6, tierMid}, {7, tierLocal}, {30, tierLocal}} {
		if got := s.tierFor(tc.lbd); got != tc.want {
			t.Errorf("tierFor(%d) = %d, want %d", tc.lbd, got, tc.want)
		}
	}
}

// TestVivifyClauseShrinks: with the implication chain a -> b -> c, the
// learnt clause (¬a ∨ c ∨ d) vivifies to (¬a ∨ c) — asserting ¬(¬a)
// propagates c true, so d is redundant.
func TestVivifyClauseShrinks(t *testing.T) {
	s := New()
	a, b, c, d := s.NewVar(), s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(Neg(a), Pos(b))
	s.AddClause(Neg(b), Pos(c))
	_ = d
	cl := addLearnt(s, tierMid, 1, false, Neg(a), Pos(c), Pos(d))

	if !s.vivifyClause(cl) {
		t.Fatal("vivifyClause reported unsat on a satisfiable formula")
	}
	if cl.deleted {
		t.Fatal("clause deleted; want shrunk in place")
	}
	if len(cl.lits) != 2 {
		t.Fatalf("vivified clause has %d lits, want 2: %v", len(cl.lits), cl.lits)
	}
	if s.stats.VivifiedClauses != 1 || s.stats.VivifiedLits != 1 {
		t.Fatalf("stats = %d clauses / %d lits vivified, want 1/1",
			s.stats.VivifiedClauses, s.stats.VivifiedLits)
	}
	if s.decisionLevel() != 0 || len(s.trail) != 0 {
		t.Fatalf("vivification leaked trail state: level %d, trail %d", s.decisionLevel(), len(s.trail))
	}
	// The shrunk clause must still be watched: a alone now forces c.
	if st := s.Solve(Pos(a), Neg(d)); st != Sat {
		t.Fatalf("solve after vivify = %v, want Sat", st)
	}
	if !s.Value(c) {
		t.Fatal("vivified clause no longer propagates c under a")
	}
}

// TestSubsumeAntecedents: a learnt antecedent strictly containing the
// freshly learnt clause is deleted on the fly.
func TestSubsumeAntecedents(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	wide := addLearnt(s, tierLocal, 1, false, Pos(a), Pos(b), Pos(c))
	other := addLearnt(s, tierLocal, 1, false, Pos(a), Neg(b), Pos(c))
	s.ante = append(s.ante[:0], wide, other)

	s.subsumeAntecedents([]Lit{Pos(a), Pos(b)})
	if !wide.deleted {
		t.Fatal("superset antecedent not subsumed")
	}
	if other.deleted {
		t.Fatal("non-superset antecedent wrongly deleted")
	}
	if s.stats.SubsumedLearnts != 1 {
		t.Fatalf("SubsumedLearnts = %d, want 1", s.stats.SubsumedLearnts)
	}
}

// TestReduceDBTiered: core clauses are kept unconditionally, mid
// clauses survive only if used since the last reduction (and the mark
// is consumed), and the local tier is halved by activity.
func TestReduceDBTiered(t *testing.T) {
	s := New()
	v := make([]int, 12)
	for i := range v {
		v[i] = s.NewVar()
	}
	core := addLearnt(s, tierCore, 0, false, Pos(v[0]), Pos(v[1]))
	midUsed := addLearnt(s, tierMid, 0, true, Pos(v[2]), Pos(v[3]))
	midIdle := addLearnt(s, tierMid, 5, false, Pos(v[4]), Pos(v[5]))
	localHot := addLearnt(s, tierLocal, 10, false, Pos(v[6]), Pos(v[7]))
	localCold := addLearnt(s, tierLocal, 1, false, Pos(v[8]), Pos(v[9]))
	gone := addLearnt(s, tierLocal, 99, false, Pos(v[10]), Pos(v[11]))
	s.removeLearnt(gone) // already logically deleted: must be purged

	s.reduceDBTiered()

	if core.deleted || midUsed.deleted {
		t.Fatal("core or used-mid clause dropped by tiered reduction")
	}
	if midUsed.used {
		t.Fatal("mid-tier usage mark not consumed by the reduction")
	}
	if midIdle.tier != tierLocal && !midIdle.deleted {
		t.Fatalf("idle mid clause neither demoted nor dropped (tier %d)", midIdle.tier)
	}
	// The local pool was {demoted midIdle(5), localHot(10), localCold(1)}:
	// halving by activity keeps the hottest and drops the coldest.
	if localHot.deleted {
		t.Fatal("highest-activity local clause dropped")
	}
	if !localCold.deleted {
		t.Fatal("lowest-activity local clause kept over hotter ones")
	}
	for _, c := range s.learnts {
		if c.deleted {
			t.Fatal("deleted clause not purged from the learnt list")
		}
	}
}

// TestInprocessAgreesWithBaseline solves the same random instances
// with inprocessing forced on (aggressive cadence so vivification,
// subsumption, and chronological backtracking all fire) and fully off,
// and demands identical verdicts, valid models, and agreement with
// brute force on the small instances.
func TestInprocessAgreesWithBaseline(t *testing.T) {
	fired := Stats{}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		numVars := 12 + rng.Intn(6)
		numClauses := int(float64(numVars)*4.3) + rng.Intn(10)
		var clauses [][]Lit
		for i := 0; i < numClauses; i++ {
			c := make([]Lit, 3)
			for j := range c {
				c[j] = MkLit(rng.Intn(numVars), rng.Intn(2) == 0)
			}
			clauses = append(clauses, c)
		}
		build := func(inprocess bool) *Solver {
			s := New()
			s.SetInprocess(inprocess)
			if inprocess {
				s.inpro.vivifyInterval = 1
				s.inpro.chrono = 1
			}
			for v := 0; v < numVars; v++ {
				s.NewVar()
			}
			for _, c := range clauses {
				s.AddClause(c...)
			}
			return s
		}
		on, off := build(true), build(false)
		stOn, stOff := on.Solve(), off.Solve()
		if stOn != stOff {
			t.Fatalf("seed %d: inprocess=%v, baseline=%v", seed, stOn, stOff)
		}
		want := bruteForce(numVars, clauses)
		if (stOn == Sat) != want {
			t.Fatalf("seed %d: verdict %v disagrees with brute force (sat=%v)", seed, stOn, want)
		}
		if stOn == Sat {
			modelSatisfies(t, on, clauses)
			modelSatisfies(t, off, clauses)
		}
		st := on.Stats()
		fired.VivifiedClauses += st.VivifiedClauses
		fired.SubsumedLearnts += st.SubsumedLearnts
		fired.ChronoBacktracks += st.ChronoBacktracks
		if ost := off.Stats(); ost.VivifiedClauses+ost.SubsumedLearnts+ost.ChronoBacktracks != 0 {
			t.Fatalf("seed %d: inprocessing counters nonzero with SetInprocess(false)", seed)
		}
	}
	// The cadence above is aggressive enough that the machinery must
	// actually run somewhere across 25 seeds — otherwise the agreement
	// checks are vacuous.
	if fired.VivifiedClauses+fired.SubsumedLearnts+fired.ChronoBacktracks == 0 {
		t.Fatal("no inprocessing technique ever fired across all seeds")
	}
}

// TestInprocessLargerPlanted runs the default cadence on instances big
// enough to restart and reduce, as an integration check that tier
// bookkeeping and logical deletion never corrupt the database.
func TestInprocessLargerPlanted(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		s := New()
		s.inpro.vivifyInterval = 50
		s.inpro.vivifyProps = 10000
		clauses := plantedInstance(s, 80, 340, seed)
		if st := s.Solve(); st != Sat {
			t.Fatalf("seed %d: planted instance = %v, want Sat", seed, st)
		}
		modelSatisfies(t, s, clauses)
		st := s.Stats()
		if st.TierCore+st.TierMid+st.TierLocal != st.Learnts {
			t.Fatalf("seed %d: tier sizes %d+%d+%d != learnts %d",
				seed, st.TierCore, st.TierMid, st.TierLocal, st.Learnts)
		}
	}
}

package sat

import (
	"math/rand"
	"testing"
)

// plantedInstance adds a random 3-SAT instance with a planted
// solution, returning the clauses (for model validation).
func plantedInstance(s *Solver, numVars, numClauses int, seed int64) [][]Lit {
	rng := rand.New(rand.NewSource(seed))
	assignment := make([]bool, numVars)
	for v := range assignment {
		assignment[v] = rng.Intn(2) == 0
	}
	var clauses [][]Lit
	for v := 0; v < numVars; v++ {
		s.NewVar()
	}
	for i := 0; i < numClauses; i++ {
		c := make([]Lit, 3)
		for j := range c {
			v := rng.Intn(numVars)
			c[j] = MkLit(v, rng.Intn(2) == 0)
		}
		v := c[0].Var()
		c[0] = MkLit(v, !assignment[v]) // true under the planted solution
		clauses = append(clauses, c)
		s.AddClause(c...)
	}
	return clauses
}

func modelSatisfies(t *testing.T, s *Solver, clauses [][]Lit) {
	t.Helper()
	for ci, c := range clauses {
		ok := false
		for _, l := range c {
			if s.ValueLit(l) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("model does not satisfy clause %d", ci)
		}
	}
}

// TestCloneFormulaIndependent: solving and mutating a clone never
// affects the original, and vice versa.
func TestCloneFormulaIndependent(t *testing.T) {
	s := New()
	clauses := plantedInstance(s, 30, 120, 3)
	before := s.Stats().Clauses // AddClause may drop tautologies
	c := s.CloneFormula()

	if st := c.Solve(); st != Sat {
		t.Fatalf("clone verdict = %v, want Sat", st)
	}
	modelSatisfies(t, c, clauses)

	// Constrain the clone down to Unsat; the original must be unmoved.
	v := 0
	c.AddClause(Pos(v))
	c.AddClause(Neg(v))
	if st := c.Solve(); st != Unsat {
		t.Fatalf("contradictory clone = %v, want Unsat", st)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("original after clone mutation = %v, want Sat", st)
	}
	modelSatisfies(t, s, clauses)
	if s.Stats().Clauses != before {
		t.Fatalf("original clause count changed: %d != %d", s.Stats().Clauses, before)
	}
}

// TestCloneFormulaRootUnits: root-level units present at clone time
// carry over, and clauses satisfied at the root are simplified away.
func TestCloneFormulaRootUnits(t *testing.T) {
	s := New()
	a, b, x := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(Pos(a))         // root unit
	s.AddClause(Pos(a), Pos(x)) // satisfied at root: dropped in clone
	s.AddClause(Neg(a), Pos(b)) // propagates b at root
	s.AddClause(Neg(b), Neg(x)) // after root propagation: unit ¬x
	c := s.CloneFormula()
	if st := c.Solve(); st != Sat {
		t.Fatalf("clone verdict = %v, want Sat", st)
	}
	if !c.Value(a) || !c.Value(b) || c.Value(x) {
		t.Fatalf("clone model a=%v b=%v x=%v, want true,true,false",
			c.Value(a), c.Value(b), c.Value(x))
	}
}

// TestCloneFormulaAfterPreprocess: a clone of a preprocessed solver
// keeps the frozen/eliminated contract — it solves correctly,
// reconstructs eliminated-variable values through the shared
// elimination stack, and panics on clauses over eliminated variables
// exactly like the original.
func TestCloneFormulaAfterPreprocess(t *testing.T) {
	s := New()
	const n = 8
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// Equivalence chain v0 <-> v1 <-> ... <-> v7; middle variables are
	// elimination candidates.
	for i := 0; i+1 < n; i++ {
		s.AddClause(Neg(vars[i]), Pos(vars[i+1]))
		s.AddClause(Pos(vars[i]), Neg(vars[i+1]))
	}
	s.Freeze(vars[0])
	s.Freeze(vars[n-1])
	s.Preprocess()
	elim := -1
	for _, v := range vars[1 : n-1] {
		if s.Eliminated(v) {
			elim = v
			break
		}
	}
	if elim < 0 {
		t.Fatal("preprocessing eliminated no chain variable; test premise broken")
	}

	c := s.CloneFormula()
	if !c.Eliminated(elim) {
		t.Fatal("clone lost the eliminated state")
	}
	if st := c.Solve(Pos(vars[0])); st != Sat {
		t.Fatalf("clone under assumption = %v, want Sat", st)
	}
	if !c.Value(vars[n-1]) {
		t.Fatal("equivalence chain end must follow the assumed head")
	}
	if !c.Value(elim) {
		t.Fatal("eliminated variable not reconstructed to the chain value")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddClause over an eliminated variable must panic on the clone")
		}
	}()
	c.AddClause(Pos(elim))
}

// TestAdoptModelFrom: a clone's model becomes readable through the
// original via the overlay, and the next Solve discards it.
func TestAdoptModelFrom(t *testing.T) {
	s := New()
	clauses := plantedInstance(s, 25, 100, 11)
	c := s.CloneFormula()
	if st := c.Solve(); st != Sat {
		t.Fatalf("clone verdict = %v, want Sat", st)
	}
	s.AdoptModelFrom(c)
	modelSatisfies(t, s, clauses) // reads the adopted model
	for v := 0; v < s.NumVars(); v++ {
		if s.Value(v) != c.Value(v) {
			t.Fatalf("adopted value of %d differs", v)
		}
	}
	// The overlay must not leak into the next solve.
	if st := s.Solve(); st != Sat {
		t.Fatalf("original verdict = %v, want Sat", st)
	}
	modelSatisfies(t, s, clauses) // now the solver's own model
}

// TestCloneFormulaAfterInprocess: a clone taken after vivification and
// a tiered reduction solves to the same verdict as the original —
// logically deleted clauses must not leak into the clone, and shrunk
// clauses must carry over in their shrunk form.
func TestCloneFormulaAfterInprocess(t *testing.T) {
	s := New()
	s.inpro.vivifyInterval = 10
	clauses := plantedInstance(s, 60, 250, 7)
	if st := s.Solve(); st != Sat {
		t.Fatalf("original verdict = %v, want Sat", st)
	}
	// Force the full inprocessing cycle at the root so the clone is
	// taken from a database that has definitely been vivified, demoted,
	// and purged.
	s.cancelUntil(0)
	if !s.vivify() {
		t.Fatal("vivify reported unsat on a satisfiable formula")
	}
	s.reduceDBTiered()

	c := s.CloneFormula()
	for _, cl := range c.learnts {
		if cl.deleted {
			t.Fatal("clone copied a logically deleted learnt clause")
		}
	}
	if st := c.Solve(); st != Sat {
		t.Fatalf("clone verdict = %v, want Sat", st)
	}
	modelSatisfies(t, c, clauses)
	if st := s.Solve(); st != Sat {
		t.Fatalf("original re-solve = %v, want Sat", st)
	}
	modelSatisfies(t, s, clauses)
}

// TestCloneFormulaCarriesConfig: the solver configuration knobs —
// restart policy, randomized branching activities, and the
// inprocessing switch — carry over to CloneFormula snapshots, so a
// portfolio member's diversification survives cloning.
func TestCloneFormulaCarriesConfig(t *testing.T) {
	s := New()
	plantedInstance(s, 20, 60, 5)
	s.SetRestartPolicy(RestartLuby)
	s.RandomizeActivity(42)
	s.SetInprocess(false)

	c := s.CloneFormula()
	if c.restartPolicy != RestartLuby {
		t.Fatalf("clone restart policy = %v, want RestartLuby", c.restartPolicy)
	}
	if c.InprocessEnabled() {
		t.Fatal("clone re-enabled inprocessing disabled on the original")
	}
	for v := range s.order.activity {
		if c.order.activity[v] != s.order.activity[v] {
			t.Fatalf("clone activity of var %d = %g, want %g",
				v, c.order.activity[v], s.order.activity[v])
		}
	}
	if st := c.Solve(); st != Sat {
		t.Fatalf("configured clone verdict = %v, want Sat", st)
	}
}

package sat

import (
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestPortfolioConfigsDiversified(t *testing.T) {
	configs := PortfolioConfigs(4)
	if len(configs) != 4 {
		t.Fatalf("got %d configs, want 4", len(configs))
	}
	if configs[0] != (Config{}) {
		t.Errorf("config 0 must be the default, got %+v", configs[0])
	}
	seen := map[Config]bool{}
	for _, c := range configs {
		if seen[c] {
			t.Errorf("duplicate config %+v", c)
		}
		seen[c] = true
	}
}

func TestPortfolioUnsat(t *testing.T) {
	p := Portfolio{Configs: PortfolioConfigs(3)}
	st, winner, err := p.Solve(func(Config) (*Solver, error) {
		s := New()
		pigeonholeInstance(s, 7)
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Fatalf("portfolio verdict = %v, want Unsat", st)
	}
	if winner == nil {
		t.Fatal("no winning solver returned")
	}
}

func TestPortfolioSatModel(t *testing.T) {
	// A satisfiable random instance; every configuration must agree,
	// and the winner's model must satisfy all clauses.
	rng := rand.New(rand.NewSource(7))
	const numVars = 40
	var clauses [][]Lit
	assignment := make([]bool, numVars) // planted solution
	for v := range assignment {
		assignment[v] = rng.Intn(2) == 0
	}
	for i := 0; i < 160; i++ {
		c := make([]Lit, 3)
		for j := range c {
			v := rng.Intn(numVars)
			c[j] = MkLit(v, rng.Intn(2) == 0)
		}
		// Force at least one literal true under the planted solution.
		v := c[0].Var()
		c[0] = MkLit(v, !assignment[v])
		clauses = append(clauses, c)
	}
	p := Portfolio{}
	st, winner, err := p.Solve(func(Config) (*Solver, error) {
		s := New()
		for v := 0; v < numVars; v++ {
			s.NewVar()
		}
		for _, c := range clauses {
			s.AddClause(c...)
		}
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st != Sat {
		t.Fatalf("portfolio verdict = %v, want Sat", st)
	}
	for ci, c := range clauses {
		ok := false
		for _, l := range c {
			if winner.ValueLit(l) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("winner model does not satisfy clause %d", ci)
		}
	}
}

// TestRaceCancelsLosers races one trivially fast member against
// members stuck on a hard instance; the fast verdict must interrupt
// the others (otherwise this test takes minutes instead of
// milliseconds).
func TestRaceCancelsLosers(t *testing.T) {
	configs := PortfolioConfigs(3)
	statuses := make([]Status, len(configs))
	winner := Race(configs, func(i int, cfg Config) (*Solver, func() bool) {
		s := New()
		if i == 0 {
			v := s.NewVar()
			s.AddClause(Pos(v))
		} else {
			pigeonholeInstance(s, 10)
		}
		cfg.Apply(s)
		return s, func() bool {
			statuses[i] = s.Solve()
			return statuses[i] != Unknown
		}
	})
	if winner != 0 {
		// Losing to a PHP(10) member is theoretically possible but
		// indicates cancellation is broken in practice.
		t.Fatalf("winner = %d, want 0", winner)
	}
	if statuses[0] != Sat {
		t.Fatalf("winner status = %v, want Sat", statuses[0])
	}
}

// TestPortfolioJoinsBuildErrors: when every member fails to build,
// Solve surfaces all distinct failures, not just the first.
func TestPortfolioJoinsBuildErrors(t *testing.T) {
	errA := errors.New("member A exploded")
	errB := errors.New("member B exploded")
	var n atomic.Int64
	p := Portfolio{Configs: PortfolioConfigs(2)}
	st, winner, err := p.Solve(func(Config) (*Solver, error) {
		if n.Add(1) == 1 {
			return nil, errA
		}
		return nil, errB
	})
	if st != Unknown || winner != nil {
		t.Fatalf("got (%v, %v), want (Unknown, nil)", st, winner)
	}
	if err == nil {
		t.Fatal("all builds failed but Solve returned no error")
	}
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error %q lost a member failure", err)
	}
}

// TestRaceLateLoserInterrupted: a member whose build completes only
// after the race is already decided must be interrupted before it does
// any search work — no decisions, no propagations, and no polls of its
// stop predicate.
func TestRaceLateLoserInterrupted(t *testing.T) {
	configs := PortfolioConfigs(3)
	statuses := make([]Status, len(configs))
	var lateSolver *Solver
	var stopPolls atomic.Int64
	// Member 2 registers a hard instance immediately; the winner's
	// decision interrupts it, which is the signal member 1 blocks on —
	// so member 1 provably registers after the race is decided.
	s2ready := make(chan *Solver, 1)
	winner := Race(configs, func(i int, cfg Config) (*Solver, func() bool) {
		s := New()
		switch i {
		case 0:
			v := s.NewVar()
			s.AddClause(Pos(v))
		case 1:
			s2 := <-s2ready
			for !s2.Interrupted() {
				runtime.Gosched()
			}
			pigeonholeInstance(s, 9)
			s.SetStop(func() bool { stopPolls.Add(1); return false })
			lateSolver = s
		case 2:
			pigeonholeInstance(s, 9)
			s2ready <- s
		}
		cfg.Apply(s)
		return s, func() bool {
			statuses[i] = s.Solve()
			return statuses[i] != Unknown
		}
	})
	if winner != 0 {
		t.Fatalf("winner = %d, want 0", winner)
	}
	if statuses[1] != Unknown {
		t.Fatalf("late member status = %v, want Unknown (interrupted)", statuses[1])
	}
	st := lateSolver.Stats()
	if st.Decisions != 0 || st.Propagations != 0 {
		t.Fatalf("late member searched before noticing the interrupt: %d decisions, %d propagations",
			st.Decisions, st.Propagations)
	}
	if polls := stopPolls.Load(); polls != 0 {
		t.Fatalf("late member polled its stop predicate %d times, want 0", polls)
	}
}

// TestRaceNoDefinitiveMember: all members interrupted before solving.
func TestRaceNoDefinitiveMember(t *testing.T) {
	configs := PortfolioConfigs(2)
	winner := Race(configs, func(i int, cfg Config) (*Solver, func() bool) {
		s := New()
		v := s.NewVar()
		s.AddClause(Pos(v))
		s.Interrupt()
		return s, func() bool { return s.Solve() != Unknown }
	})
	if winner != -1 {
		t.Fatalf("winner = %d, want -1", winner)
	}
}

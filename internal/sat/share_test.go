package sat

import "testing"

// TestSharePoolCursors: drains see each foreign clause exactly once,
// never their own exports, and a bounded buffer drops its oldest.
func TestSharePoolCursors(t *testing.T) {
	p := NewSharePool(2, 6, 4)
	for i := 0; i < 3; i++ {
		p.export(0, []Lit{Pos(i)}, 2)
	}
	p.export(1, []Lit{Neg(9)}, 2)

	var got [][]Lit
	collect := func(lits []Lit, lbd int) { got = append(got, lits) }
	p.drain(1, collect)
	if len(got) != 3 {
		t.Fatalf("member 1 drained %d clauses, want 3 (member 0's exports only)", len(got))
	}
	got = nil
	p.drain(1, collect)
	if len(got) != 0 {
		t.Fatalf("second drain re-delivered %d clauses, want 0", len(got))
	}

	// Overflow the ring: capacity 4, export 6 more; a fresh drain sees
	// only the newest 4.
	for i := 0; i < 6; i++ {
		p.export(0, []Lit{Pos(100 + i)}, 2)
	}
	got = nil
	p.drain(1, collect)
	if len(got) != 4 {
		t.Fatalf("drained %d clauses after overflow, want 4", len(got))
	}
	if got[0][0] != Pos(102) {
		t.Fatalf("oldest surviving clause = %v, want %v", got[0][0], Pos(102))
	}
}

// TestSolveSharedUnsat: a clause-sharing portfolio on a hard UNSAT
// instance agrees with the serial verdict and actually exchanges
// clauses (PHP forces plenty of restarts).
func TestSolveSharedUnsat(t *testing.T) {
	base := New()
	pigeonholeInstance(base, 7)
	p := Portfolio{Configs: PortfolioConfigs(4), ShareClauses: true}
	run := p.SolveShared(base)
	if run.Status != Unsat {
		t.Fatalf("verdict = %v, want Unsat", run.Status)
	}
	if run.Work.SharedExported == 0 {
		t.Error("no clauses exported; sharing is wired up wrong")
	}
	if run.Work.SharedImported == 0 {
		t.Error("no clauses imported; restart-boundary import never ran")
	}
}

// TestSolveSharedSat: the winner's model satisfies the formula, and
// adopting it makes the base solver report it.
func TestSolveSharedSat(t *testing.T) {
	base := New()
	clauses := plantedInstance(base, 40, 160, 21)
	p := Portfolio{Configs: PortfolioConfigs(3), ShareClauses: true}
	run := p.SolveShared(base)
	if run.Status != Sat {
		t.Fatalf("verdict = %v, want Sat", run.Status)
	}
	modelSatisfies(t, run.Winner, clauses)
	if run.Winner != base {
		base.AdoptModelFrom(run.Winner)
	}
	modelSatisfies(t, base, clauses)
}

// TestSolveSharedSingleMember degenerates to a plain solve on base.
func TestSolveSharedSingleMember(t *testing.T) {
	base := New()
	clauses := plantedInstance(base, 20, 80, 5)
	p := Portfolio{Configs: PortfolioConfigs(1)}
	run := p.SolveShared(base)
	if run.Status != Sat {
		t.Fatalf("verdict = %v, want Sat", run.Status)
	}
	if run.Winner != base {
		t.Fatal("single-member portfolio must solve base itself")
	}
	modelSatisfies(t, base, clauses)
}

// TestForcedImportCadence: a solve too short to trip a restart policy
// (glucose needs 100+ conflicts) must still drain the import hook on
// the forced cadence — a clause planted mid-solve gets imported. This
// regressed silently before: short portfolio solves exported clauses
// but imported none (entry-time and restart-boundary drains only).
func TestForcedImportCadence(t *testing.T) {
	s := New()
	pigeonholeInstance(s, 4)
	s.SetShareImportInterval(1)
	calls := 0
	planted := false
	s.SetShare(6, nil, func(add func(lits []Lit, lbd int)) {
		calls++
		if calls == 2 && !planted {
			planted = true
			// An already-true tautology-free clause over real variables:
			// imported, attached, and harmless to the verdict.
			add([]Lit{Pos(0), Neg(0+1), Pos(2)}, 2)
		}
	})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("verdict = %v, want Unsat", st)
	}
	stats := s.Stats()
	if stats.Conflicts < 2 || stats.Conflicts >= 100 {
		t.Fatalf("premise broken: %d conflicts (want 2..99 so no glucose restart fires)", stats.Conflicts)
	}
	if calls < 2 {
		t.Fatalf("import hook ran %d times; forced cadence never fired", calls)
	}
	if !planted || stats.SharedImported != 1 {
		t.Fatalf("planted clause not imported: planted=%v imported=%d", planted, stats.SharedImported)
	}
}

// TestImportSharedSound: a directly injected foreign clause is
// simplified against the root assignment and participates in
// propagation.
func TestImportSharedSound(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(Pos(a))                  // root unit
	s.AddClause(Neg(b), Pos(c))          // b -> c
	foreign := [][]Lit{{Neg(a), Pos(b)}} // simplifies to unit b at root
	s.SetShare(6, nil, func(add func(lits []Lit, lbd int)) {
		for _, f := range foreign {
			add(f, 2)
		}
		foreign = nil
	})
	if st := s.Solve(); st != Sat {
		t.Fatalf("verdict = %v, want Sat", st)
	}
	if !s.Value(b) || !s.Value(c) {
		t.Fatalf("imported unit did not propagate: b=%v c=%v", s.Value(b), s.Value(c))
	}
	if got := s.Stats().SharedImported; got != 1 {
		t.Fatalf("SharedImported = %d, want 1", got)
	}
}

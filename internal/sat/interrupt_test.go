package sat

import (
	"testing"
	"time"
)

func TestInterruptBeforeSolveIsSticky(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Pos(a), Pos(b))
	s.Interrupt()
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve with pending interrupt = %v, want Unknown", got)
	}
	// Sticky: a second Solve is still interrupted.
	if got := s.Solve(); got != Unknown {
		t.Fatalf("second Solve = %v, want Unknown (flag is sticky)", got)
	}
	s.ClearInterrupt()
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve after ClearInterrupt = %v, want Sat", got)
	}
}

// TestInterruptMidSolve interrupts a hard instance from within the
// solve loop (via the stop predicate, so the interruption lands
// deterministically mid-search), then verifies the solver remains
// usable and that clauses learned before the interruption are sound:
// re-solving the same UNSAT instance still returns Unsat.
func TestInterruptMidSolve(t *testing.T) {
	s := New()
	pigeonholeInstance(s, 8)
	fired := false
	s.SetStop(func() bool {
		if !fired {
			fired = true
			s.Interrupt()
		}
		return false
	})
	if got := s.Solve(); got != Unknown {
		t.Fatalf("interrupted Solve = %v, want Unknown", got)
	}
	if !fired {
		t.Fatal("stop predicate was never polled")
	}
	learnedBefore := s.Stats().Learnts

	s.SetStop(nil)
	s.ClearInterrupt()
	if got := s.Solve(); got != Unsat {
		t.Fatalf("re-Solve after interrupt = %v, want Unsat (learned clauses must stay sound)", got)
	}
	if learnedBefore == 0 {
		t.Log("note: interruption landed before the first learnt clause")
	}
}

func TestSetStopPredicateStopsSolve(t *testing.T) {
	s := New()
	pigeonholeInstance(s, 8)
	s.SetStop(func() bool { return true })
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve with always-true stop = %v, want Unknown", got)
	}
	s.SetStop(nil)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve after removing stop = %v, want Unsat", got)
	}
}

// TestInterruptFromAnotherGoroutine exercises the asynchronous use:
// Interrupt is called concurrently with Solve (run under -race).
func TestInterruptFromAnotherGoroutine(t *testing.T) {
	s := New()
	pigeonholeInstance(s, 9)
	done := make(chan Status, 1)
	go func() { done <- s.Solve() }()
	time.Sleep(20 * time.Millisecond)
	s.Interrupt()
	select {
	case got := <-done:
		// The solve may legitimately have finished before the
		// interrupt landed; both verdicts are acceptable, Sat is not.
		if got != Unknown && got != Unsat {
			t.Fatalf("Solve = %v, want Unknown or Unsat", got)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Solve did not return after Interrupt")
	}
	// Usability after an async interrupt: a budgeted re-solve must
	// run normally (soundness of the learned clauses on this instance
	// is covered by TestInterruptMidSolve; solving PHP(9) to
	// completion here would dominate the -race run).
	s.ClearInterrupt()
	s.SetBudget(500)
	if got := s.Solve(); got == Sat {
		t.Fatalf("Solve after async interrupt = %v on an UNSAT instance", got)
	}
}

func TestComputeLBDStamps(t *testing.T) {
	s := New()
	var lits []Lit
	for i := 0; i < 6; i++ {
		lits = append(lits, Pos(s.NewVar()))
	}
	// Levels: 0,1,1,2,3,3 -> 4 distinct.
	for i, lv := range []int{0, 1, 1, 2, 3, 3} {
		s.levels[i] = lv
	}
	if got := s.computeLBD(lits); got != 4 {
		t.Fatalf("computeLBD = %d, want 4", got)
	}
	// A second call must not be polluted by the first (stamp
	// generation advances).
	if got := s.computeLBD(lits[:2]); got != 2 {
		t.Fatalf("second computeLBD = %d, want 2", got)
	}
}

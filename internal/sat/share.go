package sat

// This file implements learned-clause sharing between the members of
// a portfolio (glucose-syrup style): each member exports its low-LBD
// learnt clauses into a private bounded buffer and imports the other
// members' recent exports at restart boundaries. Sharing is sound
// because every member solves the same formula modulo learnt clauses,
// and a learnt clause is implied by the formula alone — assumptions
// enter the search as decisions, never as clauses — so a clause
// learned anywhere may be attached everywhere. It is best-effort: a
// buffer that overflows drops its oldest clauses, which costs only
// pruning power, never correctness.

import "sync"

// SharePool mediates clause exchange between the members of a
// clause-sharing portfolio. Construct with NewSharePool and wire each
// member with Attach before solving starts.
type SharePool struct {
	lbdMax int
	capPer int
	bufs   []shareBuf
	// cursors[i][j] is the sequence number up to which member i has
	// drained member j's buffer. Only member i's goroutine touches
	// row i (inside drain), so rows need no locking of their own.
	cursors [][]int64
}

type sharedClause struct {
	lits []Lit
	lbd  int
}

// shareBuf is one member's bounded export ring. entries[0] carries
// sequence number base; overflow drops from the front.
type shareBuf struct {
	mu      sync.Mutex
	entries []sharedClause
	base    int64
}

// NewSharePool returns a pool for the given member count. Clauses
// with LBD above lbdMax are not exported (<= 0 selects 6, glucose's
// "good clause" range); capPer bounds each member's buffer (<= 0
// selects 512).
func NewSharePool(members, lbdMax, capPer int) *SharePool {
	if lbdMax <= 0 {
		lbdMax = 6
	}
	if capPer <= 0 {
		capPer = 512
	}
	p := &SharePool{
		lbdMax:  lbdMax,
		capPer:  capPer,
		bufs:    make([]shareBuf, members),
		cursors: make([][]int64, members),
	}
	for i := range p.cursors {
		p.cursors[i] = make([]int64, members)
	}
	return p
}

// Attach wires member i's solver to the pool: its low-LBD learnt
// clauses are exported to buffer i, and at each restart it imports
// every other member's exports it has not seen yet.
func (p *SharePool) Attach(i int, s *Solver) {
	s.SetShare(p.lbdMax,
		func(lits []Lit, lbd int) { p.export(i, lits, lbd) },
		func(add func(lits []Lit, lbd int)) { p.drain(i, add) })
}

func (p *SharePool) export(i int, lits []Lit, lbd int) {
	b := &p.bufs[i]
	b.mu.Lock()
	b.entries = append(b.entries, sharedClause{lits, lbd})
	if drop := len(b.entries) - p.capPer; drop > 0 {
		b.entries = append(b.entries[:0], b.entries[drop:]...)
		b.base += int64(drop)
	}
	b.mu.Unlock()
}

func (p *SharePool) drain(i int, add func(lits []Lit, lbd int)) {
	for j := range p.bufs {
		if j == i {
			continue
		}
		b := &p.bufs[j]
		b.mu.Lock()
		cur := p.cursors[i][j]
		if cur < b.base {
			cur = b.base // exporter outran us; the gap is lost
		}
		batch := append([]sharedClause(nil), b.entries[cur-b.base:]...)
		p.cursors[i][j] = b.base + int64(len(b.entries))
		b.mu.Unlock()
		// Outside the lock: attaching may propagate. The entries hold
		// exporter-owned copies; the importing solver copies again
		// before attaching, so handing one slice to several importers
		// is safe.
		for _, sc := range batch {
			add(sc.lits, sc.lbd)
		}
	}
}

// SetShare installs clause-sharing hooks. export is called from the
// solving goroutine with a copy of each learnt clause whose LBD is at
// most lbdMax (the receiver may keep the slice). imp is called at
// restart boundaries (decision level 0) and must call its argument
// once per foreign clause; the solver copies the literals before
// attaching. Pass nils to remove the hooks. Foreign clauses must be
// over this solver's variable space and must not mention eliminated
// variables — guaranteed when all members are CloneFormula snapshots
// of one preprocessed solver, since clauses involving eliminated
// variables were removed from the shared database and search never
// reintroduces them.
func (s *Solver) SetShare(lbdMax int, export func(lits []Lit, lbd int), imp func(add func(lits []Lit, lbd int))) {
	s.shareLBD = lbdMax
	s.shareExport = export
	s.shareImport = imp
	if imp != nil && s.shareEvery == 0 {
		// Default forced-import cadence: without it, a solve short
		// enough never to trip a restart policy would also never import
		// (see the search loop), making sharing one-directional.
		s.shareEvery = 32
	}
}

// SetShareImportInterval overrides the forced import cadence: with an
// import hook attached, the solver drains the pool at least every n
// conflicts even when the restart policy does not fire (n <= 0 restores
// the default).
func (s *Solver) SetShareImportInterval(n int64) {
	if n <= 0 {
		n = 32
	}
	s.shareEvery = n
}

// importShared drains foreign clauses at a restart boundary. Each
// clause is simplified against the root assignment and attached as a
// learnt clause; units are enqueued and propagated. It returns false
// when an import derives unsatisfiability of the formula itself (an
// empty clause or a root conflict), which is a definitive Unsat
// regardless of assumptions.
func (s *Solver) importShared() bool {
	if s.shareImport == nil {
		return true
	}
	ok := true
	s.shareImport(func(lits []Lit, lbd int) {
		if ok {
			ok = s.addShared(lits, lbd)
		}
	})
	return ok
}

func (s *Solver) addShared(lits []Lit, lbd int) bool {
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		switch s.value(l) {
		case lTrue:
			return true // satisfied at root; skip
		case lFalse:
			continue // root-false literal; drop
		}
		out = append(out, l)
	}
	s.stats.SharedImported++
	switch len(out) {
	case 0:
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			return false
		}
	default:
		c := &clause{lits: out, learnt: true, shared: true, lbd: lbd}
		c.tier = s.tierFor(lbd)
		s.learnts = append(s.learnts, c)
		s.learntLits += int64(len(out))
		s.attach(c)
	}
	return true
}

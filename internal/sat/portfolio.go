package sat

// This file implements portfolio solving: race K diversified solver
// configurations on separate goroutines over independently built
// copies of the same problem; the first definitive verdict cancels
// the rest via Interrupt. CheckFence's hardest inclusion checks
// (snark, harris) are single NP-hard queries whose runtime varies by
// orders of magnitude with the restart schedule, initial phase, and
// branching order, so a small portfolio buys robustness that no
// single configuration can.

import (
	"errors"
	"runtime/debug"
	"sync"

	"checkfence/internal/faultinject"
)

// Config is one diversified solver configuration of a portfolio. The
// zero value is the solver's default (Glucose restarts, false initial
// phase, zero initial activities).
type Config struct {
	Restart RestartPolicy
	// InvertPhase flips the initial saved phase of every variable.
	InvertPhase bool
	// ActivitySeed, when nonzero, seeds a deterministic permutation
	// of the initial VSIDS branching order.
	ActivitySeed int64
	// Faults, when non-nil, installs fault-injection hooks on the
	// member's solver (see internal/faultinject).
	Faults faultinject.Faults
}

// Apply configures a freshly built solver. Call after the formula is
// loaded (the knobs touch per-variable state) and before solving.
func (c Config) Apply(s *Solver) {
	s.SetRestartPolicy(c.Restart)
	if c.InvertPhase {
		s.SetDefaultPhase(true)
	}
	if c.ActivitySeed != 0 {
		s.RandomizeActivity(c.ActivitySeed)
	}
	if c.Faults != nil {
		s.SetFaults(c.Faults)
	}
}

// RecoverAsError converts a recovered panic value into the typed
// error the panic-isolation layers report
// (*faultinject.RecoveredPanic, capturing the stack at the recovery
// point). Call it from a deferred recover handler.
func RecoverAsError(p any) error {
	return &faultinject.RecoveredPanic{Value: p, Stack: debug.Stack()}
}

// PortfolioConfigs returns k diversified configurations. The first is
// always the default configuration, so a portfolio is never slower
// than the default solver by more than scheduling overhead.
func PortfolioConfigs(k int) []Config {
	if k < 1 {
		k = 1
	}
	out := make([]Config, 0, k)
	for i := 0; i < k; i++ {
		cfg := Config{}
		if i%2 == 1 {
			cfg.Restart = RestartLuby
		}
		if i >= 2 {
			cfg.InvertPhase = i%4 >= 2
			cfg.ActivitySeed = int64(i)
		}
		out = append(out, cfg)
	}
	return out
}

// Race runs one portfolio member per configuration on its own
// goroutine. member builds the instance (formula + solver, applying
// cfg) and returns the solver together with a run function; run
// reports whether it reached a definitive verdict (as opposed to
// being interrupted or failing for a retryable reason). The first
// definitive member interrupts all others and becomes the winner.
// Race blocks until every member returns, so the winner's solver
// state (model, learned clauses) is quiescent when it does; it
// returns the winning index, or -1 if no member was definitive.
//
// A member may return a nil solver (e.g. its build failed); its run
// is still called so it can record the error, and a definitive return
// still wins the race.
func Race(configs []Config, member func(i int, cfg Config) (*Solver, func() bool)) int {
	if len(configs) == 1 {
		_, run := member(0, configs[0])
		if run() {
			return 0
		}
		return -1
	}

	var (
		mu      sync.Mutex
		solvers = make([]*Solver, len(configs))
		winner  = -1
		decided = false
		wg      sync.WaitGroup
	)
	for i, cfg := range configs {
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			s, run := member(i, cfg)
			mu.Lock()
			solvers[i] = s
			lost := decided
			mu.Unlock()
			if lost && s != nil {
				// The race ended while this member was still
				// building; stop it before the first Solve.
				s.Interrupt()
			}
			if !run() {
				return
			}
			mu.Lock()
			if !decided {
				decided = true
				winner = i
				for j, other := range solvers {
					if j != i && other != nil {
						other.Interrupt()
					}
				}
			}
			mu.Unlock()
		}(i, cfg)
	}
	wg.Wait()
	return winner
}

// Portfolio races plain Solve calls over independently built
// formulas. build is invoked once per configuration (concurrently)
// and must return a fresh solver loaded with the formula; Apply is
// called on it before solving. Solve returns the winner's status and
// solver (positioned at its model when Sat), or Unknown if every
// member was interrupted or failed to build.
type Portfolio struct {
	// Configs lists the member configurations; when empty, a default
	// 4-way portfolio is used.
	Configs []Config
	// ShareClauses lets SolveShared members exchange learned clauses
	// (LBD <= ShareLBD) through a SharePool at restart boundaries.
	ShareClauses bool
	// ShareLBD caps the LBD of exported clauses (0 = pool default).
	ShareLBD int
}

// Solve races the portfolio. The assumptions are shared by all
// members.
func (p *Portfolio) Solve(build func(Config) (*Solver, error), assumptions ...Lit) (Status, *Solver, error) {
	configs := p.Configs
	if len(configs) == 0 {
		configs = PortfolioConfigs(4)
	}
	statuses := make([]Status, len(configs))
	solvers := make([]*Solver, len(configs))
	errs := make([]error, len(configs))
	winner := Race(configs, func(i int, cfg Config) (*Solver, func() bool) {
		s, err := func() (s *Solver, err error) {
			// A member whose build panics (e.g. an injected alloc
			// failure) loses the race instead of crashing the process.
			defer func() {
				if p := recover(); p != nil {
					s, err = nil, RecoverAsError(p)
				}
			}()
			return build(cfg)
		}()
		if err != nil {
			errs[i] = err
			return nil, func() bool { return false }
		}
		cfg.Apply(s)
		solvers[i] = s
		return s, func() (definitive bool) {
			defer func() {
				if p := recover(); p != nil {
					errs[i] = RecoverAsError(p)
					definitive = false
				}
			}()
			statuses[i] = s.Solve(assumptions...)
			return statuses[i] != Unknown
		}
	})
	if winner < 0 {
		// Surface every member's build failure, not just the first:
		// members may fail for different reasons, and hiding all but
		// one makes portfolio bugs needlessly hard to diagnose.
		if err := errors.Join(errs...); err != nil {
			return Unknown, nil, err
		}
		return Unknown, nil, nil
	}
	return statuses[winner], solvers[winner], nil
}

// SharedRun is the outcome of SolveShared. Winner holds the winning
// solver when Status is definitive (a clone unless the portfolio has
// a single member, in which case base itself). On Unknown, Budget
// carries the typed budget exhaustion when some member ran out of
// budget, and Panic the first recovered member panic when no member
// was definitive — so callers can tell exhaustion and crashes from
// plain cancellation.
type SharedRun struct {
	Status Status
	Winner *Solver
	Work   Stats
	Budget *ErrBudget
	Panic  error
}

// SolveShared races the portfolio over CloneFormula snapshots of one
// preprocessed base solver, so encoding and preprocessing run once
// regardless of the portfolio width — the shared-formula counterpart
// of Solve. With ShareClauses set, members exchange learned clauses
// through a SharePool. A member that panics (injected fault, genuine
// bug) loses the race instead of crashing the process. A caller that
// needs base positioned at the winning model should AdoptModelFrom
// run.Winner.
func (p *Portfolio) SolveShared(base *Solver, assumptions ...Lit) SharedRun {
	configs := p.Configs
	if len(configs) == 0 {
		configs = PortfolioConfigs(4)
	}
	if len(configs) == 1 {
		st := base.Solve(assumptions...)
		run := SharedRun{Status: st}
		if st == Unknown {
			if be := base.BudgetErr(); be != nil {
				run.Budget = be
			}
			return run
		}
		run.Winner = base
		return run
	}
	var pool *SharePool
	if p.ShareClauses {
		pool = NewSharePool(len(configs), p.ShareLBD, 0)
	}
	// Clone serially before racing: CloneFormula mutates the receiver
	// (backtrack + root propagation), so concurrent clones would race.
	clones := make([]*Solver, len(configs))
	for i := range configs {
		clones[i] = base.CloneFormula()
	}
	statuses := make([]Status, len(configs))
	panics := make([]error, len(configs))
	winner := Race(configs, func(i int, cfg Config) (*Solver, func() bool) {
		s := clones[i]
		cfg.Apply(s)
		if pool != nil {
			pool.Attach(i, s)
		}
		return s, func() (definitive bool) {
			defer func() {
				if p := recover(); p != nil {
					panics[i] = RecoverAsError(p)
					definitive = false
				}
			}()
			statuses[i] = s.Solve(assumptions...)
			return statuses[i] != Unknown
		}
	})
	var run SharedRun
	for _, c := range clones {
		st := c.Stats()
		run.Work.Conflicts += st.Conflicts
		run.Work.Decisions += st.Decisions
		run.Work.Propagations += st.Propagations
		run.Work.Restarts += st.Restarts
		run.Work.Learnts += st.Learnts
		run.Work.SharedExported += st.SharedExported
		run.Work.SharedImported += st.SharedImported
		run.Work.SharedUseful += st.SharedUseful
		run.Work.VivifiedClauses += st.VivifiedClauses
		run.Work.VivifiedLits += st.VivifiedLits
		run.Work.SubsumedLearnts += st.SubsumedLearnts
		run.Work.ChronoBacktracks += st.ChronoBacktracks
	}
	if winner < 0 {
		run.Status = Unknown
		for _, c := range clones {
			if be := c.BudgetErr(); be != nil {
				run.Budget = be
				break
			}
		}
		if run.Budget == nil {
			run.Panic = errors.Join(panics...)
		}
		return run
	}
	run.Status = statuses[winner]
	run.Winner = clones[winner]
	return run
}

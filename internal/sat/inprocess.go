package sat

// This file implements the solver's inprocessing layer: simplification
// that runs *during* search rather than once up front (contrast with
// preprocess.go). Four techniques, all switchable together via
// SetInprocess:
//
//   - Clause vivification (Piette/Hamadi/Saïs '08, Luo et al. IJCAI'17):
//     at restart boundaries, re-derive learnt clauses by assuming the
//     negation of their literals in turn; a propagation conflict or an
//     implied literal proves a shorter clause, which replaces the
//     original. Sound because the shrunk clause is both implied by the
//     formula (it was derived from it by unit propagation) and implies
//     the clause it replaces (it is a subset).
//
//   - On-the-fly backward subsumption: after each conflict, the freshly
//     learnt clause is checked against the learnt antecedents that took
//     part in the conflict analysis; any antecedent it subsumes is
//     deleted. Deleting a learnt clause is always sound — learnt
//     clauses are redundant by construction — and the subset test makes
//     it lossless: the surviving clause propagates at least as early.
//
//   - A three-tier learnt-clause database (Chanseok Oh's scheme, as in
//     COMiniSatPS): core clauses (LBD <= coreLBD) are kept forever,
//     mid-tier clauses (LBD <= midLBD) survive reductions only while
//     they keep participating in conflicts, and local clauses compete
//     on activity with half the tier dropped at every reduction.
//     Clauses are promoted when conflict analysis observes a better LBD.
//
//   - Chronological backtracking (Nadel & Ryvchin, SAT'18), in its
//     simple sound form: when the asserting level is far below the
//     conflict level, backtrack one level instead of jumping, and
//     assert the learnt literal there. The trail stays level-monotone
//     (no out-of-order assignments), so conflict analysis needs no
//     changes; what is saved is the re-propagation of the many levels a
//     long jump would discard.

import "sort"

// Tiers of the learnt-clause database. Ordering matters: promotion
// moves a clause to a numerically smaller tier.
const (
	tierCore int8 = iota
	tierMid
	tierLocal
)

// inprocessConfig collects the knobs of the inprocessing layer. The
// layer is on by default (New); SetInprocess(false) restores the
// pre-inprocessing solver behavior exactly (single-tier reduceDB,
// non-chronological backtracking, no in-search simplification).
type inprocessConfig struct {
	on      bool
	coreLBD int // clauses with LBD <= coreLBD are kept forever
	midLBD  int // clauses with LBD <= midLBD start in the mid tier
	// chrono is the backjump-distance threshold above which the solver
	// backtracks chronologically (one level) instead of jumping to the
	// asserting level. 0 disables chronological backtracking.
	chrono int
	// vivifyInterval is the number of conflicts between vivification
	// rounds; vivifyProps bounds the propagation work of one round.
	vivifyInterval int64
	vivifyProps    int64
	lastVivify     int64 // Conflicts counter at the last round
}

func defaultInprocess() inprocessConfig {
	return inprocessConfig{
		on:             true,
		coreLBD:        3,
		midLBD:         6,
		chrono:         100,
		vivifyInterval: 4000,
		vivifyProps:    200000,
	}
}

// SetInprocess toggles the inprocessing layer (vivification, on-the-fly
// subsumption, the tiered clause database, chronological backtracking).
// On is the default; off restores the legacy single-tier behavior.
// Call between Solve calls, not concurrently with one.
func (s *Solver) SetInprocess(on bool) { s.inpro.on = on }

// InprocessEnabled reports whether the inprocessing layer is on.
func (s *Solver) InprocessEnabled() bool { return s.inpro.on }

// tierFor maps an LBD to the tier a clause with that LBD belongs in.
func (s *Solver) tierFor(lbd int) int8 {
	switch {
	case lbd <= s.inpro.coreLBD:
		return tierCore
	case lbd <= s.inpro.midLBD:
		return tierMid
	default:
		return tierLocal
	}
}

// removeLearnt deletes an attached learnt clause. The clause stays in
// s.learnts with its deleted flag set (conflict analysis may hold
// pointers into the slice); reduceDB purges deleted entries.
func (s *Solver) removeLearnt(c *clause) {
	c.deleted = true
	s.detach(c)
	s.learntLits -= int64(len(c.lits))
}

// markLits stamps the literals of the just-learnt clause for the O(1)
// membership test of subsumeAntecedents.
func (s *Solver) markLits(lits []Lit) {
	if n := 2 * len(s.assigns); len(s.litStamp) < n {
		grown := make([]int64, n)
		copy(grown, s.litStamp)
		s.litStamp = grown
	}
	s.litGen++
	for _, l := range lits {
		s.litStamp[l] = s.litGen
	}
}

// subsumeAntecedents implements on-the-fly backward subsumption: the
// clause just learnt from a conflict is tested against the learnt
// antecedents of that conflict (collected by analyze), and every
// antecedent it subsumes — a strict superset of its literals — is
// deleted. Locked antecedents (reasons of current assignments) are
// skipped; their turn comes after backtracking unassigns them.
func (s *Solver) subsumeAntecedents(learnt []Lit) {
	if len(s.ante) == 0 {
		return
	}
	s.markLits(learnt)
	for _, c := range s.ante {
		if c.deleted || len(c.lits) <= len(learnt) || s.locked(c) {
			continue
		}
		hits := 0
		for _, l := range c.lits {
			if s.litStamp[l] == s.litGen {
				hits++
			}
		}
		if hits == len(learnt) {
			s.removeLearnt(c)
			s.stats.SubsumedLearnts++
		}
	}
}

// vivify runs one vivification round over the core and mid tiers of
// the learnt database. It must be called at the root decision level
// (restart boundaries); it returns false when vivification derives
// unsatisfiability of the formula.
func (s *Solver) vivify() bool {
	budget := s.stats.Propagations + s.inpro.vivifyProps
	// s.learnts is not appended to inside the loop (vivification learns
	// nothing, it only shrinks), so ranging over it directly is safe.
	for _, c := range s.learnts {
		if s.stats.Propagations > budget || s.interrupted.Load() {
			break
		}
		if c.deleted || c.tier == tierLocal || len(c.lits) < 2 || s.locked(c) {
			continue
		}
		if !s.vivifyClause(c) {
			return false
		}
	}
	return true
}

// vivifyClause distills one learnt clause: assume the negation of each
// literal in turn on a scratch decision level; a literal already
// implied true ends the clause there, an implied-false literal is
// dropped, and a propagation conflict proves the assumed prefix
// contradictory, so the prefix alone is the clause. Returns false when
// the clause (or a unit it shrinks to) refutes the formula at the root.
func (s *Solver) vivifyClause(c *clause) bool {
	// Root-level simplification first: the trail is at level 0, so any
	// assigned literal is root-forced.
	lits := s.vivTmp[:0]
	for _, l := range c.lits {
		switch s.value(l) {
		case lTrue:
			// Satisfied at the root: the clause is garbage.
			s.removeLearnt(c)
			s.vivTmp = lits
			return true
		case lFalse:
			continue
		}
		lits = append(lits, l)
	}
	s.vivTmp = lits[:0]
	if len(lits) == 0 {
		s.ok = false
		return false
	}

	s.detach(c)
	s.trailLim = append(s.trailLim, len(s.trail)) // scratch decision level
	out := s.vivOut[:0]
	shrunk := len(lits) < len(c.lits)
probe:
	for i, l := range lits {
		switch s.value(l) {
		case lTrue:
			// ¬out implies l: the tail beyond l is redundant.
			out = append(out, l)
			if i+1 < len(lits) {
				shrunk = true
			}
			break probe
		case lFalse:
			// ¬out implies ¬l: l itself is redundant.
			shrunk = true
			continue
		}
		out = append(out, l)
		s.uncheckedEnqueue(l.Not(), nil)
		if s.propagate() != nil {
			// ¬out is contradictory: out alone is an implied clause.
			if i+1 < len(lits) {
				shrunk = true
			}
			break probe
		}
	}
	s.cancelUntil(0)
	s.vivOut = out[:0]

	if !shrunk {
		s.attach(c)
		return true
	}
	s.stats.VivifiedClauses++
	s.stats.VivifiedLits += int64(len(c.lits) - len(out))
	s.learntLits -= int64(len(c.lits) - len(out))
	if len(out) <= 1 {
		// The clause collapsed to (at most) a unit: the clause object is
		// dropped and the unit asserted at the root.
		c.deleted = true
		s.learntLits -= int64(len(out))
		if len(out) == 0 {
			s.ok = false
			return false
		}
		switch s.value(out[0]) {
		case lFalse:
			s.ok = false
			return false
		case lUndef:
			s.uncheckedEnqueue(out[0], nil)
			if s.propagate() != nil {
				s.ok = false
				return false
			}
		}
		return true
	}
	c.lits = append(c.lits[:0], out...)
	if c.lbd > len(c.lits) {
		c.lbd = len(c.lits)
	}
	if t := s.tierFor(c.lbd); t < c.tier {
		c.tier = t
	}
	s.attach(c)
	return true
}

// reduceDBTiered is the tier-aware clause-database reduction. Core
// clauses are untouchable; mid-tier clauses that took part in no
// conflict since the last reduction are demoted to local; the local
// tier is sorted by activity and its colder half dropped. Deleted
// entries (subsumption, vivification) are purged along the way.
func (s *Solver) reduceDBTiered() {
	keep := s.learnts[:0]
	local := s.reduceTmp[:0]
	for _, c := range s.learnts {
		if c.deleted {
			continue
		}
		switch c.tier {
		case tierCore:
			keep = append(keep, c)
		case tierMid:
			if c.used || s.locked(c) {
				c.used = false
				keep = append(keep, c)
			} else {
				c.tier = tierLocal
				local = append(local, c)
			}
		default:
			local = append(local, c)
		}
	}
	// Hot (recently used or high-activity) local clauses survive;
	// stable sort keeps the order deterministic under ties.
	sortClausesByActivity(local)
	limit := len(local) / 2
	for i, c := range local {
		if i < limit || c.used || s.locked(c) {
			c.used = false
			keep = append(keep, c)
		} else {
			c.deleted = true
			s.detach(c)
		}
	}
	s.reduceTmp = local[:0] // retain scratch capacity for the next round
	s.learnts = keep
	s.recountLearntLits()
}

// sortClausesByActivity orders hottest-first: higher activity, then
// lower LBD, then shorter. The stable sort keeps full ties in insertion
// order, so reductions are deterministic.
func sortClausesByActivity(cls []*clause) {
	sort.SliceStable(cls, func(i, j int) bool {
		a, b := cls[i], cls[j]
		if a.activity != b.activity {
			return a.activity > b.activity
		}
		if a.lbd != b.lbd {
			return a.lbd < b.lbd
		}
		return len(a.lits) < len(b.lits)
	})
}

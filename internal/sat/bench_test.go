package sat

import "testing"

// pigeonholeInstance builds the PHP(n+1, n) UNSAT instance.
func pigeonholeInstance(s *Solver, n int) {
	p := make([][]int, n+1)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		lits := make([]Lit, n)
		for j := 0; j < n; j++ {
			lits[j] = Pos(p[i][j])
		}
		s.AddClause(lits...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(Neg(p[i1][j]), Neg(p[i2][j]))
			}
		}
	}
}

// BenchmarkRestartPolicy is the solver-level ablation: Glucose-style
// LBD restarts vs. the classic Luby schedule on a hard UNSAT family.
func BenchmarkRestartPolicy(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy RestartPolicy
	}{
		{"glucose", RestartGlucose},
		{"luby", RestartLuby},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var conflicts int64
			for i := 0; i < b.N; i++ {
				s := New()
				s.SetRestartPolicy(tc.policy)
				pigeonholeInstance(s, 8)
				if s.Solve() != Unsat {
					b.Fatal("pigeonhole must be UNSAT")
				}
				conflicts = s.Stats().Conflicts
			}
			b.ReportMetric(float64(conflicts), "conflicts")
		})
	}
}

func TestRestartPoliciesAgree(t *testing.T) {
	for _, p := range []RestartPolicy{RestartGlucose, RestartLuby} {
		s := New()
		s.SetRestartPolicy(p)
		pigeonholeInstance(s, 6)
		if s.Solve() != Unsat {
			t.Errorf("policy %v: pigeonhole must be UNSAT", p)
		}
	}
}

package sat

// This file implements formula snapshots for intra-check parallelism:
// CloneFormula produces an independent solver over the same variable
// space and clause database, so a portfolio or a cube pool loads one
// encoded-and-preprocessed CNF instead of re-running the encoder K
// times, and AdoptModelFrom carries a winning clone's model back to
// the solver the rest of the pipeline (observation decoding, trace
// extraction) reads.

// CloneFormula returns an independent snapshot of the solver's
// formula: problem clauses, learned clauses, root-level assignments,
// saved phases, variable activities, and the frozen/eliminated state
// left by Preprocess. Clause literal slices are deep-copied — the
// watched-literal scheme reorders them in place during propagation,
// so sharing them between solvers would race. The elimination stack
// is shared: Preprocess never mutates it after preprocessing
// finishes, and model extension only reads it, so clones reconstruct
// eliminated-variable values from the same record. Budgets (conflict,
// propagation, deadline, memory), fault hooks, restart policy, the
// inprocessing configuration, and the external stop predicate carry
// over; the interrupt flag and any adopted model overlay do not.
//
// The receiver is backtracked to the root level and propagated to a
// fixpoint first (mutations!), so CloneFormula must not run while
// another goroutine solves on the receiver, and concurrent calls on
// one solver must be serialized by the caller — SolveShared and
// SolveCubes clone sequentially before spawning workers.
func (s *Solver) CloneFormula() *Solver {
	s.cancelUntil(0)
	if s.ok && s.propagate() != nil {
		s.ok = false
	}
	n := len(s.assigns)
	c := &Solver{
		ok:            s.ok,
		varInc:        s.varInc,
		claInc:        s.claInc,
		maxLearnts:    s.maxLearnts,
		learntGrowth:  s.learntGrowth,
		budget:        s.budget,
		deadline:      s.deadline,
		propBudget:    s.propBudget,
		memBudget:     s.memBudget,
		faults:        s.faults,
		stop:          s.stop,
		restartPolicy: s.restartPolicy,
		lbdFast:       s.lbdFast,
		lbdSlow:       s.lbdSlow,
		inpro:         s.inpro, // value copy; vivification cadence restarts with the clone's counters
		elimStack:     s.elimStack, // read-only after Preprocess
		preStats:      s.preStats,
	}
	c.inpro.lastVivify = 0
	c.assigns = append([]lbool(nil), s.assigns...)
	c.phase = append([]bool(nil), s.phase...)
	c.levels = append([]int(nil), s.levels...)
	c.frozen = append([]bool(nil), s.frozen...)
	c.eliminated = append([]bool(nil), s.eliminated...)
	c.extVals = append([]lbool(nil), s.extVals...)
	c.reasons = make([]*clause, n)
	c.seen = make([]bool, n)
	c.trail = append([]Lit(nil), s.trail...) // root-level units only
	c.qhead = len(c.trail)
	c.watches = make([][]watcher, 2*n)
	c.stats = Stats{Vars: s.stats.Vars}
	c.order.activity = append([]float64(nil), s.order.activity...)
	c.order.indices = make([]int, n)
	c.order.heap = make([]int, n)
	for v := 0; v < n; v++ {
		c.order.heap[v] = v
		c.order.indices[v] = v
	}
	c.order.rebuild()
	if !c.ok {
		return c
	}

	// Copy the clause database, simplifying against the root
	// assignment: clauses satisfied at the root are dropped and
	// root-false literals removed. At a root propagation fixpoint no
	// attached clause can be unit or empty under the root assignment,
	// so copied clauses keep >= 2 literals; the defensive branches
	// below preserve soundness even if that invariant were broken.
	total := 0
	for _, cl := range s.clauses {
		total += len(cl.lits)
	}
	for _, cl := range s.learnts {
		total += len(cl.lits)
	}
	arena := make([]Lit, 0, total)
	copyClause := func(cl *clause, learnt bool) {
		if cl.deleted {
			return
		}
		start := len(arena)
		for _, l := range cl.lits {
			switch s.value(l) {
			case lTrue:
				arena = arena[:start]
				return // satisfied at root
			case lFalse:
				continue
			}
			arena = append(arena, l)
		}
		lits := arena[start:len(arena):len(arena)]
		switch len(lits) {
		case 0:
			c.ok = false
		case 1:
			if c.value(lits[0]) == lUndef {
				// Lands after qhead, so the clone's first Solve
				// propagates it.
				c.uncheckedEnqueue(lits[0], nil)
			}
		default:
			nc := &clause{lits: lits, learnt: learnt,
				activity: cl.activity, lbd: cl.lbd, tier: cl.tier}
			if learnt {
				c.learnts = append(c.learnts, nc)
			} else {
				c.clauses = append(c.clauses, nc)
				c.stats.Clauses++
			}
			c.attach(nc)
		}
	}
	for _, cl := range s.clauses {
		copyClause(cl, false)
	}
	for _, cl := range s.learnts {
		copyClause(cl, true)
	}
	c.recountLearntLits()
	return c
}

// AdoptModelFrom overlays the satisfying assignment of src — a solver
// over the same variable space, typically a CloneFormula snapshot
// that won a portfolio race or a cube — onto s: until the next Solve
// call on s, Value and ValueLit report src's model (including
// reconstructed values of eliminated variables) without disturbing
// s's own trail or clause database. This is how a winning clone's
// model becomes readable through the encoder the rest of the pipeline
// holds.
func (s *Solver) AdoptModelFrom(src *Solver) {
	ov := make([]lbool, len(s.assigns))
	m := len(src.assigns)
	for v := range ov {
		if v < m {
			ov[v] = boolToLbool(src.Value(v))
		}
	}
	s.adopted = ov
}

// FixedAtRoot reports whether the variable is assigned at the root
// decision level — its value is forced by the formula alone (unit
// clauses and their propagation), independent of search decisions or
// assumptions. Blocking-clause shrinking drops such bits: no model
// can differ there.
func (s *Solver) FixedAtRoot(v int) bool {
	return s.assigns[v] != lUndef && s.levels[v] == 0
}

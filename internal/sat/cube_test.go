package sat

import "testing"

// TestCubeSplitterShape: 2^d cubes over d distinct variables, every
// sign combination present exactly once.
func TestCubeSplitterShape(t *testing.T) {
	s := New()
	plantedInstance(s, 20, 80, 9)
	cubes := CubeSplitter{Depth: 3}.Split(s)
	if len(cubes) != 8 {
		t.Fatalf("got %d cubes, want 8", len(cubes))
	}
	seen := map[int]bool{}
	for _, cube := range cubes {
		if len(cube) != 3 {
			t.Fatalf("cube width %d, want 3", len(cube))
		}
		mask := 0
		for i, l := range cube {
			if l.Var() != cubes[0][i].Var() {
				t.Fatal("cubes must split the same variables in the same order")
			}
			if l.Sign() {
				mask |= 1 << i
			}
		}
		if seen[mask] {
			t.Fatalf("sign combination %b repeated", mask)
		}
		seen[mask] = true
	}
}

// TestCubeSplitterPrefer: a preferred variable beats higher-occurrence
// ones.
func TestCubeSplitterPrefer(t *testing.T) {
	s := New()
	v0, v1, v2 := s.NewVar(), s.NewVar(), s.NewVar()
	// v1 and v2 occur often; v0 only once per polarity.
	for i := 0; i < 10; i++ {
		w := s.NewVar()
		s.AddClause(Pos(v1), Pos(w))
		s.AddClause(Neg(v1), Neg(w))
		s.AddClause(Pos(v2), Neg(w))
	}
	s.AddClause(Pos(v0), Pos(v1))
	s.AddClause(Neg(v0), Neg(v2))
	cubes := CubeSplitter{Depth: 1, Prefer: []int{v0}}.Split(s)
	if len(cubes) != 2 {
		t.Fatalf("got %d cubes, want 2", len(cubes))
	}
	if cubes[0][0].Var() != v0 {
		t.Fatalf("split variable = %d, want preferred %d", cubes[0][0].Var(), v0)
	}
}

// TestSolveCubesUnsat: Unsat requires draining every cube; the
// verdict and the refuted count must both say so.
func TestSolveCubesUnsat(t *testing.T) {
	base := New()
	pigeonholeInstance(base, 6)
	cubes := CubeSplitter{Depth: 3}.Split(base)
	run := SolveCubes(base, cubes, 4)
	if run.Status != Unsat {
		t.Fatalf("verdict = %v, want Unsat", run.Status)
	}
	if run.Refuted != run.Cubes || run.Cubes != len(cubes) {
		t.Fatalf("refuted %d of %d cubes, want all %d", run.Refuted, run.Cubes, len(cubes))
	}
}

// TestSolveCubesSat: the winner holds a genuine model.
func TestSolveCubesSat(t *testing.T) {
	base := New()
	clauses := plantedInstance(base, 40, 160, 13)
	cubes := CubeSplitter{Depth: 4}.Split(base)
	run := SolveCubes(base, cubes, 4)
	if run.Status != Sat {
		t.Fatalf("verdict = %v, want Sat", run.Status)
	}
	if run.Winner == nil {
		t.Fatal("Sat without a winner")
	}
	modelSatisfies(t, run.Winner, clauses)
	base.AdoptModelFrom(run.Winner)
	modelSatisfies(t, base, clauses)
}

// TestSolveCubesAssumptions: assumptions combine with cubes; an
// assumption contradicting the planted solution space flips Sat to
// Unsat without touching the base formula.
func TestSolveCubesAssumptions(t *testing.T) {
	base := New()
	a := base.NewVar()
	b := base.NewVar()
	base.AddClause(Pos(a), Pos(b))
	base.AddClause(Neg(a), Pos(b)) // forces b under either a
	cubes := CubeSplitter{Depth: 1}.Split(base)
	if run := SolveCubes(base, cubes, 2, Neg(b)); run.Status != Unsat {
		t.Fatalf("verdict under contradicting assumption = %v, want Unsat", run.Status)
	}
	if run := SolveCubes(base, cubes, 2, Pos(b)); run.Status != Sat {
		t.Fatalf("verdict under consistent assumption = %v, want Sat", run.Status)
	}
}

// TestSolveCubesInterrupted: an interrupted base yields Unknown (the
// interrupt flag carries into the solve via the cloned stop state).
func TestSolveCubesInterrupted(t *testing.T) {
	base := New()
	pigeonholeInstance(base, 8)
	stopped := true
	base.SetStop(func() bool { return stopped })
	cubes := CubeSplitter{Depth: 2}.Split(base)
	run := SolveCubes(base, cubes, 2)
	if run.Status != Unknown {
		t.Fatalf("verdict = %v, want Unknown under a firing stop predicate", run.Status)
	}
}

// TestSolveCubesNoCubes: the serial fallback solves base directly.
func TestSolveCubesNoCubes(t *testing.T) {
	base := New()
	clauses := plantedInstance(base, 20, 80, 17)
	run := SolveCubes(base, nil, 4)
	if run.Status != Sat {
		t.Fatalf("verdict = %v, want Sat", run.Status)
	}
	if run.Winner != base {
		t.Fatal("serial fallback must return base as the winner")
	}
	modelSatisfies(t, base, clauses)
}

package sat

// This file implements per-Solve resource budgets. CheckFence's
// queries are worst-case intractable, so a production caller cannot
// assume any individual solve terminates or fits in memory: budgets
// turn "hangs forever" and "eats the heap" into a typed, prompt
// *ErrBudget that the degradation ladder upstream can act on.
//
// Four budget axes are supported:
//
//   - conflicts (SetBudget): CDCL conflicts per Solve
//   - propagations (SetPropagationBudget): BCP steps per Solve
//   - wall clock (SetDeadline): an absolute deadline checked at the
//     same cadence as the external stop predicate
//   - memory (SetMemBudget): an approximate byte ceiling on the
//     learned-clause database; when crossed the solver first forces a
//     clause-DB reduction and caps further growth, and only stops if
//     the bound still cannot be met
//
// All budgets are sticky across Solve calls (a multi-solve procedure
// such as mining shares them); each Solve call re-arms its own
// counters. A Solve that stops on a budget returns Unknown and
// records the typed cause, readable via BudgetErr until the next
// Solve; a Solve stopped by Interrupt or the stop predicate leaves
// BudgetErr nil, so callers can tell cancellation from exhaustion.

import (
	"errors"
	"fmt"
	"time"

	"checkfence/internal/faultinject"
)

// BudgetKind names the budget axis an ErrBudget exhausted.
type BudgetKind int

const (
	// BudgetConflicts is the per-Solve conflict cap (SetBudget).
	BudgetConflicts BudgetKind = iota
	// BudgetPropagations is the per-Solve propagation cap.
	BudgetPropagations
	// BudgetDeadline is the wall-clock deadline (SetDeadline).
	BudgetDeadline
	// BudgetMemory is the learned-clause database byte ceiling.
	BudgetMemory
	// BudgetInjected marks a budget exhaustion forced by fault
	// injection (faultinject.SolverBudget).
	BudgetInjected
)

func (k BudgetKind) String() string {
	switch k {
	case BudgetConflicts:
		return "conflicts"
	case BudgetPropagations:
		return "propagations"
	case BudgetDeadline:
		return "deadline"
	case BudgetMemory:
		return "memory"
	case BudgetInjected:
		return "injected"
	}
	return fmt.Sprintf("budget(%d)", int(k))
}

// ErrBudgetExhausted is the sentinel all budget errors wrap;
// errors.Is(err, ErrBudgetExhausted) matches any *ErrBudget.
var ErrBudgetExhausted = errors.New("sat: budget exhausted")

// ErrBudget is the typed budget-exhaustion error: which axis ran out
// and how much was spent. Spent is in the axis's natural unit —
// conflicts, propagations, elapsed nanoseconds, or bytes.
type ErrBudget struct {
	Kind  BudgetKind
	Spent int64
}

func (e *ErrBudget) Error() string {
	switch e.Kind {
	case BudgetDeadline:
		return fmt.Sprintf("sat: deadline exceeded after %v", time.Duration(e.Spent))
	case BudgetMemory:
		return fmt.Sprintf("sat: learned-clause memory budget exhausted (%d bytes)", e.Spent)
	}
	return fmt.Sprintf("sat: %s budget exhausted (%d spent)", e.Kind, e.Spent)
}

// Is makes errors.Is(err, ErrBudgetExhausted) true for every
// *ErrBudget.
func (e *ErrBudget) Is(target error) bool { return target == ErrBudgetExhausted }

// SetDeadline installs an absolute wall-clock deadline checked
// periodically inside Solve (the zero time removes it). A Solve
// running past it returns Unknown with a BudgetDeadline cause.
func (s *Solver) SetDeadline(t time.Time) { s.deadline = t }

// SetPropagationBudget limits the number of propagation steps a
// single Solve may perform (0 = unlimited).
func (s *Solver) SetPropagationBudget(n int64) { s.propBudget = n }

// SetMemBudget sets an approximate byte ceiling on the learned-clause
// database (0 = unlimited). Crossing it first forces a clause-DB
// reduction and caps the growth schedule; if the database still
// exceeds the ceiling (everything kept is locked or precious), Solve
// returns Unknown with a BudgetMemory cause.
func (s *Solver) SetMemBudget(bytes int64) { s.memBudget = bytes }

// SetFaults installs fault-injection hooks consulted in the solve
// loop and the variable allocator (nil removes them). See
// internal/faultinject for the site map.
func (s *Solver) SetFaults(f faultinject.Faults) { s.faults = f }

// BudgetErr returns the typed cause of the last Solve's Unknown
// result when a budget was exhausted, and nil when the solver was
// interrupted or stopped externally (or the last Solve was
// definitive). It is reset at the start of every Solve.
func (s *Solver) BudgetErr() *ErrBudget { return s.budgetErr }

// learntClauseOverhead approximates the per-clause bookkeeping bytes
// beyond the literal slice: the clause header plus two watcher
// entries.
const learntClauseOverhead = 96

// learntBytes approximates the memory held by the learned-clause
// database.
func (s *Solver) learntBytes() int64 {
	return s.learntLits*4 + int64(len(s.learnts))*learntClauseOverhead
}

// recountLearntLits recomputes the learnt-literal counter after a
// bulk change to the learnt database (reduceDB, clone construction).
func (s *Solver) recountLearntLits() {
	var n int64
	for _, c := range s.learnts {
		if c.deleted {
			continue
		}
		n += int64(len(c.lits))
	}
	s.learntLits = n
}

// checkBudgets is the periodic solve-loop checkpoint for the slow
// budget axes (deadline, propagations, memory) and the injected
// faults. It returns a non-nil cause when the solve must stop.
// solveStart/startProps snapshot the state at Solve entry.
func (s *Solver) checkBudgets(solveStart time.Time, startProps int64) *ErrBudget {
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return &ErrBudget{Kind: BudgetDeadline, Spent: int64(time.Since(solveStart))}
	}
	if s.propBudget > 0 {
		if spent := s.stats.Propagations - startProps; spent >= s.propBudget {
			return &ErrBudget{Kind: BudgetPropagations, Spent: spent}
		}
	}
	if s.memBudget > 0 {
		if b := s.learntBytes(); b > s.memBudget {
			// Try to free memory before giving up: halve the database
			// and stop the growth schedule at the current size.
			s.reduceDB()
			if ceiling := float64(len(s.learnts)) + 1; s.maxLearnts > ceiling {
				s.maxLearnts = ceiling
			}
			if b = s.learntBytes(); b > s.memBudget {
				return &ErrBudget{Kind: BudgetMemory, Spent: b}
			}
		}
	}
	if s.faults != nil {
		if s.faults.Fire(faultinject.SolvePanic) {
			panic(faultinject.Injected{Site: faultinject.SolvePanic})
		}
		if s.faults.Fire(faultinject.SolverBudget) {
			return &ErrBudget{Kind: BudgetInjected, Spent: s.stats.Conflicts}
		}
	}
	return nil
}

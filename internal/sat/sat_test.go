package sat

import (
	"math/rand"
	"testing"
)

func TestLitBasics(t *testing.T) {
	l := Pos(3)
	if l.Var() != 3 || l.Sign() {
		t.Errorf("Pos(3): var=%d sign=%v", l.Var(), l.Sign())
	}
	n := l.Not()
	if n.Var() != 3 || !n.Sign() {
		t.Errorf("Not: var=%d sign=%v", n.Var(), n.Sign())
	}
	if n.Not() != l {
		t.Error("double negation")
	}
	if MkLit(5, true) != Neg(5) || MkLit(5, false) != Pos(5) {
		t.Error("MkLit mismatch")
	}
}

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(Pos(a), Pos(b))
	s.AddClause(Neg(a))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if s.Value(a) {
		t.Error("a must be false")
	}
	if !s.Value(b) {
		t.Error("b must be true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(Pos(a))
	s.AddClause(Neg(a))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
	// Once unsat at root, it stays unsat.
	if got := s.Solve(); got != Unsat {
		t.Fatalf("second Solve = %v, want Unsat", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Error("adding the empty clause must report false")
	}
	if s.Solve() != Unsat {
		t.Error("empty clause must make formula Unsat")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(Pos(a), Neg(a)) {
		t.Error("tautology must be accepted")
	}
	if s.NumClauses() != 0 {
		t.Error("tautology must not be stored")
	}
	if s.Solve() != Sat {
		t.Error("tautology-only formula must be Sat")
	}
}

func TestDuplicateLiterals(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(Pos(a), Pos(a), Pos(b))
	s.AddClause(Neg(a), Neg(a))
	s.AddClause(Neg(b), Neg(b), Neg(b))
	if s.Solve() != Unsat {
		t.Error("want Unsat")
	}
}

// TestPigeonhole checks the classic hard UNSAT family: n+1 pigeons in
// n holes.
func TestPigeonhole(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		// p[i][j]: pigeon i sits in hole j.
		p := make([][]int, n+1)
		for i := range p {
			p[i] = make([]int, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			lits := make([]Lit, n)
			for j := 0; j < n; j++ {
				lits[j] = Pos(p[i][j])
			}
			s.AddClause(lits...)
		}
		for j := 0; j < n; j++ {
			for i1 := 0; i1 <= n; i1++ {
				for i2 := i1 + 1; i2 <= n; i2++ {
					s.AddClause(Neg(p[i1][j]), Neg(p[i2][j]))
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Fatalf("pigeonhole(%d) = %v, want Unsat", n, got)
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	c := s.NewVar()
	s.AddClause(Neg(a), Pos(b))
	s.AddClause(Neg(b), Pos(c))

	if got := s.Solve(Pos(a), Neg(c)); got != Unsat {
		t.Fatalf("a ∧ ¬c should be Unsat under implications, got %v", got)
	}
	// The formula itself must remain satisfiable afterwards.
	if got := s.Solve(Pos(a)); got != Sat {
		t.Fatalf("Solve(a) = %v, want Sat", got)
	}
	if !s.Value(b) || !s.Value(c) {
		t.Error("a must imply b and c")
	}
	if got := s.Solve(Neg(c), Pos(a)); got != Unsat {
		t.Fatalf("order of assumptions must not matter, got %v", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("unassumed formula must stay Sat, got %v", got)
	}
}

func TestIncrementalBlocking(t *testing.T) {
	// Enumerate all models of a 4-variable formula by blocking
	// clauses, the same loop the specification miner runs.
	s := New()
	vars := make([]int, 4)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// Constraint: v0 xor v1 (2 choices) and v2 or v3 (3 choices).
	s.AddClause(Pos(vars[0]), Pos(vars[1]))
	s.AddClause(Neg(vars[0]), Neg(vars[1]))
	s.AddClause(Pos(vars[2]), Pos(vars[3]))

	count := 0
	for s.Solve() == Sat {
		count++
		if count > 10 {
			t.Fatal("enumeration did not terminate")
		}
		block := make([]Lit, len(vars))
		for i, v := range vars {
			block[i] = MkLit(v, s.Value(v))
		}
		s.AddClause(block...)
	}
	if count != 6 {
		t.Errorf("model count = %d, want 6", count)
	}
}

func TestBudget(t *testing.T) {
	s := New()
	// A pigeonhole instance large enough to need > 1 conflict.
	n := 7
	p := make([][]int, n+1)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		lits := make([]Lit, n)
		for j := 0; j < n; j++ {
			lits[j] = Pos(p[i][j])
		}
		s.AddClause(lits...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(Neg(p[i1][j]), Neg(p[i2][j]))
			}
		}
	}
	s.SetBudget(1)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("budgeted Solve = %v, want Unknown", got)
	}
	s.SetBudget(0)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("unbudgeted Solve = %v, want Unsat", got)
	}
}

// bruteForce decides satisfiability of a small CNF by enumeration and
// returns whether it is satisfiable.
func bruteForce(numVars int, clauses [][]Lit) bool {
	for m := 0; m < 1<<numVars; m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				bit := m>>l.Var()&1 == 1
				if bit != l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandomAgainstBruteForce cross-checks the CDCL solver against
// exhaustive enumeration on random 3-SAT instances around the phase
// transition.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for iter := 0; iter < 300; iter++ {
		numVars := 3 + rng.Intn(10)
		numClauses := 1 + rng.Intn(5*numVars)
		clauses := make([][]Lit, numClauses)
		for i := range clauses {
			width := 1 + rng.Intn(3)
			c := make([]Lit, width)
			for j := range c {
				c[j] = MkLit(rng.Intn(numVars), rng.Intn(2) == 0)
			}
			clauses[i] = c
		}
		s := New()
		for v := 0; v < numVars; v++ {
			s.NewVar()
		}
		for _, c := range clauses {
			s.AddClause(c...)
		}
		got := s.Solve()
		want := bruteForce(numVars, clauses)
		if (got == Sat) != want {
			t.Fatalf("iter %d: solver=%v brute=%v (vars=%d clauses=%v)",
				iter, got, want, numVars, clauses)
		}
		if got == Sat {
			// Verify the model actually satisfies every clause.
			for ci, c := range clauses {
				ok := false
				for _, l := range c {
					if s.ValueLit(l) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: model does not satisfy clause %d", iter, ci)
				}
			}
		}
	}
}

// TestRandomIncremental checks that adding clauses between solves
// behaves like solving the union from scratch.
func TestRandomIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	for iter := 0; iter < 100; iter++ {
		numVars := 4 + rng.Intn(8)
		s := New()
		for v := 0; v < numVars; v++ {
			s.NewVar()
		}
		var all [][]Lit
		for batch := 0; batch < 4; batch++ {
			for k := 0; k < 1+rng.Intn(8); k++ {
				width := 1 + rng.Intn(3)
				c := make([]Lit, width)
				for j := range c {
					c[j] = MkLit(rng.Intn(numVars), rng.Intn(2) == 0)
				}
				all = append(all, c)
				s.AddClause(c...)
			}
			got := s.Solve()
			want := bruteForce(numVars, all)
			if (got == Sat) != want {
				t.Fatalf("iter %d batch %d: solver=%v brute=%v", iter, batch, got, want)
			}
			if got == Unsat {
				break
			}
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestStats(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(Pos(a), Pos(b))
	s.Solve()
	st := s.Stats()
	if st.Vars != 2 || st.Clauses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

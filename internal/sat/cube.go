package sat

// This file implements cube-and-conquer solving (Heule, Kullmann,
// Wieringa, Biere; HVC 2011): split the search space into 2^d cubes —
// all sign combinations of d chosen variables — and solve each cube
// as an assumption vector on a work-stealing pool of CloneFormula
// snapshots. The cubes jointly form a tautology over the split
// variables, so the formula is satisfiable iff some cube is: the
// first Sat wins and cancels the rest, while Unsat requires every
// cube refuted.

import (
	"sort"
	"sync"
	"sync/atomic"
)

// CubeSplitter picks splitting variables for cube-and-conquer.
type CubeSplitter struct {
	// Depth is the number of splitting variables; Split returns up to
	// 2^Depth cubes. Values above 16 are capped.
	Depth int
	// Prefer biases the choice toward these variables. CheckFence
	// passes the memory-order variables: they decide the interleaving
	// structure of an execution, so both sides of such a split carve
	// out genuinely different executions instead of one trivial and
	// one hard branch.
	Prefer []int
	// Avoid excludes these variables from splitting entirely.
	// CheckFence passes the model-selector variables of a sweep
	// encoding: they occur in many clauses (so they would out-score
	// real order variables) yet are fixed by the per-model assumptions,
	// making half of every such split trivially empty.
	Avoid []int
}

// Split scores every unassigned, non-eliminated variable by its
// occurrence balance over the live clause database — (pos+1)*(neg+1),
// so variables constraining both polarities rank highest — with a
// large boost for preferred variables, and returns all sign
// combinations of the top-Depth variables in binary-counting order.
// Variables that never occur are not split on; if fewer than Depth
// variables qualify the depth shrinks accordingly, and nil means no
// split is possible (the caller should solve directly).
func (cs CubeSplitter) Split(s *Solver) [][]Lit {
	d := cs.Depth
	if d > 16 {
		d = 16
	}
	if d <= 0 {
		return nil
	}
	n := len(s.assigns)
	pos := make([]int32, n)
	neg := make([]int32, n)
	count := func(cls []*clause) {
		for _, c := range cls {
			if c.deleted {
				continue
			}
			for _, l := range c.lits {
				if l.Sign() {
					neg[l.Var()]++
				} else {
					pos[l.Var()]++
				}
			}
		}
	}
	count(s.clauses)
	count(s.learnts)
	avoided := make(map[int]bool, len(cs.Avoid))
	for _, v := range cs.Avoid {
		avoided[v] = true
	}
	score := make([]int64, n)
	vars := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if s.assigns[v] != lUndef || s.eliminated[v] || pos[v]+neg[v] == 0 || avoided[v] {
			continue
		}
		score[v] = int64(pos[v]+1) * int64(neg[v]+1)
		vars = append(vars, v)
	}
	for _, v := range cs.Prefer {
		if v >= 0 && v < n && score[v] > 0 {
			score[v] <<= 20
		}
	}
	sort.Slice(vars, func(i, j int) bool {
		a, b := vars[i], vars[j]
		if score[a] != score[b] {
			return score[a] > score[b]
		}
		return a < b // deterministic tie-break
	})
	if len(vars) > d {
		vars = vars[:d]
	}
	d = len(vars)
	if d == 0 {
		return nil
	}
	cubes := make([][]Lit, 1<<uint(d))
	for mask := range cubes {
		cube := make([]Lit, d)
		for i, v := range vars {
			cube[i] = MkLit(v, mask>>uint(i)&1 == 1)
		}
		cubes[mask] = cube
	}
	return cubes
}

// CubeRun is the outcome of SolveCubes.
type CubeRun struct {
	Status Status
	// Winner holds the model when Status is Sat. It is one of the
	// cube clones (or base itself when no cubes were given); carry
	// the model back with AdoptModelFrom if base must expose it.
	Winner *Solver
	// Cubes and Refuted count the cubes given and proven Unsat.
	Cubes   int
	Refuted int
	// Work sums the search counters of all cube workers.
	Work Stats
	// Budget carries the typed budget exhaustion when Status is
	// Unknown because some worker ran out of budget.
	Budget *ErrBudget
	// Err carries the first recovered worker panic (as a
	// *faultinject.RecoveredPanic) when a worker crashed.
	Err error
}

// SolveCubes solves base's formula as a partition over cubes on a
// work-stealing pool of workers. Each worker owns one CloneFormula
// snapshot, reused across the cubes it claims — clauses learned
// refuting one cube are implied by the formula and so stay sound (and
// useful) for the next. Every cube is solved under assumptions
// followed by the cube's literals. The first Sat interrupts all other
// workers and wins; Unsat requires every cube refuted; anything else
// (interrupt, stop predicate, budget) yields Unknown. A worker that
// panics (injected fault, genuine bug) records the recovered panic in
// Err and stops claiming cubes instead of crashing the process.
//
// With no cubes, base is solved directly (serial fallback).
func SolveCubes(base *Solver, cubes [][]Lit, workers int, assumptions ...Lit) CubeRun {
	run := CubeRun{Cubes: len(cubes)}
	if len(cubes) == 0 {
		run.Status = base.Solve(assumptions...)
		if run.Status == Sat {
			run.Winner = base
		} else if run.Status == Unknown {
			run.Budget = base.BudgetErr()
		}
		return run
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(cubes) {
		workers = len(cubes)
	}
	// Clone serially: CloneFormula mutates the receiver (backtrack +
	// propagate), so concurrent clones of one base would race.
	clones := make([]*Solver, workers)
	for i := range clones {
		clones[i] = base.CloneFormula()
	}
	var (
		next    atomic.Int64
		refuted atomic.Int64
		mu      sync.Mutex
		winner  *Solver
		panics  = make([]error, workers)
		wg      sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, c *Solver) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[w] = RecoverAsError(p)
				}
			}()
			var buf []Lit
			for {
				i := int(next.Add(1))
				if i >= len(cubes) {
					return
				}
				buf = append(append(buf[:0], assumptions...), cubes[i]...)
				switch c.Solve(buf...) {
				case Sat:
					mu.Lock()
					if winner == nil {
						winner = c
						for _, o := range clones {
							if o != c {
								o.Interrupt()
							}
						}
					}
					mu.Unlock()
					return
				case Unsat:
					refuted.Add(1)
				default:
					// Interrupted or stopped: leave the remaining
					// cubes unclaimed; the verdict degrades to
					// Unknown unless another worker found Sat.
					return
				}
			}
		}(w, clones[w])
	}
	wg.Wait()
	run.Refuted = int(refuted.Load())
	for _, c := range clones {
		st := c.Stats()
		run.Work.Conflicts += st.Conflicts
		run.Work.Decisions += st.Decisions
		run.Work.Propagations += st.Propagations
		run.Work.Restarts += st.Restarts
		run.Work.Learnts += st.Learnts
		run.Work.VivifiedClauses += st.VivifiedClauses
		run.Work.VivifiedLits += st.VivifiedLits
		run.Work.SubsumedLearnts += st.SubsumedLearnts
		run.Work.ChronoBacktracks += st.ChronoBacktracks
	}
	switch {
	case winner != nil:
		run.Status = Sat
		run.Winner = winner
	case run.Refuted == len(cubes):
		run.Status = Unsat
	default:
		run.Status = Unknown
		for _, c := range clones {
			if be := c.BudgetErr(); be != nil {
				run.Budget = be
				break
			}
		}
	}
	for _, p := range panics {
		if p != nil {
			run.Err = p
			break
		}
	}
	return run
}

package sat

import (
	"errors"
	"testing"
	"time"

	"checkfence/internal/faultinject"
)

// hardInstance loads a pigeonhole instance hard enough that no budget
// under test lets the solver finish.
func hardInstance(s *Solver) {
	pigeonholeInstance(s, 9)
}

func TestConflictBudgetTyped(t *testing.T) {
	s := New()
	hardInstance(s)
	s.SetBudget(50)
	if st := s.Solve(); st != Unknown {
		t.Fatalf("status = %v, want Unknown", st)
	}
	be := s.BudgetErr()
	if be == nil {
		t.Fatal("BudgetErr() = nil after conflict budget exhaustion")
	}
	if be.Kind != BudgetConflicts {
		t.Errorf("Kind = %v, want conflicts", be.Kind)
	}
	if be.Spent < 50 {
		t.Errorf("Spent = %d, want >= 50", be.Spent)
	}
	if !errors.Is(be, ErrBudgetExhausted) {
		t.Error("errors.Is(be, ErrBudgetExhausted) = false")
	}
}

func TestDeadlineBudget(t *testing.T) {
	s := New()
	hardInstance(s)
	s.SetDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("status = %v, want Unknown", st)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline stop took %v; check cadence is broken", elapsed)
	}
	be := s.BudgetErr()
	if be == nil || be.Kind != BudgetDeadline {
		t.Fatalf("BudgetErr() = %v, want deadline cause", be)
	}
}

func TestDeadlineAlreadyPast(t *testing.T) {
	s := New()
	hardInstance(s)
	s.SetDeadline(time.Now().Add(-time.Second))
	if st := s.Solve(); st != Unknown {
		t.Fatalf("status = %v, want Unknown", st)
	}
	if be := s.BudgetErr(); be == nil || be.Kind != BudgetDeadline {
		t.Fatalf("BudgetErr() = %v, want deadline cause", be)
	}
}

func TestPropagationBudget(t *testing.T) {
	s := New()
	hardInstance(s)
	s.SetPropagationBudget(500)
	if st := s.Solve(); st != Unknown {
		t.Fatalf("status = %v, want Unknown", st)
	}
	be := s.BudgetErr()
	if be == nil || be.Kind != BudgetPropagations {
		t.Fatalf("BudgetErr() = %v, want propagations cause", be)
	}
	if be.Spent < 500 {
		t.Errorf("Spent = %d, want >= 500", be.Spent)
	}
}

func TestMemBudget(t *testing.T) {
	s := New()
	hardInstance(s)
	// ~5 learnt clauses' worth: the forced reduction cannot get the
	// database under this on a pigeonhole instance mid-search.
	s.SetMemBudget(512)
	if st := s.Solve(); st != Unknown {
		t.Fatalf("status = %v, want Unknown", st)
	}
	be := s.BudgetErr()
	if be == nil || be.Kind != BudgetMemory {
		t.Fatalf("BudgetErr() = %v, want memory cause", be)
	}
	if be.Spent <= 512 {
		t.Errorf("Spent = %d, want > budget", be.Spent)
	}
}

// TestBudgetErrNilOnInterrupt: an interrupted solve is cancellation,
// not exhaustion — BudgetErr must stay nil so callers can tell them
// apart.
func TestBudgetErrNilOnInterrupt(t *testing.T) {
	s := New()
	hardInstance(s)
	done := make(chan Status, 1)
	go func() { done <- s.Solve() }()
	time.Sleep(20 * time.Millisecond)
	s.Interrupt()
	if st := <-done; st != Unknown {
		t.Fatalf("status = %v, want Unknown", st)
	}
	if be := s.BudgetErr(); be != nil {
		t.Fatalf("BudgetErr() = %v after Interrupt, want nil", be)
	}
}

// TestBudgetClearedOnResolve: lifting the budget and re-solving on the
// same solver reaches a definitive verdict and resets BudgetErr — the
// solver state stays reusable after exhaustion.
func TestBudgetClearedOnResolve(t *testing.T) {
	s := New()
	pigeonholeInstance(s, 5)
	s.SetBudget(1)
	if st := s.Solve(); st != Unknown {
		t.Fatalf("status = %v, want Unknown", st)
	}
	if s.BudgetErr() == nil {
		t.Fatal("BudgetErr() = nil after exhaustion")
	}
	s.SetBudget(0)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status after lifting budget = %v, want Unsat", st)
	}
	if be := s.BudgetErr(); be != nil {
		t.Fatalf("BudgetErr() = %v after definitive solve, want nil", be)
	}
}

// TestInjectedBudget: the SolverBudget fault site forces a typed
// injected exhaustion out of Solve.
func TestInjectedBudget(t *testing.T) {
	s := New()
	hardInstance(s)
	s.SetFaults(&faultinject.Always{Sites: []faultinject.Site{faultinject.SolverBudget}})
	if st := s.Solve(); st != Unknown {
		t.Fatalf("status = %v, want Unknown", st)
	}
	if be := s.BudgetErr(); be == nil || be.Kind != BudgetInjected {
		t.Fatalf("BudgetErr() = %v, want injected cause", be)
	}
}

// TestInjectedSolvePanic: the SolvePanic site panics inside the search
// loop with the typed Injected value.
func TestInjectedSolvePanic(t *testing.T) {
	s := New()
	hardInstance(s)
	s.SetFaults(&faultinject.Always{Sites: []faultinject.Site{faultinject.SolvePanic}})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("Solve did not panic under an armed SolvePanic site")
		}
		if site := faultinject.InjectedSite(p); site != faultinject.SolvePanic {
			t.Fatalf("recovered %v, want injected solve-panic", p)
		}
	}()
	s.Solve()
}

// TestInjectedAllocPanic: the SolverAlloc site panics in NewVar.
func TestInjectedAllocPanic(t *testing.T) {
	s := New()
	s.SetFaults(&faultinject.Always{Sites: []faultinject.Site{faultinject.SolverAlloc}})
	defer func() {
		if site := faultinject.InjectedSite(recover()); site != faultinject.SolverAlloc {
			t.Fatal("NewVar did not raise the injected alloc panic")
		}
	}()
	s.NewVar()
}

// TestSolveSharedBudget: when every portfolio member exhausts its
// (clone-inherited) conflict budget, SolveShared reports the typed
// cause instead of a bare Unknown.
func TestSolveSharedBudget(t *testing.T) {
	base := New()
	hardInstance(base)
	base.SetBudget(50)
	p := Portfolio{Configs: PortfolioConfigs(3)}
	run := p.SolveShared(base)
	if run.Status != Unknown {
		t.Fatalf("status = %v, want Unknown", run.Status)
	}
	if run.Budget == nil || run.Budget.Kind != BudgetConflicts {
		t.Fatalf("Budget = %v, want conflicts cause", run.Budget)
	}
}

// TestSolveSharedPanicLoses: a member whose solve panics loses the
// race; the surviving members still deliver the verdict.
func TestSolveSharedPanicLoses(t *testing.T) {
	base := New()
	pigeonholeInstance(base, 5)
	configs := PortfolioConfigs(3)
	// Arm only member 1: Script fires once globally, and each member
	// has its own Faults value so exactly one member crashes.
	configs[1].Faults = &faultinject.Always{Sites: []faultinject.Site{faultinject.SolvePanic}}
	p := Portfolio{Configs: configs}
	run := p.SolveShared(base)
	if run.Status != Unsat {
		t.Fatalf("status = %v, want Unsat despite one crashed member", run.Status)
	}
}

// TestSolveSharedAllPanic: when every member crashes, the recovered
// panic surfaces as SharedRun.Panic instead of killing the process.
func TestSolveSharedAllPanic(t *testing.T) {
	base := New()
	pigeonholeInstance(base, 5)
	configs := PortfolioConfigs(2)
	f := &faultinject.Always{Sites: []faultinject.Site{faultinject.SolvePanic}}
	configs[0].Faults = f
	configs[1].Faults = f
	p := Portfolio{Configs: configs}
	run := p.SolveShared(base)
	if run.Status != Unknown {
		t.Fatalf("status = %v, want Unknown", run.Status)
	}
	if run.Panic == nil {
		t.Fatal("Panic = nil; crashed members were not recorded")
	}
	var rp *faultinject.RecoveredPanic
	if !errors.As(run.Panic, &rp) {
		t.Fatalf("Panic = %v, want a *RecoveredPanic in the chain", run.Panic)
	}
}

// TestSolveCubesBudget: cube workers inherit base's budget via
// CloneFormula, and exhaustion surfaces as CubeRun.Budget.
func TestSolveCubesBudget(t *testing.T) {
	base := New()
	hardInstance(base)
	base.SetBudget(20)
	cubes := CubeSplitter{Depth: 2}.Split(base)
	if len(cubes) == 0 {
		t.Fatal("no cubes")
	}
	run := SolveCubes(base, cubes, 2)
	if run.Status != Unknown {
		t.Fatalf("status = %v, want Unknown", run.Status)
	}
	if run.Budget == nil || run.Budget.Kind != BudgetConflicts {
		t.Fatalf("Budget = %v, want conflicts cause", run.Budget)
	}
}

// TestSolveCubesPanicRecovered: a panicking cube worker is recorded in
// CubeRun.Err; the process survives.
func TestSolveCubesPanicRecovered(t *testing.T) {
	base := New()
	pigeonholeInstance(base, 5)
	base.SetFaults(&faultinject.Always{Sites: []faultinject.Site{faultinject.SolvePanic}})
	cubes := CubeSplitter{Depth: 2}.Split(base)
	run := SolveCubes(base, cubes, 2)
	if run.Err == nil {
		t.Fatal("Err = nil; worker panics were not recovered")
	}
	if site := faultinject.InjectedSite(run.Err.(*faultinject.RecoveredPanic)); site != faultinject.SolvePanic {
		t.Fatalf("Err = %v, want injected solve-panic", run.Err)
	}
	if run.Status != Unknown {
		t.Fatalf("status = %v, want Unknown when all workers crash", run.Status)
	}
}

// TestCloneCarriesBudgets: CloneFormula copies the budget axes, so a
// clone stops exactly like its source would.
func TestCloneCarriesBudgets(t *testing.T) {
	base := New()
	hardInstance(base)
	base.SetBudget(30)
	base.SetPropagationBudget(1 << 40)
	c := base.CloneFormula()
	if st := c.Solve(); st != Unknown {
		t.Fatalf("clone status = %v, want Unknown", st)
	}
	if be := c.BudgetErr(); be == nil || be.Kind != BudgetConflicts {
		t.Fatalf("clone BudgetErr() = %v, want conflicts cause", be)
	}
}

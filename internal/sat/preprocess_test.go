package sat

import (
	"math/rand"
	"testing"
)

func newVars(s *Solver, n int) []int {
	vs := make([]int, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	return vs
}

func TestPreprocessSubsumption(t *testing.T) {
	s := New()
	v := newVars(s, 3)
	s.AddClause(Pos(v[0]), Pos(v[1]))
	s.AddClause(Pos(v[0]), Pos(v[1]), Pos(v[2]))
	for _, x := range v {
		s.Freeze(x)
	}
	if !s.Preprocess() {
		t.Fatal("preprocess reported unsat")
	}
	st := s.Stats()
	if st.ClausesSubsumed != 1 {
		t.Errorf("ClausesSubsumed = %d, want 1", st.ClausesSubsumed)
	}
	if s.NumClauses() != 1 {
		t.Errorf("NumClauses = %d, want 1", s.NumClauses())
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
}

func TestPreprocessSelfSubsumingResolution(t *testing.T) {
	s := New()
	v := newVars(s, 3)
	// (a ∨ b) and (¬a ∨ b ∨ c): resolving on a strengthens the second
	// clause to (b ∨ c).
	s.AddClause(Pos(v[0]), Pos(v[1]))
	s.AddClause(Neg(v[0]), Pos(v[1]), Pos(v[2]))
	for _, x := range v {
		s.Freeze(x)
	}
	if !s.Preprocess() {
		t.Fatal("preprocess reported unsat")
	}
	if st := s.Stats(); st.ClausesStrengthened != 1 {
		t.Errorf("ClausesStrengthened = %d, want 1", st.ClausesStrengthened)
	}
	// b=false, c=false must now force a conflict with a=false (the
	// strengthened clause (b ∨ c) is falsified).
	if got := s.Solve(Neg(v[1]), Neg(v[2])); got != Unsat {
		t.Errorf("Solve(¬b,¬c) = %v, want Unsat", got)
	}
	if got := s.Solve(Pos(v[1])); got != Sat {
		t.Errorf("Solve(b) = %v, want Sat", got)
	}
}

func TestPreprocessEliminatesChain(t *testing.T) {
	// A chain of equivalences x0 ↔ x1 ↔ ... ↔ xn with only the
	// endpoints frozen: every interior variable is eliminable, and the
	// endpoint correlation must survive.
	const n = 10
	s := New()
	v := newVars(s, n+1)
	for i := 0; i < n; i++ {
		s.AddClause(Neg(v[i]), Pos(v[i+1]))
		s.AddClause(Pos(v[i]), Neg(v[i+1]))
	}
	s.Freeze(v[0])
	s.Freeze(v[n])
	if !s.Preprocess() {
		t.Fatal("preprocess reported unsat")
	}
	st := s.Stats()
	if st.VarsEliminated == 0 {
		t.Error("no variables eliminated from an interior-only chain")
	}
	if got := s.Solve(Pos(v[0]), Neg(v[n])); got != Unsat {
		t.Errorf("Solve(x0, ¬xn) = %v, want Unsat", got)
	}
	if got := s.Solve(Pos(v[0])); got != Sat {
		t.Fatalf("Solve(x0) = %v, want Sat", got)
	}
	if !s.Value(v[n]) {
		t.Error("xn should be forced true by x0 through the chain")
	}
	// Model extension must reconstruct the interior values too.
	for i := 1; i < n; i++ {
		if !s.Value(v[i]) {
			t.Errorf("interior x%d = false under x0=true, want true", i)
		}
	}
}

func TestPreprocessFrozenExempt(t *testing.T) {
	s := New()
	v := newVars(s, 4)
	s.AddClause(Neg(v[0]), Pos(v[1]))
	s.AddClause(Neg(v[1]), Pos(v[2]))
	s.AddClause(Neg(v[2]), Pos(v[3]))
	for _, x := range v {
		s.Freeze(x)
	}
	if !s.Preprocess() {
		t.Fatal("preprocess reported unsat")
	}
	if st := s.Stats(); st.VarsEliminated != 0 {
		t.Errorf("VarsEliminated = %d, want 0 (all frozen)", st.VarsEliminated)
	}
	for _, x := range v {
		if s.Eliminated(x) {
			t.Errorf("frozen variable %d eliminated", x)
		}
	}
}

func TestPreprocessUnsat(t *testing.T) {
	s := New()
	v := newVars(s, 2)
	s.AddClause(Pos(v[0]), Pos(v[1]))
	s.AddClause(Pos(v[0]), Neg(v[1]))
	s.AddClause(Neg(v[0]), Pos(v[1]))
	s.AddClause(Neg(v[0]), Neg(v[1]))
	s.Preprocess() // may or may not detect unsat itself
	if got := s.Solve(); got != Unsat {
		t.Errorf("Solve = %v, want Unsat", got)
	}
}

// randomCNF generates a random k-CNF instance over n variables.
func randomCNF(rng *rand.Rand, n, clauses, k int) [][]Lit {
	out := make([][]Lit, clauses)
	for i := range out {
		cl := make([]Lit, 0, k)
		used := map[int]bool{}
		for len(cl) < k {
			v := rng.Intn(n)
			if used[v] {
				continue
			}
			used[v] = true
			cl = append(cl, MkLit(v, rng.Intn(2) == 1))
		}
		out[i] = cl
	}
	return out
}

func TestPreprocessRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 8 + rng.Intn(20)
		// Around the 3-SAT phase transition so both statuses occur.
		m := int(float64(n) * (3.0 + rng.Float64()*2.5))
		cnf := randomCNF(rng, n, m, 3)

		plain := New()
		newVars(plain, n)
		pre := New()
		newVars(pre, n)
		okPlain, okPre := true, true
		for _, cl := range cnf {
			okPlain = plain.AddClause(cl...) && okPlain
			okPre = pre.AddClause(cl...) && okPre
		}
		pre.Preprocess()

		got, want := pre.Solve(), plain.Solve()
		if got != want {
			t.Fatalf("iter %d: preprocessed %v, plain %v", iter, got, want)
		}
		if got != Sat {
			continue
		}
		// The extended model must satisfy every ORIGINAL clause, not
		// just the preprocessed database.
		for ci, cl := range cnf {
			sat := false
			for _, l := range cl {
				if pre.ValueLit(l) {
					sat = true
					break
				}
			}
			if !sat {
				t.Fatalf("iter %d: extended model falsifies original clause %d: %v", iter, ci, cl)
			}
		}
	}
}

func TestPreprocessIncrementalEnumeration(t *testing.T) {
	// Enumerate all models over a frozen projection, with and without
	// preprocessing; the mining loop depends on this exact pattern.
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		n := 10 + rng.Intn(10)
		m := int(float64(n) * 2.5)
		cnf := randomCNF(rng, n, m, 3)
		proj := []int{0, 1, 2, 3}

		enumerate := func(preprocess bool) map[uint]bool {
			s := New()
			newVars(s, n)
			for _, cl := range cnf {
				s.AddClause(cl...)
			}
			if preprocess {
				for _, v := range proj {
					s.Freeze(v)
				}
				s.Preprocess()
			}
			models := map[uint]bool{}
			for s.Solve() == Sat {
				var key uint
				block := make([]Lit, len(proj))
				for i, v := range proj {
					if s.Value(v) {
						key |= 1 << uint(i)
					}
					block[i] = MkLit(v, s.Value(v))
				}
				models[key] = true
				if !s.AddClause(block...) {
					break
				}
				if len(models) > 1<<len(proj) {
					t.Fatal("enumeration did not terminate")
				}
			}
			return models
		}

		plain := enumerate(false)
		pre := enumerate(true)
		if len(plain) != len(pre) {
			t.Fatalf("iter %d: projection count differs: plain %d, preprocessed %d", iter, len(plain), len(pre))
		}
		for k := range plain {
			if !pre[k] {
				t.Fatalf("iter %d: projection %b missing after preprocessing", iter, k)
			}
		}
	}
}

func TestAddClauseEliminatedPanics(t *testing.T) {
	s := New()
	v := newVars(s, 3)
	s.AddClause(Neg(v[0]), Pos(v[1]))
	s.AddClause(Neg(v[1]), Pos(v[2]))
	s.Freeze(v[0])
	s.Freeze(v[2])
	if !s.Preprocess() {
		t.Fatal("preprocess reported unsat")
	}
	if !s.Eliminated(v[1]) {
		t.Skip("middle variable not eliminated; nothing to check")
	}
	defer func() {
		if recover() == nil {
			t.Error("AddClause over an eliminated variable did not panic")
		}
	}()
	s.AddClause(Pos(v[1]))
}

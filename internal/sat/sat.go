// Package sat implements a CDCL (conflict-driven clause learning)
// propositional satisfiability solver in the style of Chaff/MiniSat.
//
// CheckFence's PLDI'07 prototype delegated to zChaff; this package is
// the from-scratch replacement. It provides the two capabilities the
// paper's method needs: solving CNF formulas with models, and
// incremental solving (clauses may be added between Solve calls, which
// the specification-mining loop uses for blocking clauses, and solving
// under assumptions, which the lazy loop-bound probes use).
//
// Techniques: two-watched-literal propagation, first-UIP conflict
// analysis with recursive clause minimization, VSIDS variable activity
// with phase saving, Luby restarts, and LBD-based learned-clause
// database reduction.
package sat

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"checkfence/internal/faultinject"
)

// Lit is a literal: variable index shifted left once, low bit set for
// negative polarity.
type Lit int32

// MkLit builds a literal from a variable index and a sign
// (sign=true means negated).
func MkLit(v int, sign bool) Lit {
	l := Lit(v << 1)
	if sign {
		l |= 1
	}
	return l
}

// Pos returns the positive literal of variable v.
func Pos(v int) Lit { return Lit(v << 1) }

// Neg returns the negative literal of variable v.
func Neg(v int) Lit { return Lit(v<<1) | 1 }

// Not negates the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Var returns the variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negative.
func (l Lit) Sign() bool { return l&1 == 1 }

func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// lbool is a three-valued boolean.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

// Status is the result of a Solve call.
type Status int

const (
	// Unknown means the solver stopped before reaching a verdict
	// (budget exhausted).
	Unknown Status = iota
	// Sat means a model was found.
	Sat
	// Unsat means the formula (under the given assumptions) is
	// unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
	lbd      int

	// shared marks a clause imported from another portfolio member;
	// sharedUsed latches once it participates in a conflict, so
	// SharedUseful counts each imported clause at most once.
	shared     bool
	sharedUsed bool

	// Inprocessing state (see inprocess.go): the clause's tier in the
	// learnt database, whether it took part in a conflict since the
	// last reduction (resets there), and whether it has been logically
	// deleted (subsumed or vivified away) pending the next purge.
	tier    int8
	used    bool
	deleted bool
}

type watcher struct {
	c       *clause
	blocker Lit
}

type varOrder struct {
	heap     []int // variable indices
	indices  []int // position in heap, -1 if absent
	activity []float64
}

func (o *varOrder) less(a, b int) bool { return o.activity[a] > o.activity[b] }

func (o *varOrder) push(v int) {
	if o.indices[v] >= 0 {
		return
	}
	o.heap = append(o.heap, v)
	o.indices[v] = len(o.heap) - 1
	o.up(len(o.heap) - 1)
}

func (o *varOrder) up(i int) {
	v := o.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !o.less(v, o.heap[p]) {
			break
		}
		o.heap[i] = o.heap[p]
		o.indices[o.heap[i]] = i
		i = p
	}
	o.heap[i] = v
	o.indices[v] = i
}

func (o *varOrder) down(i int) {
	v := o.heap[i]
	n := len(o.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && o.less(o.heap[c+1], o.heap[c]) {
			c++
		}
		if !o.less(o.heap[c], v) {
			break
		}
		o.heap[i] = o.heap[c]
		o.indices[o.heap[i]] = i
		i = c
	}
	o.heap[i] = v
	o.indices[v] = i
}

func (o *varOrder) pop() int {
	v := o.heap[0]
	last := o.heap[len(o.heap)-1]
	o.heap = o.heap[:len(o.heap)-1]
	o.indices[v] = -1
	if len(o.heap) > 0 {
		o.heap[0] = last
		o.indices[last] = 0
		o.down(0)
	}
	return v
}

func (o *varOrder) empty() bool { return len(o.heap) == 0 }

// rebuild re-heapifies after a bulk activity rewrite.
func (o *varOrder) rebuild() {
	for i := len(o.heap)/2 - 1; i >= 0; i-- {
		o.down(i)
	}
}

// Stats reports solver work counters. The Pre* and preprocessing
// fields are zero unless Preprocess ran.
type Stats struct {
	Vars         int
	Clauses      int
	Learnts      int
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64

	// Preprocessing counters (see Preprocess).
	PreVars             int
	PreClauses          int
	VarsEliminated      int
	ClausesSubsumed     int
	ClausesStrengthened int
	PreprocessTime      time.Duration

	// Clause-sharing traffic (see SetShare): learnt clauses offered
	// to the pool, foreign clauses attached after root simplification,
	// and attached foreign clauses that later took part in a conflict
	// (each counted once).
	SharedExported int64
	SharedImported int64
	SharedUseful   int64

	// Inprocessing counters (see inprocess.go); zero when the layer is
	// off. VivifiedLits counts literals removed from VivifiedClauses
	// clauses; SubsumedLearnts counts learnt clauses deleted by
	// on-the-fly backward subsumption; ChronoBacktracks counts
	// conflicts resolved by a chronological (one-level) backtrack.
	// TierCore/TierMid/TierLocal snapshot the learnt-database tiers.
	VivifiedClauses  int64
	VivifiedLits     int64
	SubsumedLearnts  int64
	ChronoBacktracks int64
	TierCore         int
	TierMid          int
	TierLocal        int
}

// Solver is an incremental CDCL SAT solver. The zero value is not
// usable; construct with New.
type Solver struct {
	clauses []*clause
	learnts []*clause
	watches [][]watcher // indexed by literal

	assigns  []lbool
	phase    []bool // saved phases
	levels   []int
	reasons  []*clause
	trail    []Lit
	trailLim []int
	qhead    int

	order  varOrder
	varInc float64
	claInc float64

	ok       bool // false once an empty clause is derived at level 0
	stats    Stats
	budget   int64 // max conflicts per Solve; 0 = unlimited
	seen     []bool
	analyzeT []Lit // temporary for minimization

	// Resource budgets beyond the conflict cap (see budget.go):
	// wall-clock deadline, propagation cap, and the approximate byte
	// ceiling on the learned-clause database tracked via learntLits.
	// budgetErr records why the last Solve returned Unknown when a
	// budget was the cause; faults is the optional fault-injection
	// hook.
	deadline   time.Time
	propBudget int64
	memBudget  int64
	learntLits int64
	budgetErr  *ErrBudget
	faults     faultinject.Faults

	// lbdStamp/lbdGen implement the reusable stamp array of
	// computeLBD: lbdStamp[level] == lbdGen marks a decision level as
	// counted for the current clause, avoiding a map allocation per
	// learnt clause.
	lbdStamp []int64
	lbdGen   int64

	// Inprocessing state (see inprocess.go): the knob block, the learnt
	// antecedents of the current conflict (for on-the-fly subsumption),
	// a literal stamp array for the subset test, and scratch buffers
	// for vivification and the tiered reduceDB.
	inpro     inprocessConfig
	ante      []*clause
	litStamp  []int64
	litGen    int64
	vivTmp    []Lit
	vivOut    []Lit
	reduceTmp []*clause

	// interrupted is the asynchronous stop flag set by Interrupt();
	// stop is an optional external stop predicate (e.g. a context
	// check). Both are polled in the solve loop.
	interrupted atomic.Bool
	stop        func() bool

	// adopted, when non-nil, overlays a foreign model (from
	// AdoptModelFrom) over Value/ValueLit; the next Solve discards it.
	adopted []lbool

	// Clause-sharing hooks (see SetShare). shareExport receives each
	// learnt clause with LBD <= shareLBD; shareImport is drained at
	// restart boundaries and, because easy formulas may never satisfy a
	// restart policy at all, at a forced cadence of shareEvery conflicts
	// (the solver hops to the root for the import, which is just an
	// extra restart).
	shareLBD    int
	shareEvery  int64
	shareExport func(lits []Lit, lbd int)
	shareImport func(add func(lits []Lit, lbd int))

	maxLearnts   float64
	learntGrowth float64

	// Glucose-style restart state: exponential moving averages of
	// learnt-clause LBD, fast and slow.
	lbdFast float64
	lbdSlow float64

	restartPolicy RestartPolicy

	// Preprocessing state (see preprocess.go). frozen marks variables
	// exempt from elimination; eliminated marks variables removed by
	// bounded variable elimination; elimStack records their original
	// clauses for model extension; extVals overlays model values for
	// eliminated variables after a Sat result.
	frozen     []bool
	eliminated []bool
	elimStack  []elimEntry
	extVals    []lbool
	preStats   preStats
}

// elimEntry records one eliminated variable together with the
// original clauses that mentioned it, in elimination order. Model
// extension replays the stack in reverse.
type elimEntry struct {
	v       int
	clauses [][]Lit
}

type preStats struct {
	preVars             int
	preClauses          int
	varsEliminated      int
	clausesSubsumed     int
	clausesStrengthened int
	preprocessTime      time.Duration
}

// RestartPolicy selects the solver's restart schedule.
type RestartPolicy int

// Restart policies. Glucose (LBD-driven) is the default; Luby is kept
// for the ablation benchmark.
const (
	RestartGlucose RestartPolicy = iota
	RestartLuby
)

// SetRestartPolicy selects the restart schedule (ablation knob).
func (s *Solver) SetRestartPolicy(p RestartPolicy) { s.restartPolicy = p }

// SetDefaultPhase sets the saved phase of every current variable, so
// the first decision on a variable assigns it this polarity. The
// default is false; inverting it is one of the portfolio
// diversification axes. Call after the formula is built and before
// Solve (phase saving overwrites it as search proceeds).
func (s *Solver) SetDefaultPhase(polarity bool) {
	for i := range s.phase {
		s.phase[i] = polarity
	}
}

// RandomizeActivity assigns each variable a small pseudo-random
// initial VSIDS activity (deterministic in seed), permuting the
// initial branching order without outweighing real conflict activity.
// A second portfolio diversification axis.
func (s *Solver) RandomizeActivity(seed int64) {
	// xorshift64*; any nonzero state works.
	x := uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	for v := range s.order.activity {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		// Scale into [0, 1e-3): far below the first conflict bump
		// (varInc starts at 1.0), so it only breaks ties.
		s.order.activity[v] = float64(x>>11) / float64(1<<53) * 1e-3
	}
	s.order.rebuild()
}

// New returns an empty solver. Inprocessing (see inprocess.go) is on
// by default; SetInprocess(false) disables it.
func New() *Solver {
	return &Solver{
		ok:           true,
		varInc:       1.0,
		claInc:       1.0,
		maxLearnts:   4000,
		learntGrowth: 1.3,
		inpro:        defaultInprocess(),
	}
}

// NewVar introduces a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	if s.faults != nil && s.faults.Fire(faultinject.SolverAlloc) {
		// Simulated allocation failure: a real one would be a runtime
		// panic here too, so the hook panics and relies on the
		// isolation layer above to convert it into a typed error.
		panic(faultinject.Injected{Site: faultinject.SolverAlloc})
	}
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.phase = append(s.phase, false)
	s.levels = append(s.levels, 0)
	s.reasons = append(s.reasons, nil)
	s.watches = append(s.watches, nil, nil)
	s.order.activity = append(s.order.activity, 0)
	s.order.indices = append(s.order.indices, -1)
	s.order.push(v)
	s.seen = append(s.seen, false)
	s.frozen = append(s.frozen, false)
	s.eliminated = append(s.eliminated, false)
	s.extVals = append(s.extVals, lUndef)
	s.stats.Vars++
	return v
}

// Freeze exempts a variable from elimination during Preprocess.
// Callers must freeze every variable that later clauses, assumptions,
// or model reads may reference — in CheckFence these are the error
// literal, the observation bits, and the memory-order variables of
// the incremental mining loop.
func (s *Solver) Freeze(v int) { s.frozen[v] = true }

// Eliminated reports whether Preprocess removed the variable by
// bounded variable elimination. Its model value is still available
// through Value (reconstructed by model extension), but it must not
// appear in new clauses or assumptions.
func (s *Solver) Eliminated(v int) bool { return s.eliminated[v] }

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses added (after
// level-0 simplification of units).
func (s *Solver) NumClauses() int { return s.stats.Clauses }

// Stats returns a snapshot of the work counters.
func (s *Solver) Stats() Stats {
	st := s.stats
	st.Learnts = 0
	for _, c := range s.learnts {
		if c.deleted {
			continue
		}
		st.Learnts++
		switch c.tier {
		case tierCore:
			st.TierCore++
		case tierMid:
			st.TierMid++
		default:
			st.TierLocal++
		}
	}
	st.PreVars = s.preStats.preVars
	st.PreClauses = s.preStats.preClauses
	st.VarsEliminated = s.preStats.varsEliminated
	st.ClausesSubsumed = s.preStats.clausesSubsumed
	st.ClausesStrengthened = s.preStats.clausesStrengthened
	st.PreprocessTime = s.preStats.preprocessTime
	return st
}

// SetBudget limits the number of conflicts a single Solve may use
// (0 = unlimited). When exhausted, Solve returns Unknown.
func (s *Solver) SetBudget(conflicts int64) { s.budget = conflicts }

// Interrupt asynchronously stops the current (and any subsequent)
// Solve, which returns Unknown at its next check point. It is safe to
// call from another goroutine while Solve runs; the flag is sticky
// until ClearInterrupt, so a multi-Solve procedure (mining, the
// two-phase inclusion check) stops as a whole. All clauses learned
// before the interruption remain attached and sound.
func (s *Solver) Interrupt() { s.interrupted.Store(true) }

// ClearInterrupt re-arms the solver after an Interrupt; following
// Solve calls run normally.
func (s *Solver) ClearInterrupt() { s.interrupted.Store(false) }

// Interrupted reports whether Interrupt has been called without a
// matching ClearInterrupt.
func (s *Solver) Interrupted() bool { return s.interrupted.Load() }

// SetStop installs an external stop predicate polled periodically in
// the solve loop (every few hundred iterations, so it may be modestly
// expensive, e.g. a context or deadline check). A true return makes
// Solve return Unknown. nil removes the predicate. Unlike Interrupt,
// the predicate is consulted fresh on every Solve.
func (s *Solver) SetStop(stop func() bool) { s.stop = stop }

func (s *Solver) value(l Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause. It may be called before or between Solve
// calls (the solver backtracks to the root level first). Returns false
// if the formula is now trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)

	// Normalize: sort, drop duplicate/false literals, detect tautology.
	ls := make([]Lit, len(lits))
	copy(ls, lits)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = -1
	for _, l := range ls {
		if int(l)>>1 >= len(s.assigns) {
			panic(fmt.Sprintf("sat: literal %v references unknown variable", l))
		}
		if s.eliminated[l.Var()] {
			// A clause over an eliminated variable breaks the
			// equisatisfiability argument of variable elimination;
			// callers must Freeze variables they add clauses over later.
			panic(fmt.Sprintf("sat: literal %v references eliminated variable", l))
		}
		if l == prev {
			continue
		}
		if l == prev.Not() && prev >= 0 {
			return true // tautology
		}
		switch s.value(l) {
		case lTrue:
			if s.levels[l.Var()] == 0 {
				return true // already satisfied at root
			}
		case lFalse:
			if s.levels[l.Var()] == 0 {
				continue // drop root-false literal
			}
		}
		out = append(out, l)
		prev = l
	}

	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if s.value(out[0]) == lFalse {
			s.ok = false
			return false
		}
		if s.value(out[0]) == lUndef {
			s.uncheckedEnqueue(out[0], nil)
			if s.propagate() != nil {
				s.ok = false
				return false
			}
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.stats.Clauses++
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{c, l1})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{c, l0})
}

func (s *Solver) uncheckedEnqueue(l Lit, reason *clause) {
	v := l.Var()
	s.assigns[v] = boolToLbool(!l.Sign())
	s.levels[v] = s.decisionLevel()
	s.reasons[v] = reason
	s.trail = append(s.trail, l)
}

func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		ws := s.watches[p]
		j := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			c := w.c
			// Ensure the false literal is at position 1.
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				ws[j] = watcher{c, first}
				j++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nl := c.lits[1].Not()
					s.watches[nl] = append(s.watches[nl], watcher{c, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{c, first}
			j++
			if s.value(first) == lFalse {
				// Conflict: copy back remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:j]
	}
	return nil
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[level]; i-- {
		l := s.trail[i]
		v := l.Var()
		s.phase[v] = !l.Sign()
		s.assigns[v] = lUndef
		s.reasons[v] = nil
		s.order.push(v)
	}
	s.trail = s.trail[:s.trailLim[level]]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.order.activity[v] += s.varInc
	if s.order.activity[v] > 1e100 {
		for i := range s.order.activity {
			s.order.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.order.indices[v] >= 0 {
		s.order.up(s.order.indices[v])
	}
}

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // reserve slot for asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	s.ante = s.ante[:0]
	for {
		s.bumpClause(confl)
		if confl.shared && !confl.sharedUsed {
			confl.sharedUsed = true
			s.stats.SharedUseful++
		}
		if confl.learnt && s.inpro.on {
			// Remember learnt antecedents for on-the-fly subsumption,
			// mark them used (tier retention), and tighten their LBD —
			// every literal of an antecedent is assigned here, so the
			// recomputation is exact; a better LBD can promote the
			// clause into a longer-lived tier.
			s.ante = append(s.ante, confl)
			confl.used = true
			if confl.lbd > 2 {
				if nl := s.computeLBD(confl.lits); nl < confl.lbd {
					confl.lbd = nl
					if t := s.tierFor(nl); t < confl.tier {
						confl.tier = t
					}
				}
			}
		}
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if !s.seen[v] && s.levels[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if s.levels[v] >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find next literal on trail to expand.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reasons[p.Var()]
		// Reason clauses store the implied literal first; skip it.
		if confl.lits[0] != p {
			// normalize so lits[0] == p
			for i, l := range confl.lits {
				if l == p {
					confl.lits[0], confl.lits[i] = confl.lits[i], confl.lits[0]
					break
				}
			}
		}
	}
	learnt[0] = p.Not()

	// Minimize: drop literals implied by the rest of the clause
	// (recursive self-subsumption, MiniSat's ccmin).
	s.analyzeT = s.analyzeT[:0]
	levels := uint64(0)
	for _, l := range learnt[1:] {
		s.seen[l.Var()] = true
		s.analyzeT = append(s.analyzeT, l)
		levels |= 1 << uint(s.levels[l.Var()]&63)
	}
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if s.reasons[l.Var()] == nil || !s.litRedundant(l, levels) {
			out = append(out, l)
		}
	}
	for _, l := range s.analyzeT {
		s.seen[l.Var()] = false
	}
	s.seen[p.Var()] = false

	// Compute backtrack level: max level among out[1:].
	btLevel := 0
	if len(out) > 1 {
		maxI := 1
		for i := 2; i < len(out); i++ {
			if s.levels[out[i].Var()] > s.levels[out[maxI].Var()] {
				maxI = i
			}
		}
		out[1], out[maxI] = out[maxI], out[1]
		btLevel = s.levels[out[1].Var()]
	}
	return out, btLevel
}

// litRedundant reports whether literal l in a learnt clause is implied
// by the remaining literals, following reason chains recursively
// (levels is a 64-bit Bloom filter of the clause's decision levels —
// a literal whose chain leaves those levels can never be redundant).
func (s *Solver) litRedundant(l Lit, levels uint64) bool {
	stack := []Lit{l}
	var undo []int
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := s.reasons[q.Var()]
		for _, cl := range c.lits {
			if cl == q || cl == q.Not() {
				continue
			}
			v := cl.Var()
			if s.levels[v] == 0 || s.seen[v] {
				continue
			}
			if s.reasons[v] == nil || levels&(1<<uint(s.levels[v]&63)) == 0 {
				// Not derivable within the clause's levels: undo all
				// tentative markings and fail.
				for _, uv := range undo {
					s.seen[uv] = false
				}
				return false
			}
			s.seen[v] = true
			undo = append(undo, v)
			stack = append(stack, cl)
		}
	}
	// Markings of literals proven redundant stay; they are cleared by
	// the caller via analyzeT... except these are extra variables, so
	// clear them here conservatively after recording for clearing.
	for _, uv := range undo {
		s.analyzeT = append(s.analyzeT, MkLit(uv, false))
	}
	return true
}

// computeLBD counts the distinct decision levels among lits (the
// "literal block distance" of Glucose). It runs on every conflict, so
// it stamps levels in a reusable array instead of allocating a set.
func (s *Solver) computeLBD(lits []Lit) int {
	if n := len(s.assigns) + 1; len(s.lbdStamp) < n {
		grown := make([]int64, n)
		copy(grown, s.lbdStamp)
		s.lbdStamp = grown
	}
	s.lbdGen++
	lbd := 0
	for _, l := range lits {
		lv := s.levels[l.Var()]
		if s.lbdStamp[lv] != s.lbdGen {
			s.lbdStamp[lv] = s.lbdGen
			lbd++
		}
	}
	return lbd
}

func (s *Solver) record(lits []Lit) {
	if len(lits) == 1 {
		s.uncheckedEnqueue(lits[0], nil)
		s.updateLBD(1)
		if s.shareExport != nil {
			s.stats.SharedExported++
			s.shareExport([]Lit{lits[0]}, 1)
		}
		return
	}
	c := &clause{lits: lits, learnt: true, lbd: s.computeLBD(lits)}
	c.tier = s.tierFor(c.lbd)
	s.learnts = append(s.learnts, c)
	s.learntLits += int64(len(lits))
	s.attach(c)
	s.bumpClause(c)
	s.uncheckedEnqueue(lits[0], c)
	s.updateLBD(float64(c.lbd))
	if s.shareExport != nil && c.lbd <= s.shareLBD {
		// The clause owns (and reorders) lits; hand the pool a copy.
		cp := make([]Lit, len(lits))
		copy(cp, lits)
		s.stats.SharedExported++
		s.shareExport(cp, c.lbd)
	}
}

// updateLBD maintains the fast/slow LBD moving averages driving the
// Glucose-style restart policy.
func (s *Solver) updateLBD(lbd float64) {
	if s.lbdFast == 0 {
		s.lbdFast, s.lbdSlow = lbd, lbd
		return
	}
	s.lbdFast += (lbd - s.lbdFast) / 32
	s.lbdSlow += (lbd - s.lbdSlow) / 4096
}

func (s *Solver) reduceDB() {
	if s.inpro.on {
		s.reduceDBTiered()
		return
	}
	sort.Slice(s.learnts, func(i, j int) bool {
		a, b := s.learnts[i], s.learnts[j]
		if a.lbd != b.lbd {
			return a.lbd < b.lbd
		}
		return a.activity > b.activity
	})
	keep := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		if c.deleted {
			continue
		}
		if i < limit || c.lbd <= 3 || s.locked(c) {
			keep = append(keep, c)
		} else {
			s.detach(c)
		}
	}
	s.learnts = keep
	s.recountLearntLits()
}

func (s *Solver) locked(c *clause) bool {
	l := c.lits[0]
	return s.value(l) == lTrue && s.reasons[l.Var()] == c
}

func (s *Solver) detach(c *clause) {
	for _, l := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[l]
		for i, w := range ws {
			if w.c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[l] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based):
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... Kept as an alternative restart
// schedule; the solver defaults to Glucose-style LBD-driven restarts.
func luby(i int64) int64 {
	x := i - 1
	var size, seq int64 = 1, 0
	for size < x+1 {
		size = 2*size + 1
		seq++
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << uint(seq)
}

// Solve searches for a model extending the given assumptions. It
// returns Sat, Unsat, or Unknown (interrupted, stopped, or budget
// exhausted — BudgetErr tells which).
func (s *Solver) Solve(assumptions ...Lit) Status {
	s.adopted = nil
	s.budgetErr = nil
	if !s.ok {
		return Unsat
	}
	// Check the external stop predicate once at entry: a multi-solve
	// procedure (mining, the two-phase inclusion check) whose
	// individual solves are too short to reach the periodic in-loop
	// checkpoint still observes a cancellation raised between solves.
	if s.interrupted.Load() || (s.stop != nil && s.stop()) {
		return Unknown
	}
	var solveStart time.Time
	if !s.deadline.IsZero() {
		solveStart = time.Now()
		if solveStart.After(s.deadline) {
			// Already past the deadline: don't start at all.
			s.budgetErr = &ErrBudget{Kind: BudgetDeadline, Spent: 0}
			return Unknown
		}
	}
	startProps := s.stats.Propagations
	for _, a := range assumptions {
		if s.eliminated[a.Var()] {
			panic(fmt.Sprintf("sat: assumption %v references eliminated variable", a))
		}
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.ok = false
		return Unsat
	}
	if !s.importShared() {
		s.ok = false
		return Unsat
	}

	conflicts := int64(0)
	sinceRestart := int64(0)
	sinceImport := int64(0)
	lubyIdx := int64(1)
	lubyLimit := luby(lubyIdx) * 100
	var ticks int64

	for {
		// Interruption check points: the atomic flag every iteration
		// (one load); the external predicate, the slow budget axes
		// (deadline, propagations, memory), and the fault hooks every
		// 128 iterations.
		ticks++
		if s.interrupted.Load() || (s.stop != nil && ticks&127 == 0 && s.stop()) {
			s.cancelUntil(0)
			return Unknown
		}
		if ticks&127 == 0 {
			if be := s.checkBudgets(solveStart, startProps); be != nil {
				s.budgetErr = be
				s.cancelUntil(0)
				return Unknown
			}
		}
		confl := s.propagate()
		if confl != nil {
			conflicts++
			sinceRestart++
			sinceImport++
			s.stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			if s.inpro.on && s.inpro.chrono > 0 && len(learnt) > 1 &&
				s.decisionLevel()-btLevel > s.inpro.chrono {
				// Chronological backtracking: the asserting level is far
				// below; undo one level and assert the learnt literal
				// there instead of discarding the whole prefix. The
				// trail stays level-monotone, so analysis invariants
				// hold unchanged.
				btLevel = s.decisionLevel() - 1
				s.stats.ChronoBacktracks++
			}
			s.cancelUntil(btLevel)
			s.record(learnt)
			if s.inpro.on {
				s.subsumeAntecedents(learnt)
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			continue
		}

		if s.budget > 0 && conflicts >= s.budget {
			s.budgetErr = &ErrBudget{Kind: BudgetConflicts, Spent: conflicts}
			s.cancelUntil(0)
			return Unknown
		}
		// Restart check. Glucose-style: when recent learnt clauses
		// have markedly worse LBD than the long-run average, the
		// search has drifted. Luby: fixed schedule.
		restart := false
		switch s.restartPolicy {
		case RestartLuby:
			restart = sinceRestart >= lubyLimit
			if restart {
				lubyIdx++
				lubyLimit = luby(lubyIdx) * 100
			}
		default:
			restart = sinceRestart >= 100 && s.lbdFast > 1.25*s.lbdSlow
		}
		if !restart && s.shareImport != nil && s.shareEvery > 0 && sinceImport >= s.shareEvery {
			// Forced import cadence: the restart policies can go whole
			// short solves without firing (glucose needs drifting LBDs,
			// Luby needs 100+ conflicts), which used to starve portfolio
			// members of their peers' exports entirely. An import needs
			// the trail at the root, so this is simply an extra restart.
			restart = true
		}
		if restart {
			sinceRestart = 0
			sinceImport = 0
			s.stats.Restarts++
			s.cancelUntil(0)
			// Restart boundaries are the import points of clause
			// sharing: the trail is at the root, so foreign clauses
			// can be simplified and attached safely.
			if !s.importShared() {
				s.ok = false
				return Unsat
			}
			// They are also the vivification points: distillation
			// probes on a scratch decision level above the root.
			if s.inpro.on && s.stats.Conflicts-s.inpro.lastVivify >= s.inpro.vivifyInterval {
				s.inpro.lastVivify = s.stats.Conflicts
				if !s.vivify() {
					s.ok = false
					return Unsat
				}
			}
			continue
		}
		if len(s.learnts) >= int(s.maxLearnts) {
			s.reduceDB()
			s.maxLearnts *= s.learntGrowth
		}

		// Enqueue assumptions first, one per decision level, so that
		// backtracking re-establishes them naturally. If an
		// assumption is already falsified by the formula together
		// with earlier assumptions, the problem is unsatisfiable
		// under these assumptions (the formula itself stays intact).
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				// Already satisfied; open an empty level to keep the
				// level <-> assumption-index correspondence.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				s.cancelUntil(0)
				return Unsat
			default:
				s.stats.Decisions++
				s.trailLim = append(s.trailLim, len(s.trail))
				s.uncheckedEnqueue(a, nil)
				continue
			}
		}

		// Pick a branching variable. Eliminated variables are skipped:
		// no clause mentions them, and their model values come from
		// extendModel instead.
		v := -1
		for !s.order.empty() {
			cand := s.order.pop()
			if s.assigns[cand] == lUndef && !s.eliminated[cand] {
				v = cand
				break
			}
		}
		if v == -1 {
			s.extendModel()
			return Sat // all variables assigned
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(MkLit(v, !s.phase[v]), nil)
	}
}

// Value returns the model value of variable v after a Sat result.
// Values of eliminated variables are reconstructed by model
// extension. When a foreign model has been adopted (AdoptModelFrom),
// it is reported instead until the next Solve.
func (s *Solver) Value(v int) bool {
	if s.adopted != nil {
		return s.adopted[v] == lTrue
	}
	if s.eliminated[v] {
		return s.extVals[v] == lTrue
	}
	return s.assigns[v] == lTrue
}

// ValueLit returns the model value of a literal after a Sat result.
func (s *Solver) ValueLit(l Lit) bool {
	if l.Sign() {
		return !s.Value(l.Var())
	}
	return s.Value(l.Var())
}

package fenceinfer

import (
	"testing"

	"checkfence/internal/memmodel"
)

// TestMinimizeMSN runs the fence inference on the Michael-Scott queue
// against the smallest test. T0 exercises only a subset of the 11
// published fences, so some must be removable and the kept ones must
// each have a failing witness.
func TestMinimizeMSN(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many full checks")
	}
	rep, err := Minimize("msn", []string{"T0"}, memmodel.Relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sufficient {
		t.Fatalf("the published fence set must be sufficient (failed %s)", rep.FailedTest)
	}
	if rep.Candidates == 0 {
		t.Fatal("msn must have candidate fences")
	}
	if len(rep.Kept)+len(rep.Removed) != rep.Candidates {
		t.Errorf("kept %d + removed %d != candidates %d",
			len(rep.Kept), len(rep.Removed), rep.Candidates)
	}
	if len(rep.Kept) == 0 {
		t.Error("T0 must need at least one fence (store-store for node init)")
	}
	for _, st := range rep.Status {
		if !st.Necessary {
			t.Errorf("kept fence #%d has no failing witness — minimization incomplete", st.Index)
		}
		if st.Necessary && st.FailingTest == "" {
			t.Errorf("kept fence #%d lacks a witness test name", st.Index)
		}
	}
	t.Logf("candidates=%d kept=%v removed=%v", rep.Candidates, rep.Kept, rep.Removed)
}

// TestInsufficientSetReported: minimizing an unfenced variant reports
// insufficiency instead of minimizing garbage.
func TestInsufficientSetReported(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full checks")
	}
	rep, err := Minimize("msn-nofence", []string{"T0"}, memmodel.Relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sufficient {
		t.Error("the empty fence set must be reported insufficient")
	}
	if rep.FailedTest != "T0" {
		t.Errorf("failed test = %q", rep.FailedTest)
	}
}

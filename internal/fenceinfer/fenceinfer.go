// Package fenceinfer automates the paper's manual workflow of §4.2:
// determining where memory ordering fences must be placed. Starting
// from an implementation variant that carries a candidate fence set
// (the fences the study placed by hand), it
//
//  1. verifies the full set is sufficient for a list of tests,
//  2. greedily removes fences that all tests tolerate losing, and
//  3. reports, for the resulting minimal set, which test fails when
//     each remaining fence is dropped (necessity evidence, paper:
//     "we verified that these fences are sufficient and necessary
//     for the tests").
//
// Observation sets are mined once per test and reused across fence
// variants — fences cannot change serial behavior, a fact the paper
// exploits ("observation sets need not be recomputed after each
// change to the implementation").
package fenceinfer

import (
	"fmt"

	"checkfence/internal/core"
	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
	"checkfence/internal/spec"
)

// FenceStatus describes one fence of the minimal set.
type FenceStatus struct {
	Index       int    // occurrence index in the candidate source
	Necessary   bool   // true if some test fails without it
	FailingTest string // a witness test (empty for removable fences)
}

// Report is the inference result.
type Report struct {
	Impl       string
	Tests      []string
	Model      memmodel.Model
	Candidates int   // fences in the candidate set
	Kept       []int // indices of the minimal sufficient set
	Removed    []int // indices the tests tolerate losing
	Status     []FenceStatus
	// Sufficient is false if even the full candidate set fails some
	// test (then Kept/Removed are meaningless and FailedTest names
	// the offender).
	Sufficient bool
	FailedTest string
}

// Minimize computes a minimal sufficient fence set for the named
// implementation (whose source carries the candidate fences) against
// the given tests on the given model.
func Minimize(implName string, tests []string, model memmodel.Model) (*Report, error) {
	base, err := harness.Get(implName)
	if err != nil {
		return nil, err
	}
	total := harness.CountFences(base.Source)
	rep := &Report{Impl: implName, Tests: tests, Model: model, Candidates: total}

	// Mine each test's observation set once, from the full variant.
	specs := make(map[string]*spec.Set, len(tests))
	for _, tn := range tests {
		res, err := core.Check(implName, tn, core.Options{Model: model})
		if err != nil {
			return nil, fmt.Errorf("fenceinfer: %s/%s: %w", implName, tn, err)
		}
		if !res.Pass {
			rep.Sufficient = false
			rep.FailedTest = tn
			return rep, nil
		}
		specs[tn] = res.Spec
	}
	rep.Sufficient = true

	// Greedy elimination: try dropping each fence in turn; keep the
	// drop when every test still passes.
	dropped := map[int]bool{}
	passesAll := func(drop map[int]bool) (bool, string, error) {
		v := withDrops(base, drop)
		for _, tn := range tests {
			test, err := harness.GetTest(v, tn)
			if err != nil {
				return false, "", err
			}
			res, err := core.CheckImpl(v, test, core.Options{Model: model, Spec: specs[tn]})
			if err != nil {
				return false, "", err
			}
			if !res.Pass {
				return false, tn, nil
			}
		}
		return true, "", nil
	}

	for k := 0; k < total; k++ {
		dropped[k] = true
		ok, _, err := passesAll(dropped)
		if err != nil {
			return nil, err
		}
		if ok {
			rep.Removed = append(rep.Removed, k)
		} else {
			delete(dropped, k)
		}
	}
	for k := 0; k < total; k++ {
		if !dropped[k] {
			rep.Kept = append(rep.Kept, k)
		}
	}

	// Necessity: each kept fence must have a failing witness when
	// removed on its own from the minimal set.
	for _, k := range rep.Kept {
		trial := map[int]bool{k: true}
		for d := range dropped {
			trial[d] = true
		}
		ok, witness, err := passesAll(trial)
		if err != nil {
			return nil, err
		}
		rep.Status = append(rep.Status, FenceStatus{
			Index: k, Necessary: !ok, FailingTest: witness,
		})
	}
	return rep, nil
}

func withDrops(base *harness.Impl, drop map[int]bool) *harness.Impl {
	v := *base
	v.Name = base.Name + "-inferred"
	v.Source = harness.RemoveFences(base.Source, drop)
	return &v
}

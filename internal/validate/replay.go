package validate

import (
	"errors"
	"fmt"
	"sort"

	"checkfence/internal/encode"
	"checkfence/internal/interp"
	"checkfence/internal/lsl"
	"checkfence/internal/trace"
)

// expectedItem is one thread-local event the replay must reproduce, in
// program order: a memory access or a fence.
type expectedItem struct {
	isFence bool
	progIdx int
	ev      trace.Event
	fence   trace.Fence
}

func (it expectedItem) String() string {
	if it.isFence {
		return fmt.Sprintf("fence(%s)@p%d", it.fence.Kind, it.progIdx)
	}
	return evDesc(it.ev)
}

// Replay runs each thread's unrolled code through the reference
// interpreter, feeding the trace's load values (and havoc choices)
// back as the oracle, and confirms the thread performs exactly the
// trace's accesses and fences in program order and that the final
// registers reproduce the observation vector. Threads are replayed in
// isolation: thread-local semantics never depend on the interleaving
// once load values are fixed, which is precisely what makes this an
// independent check of the encoder's guarded compilation.
func Replay(t *trace.Trace, threads []encode.Thread, prog *lsl.Program) error {
	// Per-thread expected queues, merged accesses + fences by ProgIdx.
	queues := make([][]expectedItem, len(threads))
	for _, ev := range t.Events {
		if ev.Thread >= len(queues) {
			return &Violation{Axiom: "replay", Detail: fmt.Sprintf(
				"%s references thread %d of %d", evDesc(ev), ev.Thread, len(threads))}
		}
		queues[ev.Thread] = append(queues[ev.Thread],
			expectedItem{progIdx: ev.ProgIdx, ev: ev})
	}
	for _, f := range t.Fences {
		if f.Thread >= len(queues) {
			continue
		}
		queues[f.Thread] = append(queues[f.Thread],
			expectedItem{isFence: true, progIdx: f.ProgIdx, fence: f})
	}
	for ti := range queues {
		q := queues[ti]
		sort.SliceStable(q, func(i, j int) bool { return q[i].progIdx < q[j].progIdx })
	}

	erroring := 0
	envs := make([]map[lsl.Reg]lsl.Value, len(threads))
	for ti, th := range threads {
		env, err := replayThread(t, ti, th, prog, queues[ti])
		var rte *interp.RuntimeError
		switch {
		case err == nil:
			envs[ti] = env
		case errors.As(err, &rte):
			// A runtime error halts the interpreter where the encoder
			// keeps going, so leftover expected items are fine — but
			// only on traces that claim an error happened.
			if !t.IsErr {
				return &Violation{Axiom: "replay", Detail: fmt.Sprintf(
					"thread %d hits %v but the trace reports no runtime error", ti, err)}
			}
			erroring++
		default:
			return err
		}
	}
	if t.IsErr {
		if erroring == 0 {
			return &Violation{Axiom: "replay", Detail: fmt.Sprintf(
				"trace reports runtime error %q but no thread reproduces one", t.ErrMsg)}
		}
		// Observations of error traces are unconstrained garbage past
		// the error point; skip the vector comparison.
		return nil
	}

	for i, ent := range t.Entries {
		if i >= len(t.Observation) {
			break
		}
		if ent.Thread >= len(envs) || envs[ent.Thread] == nil {
			return &Violation{Axiom: "observation", Detail: fmt.Sprintf(
				"entry %q references thread %d with no replayed environment", ent.Label, ent.Thread)}
		}
		got, ok := envs[ent.Thread][ent.Reg]
		if !ok {
			got = lsl.Undef()
		}
		if !got.Equal(t.Observation[i]) {
			return &Violation{Axiom: "observation", Detail: fmt.Sprintf(
				"entry %s: replay computes %s, trace observes %s",
				ent.Label, got, t.Observation[i])}
		}
	}
	return nil
}

// replayThread executes one thread against its expected queue.
// Returns the final register environment, a RuntimeError when the
// thread reproduces one, or a *Violation on divergence.
func replayThread(t *trace.Trace, ti int, th encode.Thread, prog *lsl.Program,
	queue []expectedItem) (map[lsl.Reg]lsl.Value, error) {

	m := interp.NewMachine(prog)
	m.Fuel = 1 << 20

	var div error // first divergence, returned through the hook error path
	diverge := func(format string, args ...any) error {
		div = &Violation{Axiom: "replay", Detail: fmt.Sprintf("thread %d: ", ti) + fmt.Sprintf(format, args...)}
		return div
	}

	next := 0
	pop := func() (expectedItem, bool) {
		if next >= len(queue) {
			return expectedItem{}, false
		}
		it := queue[next]
		next++
		return it, true
	}

	var havocs []int64
	if ti < len(t.Havocs) {
		havocs = t.Havocs[ti]
	}
	nextHavoc := 0
	m.Oracle = func(bits int) int64 {
		if nextHavoc >= len(havocs) {
			// Too few recorded choices: the replay took a path the
			// encoder did not. Feed zero and let the queue comparison
			// report the divergence with context.
			return 0
		}
		v := havocs[nextHavoc]
		nextHavoc++
		return v
	}

	m.LoadHook = func(addr lsl.Value) (lsl.Value, error) {
		it, ok := pop()
		if !ok {
			return lsl.Undef(), diverge("load of %s beyond the trace's %d events", addr, len(queue))
		}
		if it.isFence || !it.ev.IsLoad {
			return lsl.Undef(), diverge("replay performs a load of %s where the trace expects %s", addr, it)
		}
		if !addr.Equal(it.ev.Addr) {
			return lsl.Undef(), diverge("load address %s diverges from trace event %s", addr, it)
		}
		return it.ev.Val, nil
	}
	m.StoreHook = func(addr, val lsl.Value) error {
		it, ok := pop()
		if !ok {
			return diverge("store %s=%s beyond the trace's %d events", addr, val, len(queue))
		}
		if it.isFence || it.ev.IsLoad {
			return diverge("replay performs a store of %s where the trace expects %s", addr, it)
		}
		if !addr.Equal(it.ev.Addr) || !val.Equal(it.ev.Val) {
			return diverge("store %s=%s diverges from trace event %s", addr, val, it)
		}
		return nil
	}
	m.FenceHook = func(kind lsl.FenceKind) error {
		it, ok := pop()
		if !ok {
			return diverge("fence(%s) beyond the trace's %d events", kind, len(queue))
		}
		if !it.isFence || it.fence.Kind != kind {
			return diverge("replay performs fence(%s) where the trace expects %s", kind, it)
		}
		return nil
	}

	// The encoder compiles all segments of a thread into one register
	// environment, so replay runs them as one body.
	var body []lsl.Stmt
	for _, seg := range th.Segments {
		body = append(body, seg...)
	}
	env, err := m.RunBody(body)
	if div != nil {
		return nil, div
	}
	if err != nil {
		var rte *interp.RuntimeError
		if errors.As(err, &rte) {
			return nil, err
		}
		return nil, &Violation{Axiom: "replay", Detail: fmt.Sprintf(
			"thread %d: interpreter aborts with %v", ti, err)}
	}
	if next != len(queue) {
		return nil, &Violation{Axiom: "replay", Detail: fmt.Sprintf(
			"thread %d: replay performed %d of %d expected events; first missing: %s",
			ti, next, len(queue), queue[next])}
	}
	return env, nil
}

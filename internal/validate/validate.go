// Package validate independently re-checks decoded counterexample
// traces, implementing the trusted-base reduction of the paper's §6:
// instead of trusting the SAT encoder, every counterexample is (a)
// re-verified against the memory model axioms directly over the
// concrete event list, and (b) replayed through the reference
// interpreter of internal/interp with the trace's load values fed in
// as an oracle, confirming the observation vector. A failure of either
// step is an internal error in CheckFence, never a property of the
// program under test.
package validate

import (
	"fmt"

	"checkfence/internal/encode"
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/trace"
)

// Violation reports the first axiom or replay step a trace failed.
type Violation struct {
	Axiom  string // short axiom name, e.g. "program-order", "reads-from"
	Detail string // diff-style description of the offending events
}

func (v *Violation) Error() string {
	return fmt.Sprintf("validate: %s violated: %s", v.Axiom, v.Detail)
}

// Check runs both validation stages: the axiom re-check over the
// event list, then the interpreter replay. threads must be the same
// slice handed to Encoder.Encode (thread 0 the initialization
// pseudo-thread); prog supplies interpreter context (no procedure
// calls remain after unrolling).
func Check(t *trace.Trace, threads []encode.Thread, prog *lsl.Program) error {
	if err := CheckAxioms(t); err != nil {
		return err
	}
	return Replay(t, threads, prog)
}

// evDesc renders one event for violation messages.
func evDesc(ev trace.Event) string {
	kind := "store"
	if ev.IsLoad {
		kind = "load"
	}
	addr := ev.AddrName
	if addr == "" {
		addr = ev.Addr.String()
	}
	return fmt.Sprintf("#%d(t%d,p%d) %s %s=%s", ev.MemOrder, ev.Thread, ev.ProgIdx, kind, addr, ev.Val)
}

// CheckAxioms re-verifies every memory-model axiom of t.Model over the
// concrete, already-totally-ordered event list: totality of the
// decoded order, initialization-first, the model's (conditional)
// program-order axioms, fence constraints, atomic-block contiguity,
// seriality (Serial model), and the reads-from/coherence value rule
// with store forwarding. It mirrors the encoder's axioms
// (internal/encode) but shares no code with them.
func CheckAxioms(t *trace.Trace) error {
	evs := t.Events

	if t.OrderTies != 0 {
		return &Violation{Axiom: "total-order", Detail: fmt.Sprintf(
			"%d executed access pairs are mutually unordered in the decoded memory order", t.OrderTies)}
	}

	// Initialization precedes everything.
	seenOther := false
	for _, ev := range evs {
		if ev.Thread != 0 {
			seenOther = true
		} else if seenOther {
			return &Violation{Axiom: "init-first", Detail: fmt.Sprintf(
				"init access %s ordered after a non-init access", evDesc(ev))}
		}
	}

	// Program-order axioms. Events are sorted by memory order, so
	// "a before b" is an index comparison.
	for j, b := range evs {
		for i := j + 1; i < len(evs); i++ {
			a := evs[i] // memory-order-after b
			if a.Thread != b.Thread || a.ProgIdx >= b.ProgIdx {
				continue
			}
			// a <p b but b <M a: is the pair one the model keeps ordered?
			if reason := poRequired(t.Model, a, b); reason != "" {
				return &Violation{Axiom: "program-order", Detail: fmt.Sprintf(
					"%s precedes %s in program order (%s) but follows it in memory order",
					evDesc(a), evDesc(b), reason)}
			}
		}
	}

	if err := checkFenceAxioms(t); err != nil {
		return err
	}
	if err := checkContiguity(t); err != nil {
		return err
	}
	return checkReadsFrom(t)
}

// poRequired reports why the model orders the same-thread pair a <p b
// in memory order, or "" if the pair is relaxed. Mirrors
// encode.progOrderFixed plus the conditional same-address axiom.
func poRequired(model memmodel.Model, a, b trace.Event) string {
	if a.Thread == 0 {
		return "initialization is sequential"
	}
	if a.Group >= 0 && a.Group == b.Group {
		return "same atomic block"
	}
	switch model {
	case memmodel.SequentialConsistency, memmodel.Serial:
		return "strong model"
	case memmodel.TSO:
		if !(!a.IsLoad && b.IsLoad) {
			return "TSO relaxes only store-load"
		}
	case memmodel.PSO:
		if a.IsLoad {
			return "PSO keeps loads ordered"
		}
	}
	// Conditional same-address axiom of the weak models: x <p y with
	// a(x)=a(y) and y a store forces x <M y (Relaxed axiom 1; for PSO
	// the store-store case).
	if (model == memmodel.Relaxed || model == memmodel.PSO) &&
		!b.IsLoad && a.Addr.Equal(b.Addr) {
		return "same-address program order"
	}
	return ""
}

// checkFenceAxioms verifies every executed fence orders its matching
// access pairs: for an X-Y fence f and same-thread accesses x <p f <p y
// of kinds X and Y, x must precede y in memory order.
func checkFenceAxioms(t *trace.Trace) error {
	// Memory-order position by (thread, progIdx).
	pos := map[[2]int]int{}
	for i, ev := range t.Events {
		pos[[2]int{ev.Thread, ev.ProgIdx}] = i
	}
	for _, f := range t.Fences {
		for _, a := range t.Events {
			if a.Thread != f.Thread || a.ProgIdx >= f.ProgIdx || !f.Kind.OrdersBefore(a.IsLoad) {
				continue
			}
			for _, b := range t.Events {
				if b.Thread != f.Thread || b.ProgIdx <= f.ProgIdx || !f.Kind.OrdersAfter(b.IsLoad) {
					continue
				}
				if pos[[2]int{a.Thread, a.ProgIdx}] > pos[[2]int{b.Thread, b.ProgIdx}] {
					return &Violation{Axiom: "fence", Detail: fmt.Sprintf(
						"%s fence at (t%d,p%d) does not order %s before %s",
						f.Kind, f.Thread, f.ProgIdx, evDesc(a), evDesc(b))}
				}
			}
		}
	}
	return nil
}

// checkContiguity verifies atomic blocks are contiguous in memory
// order, and, on the Serial model, that each operation's accesses are
// contiguous with respect to other threads (seriality, §2.3.2).
func checkContiguity(t *trace.Trace) error {
	groups := map[int][2]int{} // group -> (min,max) memory-order position
	count := map[int]int{}
	for i, ev := range t.Events {
		if ev.Group < 0 {
			continue
		}
		if c, ok := groups[ev.Group]; ok {
			if i < c[0] {
				c[0] = i
			}
			if i > c[1] {
				c[1] = i
			}
			groups[ev.Group] = c
		} else {
			groups[ev.Group] = [2]int{i, i}
		}
		count[ev.Group]++
	}
	for g, mm := range groups {
		if mm[1]-mm[0]+1 != count[g] {
			return &Violation{Axiom: "atomicity", Detail: fmt.Sprintf(
				"atomic block %d spans positions %d..%d but has only %d accesses (interleaved)",
				g, mm[0], mm[1], count[g])}
		}
	}

	if t.Model != memmodel.Serial {
		return nil
	}
	type opKey struct{ thread, op int }
	ops := map[opKey][2]int{}
	for i, ev := range t.Events {
		if ev.OpID < 0 || ev.Thread == 0 {
			continue
		}
		k := opKey{ev.Thread, ev.OpID}
		if c, ok := ops[k]; ok {
			if i < c[0] {
				c[0] = i
			}
			if i > c[1] {
				c[1] = i
			}
			ops[k] = c
		} else {
			ops[k] = [2]int{i, i}
		}
	}
	for k, mm := range ops {
		for i := mm[0] + 1; i < mm[1]; i++ {
			if t.Events[i].Thread != k.thread {
				return &Violation{Axiom: "seriality", Detail: fmt.Sprintf(
					"%s of thread %d interleaves operation %d of thread %d (positions %d..%d)",
					evDesc(t.Events[i]), t.Events[i].Thread, k.op, k.thread, mm[0], mm[1])}
			}
		}
	}
	return nil
}

// forwards mirrors encode.forwards via the shared memmodel predicate:
// models with a store buffer let a program-order-earlier store of the
// same thread be visible to a load regardless of their global order.
func forwards(model memmodel.Model) bool { return model.Forwards() }

// checkReadsFrom verifies the value rule (axioms 2 and 3 of §2.3.2):
// every load reads the memory-order-maximal visible store to its
// address, or the undefined initial value when no store is visible.
func checkReadsFrom(t *trace.Trace) error {
	fwd := forwards(t.Model)
	for li, l := range t.Events {
		if !l.IsLoad {
			continue
		}
		best := -1
		for si, s := range t.Events {
			if s.IsLoad || si == li || !s.Addr.Equal(l.Addr) {
				continue
			}
			visible := si < li
			if !visible && fwd && s.Thread == l.Thread && s.ProgIdx < l.ProgIdx {
				visible = true // store forwarding
			}
			if visible && si > best {
				best = si
			}
		}
		if best < 0 {
			if l.Val.Kind != lsl.KindUndef {
				return &Violation{Axiom: "reads-from", Detail: fmt.Sprintf(
					"%s has no visible store yet reads a defined value", evDesc(l))}
			}
			continue
		}
		if !l.Val.Equal(t.Events[best].Val) {
			return &Violation{Axiom: "reads-from", Detail: fmt.Sprintf(
				"%s must read from maximal visible store %s", evDesc(l), evDesc(t.Events[best]))}
		}
	}
	return nil
}

package validate

import (
	"strings"
	"testing"

	"checkfence/internal/encode"
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/spec"
	"checkfence/internal/trace"
)

// ev builds one event; MemOrder is assigned by mkTrace.
func ev(thread, progIdx int, isLoad bool, addr, val lsl.Value) trace.Event {
	return trace.Event{
		Thread: thread, ProgIdx: progIdx, OpID: -1, Group: -1,
		IsLoad: isLoad, Addr: addr, Val: val,
	}
}

func mkTrace(model memmodel.Model, events ...trace.Event) *trace.Trace {
	for i := range events {
		events[i].MemOrder = i
	}
	return &trace.Trace{Model: model, Events: events}
}

func wantViolation(t *testing.T, err error, axiom string) {
	t.Helper()
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("expected a *Violation for axiom %q, got %v", axiom, err)
	}
	if v.Axiom != axiom {
		t.Fatalf("violated axiom = %q, want %q (%s)", v.Axiom, axiom, v.Detail)
	}
}

var (
	pX = lsl.Ptr(0)
	pY = lsl.Ptr(1)
)

func TestAxiomsAcceptConsistentTrace(t *testing.T) {
	// init: x=0, y=0; t1: x=1, r=load y(0); t2: y=1, r=load x(1).
	// Memory order: init, x=1, loady(0), y=1, loadx(1) — fine on any
	// model that relaxes nothing violated here (all loads read the
	// maximal visible store).
	tr := mkTrace(memmodel.SequentialConsistency,
		ev(0, 0, false, pX, lsl.Int(0)),
		ev(0, 1, false, pY, lsl.Int(0)),
		ev(1, 0, false, pX, lsl.Int(1)),
		ev(1, 1, true, pY, lsl.Int(0)),
		ev(2, 0, false, pY, lsl.Int(1)),
		ev(2, 1, true, pX, lsl.Int(1)),
	)
	if err := CheckAxioms(tr); err != nil {
		t.Fatal(err)
	}
}

func TestAxiomsRejectNonTotalOrder(t *testing.T) {
	tr := mkTrace(memmodel.Relaxed, ev(1, 0, false, pX, lsl.Int(1)))
	tr.OrderTies = 1
	wantViolation(t, CheckAxioms(tr), "total-order")
}

func TestAxiomsRejectInitAfterOthers(t *testing.T) {
	tr := mkTrace(memmodel.Relaxed,
		ev(1, 0, false, pX, lsl.Int(1)),
		ev(0, 0, false, pX, lsl.Int(0)),
	)
	wantViolation(t, CheckAxioms(tr), "init-first")
}

func TestAxiomsProgramOrderByModel(t *testing.T) {
	// Store x then load y of one thread, decoded in the reversed
	// memory order. TSO permits it (store-load is the relaxed pair);
	// SC does not.
	storeLoadSwap := func(model memmodel.Model) error {
		return CheckAxioms(mkTrace(model,
			ev(1, 1, true, pY, lsl.Undef()),
			ev(1, 0, false, pX, lsl.Int(1)),
		))
	}
	if err := storeLoadSwap(memmodel.TSO); err != nil {
		t.Errorf("TSO must allow store-load reordering: %v", err)
	}
	wantViolation(t, storeLoadSwap(memmodel.SequentialConsistency), "program-order")

	// Load then load swapped: PSO keeps loads ordered, Relaxed does not.
	loadLoadSwap := func(model memmodel.Model) error {
		return CheckAxioms(mkTrace(model,
			ev(1, 1, true, pY, lsl.Undef()),
			ev(1, 0, true, pX, lsl.Undef()),
		))
	}
	if err := loadLoadSwap(memmodel.Relaxed); err != nil {
		t.Errorf("Relaxed must allow load-load reordering: %v", err)
	}
	wantViolation(t, loadLoadSwap(memmodel.PSO), "program-order")

	// Same-address store-store swapped is illegal even on Relaxed.
	wantViolation(t, CheckAxioms(mkTrace(memmodel.Relaxed,
		ev(1, 1, false, pX, lsl.Int(2)),
		ev(1, 0, false, pX, lsl.Int(1)),
	)), "program-order")
}

func TestAxiomsAtomicGroupOrder(t *testing.T) {
	// Two accesses of one atomic block reordered: rejected on any model.
	a := ev(1, 1, false, pY, lsl.Int(1))
	b := ev(1, 0, false, pX, lsl.Int(1))
	a.Group, b.Group = 3, 3
	wantViolation(t, CheckAxioms(mkTrace(memmodel.Relaxed, a, b)), "program-order")
}

func TestAxiomsFence(t *testing.T) {
	// store x ; store-store fence ; store y — decoded with y first.
	tr := mkTrace(memmodel.Relaxed,
		ev(1, 2, false, pY, lsl.Int(1)),
		ev(1, 0, false, pX, lsl.Int(1)),
	)
	tr.Fences = []trace.Fence{{Thread: 1, ProgIdx: 1, Kind: lsl.FenceStoreStore}}
	wantViolation(t, CheckAxioms(tr), "fence")

	// A store-load fence does not order store-store pairs.
	tr.Fences[0].Kind = lsl.FenceStoreLoad
	if err := CheckAxioms(tr); err != nil {
		t.Fatal(err)
	}
}

func TestAxiomsAtomicityContiguous(t *testing.T) {
	// Block {store x, store y} of t1 with a t2 store interleaved.
	a := ev(1, 0, false, pX, lsl.Int(1))
	z := ev(2, 0, false, pX, lsl.Int(2))
	b := ev(1, 1, false, pY, lsl.Int(1))
	a.Group, b.Group = 0, 0
	wantViolation(t, CheckAxioms(mkTrace(memmodel.Relaxed, a, z, b)), "atomicity")
}

func TestAxiomsSeriality(t *testing.T) {
	// Serial model: operation 0 of t1 must not interleave with t2.
	a := ev(1, 0, false, pX, lsl.Int(1))
	z := ev(2, 0, false, pY, lsl.Int(2))
	b := ev(1, 1, false, pX, lsl.Int(3))
	a.OpID, b.OpID = 0, 0
	tr := mkTrace(memmodel.Serial, a, z, b)
	wantViolation(t, CheckAxioms(tr), "seriality")
	// The same interleaving is legal on SC.
	tr2 := mkTrace(memmodel.SequentialConsistency, a, z, b)
	tr2.Events[0].OpID, tr2.Events[2].OpID = 0, 0
	if err := CheckAxioms(tr2); err != nil {
		t.Fatal(err)
	}
}

func TestAxiomsReadsFrom(t *testing.T) {
	// Load reads a stale (non-maximal) store.
	wantViolation(t, CheckAxioms(mkTrace(memmodel.SequentialConsistency,
		ev(0, 0, false, pX, lsl.Int(0)),
		ev(1, 0, false, pX, lsl.Int(1)),
		ev(2, 0, true, pX, lsl.Int(0)),
	)), "reads-from")

	// Load with no visible store must read undefined.
	wantViolation(t, CheckAxioms(mkTrace(memmodel.SequentialConsistency,
		ev(1, 0, true, pX, lsl.Int(7)),
	)), "reads-from")
	if err := CheckAxioms(mkTrace(memmodel.SequentialConsistency,
		ev(1, 0, true, pX, lsl.Undef()),
	)); err != nil {
		t.Fatal(err)
	}

	// Store forwarding: on TSO a load may read its own thread's earlier
	// store even when that store is globally later.
	fwdTrace := func(model memmodel.Model) *trace.Trace {
		return mkTrace(model,
			ev(0, 0, false, pX, lsl.Int(0)),
			ev(1, 1, true, pX, lsl.Int(1)), // reads own buffered store
			ev(1, 0, false, pX, lsl.Int(1)),
		)
	}
	// (Order store after load is store-load relaxation seen from the
	// other side; on TSO the pair load-after-store stays ordered, so
	// flip roles: program order store(p0) then load(p1), memory order
	// load first. TSO fixes store→load? No: TSO relaxes store→load, so
	// this decoding is legal and forwarding supplies the value.)
	if err := CheckAxioms(fwdTrace(memmodel.TSO)); err != nil {
		t.Fatal(err)
	}
	// On SC the same trace violates program order before values matter.
	wantViolation(t, CheckAxioms(fwdTrace(memmodel.SequentialConsistency)), "program-order")
}

// replayThreads builds the two-thread message-passing litmus shape
// used by the replay tests: t1 stores x=1 then y=1; t2 loads y then x.
func replayThreads() ([]encode.Thread, *lsl.Program) {
	prog := lsl.NewProgram()
	t1 := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "t1.px", Val: pX},
		&lsl.ConstStmt{Dst: "t1.py", Val: pY},
		&lsl.ConstStmt{Dst: "t1.one", Val: lsl.Int(1)},
		&lsl.StoreStmt{Addr: "t1.px", Src: "t1.one"},
		&lsl.FenceStmt{Kind: lsl.FenceStoreStore},
		&lsl.StoreStmt{Addr: "t1.py", Src: "t1.one"},
	}
	t2 := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "t2.px", Val: pX},
		&lsl.ConstStmt{Dst: "t2.py", Val: pY},
		&lsl.LoadStmt{Dst: "t2.ry", Addr: "t2.py"},
		&lsl.LoadStmt{Dst: "t2.rx", Addr: "t2.px"},
	}
	threads := []encode.Thread{
		{Name: "init"},
		{Name: "t1", Segments: [][]lsl.Stmt{t1}, OpIDs: []int{0}},
		{Name: "t2", Segments: [][]lsl.Stmt{t2}, OpIDs: []int{0}},
	}
	return threads, prog
}

// mpTrace returns a consistent trace of replayThreads: both stores
// first, then both loads reading 1.
func mpTrace() *trace.Trace {
	// ProgIdx numbering is shared between accesses and fences, matching
	// the encoder's single per-thread counter.
	tr := mkTrace(memmodel.SequentialConsistency,
		ev(1, 0, false, pX, lsl.Int(1)),
		ev(1, 2, false, pY, lsl.Int(1)),
		ev(2, 0, true, pY, lsl.Int(1)),
		ev(2, 1, true, pX, lsl.Int(1)),
	)
	tr.Fences = []trace.Fence{{Thread: 1, ProgIdx: 1, Kind: lsl.FenceStoreStore}}
	tr.Entries = []spec.Entry{
		{Label: "ry", Thread: 2, Reg: "t2.ry"},
		{Label: "rx", Thread: 2, Reg: "t2.rx"},
	}
	tr.Observation = spec.Observation{lsl.Int(1), lsl.Int(1)}
	return tr
}

func TestReplayAcceptsFaithfulTrace(t *testing.T) {
	threads, prog := replayThreads()
	tr := mpTrace()
	if err := Replay(tr, threads, prog); err != nil {
		t.Fatal(err)
	}
	if err := Check(tr, threads, prog); err != nil {
		t.Fatal(err)
	}
}

func TestReplayRejectsWrongObservation(t *testing.T) {
	threads, prog := replayThreads()
	tr := mpTrace()
	tr.Observation = spec.Observation{lsl.Int(1), lsl.Int(0)}
	wantViolation(t, Replay(tr, threads, prog), "observation")
}

func TestReplayRejectsMissingEvent(t *testing.T) {
	threads, prog := replayThreads()
	tr := mpTrace()
	// Drop t1's second store: replay performs more events than the
	// trace recorded.
	tr.Events = append(tr.Events[:1], tr.Events[2:]...)
	wantViolation(t, Replay(tr, threads, prog), "replay")
}

func TestReplayRejectsWrongStoreValue(t *testing.T) {
	threads, prog := replayThreads()
	tr := mpTrace()
	tr.Events[0].Val = lsl.Int(9) // program stores 1
	wantViolation(t, Replay(tr, threads, prog), "replay")
}

func TestReplayRejectsWrongFenceKind(t *testing.T) {
	threads, prog := replayThreads()
	tr := mpTrace()
	tr.Fences[0].Kind = lsl.FenceLoadLoad
	wantViolation(t, Replay(tr, threads, prog), "replay")
}

func TestReplayPhantomError(t *testing.T) {
	threads, prog := replayThreads()
	tr := mpTrace()
	tr.IsErr = true
	tr.ErrMsg = "assertion failed: ghost"
	err := Replay(tr, threads, prog)
	wantViolation(t, err, "replay")
	if !strings.Contains(err.Error(), "no thread reproduces") {
		t.Errorf("unexpected detail: %v", err)
	}
}

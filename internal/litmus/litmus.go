// Command litmus runs classic memory-model litmus tests against the
// axiomatic models, including the IRIW execution of the paper's
// Fig. 2 (possible on PowerPC/IA-32/IA-64, but not on Relaxed, which
// globally orders stores).
//
//	litmus            # run all litmus tests on all models
//	litmus iriw sb    # run selected tests
package litmus

import (
	"fmt"
	"sort"

	"checkfence/internal/encode"
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/ranges"
	"checkfence/internal/rf"
	"checkfence/internal/sat"
	"checkfence/internal/spec"
)

// litmusTest is a hand-built multi-threaded program plus a forbidden/
// allowed outcome over final register values.
type Test struct {
	Name    string
	Desc    string
	threads [][]lsl.Stmt
	outcome map[int]map[lsl.Reg]lsl.Value // thread -> reg -> value
	// AllowedOn lists models where the outcome is observable.
	AllowedOn map[memmodel.Model]bool
}

func c(dst string, v lsl.Value) lsl.Stmt { return &lsl.ConstStmt{Dst: lsl.Reg(dst), Val: v} }
func st(addr, src string) lsl.Stmt       { return &lsl.StoreStmt{Addr: lsl.Reg(addr), Src: lsl.Reg(src)} }
func ld(dst, addr string) lsl.Stmt       { return &lsl.LoadStmt{Dst: lsl.Reg(dst), Addr: lsl.Reg(addr)} }
func fence(k lsl.FenceKind) lsl.Stmt     { return &lsl.FenceStmt{Kind: k} }

func initLitmus() []lsl.Stmt {
	return []lsl.Stmt{
		c("i.x", lsl.Ptr(0)), c("i.y", lsl.Ptr(1)), c("i.z", lsl.Int(0)),
		st("i.x", "i.z"), st("i.y", "i.z"),
	}
}

func Tests() []Test {
	return []Test{
		{
			Name: "sb",
			Desc: "store buffering: both threads read 0 past the other's store",
			threads: [][]lsl.Stmt{
				{c("a.x", lsl.Ptr(0)), c("a.y", lsl.Ptr(1)), c("a.1", lsl.Int(1)),
					st("a.x", "a.1"), ld("a.r", "a.y")},
				{c("b.x", lsl.Ptr(0)), c("b.y", lsl.Ptr(1)), c("b.1", lsl.Int(1)),
					st("b.y", "b.1"), ld("b.r", "b.x")},
			},
			outcome: map[int]map[lsl.Reg]lsl.Value{
				1: {"a.r": lsl.Int(0)}, 2: {"b.r": lsl.Int(0)},
			},
			AllowedOn: map[memmodel.Model]bool{
				memmodel.TSO: true, memmodel.PSO: true, memmodel.Relaxed: true,
			},
		},
		{
			Name: "sb+fences",
			Desc: "store buffering with store-load fences",
			threads: [][]lsl.Stmt{
				{c("a.x", lsl.Ptr(0)), c("a.y", lsl.Ptr(1)), c("a.1", lsl.Int(1)),
					st("a.x", "a.1"), fence(lsl.FenceStoreLoad), ld("a.r", "a.y")},
				{c("b.x", lsl.Ptr(0)), c("b.y", lsl.Ptr(1)), c("b.1", lsl.Int(1)),
					st("b.y", "b.1"), fence(lsl.FenceStoreLoad), ld("b.r", "b.x")},
			},
			outcome: map[int]map[lsl.Reg]lsl.Value{
				1: {"a.r": lsl.Int(0)}, 2: {"b.r": lsl.Int(0)},
			},
			AllowedOn: map[memmodel.Model]bool{},
		},
		{
			Name: "mp",
			Desc: "message passing without fences",
			threads: [][]lsl.Stmt{
				{c("a.x", lsl.Ptr(0)), c("a.y", lsl.Ptr(1)), c("a.1", lsl.Int(1)),
					st("a.x", "a.1"), st("a.y", "a.1")},
				{c("b.x", lsl.Ptr(0)), c("b.y", lsl.Ptr(1)),
					ld("b.r1", "b.y"), ld("b.r2", "b.x")},
			},
			outcome: map[int]map[lsl.Reg]lsl.Value{
				2: {"b.r1": lsl.Int(1), "b.r2": lsl.Int(0)},
			},
			AllowedOn: map[memmodel.Model]bool{
				memmodel.PSO: true, memmodel.Relaxed: true,
			},
		},
		{
			Name: "mp+fences",
			Desc: "message passing with store-store/load-load fences",
			threads: [][]lsl.Stmt{
				{c("a.x", lsl.Ptr(0)), c("a.y", lsl.Ptr(1)), c("a.1", lsl.Int(1)),
					st("a.x", "a.1"), fence(lsl.FenceStoreStore), st("a.y", "a.1")},
				{c("b.x", lsl.Ptr(0)), c("b.y", lsl.Ptr(1)),
					ld("b.r1", "b.y"), fence(lsl.FenceLoadLoad), ld("b.r2", "b.x")},
			},
			outcome: map[int]map[lsl.Reg]lsl.Value{
				2: {"b.r1": lsl.Int(1), "b.r2": lsl.Int(0)},
			},
			AllowedOn: map[memmodel.Model]bool{},
		},
		{
			Name: "iriw",
			Desc: "paper Fig. 2: independent reads of independent writes (with load-load fences)",
			threads: [][]lsl.Stmt{
				{c("a.x", lsl.Ptr(0)), c("a.1", lsl.Int(1)), st("a.x", "a.1")},
				{c("b.y", lsl.Ptr(1)), c("b.1", lsl.Int(1)), st("b.y", "b.1")},
				{c("c.x", lsl.Ptr(0)), c("c.y", lsl.Ptr(1)),
					ld("c.r1", "c.x"), fence(lsl.FenceLoadLoad), ld("c.r2", "c.y")},
				{c("d.x", lsl.Ptr(0)), c("d.y", lsl.Ptr(1)),
					ld("d.r1", "d.y"), fence(lsl.FenceLoadLoad), ld("d.r2", "d.x")},
			},
			outcome: map[int]map[lsl.Reg]lsl.Value{
				3: {"c.r1": lsl.Int(1), "c.r2": lsl.Int(0)},
				4: {"d.r1": lsl.Int(1), "d.r2": lsl.Int(0)},
			},
			// Relaxed globally orders stores, so the outcome is
			// forbidden on every supported model (the point of
			// paper §2.3.3).
			AllowedOn: map[memmodel.Model]bool{},
		},
		{
			Name: "lb",
			Desc: "load buffering: loads reordered after program-later stores",
			threads: [][]lsl.Stmt{
				{c("a.x", lsl.Ptr(0)), c("a.y", lsl.Ptr(1)), c("a.1", lsl.Int(1)),
					ld("a.r", "a.x"), st("a.y", "a.1")},
				{c("b.x", lsl.Ptr(0)), c("b.y", lsl.Ptr(1)), c("b.1", lsl.Int(1)),
					ld("b.r", "b.y"), st("b.x", "b.1")},
			},
			outcome: map[int]map[lsl.Reg]lsl.Value{
				1: {"a.r": lsl.Int(1)}, 2: {"b.r": lsl.Int(1)},
			},
			// TSO and PSO preserve load→store order; only Relaxed
			// (which also drops dependency order, §2.3 relaxation 5)
			// admits the outcome.
			AllowedOn: map[memmodel.Model]bool{memmodel.Relaxed: true},
		},
		{
			Name: "lb+fences",
			Desc: "load buffering with load-store fences",
			threads: [][]lsl.Stmt{
				{c("a.x", lsl.Ptr(0)), c("a.y", lsl.Ptr(1)), c("a.1", lsl.Int(1)),
					ld("a.r", "a.x"), fence(lsl.FenceLoadStore), st("a.y", "a.1")},
				{c("b.x", lsl.Ptr(0)), c("b.y", lsl.Ptr(1)), c("b.1", lsl.Int(1)),
					ld("b.r", "b.y"), fence(lsl.FenceLoadStore), st("b.x", "b.1")},
			},
			outcome: map[int]map[lsl.Reg]lsl.Value{
				1: {"a.r": lsl.Int(1)}, 2: {"b.r": lsl.Int(1)},
			},
			AllowedOn: map[memmodel.Model]bool{},
		},
		{
			Name: "coRR",
			Desc: "same-address load-load reordering (relaxation 4)",
			threads: [][]lsl.Stmt{
				{c("a.x", lsl.Ptr(0)), c("a.1", lsl.Int(1)), st("a.x", "a.1")},
				{c("b.x", lsl.Ptr(0)), ld("b.r1", "b.x"), ld("b.r2", "b.x")},
			},
			outcome: map[int]map[lsl.Reg]lsl.Value{
				2: {"b.r1": lsl.Int(1), "b.r2": lsl.Int(0)},
			},
			AllowedOn: map[memmodel.Model]bool{memmodel.Relaxed: true},
		},
	}
}

// Run checks whether the outcome is observable on the model.
// Observable reports whether the outcome can occur on the model.
func (t Test) Observable(model memmodel.Model) (bool, error) {
	bodies := [][]lsl.Stmt{initLitmus()}
	bodies = append(bodies, t.threads...)
	info := ranges.Analyze(bodies)
	e := encode.New(model, info)
	threads := make([]encode.Thread, len(bodies))
	for i, b := range bodies {
		threads[i] = encode.Thread{Name: fmt.Sprintf("t%d", i),
			Segments: [][]lsl.Stmt{b}, OpIDs: []int{0}}
	}
	if err := e.Encode(threads); err != nil {
		return false, err
	}
	e.B.Assert(e.ErrorNode().Not())
	for ti, regs := range t.outcome {
		for reg, want := range regs {
			sv, ok := e.Envs[ti][reg]
			if !ok {
				return false, fmt.Errorf("no register %s in thread %d", reg, ti)
			}
			e.B.Assert(e.EqVal(sv, e.ConstVal(want)))
		}
	}
	return e.S.Solve() == sat.Sat, nil
}

// ObservableRF answers the same question through the polynomial
// reads-from backend: it enumerates the model's complete observation
// set over the outcome registers and tests membership. The test suite
// asserts agreement with the SAT answer on every model.
func (t Test) ObservableRF(model memmodel.Model) (bool, error) {
	bodies := [][]lsl.Stmt{initLitmus()}
	bodies = append(bodies, t.threads...)
	threads := make([]encode.Thread, len(bodies))
	for i, b := range bodies {
		threads[i] = encode.Thread{Name: fmt.Sprintf("t%d", i),
			Segments: [][]lsl.Stmt{b}, OpIDs: []int{0}}
	}
	p, err := rf.Scan(threads)
	if err != nil {
		return false, err
	}
	var entries []spec.Entry
	var want spec.Observation
	for ti := 1; ti < len(bodies); ti++ {
		regs, ok := t.outcome[ti]
		if !ok {
			continue
		}
		// Deterministic entry order: registers sorted within a thread.
		keys := make([]string, 0, len(regs))
		for reg := range regs {
			keys = append(keys, string(reg))
		}
		sort.Strings(keys)
		for _, k := range keys {
			entries = append(entries, spec.Entry{Label: k, Thread: ti, Reg: lsl.Reg(k)})
			want = append(want, regs[lsl.Reg(k)])
		}
	}
	set, _, err := p.Observations(model, entries, rf.Budget{})
	if err != nil {
		return false, err
	}
	return set.Has(want), nil
}

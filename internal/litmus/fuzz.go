// fuzz.go implements the differential litmus fuzzer: small random
// litmus programs are generated from fuzz bytes and checked the same
// way a harness test is, with every stage cross-checked against an
// independent implementation. Any disagreement is a bug in CheckFence
// itself:
//
//   - the SAT-mined serial observation set must equal the set
//     enumerated by the reference interpreter over all thread
//     interleavings (the serial model runs whole threads atomically,
//     so these are exactly the thread permutations);
//   - the inclusion verdict must agree across the encoder/solver
//     configurations cmd/checkfence exposes (-simplify, -portfolio,
//     -cube);
//   - verdicts must be monotone in model strength (an execution of a
//     stronger model is an execution of every weaker one);
//   - the polynomial reads-from engine (internal/rf) must accept every
//     generated program, reproduce the interpreter's serial set, and
//     match the SAT-mined observation set and inclusion verdict
//     bit-identically on every model;
//   - mining seeded with a stronger model's observation set (the
//     sweep's monotonic warm start) must reproduce the unseeded set;
//   - the selector-guarded sweep encoder, driven through the two-phase
//     SweepCheck protocol, must reproduce every per-model verdict;
//   - every counterexample trace must survive the full validate
//     pipeline (axiom re-check plus interpreter replay).
package litmus

import (
	"fmt"
	"strings"

	"checkfence/internal/encode"
	"checkfence/internal/interp"
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/ranges"
	"checkfence/internal/rf"
	"checkfence/internal/spec"
	"checkfence/internal/trace"
	"checkfence/internal/validate"
)

const (
	maxGenThreads      = 3
	maxGenOpsPerThread = 5
)

// GenProgram is a litmus program generated from fuzz bytes, in the
// shape Encoder.Encode expects: thread 0 is the initialization
// pseudo-thread, and every other thread is a single operation (one
// segment, OpID 0), so the serial model interleaves whole threads.
type GenProgram struct {
	Prog        *lsl.Program
	Bodies      [][]lsl.Stmt
	Threads     []encode.Thread
	Entries     []spec.Entry
	Names       map[int64]string
	ThreadNames []string
	desc        []string
}

// Generate decodes fuzz bytes into a program. The mapping is total:
// every byte string yields a well-formed, error-free program.
//
//	data[0]        thread count: 1 + data[0]%3
//	data[1+i]      one instruction for thread i%nThreads:
//	  bits 0-2     0-2 store, 3-5 load, 6-7 fence
//	  bit  3       address: 0 = x, 1 = y
//	  bits 3-4     fence kind (fences only)
//
// Store values are distinct across the whole program so that
// reads-from edges are observable in the final register values.
func Generate(data []byte) *GenProgram {
	nThreads := 2
	if len(data) > 0 {
		nThreads = 1 + int(data[0])%maxGenThreads
		data = data[1:]
	}
	locs := [2]string{"x", "y"}
	prog := lsl.NewProgram()
	prog.AddGlobal("x", 1)
	prog.AddGlobal("y", 1)

	p := &GenProgram{Prog: prog, Names: map[int64]string{}}
	for _, g := range prog.Globals {
		p.Names[g.Base] = g.Name
	}

	bodies := make([][]lsl.Stmt, nThreads+1)
	desc := make([]string, nThreads+1)
	bodies[0] = initLitmus()
	desc[0] = "init: x=0 y=0"
	for t := 1; t <= nThreads; t++ {
		bodies[t] = []lsl.Stmt{
			c(fmt.Sprintf("t%d.x", t), lsl.Ptr(0)),
			c(fmt.Sprintf("t%d.y", t), lsl.Ptr(1)),
		}
		desc[t] = fmt.Sprintf("t%d:", t)
	}

	counts := make([]int, nThreads+1)
	stores := make([]int, nThreads+1)
	loads := make([]int, nThreads+1)
	for i, b := range data {
		t := i%nThreads + 1
		if counts[t] >= maxGenOpsPerThread {
			continue
		}
		addr := locs[(b>>3)&1]
		addrReg := fmt.Sprintf("t%d.%s", t, addr)
		switch {
		case b&7 <= 2:
			val := int64((t-1)*maxGenOpsPerThread + stores[t] + 1)
			vreg := fmt.Sprintf("t%d.v%d", t, stores[t])
			bodies[t] = append(bodies[t], c(vreg, lsl.Int(val)), st(addrReg, vreg))
			desc[t] += fmt.Sprintf(" st %s=%d;", addr, val)
			stores[t]++
		case b&7 <= 5:
			dst := lsl.Reg(fmt.Sprintf("t%d.r%d", t, loads[t]))
			bodies[t] = append(bodies[t], &lsl.LoadStmt{Dst: dst, Addr: lsl.Reg(addrReg)})
			p.Entries = append(p.Entries, spec.Entry{Label: string(dst), Thread: t, Reg: dst})
			desc[t] += fmt.Sprintf(" ld r%d=%s;", loads[t], addr)
			loads[t]++
		default:
			k := lsl.FenceKind((b >> 3) & 3)
			bodies[t] = append(bodies[t], fence(k))
			desc[t] += fmt.Sprintf(" fence %s;", k)
		}
		counts[t]++
	}

	p.Bodies = bodies
	p.desc = desc
	p.ThreadNames = make([]string, len(bodies))
	p.Threads = make([]encode.Thread, len(bodies))
	for i, b := range bodies {
		name := fmt.Sprintf("t%d", i)
		if i == 0 {
			name = "init"
		}
		p.ThreadNames[i] = name
		p.Threads[i] = encode.Thread{Name: name, Segments: [][]lsl.Stmt{b}, OpIDs: []int{0}}
	}
	return p
}

// Desc renders the program one thread per line, for failure reports.
func (p *GenProgram) Desc() string { return strings.Join(p.desc, "\n") }

// SerialObservations enumerates the specification S(T,I) with the
// reference interpreter, independently of the SAT pipeline. Each
// generated thread is one operation and the serial model executes
// operations atomically, so the serial executions are exactly the
// permutations of the threads run whole after initialization.
func (p *GenProgram) SerialObservations() (*spec.Set, error) {
	n := len(p.Bodies) - 1
	set := spec.NewSet()
	runOrder := func(order []int) error {
		m := interp.NewMachine(p.Prog)
		envs := make([]map[lsl.Reg]lsl.Value, len(p.Bodies))
		if _, err := m.RunBody(p.Bodies[0]); err != nil {
			return fmt.Errorf("serial enumeration: init: %w", err)
		}
		for _, t := range order {
			env, err := m.RunBody(p.Bodies[t])
			if err != nil {
				return fmt.Errorf("serial enumeration: thread %d: %w", t, err)
			}
			envs[t] = env
		}
		obs := make(spec.Observation, len(p.Entries))
		for i, ent := range p.Entries {
			v, ok := envs[ent.Thread][ent.Reg]
			if !ok {
				v = lsl.Undef()
			}
			obs[i] = v
		}
		set.Add(obs)
		return nil
	}
	perm := make([]int, 0, n)
	used := make([]bool, n+1)
	var rec func() error
	rec = func() error {
		if len(perm) == n {
			return runOrder(perm)
		}
		for t := 1; t <= n; t++ {
			if used[t] {
				continue
			}
			used[t] = true
			perm = append(perm, t)
			if err := rec(); err != nil {
				return err
			}
			perm = perm[:len(perm)-1]
			used[t] = false
		}
		return nil
	}
	if err := rec(); err != nil {
		return nil, err
	}
	return set, nil
}

// diffConfig pairs an encoder configuration with a solve strategy —
// the knobs cmd/checkfence exposes as -simplify, -portfolio and -cube.
type diffConfig struct {
	name  string
	enc   encode.Config
	strat spec.Strategy
}

func diffConfigs() []diffConfig {
	return []diffConfig{
		{"default", encode.DefaultConfig(), spec.Strategy{}},
		{"tseitin", encode.Config{}, spec.Strategy{}},
		{"portfolio", encode.DefaultConfig(), spec.Strategy{Portfolio: 2, ShareClauses: true}},
		{"cube", encode.DefaultConfig(), spec.Strategy{Cube: 2}},
	}
}

// RunDifferential generates a program from fuzz bytes and cross-checks
// the whole pipeline. A non-nil error is a divergence — a bug in
// CheckFence, never a property of the generated program.
func RunDifferential(data []byte) error {
	p := Generate(data)
	info := ranges.Analyze(p.Bodies)

	want, err := p.SerialObservations()
	if err != nil {
		return fmt.Errorf("%v\nprogram:\n%s", err, p.Desc())
	}

	// Stage 1: SAT mining on the Serial model must reproduce the
	// interpreter-enumerated set under every configuration.
	for _, cfg := range diffConfigs() {
		e := encode.NewWithConfig(memmodel.Serial, info, cfg.enc)
		if err := e.Encode(p.Threads); err != nil {
			return fmt.Errorf("encode serial [%s]: %v\nprogram:\n%s", cfg.name, err, p.Desc())
		}
		mined, _, err := spec.MineWith(e, p.Entries, cfg.strat)
		if err != nil {
			return fmt.Errorf("mine [%s]: %v\nprogram:\n%s", cfg.name, err, p.Desc())
		}
		if !mined.Equal(want) {
			return fmt.Errorf("divergence: SAT-mined serial set [%s] != interpreter enumeration\nprogram:\n%s\nmined:      %v\nenumerated: %v",
				cfg.name, p.Desc(), mined.All(), want.All())
		}
	}

	// Stage 1b: the polynomial reads-from backend. Every generated
	// program lies inside its fragment, so Scan must accept, and its
	// Serial enumeration must reproduce the interpreter set.
	rfProg, err := rf.Scan(p.Threads)
	if err != nil {
		return fmt.Errorf("rf scan rejected a generated program: %v\nprogram:\n%s", err, p.Desc())
	}
	rfSerial, _, err := rfProg.Observations(memmodel.Serial, p.Entries, rf.Budget{})
	if err != nil {
		return fmt.Errorf("rf serial enumeration: %v\nprogram:\n%s", err, p.Desc())
	}
	if !rfSerial.Equal(want) {
		return fmt.Errorf("divergence: rf serial set != interpreter enumeration\nprogram:\n%s\nrf:         %v\nenumerated: %v",
			p.Desc(), rfSerial.All(), want.All())
	}

	// Stage 2: inclusion verdicts per model must agree across
	// configurations, and every counterexample must validate.
	models := memmodel.All()
	fail := map[memmodel.Model]bool{}
	mined := map[memmodel.Model]*spec.Set{}
	for _, model := range models {
		verdicts := make([]bool, 0, 4)
		for _, cfg := range diffConfigs() {
			e := encode.NewWithConfig(model, info, cfg.enc)
			if err := e.Encode(p.Threads); err != nil {
				return fmt.Errorf("encode %s [%s]: %v\nprogram:\n%s", model, cfg.name, err, p.Desc())
			}
			cex, err := spec.CheckInclusionWith(e, p.Entries, want, cfg.strat)
			if err != nil {
				return fmt.Errorf("inclusion %s [%s]: %v\nprogram:\n%s", model, cfg.name, err, p.Desc())
			}
			if cex != nil {
				tr := trace.Decode(e, cex, p.Entries, p.Names, p.ThreadNames)
				if verr := validate.Check(tr, p.Threads, p.Prog); verr != nil {
					return fmt.Errorf("divergence: %s [%s] counterexample failed validation: %v\nprogram:\n%s\nsuspect trace:\n%s",
						model, cfg.name, verr, p.Desc(), tr)
				}
			}
			verdicts = append(verdicts, cex != nil)
		}
		for i := 1; i < len(verdicts); i++ {
			if verdicts[i] != verdicts[0] {
				return fmt.Errorf("divergence: %s verdict differs across configs (%s=%v, %s=%v)\nprogram:\n%s",
					model, diffConfigs()[0].name, verdicts[0], diffConfigs()[i].name, verdicts[i], p.Desc())
			}
		}
		fail[model] = verdicts[0]

		// The rf backend on the same model: its full observation set must
		// be bit-identical to SAT blocking-clause mining, its inclusion
		// verdict must match, and its witness trace must survive the same
		// validation pipeline as the SAT counterexamples.
		rfSet, _, err := rfProg.Observations(model, p.Entries, rf.Budget{})
		if err != nil {
			return fmt.Errorf("rf enumeration %s: %v\nprogram:\n%s", model, err, p.Desc())
		}
		e := encode.New(model, info)
		if err := e.Encode(p.Threads); err != nil {
			return fmt.Errorf("encode %s [rf-mine]: %v\nprogram:\n%s", model, err, p.Desc())
		}
		satSet, _, err := spec.MineWith(e, p.Entries, spec.Strategy{})
		if err != nil {
			return fmt.Errorf("mine %s [rf-mine]: %v\nprogram:\n%s", model, err, p.Desc())
		}
		if !rfSet.Equal(satSet) {
			return fmt.Errorf("divergence: rf observation set != SAT-mined set on %s\nprogram:\n%s\nrf:  %v\nsat: %v",
				model, p.Desc(), rfSet.All(), satSet.All())
		}
		mined[model] = satSet
		rfCex, _, err := rfProg.CheckInclusion(model, p.Entries, want, p.Names, rf.Budget{})
		if err != nil {
			return fmt.Errorf("rf inclusion %s: %v\nprogram:\n%s", model, err, p.Desc())
		}
		if (rfCex != nil) != verdicts[0] {
			return fmt.Errorf("divergence: rf verdict on %s (cex=%v) != SAT verdict (cex=%v)\nprogram:\n%s",
				model, rfCex != nil, verdicts[0], p.Desc())
		}
		if rfCex != nil {
			if verr := validate.Check(rfCex, p.Threads, p.Prog); verr != nil {
				return fmt.Errorf("divergence: rf counterexample on %s failed validation: %v\nprogram:\n%s\nsuspect trace:\n%s",
					model, verr, p.Desc(), rfCex)
			}
		}
	}

	// The serial executions define the specification, so checking the
	// serial encoder against its own mined set must always pass.
	if fail[memmodel.Serial] {
		return fmt.Errorf("divergence: serial inclusion check failed against its own specification\nprogram:\n%s", p.Desc())
	}
	// Monotonicity: executions of a stronger model are a subset of the
	// weaker model's, so a counterexample on the stronger model implies
	// one on the weaker.
	for _, strong := range models {
		for _, weak := range models {
			if strong.StrongerThan(weak) && fail[strong] && !fail[weak] {
				return fmt.Errorf("divergence: counterexample on %s but none on weaker %s\nprogram:\n%s",
					strong, weak, p.Desc())
			}
		}
	}

	// Stage 3: monotonic warm-started mining. memmodel.All() is
	// strongest-first, so seeding each model's mine with the next
	// stronger model's full set — exactly what a strongest-first sweep
	// does — must reproduce the unseeded enumeration and report the
	// seed as work skipped.
	for i := 1; i < len(models); i++ {
		weak, seed := models[i], mined[models[i-1]]
		e := encode.New(weak, info)
		if err := e.Encode(p.Threads); err != nil {
			return fmt.Errorf("encode %s [seeded]: %v\nprogram:\n%s", weak, err, p.Desc())
		}
		seeded, stats, err := spec.MineWith(e, p.Entries, spec.Strategy{Seed: seed})
		if err != nil {
			return fmt.Errorf("seeded mine %s: %v\nprogram:\n%s", weak, err, p.Desc())
		}
		if !seeded.Equal(mined[weak]) {
			return fmt.Errorf("divergence: %s mine seeded by %s != unseeded set\nprogram:\n%s\nseeded:   %v\nunseeded: %v",
				weak, models[i-1], p.Desc(), seeded.All(), mined[weak].All())
		}
		if stats.Seeded != seed.Len() {
			return fmt.Errorf("divergence: %s seeded mine reports Seeded=%d, want %d\nprogram:\n%s",
				weak, stats.Seeded, seed.Len(), p.Desc())
		}
	}

	// Stage 4: the sweep encoder. One selector-guarded encoding over
	// every non-Serial model, driven through the two-phase SweepCheck
	// protocol, must reproduce the per-model inclusion verdicts of the
	// independent encoders, and its counterexamples must validate.
	sweepModels := make([]memmodel.Model, 0, len(models)-1)
	for _, m := range models {
		if m != memmodel.Serial {
			sweepModels = append(sweepModels, m)
		}
	}
	se, err := encode.NewSweepWithConfig(sweepModels, info, encode.DefaultConfig())
	if err != nil {
		return fmt.Errorf("sweep encoder: %v\nprogram:\n%s", err, p.Desc())
	}
	if err := se.Encode(p.Threads); err != nil {
		return fmt.Errorf("sweep encode: %v\nprogram:\n%s", err, p.Desc())
	}
	sc, err := spec.NewSweepCheck(se, p.Entries)
	if err != nil {
		return fmt.Errorf("sweep check: %v\nprogram:\n%s", err, p.Desc())
	}
	for _, m := range sweepModels {
		cex, err := sc.ErrorCheck(m, spec.Strategy{})
		if err != nil {
			return fmt.Errorf("sweep error check %s: %v\nprogram:\n%s", m, err, p.Desc())
		}
		if cex != nil {
			return fmt.Errorf("divergence: sweep error check on %s found an error in an error-free program\nprogram:\n%s",
				m, p.Desc())
		}
	}
	if err := sc.BeginInclusion(want); err != nil {
		return fmt.Errorf("sweep begin inclusion: %v\nprogram:\n%s", err, p.Desc())
	}
	for _, m := range sweepModels {
		cex, err := sc.Inclusion(m, spec.Strategy{})
		if err != nil {
			return fmt.Errorf("sweep inclusion %s: %v\nprogram:\n%s", m, err, p.Desc())
		}
		if (cex != nil) != fail[m] {
			return fmt.Errorf("divergence: sweep verdict on %s (cex=%v) != independent verdict (cex=%v)\nprogram:\n%s",
				m, cex != nil, fail[m], p.Desc())
		}
		if cex != nil {
			tr := trace.Decode(se, cex, p.Entries, p.Names, p.ThreadNames)
			tr.Model = m
			if verr := validate.Check(tr, p.Threads, p.Prog); verr != nil {
				return fmt.Errorf("divergence: sweep counterexample on %s failed validation: %v\nprogram:\n%s\nsuspect trace:\n%s",
					m, verr, p.Desc(), tr)
			}
		}
	}
	return nil
}

package litmus

import (
	"testing"

	"checkfence/internal/memmodel"
)

// TestRFLitmusTable runs every classic litmus shape (SB, MP, LB, IRIW,
// CoRR, and their fenced variants) through the polynomial reads-from
// backend on all five models and checks the verdict against both the
// hand-written ground truth and the SAT encoder's answer.
func TestRFLitmusTable(t *testing.T) {
	for _, test := range Tests() {
		for _, model := range memmodel.All() {
			gotRF, err := test.ObservableRF(model)
			if err != nil {
				t.Fatalf("%s on %s: rf: %v", test.Name, model, err)
			}
			want := test.AllowedOn[model]
			if gotRF != want {
				t.Errorf("%s on %s: rf observable=%v, ground truth %v", test.Name, model, gotRF, want)
			}
			gotSAT, err := test.Observable(model)
			if err != nil {
				t.Fatalf("%s on %s: sat: %v", test.Name, model, err)
			}
			if gotRF != gotSAT {
				t.Errorf("%s on %s: rf observable=%v, sat observable=%v", test.Name, model, gotRF, gotSAT)
			}
		}
	}
}

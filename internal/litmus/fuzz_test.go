package litmus

import (
	"fmt"
	"math/rand"
	"testing"
)

// fuzzSeeds anchor the classic litmus shapes in the generator's byte
// encoding (see Generate): stores are 0-2, loads 3-5, fences 6-7 in
// the low bits; bit 3 picks the address, bits 3-4 the fence kind.
var fuzzSeeds = [][]byte{
	{1, 0, 8, 11, 3},           // sb: st x || st y, then cross loads
	{1, 0, 11, 8, 3},           // mp: st x, st y || ld y, ld x
	{1, 0, 8, 22, 22, 11, 3},   // sb with store-load fences
	{1, 0, 11, 30, 6, 8, 3},    // mp with store-store/load-load fences
	{1, 0, 3, 0, 3},            // coRR: two stores to x || two loads of x
	{2, 0, 3, 11, 8, 3, 11, 6}, // three threads, mixed ops and a fence
}

func TestGenerateShapes(t *testing.T) {
	p := Generate(fuzzSeeds[0]) // sb
	if len(p.Threads) != 3 {
		t.Fatalf("sb seed: %d threads, want 3 (init + 2)", len(p.Threads))
	}
	if len(p.Entries) != 2 {
		t.Fatalf("sb seed: %d entries, want 2", len(p.Entries))
	}
	for i, want := range []string{"t1.r0", "t2.r0"} {
		if p.Entries[i].Label != want {
			t.Errorf("entry %d label = %q, want %q", i, p.Entries[i].Label, want)
		}
	}
	// The mapping is total: arbitrary bytes still yield a program.
	for _, data := range [][]byte{nil, {0}, {255, 255, 255, 255}} {
		q := Generate(data)
		if len(q.Threads) < 2 {
			t.Errorf("Generate(%v): %d threads, want >= 2", data, len(q.Threads))
		}
	}
}

func TestSerialObservationsSB(t *testing.T) {
	p := Generate(fuzzSeeds[0])
	set, err := p.SerialObservations()
	if err != nil {
		t.Fatal(err)
	}
	// Two whole-thread orders exist; both leave the loads reading the
	// other thread's store, so one reads fresh and one reads init 0.
	if set.Len() != 2 {
		t.Fatalf("sb serial set has %d observations, want 2:\n%v", set.Len(), set.All())
	}
}

func TestDifferentialSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("differential run over all seeds is not short")
	}
	for i, seed := range fuzzSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", i), func(t *testing.T) {
			t.Parallel()
			if err := RunDifferential(seed); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDifferentialRandom drives the full differential pipeline —
// which now pits the rf backend's enumeration against the interpreter
// and SAT mining on every model — over a deterministic random sample
// of the generator's program space.
func TestDifferentialRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized differential run is not short")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		data := make([]byte, 1+rng.Intn(12))
		rng.Read(data)
		if err := RunDifferential(data); err != nil {
			t.Fatalf("iteration %d, data %v: %v", i, data, err)
		}
	}
}

func FuzzDifferential(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		if err := RunDifferential(data); err != nil {
			t.Fatal(err)
		}
	})
}

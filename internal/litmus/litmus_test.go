package litmus

import (
	"testing"

	"checkfence/internal/memmodel"
)

// TestAllLitmusOutcomes runs every litmus test on both hardware
// models and checks the observability verdicts against the expected
// table (the paper's Fig. 2 IRIW among them).
func TestAllLitmusOutcomes(t *testing.T) {
	models := []memmodel.Model{memmodel.SequentialConsistency, memmodel.TSO, memmodel.PSO, memmodel.Relaxed}
	for _, lt := range Tests() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			t.Parallel()
			for _, m := range models {
				observable, err := lt.Observable(m)
				if err != nil {
					t.Fatalf("%s on %s: %v", lt.Name, m, err)
				}
				if observable != lt.AllowedOn[m] {
					t.Errorf("%s on %s: observable=%v, expected %v",
						lt.Name, m, observable, lt.AllowedOn[m])
				}
			}
		})
	}
}

// TestSerialForbidsEverything: all the listed outcomes are
// non-serializable, so the Serial model forbids them too.
func TestSerialForbidsRelaxedOutcomes(t *testing.T) {
	for _, lt := range Tests() {
		observable, err := lt.Observable(memmodel.Serial)
		if err != nil {
			t.Fatalf("%s: %v", lt.Name, err)
		}
		if observable {
			t.Errorf("%s: outcome observable under Serial", lt.Name)
		}
	}
}

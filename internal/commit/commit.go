// Package commit implements the commit-point checking method of the
// authors' earlier case study (CAV'06 [4]), which the paper's Fig. 12
// uses as the baseline for the observation-set method's speedup.
//
// Instead of mining an observation set, the implementation is
// annotated with commit points: each operation executes a commit()
// (a store to the private __commit cell) inside the atomic block of
// its deciding access. The memory order of the commit stores induces
// a serialization of the operations; a SAT-encoded reference circuit
// replays the abstract data type in that order and the check asks for
// an execution where some operation's actual result differs from the
// replayed expectation.
//
// Queue semantics are provided (the Fig. 12 comparison runs on the
// queue tests); the paper notes the method's general weakness — some
// algorithms, like the lazy list, have no known commit points, which
// is one motivation for the observation-set method.
package commit

import (
	"fmt"
	"os"
	"time"

	"checkfence/internal/bitvec"
	"checkfence/internal/ctrans"
	"checkfence/internal/encode"
	"checkfence/internal/harness"
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/ranges"
	"checkfence/internal/sat"
)

// Stats quantifies one commit-point check.
type Stats struct {
	Instrs     int
	CNFVars    int
	CNFClauses int
	EncodeTime time.Duration
	RefuteTime time.Duration
	TotalTime  time.Duration
	BoundRound int
}

// Result is the outcome.
type Result struct {
	Impl  string
	Test  string
	Model memmodel.Model
	Pass  bool
	Desc  string // short mismatch description when failing
	Stats Stats
}

// Check runs the commit-point method. The implementation must carry
// commit() annotations (e.g. "msn-commit") and be of kind "queue".
func Check(implName, testName string, model memmodel.Model) (*Result, error) {
	impl, err := harness.Get(implName)
	if err != nil {
		return nil, err
	}
	if impl.Kind != "queue" {
		return nil, fmt.Errorf("commit: only queue semantics are implemented, %s is a %s",
			impl.Name, impl.Kind)
	}
	test, err := harness.GetTest(impl, testName)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Impl: implName, Test: testName, Model: model}

	built, err := harness.Build(impl, test)
	if err != nil {
		return nil, err
	}
	// Same flow as the core checker: a full check at the initial
	// bounds (counterexamples make bounds irrelevant), then a
	// probe-grow loop, then one final check at the converged bounds.
	bounds := map[string]int{}
	unrolled, err := built.Unroll(bounds)
	if err != nil {
		return nil, err
	}
	info := ranges.Analyze(unrolled.Bodies)
	res.Stats.BoundRound = 1
	failed, err := runCommitCheck(res, built, unrolled, info, model)
	if err != nil {
		return nil, err
	}
	if failed {
		res.Stats.TotalTime = time.Since(start)
		return res, nil
	}

	// Probe under SC (see core.probeModel: weak-model probes diverge).
	probeM := model
	if memmodel.SequentialConsistency.StrongerThan(probeM) &&
		probeM != memmodel.SequentialConsistency {
		probeM = memmodel.SequentialConsistency
	}
	grewAny := false
	for round := 0; ; round++ {
		if round >= 16 {
			return nil, fmt.Errorf("commit: loop bounds did not converge")
		}
		probe := encode.New(probeM, info)
		if err := probe.Encode(unrolled.Threads); err != nil {
			return nil, err
		}
		probe.AssertSomeOverflow()
		if probe.S.Solve() != sat.Sat {
			break
		}
		for _, id := range probe.OverflowingLoops() {
			key, ok := unrolled.LoopKey(id)
			if !ok {
				return nil, fmt.Errorf("commit: unknown loop id %d", id)
			}
			bounds[key] = unrolled.BoundFor(id) + 1
		}
		grewAny = true
		res.Stats.BoundRound = round + 2
		unrolled, err = built.Unroll(bounds)
		if err != nil {
			return nil, err
		}
		info = ranges.Analyze(unrolled.Bodies)
	}
	if grewAny {
		if _, err := runCommitCheck(res, built, unrolled, info, model); err != nil {
			return nil, err
		}
	}
	res.Stats.TotalTime = time.Since(start)
	return res, nil
}

// runCommitCheck encodes and solves the commit-point condition at the
// current bounds, filling res. It reports whether a violation was
// found.
func runCommitCheck(res *Result, built *harness.Built, unrolled *harness.Unrolled,
	info *ranges.Info, model memmodel.Model) (bool, error) {

	encStart := time.Now()
	enc := encode.New(model, info)
	if err := enc.Encode(unrolled.Threads); err != nil {
		return false, err
	}
	enc.AssertNoOverflow()
	bad, err := buildSpecCircuit(enc, built)
	if err != nil {
		return false, err
	}
	enc.B.Assert(enc.B.Or(bad, enc.ErrorNode()))
	res.Stats.EncodeTime += time.Since(encStart)
	res.Stats.Instrs = unrolled.Instrs

	if os.Getenv("COMMIT_DEBUG") != "" {
		ss := enc.S.Stats()
		fmt.Fprintf(os.Stderr, "commit check: accesses=%d vars=%d clauses=%d\n",
			len(enc.Accesses), ss.Vars, ss.Clauses)
	}
	refStart := time.Now()
	st := enc.S.Solve()
	if os.Getenv("COMMIT_DEBUG") != "" {
		fmt.Fprintf(os.Stderr, "commit check: %v after %v (%+v)\n",
			st, time.Since(refStart), enc.S.Stats())
	}
	res.Stats.RefuteTime += time.Since(refStart)
	ss := enc.S.Stats()
	res.Stats.CNFVars = ss.Vars
	res.Stats.CNFClauses = ss.Clauses
	switch st {
	case sat.Sat:
		res.Pass = false
		res.Desc = "operation result differs from commit-order replay"
		return true, nil
	case sat.Unsat:
		res.Pass = true
		return false, nil
	default:
		return false, fmt.Errorf("commit: solver returned %v", st)
	}
}

// opCommit holds the commit candidates of one operation invocation.
type opCommit struct {
	op       harness.ObsOp
	accesses []int // commit-store access indices in program order
}

// buildSpecCircuit returns a node that is true iff some operation's
// observed result disagrees with the queue replayed in commit order
// (or some operation never committed).
func buildSpecCircuit(enc *encode.Encoder, built *harness.Built) (bitvec.Node, error) {
	g, ok := built.Unit.Prog.GlobalByName(ctrans.CommitGlobal)
	if !ok {
		return bitvec.False, fmt.Errorf("commit: %s has no commit annotations", built.Impl.Name)
	}
	commitLoc := lsl.LocOf(lsl.Ptr(g.Base))

	// Group commit stores by operation invocation (thread, opID). A
	// commit store is recognized by its address register's value set:
	// exactly the __commit cell.
	byOp := map[[2]int][]int{}
	for i, a := range enc.Accesses {
		if a.IsLoad {
			continue
		}
		addrs := enc.Info.AddrSet(a.AddrReg)
		if len(addrs) != 1 || lsl.LocOf(addrs[0]) != commitLoc {
			continue
		}
		byOp[[2]int{a.Thread, a.OpID}] = append(byOp[[2]int{a.Thread, a.OpID}], i)
	}

	var ops []opCommit
	for _, oo := range built.ObsOps {
		accs := byOp[[2]int{oo.Thread, oo.Seg}]
		if len(accs) == 0 {
			return bitvec.False, fmt.Errorf(
				"commit: operation %s (thread %d, seg %d) has no commit point",
				oo.Mnemonic, oo.Thread, oo.Seg)
		}
		ops = append(ops, opCommit{op: oo, accesses: accs})
	}

	b := enc.B
	// Effective commit per op: the program-order-last executed
	// candidate.
	eff := make([][]bitvec.Node, len(ops))
	committed := make([]bitvec.Node, len(ops))
	for i, oc := range ops {
		eff[i] = make([]bitvec.Node, len(oc.accesses))
		later := bitvec.False
		for k := len(oc.accesses) - 1; k >= 0; k-- {
			exec := enc.Accesses[oc.accesses[k]].Exec
			eff[i][k] = b.And(exec, later.Not())
			later = b.Or(later, exec)
		}
		committed[i] = later
	}

	// before(i,j): op i's effective commit precedes op j's in <M.
	// Same-thread pairs fold to constants (commit stores target one
	// cell, so program order pins their memory order); cross-thread
	// pairs get a dedicated order variable coupled clausally to the
	// memory order of the effective commits, which propagates far
	// better than an or-tree over all candidate pairs.
	n := len(ops)
	beforeM := make([][]bitvec.Node, n)
	for i := range beforeM {
		beforeM[i] = make([]bitvec.Node, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			oi, oj := ops[i].op, ops[j].op
			var bij bitvec.Node
			switch {
			case oi.Thread == oj.Thread:
				bij = bitvec.Const(oi.Seg < oj.Seg)
			case oi.Thread == 0:
				bij = bitvec.True // init ops precede everything
			case oj.Thread == 0:
				bij = bitvec.False
			default:
				bij = b.Var()
				for ci, c := range ops[i].accesses {
					for dj, d := range ops[j].accesses {
						m := mNode(enc, c, d)
						pre := b.And(eff[i][ci], eff[j][dj])
						// pre -> (bij <-> m)
						b.AssertOr(pre.Not(), m.Not(), bij)
						b.AssertOr(pre.Not(), m, bij.Not())
					}
				}
			}
			beforeM[i][j] = bij
			beforeM[j][i] = bij.Not()
		}
	}
	// Redundant transitivity over the op order speeds up refutation.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if i == j || j == k || i == k {
					continue
				}
				b.AssertOr(beforeM[i][j].Not(), beforeM[j][k].Not(), beforeM[i][k])
			}
		}
	}
	before := func(i, j int) bitvec.Node { return beforeM[i][j] }

	// Serialization position of each op.
	posW := bitvec.WidthFor(int64(n))
	pos := make([]bitvec.BV, n)
	for i := 0; i < n; i++ {
		cnt := bitvec.ConstBV(posW, 0)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			bit := make(bitvec.BV, 1)
			bit[0] = before(j, i)
			cnt = b.AddBV(cnt, bit.Extend(posW))
		}
		pos[i] = cnt
	}

	// One-hot step selectors. When every operation commits, each step
	// is taken by exactly one operation; asserting that (conditional
	// on all-committed, so non-committing counterexamples survive)
	// gives the solver direct propagation across the replay circuit,
	// which plain adder chains lack.
	allCommitted := b.AndAll(committed...)
	sel := make([][]bitvec.Node, n)
	for i := 0; i < n; i++ {
		sel[i] = make([]bitvec.Node, n)
		for t := 0; t < n; t++ {
			sel[i][t] = b.EqBV(pos[i], bitvec.ConstBV(posW, int64(t)))
		}
	}
	for t := 0; t < n; t++ {
		atLeast := []bitvec.Node{allCommitted.Not()}
		for i := 0; i < n; i++ {
			atLeast = append(atLeast, sel[i][t])
			for j := i + 1; j < n; j++ {
				b.AssertOr(allCommitted.Not(), sel[i][t].Not(), sel[j][t].Not())
			}
		}
		b.AssertOr(atLeast...)
	}

	// Replay the queue in commit order.
	capacity := 0
	for _, oc := range ops {
		if oc.op.Mnemonic == "e" {
			capacity++
		}
	}
	if capacity == 0 {
		capacity = 1
	}
	ctrW := bitvec.WidthFor(int64(capacity + 1))
	slots := make([]bitvec.Node, capacity)
	for i := range slots {
		slots[i] = bitvec.False
	}
	head := bitvec.ConstBV(ctrW, 0)
	tail := bitvec.ConstBV(ctrW, 0)

	argBit := func(i int) bitvec.Node {
		if ops[i].op.ArgIdx < 0 {
			return bitvec.False
		}
		ent := built.Entries[ops[i].op.ArgIdx]
		sv := enc.Envs[ent.Thread][ent.Reg]
		return sv.Comps[0][0]
	}
	entryVal := func(idx int) (encode.SymVal, error) {
		ent := built.Entries[idx]
		sv, ok := enc.Envs[ent.Thread][ent.Reg]
		if !ok {
			return encode.SymVal{}, fmt.Errorf("commit: missing register %s", ent.Reg)
		}
		return sv, nil
	}

	bad := bitvec.False
	for i := range ops {
		bad = b.Or(bad, committed[i].Not())
	}

	expRet := make([]bitvec.Node, n) // for dequeues: expected non-empty
	expOut := make([]bitvec.Node, n) // expected value bit
	for i := range ops {
		expRet[i] = bitvec.False
		expOut[i] = bitvec.False
	}

	for t := 0; t < n; t++ {
		tc := bitvec.ConstBV(posW, int64(t))
		newSlots := append([]bitvec.Node(nil), slots...)
		newHead, newTail := head, tail
		for i, oc := range ops {
			sel := b.EqBV(pos[i], tc)
			switch oc.op.Mnemonic {
			case "e":
				v := argBit(i)
				for s := 0; s < capacity; s++ {
					atSlot := b.And(sel, b.EqBV(tail, bitvec.ConstBV(ctrW, int64(s))))
					newSlots[s] = b.Ite(atSlot, v, newSlots[s])
				}
				newTail = b.MuxBV(sel, b.AddBV(tail, bitvec.ConstBV(ctrW, 1)), newTail)
			case "d":
				empty := b.EqBV(head, tail)
				out := bitvec.False
				for s := 0; s < capacity; s++ {
					out = b.Ite(b.EqBV(head, bitvec.ConstBV(ctrW, int64(s))), slots[s], out)
				}
				expRet[i] = b.Ite(sel, empty.Not(), expRet[i])
				expOut[i] = b.Ite(sel, out, expOut[i])
				adv := b.And(sel, empty.Not())
				newHead = b.MuxBV(adv, b.AddBV(head, bitvec.ConstBV(ctrW, 1)), newHead)
			default:
				return bitvec.False, fmt.Errorf("commit: unsupported op %q", oc.op.Mnemonic)
			}
		}
		slots, head, tail = newSlots, newHead, newTail
	}

	// Compare actual results against the replay.
	for i, oc := range ops {
		if oc.op.RetIdx >= 0 {
			actual, err := entryVal(oc.op.RetIdx)
			if err != nil {
				return bitvec.False, err
			}
			want := enc.BoolVal(expRet[i])
			bad = b.Or(bad, enc.EqVal(actual, want).Not())
		}
		if oc.op.OutIdx >= 0 {
			actual, err := entryVal(oc.op.OutIdx)
			if err != nil {
				return bitvec.False, err
			}
			outBV := make(bitvec.BV, 1)
			outBV[0] = expOut[i]
			want := enc.MuxVal(expRet[i], enc.IntVal(outBV), enc.UndefVal())
			bad = b.Or(bad, enc.EqVal(actual, want).Not())
		}
	}
	return bad, nil
}

// mNode adapts the encoder's memory-order relation as a circuit node.
func mNode(enc *encode.Encoder, i, j int) bitvec.Node {
	return enc.MemOrderNode(i, j)
}

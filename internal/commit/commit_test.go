package commit

import (
	"testing"

	"checkfence/internal/memmodel"
)

func TestCommitMethodPassesFencedMSN(t *testing.T) {
	for _, test := range []string{"T0", "Ti2"} {
		res, err := Check("msn-commit", test, memmodel.Relaxed)
		if err != nil {
			t.Fatalf("%s: %v", test, err)
		}
		if !res.Pass {
			t.Errorf("msn-commit/%s on Relaxed must pass the commit-point check (%s)",
				test, res.Desc)
		}
	}
}

func TestCommitMethodPassesSC(t *testing.T) {
	res, err := Check("msn-commit", "Tpc2", memmodel.SequentialConsistency)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Errorf("msn-commit/Tpc2 on SC must pass: %s", res.Desc)
	}
}

func TestCommitMethodCatchesUnfenced(t *testing.T) {
	// Strip the fences from the annotated source: the commit-point
	// method must also detect relaxed-memory failures.
	res, err := Check("msn-commit-nofence", "T0", memmodel.Relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Error("unfenced msn-commit/T0 on Relaxed must fail the commit-point check")
	}
}

func TestCommitMethodRejectsUnannotated(t *testing.T) {
	if _, err := Check("msn", "T0", memmodel.Relaxed); err == nil {
		t.Error("checking an implementation without commit annotations must error")
	}
}

func TestCommitMethodRejectsNonQueue(t *testing.T) {
	if _, err := Check("lazylist", "Sac", memmodel.Relaxed); err == nil {
		t.Error("non-queue kinds must be rejected")
	}
}

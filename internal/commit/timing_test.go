package commit

import (
	"fmt"
	"os"
	"testing"
	"time"

	"checkfence/internal/memmodel"
)

func TestTiming(t *testing.T) {
	name := os.Getenv("COMMIT_TIMING")
	if name == "" {
		t.Skip("set COMMIT_TIMING=test/model")
	}
	var test, model string
	fmt.Sscanf(name, "%s %s", &test, &model)
	m, err := memmodel.Parse(model)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := Check("msn-commit", test, m)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("%s on %v: pass=%v rounds=%d instrs=%d vars=%d clauses=%d enc=%v solve=%v total=%v\n",
		test, m, res.Pass, res.Stats.BoundRound, res.Stats.Instrs,
		res.Stats.CNFVars, res.Stats.CNFClauses,
		res.Stats.EncodeTime, res.Stats.RefuteTime, time.Since(start))
}

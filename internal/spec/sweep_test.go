package spec

import (
	"testing"

	"checkfence/internal/encode"
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/ranges"
)

// mpBodies builds the message-passing shape: init writes x=y=0, the
// writer publishes data then flag, the reader polls flag then data.
// The weak observation r1=1,r2=0 is reachable under PSO/Relaxed only.
func mpBodies() [][]lsl.Stmt {
	init := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "i.xa", Val: lsl.Ptr(0)},
		&lsl.ConstStmt{Dst: "i.z", Val: lsl.Int(0)},
		&lsl.StoreStmt{Addr: "i.xa", Src: "i.z"},
		&lsl.ConstStmt{Dst: "i.ya", Val: lsl.Ptr(1)},
		&lsl.StoreStmt{Addr: "i.ya", Src: "i.z"},
	}
	writer := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "a.xa", Val: lsl.Ptr(0)},
		&lsl.ConstStmt{Dst: "a.ya", Val: lsl.Ptr(1)},
		&lsl.ConstStmt{Dst: "a.one", Val: lsl.Int(1)},
		&lsl.StoreStmt{Addr: "a.xa", Src: "a.one"},
		&lsl.StoreStmt{Addr: "a.ya", Src: "a.one"},
	}
	reader := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "b.xa", Val: lsl.Ptr(0)},
		&lsl.ConstStmt{Dst: "b.ya", Val: lsl.Ptr(1)},
		&lsl.LoadStmt{Dst: "b.r1", Addr: "b.ya"},
		&lsl.LoadStmt{Dst: "b.r2", Addr: "b.xa"},
	}
	return [][]lsl.Stmt{init, writer, reader}
}

func mpEntries() []Entry {
	return []Entry{
		{Label: "r1", Thread: 2, Reg: "b.r1"},
		{Label: "r2", Thread: 2, Reg: "b.r2"},
	}
}

func encodeMP(t *testing.T, m memmodel.Model) *encode.Encoder {
	t.Helper()
	bodies := mpBodies()
	e := encode.New(m, ranges.Analyze(bodies))
	threads := make([]encode.Thread, len(bodies))
	for i, b := range bodies {
		threads[i] = encode.Thread{Name: "t", Segments: [][]lsl.Stmt{b}, OpIDs: []int{i}}
	}
	if err := e.Encode(threads); err != nil {
		t.Fatal(err)
	}
	e.AssertNoOverflow()
	return e
}

func encodeMPSweep(t *testing.T, models []memmodel.Model) *encode.Encoder {
	t.Helper()
	bodies := mpBodies()
	e, err := encode.NewSweepWithConfig(models, ranges.Analyze(bodies), encode.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	threads := make([]encode.Thread, len(bodies))
	for i, b := range bodies {
		threads[i] = encode.Thread{Name: "t", Segments: [][]lsl.Stmt{b}, OpIDs: []int{i}}
	}
	if err := e.Encode(threads); err != nil {
		t.Fatal(err)
	}
	e.AssertNoOverflow()
	return e
}

// mineModel enumerates the full observation set of the MP shape under
// one model with the given strategy.
func mineModel(t *testing.T, m memmodel.Model, strat Strategy) (*Set, MineStats) {
	t.Helper()
	set, stats, err := MineWith(encodeMP(t, m), mpEntries(), strat)
	if err != nil {
		t.Fatalf("%v: %v", m, err)
	}
	return set, stats
}

// TestSeededMiningMonotonic: seeding a weaker model's mine with the
// full set of any stronger model yields a set identical to the unseeded
// enumeration, skips exactly that many iterations, and reports the
// seed count — the monotonic warm start of a strongest-first sweep.
func TestSeededMiningMonotonic(t *testing.T) {
	models := []memmodel.Model{
		memmodel.Serial, memmodel.SequentialConsistency,
		memmodel.TSO, memmodel.PSO, memmodel.Relaxed,
	}
	sets := make([]*Set, len(models))
	iters := make([]int, len(models))
	for i, m := range models {
		sets[i], _ = mineModel(t, m, Strategy{})
		_, st := mineModel(t, m, Strategy{})
		iters[i] = st.Iterations
	}
	// Strength monotonicity must actually hold on this shape, and must
	// be strict somewhere so the seeding below is not vacuous.
	for i := 1; i < len(models); i++ {
		for _, o := range sets[i-1].All() {
			if !sets[i].Has(o) {
				t.Fatalf("obs(%v) not within obs(%v): %v lost", models[i-1], models[i], o)
			}
		}
	}
	if sets[0].Len() == sets[len(sets)-1].Len() {
		t.Fatal("serial and relaxed observation sets coincide; shape too weak for the test")
	}
	for i := 1; i < len(models); i++ {
		for _, cube := range []int{0, 2} {
			seeded, st := mineModel(t, models[i], Strategy{Seed: sets[i-1], Cube: cube})
			if !seeded.Equal(sets[i]) {
				t.Errorf("cube=%d %v seeded by %v: set differs from unseeded:\n  want %v\n  got  %v",
					cube, models[i], models[i-1], sets[i].All(), seeded.All())
			}
			if st.Seeded != sets[i-1].Len() {
				t.Errorf("cube=%d %v: Seeded = %d, want %d", cube, models[i], st.Seeded, sets[i-1].Len())
			}
			if want := iters[i] - sets[i-1].Len(); st.Iterations != want {
				t.Errorf("cube=%d %v: iterations = %d, want %d (unseeded %d - seed %d)",
					cube, models[i], st.Iterations, want, iters[i], sets[i-1].Len())
			}
		}
	}
}

// TestSweepCheckMatchesIndependent: the shared-formula SweepCheck must
// reproduce the single-model CheckInclusionWith verdicts and
// counterexample observations exactly, across serial, portfolio, and
// cube strategies.
func TestSweepCheckMatchesIndependent(t *testing.T) {
	sweep := []memmodel.Model{
		memmodel.SequentialConsistency, memmodel.TSO,
		memmodel.PSO, memmodel.Relaxed,
	}
	// The spec is the serial observation set, as in the real pipeline.
	specSet, _ := mineModel(t, memmodel.Serial, Strategy{})
	for _, strat := range []Strategy{
		{},
		{Portfolio: 2, ShareClauses: true},
		{Cube: 2},
	} {
		sc, err := NewSweepCheck(encodeMPSweep(t, sweep), mpEntries())
		if err != nil {
			t.Fatal(err)
		}
		// Phase 1 for every model, strongest-first, before any exclusion.
		for _, m := range sweep {
			cex, err := sc.ErrorCheck(m, strat)
			if err != nil {
				t.Fatalf("%v error check: %v", m, err)
			}
			if cex != nil {
				t.Fatalf("%v: unexpected error-phase counterexample %v", m, cex.Obs)
			}
		}
		if err := sc.BeginInclusion(specSet); err != nil {
			t.Fatal(err)
		}
		for _, m := range sweep {
			got, err := sc.Inclusion(m, strat)
			if err != nil {
				t.Fatalf("%v inclusion: %v", m, err)
			}
			want, err := CheckInclusionWith(encodeMP(t, m), mpEntries(), specSet, strat)
			if err != nil {
				t.Fatalf("%v independent: %v", m, err)
			}
			if (got == nil) != (want == nil) {
				t.Fatalf("strat=%+v %v: sweep cex %v, independent cex %v", strat, m, got, want)
			}
			if got != nil && specSet.Has(got.Obs) {
				t.Fatalf("strat=%+v %v: sweep counterexample %v is inside the spec", strat, m, got.Obs)
			}
		}
	}
}

// TestSweepCheckProtocol: misuse of the two-stage protocol is caught.
func TestSweepCheckProtocol(t *testing.T) {
	if _, err := NewSweepCheck(encodeMP(t, memmodel.Relaxed), mpEntries()); err == nil {
		t.Error("NewSweepCheck accepted a single-model encoder")
	}
	sweep := []memmodel.Model{memmodel.SequentialConsistency, memmodel.Relaxed}
	sc, err := NewSweepCheck(encodeMPSweep(t, sweep), mpEntries())
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Inclusion before BeginInclusion did not panic")
			}
		}()
		sc.Inclusion(memmodel.Relaxed, Strategy{})
	}()
	if err := sc.BeginInclusion(NewSet()); err != nil {
		t.Fatal(err)
	}
	if err := sc.BeginInclusion(NewSet()); err == nil {
		t.Error("second BeginInclusion accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("ErrorCheck after BeginInclusion did not panic")
		}
	}()
	sc.ErrorCheck(memmodel.Relaxed, Strategy{})
}

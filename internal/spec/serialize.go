package spec

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"checkfence/internal/lsl"
)

// Textual observation-set format, used by the on-disk spec cache so
// mined sets can be reused across processes:
//
//	checkfence-obs 2
//	key <mining key>
//	<count>
//	<observation>        one per line, Observation.Key() form
//
// Value syntax matches lsl.Value.String(): "undefined", a decimal
// integer, or "[ b o1 o2 ]" for a pointer; observation fields are
// comma-separated.
//
// Version 2 embeds the mining key (the harness/bounds/source hash)
// that produced the set, and readers verify it: a cache file that was
// renamed, copied between cache directories, or written by a process
// with a different key derivation no longer silently supplies a wrong
// specification — it reads as a mismatch and the set is re-mined.
// Version 1 files (no key line) are likewise rejected by the keyed
// reader, since nothing ties them to the requested problem.

const (
	setFormatHeader   = "checkfence-obs 1" // legacy unkeyed format
	setFormatHeaderV2 = "checkfence-obs 2"
	// partFormatHeader marks a mining checkpoint: a partial set plus
	// the cumulative iteration count that produced it. The distinct
	// header keeps checkpoints out of the strict keyed reader — a
	// partial set must never be mistaken for a complete one.
	partFormatHeader = "checkfence-obs-part 1"
)

// WriteTo serializes the set in deterministic (sorted key) order.
func (s *Set) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "%s\n%d\n", setFormatHeader, s.Len())); err != nil {
		return n, err
	}
	for _, o := range s.All() {
		if err := count(fmt.Fprintln(bw, o.Key())); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// WriteKeyed serializes the set in the keyed v2 format, binding it to
// the mining key that produced it.
func (s *Set) WriteKeyed(w io.Writer, key string) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "%s\nkey %s\n%d\n", setFormatHeaderV2, key, s.Len())); err != nil {
		return n, err
	}
	for _, o := range s.All() {
		if err := count(fmt.Fprintln(bw, o.Key())); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// WriteCheckpoint serializes a partial set as a mining checkpoint:
// the keyed format plus an "iterations N" line recording the
// cumulative enumeration count, so an interrupted mine can resume
// where it stopped.
func (s *Set) WriteCheckpoint(w io.Writer, key string, iterations int) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "%s\nkey %s\niterations %d\n%d\n",
		partFormatHeader, key, iterations, s.Len())); err != nil {
		return n, err
	}
	for _, o := range s.All() {
		if err := count(fmt.Fprintln(bw, o.Key())); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadCheckpoint parses a mining checkpoint previously written with
// WriteCheckpoint, returning the partial set and the iteration count.
// Checkpoints under a different mining key are rejected like keyed
// sets.
func ReadCheckpoint(r io.Reader, key string) (*Set, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, 0, fmt.Errorf("spec: empty checkpoint stream")
	}
	if got := sc.Text(); got != partFormatHeader {
		return nil, 0, fmt.Errorf("spec: bad checkpoint header %q", got)
	}
	if !sc.Scan() {
		return nil, 0, fmt.Errorf("spec: checkpoint stream missing key line")
	}
	gotKey, ok := strings.CutPrefix(sc.Text(), "key ")
	if !ok {
		return nil, 0, fmt.Errorf("spec: malformed key line %q", sc.Text())
	}
	if gotKey != key {
		return nil, 0, fmt.Errorf("spec: checkpoint mined for a different problem (key %.12s…, want %.12s…)",
			gotKey, key)
	}
	if !sc.Scan() {
		return nil, 0, fmt.Errorf("spec: checkpoint stream missing iterations line")
	}
	itersStr, ok := strings.CutPrefix(sc.Text(), "iterations ")
	if !ok {
		return nil, 0, fmt.Errorf("spec: malformed iterations line %q", sc.Text())
	}
	iters, err := strconv.Atoi(strings.TrimSpace(itersStr))
	if err != nil || iters < 0 {
		return nil, 0, fmt.Errorf("spec: bad checkpoint iteration count %q", itersStr)
	}
	set, err := readSetBody(sc)
	if err != nil {
		return nil, 0, err
	}
	return set, iters, nil
}

// ReadSetKeyed parses a keyed set previously written with WriteKeyed,
// rejecting streams written under a different mining key or in the
// legacy unkeyed v1 format.
func ReadSetKeyed(r io.Reader, key string) (*Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("spec: empty observation-set stream")
	}
	switch got := sc.Text(); got {
	case setFormatHeaderV2:
	case setFormatHeader:
		return nil, fmt.Errorf("spec: legacy unkeyed observation-set (version 1); re-mine")
	default:
		return nil, fmt.Errorf("spec: bad observation-set header %q", got)
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("spec: observation-set stream missing key line")
	}
	gotKey, ok := strings.CutPrefix(sc.Text(), "key ")
	if !ok {
		return nil, fmt.Errorf("spec: malformed key line %q", sc.Text())
	}
	if gotKey != key {
		return nil, fmt.Errorf("spec: observation set mined for a different problem (key %.12s…, want %.12s…)",
			gotKey, key)
	}
	return readSetBody(sc)
}

// ReadSet parses a set previously written with WriteTo.
func ReadSet(r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("spec: empty observation-set stream")
	}
	if got := sc.Text(); got != setFormatHeader {
		return nil, fmt.Errorf("spec: bad observation-set header %q", got)
	}
	return readSetBody(sc)
}

// readSetBody parses the count line and observations shared by both
// formats.
func readSetBody(sc *bufio.Scanner) (*Set, error) {
	if !sc.Scan() {
		return nil, fmt.Errorf("spec: observation-set stream missing count")
	}
	want, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
	if err != nil || want < 0 {
		return nil, fmt.Errorf("spec: bad observation count %q", sc.Text())
	}
	set := NewSet()
	for i := 0; i < want; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("spec: observation-set stream truncated at %d/%d", i, want)
		}
		obs, err := ParseObservation(sc.Text())
		if err != nil {
			return nil, err
		}
		set.Add(obs)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if set.Len() != want {
		return nil, fmt.Errorf("spec: observation-set stream has duplicates (%d distinct of %d)",
			set.Len(), want)
	}
	return set, nil
}

// ParseObservation parses the Observation.Key() form.
func ParseObservation(line string) (Observation, error) {
	fields := strings.Split(line, ",")
	obs := make(Observation, len(fields))
	for i, f := range fields {
		v, err := parseValue(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("spec: observation %q: %w", line, err)
		}
		obs[i] = v
	}
	return obs, nil
}

// parseValue inverts lsl.Value.String().
func parseValue(s string) (lsl.Value, error) {
	switch {
	case s == "undefined":
		return lsl.Undef(), nil
	case strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]"):
		parts := strings.Fields(s[1 : len(s)-1])
		if len(parts) == 0 {
			return lsl.Value{}, fmt.Errorf("empty pointer value %q", s)
		}
		comps := make([]int64, len(parts))
		for i, p := range parts {
			n, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return lsl.Value{}, fmt.Errorf("bad pointer component %q in %q", p, s)
			}
			comps[i] = n
		}
		return lsl.PtrFromComponents(comps), nil
	default:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return lsl.Value{}, fmt.Errorf("bad value %q", s)
		}
		return lsl.Int(n), nil
	}
}

package spec

import (
	"errors"
	"testing"

	"checkfence/internal/encode"
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/ranges"
)

// buildWideMiningEncoder yields 15 observations (a 4-bit havoc with
// one value excluded), enough to exercise the partitioned enumeration.
func buildWideMiningEncoder(t *testing.T) (*encode.Encoder, []Entry) {
	t.Helper()
	body := []lsl.Stmt{
		&lsl.HavocStmt{Dst: "r", Bits: 4},
		&lsl.ConstStmt{Dst: "seven", Val: lsl.Int(7)},
		&lsl.OpStmt{Dst: "ne", Op: lsl.OpNe, Args: []lsl.Reg{"r", "seven"}},
		&lsl.AssumeStmt{Cond: "ne"},
	}
	info := ranges.Analyze([][]lsl.Stmt{body})
	e := encode.New(memmodel.Serial, info)
	if err := e.Encode([]encode.Thread{
		{},
		{Name: "t", Segments: [][]lsl.Stmt{body}, OpIDs: []int{0}},
	}); err != nil {
		t.Fatal(err)
	}
	return e, []Entry{{Label: "R", Thread: 1, Reg: "r"}}
}

// TestMinePartitionedMatchesSerial: the partitioned enumeration must
// produce the identical set and total iteration count.
func TestMinePartitionedMatchesSerial(t *testing.T) {
	eSerial, entries := buildWideMiningEncoder(t)
	serialSet, serialStats, err := MineWith(eSerial, entries, Strategy{})
	if err != nil {
		t.Fatal(err)
	}
	if serialSet.Len() != 15 {
		t.Fatalf("serial mined %d observations, want 15", serialSet.Len())
	}

	for _, cube := range []int{2, 4} {
		ePar, entriesPar := buildWideMiningEncoder(t)
		var ps ParStats
		parSet, parStats, err := MineWith(ePar, entriesPar, Strategy{Cube: cube, Stats: &ps})
		if err != nil {
			t.Fatalf("cube=%d: %v", cube, err)
		}
		if !parSet.Equal(serialSet) {
			t.Errorf("cube=%d: partitioned set differs from serial:\n  serial %v\n  par    %v",
				cube, serialSet.All(), parSet.All())
		}
		if parStats.Iterations != serialStats.Iterations {
			t.Errorf("cube=%d: iterations %d != serial %d",
				cube, parStats.Iterations, serialStats.Iterations)
		}
		if ps.Cubes < 2 || ps.CubesRefuted != ps.Cubes {
			t.Errorf("cube=%d: ParStats = %+v, want all of >=2 cubes refuted", cube, ps)
		}
	}
}

// TestMineIterationLimit: an absurdly low cap surfaces ErrMineLimit
// from both the serial and the partitioned path.
func TestMineIterationLimit(t *testing.T) {
	for _, cube := range []int{0, 4} {
		e, entries := buildWideMiningEncoder(t)
		_, _, err := MineWith(e, entries, Strategy{Cube: cube, MaxMineIterations: 1})
		if !errors.Is(err, ErrMineLimit) {
			t.Errorf("cube=%d: err = %v, want ErrMineLimit", cube, err)
		}
	}
}

// TestMineWithPortfolioSeqBug: the portfolio path of the sequential
// bug check adopts the winning clone's model, so the reported
// observation is decodable.
func TestMineWithPortfolioSeqBug(t *testing.T) {
	body := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "zero", Val: lsl.Int(0)},
		&lsl.AssertStmt{Cond: "zero", Msg: "always fails"},
		&lsl.ConstStmt{Dst: "r", Val: lsl.Int(1)},
	}
	info := ranges.Analyze([][]lsl.Stmt{body})
	e := encode.New(memmodel.Serial, info)
	if err := e.Encode([]encode.Thread{
		{},
		{Name: "t", Segments: [][]lsl.Stmt{body}, OpIDs: []int{0}},
	}); err != nil {
		t.Fatal(err)
	}
	_, _, err := MineWith(e, []Entry{{Label: "R", Thread: 1, Reg: "r"}},
		Strategy{Portfolio: 3, ShareClauses: true})
	var bug *SeqBugError
	if !errors.As(err, &bug) {
		t.Fatalf("expected SeqBugError, got %v", err)
	}
	if len(bug.Obs) != 1 || !bug.Obs[0].Equal(lsl.Int(1)) {
		t.Errorf("seq-bug observation = %v, want [1]", bug.Obs)
	}
}

// TestCheckInclusionWithParity: every strategy agrees with the serial
// verdict on both a passing and a failing inclusion check, including
// the counterexample observation.
func TestCheckInclusionWithParity(t *testing.T) {
	full := NewSet()
	for v := int64(0); v < 16; v++ {
		if v != 7 {
			full.Add(Observation{lsl.Int(v)})
		}
	}
	partial := NewSet()
	for v := int64(0); v < 16; v++ {
		if v != 7 && v != 5 {
			partial.Add(Observation{lsl.Int(v)})
		}
	}
	strategies := []Strategy{
		{},
		{Portfolio: 3},
		{Portfolio: 3, ShareClauses: true},
		{Cube: 4},
		{Cube: 2, CubeDepth: 2},
	}
	for _, strat := range strategies {
		e, entries := buildWideMiningEncoder(t)
		cex, err := CheckInclusionWith(e, entries, full, strat)
		if err != nil {
			t.Fatalf("%+v: %v", strat, err)
		}
		if cex != nil {
			t.Errorf("%+v: full spec must pass, got cex %v", strat, cex.Obs)
		}

		e2, entries2 := buildWideMiningEncoder(t)
		cex, err = CheckInclusionWith(e2, entries2, partial, strat)
		if err != nil {
			t.Fatalf("%+v: %v", strat, err)
		}
		if cex == nil {
			t.Fatalf("%+v: partial spec must fail", strat)
		}
		if !cex.Obs[0].Equal(lsl.Int(5)) {
			t.Errorf("%+v: counterexample = %v, want 5", strat, cex.Obs[0])
		}
	}
}

// TestBlockingClauseShrink: shrinking blocking clauses must not change
// the mined set or the iteration count, serial or partitioned.
func TestBlockingClauseShrink(t *testing.T) {
	defer func(v bool) { blockShrink = v }(blockShrink)

	type result struct {
		set   *Set
		iters int
	}
	run := func(shrink bool, cube int) result {
		blockShrink = shrink
		e, entries := buildWideMiningEncoder(t)
		set, stats, err := MineWith(e, entries, Strategy{Cube: cube})
		if err != nil {
			t.Fatalf("shrink=%v cube=%d: %v", shrink, cube, err)
		}
		return result{set, stats.Iterations}
	}
	for _, cube := range []int{0, 4} {
		with := run(true, cube)
		without := run(false, cube)
		if !with.set.Equal(without.set) {
			t.Errorf("cube=%d: shrunk blocking clauses changed the mined set", cube)
		}
		if with.iters != without.iters {
			t.Errorf("cube=%d: iterations %d (shrunk) != %d (full)", cube, with.iters, without.iters)
		}
	}
}

// Package spec implements observations, observation sets, the
// SAT-based specification mining loop, and the inclusion check of
// paper §3.2.
//
// An observation is the vector of argument and return values of the
// operations a test invokes. The observation set S(T,I) — all
// observations of serial executions — serves as the specification:
// the implementation satisfies it on model Y iff every Y-execution's
// observation is in S.
package spec

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"checkfence/internal/bitvec"
	"checkfence/internal/encode"
	"checkfence/internal/lsl"
)

// ErrSolverUnknown is wrapped by Mine and CheckInclusion when the SAT
// solver stops without a verdict (interrupted or budget-exhausted).
// Portfolio racing uses it to tell a cancelled member from a
// definitive one.
var ErrSolverUnknown = errors.New("spec: solver stopped without a verdict")

// Entry identifies one observed value: a register of a thread
// (post-unrolling name) with a human-readable label such as "A" or
// "X.ret".
type Entry struct {
	Label  string
	Thread int
	Reg    lsl.Reg
}

// Observation is a vector of values, one per entry.
type Observation []lsl.Value

// Key renders a canonical string form.
func (o Observation) Key() string {
	parts := make([]string, len(o))
	for i, v := range o {
		parts[i] = v.String()
	}
	return strings.Join(parts, ",")
}

// Format renders the observation with labels for human consumption.
func (o Observation) Format(entries []Entry) string {
	parts := make([]string, len(o))
	for i, v := range o {
		label := fmt.Sprintf("v%d", i)
		if i < len(entries) {
			label = entries[i].Label
		}
		parts[i] = label + "=" + v.String()
	}
	return strings.Join(parts, " ")
}

// Set is an observation set.
type Set struct {
	m map[string]Observation
}

// NewSet returns an empty observation set.
func NewSet() *Set { return &Set{m: map[string]Observation{}} }

// Add inserts an observation, reporting whether it was new.
func (s *Set) Add(o Observation) bool {
	k := o.Key()
	if _, ok := s.m[k]; ok {
		return false
	}
	s.m[k] = o
	return true
}

// Has reports membership.
func (s *Set) Has(o Observation) bool {
	_, ok := s.m[o.Key()]
	return ok
}

// Len returns the number of distinct observations.
func (s *Set) Len() int { return len(s.m) }

// All returns the observations in deterministic (sorted key) order.
func (s *Set) All() []Observation {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Observation, len(keys))
	for i, k := range keys {
		out[i] = s.m[k]
	}
	return out
}

// Equal reports whether two sets contain the same observations.
func (s *Set) Equal(other *Set) bool {
	if s.Len() != other.Len() {
		return false
	}
	for k := range s.m {
		if _, ok := other.m[k]; !ok {
			return false
		}
	}
	return true
}

// obsVals looks up the SymVals of the entries in an encoder.
func obsVals(e *encode.Encoder, entries []Entry) ([]encode.SymVal, error) {
	out := make([]encode.SymVal, len(entries))
	for i, ent := range entries {
		if ent.Thread >= len(e.Envs) {
			return nil, fmt.Errorf("spec: entry %q references thread %d of %d",
				ent.Label, ent.Thread, len(e.Envs))
		}
		sv, ok := e.Envs[ent.Thread][ent.Reg]
		if !ok {
			return nil, fmt.Errorf("spec: entry %q: register %s not assigned in thread %d",
				ent.Label, ent.Reg, ent.Thread)
		}
		out[i] = sv
	}
	return out, nil
}

// obsBits flattens the SymVals into the list of circuit nodes whose
// assignment determines the observation.
func obsBits(e *encode.Encoder, svs []encode.SymVal) []bitvec.Node {
	var bits []bitvec.Node
	for _, sv := range svs {
		bits = append(bits, sv.K1, sv.K0)
		for _, comp := range sv.Comps {
			bits = append(bits, comp...)
		}
	}
	return bits
}

// SeqBugError reports a runtime error reachable in a serial execution
// (a sequential bug found during mining).
type SeqBugError struct {
	Obs Observation
}

func (e *SeqBugError) Error() string {
	return "spec: serial execution reaches a runtime error (sequential bug)"
}

// MineStats reports mining work.
type MineStats struct {
	Iterations int
	// Seeded counts observations contributed by Strategy.Seed — solver
	// iterations a monotonic warm start skipped.
	Seeded int
}

// Mine enumerates the observation set of the encoder's executions
// with the iterative blocking-clause procedure of §3.2. The encoder
// should be built for the Serial model with overflow excluded. Mining
// first checks that no serial execution reaches a runtime error; if
// one does, a SeqBugError is returned (a bug in the implementation
// itself, independent of the memory model).
func Mine(e *encode.Encoder, entries []Entry) (*Set, MineStats, error) {
	return MineWith(e, entries, Strategy{})
}

// Counterexample is a failed inclusion check: an execution whose
// observation is not in the specification, or which reaches a runtime
// error.
type Counterexample struct {
	Obs   Observation
	IsErr bool   // true if a runtime error occurred
	Err   string // first satisfied error condition message
}

// CheckInclusion performs the inclusion check of §3.2 on an encoder
// built for the model under test (with overflow excluded): it asks
// the SAT solver for an execution that reaches a runtime error or
// whose observation differs from every observation in the set. A nil
// result means the check passed. The encoder's solver state is left
// positioned at the counterexample model (for trace extraction).
func CheckInclusion(e *encode.Encoder, entries []Entry, set *Set) (*Counterexample, error) {
	return CheckInclusionWith(e, entries, set, Strategy{})
}

// assertNotObservation adds one clause stating that the observation
// vector differs from o in at least one bit.
func assertNotObservation(e *encode.Encoder, svs []encode.SymVal, o Observation) error {
	if len(o) != len(svs) {
		return fmt.Errorf("spec: observation arity %d != %d entries", len(o), len(svs))
	}
	var clause []bitvec.Node
	for i, v := range o {
		want := e.ConstVal(v)
		got := svs[i]
		pairs := [][2]bitvec.Node{{got.K1, want.K1}, {got.K0, want.K0}}
		for ci := range got.Comps {
			wbv := want.Comps[ci]
			for bi, gn := range got.Comps[ci] {
				pairs = append(pairs, [2]bitvec.Node{gn, wbv[bi]})
			}
		}
		for _, p := range pairs {
			gn, wn := p[0], p[1]
			switch wn {
			case bitvec.True:
				clause = append(clause, gn.Not())
			case bitvec.False:
				clause = append(clause, gn)
			default:
				return fmt.Errorf("spec: non-constant expected observation bit")
			}
		}
	}
	e.B.AssertOr(clause...)
	return nil
}

package spec

import (
	"strings"
	"testing"

	"checkfence/internal/lsl"
)

func sampleSet() *Set {
	s := NewSet()
	s.Add(Observation{lsl.Int(0), lsl.Int(1), lsl.Undef()})
	s.Add(Observation{lsl.Int(1), lsl.Int(-3), lsl.Ptr(40, 2)})
	s.Add(Observation{lsl.Undef(), lsl.Ptr(7), lsl.Int(0)})
	return s
}

func TestSetRoundTrip(t *testing.T) {
	want := sampleSet()
	var sb strings.Builder
	if _, err := want.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSet(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadSet: %v\ninput:\n%s", err, sb.String())
	}
	if !got.Equal(want) {
		t.Fatalf("round trip mismatch:\nwant %v\ngot  %v", want.All(), got.All())
	}
}

func TestWriteToDeterministic(t *testing.T) {
	var a, b strings.Builder
	if _, err := sampleSet().WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := sampleSet().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("serialization not deterministic:\n%q\n%q", a.String(), b.String())
	}
}

func TestReadSetRejectsCorruption(t *testing.T) {
	var sb strings.Builder
	if _, err := sampleSet().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	good := sb.String()
	for name, input := range map[string]string{
		"empty":      "",
		"bad header": "nonsense\n" + good,
		"truncated":  good[:len(good)-len("0,1,undefined\n")-1],
		"bad value":  strings.Replace(good, "undefined", "undefinable", 1),
	} {
		if _, err := ReadSet(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ReadSet accepted corrupt input", name)
		}
	}
}

func TestParseObservationValues(t *testing.T) {
	obs, err := ParseObservation("42,undefined,[ 16 0 3 ]")
	if err != nil {
		t.Fatal(err)
	}
	want := Observation{lsl.Int(42), lsl.Undef(), lsl.Ptr(16, 0, 3)}
	if obs.Key() != want.Key() {
		t.Fatalf("parsed %q, want %q", obs.Key(), want.Key())
	}
}

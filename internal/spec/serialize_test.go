package spec

import (
	"strings"
	"testing"

	"checkfence/internal/lsl"
)

func sampleSet() *Set {
	s := NewSet()
	s.Add(Observation{lsl.Int(0), lsl.Int(1), lsl.Undef()})
	s.Add(Observation{lsl.Int(1), lsl.Int(-3), lsl.Ptr(40, 2)})
	s.Add(Observation{lsl.Undef(), lsl.Ptr(7), lsl.Int(0)})
	return s
}

func TestSetRoundTrip(t *testing.T) {
	want := sampleSet()
	var sb strings.Builder
	if _, err := want.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSet(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadSet: %v\ninput:\n%s", err, sb.String())
	}
	if !got.Equal(want) {
		t.Fatalf("round trip mismatch:\nwant %v\ngot  %v", want.All(), got.All())
	}
}

func TestWriteToDeterministic(t *testing.T) {
	var a, b strings.Builder
	if _, err := sampleSet().WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := sampleSet().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("serialization not deterministic:\n%q\n%q", a.String(), b.String())
	}
}

func TestReadSetRejectsCorruption(t *testing.T) {
	var sb strings.Builder
	if _, err := sampleSet().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	good := sb.String()
	for name, input := range map[string]string{
		"empty":      "",
		"bad header": "nonsense\n" + good,
		"truncated":  good[:len(good)-len("0,1,undefined\n")-1],
		"bad value":  strings.Replace(good, "undefined", "undefinable", 1),
	} {
		if _, err := ReadSet(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ReadSet accepted corrupt input", name)
		}
	}
}

func TestKeyedRoundTrip(t *testing.T) {
	want := sampleSet()
	var sb strings.Builder
	if _, err := want.WriteKeyed(&sb, "abc123"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSetKeyed(strings.NewReader(sb.String()), "abc123")
	if err != nil {
		t.Fatalf("ReadSetKeyed: %v\ninput:\n%s", err, sb.String())
	}
	if !got.Equal(want) {
		t.Fatalf("round trip mismatch:\nwant %v\ngot  %v", want.All(), got.All())
	}
}

func TestKeyedRejectsForeignAndLegacyEntries(t *testing.T) {
	var keyed, legacy strings.Builder
	if _, err := sampleSet().WriteKeyed(&keyed, "abc123"); err != nil {
		t.Fatal(err)
	}
	if _, err := sampleSet().WriteTo(&legacy); err != nil {
		t.Fatal(err)
	}
	// A set mined for a different problem must not be reused.
	if _, err := ReadSetKeyed(strings.NewReader(keyed.String()), "other-key"); err == nil {
		t.Error("ReadSetKeyed accepted a foreign-key entry")
	}
	// Legacy v1 files carry no key, so nothing ties them to the
	// requested problem: reject (the cache re-mines and rewrites).
	if _, err := ReadSetKeyed(strings.NewReader(legacy.String()), "abc123"); err == nil {
		t.Error("ReadSetKeyed accepted a legacy unkeyed entry")
	}
	// And the unkeyed reader does not silently accept v2 files either.
	if _, err := ReadSet(strings.NewReader(keyed.String())); err == nil {
		t.Error("ReadSet accepted a v2 keyed entry")
	}
	// A missing or malformed key line is corruption.
	broken := strings.Replace(keyed.String(), "key abc123", "abc123", 1)
	if _, err := ReadSetKeyed(strings.NewReader(broken), "abc123"); err == nil {
		t.Error("ReadSetKeyed accepted a malformed key line")
	}
}

func TestParseObservationValues(t *testing.T) {
	obs, err := ParseObservation("42,undefined,[ 16 0 3 ]")
	if err != nil {
		t.Fatal(err)
	}
	want := Observation{lsl.Int(42), lsl.Undef(), lsl.Ptr(16, 0, 3)}
	if obs.Key() != want.Key() {
		t.Fatalf("parsed %q, want %q", obs.Key(), want.Key())
	}
}

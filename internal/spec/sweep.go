package spec

// This file drives the inclusion check of §3.2 across a model sweep:
// one selector-guarded encoding (encode.NewSweepWithConfig) solved
// once per model under assumption literals, so the circuit, the CNF
// translation, the preprocessing pass, and every clause the solver
// learns are shared by the whole sweep instead of rebuilt per model.
//
// The phase structure differs from the single-model CheckInclusionWith
// in one load-bearing way: ALL phase-1 (error) solves must complete
// before ANY phase-2 exclusion clause is added. Phase 1 asks "is an
// erroneous execution reachable" — an erroneous execution may well
// produce an in-spec observation, so the exclusion clauses would
// wrongly mask it. CheckInclusionWith gets the ordering for free by
// interleaving; SweepCheck makes it an explicit two-stage protocol:
// ErrorCheck per model, then one BeginInclusion, then Inclusion per
// model.

import (
	"fmt"

	"checkfence/internal/encode"
	"checkfence/internal/memmodel"
	"checkfence/internal/sat"
)

// SweepCheck runs the per-model phases of an inclusion check over a
// sweep encoder. The protocol is: NewSweepCheck, ErrorCheck for every
// model of interest, BeginInclusion once, Inclusion for every model
// still undecided. Learned clauses accumulate in the shared solver
// across all calls — everything learned refuting one model's query is
// implied by the common formula and so stays sound for the next.
type SweepCheck struct {
	e      *encode.Encoder
	svs    []encode.SymVal
	errLit sat.Lit
	began  bool
}

// NewSweepCheck materializes the error literal and observation bits of
// a sweep encoder and preprocesses its CNF (selector variables are
// frozen by the encoder). The encoder must come from
// encode.NewSweepWithConfig with overflow excluded, exactly like a
// CheckInclusionWith encoder.
func NewSweepCheck(e *encode.Encoder, entries []Entry) (*SweepCheck, error) {
	if len(e.SweepModels()) == 0 {
		return nil, fmt.Errorf("spec: NewSweepCheck on a single-model encoder")
	}
	svs, err := obsVals(e, entries)
	if err != nil {
		return nil, err
	}
	errLit := e.B.Lit(e.ErrorNode())
	roots := []sat.Lit{errLit}
	for _, b := range obsBits(e, svs) {
		roots = append(roots, e.B.Lit(b))
	}
	e.PreprocessCNF(roots...)
	return &SweepCheck{e: e, svs: svs, errLit: errLit}, nil
}

// Encoder returns the underlying sweep encoder (for trace extraction
// after a Sat verdict).
func (c *SweepCheck) Encoder() *encode.Encoder { return c.e }

// ErrorCheck runs phase 1 for one swept model: is an execution
// reaching a runtime error possible under m's axioms? A non-nil
// counterexample (IsErr=true) leaves the solver positioned at its
// model for trace extraction. Panics if called after BeginInclusion —
// the error literal is permanently false by then, so the answer would
// be a silent, unsound Unsat.
func (c *SweepCheck) ErrorCheck(m memmodel.Model, strat Strategy) (*Counterexample, error) {
	if c.began {
		panic("spec: SweepCheck.ErrorCheck after BeginInclusion")
	}
	assum := append(c.e.SelectorLits(m), c.errLit)
	switch st, cause := solveOne(c.e, strat, assum...); st {
	case sat.Sat:
		obs := decodeObs(c.e, c.e.S, c.svs)
		msg := ""
		for _, ec := range c.e.Errors {
			if c.e.B.Eval(ec.Cond) {
				msg = ec.Msg
				break
			}
		}
		return &Counterexample{Obs: obs, IsErr: true, Err: msg}, nil
	case sat.Unsat:
		return nil, nil
	default:
		return nil, unknownErr("error check", st, cause)
	}
}

// BeginInclusion transitions the shared solver to phase 2: the error
// literal is asserted false and the specification's observations are
// excluded, permanently, for every subsequent Inclusion call. The
// exclusion clauses are model-independent (they talk only about the
// observation bits), so adding them once is exactly what every
// single-model check would have added individually.
func (c *SweepCheck) BeginInclusion(set *Set) error {
	if c.began {
		return fmt.Errorf("spec: SweepCheck.BeginInclusion called twice")
	}
	c.began = true
	c.e.S.AddClause(c.errLit.Not())
	for _, o := range set.All() {
		if err := assertNotObservation(c.e, c.svs, o); err != nil {
			return err
		}
	}
	return nil
}

// Inclusion runs phase 2 for one swept model: is an error-free
// execution with an out-of-spec observation possible under m's axioms?
// A nil counterexample means model m passes the inclusion check. On
// Sat the solver is positioned at the counterexample model.
func (c *SweepCheck) Inclusion(m memmodel.Model, strat Strategy) (*Counterexample, error) {
	if !c.began {
		panic("spec: SweepCheck.Inclusion before BeginInclusion")
	}
	switch st, cause := solvePhase2(c.e, strat, c.e.SelectorLits(m)...); st {
	case sat.Unsat:
		return nil, nil
	case sat.Sat:
		return &Counterexample{Obs: decodeObs(c.e, c.e.S, c.svs)}, nil
	default:
		return nil, unknownErr("inclusion check", st, cause)
	}
}

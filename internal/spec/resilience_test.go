package spec

import (
	"bytes"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"checkfence/internal/faultinject"
	"checkfence/internal/lsl"
	"checkfence/internal/sat"
)

// TestMineLimitReturnsPartialSet: hitting the iteration limit must
// return the observations mined so far alongside ErrMineLimit, not
// discard them — the partial set seeds a later resume.
func TestMineLimitReturnsPartialSet(t *testing.T) {
	for _, cube := range []int{0, 4} {
		e, entries := buildWideMiningEncoder(t)
		set, stats, err := MineWith(e, entries, Strategy{Cube: cube, MaxMineIterations: 5})
		if !errors.Is(err, ErrMineLimit) {
			t.Fatalf("cube=%d: err = %v, want ErrMineLimit", cube, err)
		}
		if set == nil || set.Len() == 0 {
			t.Fatalf("cube=%d: partial set = %v, want the mined observations", cube, set)
		}
		if set.Len() > 15 {
			t.Errorf("cube=%d: partial set has %d observations, more than exist", cube, set.Len())
		}
		if stats.Iterations == 0 {
			t.Errorf("cube=%d: stats.Iterations = 0, want the spent count", cube)
		}
	}
}

// TestMineResumeEqualsFull: a mine seeded with a checkpointed partial
// set produces the same final set as an uninterrupted mine. Iteration
// counts are cumulative across the two runs.
func TestMineResumeEqualsFull(t *testing.T) {
	eFull, entries := buildWideMiningEncoder(t)
	full, fullStats, err := MineWith(eFull, entries, Strategy{})
	if err != nil {
		t.Fatal(err)
	}

	for _, cube := range []int{0, 4} {
		ePart, entriesPart := buildWideMiningEncoder(t)
		partial, partStats, err := MineWith(ePart, entriesPart, Strategy{Cube: cube, MaxMineIterations: 5})
		if !errors.Is(err, ErrMineLimit) {
			t.Fatalf("cube=%d: err = %v, want ErrMineLimit", cube, err)
		}

		eRes, entriesRes := buildWideMiningEncoder(t)
		resumed, resStats, err := MineWith(eRes, entriesRes, Strategy{
			Cube:             cube,
			Resume:           partial,
			ResumeIterations: partStats.Iterations,
		})
		if err != nil {
			t.Fatalf("cube=%d: resume failed: %v", cube, err)
		}
		if !resumed.Equal(full) {
			t.Errorf("cube=%d: resumed set differs from full mine:\n  full    %v\n  resumed %v",
				cube, full.All(), resumed.All())
		}
		if resStats.Iterations < partStats.Iterations {
			t.Errorf("cube=%d: cumulative iterations %d < checkpointed %d",
				cube, resStats.Iterations, partStats.Iterations)
		}
		_ = fullStats
	}
}

// TestMineCheckpointCallback: the Checkpoint hook fires on the
// configured period with a growing partial set and cumulative counts.
func TestMineCheckpointCallback(t *testing.T) {
	for _, cube := range []int{0, 2} {
		e, entries := buildWideMiningEncoder(t)
		var calls []int
		var lastLen int
		set, stats, err := MineWith(e, entries, Strategy{
			Cube:            cube,
			CheckpointEvery: 4,
			Checkpoint: func(partial *Set, iterations int) {
				calls = append(calls, iterations)
				if partial.Len() < lastLen {
					t.Errorf("cube=%d: checkpoint set shrank from %d to %d", cube, lastLen, partial.Len())
				}
				lastLen = partial.Len()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(calls) == 0 {
			t.Fatalf("cube=%d: checkpoint hook never fired over %d iterations", cube, stats.Iterations)
		}
		for _, n := range calls {
			if n%4 != 0 {
				t.Errorf("cube=%d: checkpoint at iteration %d, want multiples of 4", cube, n)
			}
		}
		if lastLen > set.Len() {
			t.Errorf("cube=%d: last checkpoint had %d observations, final set %d", cube, lastLen, set.Len())
		}
	}
}

// TestCheckpointSerializeRoundTrip: WriteCheckpoint/ReadCheckpoint
// preserve the set and iteration count; the strict keyed reader
// rejects checkpoint bytes (a partial set must never pass for a
// complete one); a checkpoint under a foreign key is rejected.
func TestCheckpointSerializeRoundTrip(t *testing.T) {
	set := NewSet()
	set.Add(Observation{lsl.Int(1), lsl.Undef()})
	set.Add(Observation{lsl.Int(2), lsl.PtrFromComponents([]int64{0, 3})})

	var buf bytes.Buffer
	if _, err := set.WriteCheckpoint(&buf, "key123", 42); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	got, iters, err := ReadCheckpoint(bytes.NewReader(data), "key123")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(set) || iters != 42 {
		t.Fatalf("roundtrip = (%v, %d), want original set and 42", got.All(), iters)
	}

	if _, err := ReadSetKeyed(bytes.NewReader(data), "key123"); err == nil {
		t.Fatal("ReadSetKeyed accepted checkpoint bytes as a complete set")
	}
	if _, _, err := ReadCheckpoint(bytes.NewReader(data), "other-key"); err == nil {
		t.Fatal("ReadCheckpoint accepted a foreign-key checkpoint")
	}
	truncated := data[:len(data)-5]
	if _, _, err := ReadCheckpoint(bytes.NewReader(truncated), "key123"); err == nil {
		t.Fatal("ReadCheckpoint accepted a truncated checkpoint")
	}
	var complete bytes.Buffer
	if _, err := set.WriteKeyed(&complete, "key123"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCheckpoint(bytes.NewReader(complete.Bytes()), "key123"); err == nil {
		t.Fatal("ReadCheckpoint accepted a complete keyed set")
	}
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (or a timeout), absorbing scheduler lag.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines did not drain: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestMineCancelMidEnumeration: cancelling via the solver's stop
// predicate in the middle of the enumeration returns promptly with the
// partial set and an ErrSolverUnknown (not a budget error), leaks no
// worker goroutines, and leaves the solver reusable.
func TestMineCancelMidEnumeration(t *testing.T) {
	for _, cube := range []int{0, 4} {
		baseline := runtime.NumGoroutine()
		e, entries := buildWideMiningEncoder(t)
		var stop atomic.Bool
		e.S.SetStop(func() bool { return stop.Load() })
		set, _, err := MineWith(e, entries, Strategy{
			Cube:            cube,
			CheckpointEvery: 2,
			// Trip the cancellation from inside the enumeration, after
			// some observations exist — deterministic mid-mine cancel.
			Checkpoint: func(partial *Set, iterations int) { stop.Store(true) },
		})
		if !errors.Is(err, ErrSolverUnknown) {
			t.Fatalf("cube=%d: err = %v, want ErrSolverUnknown", cube, err)
		}
		if errors.Is(err, sat.ErrBudgetExhausted) {
			t.Errorf("cube=%d: cancellation reported as budget exhaustion: %v", cube, err)
		}
		if set == nil || set.Len() == 0 {
			t.Errorf("cube=%d: cancelled mine returned no partial set", cube)
		}
		waitGoroutines(t, baseline)

		// The solver must stay reusable once the stop is lifted.
		e.S.SetStop(nil)
		if st := e.S.Solve(); st == sat.Unknown {
			t.Errorf("cube=%d: solver unusable after cancellation (status %v)", cube, st)
		}
	}
}

// TestInclusionCancelMidSolve: interrupting the cube-and-conquer
// phase-2 solve returns a wrapped ErrSolverUnknown promptly and leaks
// no goroutines.
func TestInclusionCancelMidSolve(t *testing.T) {
	baseline := runtime.NumGoroutine()
	e, entries := buildWideMiningEncoder(t)
	var calls atomic.Int64
	e.S.SetStop(func() bool { return calls.Add(1) > 1 })
	empty := NewSet() // empty spec: phase 2 would be Sat if it ran to completion
	start := time.Now()
	_, err := CheckInclusionWith(e, entries, empty, Strategy{Cube: 4})
	if !errors.Is(err, ErrSolverUnknown) {
		t.Fatalf("err = %v, want ErrSolverUnknown", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled inclusion check took %v", elapsed)
	}
	waitGoroutines(t, baseline)
}

// TestMineBudgetTypedCause: a conflict budget on the mining solver
// surfaces the typed *sat.ErrBudget through the ErrSolverUnknown
// wrap, so upstream can tell exhaustion from cancellation.
func TestMineBudgetTypedCause(t *testing.T) {
	e, entries := buildWideMiningEncoder(t)
	e.S.SetBudget(1)
	set, _, err := MineWith(e, entries, Strategy{})
	if !errors.Is(err, ErrSolverUnknown) {
		t.Fatalf("err = %v, want ErrSolverUnknown wrap", err)
	}
	if !errors.Is(err, sat.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want a *sat.ErrBudget in the chain", err)
	}
	var be *sat.ErrBudget
	if !errors.As(err, &be) || be.Kind != sat.BudgetConflicts {
		t.Fatalf("err = %v, want conflicts cause", err)
	}
	if set == nil {
		t.Error("budget-stopped mine returned a nil partial set")
	}
}

// TestMinePanicInjection: the MinePanic site raises the typed panic
// out of MineWith, where the callers' panic-isolation layers (suite
// workers) recover it into a per-check error.
func TestMinePanicInjection(t *testing.T) {
	e, entries := buildWideMiningEncoder(t)
	defer func() {
		if site := faultinject.InjectedSite(recover()); site != faultinject.MinePanic {
			t.Error("MineWith did not raise the injected mine panic")
		}
	}()
	MineWith(e, entries, Strategy{
		Faults: &faultinject.Always{Sites: []faultinject.Site{faultinject.MinePanic}},
	})
}

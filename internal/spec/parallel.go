package spec

// This file adds intra-check parallelism to mining and the inclusion
// check. All parallel paths operate on sat.CloneFormula snapshots of
// the encoder's solver, so the formula is encoded and preprocessed
// exactly once regardless of how many workers solve it:
//
//   - Strategy.Portfolio races diversified configurations over clones
//     of the shared formula, optionally exchanging learned clauses
//     (Strategy.ShareClauses) at restart boundaries.
//   - Strategy.Cube splits phase 2 of the inclusion check into 2^d
//     cubes over memory-order variables and solves them on a
//     work-stealing pool (cube-and-conquer).
//   - For mining, disjoint cubes over observation-bit variables
//     partition the enumeration: each satisfiable assignment of the
//     observation bits extends exactly one cube, so every observation
//     is enumerated exactly once in exactly one cube and the merged
//     set — and the summed iteration count — is identical to the
//     serial enumeration.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"checkfence/internal/encode"
	"checkfence/internal/faultinject"
	"checkfence/internal/sat"
)

// DefaultMaxMineIterations bounds the mining enumeration when
// Strategy.MaxMineIterations is zero. The bound exists to turn an
// accidentally underconstrained test (e.g. an unconstrained input
// register leaking into the observation) into an error instead of an
// endless loop.
const DefaultMaxMineIterations = 100000

// ErrMineLimit is wrapped by mining when the enumeration exceeds the
// iteration limit.
var ErrMineLimit = errors.New("spec: mining exceeded iteration limit")

// blockShrink drops provably redundant literals from mining blocking
// clauses: bits whose SAT variable is fixed at the root (constants and
// learned units — identical in every remaining model) and duplicate
// variables (a variable's assignment determines every bit it backs).
// Shorter blocking clauses propagate earlier and cost less to watch;
// the mined set and iteration count are unchanged because each shrunk
// clause excludes exactly the same models as the full one. The toggle
// exists for the equivalence test.
var blockShrink = true

// Strategy configures intra-check parallelism. The zero value is fully
// serial and behaves exactly like the historical Mine/CheckInclusion.
type Strategy struct {
	// Portfolio, when > 1, races that many diversified configurations
	// over CloneFormula snapshots for the single-verdict solves (the
	// sequential-bug check, phase 1, and phase 2 unless Cube takes it).
	Portfolio int
	// ShareClauses lets portfolio members exchange learned clauses
	// with LBD <= ShareLBD (0 = default) at restart boundaries.
	ShareClauses bool
	ShareLBD     int
	// Cube, when > 1, solves phase 2 of the inclusion check
	// cube-and-conquer style with that many workers, and partitions
	// mining over disjoint observation-bit cubes on that many workers.
	Cube int
	// CubeDepth fixes the number of splitting variables (2^depth
	// cubes); 0 picks a depth oversplitting the worker count so work
	// stealing can balance uneven cubes.
	CubeDepth int
	// MaxMineIterations caps the mining enumeration (0 = default).
	MaxMineIterations int
	// Stats, when non-nil, accumulates parallel-work counters.
	Stats *ParStats
	// Resume seeds the enumeration with a previously mined partial
	// set: its observations are excluded up front (the exclusion
	// clauses block every model of each observation, a superset of the
	// per-model blocking clauses the original run added) and included
	// in the result, so an interrupted mine continues instead of
	// restarting.
	Resume *Set
	// Seed warm-starts the enumeration with observations already known
	// to belong to the result. The canonical source is a model sweep
	// run strongest-first: every execution a stronger model allows is
	// also allowed by any weaker model (memmodel.StrongerThan), so the
	// stronger model's full observation set is a sound seed for the
	// weaker model's mine. Seeded observations are excluded up front
	// and included in the result exactly like Resume's, skipping
	// len(Seed) solver iterations; the count is reported in
	// MineStats.Seeded. Unlike Resume, Seed does not represent work
	// already billed to this enumeration, so it leaves the iteration
	// budget untouched.
	Seed *Set
	// ResumeIterations is the iteration count already spent producing
	// Resume; the continued run's count and the iteration limit are
	// cumulative across it.
	ResumeIterations int
	// Checkpoint, when non-nil, is called with the partial set and the
	// cumulative iteration count every CheckpointEvery iterations, so
	// an interrupted mine can later resume. The callback must not
	// retain the set: mining keeps mutating it.
	Checkpoint func(partial *Set, iterations int)
	// CheckpointEvery is the iteration period between Checkpoint calls
	// (0 = 32).
	CheckpointEvery int
	// Faults, when non-nil, installs fault-injection hooks on the
	// mining path (see internal/faultinject).
	Faults faultinject.Faults
	// Assume restricts both phases of the inclusion check to the
	// executions satisfying these literals — one cube of a
	// cross-process cube-and-conquer fan-out. The literals must be
	// over variables that survive preprocessing (CheckFence passes
	// memory-order variables, which PreprocessCNF freezes). Mining
	// ignores the field: the specification is cube-independent.
	Assume []sat.Lit
}

// ParStats counts the parallel work of a check.
type ParStats struct {
	// Cubes and CubesRefuted count cube-and-conquer cubes issued and
	// proven Unsat (phase 2 and partitioned mining combined).
	Cubes        int
	CubesRefuted int
	// Clause-sharing traffic summed over portfolio members.
	SharedExported int64
	SharedImported int64
	SharedUseful   int64
	// Inprocessing work summed over portfolio and cube workers (the
	// base solver's own counters are reported separately via
	// core.Stats.SolverStats).
	VivifiedClauses  int64
	VivifiedLits     int64
	SubsumedLearnts  int64
	ChronoBacktracks int64
}

func (st Strategy) maxIter() int {
	if st.MaxMineIterations > 0 {
		return st.MaxMineIterations
	}
	return DefaultMaxMineIterations
}

func (st Strategy) checkpointEvery() int {
	if st.CheckpointEvery > 0 {
		return st.CheckpointEvery
	}
	return 32
}

// unknownErr wraps a non-definitive solver status into the
// ErrSolverUnknown chain, preserving the typed cause (a *sat.ErrBudget
// or a recovered panic) when one is known so upstream layers can tell
// budget exhaustion from cancellation.
func unknownErr(phase string, st sat.Status, cause error) error {
	if cause != nil {
		return fmt.Errorf("%w during %s: %w", ErrSolverUnknown, phase, cause)
	}
	return fmt.Errorf("%w during %s (status %v)", ErrSolverUnknown, phase, st)
}

func (st Strategy) fold(work sat.Stats) {
	if st.Stats == nil {
		return
	}
	st.Stats.SharedExported += work.SharedExported
	st.Stats.SharedImported += work.SharedImported
	st.Stats.SharedUseful += work.SharedUseful
	st.Stats.VivifiedClauses += work.VivifiedClauses
	st.Stats.VivifiedLits += work.VivifiedLits
	st.Stats.SubsumedLearnts += work.SubsumedLearnts
	st.Stats.ChronoBacktracks += work.ChronoBacktracks
}

// decodeObs reads the observation vector from s's model (s is e.S or
// a CloneFormula snapshot of it).
func decodeObs(e *encode.Encoder, s *sat.Solver, svs []encode.SymVal) Observation {
	obs := make(Observation, len(svs))
	for i, sv := range svs {
		obs[i] = e.EvalValIn(s, sv)
	}
	return obs
}

// solveOne performs one single-verdict solve under the strategy: a
// shared-formula portfolio when configured, the encoder's own solver
// otherwise. On Sat the model is readable through e.S (a winning
// clone's model is adopted). On Unknown the second result carries the
// typed cause — a *sat.ErrBudget or a recovered member panic — when
// one is known, and nil for plain cancellation.
func solveOne(e *encode.Encoder, strat Strategy, assumptions ...sat.Lit) (sat.Status, error) {
	if strat.Portfolio > 1 {
		p := sat.Portfolio{
			Configs:      sat.PortfolioConfigs(strat.Portfolio),
			ShareClauses: strat.ShareClauses,
			ShareLBD:     strat.ShareLBD,
		}
		run := p.SolveShared(e.S, assumptions...)
		strat.fold(run.Work)
		if run.Status == sat.Sat && run.Winner != e.S {
			e.S.AdoptModelFrom(run.Winner)
		}
		if run.Budget != nil {
			return run.Status, run.Budget
		}
		return run.Status, run.Panic
	}
	st := e.S.Solve(assumptions...)
	if st == sat.Unknown {
		if be := e.S.BudgetErr(); be != nil {
			return st, be
		}
	}
	return st, nil
}

// solvePhase2 solves the final query of the inclusion check —
// unassumed on a single-model encoder, under the model-selector
// assumptions on a sweep — cube-and-conquer when configured, solveOne
// otherwise. On Sat the model is readable through e.S. The error
// result mirrors solveOne's.
func solvePhase2(e *encode.Encoder, strat Strategy, assumptions ...sat.Lit) (sat.Status, error) {
	if strat.Cube <= 1 {
		return solveOne(e, strat, assumptions...)
	}
	depth := strat.CubeDepth
	if depth <= 0 {
		// Oversplit 4x past the worker count: cube hardness is wildly
		// uneven, and stealing can only balance what is divisible.
		for depth = 1; 1<<uint(depth) < 4*strat.Cube && depth < 16; depth++ {
		}
	}
	// Selector variables are fixed by the assumptions on a sweep, so
	// splitting on them would waste half of every cube.
	cubes := sat.CubeSplitter{
		Depth:  depth,
		Prefer: e.OrderSatVars(),
		Avoid:  e.SelectorSatVars(),
	}.Split(e.S)
	run := sat.SolveCubes(e.S, cubes, strat.Cube, assumptions...)
	strat.fold(run.Work)
	if strat.Stats != nil {
		strat.Stats.Cubes += run.Cubes
		strat.Stats.CubesRefuted += run.Refuted
	}
	if run.Status == sat.Sat && run.Winner != e.S {
		e.S.AdoptModelFrom(run.Winner)
	}
	if run.Budget != nil {
		return run.Status, run.Budget
	}
	return run.Status, run.Err
}

// MineWith is Mine under a parallelism strategy. The mined set and
// iteration count are identical to the serial enumeration for every
// strategy; only the wall-clock schedule differs. When mining stops
// early (iteration limit, budget, cancellation), the partial set mined
// so far is returned alongside the error so callers can checkpoint and
// later resume it instead of discarding the work.
func MineWith(e *encode.Encoder, entries []Entry, strat Strategy) (*Set, MineStats, error) {
	if strat.Faults != nil && strat.Faults.Fire(faultinject.MinePanic) {
		panic(faultinject.Injected{Site: faultinject.MinePanic})
	}
	svs, err := obsVals(e, entries)
	if err != nil {
		return nil, MineStats{}, err
	}
	// Materialize every literal the incremental loop will reference —
	// the error literal (assumed, then asserted false) and the
	// observation bits (blocking clauses flip their signs per model) —
	// then preprocess the CNF with exactly those frozen.
	errLit := e.B.Lit(e.ErrorNode())
	bits := obsBits(e, svs)
	lits := make([]sat.Lit, len(bits))
	for i, b := range bits {
		lits[i] = e.B.Lit(b)
	}
	e.PreprocessCNF(append([]sat.Lit{errLit}, lits...)...)

	// Sequential bug check: is any erroneous serial execution
	// possible?
	switch st, cause := solveOne(e, strat, errLit); st {
	case sat.Sat:
		return nil, MineStats{}, &SeqBugError{Obs: decodeObs(e, e.S, svs)}
	case sat.Unsat:
	default:
		return nil, MineStats{}, unknownErr("sequential bug check", st, cause)
	}

	// Enumerate error-free serial observations.
	e.S.AddClause(errLit.Not())
	// Exclude everything a checkpoint or a stronger-model seed already
	// established. Each exclusion blocks all models of its observation
	// — a superset of the per-model blocking clauses a direct
	// enumeration would have added — so seed ∪ continued enumeration
	// is the full set.
	for _, pre := range []*Set{strat.Resume, strat.Seed} {
		if pre == nil {
			continue
		}
		for _, o := range pre.All() {
			if err := assertNotObservation(e, svs, o); err != nil {
				return nil, MineStats{}, err
			}
		}
	}
	if strat.Cube > 1 {
		return minePartitioned(e, svs, lits, strat)
	}
	return mineSerial(e, svs, lits, strat)
}

// seedSet returns the set mining accumulates into, pre-populated with
// the resumed checkpoint's and the monotonic seed's observations.
func (st Strategy) seedSet() *Set {
	set := NewSet()
	for _, pre := range []*Set{st.Resume, st.Seed} {
		if pre == nil {
			continue
		}
		for _, o := range pre.All() {
			set.Add(o)
		}
	}
	return set
}

// seededCount is the number of observations Strategy.Seed contributed.
func (st Strategy) seededCount() int {
	if st.Seed == nil {
		return 0
	}
	return st.Seed.Len()
}

// mineSerial is the classical blocking-clause enumeration on e.S.
func mineSerial(e *encode.Encoder, svs []encode.SymVal, lits []sat.Lit, strat Strategy) (*Set, MineStats, error) {
	set := strat.seedSet()
	stats := MineStats{Iterations: strat.ResumeIterations, Seeded: strat.seededCount()}
	limit := strat.maxIter()
	every := strat.checkpointEvery()
	for {
		st := e.S.Solve()
		if st == sat.Unsat {
			return set, stats, nil
		}
		if st != sat.Sat {
			var cause error
			if be := e.S.BudgetErr(); be != nil {
				cause = be
			}
			return set, stats, unknownErr("mining", st, cause)
		}
		stats.Iterations++
		set.Add(decodeObs(e, e.S, svs))
		// Block every assignment of the observation bits seen in this
		// model (not just this observation's canonical value): the
		// bits fully determine the observation.
		e.S.AddClause(blockingClause(e.S, lits)...)
		if strat.Checkpoint != nil && stats.Iterations%every == 0 {
			strat.Checkpoint(set, stats.Iterations)
		}
		if stats.Iterations > limit {
			return set, stats, fmt.Errorf("%w (%d iterations)", ErrMineLimit, stats.Iterations)
		}
	}
}

// blockingClause builds the clause excluding s's current assignment of
// the observation bits. With blockShrink, literals that cannot
// distinguish models are dropped: root-fixed variables (identical in
// every remaining model — covers constant bits, whose backing variable
// carries a unit clause) and repeated variables. Cube assumptions are
// never dropped — they are assigned at decision levels, not the root —
// so a partitioned worker's blocking clauses always carry its cube and
// can never exclude models of other cubes.
func blockingClause(s *sat.Solver, lits []sat.Lit) []sat.Lit {
	block := make([]sat.Lit, 0, len(lits))
	var seen map[int]bool
	if blockShrink {
		seen = make(map[int]bool, len(lits))
	}
	for _, l := range lits {
		if blockShrink {
			v := l.Var()
			if seen[v] || s.FixedAtRoot(v) {
				continue
			}
			seen[v] = true
		}
		if s.ValueLit(l) {
			block = append(block, l.Not())
		} else {
			block = append(block, l)
		}
	}
	return block
}

// minePartitioned enumerates the observation set in parallel by
// partitioning on observation-bit variables: the 2^d sign combinations
// of d such variables are disjoint and jointly exhaustive, so each
// satisfiable observation-bit assignment is enumerated in exactly one
// cube and the merged result is bit-identical to mineSerial's.
// Workers own CloneFormula snapshots reused across the cubes they
// steal; blocking clauses are added to the worker's clone only (they
// include the cube literals implicitly via the enumerated bits, so
// they could not block another cube's models even if shared).
func minePartitioned(e *encode.Encoder, svs []encode.SymVal, lits []sat.Lit, strat Strategy) (*Set, MineStats, error) {
	// Candidate split variables: distinct observation-bit variables not
	// already fixed at the root (a root-fixed variable would make one
	// polarity's cube trivially empty).
	var cand []int
	seenVar := map[int]bool{}
	for _, l := range lits {
		v := l.Var()
		if seenVar[v] || e.S.FixedAtRoot(v) {
			continue
		}
		seenVar[v] = true
		cand = append(cand, v)
	}
	workers := strat.Cube
	depth := strat.CubeDepth
	if depth <= 0 {
		// 2x oversplit: mining cubes are cheaper than phase-2 cubes
		// (each is a sub-enumeration, so idle tails are shorter).
		for depth = 1; 1<<uint(depth) < 2*workers && depth < 16; depth++ {
		}
	}
	if depth > len(cand) {
		depth = len(cand)
	}
	if depth == 0 {
		return mineSerial(e, svs, lits, strat)
	}
	vars := cand[:depth]
	cubes := make([][]sat.Lit, 1<<uint(depth))
	for mask := range cubes {
		cube := make([]sat.Lit, depth)
		for i, v := range vars {
			cube[i] = sat.MkLit(v, mask>>uint(i)&1 == 1)
		}
		cubes[mask] = cube
	}
	if workers > len(cubes) {
		workers = len(cubes)
	}
	// Clone serially: CloneFormula mutates the receiver.
	clones := make([]*sat.Solver, workers)
	for i := range clones {
		clones[i] = e.S.CloneFormula()
	}

	set := strat.seedSet()
	limit := strat.maxIter()
	every := strat.checkpointEvery()
	var (
		next     atomic.Int64
		iters    atomic.Int64
		refuted  atomic.Int64
		mu       sync.Mutex // guards set, firstErr, and Checkpoint calls
		firstErr error
		wg       sync.WaitGroup
	)
	iters.Store(int64(strat.ResumeIterations))
	next.Store(-1)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			for _, c := range clones {
				c.Interrupt()
			}
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(s *sat.Solver) {
			defer wg.Done()
			// A panicking worker (injected fault, genuine bug) fails
			// the mine with a typed error instead of crashing the
			// process; the other workers are interrupted.
			defer func() {
				if p := recover(); p != nil {
					fail(sat.RecoverAsError(p))
				}
			}()
			for {
				i := int(next.Add(1))
				if i >= len(cubes) {
					return
				}
				for {
					st := s.Solve(cubes[i]...)
					if st == sat.Unsat {
						refuted.Add(1)
						break // cube exhausted; steal the next one
					}
					if st != sat.Sat {
						var cause error
						if be := s.BudgetErr(); be != nil {
							cause = be
						}
						fail(unknownErr("mining", st, cause))
						return
					}
					n := iters.Add(1)
					if n > int64(limit) {
						fail(fmt.Errorf("%w (%d iterations)", ErrMineLimit, n))
						return
					}
					obs := decodeObs(e, s, svs)
					mu.Lock()
					set.Add(obs)
					if strat.Checkpoint != nil && n%int64(every) == 0 {
						strat.Checkpoint(set, int(n))
					}
					mu.Unlock()
					s.AddClause(blockingClause(s, lits)...)
				}
			}
		}(clones[w])
	}
	wg.Wait()
	stats := MineStats{Iterations: int(iters.Load()), Seeded: strat.seededCount()}
	if strat.Stats != nil {
		strat.Stats.Cubes += len(cubes)
		strat.Stats.CubesRefuted += int(refuted.Load())
	}
	if firstErr != nil {
		// The partial set remains sound — every observation in it is a
		// real serial observation — so return it for checkpointing.
		return set, stats, firstErr
	}
	return set, stats, nil
}

// CheckInclusionWith is CheckInclusion under a parallelism strategy.
// The verdict and counterexample semantics are identical to the serial
// check for every strategy; on Sat the encoder's solver is positioned
// at the counterexample model (adopted from the winning clone when a
// parallel path found it).
func CheckInclusionWith(e *encode.Encoder, entries []Entry, set *Set, strat Strategy) (*Counterexample, error) {
	svs, err := obsVals(e, entries)
	if err != nil {
		return nil, err
	}
	// Materialize the error literal and the observation bits (phase 2's
	// exclusion clauses reference them in both polarities), then
	// preprocess with those frozen.
	errLit := e.B.Lit(e.ErrorNode())
	roots := []sat.Lit{errLit}
	for _, b := range obsBits(e, svs) {
		roots = append(roots, e.B.Lit(b))
	}
	e.PreprocessCNF(roots...)

	// Phase 1: any execution with a runtime error is a counterexample.
	// A cube restriction (Strategy.Assume) applies here too: the cubes
	// of a fan-out are jointly exhaustive, so an erroneous execution
	// exists iff some cube contains one.
	switch st, cause := solveOne(e, strat, append([]sat.Lit{errLit}, strat.Assume...)...); st {
	case sat.Sat:
		obs := decodeObs(e, e.S, svs)
		msg := ""
		for _, ec := range e.Errors {
			if e.B.Eval(ec.Cond) {
				msg = ec.Msg
				break
			}
		}
		return &Counterexample{Obs: obs, IsErr: true, Err: msg}, nil
	case sat.Unsat:
	default:
		return nil, unknownErr("error check", st, cause)
	}

	// Phase 2: exclude the specification's observations and solve.
	e.S.AddClause(errLit.Not())
	for _, o := range set.All() {
		if err := assertNotObservation(e, svs, o); err != nil {
			return nil, err
		}
	}
	switch st, cause := solvePhase2(e, strat, strat.Assume...); st {
	case sat.Unsat:
		return nil, nil
	case sat.Sat:
		return &Counterexample{Obs: decodeObs(e, e.S, svs)}, nil
	default:
		return nil, unknownErr("inclusion check", st, cause)
	}
}

package spec

import (
	"testing"

	"checkfence/internal/encode"
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/ranges"
)

func TestObservationKeyAndFormat(t *testing.T) {
	o := Observation{lsl.Int(1), lsl.Undef(), lsl.Ptr(2, 0)}
	if o.Key() != "1,undefined,[ 2 0 ]" {
		t.Errorf("Key = %q", o.Key())
	}
	entries := []Entry{{Label: "A"}, {Label: "X"}, {Label: "P"}}
	want := "A=1 X=undefined P=[ 2 0 ]"
	if got := o.Format(entries); got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet()
	o1 := Observation{lsl.Int(1)}
	o2 := Observation{lsl.Int(2)}
	if !s.Add(o1) || s.Add(o1) {
		t.Error("Add novelty detection broken")
	}
	s.Add(o2)
	if !s.Has(o1) || s.Has(Observation{lsl.Int(3)}) {
		t.Error("Has broken")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	all := s.All()
	if len(all) != 2 || all[0].Key() > all[1].Key() {
		t.Error("All must be sorted")
	}
	s2 := NewSet()
	s2.Add(o2)
	s2.Add(o1)
	if !s.Equal(s2) {
		t.Error("Equal must be order independent")
	}
	s2.Add(Observation{lsl.Int(9)})
	if s.Equal(s2) {
		t.Error("Equal must detect size difference")
	}
}

// buildMiningEncoder builds a tiny one-thread encoder whose single
// observed register takes nondeterministic values constrained to a
// known set.
func buildMiningEncoder(t *testing.T) (*encode.Encoder, []Entry) {
	t.Helper()
	// r = havoc(2 bits); assume r != 3  => observations {0,1,2}.
	body := []lsl.Stmt{
		&lsl.HavocStmt{Dst: "r", Bits: 2},
		&lsl.ConstStmt{Dst: "three", Val: lsl.Int(3)},
		&lsl.OpStmt{Dst: "ne", Op: lsl.OpNe, Args: []lsl.Reg{"r", "three"}},
		&lsl.AssumeStmt{Cond: "ne"},
	}
	info := ranges.Analyze([][]lsl.Stmt{body})
	e := encode.New(memmodel.Serial, info)
	err := e.Encode([]encode.Thread{
		{},
		{Name: "t", Segments: [][]lsl.Stmt{body}, OpIDs: []int{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, []Entry{{Label: "R", Thread: 1, Reg: "r"}}
}

func TestMineEnumeratesAll(t *testing.T) {
	e, entries := buildMiningEncoder(t)
	set, stats, err := Mine(e, entries)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Errorf("mined %d observations, want 3: %v", set.Len(), set.All())
	}
	if stats.Iterations < 3 {
		t.Errorf("iterations = %d", stats.Iterations)
	}
	for _, v := range []int64{0, 1, 2} {
		if !set.Has(Observation{lsl.Int(v)}) {
			t.Errorf("missing observation %d", v)
		}
	}
}

func TestMineDetectsSequentialBug(t *testing.T) {
	body := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "zero", Val: lsl.Int(0)},
		&lsl.AssertStmt{Cond: "zero", Msg: "always fails"},
		&lsl.ConstStmt{Dst: "r", Val: lsl.Int(1)},
	}
	info := ranges.Analyze([][]lsl.Stmt{body})
	e := encode.New(memmodel.Serial, info)
	if err := e.Encode([]encode.Thread{
		{},
		{Name: "t", Segments: [][]lsl.Stmt{body}, OpIDs: []int{0}},
	}); err != nil {
		t.Fatal(err)
	}
	_, _, err := Mine(e, []Entry{{Label: "R", Thread: 1, Reg: "r"}})
	if _, ok := err.(*SeqBugError); !ok {
		t.Errorf("expected SeqBugError, got %v", err)
	}
}

func TestCheckInclusionPassAndFail(t *testing.T) {
	// The execution produces r in {0,1,2}; a spec of exactly that set
	// passes, a smaller one fails with the missing observation.
	full := NewSet()
	for _, v := range []int64{0, 1, 2} {
		full.Add(Observation{lsl.Int(v)})
	}
	e, entries := buildMiningEncoder(t)
	cex, err := CheckInclusion(e, entries, full)
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Fatalf("inclusion must pass, got cex %v", cex.Obs)
	}

	partial := NewSet()
	partial.Add(Observation{lsl.Int(0)})
	partial.Add(Observation{lsl.Int(2)})
	e2, entries2 := buildMiningEncoder(t)
	cex, err = CheckInclusion(e2, entries2, partial)
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil {
		t.Fatal("inclusion against the partial spec must fail")
	}
	if !cex.Obs[0].Equal(lsl.Int(1)) {
		t.Errorf("counterexample observation = %v, want 1", cex.Obs[0])
	}
	if cex.IsErr {
		t.Error("not an error counterexample")
	}
}

func TestCheckInclusionReportsErrors(t *testing.T) {
	body := []lsl.Stmt{
		&lsl.HavocStmt{Dst: "h", Bits: 1},
		&lsl.AssertStmt{Cond: "h", Msg: "h must be one"},
		&lsl.OpStmt{Dst: "r", Op: lsl.OpIdent, Args: []lsl.Reg{"h"}},
	}
	info := ranges.Analyze([][]lsl.Stmt{body})
	e := encode.New(memmodel.SequentialConsistency, info)
	if err := e.Encode([]encode.Thread{
		{},
		{Name: "t", Segments: [][]lsl.Stmt{body}, OpIDs: []int{0}},
	}); err != nil {
		t.Fatal(err)
	}
	// The spec admits everything; only the assertion can fail.
	spec := NewSet()
	spec.Add(Observation{lsl.Int(0)})
	spec.Add(Observation{lsl.Int(1)})
	cex, err := CheckInclusion(e, []Entry{{Label: "R", Thread: 1, Reg: "r"}}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil || !cex.IsErr {
		t.Fatalf("expected an error counterexample, got %+v", cex)
	}
	if cex.Err == "" {
		t.Error("error message missing")
	}
}

func TestMineUnknownEntry(t *testing.T) {
	e, _ := buildMiningEncoder(t)
	if _, _, err := Mine(e, []Entry{{Label: "X", Thread: 1, Reg: "nosuch"}}); err == nil {
		t.Error("unknown register must fail")
	}
	if _, _, err := Mine(e, []Entry{{Label: "X", Thread: 9, Reg: "r"}}); err == nil {
		t.Error("unknown thread must fail")
	}
}

package trace_test

import (
	"strings"
	"testing"

	"checkfence/internal/core"
	"checkfence/internal/memmodel"
)

// TestTraceRendering builds a real counterexample (unfenced msn on
// Relaxed) and checks the decoded trace.
func TestTraceRendering(t *testing.T) {
	res, err := core.Check("msn-nofence", "T0", core.Options{Model: memmodel.Relaxed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass || res.Cex == nil {
		t.Fatal("expected a counterexample")
	}
	tr := res.Cex
	if len(tr.Events) == 0 {
		t.Fatal("trace has no events")
	}
	// Events are sorted by memory order.
	for i, ev := range tr.Events {
		if ev.MemOrder != i {
			t.Errorf("event %d has MemOrder %d", i, ev.MemOrder)
		}
	}
	// The initialization stores come first (ordered before all).
	if tr.Events[0].ThreadName != "init" {
		t.Errorf("first event thread = %q, want init", tr.Events[0].ThreadName)
	}
	// A consistent solver model decodes to a total order (no ties).
	if tr.OrderTies != 0 {
		t.Errorf("decoded order has %d ties", tr.OrderTies)
	}
	// Events of one thread appear in program order positions consistent
	// with the recorded ProgIdx metadata (same-address stores stay in
	// program order even on Relaxed only conditionally, but init is
	// sequential).
	var initIdx []int
	for _, ev := range tr.Events {
		if ev.Thread == 0 {
			initIdx = append(initIdx, ev.ProgIdx)
		}
	}
	for i := 1; i < len(initIdx); i++ {
		if initIdx[i] < initIdx[i-1] {
			t.Errorf("init thread events out of program order: %v", initIdx)
		}
	}
	// Havoc slots exist for every thread (values recorded only when the
	// havoc executed).
	if tr.Havocs == nil {
		t.Error("trace must carry havoc vectors")
	}
	// Addresses are rendered symbolically: the queue global and node
	// objects must appear.
	s := tr.String()
	if !strings.Contains(s, "counterexample on model relaxed") {
		t.Error("missing header")
	}
	if !strings.Contains(s, "q.") && !strings.Contains(s, "node") {
		t.Errorf("no symbolic addresses in trace:\n%s", s)
	}
	if !strings.Contains(s, "observation:") {
		t.Error("missing observation line")
	}
}

// TestSeqBugTraceRendering: sequential bugs decode against the Serial
// encoder.
func TestSeqBugTraceRendering(t *testing.T) {
	res, err := core.Check("lazylist-bug", "Sac", core.Options{Model: memmodel.SequentialConsistency})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass || res.Cex == nil {
		t.Fatal("expected a counterexample")
	}
	if !res.Cex.IsErr {
		t.Error("lazylist-bug manifests as a runtime error")
	}
	if !strings.Contains(res.Cex.String(), "runtime error") {
		t.Error("error must be rendered")
	}
}

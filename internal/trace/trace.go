// Package trace decodes satisfying assignments of the inclusion check
// into human-readable counterexample traces: the executed memory
// accesses of every thread, annotated with their values and sorted by
// the memory order the SAT solver chose.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"checkfence/internal/encode"
	"checkfence/internal/harness"
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/spec"
)

// Event is one executed memory access in the counterexample.
type Event struct {
	MemOrder   int // position in the memory order <M
	Thread     int
	ThreadName string
	IsLoad     bool
	Addr       lsl.Value
	AddrName   string // symbolic rendering of the address
	Val        lsl.Value
	Desc       string // source form of the instruction
}

// Trace is a decoded counterexample.
type Trace struct {
	Model       memmodel.Model
	Events      []Event
	Observation spec.Observation
	Entries     []spec.Entry
	IsErr       bool
	ErrMsg      string
}

// Build extracts a trace from an encoder whose solver holds a
// counterexample model.
func Build(enc *encode.Encoder, built *harness.Built, unrolled *harness.Unrolled,
	cex *spec.Counterexample) *Trace {

	names := map[int64]string{}
	for _, g := range built.Unit.Prog.Globals {
		names[g.Base] = g.Name
	}
	for base, site := range unrolled.Allocs {
		names[base] = shortSite(site, base)
	}

	t := &Trace{
		Model:       enc.Model,
		Observation: cex.Obs,
		Entries:     built.Entries,
		IsErr:       cex.IsErr,
		ErrMsg:      cex.Err,
	}

	type ordered struct {
		ev     Event
		before int // number of accesses ordered before it
	}
	var evs []ordered
	for i, a := range enc.Accesses {
		if !enc.B.Eval(a.Exec) {
			continue
		}
		before := 0
		for j := range enc.Accesses {
			if j == i || !enc.B.Eval(enc.Accesses[j].Exec) {
				continue
			}
			if enc.MemOrderBefore(j, i) {
				before++
			}
		}
		addr := enc.EvalVal(a.Addr)
		name := ""
		tname := "init"
		if a.Thread > 0 && a.Thread < len(unrolled.Threads) {
			tname = unrolled.Threads[a.Thread].Name
		}
		if addr.Kind == lsl.KindPtr {
			name = renderAddr(addr, names)
		}
		evs = append(evs, ordered{
			ev: Event{
				Thread: a.Thread, ThreadName: tname, IsLoad: a.IsLoad,
				Addr: addr, AddrName: name, Val: enc.EvalVal(a.Val),
				Desc: a.Desc,
			},
			before: before,
		})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].before < evs[j].before })
	for i, o := range evs {
		o.ev.MemOrder = i
		t.Events = append(t.Events, o.ev)
	}
	return t
}

func shortSite(site string, base int64) string {
	// Site keys look like "t1.s0/0:enqueue/new"; keep the function
	// and number the object by base for readability.
	parts := strings.Split(site, "/")
	fn := parts[len(parts)-1]
	if len(parts) >= 2 {
		seg := parts[len(parts)-2]
		if i := strings.Index(seg, ":"); i >= 0 {
			fn = seg[i+1:]
		}
	}
	return fmt.Sprintf("node%d(%s)", base, fn)
}

func renderAddr(addr lsl.Value, names map[int64]string) string {
	base := addr.Ptr[0]
	name, ok := names[base]
	if !ok {
		name = fmt.Sprintf("obj%d", base)
	}
	var sb strings.Builder
	sb.WriteString(name)
	for _, off := range addr.Ptr[1:] {
		fmt.Fprintf(&sb, ".%d", off)
	}
	return sb.String()
}

// String renders the trace.
func (t *Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "counterexample on model %s\n", t.Model)
	if t.IsErr {
		fmt.Fprintf(&sb, "runtime error: %s\n", t.ErrMsg)
	}
	fmt.Fprintf(&sb, "observation: %s\n", t.Observation.Format(t.Entries))
	fmt.Fprintf(&sb, "memory order (%d accesses):\n", len(t.Events))
	for _, ev := range t.Events {
		kind := "store"
		if ev.IsLoad {
			kind = "load "
		}
		addr := ev.AddrName
		if addr == "" {
			addr = ev.Addr.String()
		}
		fmt.Fprintf(&sb, "  %3d  [%-8s] %s %-18s = %-10s ; %s\n",
			ev.MemOrder, ev.ThreadName, kind, addr, ev.Val, ev.Desc)
	}
	return sb.String()
}

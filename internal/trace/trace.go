// Package trace decodes satisfying assignments of the inclusion check
// into human-readable counterexample traces: the executed memory
// accesses of every thread, annotated with their values and sorted by
// the memory order the SAT solver chose.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"checkfence/internal/encode"
	"checkfence/internal/harness"
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/spec"
)

// Event is one executed memory access in the counterexample.
type Event struct {
	MemOrder   int // position in the memory order <M
	Thread     int
	ThreadName string
	ProgIdx    int // program-order position within the thread
	OpID       int // operation invocation id (-1 for none)
	Group      int // atomic block id (-1 for none)
	IsLoad     bool
	Addr       lsl.Value
	AddrName   string // symbolic rendering of the address
	Val        lsl.Value
	Desc       string // source form of the instruction
}

// Fence is one executed fence occurrence.
type Fence struct {
	Thread  int
	ProgIdx int
	Kind    lsl.FenceKind
}

// Trace is a decoded counterexample.
type Trace struct {
	Model       memmodel.Model
	Events      []Event
	Fences      []Fence
	Havocs      [][]int64 // per thread, executed havoc values in program order
	Observation spec.Observation
	Entries     []spec.Entry
	IsErr       bool
	ErrMsg      string
	// OrderTies counts executed access pairs the solver left mutually
	// unordered. A consistent model of the order axioms never produces
	// one (the relation is constrained to a strict total order); the
	// validator treats a nonzero count as an internal error.
	OrderTies int
}

// Build extracts a trace from an encoder whose solver holds a
// counterexample model, naming addresses and threads via the harness
// metadata.
func Build(enc *encode.Encoder, built *harness.Built, unrolled *harness.Unrolled,
	cex *spec.Counterexample) *Trace {

	names, threadNames := HarnessNames(built, unrolled)
	t := Decode(enc, cex, built.Entries, names, threadNames)
	return t
}

// HarnessNames derives the address-naming map and thread names Build
// uses, for backends (internal/rf) that construct traces without an
// encoder model to decode.
func HarnessNames(built *harness.Built, unrolled *harness.Unrolled) (map[int64]string, []string) {
	names := map[int64]string{}
	for _, g := range built.Unit.Prog.Globals {
		names[g.Base] = g.Name
	}
	for base, site := range unrolled.Allocs {
		names[base] = shortSite(site, base)
	}
	threadNames := make([]string, len(unrolled.Threads))
	for i, th := range unrolled.Threads {
		threadNames[i] = th.Name
	}
	return names, threadNames
}

// Decode extracts a trace from an encoder whose solver holds a
// counterexample model. names and threadNames are optional decoration
// (the litmus fuzzer has no harness to derive them from).
func Decode(enc *encode.Encoder, cex *spec.Counterexample, entries []spec.Entry,
	names map[int64]string, threadNames []string) *Trace {

	t := &Trace{
		Model:       enc.Model,
		Observation: cex.Obs,
		Entries:     entries,
		IsErr:       cex.IsErr,
		ErrMsg:      cex.Err,
	}

	type ordered struct {
		ev     Event
		before int // number of accesses ordered before it
	}
	var evs []ordered
	for i, a := range enc.Accesses {
		if !enc.B.Eval(a.Exec) {
			continue
		}
		before := 0
		for j := range enc.Accesses {
			if j == i || !enc.B.Eval(enc.Accesses[j].Exec) {
				continue
			}
			if enc.MemOrderBefore(j, i) {
				before++
			}
		}
		addr := enc.EvalVal(a.Addr)
		name := ""
		tname := "init"
		if a.Thread > 0 && a.Thread < len(threadNames) {
			tname = threadNames[a.Thread]
		}
		if addr.Kind == lsl.KindPtr {
			name = renderAddr(addr, names)
		}
		evs = append(evs, ordered{
			ev: Event{
				Thread: a.Thread, ThreadName: tname,
				ProgIdx: a.ProgIdx, OpID: a.OpID, Group: a.Group,
				IsLoad: a.IsLoad,
				Addr:   addr, AddrName: name, Val: enc.EvalVal(a.Val),
				Desc: a.Desc,
			},
			before: before,
		})
	}
	// In a consistent model the before-counts 0..n-1 are all distinct;
	// a tie means the decoded order is not total. Record it (the
	// validator rejects such traces) and break the tie deterministically
	// on (thread, program index) so output stays stable across
	// portfolio winners either way.
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.before != b.before {
			return a.before < b.before
		}
		if a.ev.Thread != b.ev.Thread {
			return a.ev.Thread < b.ev.Thread
		}
		return a.ev.ProgIdx < b.ev.ProgIdx
	})
	for i := 1; i < len(evs); i++ {
		if evs[i].before == evs[i-1].before {
			t.OrderTies++
		}
	}
	for i, o := range evs {
		o.ev.MemOrder = i
		t.Events = append(t.Events, o.ev)
	}

	for _, f := range enc.Fences {
		if !enc.B.Eval(f.Exec) {
			continue
		}
		t.Fences = append(t.Fences, Fence{Thread: f.Thread, ProgIdx: f.ProgIdx, Kind: f.Kind})
	}
	sort.SliceStable(t.Fences, func(i, j int) bool {
		if t.Fences[i].Thread != t.Fences[j].Thread {
			return t.Fences[i].Thread < t.Fences[j].Thread
		}
		return t.Fences[i].ProgIdx < t.Fences[j].ProgIdx
	})

	// Havocs of one thread were recorded in program order; keep that
	// order per thread so replay can consume them sequentially.
	nThreads := len(threadNames)
	for _, h := range enc.Havocs {
		if h.Thread >= nThreads {
			nThreads = h.Thread + 1
		}
	}
	t.Havocs = make([][]int64, nThreads)
	for _, h := range enc.Havocs {
		if !enc.B.Eval(h.Exec) {
			continue
		}
		t.Havocs[h.Thread] = append(t.Havocs[h.Thread], enc.B.EvalBV(h.Val))
	}
	return t
}

func shortSite(site string, base int64) string {
	// Site keys look like "t1.s0/0:enqueue/new"; keep the function
	// and number the object by base for readability.
	parts := strings.Split(site, "/")
	fn := parts[len(parts)-1]
	if len(parts) >= 2 {
		seg := parts[len(parts)-2]
		if i := strings.Index(seg, ":"); i >= 0 {
			fn = seg[i+1:]
		}
	}
	return fmt.Sprintf("node%d(%s)", base, fn)
}

// RenderAddr renders a concrete pointer address with the
// global/allocation names of the harness (shared with the rf
// backend's trace builder).
func RenderAddr(addr lsl.Value, names map[int64]string) string {
	return renderAddr(addr, names)
}

func renderAddr(addr lsl.Value, names map[int64]string) string {
	base := addr.Ptr[0]
	name, ok := names[base]
	if !ok {
		name = fmt.Sprintf("obj%d", base)
	}
	var sb strings.Builder
	sb.WriteString(name)
	for _, off := range addr.Ptr[1:] {
		fmt.Fprintf(&sb, ".%d", off)
	}
	return sb.String()
}

// String renders the trace.
func (t *Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "counterexample on model %s\n", t.Model)
	if t.IsErr {
		fmt.Fprintf(&sb, "runtime error: %s\n", t.ErrMsg)
	}
	fmt.Fprintf(&sb, "observation: %s\n", t.Observation.Format(t.Entries))
	fmt.Fprintf(&sb, "memory order (%d accesses):\n", len(t.Events))
	for _, ev := range t.Events {
		kind := "store"
		if ev.IsLoad {
			kind = "load "
		}
		addr := ev.AddrName
		if addr == "" {
			addr = ev.Addr.String()
		}
		fmt.Fprintf(&sb, "  %3d  [%-8s] %s %-18s = %-10s ; %s\n",
			ev.MemOrder, ev.ThreadName, kind, addr, ev.Val, ev.Desc)
	}
	return sb.String()
}

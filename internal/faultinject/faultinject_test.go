package faultinject

import (
	"sync"
	"testing"
)

func TestScriptFiresExactlyOnce(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := NewScript(seed, 8, SolverBudget)
		fired := 0
		for i := 0; i < 100; i++ {
			if s.Fire(SolverBudget) {
				fired++
			}
		}
		if fired != 1 {
			t.Fatalf("seed %d: fired %d times, want 1", seed, fired)
		}
		if s.Fired(SolverBudget) != 1 {
			t.Fatalf("seed %d: Fired = %d", seed, s.Fired(SolverBudget))
		}
	}
}

func TestScriptDeterministic(t *testing.T) {
	occurrence := func(seed int64) int {
		s := NewScript(seed, 8, MinePanic)
		for i := 0; i < 100; i++ {
			if s.Fire(MinePanic) {
				return i
			}
		}
		return -1
	}
	seeds := []int64{1, 2, 3, 4, 5}
	distinct := map[int]bool{}
	for _, seed := range seeds {
		a, b := occurrence(seed), occurrence(seed)
		if a != b {
			t.Fatalf("seed %d: occurrences %d and %d differ across runs", seed, a, b)
		}
		if a < 0 || a >= 8 {
			t.Fatalf("seed %d: occurrence %d outside window", seed, a)
		}
		distinct[a] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all seeds chose the same occurrence; seed is not driving the schedule")
	}
}

func TestScriptUnarmedSiteNeverFires(t *testing.T) {
	s := NewScript(7, 4, SolverBudget)
	for i := 0; i < 50; i++ {
		if s.Fire(CacheCorrupt) {
			t.Fatal("unarmed site fired")
		}
	}
}

func TestScriptConcurrent(t *testing.T) {
	s := NewScript(3, 16, SolvePanic)
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if s.Fire(SolvePanic) {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("fired %d times under concurrency, want 1", fired)
	}
}

func TestAlways(t *testing.T) {
	a := &Always{Sites: []Site{EncodePanic}}
	for i := 0; i < 3; i++ {
		if !a.Fire(EncodePanic) {
			t.Fatal("armed Always site did not fire")
		}
		if a.Fire(SolverAlloc) {
			t.Fatal("unarmed Always site fired")
		}
	}
	if a.Fired(EncodePanic) != 3 {
		t.Fatalf("Fired = %d, want 3", a.Fired(EncodePanic))
	}
}

func TestInjectedSite(t *testing.T) {
	if got := InjectedSite(Injected{Site: SolvePanic}); got != SolvePanic {
		t.Fatalf("InjectedSite(Injected) = %q", got)
	}
	if got := InjectedSite(&RecoveredPanic{Value: Injected{Site: MinePanic}}); got != MinePanic {
		t.Fatalf("InjectedSite(RecoveredPanic) = %q", got)
	}
	if got := InjectedSite("boom"); got != "" {
		t.Fatalf("InjectedSite(genuine) = %q, want empty", got)
	}
}

func TestSitesCoverRecoverable(t *testing.T) {
	found := map[Site]bool{}
	for _, s := range Sites() {
		found[s] = true
	}
	for _, s := range []Site{SolverBudget, CacheCorrupt} {
		if !found[s] {
			t.Fatalf("recoverable site %q missing from Sites()", s)
		}
		if !Recoverable(s) {
			t.Fatalf("site %q should be recoverable", s)
		}
	}
	if Recoverable(SolvePanic) {
		t.Fatal("SolvePanic should not be recoverable")
	}
}

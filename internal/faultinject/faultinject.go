// Package faultinject provides deterministic, seed-driven fault
// injection for the check pipeline, plus the shared error types the
// panic-isolation layer uses when it recovers an injected (or real)
// crash.
//
// The hook points are plain interface calls gated on a nil check — no
// build tags — so production binaries pay one pointer comparison per
// site and tests can sweep every site with a scripted Faults value:
//
//	sat.Solver (via SetFaults / sat.Config.Faults / encode.Config.Faults):
//	    SolverAlloc  — panic while allocating a variable (NewVar)
//	    SolverBudget — force a typed budget exhaustion out of Solve
//	    SolvePanic   — panic inside the CDCL search loop
//	encode.Encoder (via encode.Config.Faults):
//	    EncodePanic  — panic at the start of Encode
//	internal/spec (via spec.Strategy.Faults):
//	    MinePanic    — panic inside the specification-mining loop
//	core.SpecCache (via SpecCache.SetFaults / core.Options.Faults):
//	    CacheCorrupt — flip a byte of an on-disk entry before parsing
//
// Every implementation of Faults must be safe for concurrent use: the
// suite worker pool, portfolio members, and cube workers all consult
// the same value.
package faultinject

import (
	"fmt"
	"sync"
)

// Site names one fault-injection hook point.
type Site string

// The registered fault sites. Sites returns them all, in the order a
// sweep should visit them.
const (
	SolverAlloc  Site = "solver-alloc"
	SolverBudget Site = "solver-budget"
	SolvePanic   Site = "solve-panic"
	EncodePanic  Site = "encode-panic"
	MinePanic    Site = "mine-panic"
	CacheCorrupt Site = "cache-corrupt"
)

// Network-level fault sites of the distributed fleet layer
// (internal/fleet). They model the failure classes of a
// coordinator/worker deployment, injected at the worker's hook points:
//
//	FleetWorkerCrash    — the worker panics mid-cube and abandons the
//	                      task without reporting (a process crash);
//	                      the coordinator's lease expires.
//	FleetStallHeartbeat — the worker keeps computing but its heartbeats
//	                      stop (hang or network partition on the
//	                      renewal path); the lease expires and the
//	                      eventual result arrives late.
//	FleetDropResult     — the result response is dropped in flight
//	                      (partition on the reply path); the lease
//	                      expires with the work finished but unseen.
//	FleetDupResult      — the result is delivered twice (an
//	                      at-least-once transport retry); the
//	                      coordinator must deduplicate.
const (
	FleetWorkerCrash    Site = "fleet-worker-crash"
	FleetStallHeartbeat Site = "fleet-stall-heartbeat"
	FleetDropResult     Site = "fleet-drop-result"
	FleetDupResult      Site = "fleet-dup-result"
)

// Sites returns every registered core-pipeline fault site. The chaos
// sweep iterates this list so a newly added site is exercised without
// editing the test. The fleet's network-level sites are listed
// separately by NetworkSites: they only have hook points in the
// coordinator/worker layer.
func Sites() []Site {
	return []Site{SolverAlloc, SolverBudget, SolvePanic, EncodePanic, MinePanic, CacheCorrupt}
}

// NetworkSites returns the fleet's network-level fault sites, in the
// order the fleet chaos sweep should visit them.
func NetworkSites() []Site {
	return []Site{FleetWorkerCrash, FleetStallHeartbeat, FleetDropResult, FleetDupResult}
}

// Recoverable reports whether a fault at the site is expected to be
// absorbed by the degradation/retry machinery — the run still ends in
// a verdict bit-identical to a fault-free run. Non-recoverable sites
// (injected panics, alloc failures) end in a typed error instead.
func Recoverable(s Site) bool {
	switch s {
	case SolverBudget, CacheCorrupt:
		return true
	case FleetWorkerCrash, FleetStallHeartbeat, FleetDropResult, FleetDupResult:
		// The fleet's lease/requeue/dedup machinery absorbs every
		// network-level fault: the cube is re-dispatched or the
		// duplicate dropped, and the aggregated verdict is unchanged.
		return true
	}
	return false
}

// Faults decides, per occurrence, whether the fault at a site fires.
// Implementations must be safe for concurrent use and cheap: hot
// paths (variable allocation, the solve loop) consult them.
type Faults interface {
	Fire(site Site) bool
}

// Injected is the panic value raised at the panic-style sites
// (SolverAlloc, SolvePanic, EncodePanic, MinePanic), so recovery
// layers and tests can tell an injected crash from a genuine one.
type Injected struct {
	Site Site
}

func (i Injected) String() string {
	return fmt.Sprintf("faultinject: injected panic at site %q", i.Site)
}

// RecoveredPanic is the typed error the panic-isolation layers (suite
// workers, portfolio members, cube and mining workers) return when
// they recover a panic: the recovered value plus the stack captured
// at the recovery point. It is an internal error, never a verdict.
type RecoveredPanic struct {
	Value any
	Stack []byte
}

func (e *RecoveredPanic) Error() string {
	return fmt.Sprintf("panic recovered: %v", e.Value)
}

// InjectedSite returns the site of an injected panic wrapped in err
// (or carried as a raw recovered value), and "" when the value is a
// genuine crash.
func InjectedSite(v any) Site {
	switch x := v.(type) {
	case Injected:
		return x.Site
	case *RecoveredPanic:
		return InjectedSite(x.Value)
	case error:
		return ""
	}
	return ""
}

// Script is a deterministic, seed-driven Faults implementation. Each
// armed site fires exactly once, at an occurrence index derived from
// the seed (within [0, Window)), then disarms — so a recoverable
// fault hits one attempt and the retry runs clean. A Window of 1
// makes every armed site fire on its first occurrence.
type Script struct {
	mu     sync.Mutex
	target map[Site]uint64 // occurrence index at which to fire
	seen   map[Site]uint64
	fired  map[Site]int
}

// NewScript arms the given sites with firing occurrences derived
// deterministically from seed. window bounds the occurrence index
// (<= 0 selects 1: fire on first occurrence).
func NewScript(seed int64, window int, sites ...Site) *Script {
	if window <= 0 {
		window = 1
	}
	s := &Script{
		target: make(map[Site]uint64, len(sites)),
		seen:   make(map[Site]uint64),
		fired:  make(map[Site]int),
	}
	for _, site := range sites {
		s.target[site] = splitmix(uint64(seed), site) % uint64(window)
	}
	return s
}

// splitmix derives a per-site pseudo-random value from the seed and
// the site name (splitmix64 over a simple string hash).
func splitmix(seed uint64, site Site) uint64 {
	x := seed
	for i := 0; i < len(site); i++ {
		x = x*31 + uint64(site[i])
	}
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Fire implements Faults: it reports true exactly once per armed
// site, at the seed-derived occurrence.
func (s *Script) Fire(site Site) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	target, armed := s.target[site]
	if !armed {
		return false
	}
	n := s.seen[site]
	s.seen[site] = n + 1
	if n != target {
		return false
	}
	delete(s.target, site) // one-shot: disarm
	s.fired[site]++
	return true
}

// Fired returns how many times the site has fired (0 or 1 for a
// Script).
func (s *Script) Fired(site Site) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired[site]
}

// Seen returns how many occurrences of the site have been observed.
func (s *Script) Seen(site Site) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen[site]
}

// Always fires the given sites on every occurrence (never disarms).
// Useful for exercising a hook point unconditionally.
type Always struct {
	Sites []Site

	mu    sync.Mutex
	count map[Site]int
}

// Fire implements Faults.
func (a *Always) Fire(site Site) bool {
	for _, s := range a.Sites {
		if s == site {
			a.mu.Lock()
			if a.count == nil {
				a.count = map[Site]int{}
			}
			a.count[site]++
			a.mu.Unlock()
			return true
		}
	}
	return false
}

// Fired returns how many times the site has fired.
func (a *Always) Fired(site Site) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.count[site]
}

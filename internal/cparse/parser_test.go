package cparse

import (
	"strings"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize(`int x = 0x1F; // comment
/* block
   comment */ p->next != NULL && y >= 2;`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	want := []string{"int", "x", "=", "0x1F", ";", "p", "->", "next",
		"!=", "NULL", "&&", "y", ">=", "2", ";"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestTokenizeString(t *testing.T) {
	toks, err := Tokenize(`fence("store-store");`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != TokString || toks[2].Text != "store-store" {
		t.Errorf("string token = %+v", toks[2])
	}
}

func TestTokenizeErrors(t *testing.T) {
	if _, err := Tokenize("/* unterminated"); err == nil {
		t.Error("expected error for unterminated comment")
	}
	if _, err := Tokenize(`"unterminated`); err == nil {
		t.Error("expected error for unterminated string")
	}
	if _, err := Tokenize("int @ x;"); err == nil {
		t.Error("expected error for stray character")
	}
}

const msnSnippet = `
typedef int value_t;
typedef struct node {
    struct node *next;
    value_t value;
} node_t;
typedef struct queue {
    node_t *head;
    node_t *tail;
} queue_t;

extern void fence(char *type);
extern int cas(void *loc, unsigned old, unsigned new);
extern node_t *new_node();
extern void delete_node(node_t *node);

queue_t q;

void init_queue(queue_t *queue)
{
    node_t *node = new_node();
    node->next = 0;
    queue->head = queue->tail = node;
}

void enqueue(queue_t *queue, value_t value)
{
    node_t *node, *tail, *next;
    node = new_node();
    node->value = value;
    node->next = 0;
    fence("store-store");
    while (true) {
        tail = queue->tail;
        fence("load-load");
        next = tail->next;
        if (tail == queue->tail)
            if (next == 0) {
                if (cas(&tail->next, (unsigned) next, (unsigned) node))
                    break;
            } else
                cas(&queue->tail, (unsigned) tail, (unsigned) next);
    }
    cas(&queue->tail, (unsigned) tail, (unsigned) node);
}

bool dequeue(queue_t *queue, value_t *pvalue)
{
    node_t *head, *tail, *next;
    while (true) {
        head = queue->head;
        tail = queue->tail;
        next = head->next;
        if (head == queue->head) {
            if (head == tail) {
                if (next == 0)
                    return false;
                cas(&queue->tail, (unsigned) tail, (unsigned) next);
            } else {
                *pvalue = next->value;
                if (cas(&queue->head, (unsigned) head, (unsigned) next))
                    break;
            }
        }
    }
    delete_node(head);
    return true;
}
`

func TestParseMSNQueue(t *testing.T) {
	f, err := Parse(msnSnippet)
	if err != nil {
		t.Fatal(err)
	}
	decls := f.Flatten()
	var structs, typedefs, funcs, externs, globals int
	names := map[string]bool{}
	for _, d := range decls {
		switch d := d.(type) {
		case *StructDecl:
			structs++
		case *TypedefDecl:
			typedefs++
		case *FuncDecl:
			if d.Extern {
				externs++
			} else {
				funcs++
			}
			names[d.Name] = true
		case *VarDecl:
			globals++
		}
	}
	if structs != 2 || typedefs != 3 || funcs != 3 || externs != 4 || globals != 1 {
		t.Errorf("decl counts: structs=%d typedefs=%d funcs=%d externs=%d globals=%d",
			structs, typedefs, funcs, externs, globals)
	}
	for _, n := range []string{"init_queue", "enqueue", "dequeue"} {
		if !names[n] {
			t.Errorf("missing function %s", n)
		}
	}
}

func TestParseChainedAssignment(t *testing.T) {
	f, err := Parse(`
typedef struct q { int *head; int *tail; } q_t;
void f(q_t *p, int *n) { p->head = p->tail = n; }`)
	if err != nil {
		t.Fatal(err)
	}
	fn := findFunc(t, f, "f")
	es, ok := fn.Body.List[0].(*ExprStmt)
	if !ok {
		t.Fatalf("stmt = %T", fn.Body.List[0])
	}
	outer, ok := es.X.(*AssignExpr)
	if !ok {
		t.Fatalf("expr = %T", es.X)
	}
	if _, ok := outer.Rhs.(*AssignExpr); !ok {
		t.Fatalf("assignment must be right associative, rhs = %T", outer.Rhs)
	}
}

func findFunc(t *testing.T, f *File, name string) *FuncDecl {
	t.Helper()
	for _, d := range f.Flatten() {
		if fd, ok := d.(*FuncDecl); ok && fd.Name == name {
			return fd
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

func TestParsePrecedence(t *testing.T) {
	f, err := Parse(`void f(int a, int b, int c) { int x = a + b * c == a && b < c; }`)
	if err != nil {
		t.Fatal(err)
	}
	fn := findFunc(t, f, "f")
	ds := fn.Body.List[0].(*DeclStmt)
	// Expect: ((a + (b*c)) == a) && (b < c)
	and, ok := ds.Init.(*BinaryExpr)
	if !ok || and.Op != "&&" {
		t.Fatalf("top = %#v", ds.Init)
	}
	eq, ok := and.X.(*BinaryExpr)
	if !ok || eq.Op != "==" {
		t.Fatalf("lhs = %#v", and.X)
	}
	add, ok := eq.X.(*BinaryExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("eq lhs = %#v", eq.X)
	}
	mul, ok := add.Y.(*BinaryExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("add rhs = %#v", add.Y)
	}
	lt, ok := and.Y.(*BinaryExpr)
	if !ok || lt.Op != "<" {
		t.Fatalf("rhs = %#v", and.Y)
	}
}

func TestParseCastVsParen(t *testing.T) {
	f, err := Parse(`
typedef int myint;
void f(int a) { int x = (myint) a; int y = (a) + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	fn := findFunc(t, f, "f")
	dx := fn.Body.List[0].(*DeclStmt)
	if _, ok := dx.Init.(*CastExpr); !ok {
		t.Errorf("(myint)a should be a cast, got %T", dx.Init)
	}
	dy := fn.Body.List[1].(*DeclStmt)
	if _, ok := dy.Init.(*BinaryExpr); !ok {
		t.Errorf("(a)+1 should be binary, got %T", dy.Init)
	}
}

func TestParseAtomicBlock(t *testing.T) {
	f, err := Parse(`
bool cas(unsigned *loc, unsigned old, unsigned new) {
    atomic {
        if (*loc == old) {
            *loc = new;
            return true;
        } else {
            return false;
        }
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	fn := findFunc(t, f, "cas")
	if _, ok := fn.Body.List[0].(*AtomicStmt); !ok {
		t.Fatalf("expected atomic stmt, got %T", fn.Body.List[0])
	}
}

func TestParseEnumAndDoWhile(t *testing.T) {
	f, err := Parse(`
typedef enum { free, held } lock_t;
void lock(lock_t *lock) {
    lock_t val;
    do {
        atomic { val = *lock; *lock = held; }
    } while (val != free);
}`)
	if err != nil {
		t.Fatal(err)
	}
	var enum *EnumDecl
	for _, d := range f.Flatten() {
		if e, ok := d.(*EnumDecl); ok {
			enum = e
		}
	}
	if enum == nil || len(enum.Names) != 2 || enum.Names[0] != "free" {
		t.Fatalf("enum = %+v", enum)
	}
	fn := findFunc(t, f, "lock")
	w, ok := fn.Body.List[1].(*WhileStmt)
	if !ok || !w.DoWhile {
		t.Fatalf("expected do-while, got %#v", fn.Body.List[1])
	}
}

func TestParseForAndArrays(t *testing.T) {
	f, err := Parse(`
int a[10];
void f() {
    int i;
    for (i = 0; i < 10; i = i + 1) {
        a[i] = i;
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	var g *VarDecl
	for _, d := range f.Flatten() {
		if v, ok := d.(*VarDecl); ok {
			g = v
		}
	}
	arr, ok := g.Type.(*ArrayType)
	if !ok || arr.Len != 10 {
		t.Fatalf("global type = %#v", g.Type)
	}
	fn := findFunc(t, f, "f")
	if _, ok := fn.Body.List[1].(*ForStmt); !ok {
		t.Fatalf("expected for, got %T", fn.Body.List[1])
	}
}

func TestParseTernaryAndUnary(t *testing.T) {
	f, err := Parse(`int f(int a, int b) { return a ? -a : !b; }`)
	if err != nil {
		t.Fatal(err)
	}
	fn := findFunc(t, f, "f")
	ret := fn.Body.List[0].(*ReturnStmt)
	c, ok := ret.X.(*CondExpr)
	if !ok {
		t.Fatalf("return expr = %T", ret.X)
	}
	if u, ok := c.Then.(*UnaryExpr); !ok || u.Op != "-" {
		t.Errorf("then = %#v", c.Then)
	}
	if u, ok := c.Else.(*UnaryExpr); !ok || u.Op != "!" {
		t.Errorf("else = %#v", c.Else)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"void f( {",
		"int ;;; = 3",
		"void f() { if (x { } }",
		"void f() { return 1 }",
		"struct;",
		"void f() { x = ; }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("Parse(%q) error type %T", src, err)
		}
	}
}

func TestParseIncDec(t *testing.T) {
	f, err := Parse(`void f(int i) { i++; ++i; i--; }`)
	if err != nil {
		t.Fatal(err)
	}
	fn := findFunc(t, f, "f")
	if len(fn.Body.List) != 3 {
		t.Fatalf("stmts = %d", len(fn.Body.List))
	}
	for i, s := range fn.Body.List {
		es := s.(*ExprStmt)
		if _, ok := es.X.(*IncDecExpr); !ok {
			t.Errorf("stmt %d = %T", i, es.X)
		}
	}
}

func TestParseSizeofIsOneSlot(t *testing.T) {
	f, err := Parse(`
typedef struct n { int v; } n_t;
extern void *malloc(int size);
void f() { void *p = malloc(sizeof(n_t)); }`)
	if err != nil {
		t.Fatal(err)
	}
	fn := findFunc(t, f, "f")
	ds := fn.Body.List[0].(*DeclStmt)
	call := ds.Init.(*CallExpr)
	lit, ok := call.Args[0].(*IntLit)
	if !ok || lit.Val != 1 {
		t.Errorf("sizeof arg = %#v", call.Args[0])
	}
}

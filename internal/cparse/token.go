// Package cparse implements a lexer and recursive-descent parser for
// the subset of C that the CheckFence study set uses. It replaces the
// CIL front-end of the paper's prototype.
//
// Supported: typedefs, struct and enum declarations, pointers,
// arrays, global and local variable declarations, extern function
// declarations, function definitions, if/while/do-while/for control
// flow, return/break/continue, assignment, the usual arithmetic,
// relational, and logical operators with short-circuit semantics,
// casts, address-of on globals, and the paper's extensions: an
// `atomic { ... }` statement (used to model compare-and-swap and
// locks, Figs. 6-7) and calls to the special functions fence(),
// assert(), assume(), new_node()/malloc(), and nondet().
package cparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokString
	TokKeyword
	TokPunct
)

// Token is a lexical token with source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"typedef": true, "struct": true, "enum": true, "union": true,
	"void": true, "int": true, "unsigned": true, "long": true,
	"char": true, "bool": true, "short": true, "signed": true,
	"if": true, "else": true, "while": true, "do": true, "for": true,
	"return": true, "break": true, "continue": true,
	"extern": true, "static": true, "const": true, "volatile": true,
	"true": true, "false": true, "atomic": true, "sizeof": true,
	"null": true, "NULL": true,
}

var punctuators = []string{
	// Longest first so maximal munch works.
	"->", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "++", "--",
	"<<", ">>",
	"{", "}", "(", ")", "[", "]", ";", ",", ".", "=", "<", ">", "+",
	"-", "*", "/", "%", "!", "&", "|", "^", "~", "?", ":",
}

// Lexer tokenizes C source.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over the given source.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Error is a positioned front-end error.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *Lexer) errf(format string, args ...interface{}) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance(2)
			for {
				if l.pos+1 >= len(l.src) {
					return l.errf("unterminated block comment")
				}
				if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
					l.advance(2)
					break
				}
				l.advance(1)
			}
		case c == '#':
			// Preprocessor lines are ignored (the study set uses none,
			// but headers may carry include guards).
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
	}
	start := l.pos
	line, col := l.line, l.col
	c := rune(l.src[l.pos])

	switch {
	case unicode.IsLetter(c) || c == '_':
		for l.pos < len(l.src) {
			r := rune(l.src[l.pos])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			l.advance(1)
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil

	case unicode.IsDigit(c):
		isHex := false
		if c == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
			isHex = true
			l.advance(2)
		}
		for l.pos < len(l.src) {
			r := rune(l.src[l.pos])
			if unicode.IsDigit(r) || (isHex && strings.ContainsRune("abcdefABCDEF", r)) {
				l.advance(1)
				continue
			}
			// Integer suffixes.
			if strings.ContainsRune("uUlL", r) {
				l.advance(1)
				continue
			}
			break
		}
		return Token{Kind: TokInt, Text: l.src[start:l.pos], Line: line, Col: col}, nil

	case c == '"':
		l.advance(1)
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errf("unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '"' {
				l.advance(1)
				break
			}
			if ch == '\\' && l.pos+1 < len(l.src) {
				l.advance(1)
				ch = l.src[l.pos]
			}
			sb.WriteByte(ch)
			l.advance(1)
		}
		return Token{Kind: TokString, Text: sb.String(), Line: line, Col: col}, nil
	}

	for _, p := range punctuators {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.advance(len(p))
			return Token{Kind: TokPunct, Text: p, Line: line, Col: col}, nil
		}
	}
	return Token{}, l.errf("unexpected character %q", c)
}

// Tokenize returns all tokens including the trailing EOF token.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

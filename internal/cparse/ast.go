package cparse

import "fmt"

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Type is a C type expression.
type Type interface{ isType() }

// BaseKind enumerates the builtin scalar types the subset supports.
// All integer flavors share one untyped LSL integer representation.
type BaseKind int

// Builtin scalar types.
const (
	Void BaseKind = iota
	Int
	Bool
	Char
)

// BaseType is a builtin scalar type.
type BaseType struct{ Kind BaseKind }

// PtrType is a pointer type.
type PtrType struct{ Elem Type }

// NamedType refers to a typedef name.
type NamedType struct{ Name string }

// StructRef refers to a struct by tag (`struct node`).
type StructRef struct{ Tag string }

// EnumRef refers to an enum by tag.
type EnumRef struct{ Tag string }

// ArrayType is a fixed-length array.
type ArrayType struct {
	Elem Type
	Len  int64
}

func (*BaseType) isType()  {}
func (*PtrType) isType()   {}
func (*NamedType) isType() {}
func (*StructRef) isType() {}
func (*EnumRef) isType()   {}
func (*ArrayType) isType() {}

// Field is a struct field.
type Field struct {
	Name string
	Type Type
}

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
}

// Decl is a top-level declaration.
type Decl interface{ isDecl() }

// TypedefDecl introduces a type alias; the aliased type may be an
// inline struct or enum definition.
type TypedefDecl struct {
	Pos  Pos
	Name string
	Type Type
}

// StructDecl defines a struct by tag.
type StructDecl struct {
	Pos    Pos
	Tag    string
	Fields []Field
}

// EnumDecl defines an enum; constants get ascending values from 0.
type EnumDecl struct {
	Pos   Pos
	Tag   string
	Names []string
}

// VarDecl declares a global variable.
type VarDecl struct {
	Pos  Pos
	Name string
	Type Type
}

// FuncDecl declares or defines a function. Body is nil for extern
// declarations.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    Type
	Params []Param
	Body   *BlockStmt
	Extern bool
}

func (*TypedefDecl) isDecl() {}
func (*StructDecl) isDecl()  {}
func (*EnumDecl) isDecl()    {}
func (*VarDecl) isDecl()     {}
func (*FuncDecl) isDecl()    {}

// File is a parsed translation unit.
type File struct {
	Decls []Decl
}

// Stmt is a statement.
type Stmt interface{ StmtPos() Pos }

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// DeclStmt declares local variables (one statement per declarator).
type DeclStmt struct {
	Pos  Pos
	Name string
	Type Type
	Init Expr // may be nil
}

// DeclGroup bundles the declarators of one declaration statement
// (`int *a, *b;`). Unlike BlockStmt it does not open a scope.
type DeclGroup struct {
	Pos  Pos
	List []*DeclStmt
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt covers while and do-while loops.
type WhileStmt struct {
	Pos     Pos
	Cond    Expr
	Body    Stmt
	DoWhile bool
}

// ForStmt is a for loop; Init/Cond/Post may be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// ReturnStmt returns from a function; X may be nil.
type ReturnStmt struct {
	Pos Pos
	X   Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt repeats the innermost loop.
type ContinueStmt struct{ Pos Pos }

// BlockStmt is a braced statement list.
type BlockStmt struct {
	Pos  Pos
	List []Stmt
}

// AtomicStmt is the paper's atomic block extension: its body executes
// in program order without interleaving from other threads.
type AtomicStmt struct {
	Pos  Pos
	Body *BlockStmt
}

// EmptyStmt is a stray semicolon.
type EmptyStmt struct{ Pos Pos }

func (s *ExprStmt) StmtPos() Pos     { return s.Pos }
func (s *DeclStmt) StmtPos() Pos     { return s.Pos }
func (s *DeclGroup) StmtPos() Pos    { return s.Pos }
func (s *IfStmt) StmtPos() Pos       { return s.Pos }
func (s *WhileStmt) StmtPos() Pos    { return s.Pos }
func (s *ForStmt) StmtPos() Pos      { return s.Pos }
func (s *ReturnStmt) StmtPos() Pos   { return s.Pos }
func (s *BreakStmt) StmtPos() Pos    { return s.Pos }
func (s *ContinueStmt) StmtPos() Pos { return s.Pos }
func (s *BlockStmt) StmtPos() Pos    { return s.Pos }
func (s *AtomicStmt) StmtPos() Pos   { return s.Pos }
func (s *EmptyStmt) StmtPos() Pos    { return s.Pos }

// Expr is an expression.
type Expr interface{ ExprPos() Pos }

// Ident is a name reference (variable, enum constant, or function).
type Ident struct {
	Pos  Pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// StringLit is a string literal (only used as fence() argument).
type StringLit struct {
	Pos Pos
	Val string
}

// BinaryExpr is a binary operation; Op is the source operator text.
// Logical && and || have short-circuit semantics.
type BinaryExpr struct {
	Pos  Pos
	Op   string
	X, Y Expr
}

// UnaryExpr is a prefix operation: one of ! - * & ~.
type UnaryExpr struct {
	Pos Pos
	Op  string
	X   Expr
}

// AssignExpr assigns Rhs to the lvalue Lhs. Op is "=", "+=", or "-=".
type AssignExpr struct {
	Pos Pos
	Op  string
	Lhs Expr
	Rhs Expr
}

// IncDecExpr is a postfix or prefix ++/--.
type IncDecExpr struct {
	Pos Pos
	Op  string // "++" or "--"
	X   Expr
}

// CallExpr calls a named function.
type CallExpr struct {
	Pos  Pos
	Fun  string
	Args []Expr
}

// MemberExpr accesses a struct field: X.Name or X->Name.
type MemberExpr struct {
	Pos   Pos
	X     Expr
	Name  string
	Arrow bool
}

// IndexExpr is array indexing X[Index].
type IndexExpr struct {
	Pos   Pos
	X     Expr
	Index Expr
}

// CastExpr is a C cast. Since LSL is untyped, the translator treats
// casts as the identity, but keeps them in the AST for fidelity.
type CastExpr struct {
	Pos  Pos
	Type Type
	X    Expr
}

// CondExpr is the ternary conditional.
type CondExpr struct {
	Pos        Pos
	Cond       Expr
	Then, Else Expr
}

func (e *Ident) ExprPos() Pos      { return e.Pos }
func (e *IntLit) ExprPos() Pos     { return e.Pos }
func (e *StringLit) ExprPos() Pos  { return e.Pos }
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }
func (e *UnaryExpr) ExprPos() Pos  { return e.Pos }
func (e *AssignExpr) ExprPos() Pos { return e.Pos }
func (e *IncDecExpr) ExprPos() Pos { return e.Pos }
func (e *CallExpr) ExprPos() Pos   { return e.Pos }
func (e *MemberExpr) ExprPos() Pos { return e.Pos }
func (e *IndexExpr) ExprPos() Pos  { return e.Pos }
func (e *CastExpr) ExprPos() Pos   { return e.Pos }
func (e *CondExpr) ExprPos() Pos   { return e.Pos }

package cparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser for the C subset.
type Parser struct {
	toks     []Token
	pos      int
	typedefs map[string]bool
	// anonCounter numbers anonymous struct/enum tags. Per-parser (not
	// package-level) so concurrent parses are race-free and a given
	// source always produces the same tags.
	anonCounter int
}

// Parse parses a translation unit.
func Parse(src string) (*File, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, typedefs: map[string]bool{}}
	file := &File{}
	for !p.at(TokEOF, "") {
		d, err := p.parseTopDecl()
		if err != nil {
			return nil, err
		}
		if d != nil {
			file.Decls = append(file.Decls, d)
		}
	}
	return file, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *Parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokKind, text string) (Token, error) {
	if !p.at(kind, text) {
		return Token{}, p.errf("expected %q, found %s", text, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) errf(format string, args ...interface{}) error {
	t := p.cur()
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) posOf(t Token) Pos { return Pos{Line: t.Line, Col: t.Col} }

// atTypeStart reports whether the current token begins a type.
func (p *Parser) atTypeStart() bool {
	t := p.cur()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "void", "int", "unsigned", "long", "char", "bool", "short",
			"signed", "struct", "enum", "const", "volatile":
			return true
		}
		return false
	}
	return t.Kind == TokIdent && p.typedefs[t.Text]
}

// parseTypeSpec parses a type specifier (without declarator stars).
// Inline struct/enum bodies produce auxiliary declarations appended to
// aux.
func (p *Parser) parseTypeSpec(aux *[]Decl) (Type, error) {
	// Skip qualifiers.
	for p.accept(TokKeyword, "const") || p.accept(TokKeyword, "volatile") ||
		p.accept(TokKeyword, "static") {
	}
	t := p.cur()
	switch {
	case p.accept(TokKeyword, "void"):
		return &BaseType{Kind: Void}, nil
	case p.accept(TokKeyword, "bool"):
		return &BaseType{Kind: Bool}, nil
	case p.accept(TokKeyword, "char"):
		return &BaseType{Kind: Char}, nil
	case t.Kind == TokKeyword && isIntKeyword(t.Text):
		for isIntKeyword(p.cur().Text) && p.cur().Kind == TokKeyword {
			p.next()
		}
		return &BaseType{Kind: Int}, nil
	case p.accept(TokKeyword, "struct"):
		return p.parseStructRef(aux)
	case p.accept(TokKeyword, "enum"):
		return p.parseEnumRef(aux)
	case t.Kind == TokIdent && p.typedefs[t.Text]:
		p.next()
		return &NamedType{Name: t.Text}, nil
	}
	return nil, p.errf("expected type, found %s", t)
}

func isIntKeyword(s string) bool {
	switch s {
	case "int", "unsigned", "long", "short", "signed":
		return true
	}
	return false
}

func (p *Parser) parseStructRef(aux *[]Decl) (Type, error) {
	tag := ""
	if p.at(TokIdent, "") {
		tag = p.next().Text
	}
	if p.accept(TokPunct, "{") {
		if tag == "" {
			p.anonCounter++
			tag = fmt.Sprintf("$anon%d", p.anonCounter)
		}
		var fields []Field
		for !p.accept(TokPunct, "}") {
			ft, err := p.parseTypeSpec(aux)
			if err != nil {
				return nil, err
			}
			for {
				typ := ft
				for p.accept(TokPunct, "*") {
					typ = &PtrType{Elem: typ}
				}
				nameTok, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				typ, err = p.parseArraySuffix(typ)
				if err != nil {
					return nil, err
				}
				fields = append(fields, Field{Name: nameTok.Text, Type: typ})
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return nil, err
			}
		}
		*aux = append(*aux, &StructDecl{Tag: tag, Fields: fields})
	}
	if tag == "" {
		return nil, p.errf("struct requires a tag or a body")
	}
	return &StructRef{Tag: tag}, nil
}

func (p *Parser) parseEnumRef(aux *[]Decl) (Type, error) {
	tag := ""
	if p.at(TokIdent, "") {
		tag = p.next().Text
	}
	if p.accept(TokPunct, "{") {
		if tag == "" {
			p.anonCounter++
			tag = fmt.Sprintf("$anonenum%d", p.anonCounter)
		}
		var names []string
		for !p.accept(TokPunct, "}") {
			nameTok, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			names = append(names, nameTok.Text)
			if !p.accept(TokPunct, ",") {
				if _, err := p.expect(TokPunct, "}"); err != nil {
					return nil, err
				}
				break
			}
		}
		*aux = append(*aux, &EnumDecl{Tag: tag, Names: names})
	}
	if tag == "" {
		return nil, p.errf("enum requires a tag or a body")
	}
	return &EnumRef{Tag: tag}, nil
}

func (p *Parser) parseArraySuffix(t Type) (Type, error) {
	for p.accept(TokPunct, "[") {
		numTok, err := p.expect(TokInt, "")
		if err != nil {
			return nil, err
		}
		n, err := parseIntLit(numTok.Text)
		if err != nil {
			return nil, p.errf("bad array length %q", numTok.Text)
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return nil, err
		}
		t = &ArrayType{Elem: t, Len: n}
	}
	return t, nil
}

func parseIntLit(s string) (int64, error) {
	s = strings.TrimRight(s, "uUlL")
	return strconv.ParseInt(s, 0, 64)
}

func (p *Parser) parseTopDecl() (Decl, error) {
	start := p.cur()
	extern := p.accept(TokKeyword, "extern")

	if p.accept(TokKeyword, "typedef") {
		var aux []Decl
		base, err := p.parseTypeSpec(&aux)
		if err != nil {
			return nil, err
		}
		typ := base
		for p.accept(TokPunct, "*") {
			typ = &PtrType{Elem: typ}
		}
		nameTok, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		typ, err = p.parseArraySuffix(typ)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		p.typedefs[nameTok.Text] = true
		td := &TypedefDecl{Pos: p.posOf(start), Name: nameTok.Text, Type: typ}
		return wrapAux(aux, td), nil
	}

	var aux []Decl
	base, err := p.parseTypeSpec(&aux)
	if err != nil {
		return nil, err
	}
	// Bare struct/enum definition: `struct node { ... };`
	if p.accept(TokPunct, ";") {
		return wrapAux(aux, nil), nil
	}

	typ := base
	for p.accept(TokPunct, "*") {
		typ = &PtrType{Elem: typ}
	}
	nameTok, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}

	if p.accept(TokPunct, "(") {
		params, err := p.parseParams()
		if err != nil {
			return nil, err
		}
		fd := &FuncDecl{
			Pos: p.posOf(start), Name: nameTok.Text, Ret: typ,
			Params: params, Extern: extern,
		}
		if p.accept(TokPunct, ";") {
			fd.Extern = true
			return wrapAux(aux, fd), nil
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		fd.Body = body
		return wrapAux(aux, fd), nil
	}

	// Global variable(s).
	var decls []Decl
	typ, err = p.parseArraySuffix(typ)
	if err != nil {
		return nil, err
	}
	decls = append(decls, &VarDecl{Pos: p.posOf(start), Name: nameTok.Text, Type: typ})
	for p.accept(TokPunct, ",") {
		t2 := base
		for p.accept(TokPunct, "*") {
			t2 = &PtrType{Elem: t2}
		}
		n2, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		t2, err = p.parseArraySuffix(t2)
		if err != nil {
			return nil, err
		}
		decls = append(decls, &VarDecl{Pos: p.posOf(n2), Name: n2.Text, Type: t2})
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return wrapAux(append(aux, decls...), nil), nil
}

// declGroup bundles several declarations produced by one syntactic
// construct (e.g. a typedef with an inline struct body).
type declGroup struct{ Decls []Decl }

func (*declGroup) isDecl() {}

func wrapAux(aux []Decl, main Decl) Decl {
	if main != nil {
		aux = append(aux, main)
	}
	if len(aux) == 1 {
		return aux[0]
	}
	return &declGroup{Decls: aux}
}

// Flatten expands declaration groups into a flat list.
func (f *File) Flatten() []Decl {
	var out []Decl
	var walk func(d Decl)
	walk = func(d Decl) {
		if g, ok := d.(*declGroup); ok {
			for _, dd := range g.Decls {
				walk(dd)
			}
			return
		}
		out = append(out, d)
	}
	for _, d := range f.Decls {
		walk(d)
	}
	return out
}

func (p *Parser) parseParams() ([]Param, error) {
	var params []Param
	if p.accept(TokPunct, ")") {
		return params, nil
	}
	if p.at(TokKeyword, "void") && p.toks[p.pos+1].Text == ")" {
		p.next()
		p.next()
		return params, nil
	}
	for {
		var aux []Decl
		base, err := p.parseTypeSpec(&aux)
		if err != nil {
			return nil, err
		}
		typ := base
		for p.accept(TokPunct, "*") {
			typ = &PtrType{Elem: typ}
		}
		name := ""
		if p.at(TokIdent, "") {
			name = p.next().Text
		}
		params = append(params, Param{Name: name, Type: typ})
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lbrace, err := p.expect(TokPunct, "{")
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: p.posOf(lbrace)}
	for !p.accept(TokPunct, "}") {
		if p.at(TokEOF, "") {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.List = append(blk.List, s)
	}
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	pos := p.posOf(t)
	switch {
	case p.at(TokPunct, "{"):
		return p.parseBlock()

	case p.accept(TokPunct, ";"):
		return &EmptyStmt{Pos: pos}, nil

	case p.accept(TokKeyword, "atomic"):
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &AtomicStmt{Pos: pos, Body: body}, nil

	case p.accept(TokKeyword, "if"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(TokKeyword, "else") {
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Pos: pos, Cond: cond, Then: then, Else: els}, nil

	case p.accept(TokKeyword, "while"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil

	case p.accept(TokKeyword, "do"):
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "while"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: pos, Cond: cond, Body: body, DoWhile: true}, nil

	case p.accept(TokKeyword, "for"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		var init Stmt
		if !p.accept(TokPunct, ";") {
			var err error
			init, err = p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return nil, err
			}
		}
		var cond Expr
		if !p.at(TokPunct, ";") {
			var err error
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		var post Expr
		if !p.at(TokPunct, ")") {
			var err error
			post, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Pos: pos, Init: init, Cond: cond, Post: post, Body: body}, nil

	case p.accept(TokKeyword, "return"):
		var x Expr
		if !p.at(TokPunct, ";") {
			var err error
			x, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: pos, X: x}, nil

	case p.accept(TokKeyword, "break"):
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: pos}, nil

	case p.accept(TokKeyword, "continue"):
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: pos}, nil
	}

	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return s, nil
}

// parseSimpleStmt parses a declaration or expression statement without
// the trailing semicolon (shared with for-loop initializers). Multiple
// declarators become a BlockStmt of DeclStmts.
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	pos := p.posOf(p.cur())
	if p.atTypeStart() {
		var aux []Decl
		base, err := p.parseTypeSpec(&aux)
		if err != nil {
			return nil, err
		}
		if len(aux) > 0 {
			return nil, p.errf("inline struct/enum definitions are not allowed in function bodies")
		}
		var decls []*DeclStmt
		for {
			typ := base
			for p.accept(TokPunct, "*") {
				typ = &PtrType{Elem: typ}
			}
			nameTok, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			typ, err = p.parseArraySuffix(typ)
			if err != nil {
				return nil, err
			}
			var init Expr
			if p.accept(TokPunct, "=") {
				init, err = p.parseAssign()
				if err != nil {
					return nil, err
				}
			}
			decls = append(decls, &DeclStmt{
				Pos: p.posOf(nameTok), Name: nameTok.Text, Type: typ, Init: init,
			})
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if len(decls) == 1 {
			return decls[0], nil
		}
		return &DeclGroup{Pos: pos, List: decls}, nil
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: pos, X: x}, nil
}

// Expression parsing: precedence climbing.

func (p *Parser) parseExpr() (Expr, error) { return p.parseAssign() }

func (p *Parser) parseAssign() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-="} {
		if p.at(TokPunct, op) {
			opTok := p.next()
			rhs, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			return &AssignExpr{Pos: p.posOf(opTok), Op: op, Lhs: lhs, Rhs: rhs}, nil
		}
	}
	return lhs, nil
}

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.at(TokPunct, "?") {
		return cond, nil
	}
	qTok := p.next()
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ":"); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Pos: p.posOf(qTok), Cond: cond, Then: then, Else: els}, nil
}

var binaryLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *Parser) parseBinary(level int) (Expr, error) {
	if level >= len(binaryLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range binaryLevels[level] {
			if p.at(TokPunct, op) {
				opTok := p.next()
				y, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				x = &BinaryExpr{Pos: p.posOf(opTok), Op: op, X: x, Y: y}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	pos := p.posOf(t)
	for _, op := range []string{"!", "-", "*", "&", "~"} {
		if p.at(TokPunct, op) {
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Pos: pos, Op: op, X: x}, nil
		}
	}
	if p.at(TokPunct, "++") || p.at(TokPunct, "--") {
		opTok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &IncDecExpr{Pos: p.posOf(opTok), Op: opTok.Text, X: x}, nil
	}
	// Cast: '(' type ')' unary.
	if p.at(TokPunct, "(") {
		save := p.pos
		p.next()
		if p.atTypeStart() {
			var aux []Decl
			typ, err := p.parseTypeSpec(&aux)
			if err == nil && len(aux) == 0 {
				for p.accept(TokPunct, "*") {
					typ = &PtrType{Elem: typ}
				}
				if p.accept(TokPunct, ")") {
					x, err := p.parseUnary()
					if err != nil {
						return nil, err
					}
					return &CastExpr{Pos: pos, Type: typ, X: x}, nil
				}
			}
		}
		p.pos = save
	}
	if p.accept(TokKeyword, "sizeof") {
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		var aux []Decl
		if _, err := p.parseTypeSpec(&aux); err != nil {
			return nil, err
		}
		for p.accept(TokPunct, "*") {
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		// Allocation is object-granular in LSL; sizeof is 1 slot.
		return &IntLit{Pos: pos, Val: 1}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		pos := p.posOf(t)
		switch {
		case p.accept(TokPunct, "->"):
			nameTok, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			x = &MemberExpr{Pos: pos, X: x, Name: nameTok.Text, Arrow: true}
		case p.accept(TokPunct, "."):
			nameTok, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			x = &MemberExpr{Pos: pos, X: x, Name: nameTok.Text}
		case p.accept(TokPunct, "["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{Pos: pos, X: x, Index: idx}
		case p.at(TokPunct, "++") || p.at(TokPunct, "--"):
			opTok := p.next()
			x = &IncDecExpr{Pos: p.posOf(opTok), Op: opTok.Text, X: x}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	pos := p.posOf(t)
	switch {
	case t.Kind == TokInt:
		p.next()
		v, err := parseIntLit(t.Text)
		if err != nil {
			return nil, p.errf("bad integer literal %q", t.Text)
		}
		return &IntLit{Pos: pos, Val: v}, nil

	case t.Kind == TokString:
		p.next()
		return &StringLit{Pos: pos, Val: t.Text}, nil

	case p.accept(TokKeyword, "true"):
		return &IntLit{Pos: pos, Val: 1}, nil
	case p.accept(TokKeyword, "false"):
		return &IntLit{Pos: pos, Val: 0}, nil
	case p.accept(TokKeyword, "null") || p.accept(TokKeyword, "NULL"):
		return &IntLit{Pos: pos, Val: 0}, nil

	case t.Kind == TokIdent:
		p.next()
		if p.accept(TokPunct, "(") {
			var args []Expr
			if !p.accept(TokPunct, ")") {
				for {
					a, err := p.parseAssign()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(TokPunct, ",") {
						break
					}
				}
				if _, err := p.expect(TokPunct, ")"); err != nil {
					return nil, err
				}
			}
			return &CallExpr{Pos: pos, Fun: t.Text, Args: args}, nil
		}
		return &Ident{Pos: pos, Name: t.Text}, nil

	case p.accept(TokPunct, "("):
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("unexpected token %s in expression", t)
}

package harness

import (
	"fmt"

	"checkfence/internal/cparse"
	"checkfence/internal/ctrans"
	"checkfence/internal/encode"
	"checkfence/internal/lsl"
	"checkfence/internal/spec"
	"checkfence/internal/unroll"
)

// Built is a fully assembled verification problem before unrolling.
type Built struct {
	Impl *Impl
	Test *Test
	Unit *ctrans.Unit

	// Threads[0] is the initialization pseudo-thread (init function
	// call plus the test's serial initialization operations).
	Threads []ThreadSpec
	// Entries lists the observed argument/return registers in
	// canonical order (post-unrolling names).
	Entries []spec.Entry
	// CellNames maps out-parameter cell base addresses to labels for
	// trace rendering.
	CellNames map[int64]string
	// ObsOps maps each operation invocation to its observation entry
	// indices (the commit-point method needs per-operation values).
	ObsOps []ObsOp
}

// ObsOp locates one operation invocation's observed values within
// Built.Entries. Indices are -1 when absent.
type ObsOp struct {
	Thread   int
	Seg      int
	Mnemonic string
	NoRetry  bool
	ArgIdx   int
	RetIdx   int
	OutIdx   int
}

// ThreadSpec is one thread as operation segments of LSL code (calls
// not yet inlined, loops not yet unrolled).
type ThreadSpec struct {
	Name     string
	Segments [][]lsl.Stmt
}

// segName is the unroller prefix for a segment; observation entry
// registers use it.
func segName(thread, seg int) string { return fmt.Sprintf("t%d.s%d", thread, seg) }

// Build parses and translates the implementation and constructs the
// harness threads for the test.
func Build(impl *Impl, test *Test) (*Built, error) {
	file, err := cparse.Parse(impl.Source)
	if err != nil {
		return nil, fmt.Errorf("harness: parse %s: %w", impl.Name, err)
	}
	unit, err := ctrans.Translate(file)
	if err != nil {
		return nil, fmt.Errorf("harness: translate %s: %w", impl.Name, err)
	}
	obj, ok := unit.Prog.GlobalByName(impl.Obj)
	if !ok {
		return nil, fmt.Errorf("harness: %s: global object %q not found", impl.Name, impl.Obj)
	}

	b := &Built{Impl: impl, Test: test, Unit: unit, CellNames: map[int64]string{}}

	// Initialization thread: the init function, then the test's
	// serial initialization operations.
	initSegs := [][]lsl.Stmt{{
		&lsl.ConstStmt{Dst: "obj", Val: lsl.Ptr(obj.Base)},
		&lsl.CallStmt{Proc: impl.InitFunc, Args: []lsl.Reg{"obj"}},
	}}
	initThread := ThreadSpec{Name: "init", Segments: initSegs}
	for k, inv := range test.Init {
		seg, err := b.addInvocation(0, k+1, inv, obj.Base)
		if err != nil {
			return nil, err
		}
		initThread.Segments = append(initThread.Segments, seg)
	}
	b.Threads = append(b.Threads, initThread)

	for ti, ops := range test.Threads {
		th := ThreadSpec{Name: fmt.Sprintf("thread%d", ti+1)}
		for k, inv := range ops {
			seg, err := b.addInvocation(ti+1, k, inv, obj.Base)
			if err != nil {
				return nil, err
			}
			th.Segments = append(th.Segments, seg)
		}
		b.Threads = append(b.Threads, th)
	}
	return b, nil
}

// addInvocation builds one invocation and records its observation
// metadata.
func (b *Built) addInvocation(thread, seg int, inv Invocation, objBase int64) ([]lsl.Stmt, error) {
	op, ok := b.Impl.OpByMnemonic(inv.Op)
	if !ok {
		return nil, fmt.Errorf("harness: %s has no operation %q", b.Impl.Name, inv.Op)
	}
	stmts, entries, err := b.buildInvocation(thread, seg, inv, objBase)
	if err != nil {
		return nil, err
	}
	oo := ObsOp{Thread: thread, Seg: seg, Mnemonic: inv.Op, NoRetry: inv.NoRetry,
		ArgIdx: -1, RetIdx: -1, OutIdx: -1}
	next := len(b.Entries)
	if op.NumArgs > 0 {
		oo.ArgIdx = next
		next += op.NumArgs
	}
	if op.HasRet {
		oo.RetIdx = next
		next++
	}
	if op.HasOut {
		oo.OutIdx = next
		next++
	}
	b.Entries = append(b.Entries, entries...)
	b.ObsOps = append(b.ObsOps, oo)
	return stmts, nil
}

// buildInvocation emits the LSL statements for one operation call:
// nondeterministic arguments, the call itself, and observation of the
// return value and out-parameter.
func (b *Built) buildInvocation(thread, seg int, inv Invocation, objBase int64) ([]lsl.Stmt, []spec.Entry, error) {
	op, ok := b.Impl.OpByMnemonic(inv.Op)
	if !ok {
		return nil, nil, fmt.Errorf("harness: %s has no operation %q", b.Impl.Name, inv.Op)
	}
	prefix := segName(thread, seg)
	label := func(suffix string) string {
		return fmt.Sprintf("t%d.%s%d.%s", thread, op.Mnemonic, seg, suffix)
	}
	post := func(r lsl.Reg) lsl.Reg { return lsl.Reg(prefix + "/" + string(r)) }

	var stmts []lsl.Stmt
	var entries []spec.Entry

	stmts = append(stmts, &lsl.ConstStmt{Dst: "obj", Val: lsl.Ptr(objBase)})
	callArgs := []lsl.Reg{"obj"}

	for a := 0; a < op.NumArgs; a++ {
		reg := lsl.Reg(fmt.Sprintf("arg%d", a))
		stmts = append(stmts, &lsl.HavocStmt{Dst: reg, Bits: 1})
		callArgs = append(callArgs, reg)
		entries = append(entries, spec.Entry{
			Label: label(fmt.Sprintf("arg%d", a)), Thread: thread, Reg: post(reg),
		})
	}

	var cellReg lsl.Reg
	if op.HasOut {
		cell := b.Unit.Prog.AddGlobal(fmt.Sprintf("out.%s", prefix), 1)
		b.CellNames[cell.Base] = label("cell")
		cellReg = "outp"
		stmts = append(stmts, &lsl.ConstStmt{Dst: cellReg, Val: lsl.Ptr(cell.Base)})
		callArgs = append(callArgs, cellReg)
	}

	call := &lsl.CallStmt{Proc: op.Func, Args: callArgs, NoRetry: inv.NoRetry}
	if op.HasRet {
		call.Rets = []lsl.Reg{"ret"}
	}
	stmts = append(stmts, call)

	if op.HasRet {
		entries = append(entries, spec.Entry{Label: label("ret"), Thread: thread, Reg: post("ret")})
	}
	if op.HasOut {
		// Observe the out-parameter cell, but only when the operation
		// reported success: *pvalue is unspecified otherwise, so it is
		// masked to undefined (register "undef" is never assigned).
		stmts = append(stmts,
			&lsl.LoadStmt{Dst: "outraw", Addr: cellReg},
			&lsl.OpStmt{Dst: "out", Op: lsl.OpSelect,
				Args: []lsl.Reg{"ret", "outraw", "undef"}})
		entries = append(entries, spec.Entry{Label: label("out"), Thread: thread, Reg: post("out")})
	}
	return stmts, entries, nil
}

// Unrolled is the loop-free, call-free form ready for encoding.
type Unrolled struct {
	Threads []encode.Thread
	Loops   []unroll.LoopInfo
	Allocs  map[int64]string
	Bodies  [][]lsl.Stmt // all segments flattened, for the range analysis

	Instrs int
	Loads  int
	Stores int
}

// Unroll expands every thread with the given loop-instance bounds.
func (b *Built) Unroll(bounds map[string]int) (*Unrolled, error) {
	u := unroll.New(b.Unit.Prog, unroll.Options{Bounds: bounds})
	out := &Unrolled{Allocs: map[int64]string{}}
	for ti, th := range b.Threads {
		et := encode.Thread{Name: th.Name}
		for si, seg := range th.Segments {
			res, err := u.Expand(seg, segName(ti, si))
			if err != nil {
				return nil, fmt.Errorf("harness: unroll %s seg %d: %w", th.Name, si, err)
			}
			et.Segments = append(et.Segments, res.Body)
			et.OpIDs = append(et.OpIDs, si)
			out.Loops = append(out.Loops, res.Loops...)
			for base, site := range res.Allocs {
				out.Allocs[base] = site
			}
			out.Bodies = append(out.Bodies, res.Body)
			out.Instrs += lsl.CountStmts(res.Body)
			l, s := lsl.CountAccesses(res.Body)
			out.Loads += l
			out.Stores += s
		}
		out.Threads = append(out.Threads, et)
	}
	return out, nil
}

// LoopKey resolves a loop id of this unrolling to its stable key.
func (u *Unrolled) LoopKey(id int) (string, bool) {
	for _, li := range u.Loops {
		if li.ID == id {
			return li.Key, true
		}
	}
	return "", false
}

// BoundFor returns the bound used for a loop id in this unrolling.
func (u *Unrolled) BoundFor(id int) int {
	for _, li := range u.Loops {
		if li.ID == id {
			return li.Bound
		}
	}
	return 1
}

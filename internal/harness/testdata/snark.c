/*
 * snark: the DCAS-based non-blocking double-ended queue of Detlefs,
 * Flood, Garthwaite, Martin, Shavit, Steele (DISC'00), as studied in
 * the paper [8, 10].
 *
 * The deque is a doubly-linked list addressed by two hat pointers
 * (LeftHat, RightHat). A node is off the deque when its outward
 * pointer points to itself; Dummy is a permanently-dead node the hats
 * point at when the deque is empty. Pushes splice a node in with a
 * DCAS on the hat and the neighbor's link; pops move the hat inward
 * with a DCAS that simultaneously makes the popped node self-pointing.
 *
 * This is a reconstruction of the published pseudocode (the paper's
 * study set), *including its known bugs*: the algorithm as published
 * is incorrect [10, 26] — e.g. two pops racing on an almost-empty
 * deque can return the same element. CheckFence is expected to find
 * observation-set violations on the deque tests (paper §4.1).
 */

typedef int value_t;

typedef struct node {
    struct node *L;
    struct node *R;
    value_t V;
} node_t;

typedef struct deque {
    node_t *LeftHat;
    node_t *RightHat;
    node_t *Dummy;
} deque_t;

extern void fence(char *type);
extern bool dcas(unsigned *loc1, unsigned *loc2,
                 unsigned old1, unsigned old2,
                 unsigned new1, unsigned new2);
extern node_t *new_node();

deque_t dq;

void init_deque(deque_t *d)
{
    node_t *dummy = new_node();
    dummy->L = dummy;
    dummy->R = dummy;
    d->Dummy = dummy;
    fence("store-store");
    d->LeftHat = dummy;
    d->RightHat = dummy;
}

void pushRight(deque_t *d, value_t v)
{
    node_t *nd, *rh, *rhR, *lh;
    nd = new_node();
    nd->R = d->Dummy;
    nd->V = v;
    fence("store-store");
    while (true) {
        rh = d->RightHat;
        fence("load-load");
        rhR = rh->R;
        fence("load-load");
        if (rhR == rh) {
            /* right sentinel is dead: deque is empty */
            nd->L = d->Dummy;
            fence("store-store");
            lh = d->LeftHat;
            if (dcas(&d->RightHat, &d->LeftHat,
                     (unsigned) rh, (unsigned) lh,
                     (unsigned) nd, (unsigned) nd))
                return;
        } else {
            nd->L = rh;
            fence("store-store");
            if (dcas(&d->RightHat, &rh->R,
                     (unsigned) rh, (unsigned) rhR,
                     (unsigned) nd, (unsigned) nd))
                return;
        }
    }
}

void pushLeft(deque_t *d, value_t v)
{
    node_t *nd, *lh, *lhL, *rh;
    nd = new_node();
    nd->L = d->Dummy;
    nd->V = v;
    fence("store-store");
    while (true) {
        lh = d->LeftHat;
        fence("load-load");
        lhL = lh->L;
        fence("load-load");
        if (lhL == lh) {
            nd->R = d->Dummy;
            fence("store-store");
            rh = d->RightHat;
            if (dcas(&d->LeftHat, &d->RightHat,
                     (unsigned) lh, (unsigned) rh,
                     (unsigned) nd, (unsigned) nd))
                return;
        } else {
            nd->R = lh;
            fence("store-store");
            if (dcas(&d->LeftHat, &lh->L,
                     (unsigned) lh, (unsigned) lhL,
                     (unsigned) nd, (unsigned) nd))
                return;
        }
    }
}

bool popRight(deque_t *d, value_t *pvalue)
{
    node_t *rh, *lh, *rhL;
    while (true) {
        rh = d->RightHat;
        fence("load-load");
        lh = d->LeftHat;
        fence("load-load");
        if (rh->R == rh)
            return false; /* empty */
        if (rh == lh) {
            /* single node: retire it and point both hats at Dummy */
            if (dcas(&d->RightHat, &d->LeftHat,
                     (unsigned) rh, (unsigned) lh,
                     (unsigned) d->Dummy, (unsigned) d->Dummy)) {
                fence("load-load");
                *pvalue = rh->V;
                return true;
            }
        } else {
            rhL = rh->L;
            fence("load-load");
            /* move the hat inward and make rh self-pointing */
            if (dcas(&d->RightHat, &rh->L,
                     (unsigned) rh, (unsigned) rhL,
                     (unsigned) rhL, (unsigned) rh)) {
                fence("load-load");
                *pvalue = rh->V;
                return true;
            }
        }
    }
}

bool popLeft(deque_t *d, value_t *pvalue)
{
    node_t *lh, *rh, *lhR;
    while (true) {
        lh = d->LeftHat;
        fence("load-load");
        rh = d->RightHat;
        fence("load-load");
        if (lh->L == lh)
            return false; /* empty */
        if (lh == rh) {
            if (dcas(&d->LeftHat, &d->RightHat,
                     (unsigned) lh, (unsigned) rh,
                     (unsigned) d->Dummy, (unsigned) d->Dummy)) {
                fence("load-load");
                *pvalue = lh->V;
                return true;
            }
        } else {
            lhR = lh->R;
            fence("load-load");
            if (dcas(&d->LeftHat, &lh->R,
                     (unsigned) lh, (unsigned) lhR,
                     (unsigned) lhR, (unsigned) lh)) {
                fence("load-load");
                *pvalue = lh->V;
                return true;
            }
        }
    }
}

/*
 * Synchronization primitives, modeled as in the paper.
 *
 * cas (Fig. 6) and dcas are atomic blocks: their bodies execute in
 * program order and never interleave with other threads. Neither
 * implies any memory ordering fence, matching real hardware where
 * CAS instructions to different addresses may be reordered (paper
 * §4.3 "Reordering of CAS operations").
 *
 * lock/unlock follow Fig. 7 (SPARC v9 spin lock with partial fences).
 * The unbounded spin loop is replaced by the paper's reduction for
 * side-effect-free spin loops: one visible iteration plus the
 * assumption that it succeeds (failed iterations write `held` over
 * `held`, which no other thread can observe).
 */

typedef enum { free, held } lock_t;

extern void fence(char *type);
extern void assert(int cond);
extern void assume(int cond);

bool cas(unsigned *loc, unsigned old, unsigned new) {
    atomic {
        if (*loc == old) {
            *loc = new;
            return true;
        } else {
            return false;
        }
    }
}

bool dcas(unsigned *loc1, unsigned *loc2,
          unsigned old1, unsigned old2,
          unsigned new1, unsigned new2) {
    atomic {
        if (*loc1 == old1) {
            if (*loc2 == old2) {
                *loc1 = new1;
                *loc2 = new2;
                return true;
            } else {
                return false;
            }
        } else {
            return false;
        }
    }
}

void lock(lock_t *lock) {
    lock_t val;
    /* spin loop reduced: atomic test-and-set, assumed to succeed */
    atomic {
        val = *lock;
        *lock = held;
    }
    assume(val == free);
    fence("load-load");
    fence("load-store");
}

void unlock(lock_t *lock) {
    fence("load-store");
    fence("store-store");
    atomic {
        assert(*lock == held);
        *lock = free;
    }
}

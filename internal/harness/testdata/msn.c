/*
 * msn: the non-blocking concurrent queue of Michael and Scott
 * (PODC'96), with the memory ordering fences of the paper's Fig. 9.
 * The counter that the original pairs with each pointer is omitted,
 * exactly as in the paper ("it is not required in all contexts").
 *
 * Fence inventory (paper §4.3):
 *   enqueue line "store-store" #1: node initialization before linking
 *   enqueue "load-load" #1/#2:     tail/next/tail load sequence
 *   enqueue "store-store" #2:      link before tail advance (CAS order)
 *   dequeue "load-load" #1-#3:     head/tail/next/head load sequence
 */

typedef int value_t;

typedef struct node {
    struct node *next;
    value_t value;
} node_t;

typedef struct queue {
    node_t *head;
    node_t *tail;
} queue_t;

extern void assert(int cond);
extern void fence(char *type);
extern bool cas(unsigned *loc, unsigned old, unsigned new);
extern node_t *new_node();
extern void delete_node(node_t *node);

queue_t q;

void init_queue(queue_t *queue)
{
    node_t *node = new_node();
    node->next = 0;
    queue->head = queue->tail = node;
}

void enqueue(queue_t *queue, value_t value)
{
    node_t *node, *tail, *next;
    node = new_node();
    node->value = value;
    node->next = 0;
    fence("store-store");
    while (true) {
        tail = queue->tail;
        fence("load-load");
        next = tail->next;
        fence("load-load");
        if (tail == queue->tail)
            if (next == 0) {
                if (cas(&tail->next,
                        (unsigned) next, (unsigned) node))
                    break;
            } else
                cas(&queue->tail,
                    (unsigned) tail, (unsigned) next);
    }
    fence("store-store");
    cas(&queue->tail,
        (unsigned) tail, (unsigned) node);
}

bool dequeue(queue_t *queue, value_t *pvalue)
{
    node_t *head, *tail, *next;
    while (true) {
        head = queue->head;
        fence("load-load");
        tail = queue->tail;
        fence("load-load");
        next = head->next;
        fence("load-load");
        if (head == queue->head) {
            if (head == tail) {
                if (next == 0)
                    return false;
                cas(&queue->tail,
                    (unsigned) tail, (unsigned) next);
            } else {
                *pvalue = next->value;
                if (cas(&queue->head,
                        (unsigned) head, (unsigned) next))
                    break;
            }
        }
    }
    delete_node(head);
    return true;
}

/*
 * msn_commit: the Michael-Scott non-blocking queue (same fences as
 * msn.c) annotated with commit points for the commit-point baseline
 * method of the paper's earlier case study [4], used by the Fig. 12
 * method comparison.
 *
 * Annotations:
 *   - enqueue commits when its CAS links the node (cas_commit on
 *     tail->next);
 *   - dequeue commits when its CAS advances the head (cas_commit on
 *     queue->head), or, for the empty case, when it reads
 *     head->next == 0 (the atomic load+commit block).
 *
 * A commit() is a store to the private __commit cell; executed inside
 * the atomic block of the deciding access, its memory-order position
 * is the operation's serialization point. The last executed commit of
 * an operation wins, so the per-iteration empty-probe commits are
 * overridden when a later CAS commits the operation.
 */

typedef int value_t;

typedef struct node {
    struct node *next;
    value_t value;
} node_t;

typedef struct queue {
    node_t *head;
    node_t *tail;
} queue_t;

extern void assert(int cond);
extern void fence(char *type);
extern void commit();
extern node_t *new_node();
extern void delete_node(node_t *node);

queue_t q;

bool cas(unsigned *loc, unsigned old, unsigned new) {
    atomic {
        if (*loc == old) {
            *loc = new;
            return true;
        } else {
            return false;
        }
    }
}

bool cas_commit(unsigned *loc, unsigned old, unsigned new) {
    atomic {
        if (*loc == old) {
            *loc = new;
            commit();
            return true;
        } else {
            return false;
        }
    }
}

void init_queue(queue_t *queue)
{
    node_t *node = new_node();
    node->next = 0;
    queue->head = queue->tail = node;
}

void enqueue(queue_t *queue, value_t value)
{
    node_t *node, *tail, *next;
    node = new_node();
    node->value = value;
    node->next = 0;
    fence("store-store");
    while (true) {
        tail = queue->tail;
        fence("load-load");
        next = tail->next;
        fence("load-load");
        if (tail == queue->tail)
            if (next == 0) {
                if (cas_commit(&tail->next,
                               (unsigned) next, (unsigned) node))
                    break;
            } else
                cas(&queue->tail,
                    (unsigned) tail, (unsigned) next);
    }
    fence("store-store");
    cas(&queue->tail,
        (unsigned) tail, (unsigned) node);
}

bool dequeue(queue_t *queue, value_t *pvalue)
{
    node_t *head, *tail, *next;
    while (true) {
        head = queue->head;
        fence("load-load");
        tail = queue->tail;
        fence("load-load");
        atomic {
            next = head->next;
            commit();
        }
        fence("load-load");
        if (head == queue->head) {
            if (head == tail) {
                if (next == 0)
                    return false;
                cas(&queue->tail,
                    (unsigned) tail, (unsigned) next);
            } else {
                *pvalue = next->value;
                if (cas_commit(&queue->head,
                               (unsigned) head, (unsigned) next))
                    break;
            }
        }
    }
    delete_node(head);
    return true;
}

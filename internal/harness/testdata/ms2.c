/*
 * ms2: the two-lock concurrent queue of Michael and Scott (PODC'96).
 * The queue is a linked list with a dummy head node and independent
 * head and tail locks, so one enqueuer and one dequeuer can run
 * concurrently.
 *
 * Because enqueuers and dequeuers take *different* locks, the only
 * synchronization between them is the linked-list structure itself.
 * On relaxed models this needs the same fences as the lock-free
 * algorithms: a store-store fence between node initialization and
 * linking (enqueue) and a load-load fence between reading the link
 * and reading through it (dequeue, the dependent-load reordering of
 * paper §4.3).
 */

typedef int value_t;

typedef enum { free, held } lock_t;

typedef struct node {
    struct node *next;
    value_t value;
} node_t;

typedef struct queue {
    node_t *head;
    node_t *tail;
    lock_t headlock;
    lock_t taillock;
} queue_t;

extern void fence(char *type);
extern void lock(lock_t *lock);
extern void unlock(lock_t *lock);
extern node_t *new_node();
extern void delete_node(node_t *node);

queue_t q;

void init_queue(queue_t *queue)
{
    node_t *node = new_node();
    node->next = 0;
    queue->head = queue->tail = node;
    queue->headlock = free;
    queue->taillock = free;
}

void enqueue(queue_t *queue, value_t value)
{
    node_t *node = new_node();
    node->value = value;
    node->next = 0;
    fence("store-store");
    lock(&queue->taillock);
    queue->tail->next = node;
    queue->tail = node;
    unlock(&queue->taillock);
}

bool dequeue(queue_t *queue, value_t *pvalue)
{
    lock(&queue->headlock);
    node_t *node = queue->head;
    fence("load-load");
    node_t *new_head = node->next;
    if (new_head == 0) {
        unlock(&queue->headlock);
        return false;
    }
    fence("load-load");
    *pvalue = new_head->value;
    queue->head = new_head;
    unlock(&queue->headlock);
    delete_node(node);
    return true;
}

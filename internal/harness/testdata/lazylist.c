/*
 * lazylist: the lazy concurrent list-based set of Heller, Herlihy,
 * Luchangco, Moir, Scherer, Shavit (OPODIS'05), as studied in the
 * paper [6, 18].
 *
 * The set is a sorted linked list between two sentinel nodes. add and
 * remove lock the two affected nodes and validate; removal is done
 * lazily (logical 'marked' flag first, then physical unlink).
 * contains is wait-free and lock-free: it traverses without locking
 * and checks the marked flag.
 *
 * The paper found a not-previously-known bug here: the *published*
 * pseudocode fails to initialize the 'marked' field of a new node.
 * This file contains the corrected line (n->marked = 0); the harness
 * derives the buggy variant by removing the line marked BUG below.
 *
 * Keys are restricted to {0,1} by the symbolic tests; the sentinels
 * use -1 and 2.
 */

typedef enum { free, held } lock_t;

typedef struct node {
    int key;
    struct node *next;
    int marked;
    lock_t lock;
} node_t;

typedef struct list {
    struct node *head;
} list_t;

extern void fence(char *type);
extern void lock(lock_t *l);
extern void unlock(lock_t *l);
extern node_t *new_node();

list_t set;

void init_set(list_t *l)
{
    node_t *tailn = new_node();
    tailn->key = 2;
    tailn->next = 0;
    tailn->marked = 0;
    tailn->lock = free;
    node_t *headn = new_node();
    headn->key = -1;
    headn->next = tailn;
    headn->marked = 0;
    headn->lock = free;
    l->head = headn;
}

bool add(list_t *l, int key)
{
    while (true) {
        node_t *pred = l->head;
        fence("load-load");
        node_t *curr = pred->next;
        fence("load-load");
        while (curr->key < key) {
            pred = curr;
            curr = curr->next;
            fence("load-load");
        }
        lock(&pred->lock);
        lock(&curr->lock);
        if (!pred->marked && !curr->marked && pred->next == curr) {
            if (curr->key == key) {
                unlock(&curr->lock);
                unlock(&pred->lock);
                return false;
            } else {
                node_t *n = new_node();
                n->key = key;
                n->next = curr;
                n->lock = free;
                n->marked = 0;  /* BUG: missing in the published pseudocode */
                fence("store-store");
                pred->next = n;
                unlock(&curr->lock);
                unlock(&pred->lock);
                return true;
            }
        }
        unlock(&curr->lock);
        unlock(&pred->lock);
    }
}

bool remove(list_t *l, int key)
{
    while (true) {
        node_t *pred = l->head;
        fence("load-load");
        node_t *curr = pred->next;
        fence("load-load");
        while (curr->key < key) {
            pred = curr;
            curr = curr->next;
            fence("load-load");
        }
        lock(&pred->lock);
        lock(&curr->lock);
        if (!pred->marked && !curr->marked && pred->next == curr) {
            if (curr->key != key) {
                unlock(&curr->lock);
                unlock(&pred->lock);
                return false;
            } else {
                curr->marked = 1;
                fence("store-store");
                pred->next = curr->next;
                unlock(&curr->lock);
                unlock(&pred->lock);
                return true;
            }
        }
        unlock(&curr->lock);
        unlock(&pred->lock);
    }
}

bool contains(list_t *l, int key)
{
    node_t *curr = l->head;
    fence("load-load");
    while (curr->key < key) {
        curr = curr->next;
        fence("load-load");
    }
    if (curr->key == key) {
        if (!curr->marked)
            return true;
        return false;
    }
    return false;
}

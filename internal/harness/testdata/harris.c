/*
 * harris: the non-blocking sorted-list set of Harris (DISC'01), as
 * studied in the paper [16]. Deletion first *marks* a node's next
 * pointer (logical removal) and then snips it out with a CAS;
 * traversals help by physically removing marked nodes they pass.
 *
 * Harris packs the mark bit into the next pointer's low bit. Here the
 * (next, marked) pair is a packed structure accessed atomically — the
 * modeling technique for packed words the paper describes in
 * footnote 1: the pair read and the pair CAS (cas_next) are atomic
 * blocks, which gives exactly single-word-CAS semantics without
 * pointer bit-stealing. cas_next implies no ordering fences, like
 * cas.
 *
 * Keys are restricted to {0,1} by the symbolic tests; the sentinels
 * use -1 and 2.
 */

typedef struct node {
    int key;
    struct node *next;
    int marked;
} node_t;

typedef struct list {
    struct node *head;
} list_t;

extern void fence(char *type);
extern node_t *new_node();
extern void delete_node(node_t *n);

list_t set;

/* Atomic compare-and-swap on the packed (next, marked) word. */
bool cas_next(node_t *p, node_t *expNext, int expMark,
              node_t *newNext, int newMark)
{
    atomic {
        if (p->next == expNext) {
            if (p->marked == expMark) {
                p->next = newNext;
                p->marked = newMark;
                return true;
            } else {
                return false;
            }
        } else {
            return false;
        }
    }
}

void init_set(list_t *l)
{
    node_t *tailn = new_node();
    tailn->key = 2;
    tailn->next = 0;
    tailn->marked = 0;
    node_t *headn = new_node();
    headn->key = -1;
    headn->next = tailn;
    headn->marked = 0;
    l->head = headn;
}

bool add(list_t *l, int key)
{
    node_t *pred, *curr, *succ, *n;
    int cmark;
    while (true) {
        /* search: find pred/curr with curr the first node >= key,
         * snipping marked nodes along the way */
        pred = l->head;
        fence("load-load");
        curr = pred->next;
        fence("load-load");
        while (true) {
            atomic { succ = curr->next; cmark = curr->marked; }
            fence("load-load");
            if (cmark) {
                /* curr is logically deleted: try to unlink it */
                if (!cas_next(pred, curr, 0, succ, 0))
                    break; /* restart the outer loop */
                curr = succ;
                continue;
            }
            if (curr->key >= key)
                break;
            pred = curr;
            curr = succ;
        }
        if (cmark)
            continue; /* snip failed; retry from the head */
        if (curr->key == key)
            return false;
        n = new_node();
        n->key = key;
        n->next = curr;
        n->marked = 0;
        fence("store-store");
        if (cas_next(pred, curr, 0, n, 0))
            return true;
    }
}

bool remove(list_t *l, int key)
{
    node_t *pred, *curr, *succ;
    int cmark;
    while (true) {
        pred = l->head;
        fence("load-load");
        curr = pred->next;
        fence("load-load");
        while (true) {
            atomic { succ = curr->next; cmark = curr->marked; }
            fence("load-load");
            if (cmark) {
                if (!cas_next(pred, curr, 0, succ, 0))
                    break;
                curr = succ;
                continue;
            }
            if (curr->key >= key)
                break;
            pred = curr;
            curr = succ;
        }
        if (cmark)
            continue;
        if (curr->key != key)
            return false;
        /* logical removal: mark curr's packed word */
        atomic { succ = curr->next; cmark = curr->marked; }
        if (cmark)
            continue;
        if (!cas_next(curr, succ, 0, succ, 1))
            continue;
        /* physical removal (best effort; traversals will help) */
        cas_next(pred, curr, 0, succ, 0);
        return true;
    }
}

bool contains(list_t *l, int key)
{
    node_t *curr;
    int cmark;
    curr = l->head;
    fence("load-load");
    while (curr->key < key) {
        curr = curr->next;
        fence("load-load");
    }
    if (curr->key == key) {
        atomic { cmark = curr->marked; }
        if (!cmark)
            return true;
        return false;
    }
    return false;
}

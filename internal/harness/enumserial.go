package harness

import (
	"errors"
	"fmt"

	"checkfence/internal/interp"
	"checkfence/internal/lsl"
	"checkfence/internal/spec"
)

// EnumerateSerial computes the serial observation set by directly
// interpreting the translated implementation: operations execute
// atomically, threads interleave at operation boundaries, and
// unspecified arguments range over {0,1}.
//
// This is a third, independent way to obtain the specification (next
// to SAT mining and the refimpl enumeration); the test suite compares
// all three, which differentially validates the C translation, the
// interpreter, and the SAT encoding against each other.
func EnumerateSerial(b *Built) (*spec.Set, error) {
	m := interp.NewMachine(b.Unit.Prog)

	// Initialization thread runs first, serially. Its operation
	// segments contribute observations; its argument havocs are
	// enumerated like any other.
	set := spec.NewSet()
	obs := make(spec.Observation, len(b.Entries))
	for i := range obs {
		obs[i] = lsl.Undef()
	}

	e := &serialEnum{built: b, set: set}
	if err := e.runInit(m, 0, obs); err != nil {
		return nil, err
	}
	return set, nil
}

type serialEnum struct {
	built *Built
	set   *spec.Set
}

// obsOpFor finds the observation slots for a (thread, seg) pair.
func (e *serialEnum) obsOpFor(thread, seg int) *ObsOp {
	for i := range e.built.ObsOps {
		oo := &e.built.ObsOps[i]
		if oo.Thread == thread && oo.Seg == seg {
			return oo
		}
	}
	return nil
}

// runSegment executes one operation segment atomically under all of
// its argument choices, invoking cont on each feasible outcome.
func (e *serialEnum) runSegment(m *interp.Machine, thread, seg int,
	obs spec.Observation, cont func(*interp.Machine, spec.Observation) error) error {

	oo := e.obsOpFor(thread, seg)
	numArgs := 0
	if oo != nil && oo.ArgIdx >= 0 {
		op, _ := e.built.Impl.OpByMnemonic(oo.Mnemonic)
		numArgs = op.NumArgs
	}
	stmts := e.built.Threads[thread].Segments[seg]

	for mask := int64(0); mask < 1<<uint(numArgs); mask++ {
		m2 := m.Clone()
		calls := 0
		m2.Oracle = func(bits int) int64 {
			v := mask >> uint(calls) & 1
			calls++
			return v
		}
		env, err := m2.RunBody(stmts)
		if errors.Is(err, interp.ErrAssumeFailed) {
			continue // infeasible under serial semantics
		}
		var rte *interp.RuntimeError
		if errors.As(err, &rte) {
			return fmt.Errorf("harness: sequential bug in %s (thread %d seg %d): %w",
				e.built.Impl.Name, thread, seg, rte)
		}
		if err != nil {
			return err
		}
		obs2 := append(spec.Observation(nil), obs...)
		if oo != nil {
			e.record(oo, env, obs2)
		}
		if err := cont(m2, obs2); err != nil {
			return err
		}
	}
	return nil
}

func (e *serialEnum) record(oo *ObsOp, env map[lsl.Reg]lsl.Value, obs spec.Observation) {
	get := func(r lsl.Reg) lsl.Value {
		if v, ok := env[r]; ok {
			return v
		}
		return lsl.Undef()
	}
	if oo.ArgIdx >= 0 {
		op, _ := e.built.Impl.OpByMnemonic(oo.Mnemonic)
		for a := 0; a < op.NumArgs; a++ {
			obs[oo.ArgIdx+a] = get(lsl.Reg(fmt.Sprintf("arg%d", a)))
		}
	}
	if oo.RetIdx >= 0 {
		obs[oo.RetIdx] = get("ret")
	}
	if oo.OutIdx >= 0 {
		obs[oo.OutIdx] = get("out")
	}
}

// runInit executes the initialization thread's segments in order,
// then enumerates the concurrent threads' interleavings.
func (e *serialEnum) runInit(m *interp.Machine, seg int, obs spec.Observation) error {
	if seg >= len(e.built.Threads[0].Segments) {
		pos := make([]int, len(e.built.Threads)-1)
		return e.interleave(m, pos, obs)
	}
	return e.runSegment(m, 0, seg, obs, func(m2 *interp.Machine, obs2 spec.Observation) error {
		return e.runInit(m2, seg+1, obs2)
	})
}

// interleave explores every order of the remaining operations.
func (e *serialEnum) interleave(m *interp.Machine, pos []int, obs spec.Observation) error {
	done := true
	for ti := range pos {
		if pos[ti] < len(e.built.Threads[ti+1].Segments) {
			done = false
			break
		}
	}
	if done {
		e.set.Add(obs)
		return nil
	}
	for ti := range pos {
		if pos[ti] >= len(e.built.Threads[ti+1].Segments) {
			continue
		}
		seg := pos[ti]
		err := e.runSegment(m, ti+1, seg, obs, func(m2 *interp.Machine, obs2 spec.Observation) error {
			pos2 := append([]int(nil), pos...)
			pos2[ti]++
			return e.interleave(m2, pos2, obs2)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

package harness

import (
	"strings"
	"sync"
	"testing"

	"checkfence/internal/lsl"
)

func TestRegistryComplete(t *testing.T) {
	impls := Implementations()
	for _, name := range []string{"ms2", "msn", "lazylist", "harris", "snark",
		"msn-nofence", "ms2-nofence", "lazylist-nofence", "harris-nofence",
		"snark-nofence", "lazylist-bug", "msn-commit"} {
		if _, ok := impls[name]; !ok {
			t.Errorf("missing implementation %q", name)
		}
	}
}

func TestGetDropFence(t *testing.T) {
	base, err := Get("msn")
	if err != nil {
		t.Fatal(err)
	}
	total := CountFences(base.Source)
	if total == 0 {
		t.Fatal("msn must have fences")
	}
	v, err := Get("msn-dropfence0")
	if err != nil {
		t.Fatal(err)
	}
	if CountFences(v.Source) != total-1 {
		t.Errorf("dropfence0 has %d fences, want %d", CountFences(v.Source), total-1)
	}
	if _, err := Get("msn-dropfenceX"); err == nil {
		t.Error("bad dropfence suffix must fail")
	}
	if _, err := Get("nosuch"); err == nil {
		t.Error("unknown implementation must fail")
	}
}

func TestStripFences(t *testing.T) {
	src := `a; fence("load-load"); b; fence("store-store"); c;`
	out := StripFences(src)
	if CountFences(out) != 0 {
		t.Errorf("StripFences left fences: %q", out)
	}
	if !strings.Contains(out, "a;") || !strings.Contains(out, "c;") {
		t.Errorf("StripFences damaged code: %q", out)
	}
}

func TestStripUnprotectedFencesKeepsLockFences(t *testing.T) {
	impls := Implementations()
	ms2nf := impls["ms2-nofence"]
	// The lock/unlock bodies retain their fences; the queue code does
	// not.
	lockIdx := strings.Index(ms2nf.Source, "void lock(")
	if lockIdx < 0 {
		t.Fatal("no lock function")
	}
	lockEnd := strings.Index(ms2nf.Source[lockIdx:], "\n}")
	lockBody := ms2nf.Source[lockIdx : lockIdx+lockEnd]
	if CountFences(lockBody) == 0 {
		t.Error("lock() must keep its fences in the -nofence variant")
	}
	enqIdx := strings.Index(ms2nf.Source, "void enqueue(")
	if enqIdx < 0 {
		t.Fatal("no enqueue")
	}
	if CountFences(ms2nf.Source[enqIdx:]) != 0 {
		t.Error("enqueue must lose its fences in the -nofence variant")
	}
}

func TestRemoveBugLines(t *testing.T) {
	impls := Implementations()
	fixed := impls["lazylist"]
	buggy := impls["lazylist-bug"]
	// The buggy variant drops exactly the annotated initialization
	// line (the sentinels' initializations remain).
	cnt := func(s string) int { return strings.Count(s, "marked = 0;") }
	if cnt(buggy.Source) != cnt(fixed.Source)-1 {
		t.Errorf("buggy variant: %d marked-inits, fixed: %d",
			cnt(buggy.Source), cnt(fixed.Source))
	}
	if strings.Contains(buggy.Source, "BUG:") {
		t.Error("buggy variant must not contain the annotated line")
	}
}

func TestParseTestNotation(t *testing.T) {
	impl := Implementations()["msn"]
	tst, err := ParseTest("x", "e ( ed | de )", impl)
	if err != nil {
		t.Fatal(err)
	}
	if len(tst.Init) != 1 || tst.Init[0].Op != "e" {
		t.Errorf("init = %+v", tst.Init)
	}
	if len(tst.Threads) != 2 || len(tst.Threads[0]) != 2 {
		t.Errorf("threads = %+v", tst.Threads)
	}
	if tst.Threads[1][0].Op != "d" || tst.Threads[1][1].Op != "e" {
		t.Errorf("thread 2 = %+v", tst.Threads[1])
	}
	if tst.NumOps() != 5 {
		t.Errorf("NumOps = %d", tst.NumOps())
	}
}

func TestParseTestPrimed(t *testing.T) {
	impl := Implementations()["snark"]
	tst, err := ParseTest("Dm", "( al' al' al' | rr' rr' rr' | rl' | ar' )", impl)
	if err != nil {
		t.Fatal(err)
	}
	if len(tst.Threads) != 4 {
		t.Fatalf("threads = %d", len(tst.Threads))
	}
	for _, th := range tst.Threads {
		for _, inv := range th {
			if !inv.NoRetry {
				t.Errorf("op %s must be primed", inv.Op)
			}
		}
	}
	// Multi-letter mnemonics parse greedily.
	if tst.Threads[0][0].Op != "al" || tst.Threads[1][0].Op != "rr" {
		t.Errorf("ops = %v %v", tst.Threads[0][0], tst.Threads[1][0])
	}
}

func TestParseTestErrors(t *testing.T) {
	impl := Implementations()["msn"]
	for _, bad := range []string{"e e d", "( )", "( x | y )", "()"} {
		if _, err := ParseTest("bad", bad, impl); err == nil {
			t.Errorf("ParseTest(%q) should fail", bad)
		}
	}
}

func TestFig8TablesParse(t *testing.T) {
	for _, name := range []string{"ms2", "msn", "lazylist", "harris", "snark"} {
		impl := Implementations()[name]
		tests, err := TestsFor(impl)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tests) == 0 {
			t.Errorf("%s has no tests", name)
		}
		for _, fig10 := range Fig10Tests[name] {
			if _, ok := tests[fig10]; !ok {
				t.Errorf("%s: Fig. 10 test %s not defined", name, fig10)
			}
		}
	}
}

func TestBuildStructure(t *testing.T) {
	impl := Implementations()["msn"]
	tst, err := GetTest(impl, "Ti2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(impl, tst)
	if err != nil {
		t.Fatal(err)
	}
	// init thread: init_queue + 1 init op; two test threads with 2
	// ops each.
	if len(b.Threads) != 3 {
		t.Fatalf("threads = %d", len(b.Threads))
	}
	if len(b.Threads[0].Segments) != 2 {
		t.Errorf("init segments = %d", len(b.Threads[0].Segments))
	}
	if len(b.Threads[1].Segments) != 2 || len(b.Threads[2].Segments) != 2 {
		t.Errorf("thread segments = %d, %d",
			len(b.Threads[1].Segments), len(b.Threads[2].Segments))
	}
	// Observation: init e (arg), t1: e(arg), d(ret,out), t2: d(ret,out), e(arg)
	if len(b.Entries) != 1+1+2+2+1 {
		t.Errorf("entries = %d: %+v", len(b.Entries), b.Entries)
	}
	if len(b.ObsOps) != 5 {
		t.Errorf("obs ops = %d", len(b.ObsOps))
	}
}

func TestUnrollProducesLoopFreeCode(t *testing.T) {
	impl := Implementations()["msn"]
	tst, err := GetTest(impl, "T0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(impl, tst)
	if err != nil {
		t.Fatal(err)
	}
	u, err := b.Unroll(nil)
	if err != nil {
		t.Fatal(err)
	}
	var checkLoopFree func(stmts []lsl.Stmt)
	checkLoopFree = func(stmts []lsl.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *lsl.BlockStmt:
				if s.Loop != lsl.NotLoop {
					t.Errorf("loop %q survived unrolling", s.Tag)
				}
				checkLoopFree(s.Body)
			case *lsl.AtomicStmt:
				checkLoopFree(s.Body)
			case *lsl.CallStmt:
				t.Errorf("call to %q survived inlining", s.Proc)
			case *lsl.ContinueStmt:
				t.Errorf("continue survived unrolling")
			}
		}
	}
	for _, th := range u.Threads {
		for _, seg := range th.Segments {
			checkLoopFree(seg)
		}
	}
	if u.Instrs == 0 || u.Loads == 0 || u.Stores == 0 {
		t.Errorf("stats: %+v", u)
	}
	if len(u.Loops) == 0 {
		t.Error("msn has retry loops; none recorded")
	}
}

func TestUnrollBoundsGrowth(t *testing.T) {
	impl := Implementations()["msn"]
	tst, _ := GetTest(impl, "T0")
	b, _ := Build(impl, tst)
	u1, err := b.Unroll(nil)
	if err != nil {
		t.Fatal(err)
	}
	key := u1.Loops[0].Key
	u2, err := b.Unroll(map[string]int{key: 3})
	if err != nil {
		t.Fatal(err)
	}
	if u2.Instrs <= u1.Instrs {
		t.Errorf("unrolling with larger bound must grow: %d vs %d", u2.Instrs, u1.Instrs)
	}
	found := false
	for _, li := range u2.Loops {
		if li.Key == key && li.Bound == 3 {
			found = true
		}
	}
	if !found {
		t.Error("bound override not applied")
	}
}

// TestRegistryConcurrentReaders locks in that the implementation and
// test registries are safe for concurrent readers (run under -race).
func TestRegistryConcurrentReaders(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			impls := Implementations()
			if len(impls) == 0 {
				t.Error("empty registry")
				return
			}
			im, err := Get("msn")
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := TestsFor(im); err != nil {
				t.Error(err)
			}
			if _, err := Get("msn-dropfence1"); err != nil {
				t.Error(err)
			}
			// Mutating the returned map must not affect the shared
			// registry.
			delete(impls, "msn")
		}(i)
	}
	wg.Wait()
	if _, err := Get("msn"); err != nil {
		t.Fatalf("registry damaged by concurrent readers: %v", err)
	}
}

package harness_test

import (
	"testing"

	"checkfence/internal/harness"
	"checkfence/internal/refimpl"
)

// TestSerialEnumMatchesRefimpl cross-validates the interpreter-based
// serial enumeration against the native reference implementations on
// several implementation/test pairs.
func TestSerialEnumMatchesRefimpl(t *testing.T) {
	cases := []struct{ impl, test string }{
		{"msn", "T0"},
		{"msn", "Ti2"},
		{"ms2", "T1"},
		{"lazylist", "Sac"},
		{"lazylist", "Sar"},
		{"harris", "Sac"},
		{"snark", "D0"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.impl+"/"+c.test, func(t *testing.T) {
			t.Parallel()
			impl := harness.Implementations()[c.impl]
			tst, err := harness.GetTest(impl, c.test)
			if err != nil {
				t.Fatal(err)
			}
			b, err := harness.Build(impl, tst)
			if err != nil {
				t.Fatal(err)
			}
			interpSet, err := harness.EnumerateSerial(b)
			if err != nil {
				t.Fatal(err)
			}
			refSet, err := refimpl.Enumerate(impl, tst)
			if err != nil {
				t.Fatal(err)
			}
			if !interpSet.Equal(refSet) {
				t.Errorf("interp enumeration (%d) != refimpl (%d)\ninterp:\n%srefimpl:\n%s",
					interpSet.Len(), refSet.Len(),
					refimpl.FormatSet(interpSet), refimpl.FormatSet(refSet))
			}
		})
	}
}

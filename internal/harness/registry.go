// Package harness assembles CheckFence verification problems: it
// pairs the implementations of the paper's Table 1 with the symbolic
// tests of Fig. 8, builds the LSL test harness (initialization thread,
// operation invocations with nondeterministic arguments, observation
// registers), and prepares the unrolled threads for the encoder.
package harness

import (
	"embed"
	"fmt"
	"regexp"
	"strings"
	"sync"
)

//go:embed testdata/*.c
var sources embed.FS

// OpSig describes one operation of a concurrent data type.
type OpSig struct {
	Mnemonic string // Fig. 8 shorthand: e, d, a, c, r, al, ar, rl, rr
	Func     string // C function name
	NumArgs  int    // nondeterministic value arguments (beyond the object)
	HasRet   bool   // boolean return value
	HasOut   bool   // out-parameter cell (e.g. dequeue's pvalue)
}

// Impl is one implementation under test (paper Table 1).
type Impl struct {
	Name     string
	Kind     string // "queue", "set", or "deque" (selects the reference implementation)
	Source   string // complete C translation unit (sync library included)
	InitFunc string
	Obj      string // name of the global object the harness passes to operations
	Ops      []OpSig
}

// OpByMnemonic finds an operation signature.
func (im *Impl) OpByMnemonic(m string) (OpSig, bool) {
	for _, op := range im.Ops {
		if op.Mnemonic == m {
			return op, true
		}
	}
	return OpSig{}, false
}

// Mnemonics returns the operation shorthands, longest first (for the
// greedy test-string parser).
func (im *Impl) Mnemonics() []string {
	out := make([]string, len(im.Ops))
	for i, op := range im.Ops {
		out[i] = op.Mnemonic
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if len(out[j]) > len(out[i]) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func mustRead(name string) string {
	b, err := sources.ReadFile("testdata/" + name)
	if err != nil {
		panic(err)
	}
	return string(b)
}

var queueOps = []OpSig{
	{Mnemonic: "e", Func: "enqueue", NumArgs: 1},
	{Mnemonic: "d", Func: "dequeue", HasRet: true, HasOut: true},
}

var setOps = []OpSig{
	{Mnemonic: "a", Func: "add", NumArgs: 1, HasRet: true},
	{Mnemonic: "c", Func: "contains", NumArgs: 1, HasRet: true},
	{Mnemonic: "r", Func: "remove", NumArgs: 1, HasRet: true},
}

var dequeOps = []OpSig{
	{Mnemonic: "al", Func: "pushLeft", NumArgs: 1},
	{Mnemonic: "ar", Func: "pushRight", NumArgs: 1},
	{Mnemonic: "rl", Func: "popLeft", HasRet: true, HasOut: true},
	{Mnemonic: "rr", Func: "popRight", HasRet: true, HasOut: true},
}

// registry is the immutable-after-init implementation table, built
// exactly once. The *Impl values are shared and must be treated as
// read-only; the suite scheduler reads them from many goroutines.
var (
	registryOnce sync.Once
	registry     map[string]*Impl
)

func implRegistry() map[string]*Impl {
	registryOnce.Do(func() { registry = buildImplementations() })
	return registry
}

// Implementations returns the study set of paper Table 1, keyed by
// mnemonic name. Variants:
//
//	<name>          fences as published in the paper (or derived)
//	<name>-nofence  all memory ordering fences removed
//	lazylist-bug    the published pseudocode's missing initialization
//	snark           the algorithm as published, i.e. with its bugs
//
// The registry is built once and shared; the returned map is a fresh
// copy (safe for callers to mutate) but the *Impl values are shared
// read-only structures, safe for concurrent readers.
func Implementations() map[string]*Impl {
	reg := implRegistry()
	out := make(map[string]*Impl, len(reg))
	for k, v := range reg {
		out[k] = v
	}
	return out
}

func buildImplementations() map[string]*Impl {
	syncSrc := mustRead("sync.c")
	m := map[string]*Impl{}

	add := func(im *Impl) { m[im.Name] = im }

	msn := &Impl{
		Name: "msn", Kind: "queue",
		Source:   syncSrc + mustRead("msn.c"),
		InitFunc: "init_queue", Obj: "q", Ops: queueOps,
	}
	add(msn)
	add(variant(msn, "msn-nofence", StripFences))
	// Commit-point-annotated variant for the Fig. 12 baseline method;
	// it carries its own cas/cas_commit definitions.
	msnCommit := &Impl{
		Name: "msn-commit", Kind: "queue",
		Source:   mustRead("msn_commit.c"),
		InitFunc: "init_queue", Obj: "q", Ops: queueOps,
	}
	add(msnCommit)
	add(variant(msnCommit, "msn-commit-nofence", StripFences))

	ms2 := &Impl{
		Name: "ms2", Kind: "queue",
		Source:   syncSrc + mustRead("ms2.c"),
		InitFunc: "init_queue", Obj: "q", Ops: queueOps,
	}
	add(ms2)
	add(variant(ms2, "ms2-nofence", StripUnprotectedFences))

	lazy := &Impl{
		Name: "lazylist", Kind: "set",
		Source:   syncSrc + mustRead("lazylist.c"),
		InitFunc: "init_set", Obj: "set", Ops: setOps,
	}
	add(lazy)
	add(variant(lazy, "lazylist-nofence", StripUnprotectedFences))
	add(variant(lazy, "lazylist-bug", RemoveBugLines))

	harris := &Impl{
		Name: "harris", Kind: "set",
		Source:   syncSrc + mustRead("harris.c"),
		InitFunc: "init_set", Obj: "set", Ops: setOps,
	}
	add(harris)
	add(variant(harris, "harris-nofence", StripFences))

	snark := &Impl{
		Name: "snark", Kind: "deque",
		Source:   syncSrc + mustRead("snark.c"),
		InitFunc: "init_deque", Obj: "dq", Ops: dequeOps,
	}
	add(snark)
	add(variant(snark, "snark-nofence", StripFences))

	return m
}

func variant(base *Impl, name string, transform func(string) string) *Impl {
	v := *base
	v.Name = name
	v.Source = transform(base.Source)
	return &v
}

var fenceCallRe = regexp.MustCompile(`fence\("(load|store)-(load|store)"\);`)

// StripFences removes every fence() call from the source (the
// "algorithm as originally published" variant — the originals assume
// sequential consistency and carry no fences, paper §4).
func StripFences(src string) string {
	return fenceCallRe.ReplaceAllString(src, ";")
}

// StripUnprotectedFences removes the fences of the data structure
// code but keeps those inside lock() and unlock(), which belong to
// the synchronization library (the paper notes lock-based code is
// insensitive to the model *because* lock/unlock contain the needed
// fences).
func StripUnprotectedFences(src string) string {
	var out []string
	inSync := false
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(line, "void lock(") || strings.HasPrefix(line, "void unlock(") {
			inSync = true
		}
		if inSync {
			out = append(out, line)
			if line == "}" {
				inSync = false
			}
			continue
		}
		out = append(out, fenceCallRe.ReplaceAllString(line, ";"))
	}
	return strings.Join(out, "\n")
}

// CountFences returns the number of fence() calls in the source.
func CountFences(src string) int {
	return len(fenceCallRe.FindAllString(src, -1))
}

// RemoveFence removes the k-th (0-based) fence call, leaving the rest
// intact. Used by the fence-necessity experiment and the fence
// inference extension.
func RemoveFence(src string, k int) string {
	i := -1
	return fenceCallRe.ReplaceAllStringFunc(src, func(match string) string {
		i++
		if i == k {
			return ";"
		}
		return match
	})
}

// RemoveFences removes the fence calls whose (0-based) occurrence
// index is in drop.
func RemoveFences(src string, drop map[int]bool) string {
	i := -1
	return fenceCallRe.ReplaceAllStringFunc(src, func(match string) string {
		i++
		if drop[i] {
			return ";"
		}
		return match
	})
}

// RemoveBugLines deletes the source lines annotated with "BUG:",
// recreating published pseudocode defects (the lazylist missing
// 'marked' initialization of paper §4.1).
func RemoveBugLines(src string) string {
	lines := strings.Split(src, "\n")
	out := lines[:0]
	for _, l := range lines {
		if strings.Contains(l, "BUG:") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// Get looks up an implementation variant, including dynamic
// "-dropfence<k>" forms. The returned *Impl is shared and read-only;
// Get is safe for concurrent use.
func Get(name string) (*Impl, error) {
	impls := implRegistry()
	if im, ok := impls[name]; ok {
		return im, nil
	}
	if i := strings.LastIndex(name, "-dropfence"); i >= 0 {
		base, ok := impls[name[:i]]
		if !ok {
			return nil, fmt.Errorf("harness: unknown implementation %q", name[:i])
		}
		var k int
		if _, err := fmt.Sscanf(name[i+len("-dropfence"):], "%d", &k); err != nil {
			return nil, fmt.Errorf("harness: bad dropfence suffix in %q", name)
		}
		return variant(base, name, func(s string) string { return RemoveFence(s, k) }), nil
	}
	return nil, fmt.Errorf("harness: unknown implementation %q", name)
}

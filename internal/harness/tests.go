package harness

import (
	"fmt"
	"strings"
)

// Invocation is one operation call in a test program.
type Invocation struct {
	Op      string
	NoRetry bool // primed form: retry loops restricted to one iteration
}

// Test is a symbolic test program (paper Fig. 8): an optional
// initialization sequence executed serially before the threads, and
// one operation sequence per thread. Operation arguments are left
// unspecified and chosen nondeterministically from {0, 1}.
type Test struct {
	Name    string
	Init    []Invocation
	Threads [][]Invocation
}

// NumOps returns the total number of operation invocations.
func (t *Test) NumOps() int {
	n := len(t.Init)
	for _, th := range t.Threads {
		n += len(th)
	}
	return n
}

// ParseTest parses the Fig. 8 notation for the given implementation's
// mnemonics: an optional initialization sequence, then a
// parenthesized, '|'-separated list of per-thread sequences. A prime
// (') after an operation restricts its retry loops to one iteration.
//
// Example: "aar ( a | c | r )" or "e ( ed | de )" or
// "( al' | rr' )".
func ParseTest(name, notation string, impl *Impl) (*Test, error) {
	open := strings.Index(notation, "(")
	closeIdx := strings.LastIndex(notation, ")")
	if open < 0 || closeIdx < open {
		return nil, fmt.Errorf("harness: test %q: missing thread list parentheses", name)
	}
	test := &Test{Name: name}
	var err error
	if init := strings.TrimSpace(notation[:open]); init != "" {
		test.Init, err = parseSeq(init, impl)
		if err != nil {
			return nil, fmt.Errorf("harness: test %q init: %w", name, err)
		}
	}
	for _, part := range strings.Split(notation[open+1:closeIdx], "|") {
		seq, err := parseSeq(strings.TrimSpace(part), impl)
		if err != nil {
			return nil, fmt.Errorf("harness: test %q: %w", name, err)
		}
		test.Threads = append(test.Threads, seq)
	}
	if len(test.Threads) == 0 {
		return nil, fmt.Errorf("harness: test %q has no threads", name)
	}
	return test, nil
}

func parseSeq(s string, impl *Impl) ([]Invocation, error) {
	mnems := impl.Mnemonics()
	var out []Invocation
	i := 0
	for i < len(s) {
		if s[i] == ' ' || s[i] == '\t' {
			i++
			continue
		}
		matched := false
		for _, m := range mnems {
			if strings.HasPrefix(s[i:], m) {
				inv := Invocation{Op: m}
				i += len(m)
				if i < len(s) && s[i] == '\'' {
					inv.NoRetry = true
					i++
				}
				out = append(out, inv)
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("unknown operation at %q", s[i:])
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty operation sequence")
	}
	return out, nil
}

// testTable maps test names to their Fig. 8 notation, grouped by data
// type kind.
var testTable = map[string]map[string]string{
	"queue": {
		"T0":   "( e | d )",
		"T1":   "( e | e | d | d )",
		"Ti2":  "e ( ed | de )",
		"Ti3":  "e ( de | dde )",
		"Tpc2": "( ee | dd )",
		"Tpc3": "( eee | ddd )",
		"Tpc4": "( eeee | dddd )",
		"Tpc5": "( eeeee | ddddd )",
		"Tpc6": "( eeeeee | dddddd )",
		"T53":  "( eeee | d | d )",
		"T54":  "( eee | e | d | d )",
		"T55":  "( ee | e | e | d | d )",
		"T56":  "( e | e | e | e | d | d )",
	},
	"set": {
		"Sac":    "( a | c )",
		"Sar":    "( a | r )",
		"Saa":    "( a | a )",
		"Sacr":   "( a | c | r )",
		"Saacr":  "a ( a | c | r )",
		"Sacr2":  "aar ( a | c | r )",
		"Saaarr": "aaa ( r | rc )",
		"Sarr":   "( a | r | r )",
		"S1":     "( a' | a' | c' | c' | r' | r' )",
	},
	"deque": {
		"D0": "( al rr | ar rl )",
		"Da": "al al ( rr rr | rl rl )",
		"Db": "( rr rl | ar | al )",
		"Dm": "( al' al' al' | rr' rr' rr' | rl' | ar' )",
		"Dq": "( al' | al' | ar' | ar' | rl' | rl' | rr' | rr' )",
	},
}

// TestsFor returns the Fig. 8 tests applicable to an implementation,
// keyed by name.
func TestsFor(impl *Impl) (map[string]*Test, error) {
	table, ok := testTable[impl.Kind]
	if !ok {
		return nil, fmt.Errorf("harness: no tests for kind %q", impl.Kind)
	}
	out := map[string]*Test{}
	for name, notation := range table {
		t, err := ParseTest(name, notation, impl)
		if err != nil {
			return nil, err
		}
		out[name] = t
	}
	return out, nil
}

// GetTest resolves a test by name for an implementation, also
// accepting raw Fig. 8 notation.
func GetTest(impl *Impl, name string) (*Test, error) {
	tests, err := TestsFor(impl)
	if err != nil {
		return nil, err
	}
	if t, ok := tests[name]; ok {
		return t, nil
	}
	if strings.Contains(name, "(") {
		return ParseTest("custom", name, impl)
	}
	return nil, fmt.Errorf("harness: unknown test %q for %s", name, impl.Name)
}

// Fig10Tests lists, per implementation, the tests of the paper's
// Fig. 10 statistics table in row order.
var Fig10Tests = map[string][]string{
	"ms2":      {"T0", "T1", "T53", "T54", "T55", "T56", "Ti2", "Ti3", "Tpc2", "Tpc3", "Tpc4", "Tpc5", "Tpc6"},
	"msn":      {"T0", "T1", "T53", "Ti2", "Ti3", "Tpc2", "Tpc3", "Tpc4", "Tpc5", "Tpc6"},
	"lazylist": {"Sac", "Sar", "Sacr", "Saa", "Saacr", "Sacr2", "Sarr", "S1", "Saaarr"},
	"harris":   {"Sac", "Sar", "Saa", "Sacr"},
	"snark":    {"Da", "D0", "Db", "Dm", "Dq"},
}

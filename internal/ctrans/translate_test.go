package ctrans

import (
	"errors"
	"testing"

	"checkfence/internal/cparse"
	"checkfence/internal/interp"
	"checkfence/internal/lsl"
)

// run translates C source and returns a machine ready to call its
// functions.
func run(t *testing.T, src string) (*Unit, *interp.Machine) {
	t.Helper()
	file, err := cparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u, err := Translate(file)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return u, interp.NewMachine(u.Prog)
}

func callInt(t *testing.T, m *interp.Machine, fn string, args ...lsl.Value) int64 {
	t.Helper()
	res, err := m.Call(fn, args...)
	if err != nil {
		t.Fatalf("call %s: %v", fn, err)
	}
	if len(res) != 1 || res[0].Kind != lsl.KindInt {
		t.Fatalf("call %s: result = %v", fn, res)
	}
	return res[0].Int
}

func TestArithmeticAndControlFlow(t *testing.T) {
	_, m := run(t, `
int add(int a, int b) { return a + b; }
int max(int a, int b) { if (a > b) return a; else return b; }
int sumTo(int n) {
    int s = 0;
    int i;
    for (i = 1; i <= n; i = i + 1) s = s + i;
    return s;
}
int countdown(int n) {
    int c = 0;
    while (n > 0) { n = n - 1; c = c + 1; }
    return c;
}
int doLoop(int n) {
    int c = 0;
    do { c = c + 1; n = n - 1; } while (n > 0);
    return c;
}`)
	if got := callInt(t, m, "add", lsl.Int(2), lsl.Int(3)); got != 5 {
		t.Errorf("add = %d", got)
	}
	if got := callInt(t, m, "max", lsl.Int(2), lsl.Int(7)); got != 7 {
		t.Errorf("max = %d", got)
	}
	if got := callInt(t, m, "max", lsl.Int(9), lsl.Int(7)); got != 9 {
		t.Errorf("max = %d", got)
	}
	if got := callInt(t, m, "sumTo", lsl.Int(5)); got != 15 {
		t.Errorf("sumTo(5) = %d", got)
	}
	if got := callInt(t, m, "countdown", lsl.Int(4)); got != 4 {
		t.Errorf("countdown = %d", got)
	}
	if got := callInt(t, m, "doLoop", lsl.Int(0)); got != 1 {
		t.Errorf("doLoop(0) = %d, want 1 (do-while runs once)", got)
	}
}

func TestBreakContinueSemantics(t *testing.T) {
	_, m := run(t, `
int f() {
    int i;
    int s = 0;
    for (i = 0; i < 10; i = i + 1) {
        if (i == 3) continue;
        if (i == 6) break;
        s = s + i;
    }
    return s;
}
int g(int n) {
    int c = 0;
    do {
        n = n - 1;
        if (n == 2) continue;   // must jump to the condition, not the body top
        c = c + 1;
    } while (n > 0);
    return c;
}`)
	// 0+1+2+4+5 = 12
	if got := callInt(t, m, "f"); got != 12 {
		t.Errorf("f = %d, want 12", got)
	}
	// n=4: iterations n->3 c=1, n->2 (skip), n->1 c=2, n->0 c=3
	if got := callInt(t, m, "g", lsl.Int(4)); got != 3 {
		t.Errorf("g(4) = %d, want 3", got)
	}
}

func TestShortCircuit(t *testing.T) {
	u, m := run(t, `
int x;
int touchAndReturn(int v) { x = v; return v; }
int andOp(int a, int b) { return a && touchAndReturn(b); }
int orOp(int a, int b) { return a || touchAndReturn(b); }`)
	g, _ := u.Prog.GlobalByName("x")
	loc := lsl.LocOf(lsl.Ptr(g.Base))

	if got := callInt(t, m, "andOp", lsl.Int(0), lsl.Int(7)); got != 0 {
		t.Errorf("0 && _ = %d", got)
	}
	if _, written := m.Mem[loc]; written {
		t.Error("&& must not evaluate rhs when lhs is false")
	}
	if got := callInt(t, m, "andOp", lsl.Int(1), lsl.Int(7)); got != 1 {
		t.Errorf("1 && 7 = %d, want 1 (normalized)", got)
	}
	if v := m.Mem[loc]; !v.Equal(lsl.Int(7)) {
		t.Error("&& must evaluate rhs when lhs is true")
	}

	m2 := interp.NewMachine(u.Prog)
	if got := callInt(t, m2, "orOp", lsl.Int(1), lsl.Int(7)); got != 1 {
		t.Errorf("1 || _ = %d", got)
	}
	if _, written := m2.Mem[loc]; written {
		t.Error("|| must not evaluate rhs when lhs is true")
	}
}

func TestPointersStructsAndGlobals(t *testing.T) {
	u, m := run(t, `
typedef struct pair { int a; int b; } pair_t;
pair_t p;
int y;
void setA(pair_t *q, int v) { q->a = v; }
int getA(pair_t *q) { return q->a; }
void swap(pair_t *q) { int tmp = q->a; q->a = q->b; q->b = tmp; }
void setY(int v) { y = v; }
int getY() { return y; }`)
	g, _ := u.Prog.GlobalByName("p")
	pPtr := lsl.Ptr(g.Base)
	if _, err := m.Call("setA", pPtr, lsl.Int(42)); err != nil {
		t.Fatal(err)
	}
	if got := callInt(t, m, "getA", pPtr); got != 42 {
		t.Errorf("getA = %d", got)
	}
	// b is still undefined; swap copies undefined into a (legal), and
	// stores 42 into b.
	if _, err := m.Call("swap", pPtr); err != nil {
		t.Fatalf("swap: %v", err)
	}
	bLoc := lsl.LocOf(lsl.Ptr(g.Base, 1))
	if v := m.Mem[bLoc]; !v.Equal(lsl.Int(42)) {
		t.Errorf("p.b = %v, want 42", v)
	}
	aLoc := lsl.LocOf(lsl.Ptr(g.Base, 0))
	if v := m.Mem[aLoc]; v.IsDefined() {
		t.Errorf("p.a = %v, want undefined", v)
	}
	if _, err := m.Call("setY", lsl.Int(9)); err != nil {
		t.Fatal(err)
	}
	if got := callInt(t, m, "getY"); got != 9 {
		t.Errorf("getY = %d", got)
	}
}

func TestAllocationAndLinkedList(t *testing.T) {
	_, m := run(t, `
typedef struct node { struct node *next; int value; } node_t;
extern node_t *new_node();
node_t *head;

void push(int v) {
    node_t *n = new_node();
    n->value = v;
    n->next = head;
    head = n;
}
int pop() {
    node_t *n = head;
    head = n->next;
    return n->value;
}`)
	for _, v := range []int64{1, 2, 3} {
		if _, err := m.Call("push", lsl.Int(v)); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []int64{3, 2, 1} {
		if got := callInt(t, m, "pop"); got != want {
			t.Errorf("pop = %d, want %d", got, want)
		}
	}
}

func TestUndefinedUseDetected(t *testing.T) {
	_, m := run(t, `
int g;
int readUninit() { if (g == 0) return 1; return 2; }`)
	_, err := m.Call("readUninit")
	var rte *interp.RuntimeError
	if !errors.As(err, &rte) {
		t.Fatalf("expected RuntimeError for undefined read, got %v", err)
	}
}

func TestAssertAssume(t *testing.T) {
	_, m := run(t, `
void check(int v) { assert(v > 0); }
void require(int v) { assume(v > 0); }`)
	if _, err := m.Call("check", lsl.Int(1)); err != nil {
		t.Errorf("assert(1>0) must pass: %v", err)
	}
	_, err := m.Call("check", lsl.Int(0))
	var rte *interp.RuntimeError
	if !errors.As(err, &rte) {
		t.Errorf("assert(0>0) must be a runtime error, got %v", err)
	}
	_, err = m.Call("require", lsl.Int(0))
	if !errors.Is(err, interp.ErrAssumeFailed) {
		t.Errorf("assume(0>0) must be infeasible, got %v", err)
	}
}

func TestCASModel(t *testing.T) {
	u, m := run(t, `
int cell;
bool cas(int *loc, unsigned old, unsigned new) {
    atomic {
        if (*loc == old) {
            *loc = new;
            return true;
        } else {
            return false;
        }
    }
}
void init() { cell = 5; }
bool tryCas(unsigned old, unsigned new) { return cas(&cell, old, new); }`)
	if _, err := m.Call("init"); err != nil {
		t.Fatal(err)
	}
	if got := callInt(t, m, "tryCas", lsl.Int(4), lsl.Int(7)); got != 0 {
		t.Error("cas with wrong old value must fail")
	}
	g, _ := u.Prog.GlobalByName("cell")
	if v := m.Mem[lsl.LocOf(lsl.Ptr(g.Base))]; !v.Equal(lsl.Int(5)) {
		t.Errorf("failed cas must not write, cell = %v", v)
	}
	if got := callInt(t, m, "tryCas", lsl.Int(5), lsl.Int(7)); got != 1 {
		t.Error("cas with right old value must succeed")
	}
	if v := m.Mem[lsl.LocOf(lsl.Ptr(g.Base))]; !v.Equal(lsl.Int(7)) {
		t.Errorf("cell = %v, want 7", v)
	}
}

func TestMSNQueueSequential(t *testing.T) {
	src := `
typedef int value_t;
typedef struct node { struct node *next; value_t value; } node_t;
typedef struct queue { node_t *head; node_t *tail; } queue_t;
extern node_t *new_node();
extern void delete_node(node_t *node);
extern void fence(char *type);
queue_t q;
value_t out;

bool cas(unsigned *loc, unsigned old, unsigned new) {
    atomic {
        if (*loc == old) { *loc = new; return true; }
        else { return false; }
    }
}
void init_queue(queue_t *queue) {
    node_t *node = new_node();
    node->next = 0;
    queue->head = queue->tail = node;
}
void enqueue(queue_t *queue, value_t value) {
    node_t *node, *tail, *next;
    node = new_node();
    node->value = value;
    node->next = 0;
    fence("store-store");
    while (true) {
        tail = queue->tail;
        fence("load-load");
        next = tail->next;
        fence("load-load");
        if (tail == queue->tail)
            if (next == 0) {
                if (cas(&tail->next, (unsigned) next, (unsigned) node))
                    break;
            } else
                cas(&queue->tail, (unsigned) tail, (unsigned) next);
    }
    fence("store-store");
    cas(&queue->tail, (unsigned) tail, (unsigned) node);
}
bool dequeue(queue_t *queue, value_t *pvalue) {
    node_t *head, *tail, *next;
    while (true) {
        head = queue->head;
        fence("load-load");
        tail = queue->tail;
        fence("load-load");
        next = head->next;
        fence("load-load");
        if (head == queue->head) {
            if (head == tail) {
                if (next == 0) return false;
                cas(&queue->tail, (unsigned) tail, (unsigned) next);
            } else {
                *pvalue = next->value;
                if (cas(&queue->head, (unsigned) head, (unsigned) next)) break;
            }
        }
    }
    delete_node(head);
    return true;
}
void setup() { init_queue(&q); }
void enq(value_t v) { enqueue(&q, v); }
bool deq() { return dequeue(&q, &out); }`
	u, m := run(t, src)
	if _, err := m.Call("setup"); err != nil {
		t.Fatal(err)
	}
	// Empty dequeue returns false.
	if got := callInt(t, m, "deq"); got != 0 {
		t.Error("dequeue on empty queue must return false")
	}
	for _, v := range []int64{4, 5, 6} {
		if _, err := m.Call("enq", lsl.Int(v)); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	g, _ := u.Prog.GlobalByName("out")
	outLoc := lsl.LocOf(lsl.Ptr(g.Base))
	for _, want := range []int64{4, 5, 6} {
		if got := callInt(t, m, "deq"); got != 1 {
			t.Fatalf("dequeue must succeed")
		}
		if v := m.Mem[outLoc]; !v.Equal(lsl.Int(want)) {
			t.Errorf("dequeued %v, want %d (FIFO order)", v, want)
		}
	}
	if got := callInt(t, m, "deq"); got != 0 {
		t.Error("queue must be empty again")
	}
}

func TestEnumConstants(t *testing.T) {
	_, m := run(t, `
typedef enum { free, held } lock_t;
int lockVal() { return held; }`)
	if got := callInt(t, m, "lockVal"); got != 1 {
		t.Errorf("held = %d, want 1", got)
	}
}

func TestArrays(t *testing.T) {
	_, m := run(t, `
int a[4];
void fill() { int i; for (i = 0; i < 4; i = i + 1) a[i] = i * 10; }
int get(int i) { return a[i]; }`)
	if _, err := m.Call("fill"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if got := callInt(t, m, "get", lsl.Int(i)); got != i*10 {
			t.Errorf("a[%d] = %d, want %d", i, got, i*10)
		}
	}
}

func TestTernaryAndCompoundAssign(t *testing.T) {
	_, m := run(t, `
int f(int a, int b) { return a > b ? a : b; }
int g(int n) { n += 5; n -= 2; n++; return n; }`)
	if got := callInt(t, m, "f", lsl.Int(3), lsl.Int(8)); got != 8 {
		t.Errorf("ternary = %d", got)
	}
	if got := callInt(t, m, "g", lsl.Int(1)); got != 5 {
		t.Errorf("g = %d, want 5", got)
	}
}

func TestNullPointerComparison(t *testing.T) {
	_, m := run(t, `
typedef struct node { struct node *next; int v; } node_t;
extern node_t *new_node();
int isNull() {
    node_t *n = new_node();
    n->next = 0;
    if (n->next == 0) return 1;
    return 0;
}
int notNull() {
    node_t *n = new_node();
    n->next = n;
    if (n->next == 0) return 1;
    return 0;
}`)
	if got := callInt(t, m, "isNull"); got != 1 {
		t.Error("null field must compare equal to 0")
	}
	if got := callInt(t, m, "notNull"); got != 0 {
		t.Error("non-null pointer must not compare equal to 0")
	}
}

func TestTranslateErrors(t *testing.T) {
	bad := []string{
		`void f() { int x; int *p = &x; }`,                              // address of local
		`void f() { undefined_fn_var = 3; }`,                            // unknown identifier
		`void f(int a) { fence(a); }`,                                   // non-literal fence kind
		`void f() { fence("total"); }`,                                  // bad fence kind
		`typedef struct s { int a; } s_t; void f(s_t *p) { p->b = 1; }`, // no field
	}
	for _, src := range bad {
		file, err := cparse.Parse(src)
		if err != nil {
			t.Errorf("parse(%q) failed: %v", src, err)
			continue
		}
		if _, err := Translate(file); err == nil {
			t.Errorf("Translate(%q) should fail", src)
		}
	}
}

func TestInstrumentationCounts(t *testing.T) {
	u, _ := run(t, `
int x;
void f() { x = 1; int y = x; x = y + 1; }`)
	proc := u.Prog.Procs["f"]
	loads, stores := lsl.CountAccesses(proc.Body)
	if loads != 1 || stores != 2 {
		t.Errorf("loads=%d stores=%d, want 1,2", loads, stores)
	}
}

// Package ctrans translates the C subset of package cparse into the
// load-store language of package lsl.
//
// The translation follows Section 3.1 of the paper: control flow
// becomes tagged blocks with conditional break/continue, struct and
// array accesses become pointer component extensions (Fig. 5), casts
// are erased (LSL is untyped; runtime tags catch misuse), and the
// special functions fence/assert/assume/new_node map to the
// corresponding LSL statements.
package ctrans

import (
	"fmt"

	"checkfence/internal/cparse"
)

// CommitGlobal is the name of the reserved cell that commit()
// annotations store to (commit-point baseline method).
const CommitGlobal = "__commit"

const commitGlobal = CommitGlobal

// StructLayout records field order for a struct tag: field name to
// offset component.
type StructLayout struct {
	Tag    string
	Fields []cparse.Field
	Index  map[string]int
}

// FieldNames returns the field names in offset order (used by traces
// to render addresses symbolically).
func (l *StructLayout) FieldNames() []string {
	names := make([]string, len(l.Fields))
	for i, f := range l.Fields {
		names[i] = f.Name
	}
	return names
}

// TypeEnv collects the type-level information the translator needs:
// typedefs, struct layouts, and enum constants.
type TypeEnv struct {
	Typedefs map[string]cparse.Type
	Structs  map[string]*StructLayout
	Enums    map[string]int64 // constant name -> value
}

// NewTypeEnv builds the environment from a parsed file.
func NewTypeEnv(file *cparse.File) (*TypeEnv, error) {
	env := &TypeEnv{
		Typedefs: map[string]cparse.Type{},
		Structs:  map[string]*StructLayout{},
		Enums:    map[string]int64{},
	}
	for _, d := range file.Flatten() {
		switch d := d.(type) {
		case *cparse.TypedefDecl:
			env.Typedefs[d.Name] = d.Type
		case *cparse.StructDecl:
			layout := &StructLayout{Tag: d.Tag, Fields: d.Fields, Index: map[string]int{}}
			for i, f := range d.Fields {
				layout.Index[f.Name] = i
			}
			env.Structs[d.Tag] = layout
		case *cparse.EnumDecl:
			for i, n := range d.Names {
				env.Enums[n] = int64(i)
			}
		}
	}
	return env, nil
}

// Resolve follows typedef chains to a canonical type.
func (env *TypeEnv) Resolve(t cparse.Type) (cparse.Type, error) {
	for {
		named, ok := t.(*cparse.NamedType)
		if !ok {
			return t, nil
		}
		next, ok := env.Typedefs[named.Name]
		if !ok {
			return nil, fmt.Errorf("ctrans: unknown type name %q", named.Name)
		}
		t = next
	}
}

// StructOf returns the layout for a (possibly typedef'd) struct type.
func (env *TypeEnv) StructOf(t cparse.Type) (*StructLayout, error) {
	rt, err := env.Resolve(t)
	if err != nil {
		return nil, err
	}
	ref, ok := rt.(*cparse.StructRef)
	if !ok {
		return nil, fmt.Errorf("ctrans: not a struct type: %T", rt)
	}
	layout, ok := env.Structs[ref.Tag]
	if !ok {
		return nil, fmt.Errorf("ctrans: undefined struct %q", ref.Tag)
	}
	return layout, nil
}

// Elem returns the pointee/element type of a pointer or array type.
func (env *TypeEnv) Elem(t cparse.Type) (cparse.Type, error) {
	rt, err := env.Resolve(t)
	if err != nil {
		return nil, err
	}
	switch rt := rt.(type) {
	case *cparse.PtrType:
		return rt.Elem, nil
	case *cparse.ArrayType:
		return rt.Elem, nil
	}
	return nil, fmt.Errorf("ctrans: not a pointer or array type: %T", rt)
}

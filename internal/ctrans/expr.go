package ctrans

import (
	"checkfence/internal/cparse"
	"checkfence/internal/lsl"
)

// expr translates an expression and returns the register holding its
// value.
func (fn *fnCtx) expr(e cparse.Expr) (lsl.Reg, error) {
	switch e := e.(type) {
	case *cparse.IntLit:
		return fn.emitConst(lsl.Int(e.Val), "c"), nil

	case *cparse.StringLit:
		return "", errAt(e.Pos, "string literals are only valid as fence() arguments")

	case *cparse.Ident:
		if v, ok := fn.lookup(e.Name); ok {
			return v.reg, nil
		}
		if val, ok := fn.u.Env.Enums[e.Name]; ok {
			return fn.emitConst(lsl.Int(val), e.Name), nil
		}
		if g, ok := fn.u.Prog.GlobalByName(e.Name); ok {
			// Global scalar as rvalue: load from its address.
			addr := fn.emitConst(lsl.Ptr(g.Base), e.Name+".addr")
			return fn.emitLoad(addr, e.Name), nil
		}
		return "", errAt(e.Pos, "undefined identifier %q", e.Name)

	case *cparse.CastExpr:
		// LSL is untyped; casts are erased.
		return fn.expr(e.X)

	case *cparse.UnaryExpr:
		switch e.Op {
		case "!":
			x, err := fn.expr(e.X)
			if err != nil {
				return "", err
			}
			return fn.emitOp(lsl.OpNot, "not", 0, x), nil
		case "-":
			x, err := fn.expr(e.X)
			if err != nil {
				return "", err
			}
			return fn.emitOp(lsl.OpNeg, "neg", 0, x), nil
		case "~":
			return "", errAt(e.Pos, "bitwise complement is not supported")
		case "*":
			addr, err := fn.expr(e.X)
			if err != nil {
				return "", err
			}
			return fn.emitLoad(addr, "deref"), nil
		case "&":
			return fn.addr(e.X)
		}
		return "", errAt(e.Pos, "unsupported unary operator %q", e.Op)

	case *cparse.BinaryExpr:
		return fn.binary(e)

	case *cparse.CondExpr:
		return fn.condExpr(e)

	case *cparse.MemberExpr:
		addr, err := fn.addr(e)
		if err != nil {
			return "", err
		}
		return fn.emitLoad(addr, e.Name), nil

	case *cparse.IndexExpr:
		addr, err := fn.addr(e)
		if err != nil {
			return "", err
		}
		return fn.emitLoad(addr, "elem"), nil

	case *cparse.AssignExpr:
		return fn.assign(e)

	case *cparse.IncDecExpr:
		return fn.incDec(e)

	case *cparse.CallExpr:
		regs, err := fn.call(e, true)
		if err != nil {
			return "", err
		}
		return regs, nil
	}
	return "", errAt(e.ExprPos(), "unsupported expression %T", e)
}

// exprOrVoidCall translates an expression statement, allowing calls to
// void functions.
func (fn *fnCtx) exprOrVoidCall(e cparse.Expr) (lsl.Reg, error) {
	if call, ok := e.(*cparse.CallExpr); ok {
		return fn.call(call, false)
	}
	return fn.expr(e)
}

func (fn *fnCtx) emitLoad(addr lsl.Reg, hint string) lsl.Reg {
	dst := fn.fresh(hint)
	fn.emit(&lsl.LoadStmt{Dst: dst, Addr: addr})
	return dst
}

// binary translates a binary operator, giving && and || short-circuit
// semantics: the right operand's loads only execute when the left
// operand does not decide the result.
func (fn *fnCtx) binary(e *cparse.BinaryExpr) (lsl.Reg, error) {
	switch e.Op {
	case "&&", "||":
		x, err := fn.expr(e.X)
		if err != nil {
			return "", err
		}
		res := fn.fresh("sc")
		// Normalize the left operand to 0/1 into res.
		fn.emit(&lsl.OpStmt{Dst: res, Op: lsl.OpBool, Args: []lsl.Reg{x}})
		tag := fn.freshTag("sc")
		var body []lsl.Stmt
		saved := fn.out
		fn.out = &body
		// Skip evaluating the right side when the left decides.
		var skip lsl.Reg
		if e.Op == "&&" {
			skip = fn.emitOp(lsl.OpNot, "skip", 0, res)
		} else {
			skip = res
		}
		fn.emit(&lsl.BreakStmt{Cond: skip, Tag: tag})
		y, err := fn.expr(e.Y)
		if err != nil {
			fn.out = saved
			return "", err
		}
		fn.emit(&lsl.OpStmt{Dst: res, Op: lsl.OpBool, Args: []lsl.Reg{y}})
		fn.out = saved
		fn.emit(&lsl.BlockStmt{Tag: tag, Body: body})
		return res, nil
	}

	x, err := fn.expr(e.X)
	if err != nil {
		return "", err
	}
	y, err := fn.expr(e.Y)
	if err != nil {
		return "", err
	}
	var op lsl.Op
	switch e.Op {
	case "+":
		op = lsl.OpAdd
	case "-":
		op = lsl.OpSub
	case "*":
		op = lsl.OpMul
	case "==":
		op = lsl.OpEq
	case "!=":
		op = lsl.OpNe
	case "<":
		op = lsl.OpLt
	case "<=":
		op = lsl.OpLe
	case ">":
		op = lsl.OpGt
	case ">=":
		op = lsl.OpGe
	case "&":
		op = lsl.OpAnd
	case "|":
		op = lsl.OpOr
	case "^":
		op = lsl.OpXor
	default:
		return "", errAt(e.Pos, "unsupported binary operator %q", e.Op)
	}
	return fn.emitOp(op, "b", 0, x, y), nil
}

func (fn *fnCtx) condExpr(e *cparse.CondExpr) (lsl.Reg, error) {
	cond, err := fn.expr(e.Cond)
	if err != nil {
		return "", err
	}
	res := fn.fresh("sel")
	tag := fn.freshTag("sel")
	notCond := fn.emitOp(lsl.OpNot, "nc", 0, cond)

	var body []lsl.Stmt
	saved := fn.out

	// then arm
	fn.out = &body
	fn.emit(&lsl.BreakStmt{Cond: notCond, Tag: tag + ".else"})
	tv, err := fn.expr(e.Then)
	if err != nil {
		fn.out = saved
		return "", err
	}
	fn.emit(&lsl.OpStmt{Dst: res, Op: lsl.OpIdent, Args: []lsl.Reg{tv}})
	fn.emit(&lsl.BreakStmt{Cond: fn.emitTrue(), Tag: tag})
	thenBody := body

	// else arm
	body = nil
	fn.out = &body
	ev, err := fn.expr(e.Else)
	if err != nil {
		fn.out = saved
		return "", err
	}
	fn.emit(&lsl.OpStmt{Dst: res, Op: lsl.OpIdent, Args: []lsl.Reg{ev}})
	elseBody := body

	fn.out = saved
	fn.emit(&lsl.BlockStmt{Tag: tag, Body: append(
		[]lsl.Stmt{&lsl.BlockStmt{Tag: tag + ".else", Body: thenBody}},
		elseBody...,
	)})
	return res, nil
}

// addr translates an lvalue expression to a register holding its
// address.
func (fn *fnCtx) addr(e cparse.Expr) (lsl.Reg, error) {
	switch e := e.(type) {
	case *cparse.Ident:
		if _, ok := fn.lookup(e.Name); ok {
			return "", errAt(e.Pos, "cannot take the address of local variable %q", e.Name)
		}
		if g, ok := fn.u.Prog.GlobalByName(e.Name); ok {
			return fn.emitConst(lsl.Ptr(g.Base), e.Name+".addr"), nil
		}
		return "", errAt(e.Pos, "undefined identifier %q", e.Name)

	case *cparse.UnaryExpr:
		if e.Op == "*" {
			return fn.expr(e.X)
		}
		return "", errAt(e.Pos, "not an lvalue: unary %q", e.Op)

	case *cparse.MemberExpr:
		var base lsl.Reg
		var baseType cparse.Type
		var err error
		if e.Arrow {
			base, err = fn.expr(e.X)
			if err != nil {
				return "", err
			}
			pt, err := fn.typeOf(e.X)
			if err != nil {
				return "", errAt(e.Pos, "%v", err)
			}
			baseType, err = fn.u.Env.Elem(pt)
			if err != nil {
				return "", errAt(e.Pos, "-> on non-pointer: %v", err)
			}
		} else {
			base, err = fn.addr(e.X)
			if err != nil {
				return "", err
			}
			baseType, err = fn.typeOf(e.X)
			if err != nil {
				return "", errAt(e.Pos, "%v", err)
			}
		}
		layout, err := fn.u.Env.StructOf(baseType)
		if err != nil {
			return "", errAt(e.Pos, "member access on non-struct: %v", err)
		}
		idx, ok := layout.Index[e.Name]
		if !ok {
			return "", errAt(e.Pos, "struct %s has no field %q", layout.Tag, e.Name)
		}
		return fn.emitOp(lsl.OpField, e.Name+".addr", int64(idx), base), nil

	case *cparse.IndexExpr:
		// Arrays are global objects or struct fields; pointers-to-array
		// decay to the same component form.
		var base lsl.Reg
		var err error
		switch x := e.X.(type) {
		case *cparse.Ident:
			if _, isLocal := fn.lookup(x.Name); isLocal {
				base, err = fn.expr(x) // pointer local
			} else {
				base, err = fn.addr(x) // global array object
			}
		case *cparse.MemberExpr:
			base, err = fn.addr(x)
		default:
			base, err = fn.expr(x)
		}
		if err != nil {
			return "", err
		}
		idx, err := fn.expr(e.Index)
		if err != nil {
			return "", err
		}
		return fn.emitOp(lsl.OpIndex, "idx.addr", 0, base, idx), nil

	case *cparse.CastExpr:
		return fn.addr(e.X)
	}
	return "", errAt(e.ExprPos(), "not an lvalue: %T", e)
}

// assign translates an assignment, returning the value register.
func (fn *fnCtx) assign(e *cparse.AssignExpr) (lsl.Reg, error) {
	rhs, err := fn.expr(e.Rhs)
	if err != nil {
		return "", err
	}
	if e.Op != "=" {
		cur, err := fn.readLvalue(e.Lhs)
		if err != nil {
			return "", err
		}
		op := lsl.OpAdd
		if e.Op == "-=" {
			op = lsl.OpSub
		}
		rhs = fn.emitOp(op, "upd", 0, cur, rhs)
	}
	if err := fn.writeLvalue(e.Lhs, rhs); err != nil {
		return "", err
	}
	return rhs, nil
}

func (fn *fnCtx) incDec(e *cparse.IncDecExpr) (lsl.Reg, error) {
	cur, err := fn.readLvalue(e.X)
	if err != nil {
		return "", err
	}
	one := fn.emitConst(lsl.Int(1), "one")
	op := lsl.OpAdd
	if e.Op == "--" {
		op = lsl.OpSub
	}
	upd := fn.emitOp(op, "incdec", 0, cur, one)
	if err := fn.writeLvalue(e.X, upd); err != nil {
		return "", err
	}
	// Both forms are used only as statements in the study set; return
	// the updated value.
	return upd, nil
}

func (fn *fnCtx) readLvalue(e cparse.Expr) (lsl.Reg, error) {
	if id, ok := e.(*cparse.Ident); ok {
		if v, ok := fn.lookup(id.Name); ok {
			return v.reg, nil
		}
	}
	return fn.expr(e)
}

func (fn *fnCtx) writeLvalue(e cparse.Expr, val lsl.Reg) error {
	if id, ok := e.(*cparse.Ident); ok {
		if v, ok := fn.lookup(id.Name); ok {
			fn.emit(&lsl.OpStmt{Dst: v.reg, Op: lsl.OpIdent, Args: []lsl.Reg{val}})
			return nil
		}
	}
	addr, err := fn.addr(e)
	if err != nil {
		return err
	}
	fn.emit(&lsl.StoreStmt{Addr: addr, Src: val})
	return nil
}

// call translates a function call. Special functions become dedicated
// LSL statements; everything else becomes a CallStmt that the unroller
// later inlines.
func (fn *fnCtx) call(e *cparse.CallExpr, needValue bool) (lsl.Reg, error) {
	switch e.Fun {
	case "fence":
		if len(e.Args) != 1 {
			return "", errAt(e.Pos, "fence() takes one string argument")
		}
		s, ok := e.Args[0].(*cparse.StringLit)
		if !ok {
			return "", errAt(e.Pos, "fence() argument must be a string literal")
		}
		kind, err := lsl.ParseFenceKind(s.Val)
		if err != nil {
			return "", errAt(e.Pos, "%v", err)
		}
		fn.emit(&lsl.FenceStmt{Kind: kind})
		return "", nil

	case "assert":
		if len(e.Args) != 1 {
			return "", errAt(e.Pos, "assert() takes one argument")
		}
		cond, err := fn.expr(e.Args[0])
		if err != nil {
			return "", err
		}
		fn.emit(&lsl.AssertStmt{Cond: cond, Msg: assertMsg(e)})
		return "", nil

	case "assume", "__assume":
		if len(e.Args) != 1 {
			return "", errAt(e.Pos, "assume() takes one argument")
		}
		cond, err := fn.expr(e.Args[0])
		if err != nil {
			return "", err
		}
		fn.emit(&lsl.AssumeStmt{Cond: cond})
		return "", nil

	case "new_node", "malloc":
		dst := fn.fresh("new")
		fn.emit(&lsl.AllocStmt{Dst: dst, Site: fn.fd.Name})
		return dst, nil

	case "delete_node", "free":
		// Reclamation is a no-op in the bounded model: bases are never
		// reused, so freed memory stays distinguishable.
		for _, a := range e.Args {
			if _, err := fn.expr(a); err != nil {
				return "", err
			}
		}
		return "", nil

	case "nondet":
		dst := fn.fresh("nd")
		fn.emit(&lsl.HavocStmt{Dst: dst, Bits: 1})
		return dst, nil

	case "commit":
		// Commit-point annotation (the CAV'06 baseline method): a
		// store to the reserved __commit cell. Its memory-order
		// position defines the operation's serialization point; the
		// cell is private, so the store is invisible to the
		// algorithm itself.
		if _, ok := fn.u.Prog.GlobalByName(commitGlobal); !ok {
			fn.u.Prog.AddGlobal(commitGlobal, 1)
		}
		g, _ := fn.u.Prog.GlobalByName(commitGlobal)
		addr := fn.emitConst(lsl.Ptr(g.Base), "commit.addr")
		zero := fn.emitConst(lsl.Int(0), "commit.val")
		fn.emit(&lsl.StoreStmt{Addr: addr, Src: zero})
		return "", nil
	}

	var args []lsl.Reg
	for _, a := range e.Args {
		r, err := fn.expr(a)
		if err != nil {
			return "", err
		}
		args = append(args, r)
	}
	var rets []lsl.Reg
	var ret lsl.Reg
	if needValue {
		ret = fn.fresh(e.Fun + ".ret")
		rets = []lsl.Reg{ret}
	}
	fn.emit(&lsl.CallStmt{Proc: e.Fun, Args: args, Rets: rets})
	return ret, nil
}

func assertMsg(e *cparse.CallExpr) string {
	return "assert at " + e.Pos.String()
}

// typeOf computes the C type of an expression, which the translator
// needs to resolve struct field offsets.
func (fn *fnCtx) typeOf(e cparse.Expr) (cparse.Type, error) {
	switch e := e.(type) {
	case *cparse.Ident:
		if v, ok := fn.lookup(e.Name); ok {
			return v.typ, nil
		}
		if _, ok := fn.u.Env.Enums[e.Name]; ok {
			return &cparse.BaseType{Kind: cparse.Int}, nil
		}
		if t, ok := fn.u.GlobalTypes[e.Name]; ok {
			return t, nil
		}
		return nil, errAt(e.Pos, "undefined identifier %q", e.Name)
	case *cparse.IntLit:
		return &cparse.BaseType{Kind: cparse.Int}, nil
	case *cparse.CastExpr:
		return e.Type, nil
	case *cparse.UnaryExpr:
		switch e.Op {
		case "*":
			t, err := fn.typeOf(e.X)
			if err != nil {
				return nil, err
			}
			return fn.u.Env.Elem(t)
		case "&":
			t, err := fn.typeOf(e.X)
			if err != nil {
				return nil, err
			}
			return &cparse.PtrType{Elem: t}, nil
		default:
			return &cparse.BaseType{Kind: cparse.Int}, nil
		}
	case *cparse.BinaryExpr:
		return &cparse.BaseType{Kind: cparse.Int}, nil
	case *cparse.MemberExpr:
		var st cparse.Type
		var err error
		if e.Arrow {
			pt, err2 := fn.typeOf(e.X)
			if err2 != nil {
				return nil, err2
			}
			st, err = fn.u.Env.Elem(pt)
		} else {
			st, err = fn.typeOf(e.X)
		}
		if err != nil {
			return nil, err
		}
		layout, err := fn.u.Env.StructOf(st)
		if err != nil {
			return nil, err
		}
		idx, ok := layout.Index[e.Name]
		if !ok {
			return nil, errAt(e.Pos, "struct %s has no field %q", layout.Tag, e.Name)
		}
		return layout.Fields[idx].Type, nil
	case *cparse.IndexExpr:
		t, err := fn.typeOf(e.X)
		if err != nil {
			return nil, err
		}
		return fn.u.Env.Elem(t)
	case *cparse.CallExpr:
		if e.Fun == "new_node" || e.Fun == "malloc" {
			// Untyped allocation; callers only use it via member
			// access after assignment to a typed local.
			return &cparse.PtrType{Elem: &cparse.BaseType{Kind: cparse.Void}}, nil
		}
		return &cparse.BaseType{Kind: cparse.Int}, nil
	case *cparse.AssignExpr:
		return fn.typeOf(e.Lhs)
	case *cparse.CondExpr:
		return fn.typeOf(e.Then)
	}
	return nil, errAt(e.ExprPos(), "cannot type expression %T", e)
}

package ctrans

import (
	"os"
	"strings"
	"testing"

	"checkfence/internal/cparse"
	"checkfence/internal/interp"
	"checkfence/internal/lsl"
)

func TestNestedStructsAndFieldOffsets(t *testing.T) {
	u, m := run(t, `
typedef struct inner { int a; int b; } inner_t;
typedef struct outer { inner_t *left; inner_t *right; int tag; } outer_t;
extern inner_t *new_node();
outer_t o;
void build() {
    o.left = new_node();
    o.right = new_node();
    o.left->a = 1;
    o.left->b = 2;
    o.right->a = 3;
    o.tag = 9;
}
int sum() { return o.left->a + o.left->b + o.right->a; }`)
	if _, err := m.Call("build"); err != nil {
		t.Fatal(err)
	}
	if got := callInt(t, m, "sum"); got != 6 {
		t.Errorf("sum = %d", got)
	}
	// The tag field sits at offset 2 of the global.
	g, _ := u.Prog.GlobalByName("o")
	if v := m.Mem[lsl.LocOf(lsl.Ptr(g.Base, 2))]; !v.Equal(lsl.Int(9)) {
		t.Errorf("o.tag = %v", v)
	}
}

func TestAddressOfField(t *testing.T) {
	_, m := run(t, `
typedef struct pair { int a; int b; } pair_t;
pair_t p;
void setThrough(int *loc, int v) { *loc = v; }
void go() { setThrough(&p.b, 5); }
int readB() { return p.b; }`)
	if _, err := m.Call("go"); err != nil {
		t.Fatal(err)
	}
	if got := callInt(t, m, "readB"); got != 5 {
		t.Errorf("p.b = %d", got)
	}
}

func TestWhileWithCallInCondition(t *testing.T) {
	_, m := run(t, `
int n;
int dec() { n = n - 1; return n; }
int drain(int start) {
    n = start;
    int c = 0;
    while (dec() > 0) c = c + 1;
    return c;
}`)
	if got := callInt(t, m, "drain", lsl.Int(4)); got != 3 {
		t.Errorf("drain(4) = %d", got)
	}
}

func TestAtomicWithBreakOut(t *testing.T) {
	// A return inside an atomic block must leave the function (the
	// CAS of Fig. 6 relies on this).
	_, m := run(t, `
int f(int x) {
    atomic {
        if (x > 0) return 1;
    }
    return 2;
}`)
	if got := callInt(t, m, "f", lsl.Int(5)); got != 1 {
		t.Errorf("f(5) = %d", got)
	}
	if got := callInt(t, m, "f", lsl.Int(0)); got != 2 {
		t.Errorf("f(0) = %d", got)
	}
}

func TestVoidFunctionAndIgnoredResult(t *testing.T) {
	_, m := run(t, `
int x;
void setx(int v) { x = v; }
int usesVoid() { setx(3); return x; }
int callsAndIgnores() { probe(); return 1; }
int probe() { x = 7; return 99; }`)
	if got := callInt(t, m, "usesVoid"); got != 3 {
		t.Errorf("usesVoid = %d", got)
	}
	if got := callInt(t, m, "callsAndIgnores"); got != 1 {
		t.Errorf("callsAndIgnores = %d", got)
	}
}

func TestCommitBuiltinEmitsStore(t *testing.T) {
	u, m := run(t, `
extern void commit();
void op() { commit(); }`)
	g, ok := u.Prog.GlobalByName(CommitGlobal)
	if !ok {
		t.Fatal("commit() must create the reserved cell")
	}
	if _, err := m.Call("op"); err != nil {
		t.Fatal(err)
	}
	if _, written := m.Mem[lsl.LocOf(lsl.Ptr(g.Base))]; !written {
		t.Error("commit() must store to the reserved cell")
	}
}

func TestNondetBuiltin(t *testing.T) {
	_, m := run(t, `int coin() { return nondet(); }`)
	m.Oracle = func(bits int) int64 { return 1 }
	if got := callInt(t, m, "coin"); got != 1 {
		t.Errorf("coin = %d", got)
	}
}

func TestGotoUnsupported(t *testing.T) {
	file, err := cparse.Parse(`void f() { goto done; done: return; }`)
	if err == nil {
		if _, err2 := Translate(file); err2 == nil {
			t.Skip("goto unexpectedly supported")
		}
	}
	// Either parse or translate must reject it; both are acceptable.
}

func TestUseAfterScopeIsError(t *testing.T) {
	file, err := cparse.Parse(`
void f() {
    { int x = 1; }
    int y = x;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(file); err == nil {
		t.Error("use of out-of-scope local must fail")
	}
}

func TestDeepExpressionNesting(t *testing.T) {
	_, m := run(t, `
int f(int a) { return ((((a + 1) * 2) - 3) + ((a - 1) * (a + 1))); }`)
	// a=4: ((5*2)-3) + (3*5) = 7 + 15 = 22
	if got := callInt(t, m, "f", lsl.Int(4)); got != 22 {
		t.Errorf("f(4) = %d", got)
	}
}

func TestStudySetTranslates(t *testing.T) {
	// Every bundled implementation must parse and translate; spot
	// check instruction counts are nonzero and procedures exist.
	srcs := map[string][]string{
		"msn":      {"init_queue", "enqueue", "dequeue", "cas"},
		"ms2":      {"init_queue", "enqueue", "dequeue", "lock", "unlock"},
		"lazylist": {"init_set", "add", "remove", "contains"},
		"harris":   {"init_set", "add", "remove", "contains", "cas_next"},
		"snark":    {"init_deque", "pushLeft", "pushRight", "popLeft", "popRight", "dcas"},
	}
	for name, procs := range srcs {
		t.Run(name, func(t *testing.T) {
			src := implSource(t, name)
			file, err := cparse.Parse(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			u, err := Translate(file)
			if err != nil {
				t.Fatalf("translate: %v", err)
			}
			for _, p := range procs {
				proc, ok := u.Prog.Procs[p]
				if !ok {
					t.Errorf("missing procedure %s", p)
					continue
				}
				if lsl.CountStmts(proc.Body) == 0 {
					t.Errorf("procedure %s is empty", p)
				}
			}
		})
	}
}

// implSource loads a bundled implementation source through the
// harness-test fixture files without importing harness (avoiding an
// import cycle is not needed here — ctrans does not import harness —
// but keeping this package self-contained is simpler).
func implSource(t *testing.T, name string) string {
	t.Helper()
	// Minimal re-implementation of the registry's source assembly.
	read := func(f string) string {
		b, err := os.ReadFile("../harness/testdata/" + f)
		if err != nil {
			t.Fatalf("read %s: %v", f, err)
		}
		return string(b)
	}
	syncSrc := read("sync.c")
	switch name {
	case "msn":
		return syncSrc + read("msn.c")
	case "ms2":
		return syncSrc + read("ms2.c")
	case "lazylist":
		return syncSrc + read("lazylist.c")
	case "harris":
		return syncSrc + read("harris.c")
	case "snark":
		return syncSrc + read("snark.c")
	}
	t.Fatalf("unknown impl %s", name)
	return ""
}

func TestSnarkSequentialBehavior(t *testing.T) {
	// The snark deque's bugs are concurrency bugs; sequentially it
	// must behave like a deque.
	src := implSource(t, "snark")
	file, err := cparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Translate(file)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(u.Prog)
	g, _ := u.Prog.GlobalByName("dq")
	dq := lsl.Ptr(g.Base)
	if _, err := m.Call("init_deque", dq); err != nil {
		t.Fatal(err)
	}
	cell := u.Prog.AddGlobal("cell", 1)
	pcell := lsl.Ptr(cell.Base)

	mustPush := func(fn string, v int64) {
		t.Helper()
		if _, err := m.Call(fn, dq, lsl.Int(v)); err != nil {
			t.Fatalf("%s(%d): %v", fn, v, err)
		}
	}
	mustPop := func(fn string, wantOK bool, want int64) {
		t.Helper()
		res, err := m.Call(fn, dq, pcell)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		ok := res[0].Equal(lsl.Int(1))
		if ok != wantOK {
			t.Fatalf("%s: ok=%v want %v", fn, ok, wantOK)
		}
		if wantOK {
			if v := m.Mem[lsl.LocOf(pcell)]; !v.Equal(lsl.Int(want)) {
				t.Fatalf("%s: value=%v want %d", fn, v, want)
			}
		}
	}

	mustPop("popLeft", false, 0)
	mustPush("pushRight", 1) // [1]
	mustPush("pushRight", 0) // [1 0]
	mustPush("pushLeft", 1)  // [1 1 0]
	mustPop("popRight", true, 0)
	mustPop("popLeft", true, 1)
	mustPop("popLeft", true, 1)
	mustPop("popRight", false, 0)
	// Refill after empty.
	mustPush("pushLeft", 0)
	mustPop("popRight", true, 0)
}

func TestErrorsCarryPositions(t *testing.T) {
	file, err := cparse.Parse(`
void f() {
    unknown = 1;
}`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Translate(file)
	if err == nil || !strings.Contains(err.Error(), "3:") {
		t.Errorf("error must carry the source line: %v", err)
	}
}

package ctrans

import (
	"fmt"

	"checkfence/internal/cparse"
	"checkfence/internal/lsl"
)

// Unit is the result of translating a translation unit.
type Unit struct {
	Prog *lsl.Program
	Env  *TypeEnv
	// GlobalTypes maps global variable names to their C types, used by
	// the harness to type operation arguments and by traces to render
	// addresses.
	GlobalTypes map[string]cparse.Type
}

// Translate lowers a parsed C file to an LSL program.
func Translate(file *cparse.File) (*Unit, error) {
	env, err := NewTypeEnv(file)
	if err != nil {
		return nil, err
	}
	u := &Unit{
		Prog:        lsl.NewProgram(),
		Env:         env,
		GlobalTypes: map[string]cparse.Type{},
	}
	// Globals first so function bodies can reference them.
	for _, d := range file.Flatten() {
		if v, ok := d.(*cparse.VarDecl); ok {
			u.Prog.AddGlobal(v.Name, 1)
			u.GlobalTypes[v.Name] = v.Type
		}
	}
	for _, d := range file.Flatten() {
		fd, ok := d.(*cparse.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		proc, err := u.translateFunc(fd)
		if err != nil {
			return nil, err
		}
		u.Prog.AddProc(proc)
	}
	return u, nil
}

// fnCtx is the per-function translation state.
type fnCtx struct {
	u       *Unit
	fd      *cparse.FuncDecl
	nextReg int
	nextTag int
	scopes  []map[string]localVar
	// loopStack tracks (continueTag, breakTag) of enclosing C loops.
	loopStack []loopTags
	exitTag   string
	retReg    lsl.Reg
	out       *[]lsl.Stmt
}

type localVar struct {
	reg lsl.Reg
	typ cparse.Type
}

type loopTags struct {
	continueTag string // break to this tag implements C `continue`
	breakTag    string // break to this tag implements C `break`
}

func (u *Unit) translateFunc(fd *cparse.FuncDecl) (*lsl.Proc, error) {
	fn := &fnCtx{u: u, fd: fd}
	proc := &lsl.Proc{Name: fd.Name}

	fn.pushScope()
	for _, p := range fd.Params {
		reg := fn.fresh(p.Name)
		proc.Params = append(proc.Params, reg)
		fn.declare(p.Name, reg, p.Type)
	}
	isVoid := false
	if bt, ok := fd.Ret.(*cparse.BaseType); ok && bt.Kind == cparse.Void {
		isVoid = true
	}
	if !isVoid {
		fn.retReg = fn.fresh("ret")
		proc.Results = []lsl.Reg{fn.retReg}
	}

	fn.exitTag = fn.freshTag("fnexit")
	var body []lsl.Stmt
	fn.out = &body
	if err := fn.stmt(fd.Body); err != nil {
		return nil, err
	}
	proc.Body = []lsl.Stmt{&lsl.BlockStmt{Tag: fn.exitTag, Body: body}}
	return proc, nil
}

func (fn *fnCtx) fresh(hint string) lsl.Reg {
	fn.nextReg++
	if hint == "" {
		hint = "t"
	}
	return lsl.Reg(fmt.Sprintf("%s.%s%d", fn.fd.Name, hint, fn.nextReg))
}

func (fn *fnCtx) freshTag(hint string) string {
	fn.nextTag++
	return fmt.Sprintf("%s.%s%d", fn.fd.Name, hint, fn.nextTag)
}

func (fn *fnCtx) pushScope() { fn.scopes = append(fn.scopes, map[string]localVar{}) }
func (fn *fnCtx) popScope()  { fn.scopes = fn.scopes[:len(fn.scopes)-1] }

func (fn *fnCtx) declare(name string, reg lsl.Reg, typ cparse.Type) {
	fn.scopes[len(fn.scopes)-1][name] = localVar{reg: reg, typ: typ}
}

func (fn *fnCtx) lookup(name string) (localVar, bool) {
	for i := len(fn.scopes) - 1; i >= 0; i-- {
		if v, ok := fn.scopes[i][name]; ok {
			return v, true
		}
	}
	return localVar{}, false
}

func (fn *fnCtx) emit(s lsl.Stmt) { *fn.out = append(*fn.out, s) }

func (fn *fnCtx) emitConst(v lsl.Value, hint string) lsl.Reg {
	r := fn.fresh(hint)
	fn.emit(&lsl.ConstStmt{Dst: r, Val: v})
	return r
}

func (fn *fnCtx) emitTrue() lsl.Reg { return fn.emitConst(lsl.Int(1), "true") }

func (fn *fnCtx) emitOp(op lsl.Op, hint string, imm int64, args ...lsl.Reg) lsl.Reg {
	r := fn.fresh(hint)
	fn.emit(&lsl.OpStmt{Dst: r, Op: op, Args: args, Imm: imm})
	return r
}

func errAt(pos cparse.Pos, format string, args ...interface{}) error {
	return fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
}

// stmt translates one C statement.
func (fn *fnCtx) stmt(s cparse.Stmt) error {
	switch s := s.(type) {
	case *cparse.EmptyStmt:
		return nil

	case *cparse.BlockStmt:
		fn.pushScope()
		defer fn.popScope()
		for _, sub := range s.List {
			if err := fn.stmt(sub); err != nil {
				return err
			}
		}
		return nil

	case *cparse.DeclGroup:
		for _, d := range s.List {
			if err := fn.stmt(d); err != nil {
				return err
			}
		}
		return nil

	case *cparse.DeclStmt:
		reg := fn.fresh(s.Name)
		fn.declare(s.Name, reg, s.Type)
		if s.Init != nil {
			v, err := fn.expr(s.Init)
			if err != nil {
				return err
			}
			fn.emit(&lsl.OpStmt{Dst: reg, Op: lsl.OpIdent, Args: []lsl.Reg{v}})
		}
		return nil

	case *cparse.ExprStmt:
		_, err := fn.exprOrVoidCall(s.X)
		return err

	case *cparse.IfStmt:
		return fn.ifStmt(s)

	case *cparse.WhileStmt:
		return fn.whileStmt(s)

	case *cparse.ForStmt:
		return fn.forStmt(s)

	case *cparse.ReturnStmt:
		if s.X != nil {
			if fn.retReg == "" {
				return errAt(s.Pos, "return with value in void function %s", fn.fd.Name)
			}
			v, err := fn.expr(s.X)
			if err != nil {
				return err
			}
			fn.emit(&lsl.OpStmt{Dst: fn.retReg, Op: lsl.OpIdent, Args: []lsl.Reg{v}})
		}
		fn.emit(&lsl.BreakStmt{Cond: fn.emitTrue(), Tag: fn.exitTag})
		return nil

	case *cparse.BreakStmt:
		if len(fn.loopStack) == 0 {
			return errAt(s.Pos, "break outside loop")
		}
		fn.emit(&lsl.BreakStmt{Cond: fn.emitTrue(), Tag: fn.loopStack[len(fn.loopStack)-1].breakTag})
		return nil

	case *cparse.ContinueStmt:
		if len(fn.loopStack) == 0 {
			return errAt(s.Pos, "continue outside loop")
		}
		fn.emit(&lsl.BreakStmt{Cond: fn.emitTrue(), Tag: fn.loopStack[len(fn.loopStack)-1].continueTag})
		return nil

	case *cparse.AtomicStmt:
		var body []lsl.Stmt
		saved := fn.out
		fn.out = &body
		err := fn.stmt(s.Body)
		fn.out = saved
		if err != nil {
			return err
		}
		fn.emit(&lsl.AtomicStmt{Body: body})
		return nil
	}
	return errAt(s.StmtPos(), "unsupported statement %T", s)
}

func (fn *fnCtx) ifStmt(s *cparse.IfStmt) error {
	cond, err := fn.expr(s.Cond)
	if err != nil {
		return err
	}
	notCond := fn.emitOp(lsl.OpNot, "nc", 0, cond)

	endTag := fn.freshTag("ifend")
	elseTag := fn.freshTag("ifelse")

	var thenBody []lsl.Stmt
	saved := fn.out
	fn.out = &thenBody
	thenBody = append(thenBody, &lsl.BreakStmt{Cond: notCond, Tag: elseTag})
	err = fn.stmt(s.Then)
	if err != nil {
		fn.out = saved
		return err
	}
	if s.Else != nil {
		thenBody = append(thenBody, &lsl.BreakStmt{Cond: fn.emitTrue(), Tag: endTag})
	}
	fn.out = saved

	if s.Else == nil {
		fn.emit(&lsl.BlockStmt{Tag: elseTag, Body: thenBody})
		return nil
	}
	var elseBody []lsl.Stmt
	fn.out = &elseBody
	err = fn.stmt(s.Else)
	fn.out = saved
	if err != nil {
		return err
	}
	fn.emit(&lsl.BlockStmt{Tag: endTag, Body: append(
		[]lsl.Stmt{&lsl.BlockStmt{Tag: elseTag, Body: thenBody}},
		elseBody...,
	)})
	return nil
}

func (fn *fnCtx) whileStmt(s *cparse.WhileStmt) error {
	loopTag := fn.freshTag("loop")
	contTag := fn.freshTag("cont")

	var body []lsl.Stmt
	saved := fn.out
	fn.out = &body

	emitBody := func() error {
		var inner []lsl.Stmt
		fn.out = &inner
		fn.loopStack = append(fn.loopStack, loopTags{continueTag: contTag, breakTag: loopTag})
		err := fn.stmt(s.Body)
		fn.loopStack = fn.loopStack[:len(fn.loopStack)-1]
		fn.out = &body
		if err != nil {
			return err
		}
		body = append(body, &lsl.BlockStmt{Tag: contTag, Body: inner})
		return nil
	}

	if s.DoWhile {
		if err := emitBody(); err != nil {
			fn.out = saved
			return err
		}
		cond, err := fn.expr(s.Cond)
		if err != nil {
			fn.out = saved
			return err
		}
		body = append(body, &lsl.ContinueStmt{Cond: cond, Tag: loopTag})
	} else {
		cond, err := fn.expr(s.Cond)
		if err != nil {
			fn.out = saved
			return err
		}
		notCond := fn.emitOp(lsl.OpNot, "nc", 0, cond)
		body = append(body, &lsl.BreakStmt{Cond: notCond, Tag: loopTag})
		if err := emitBody(); err != nil {
			fn.out = saved
			return err
		}
		body = append(body, &lsl.ContinueStmt{Cond: fn.emitTrue(), Tag: loopTag})
	}
	fn.out = saved
	fn.emit(&lsl.BlockStmt{Tag: loopTag, Loop: lsl.BoundedLoop, Body: body})
	return nil
}

func (fn *fnCtx) forStmt(s *cparse.ForStmt) error {
	fn.pushScope()
	defer fn.popScope()
	if s.Init != nil {
		if err := fn.stmt(s.Init); err != nil {
			return err
		}
	}
	loopTag := fn.freshTag("forloop")
	contTag := fn.freshTag("forcont")

	var body []lsl.Stmt
	saved := fn.out
	fn.out = &body

	if s.Cond != nil {
		cond, err := fn.expr(s.Cond)
		if err != nil {
			fn.out = saved
			return err
		}
		notCond := fn.emitOp(lsl.OpNot, "nc", 0, cond)
		body = append(body, &lsl.BreakStmt{Cond: notCond, Tag: loopTag})
	}
	var inner []lsl.Stmt
	fn.out = &inner
	fn.loopStack = append(fn.loopStack, loopTags{continueTag: contTag, breakTag: loopTag})
	err := fn.stmt(s.Body)
	fn.loopStack = fn.loopStack[:len(fn.loopStack)-1]
	fn.out = &body
	if err != nil {
		fn.out = saved
		return err
	}
	body = append(body, &lsl.BlockStmt{Tag: contTag, Body: inner})
	if s.Post != nil {
		if _, err := fn.exprOrVoidCall(s.Post); err != nil {
			fn.out = saved
			return err
		}
	}
	body = append(body, &lsl.ContinueStmt{Cond: fn.emitTrue(), Tag: loopTag})
	fn.out = saved
	fn.emit(&lsl.BlockStmt{Tag: loopTag, Loop: lsl.BoundedLoop, Body: body})
	return nil
}

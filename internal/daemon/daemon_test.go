package daemon

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/faultinject"
	"checkfence/internal/fleet"
	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
)

// postBatch submits a batch and returns the parsed NDJSON lines.
func postBatch(t *testing.T, ts *httptest.Server, body string) (BatchLine, []ResultLine, DoneLine) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := readAll(resp)
		t.Fatalf("POST /v1/check: %s: %s", resp.Status, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	var batch BatchLine
	var results []ResultLine
	var done DoneLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch probe.Type {
		case "batch":
			if err := json.Unmarshal(line, &batch); err != nil {
				t.Fatal(err)
			}
		case "result":
			var r ResultLine
			if err := json.Unmarshal(line, &r); err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
		case "done":
			if err := json.Unmarshal(line, &done); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unknown line type %q", probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if batch.ID == "" || done.Type != "done" {
		t.Fatalf("stream missing batch header or done footer: %+v %+v", batch, done)
	}
	return batch, results, done
}

func readAll(resp *http.Response) (string, error) {
	var b bytes.Buffer
	_, err := b.ReadFrom(resp.Body)
	return b.String(), err
}

func scrapeMetric(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := readAll(resp)
	var total int64
	found := false
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "# ") {
			continue
		}
		rest := strings.TrimPrefix(line, name)
		// Accept both bare and labeled series ("name 3", `name{l="v"} 3`).
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue
		}
		fields := strings.Fields(line)
		var v int64
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%d", &v); err != nil {
			t.Fatalf("bad metric line %q: %v", line, err)
		}
		total += v
		found = true
	}
	if !found {
		t.Fatalf("metric %s not found in:\n%s", name, body)
	}
	return total
}

// TestBatchMatchesDirect is the service's core contract: HTTP verdicts
// are identical to direct library checks, across a multi-model sweep.
func TestBatchMatchesDirect(t *testing.T) {
	srv := NewServer(Config{Parallelism: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	models := []string{"sc", "tso"}
	_, results, done := postBatch(t, ts, `{
		"jobs": [{"program": {"name": "msn"}, "test": "T0", "models": ["sc", "tso"]}]
	}`)
	if len(results) != len(models) {
		t.Fatalf("got %d results, want %d", len(results), len(models))
	}
	if done.Errors != 0 {
		t.Fatalf("done reports %d errors", done.Errors)
	}
	for _, r := range results {
		if r.Error != "" {
			t.Fatalf("job %s errored: %s", r.ID, r.Error)
		}
		m, err := memmodel.Parse(r.Model)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := core.Check("msn", "T0", core.Options{Model: m})
		if err != nil {
			t.Fatal(err)
		}
		if r.Verdict != direct.Verdict.String() || r.Pass != direct.Pass {
			t.Errorf("%s on %s: daemon %s/%v, direct %s/%v",
				r.Impl, r.Model, r.Verdict, r.Pass, direct.Verdict.String(), direct.Pass)
		}
	}
	if got := scrapeMetric(t, ts, "checkfenced_jobs_total"); got != int64(len(models)) {
		t.Errorf("jobs_total = %d, want %d", got, len(models))
	}
	if scrapeMetric(t, ts, "checkfenced_batches_total") != 1 {
		t.Error("batches_total != 1")
	}
	if scrapeMetric(t, ts, "checkfenced_inflight_jobs") != 0 {
		t.Error("inflight_jobs != 0 after batch completion")
	}
}

// TestFailVerdictCarriesTrace: a buggy implementation's counterexample
// rides the wire.
func TestFailVerdictCarriesTrace(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, results, _ := postBatch(t, ts, `{
		"jobs": [{"program": {"name": "msn-nofence"}, "test": "T0", "model": "relaxed"}]
	}`)
	r := results[0]
	if r.Verdict != "fail" || r.Pass {
		t.Fatalf("verdict = %s, want fail", r.Verdict)
	}
	if r.Cex == "" {
		t.Error("fail verdict without a counterexample trace")
	}
}

// TestConcurrentClientsSingleFlight: two clients concurrently
// requesting the same mining problem must trigger exactly one miner —
// the shared-tier hit shows up in /metrics.
func TestConcurrentClientsSingleFlight(t *testing.T) {
	srv := NewServer(Config{Parallelism: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `{"jobs": [{"program": {"name": "ms2"}, "test": "T0", "model": "sc"}]}`
	var wg sync.WaitGroup
	errs := make([]string, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err.Error()
				return
			}
			defer resp.Body.Close()
			raw, _ := readAll(resp)
			if resp.StatusCode != http.StatusOK {
				errs[i] = resp.Status + ": " + raw
			} else if !strings.Contains(raw, `"verdict":"pass"`) {
				errs[i] = "no pass verdict in: " + raw
			}
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Fatalf("client %d: %s", i, e)
		}
	}
	if misses := scrapeMetric(t, ts, "checkfenced_spec_cache_misses_total"); misses != 1 {
		t.Errorf("spec_cache_misses_total = %d, want exactly 1 miner run", misses)
	}
	if hits := scrapeMetric(t, ts, "checkfenced_spec_cache_hits_total"); hits < 1 {
		t.Errorf("spec_cache_hits_total = %d, want >= 1 shared-tier hit", hits)
	}
}

// TestPollPath: results stay fetchable after the batch stream closed.
func TestPollPath(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	batch, results, _ := postBatch(t, ts, `{
		"jobs": [{"program": {"name": "msn"}, "test": "T0", "model": "sc"}]
	}`)
	if len(batch.Jobs) != 1 {
		t.Fatalf("batch jobs = %v", batch.Jobs)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + batch.Jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Result == nil {
		t.Fatalf("job status = %+v", st)
	}
	if st.Result.Verdict != results[0].Verdict {
		t.Errorf("poll verdict %s != streamed %s", st.Result.Verdict, results[0].Verdict)
	}

	if resp, err := http.Get(ts.URL + "/v1/jobs/nope"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job: %s", resp.Status)
		}
		resp.Body.Close()
	}
}

// TestInlineProgram: a program shipped in the request body (not the
// registry) verifies like its bundled twin.
func TestInlineProgram(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	impl, err := coreImpl("msn")
	if err != nil {
		t.Fatal(err)
	}
	req := map[string]any{
		"jobs": []map[string]any{{
			"program": impl,
			"test":    "T0",
			"model":   "sc",
		}},
	}
	body, _ := json.Marshal(req)
	_, results, _ := postBatch(t, ts, string(body))
	if results[0].Error != "" {
		t.Fatalf("inline job errored: %s", results[0].Error)
	}
	if results[0].Verdict != "pass" {
		t.Errorf("inline msn on sc = %s, want pass", results[0].Verdict)
	}
	if results[0].Impl != "wire-msn" {
		t.Errorf("impl label = %s", results[0].Impl)
	}
}

// coreImpl renders a bundled implementation as an inline wire program.
func coreImpl(name string) (map[string]any, error) {
	impl, err := harness.Get(name)
	if err != nil {
		return nil, err
	}
	ops := make([]map[string]any, 0, len(impl.Ops))
	for _, op := range impl.Ops {
		ops = append(ops, map[string]any{
			"mnemonic": op.Mnemonic, "func": op.Func,
			"num_args": op.NumArgs, "has_ret": op.HasRet, "has_out": op.HasOut,
		})
	}
	return map[string]any{
		"name":      "wire-" + name,
		"source":    impl.Source,
		"init_func": impl.InitFunc,
		"object":    impl.Obj,
		"kind":      impl.Kind,
		"ops":       ops,
	}, nil
}

// TestShutdownDrains: Shutdown completes in-flight batches and
// rejects new ones with 503.
func TestShutdownDrains(t *testing.T) {
	srv := NewServer(Config{Parallelism: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type outcome struct {
		done DoneLine
		errs int
	}
	ch := make(chan outcome, 1)
	go func() {
		_, results, done := postBatch(t, ts, `{
			"jobs": [{"program": {"name": "msn"}, "test": "T0", "models": ["sc", "tso"]}]
		}`)
		n := 0
		for _, r := range results {
			if r.Error != "" {
				n++
			}
		}
		ch <- outcome{done, n}
	}()

	// Give the batch a moment to be admitted, then drain with a
	// generous window: the batch must finish cleanly.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	out := <-ch
	if out.errs != 0 || out.done.Errors != 0 {
		t.Errorf("drained batch reported errors: %+v", out)
	}

	resp, err := http.Post(ts.URL+"/v1/check", "application/json",
		strings.NewReader(`{"jobs":[{"program":{"name":"msn"},"test":"T0","model":"sc"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: %s, want 503", resp.Status)
	}
}

// TestRestartResumesCheckpoint is the kill-and-restart scenario: a
// mine interrupted in one daemon process leaves a .part checkpoint
// that a fresh process on the same cache directory resumes — not
// quarantines — with the resume surfaced through /metrics.
func TestRestartResumesCheckpoint(t *testing.T) {
	dir := t.TempDir()

	// Process 1: the mine is cut off deterministically by an
	// iteration cap standing in for a mid-mine kill (the checkpoint
	// write path is identical: mineResumable stores the partial set).
	srv1 := NewServer(Config{CacheDir: dir})
	ts1 := httptest.NewServer(srv1)
	_, results, done := postBatch(t, ts1, `{
		"jobs": [{"program": {"name": "msn"}, "test": "T0", "model": "sc",
		          "max_mine_iterations": 1}]
	}`)
	if done.Errors != 1 || results[0].Error == "" {
		t.Fatalf("capped mine should error: %+v", results)
	}
	if !strings.Contains(results[0].Error, "iteration limit") {
		t.Fatalf("unexpected error: %s", results[0].Error)
	}
	ts1.Close()

	parts, err := filepath.Glob(filepath.Join(dir, "*.part"))
	if err != nil || len(parts) != 1 {
		t.Fatalf("want exactly one .part checkpoint, got %v (%v)", parts, err)
	}

	// Process 2: fresh server, same cache directory.
	srv2 := NewServer(Config{CacheDir: dir})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	_, results2, done2 := postBatch(t, ts2, `{
		"jobs": [{"program": {"name": "msn"}, "test": "T0", "model": "sc"}]
	}`)
	if done2.Errors != 0 {
		t.Fatalf("resumed mine errored: %+v", results2)
	}
	direct, err := core.Check("msn", "T0", core.Options{Model: memmodel.SequentialConsistency})
	if err != nil {
		t.Fatal(err)
	}
	if results2[0].Verdict != direct.Verdict.String() {
		t.Errorf("resumed verdict %s != direct %s", results2[0].Verdict, direct.Verdict.String())
	}
	if got := scrapeMetric(t, ts2, "checkfenced_spec_cache_resumed_total"); got < 1 {
		t.Errorf("spec_cache_resumed_total = %d, want >= 1", got)
	}
	if got := scrapeMetric(t, ts2, "checkfenced_spec_cache_corrupt_total"); got != 0 {
		t.Errorf("checkpoint was quarantined: corrupt_total = %d", got)
	}
	// The finished mine cleared its checkpoint.
	if parts, _ := filepath.Glob(filepath.Join(dir, "*.part")); len(parts) != 0 {
		t.Errorf("stale checkpoints after successful resume: %v", parts)
	}
}

// TestChaosCacheCorrupt: a corrupt disk entry under fault injection is
// quarantined and re-mined — the daemon still answers correctly and
// reports the quarantine in /metrics.
func TestChaosCacheCorrupt(t *testing.T) {
	dir := t.TempDir()

	// Prime the disk tier.
	srv1 := NewServer(Config{CacheDir: dir})
	ts1 := httptest.NewServer(srv1)
	postBatch(t, ts1, `{"jobs":[{"program":{"name":"msn"},"test":"T0","model":"sc"}]}`)
	ts1.Close()

	// Restart with CacheCorrupt armed: the disk load is corrupted,
	// quarantined, and the set re-mined.
	faults := &faultinject.Always{Sites: []faultinject.Site{faultinject.CacheCorrupt}}
	srv2 := NewServer(Config{CacheDir: dir, Faults: faults})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	_, results, done := postBatch(t, ts2, `{"jobs":[{"program":{"name":"msn"},"test":"T0","model":"sc"}]}`)
	if done.Errors != 0 {
		t.Fatalf("corrupt-cache batch errored: %+v", results)
	}
	if results[0].Verdict != "pass" {
		t.Errorf("verdict = %s, want pass", results[0].Verdict)
	}
	if got := scrapeMetric(t, ts2, "checkfenced_spec_cache_corrupt_total"); got < 1 {
		t.Errorf("corrupt_total = %d, want >= 1", got)
	}
	if bad, _ := filepath.Glob(filepath.Join(dir, "*.bad")); len(bad) == 0 {
		t.Error("no quarantined .bad file on disk")
	}
}

// TestBadRequests: malformed bodies and descriptions get 400s, not
// stream starts.
func TestBadRequests(t *testing.T) {
	srv := NewServer(Config{MaxBatchJobs: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		name, body string
	}{
		{"bad json", `{"jobs": [`},
		{"empty batch", `{"jobs": []}`},
		{"unknown model", `{"jobs":[{"program":{"name":"msn"},"test":"T0","model":"ppc"}]}`},
		{"unknown impl", `{"jobs":[{"program":{"name":"nope"},"test":"T0","model":"sc"}]}`},
		{"over batch cap", `{"jobs":[{"program":{"name":"msn"},"test":"T0","models":["sc","tso","pso"]}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s: %s, want 400", tc.name, resp.Status)
			}
		})
	}
}

// TestDeadlineClamp: the server-side MaxTimeout clamps client
// deadlines; a clamped job still runs (possibly to unknown).
func TestDeadlineClamp(t *testing.T) {
	srv := NewServer(Config{MaxTimeout: 30 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	_, results, _ := postBatch(t, ts, `{
		"jobs": [{"program": {"name": "msn"}, "test": "T0", "model": "sc", "timeout": "10h"}]
	}`)
	if results[0].Error != "" {
		t.Fatalf("clamped job errored: %s", results[0].Error)
	}
	if results[0].Verdict != "pass" {
		t.Errorf("verdict = %s", results[0].Verdict)
	}
}

// TestFleetModeMatchesDirect: the daemon in coordinator mode, with
// in-process fleet workers, must stream the same verdicts as the plain
// in-process daemon, and its /metrics must expose the fleet counters.
func TestFleetModeMatchesDirect(t *testing.T) {
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		CubeDepth:      1,
		Lease:          200 * time.Millisecond,
		BaseBackoff:    5 * time.Millisecond,
		PollRetryAfter: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := NewServer(Config{Fleet: coord})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	for _, id := range []string{"w1", "w2"} {
		w, err := fleet.NewWorker(fleet.WorkerConfig{
			ID: id, Local: coord, PollInterval: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wctx, wcancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			w.Run(wctx)
		}()
		defer func() { wcancel(); <-done }()
	}

	body := `{"jobs": [{"program": {"name": "msn"}, "test": "T0", "models": ["sc", "tso"]},
	                   {"program": {"name": "msn-nofence"}, "test": "T0", "model": "relaxed"}]}`
	_, results, done := postBatch(t, ts, body)
	if done.Errors != 0 {
		t.Fatalf("fleet batch had %d errors: %+v", done.Errors, results)
	}

	// Direct (non-fleet) daemon as the oracle.
	direct := NewServer(Config{})
	dts := httptest.NewServer(direct)
	defer dts.Close()
	defer direct.Shutdown(context.Background())
	_, want, _ := postBatch(t, dts, body)

	if len(results) != len(want) {
		t.Fatalf("fleet returned %d results, direct %d", len(results), len(want))
	}
	byIndex := func(rs []ResultLine) map[int]ResultLine {
		m := map[int]ResultLine{}
		for _, r := range rs {
			m[r.Index] = r
		}
		return m
	}
	got, oracle := byIndex(results), byIndex(want)
	for i, w := range oracle {
		g := got[i]
		if g.Verdict != w.Verdict || g.Pass != w.Pass || g.SeqBug != w.SeqBug {
			t.Errorf("job %d: fleet verdict %q (pass=%v) != direct %q (pass=%v)",
				i, g.Verdict, g.Pass, w.Verdict, w.Pass)
		}
	}

	if n := scrapeMetric(t, ts, "checkfenced_fleet_tasks_completed_total"); n == 0 {
		t.Fatal("fleet mode completed no distributed tasks")
	}
	scrapeMetric(t, ts, "checkfenced_fleet_tasks_dispatched_total")

	// The poll path records fleet verdicts too.
	for _, r := range results {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + r.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State != "done" || st.Result == nil || st.Result.Verdict != r.Verdict {
			t.Fatalf("poll record for %s = %+v, want done/%s", r.ID, st, r.Verdict)
		}
	}
}

// TestMaxInflightShedsLoad: a saturated admission gate must refuse the
// batch with 503 and a Retry-After hint, not queue it unboundedly.
func TestMaxInflightShedsLoad(t *testing.T) {
	srv := NewServer(Config{MaxInflight: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	// A 2-job batch exceeds the 1-job admission cap outright.
	resp, err := http.Post(ts.URL+"/v1/check", "application/json",
		strings.NewReader(`{"jobs": [{"program": {"name": "ms2"}, "test": "T0", "models": ["sc", "tso"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without a Retry-After hint")
	}
}

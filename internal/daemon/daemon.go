// Package daemon implements the checkfenced HTTP verification
// service: batch check submission with streamed NDJSON verdicts, a
// poll path for finished jobs, and Prometheus-format metrics. One
// process hosts one Server; batches from any number of clients share
// a single admission gate (core.Gate) bounding concurrent solver
// work, one spec cache (memory + content-addressed disk tier), and
// one metrics surface.
package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"checkfence/internal/core"
	"checkfence/internal/faultinject"
	"checkfence/internal/fleet"
	"checkfence/internal/job"
)

// Config tunes a Server. The zero value is usable: GOMAXPROCS-bounded
// gate, memory-only spec cache, no default deadline.
type Config struct {
	// Parallelism bounds concurrently running check units across ALL
	// in-flight batches (<= 0 means GOMAXPROCS).
	Parallelism int
	// CacheDir enables the shared on-disk observation-set tier.
	CacheDir string
	// DefaultTimeout applies to jobs that do not set their own.
	DefaultTimeout time.Duration
	// MaxTimeout clamps per-job deadlines (0 = unclamped).
	MaxTimeout time.Duration
	// MaxBatchJobs caps jobs per /v1/check request after model
	// expansion (0 = 256).
	MaxBatchJobs int
	// MaxBodyBytes caps request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// Faults arms deterministic fault injection on every batch (chaos
	// tests only).
	Faults faultinject.Faults
	// MaxInflight caps admitted-but-unfinished jobs across all batches;
	// a batch that would exceed it is refused with 503 and a
	// Retry-After hint instead of queueing unboundedly (0 = unlimited).
	MaxInflight int
	// Fleet, when non-nil, switches the daemon into coordinator mode:
	// checks are fanned out to fleet workers (CheckDistributed) instead
	// of solved in-process, the coordinator's lease API is mounted
	// under /fleet/v1/, and its fault-tolerance counters join /metrics.
	Fleet *fleet.Coordinator
}

func (c Config) maxBatchJobs() int {
	if c.MaxBatchJobs <= 0 {
		return 256
	}
	return c.MaxBatchJobs
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes <= 0 {
		return 8 << 20
	}
	return c.MaxBodyBytes
}

// BatchRequest is the body of POST /v1/check.
type BatchRequest struct {
	// Jobs are the checks to run. Each may name several models; a
	// k-model entry expands into k jobs that the scheduler solves on
	// one shared sweep encoding when eligible.
	Jobs []BatchJob `json:"jobs"`
	// Timeout is the default per-job deadline for jobs without one.
	Timeout job.Duration `json:"timeout,omitempty"`
}

// BatchJob is one request entry: a serializable check description
// plus an optional multi-model expansion.
type BatchJob struct {
	job.Check
	// Models, when non-empty, overrides Check.Model with one job per
	// listed model.
	Models []string `json:"models,omitempty"`
}

// ResultLine is one streamed NDJSON verdict (type "result"). The
// first line of a response is a BatchLine, the last a DoneLine.
type ResultLine struct {
	Type    string      `json:"type"`
	ID      string      `json:"id"`
	Index   int         `json:"index"`
	Impl    string      `json:"impl"`
	Test    string      `json:"test"`
	Model   string      `json:"model"`
	Verdict string      `json:"verdict,omitempty"`
	Pass    bool        `json:"pass"`
	SeqBug  bool        `json:"seq_bug,omitempty"`
	Cex     string      `json:"cex,omitempty"`
	Error   string      `json:"error,omitempty"`
	Budget  *BudgetLine `json:"budget,omitempty"`
	Stats   *StatsLine  `json:"stats,omitempty"`
}

// BudgetLine summarizes a result's resource governance.
type BudgetLine struct {
	Deadline string   `json:"deadline,omitempty"`
	Rungs    []string `json:"rungs,omitempty"`
}

// StatsLine is the wire subset of core.Stats.
type StatsLine struct {
	Backend        string `json:"backend,omitempty"`
	RouterDecision string `json:"router_decision,omitempty"`
	ObsSetSize     int    `json:"obs_set_size,omitempty"`
	MineIterations int    `json:"mine_iterations,omitempty"`
	CNFVars        int    `json:"cnf_vars,omitempty"`
	CNFClauses     int    `json:"cnf_clauses,omitempty"`
	CacheHits      int    `json:"spec_cache_hits,omitempty"`
	CacheMisses    int    `json:"spec_cache_misses,omitempty"`
	CacheResumed   int    `json:"spec_cache_resumed,omitempty"`
	SweepGroups    int    `json:"sweep_groups,omitempty"`
	EncodesReused  int    `json:"encodes_reused,omitempty"`
	TotalTime      string `json:"total_time,omitempty"`
}

// BatchLine heads a streamed response (type "batch").
type BatchLine struct {
	Type string   `json:"type"`
	ID   string   `json:"id"`
	Jobs []string `json:"jobs"`
}

// DoneLine closes a streamed response (type "done").
type DoneLine struct {
	Type    string `json:"type"`
	Pass    int    `json:"pass"`
	Fail    int    `json:"fail"`
	Unknown int    `json:"unknown"`
	Errors  int    `json:"errors"`
	Elapsed string `json:"elapsed"`
}

// JobStatus is the body of GET /v1/jobs/{id}.
type JobStatus struct {
	ID     string      `json:"id"`
	State  string      `json:"state"` // "running" | "done"
	Result *ResultLine `json:"result,omitempty"`
}

// Server is the checkfenced HTTP handler. Create with NewServer,
// serve with net/http, stop with Shutdown.
type Server struct {
	cfg   Config
	cache *core.SpecCache
	gate  core.Gate
	mux   *http.ServeMux

	ctx    context.Context // done on hard stop: in-flight solves abort
	cancel context.CancelFunc

	draining atomic.Bool
	wg       sync.WaitGroup // in-flight batches

	mu       sync.Mutex
	nextID   int64
	records  map[string]*JobStatus
	inflight int64
	batches  int64
	verdicts map[string]int64 // verdict string -> count
	errors   int64
	router   map[string]int64 // router decision -> count
	sweeps   int64            // sweep groups formed
	budgets  int64            // results shaped by budget exhaustion
}

// NewServer builds a Server around a fresh spec cache (rooted at
// cfg.CacheDir) and admission gate.
func NewServer(cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		cache:    core.NewSpecCache(cfg.CacheDir),
		gate:     core.NewGate(cfg.Parallelism),
		ctx:      ctx,
		cancel:   cancel,
		records:  map[string]*JobStatus{},
		verdicts: map[string]int64{},
		router:   map[string]int64{},
	}
	if cfg.Faults != nil {
		s.cache.SetFaults(cfg.Faults)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/check", s.handleCheck)
	s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if cfg.Fleet != nil {
		s.mux.Handle("/fleet/v1/", cfg.Fleet.Handler())
	}
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Cache exposes the server's spec cache (tests and embedding).
func (s *Server) Cache() *core.SpecCache { return s.cache }

// Shutdown drains the server: new batches are rejected with 503,
// in-flight batches run to completion. If ctx expires first the
// remaining work is cancelled — interrupted miners have checkpointed
// partial sets to the cache directory (every 32 iterations and on
// failure), so the next process resumes rather than restarts them.
// Returns ctx.Err() when the drain was cut short.
func (s *Server) Shutdown(ctx context.Context) error {
	// Serialize with batch admission: once draining is visible under
	// s.mu no handler will wg.Add, so wg.Wait below is race-free.
	s.mu.Lock()
	s.draining.Store(true)
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// expand validates a batch and renders it as core jobs plus the
// expanded wire descriptions (the fleet path dispatches those) and
// wire IDs.
func (s *Server) expand(req *BatchRequest, batchID string) ([]core.Job, []job.Check, []string, error) {
	var jobs []core.Job
	var checks []job.Check
	var ids []string
	for bi := range req.Jobs {
		entry := &req.Jobs[bi]
		models := entry.Models
		if len(models) == 0 {
			models = []string{entry.Check.Model}
		}
		for _, m := range models {
			c := entry.Check
			c.Model = m
			if c.Timeout == 0 {
				if req.Timeout != 0 {
					c.Timeout = req.Timeout
				} else {
					c.Timeout = job.Duration(s.cfg.DefaultTimeout)
				}
			}
			if max := s.cfg.MaxTimeout; max > 0 {
				if time.Duration(c.Timeout) <= 0 || time.Duration(c.Timeout) > max {
					c.Timeout = job.Duration(max)
				}
			}
			cj, err := c.CoreJob()
			if err != nil {
				return nil, nil, nil, fmt.Errorf("jobs[%d] model %q: %w", bi, m, err)
			}
			jobs = append(jobs, cj)
			checks = append(checks, c)
			ids = append(ids, fmt.Sprintf("%s-%d", batchID, len(ids)))
		}
	}
	if len(jobs) == 0 {
		return nil, nil, nil, fmt.Errorf("empty batch")
	}
	if len(jobs) > s.cfg.maxBatchJobs() {
		return nil, nil, nil, fmt.Errorf("batch of %d jobs exceeds limit %d", len(jobs), s.cfg.maxBatchJobs())
	}
	return jobs, checks, ids, nil
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	s.nextID++
	batchID := fmt.Sprintf("b%d", s.nextID)
	s.mu.Unlock()

	jobs, checks, ids, err := s.expand(&req, batchID)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// The batch is admitted: it must finish (or be hard-cancelled)
	// even if the client goes away, so poll clients can still fetch
	// verdicts. Only server shutdown cancels the work. Admission is
	// serialized with Shutdown on s.mu so wg.Add never races wg.Wait,
	// and a batch that lost the race to a concurrent drain is turned
	// away instead of slipping past it.
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if max := s.cfg.MaxInflight; max > 0 && s.inflight+int64(len(jobs)) > int64(max) {
		// Admission saturated: shed load with a backoff hint instead of
		// queueing unboundedly. The retry client honors Retry-After.
		s.mu.Unlock()
		w.Header().Set("Retry-After", "5")
		http.Error(w, "admission gate saturated", http.StatusServiceUnavailable)
		return
	}
	s.wg.Add(1)
	s.batches++
	s.inflight += int64(len(jobs))
	for _, id := range ids {
		s.records[id] = &JobStatus{ID: id, State: "running"}
	}
	s.mu.Unlock()
	defer s.wg.Done()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	writeLine := func(v any) {
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeLine(BatchLine{Type: "batch", ID: batchID, Jobs: ids})

	start := time.Now()
	var pass, fail, unknown, errs int
	if s.cfg.Fleet != nil {
		pass, fail, unknown, errs = s.runFleet(checks, ids, jobs, writeLine)
	} else {
		core.RunSuite(jobs, core.SuiteOptions{
			Parallelism: s.cfg.Parallelism,
			Context:     s.ctx,
			SpecCache:   s.cache,
			Gate:        s.gate,
			Faults:      s.cfg.Faults,
			OnResult: func(i int, r core.SuiteResult) {
				line := renderResult(ids[i], i, jobs[i], r)
				switch {
				case line.Error != "":
					errs++
				case line.Verdict == "fail":
					fail++
				case line.Verdict == "unknown":
					unknown++
				default:
					pass++
				}
				s.recordResult(line, r)
				writeLine(line)
			},
		})
	}
	writeLine(DoneLine{
		Type: "done", Pass: pass, Fail: fail, Unknown: unknown,
		Errors: errs, Elapsed: time.Since(start).String(),
	})
}

// runFleet dispatches each expanded check through the fleet
// coordinator, streaming verdict lines as fan-outs complete. The
// admission gate bounds concurrently dispatched fan-outs like it
// bounds local check units.
func (s *Server) runFleet(checks []job.Check, ids []string, jobs []core.Job,
	writeLine func(any)) (pass, fail, unknown, errs int) {

	var mu sync.Mutex // serializes counters, records, and the stream
	var wg sync.WaitGroup
	for i := range checks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var line *ResultLine
			if err := s.gate.Acquire(s.ctx); err != nil {
				line = &ResultLine{
					Type: "result", ID: ids[i], Index: i,
					Impl: jobs[i].Impl, Test: jobs[i].Test,
					Model: jobs[i].Opts.Model.String(), Error: err.Error(),
				}
			} else {
				out, err := s.cfg.Fleet.CheckDistributed(s.ctx, checks[i])
				s.gate.Release()
				line = renderOutcome(ids[i], i, jobs[i], out, err)
			}
			mu.Lock()
			defer mu.Unlock()
			switch {
			case line.Error != "":
				errs++
			case line.Verdict == "fail":
				fail++
			case line.Verdict == "unknown":
				unknown++
			default:
				pass++
			}
			s.recordFleetResult(line)
			writeLine(line)
		}(i)
	}
	wg.Wait()
	return
}

// recordFleetResult stores a fleet-path verdict for the poll endpoint
// and the verdict counters (no core.Result to fold stats from — the
// coordinator's own Metrics cover the distributed side).
func (s *Server) recordFleetResult(line *ResultLine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if rec, ok := s.records[line.ID]; ok {
		rec.State = "done"
		rec.Result = line
	}
	if line.Error != "" {
		s.errors++
		return
	}
	s.verdicts[line.Verdict]++
	if line.Budget != nil && len(line.Budget.Rungs) > 0 {
		s.budgets++
	}
}

// renderOutcome converts a fleet outcome to the wire line.
func renderOutcome(id string, index int, j core.Job, out fleet.Outcome, err error) *ResultLine {
	line := &ResultLine{
		Type: "result", ID: id, Index: index,
		Impl: j.Impl, Test: j.Test, Model: j.Opts.Model.String(),
	}
	if err != nil {
		line.Error = err.Error()
		return line
	}
	if out.Err != "" {
		line.Error = out.Err
		return line
	}
	line.Verdict = out.Verdict
	line.Pass = out.Pass
	line.SeqBug = out.SeqBug
	line.Cex = out.Cex
	if len(out.Budget) > 0 || out.Degraded != "" {
		b := &BudgetLine{Rungs: append([]string(nil), out.Budget...)}
		if out.Degraded != "" {
			// Fleet-level degradation rides the same budget trail, so
			// the cause of a slower-than-expected verdict is visible.
			b.Rungs = append(b.Rungs, "fleet "+out.Degraded)
		}
		line.Budget = b
	}
	line.Stats = &StatsLine{
		Backend:    out.Backend,
		ObsSetSize: out.ObsSetSize,
		TotalTime:  time.Duration(out.TotalTime).String(),
	}
	return line
}

// recordResult stores a finished job for the poll path and folds its
// stats into the metrics counters.
func (s *Server) recordResult(line *ResultLine, r core.SuiteResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if rec, ok := s.records[line.ID]; ok {
		rec.State = "done"
		rec.Result = line
	}
	if line.Error != "" {
		s.errors++
		return
	}
	s.verdicts[line.Verdict]++
	if r.Res != nil {
		if d := r.Res.Stats.RouterDecision; d != "" {
			s.router[d]++
		}
		s.sweeps += int64(r.Res.Stats.SweepGroups)
		if r.Res.Budget != nil && len(r.Res.Budget.Rungs) > 0 {
			s.budgets++
		}
	}
}

// renderResult converts one suite result to its wire form.
func renderResult(id string, index int, j core.Job, r core.SuiteResult) *ResultLine {
	line := &ResultLine{
		Type: "result", ID: id, Index: index,
		Impl: j.Impl, Test: j.Test, Model: j.Opts.Model.String(),
	}
	if r.Err != nil {
		line.Error = r.Err.Error()
		return line
	}
	res := r.Res
	line.Verdict = res.Verdict.String()
	line.Pass = res.Pass
	line.SeqBug = res.SeqBug
	if res.Cex != nil {
		line.Cex = res.Cex.String()
	}
	if res.Budget != nil {
		b := &BudgetLine{}
		if res.Budget.Deadline > 0 {
			b.Deadline = res.Budget.Deadline.String()
		}
		for _, rung := range res.Budget.Rungs {
			desc := rung.Name
			if rung.Budget != "" {
				desc += " (" + rung.Budget + ")"
			}
			b.Rungs = append(b.Rungs, desc)
		}
		line.Budget = b
	}
	st := res.Stats
	line.Stats = &StatsLine{
		Backend:        st.Backend,
		RouterDecision: st.RouterDecision,
		ObsSetSize:     st.ObsSetSize,
		MineIterations: st.MineIterations,
		CNFVars:        st.CNFVars,
		CNFClauses:     st.CNFClauses,
		CacheHits:      st.SpecCacheHits,
		CacheMisses:    st.SpecCacheMisses,
		CacheResumed:   st.SpecCacheResumed,
		SweepGroups:    st.SweepGroups,
		EncodesReused:  st.EncodesReused,
		TotalTime:      st.TotalTime.String(),
	}
	return line
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	s.mu.Lock()
	rec, ok := s.records[id]
	var cp JobStatus
	if ok {
		cp = *rec
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown job "+id, http.StatusNotFound)
		return
	}
	if cp.State == "running" {
		// Backoff hint for poll loops: solver work rarely finishes in
		// under a second, so an immediate re-poll is wasted.
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(cp)
}

// handleMetrics serves the Prometheus text exposition format
// (version 0.0.4): daemon job counters plus the shared spec cache's
// cumulative traffic.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	s.mu.Lock()
	batches, inflight := s.batches, s.inflight
	errors, sweeps, budgets := s.errors, s.sweeps, s.budgets
	verdicts := make(map[string]int64, len(s.verdicts))
	for k, v := range s.verdicts {
		verdicts[k] = v
	}
	router := make(map[string]int64, len(s.router))
	for k, v := range s.router {
		router[k] = v
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	labeled := func(name, help, label string, m map[string]int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s{%s=%q} %d\n", name, label, k, m[k])
		}
	}
	counter("checkfenced_batches_total", "Accepted /v1/check batches.", batches)
	labeled("checkfenced_jobs_total", "Finished jobs by verdict.", "verdict", verdicts)
	counter("checkfenced_job_errors_total", "Jobs that failed to run.", errors)
	gauge("checkfenced_inflight_jobs", "Jobs admitted but not finished.", inflight)
	labeled("checkfenced_router_decisions_total", "Backend router decisions.", "decision", router)
	counter("checkfenced_sweep_groups_total", "Model-sweep groups formed.", sweeps)
	counter("checkfenced_budget_exhausted_total", "Results shaped by budget exhaustion.", budgets)
	counter("checkfenced_spec_cache_hits_total", "Spec cache hits (memory or disk).", int64(cs.Hits))
	counter("checkfenced_spec_cache_misses_total", "Spec cache misses (fresh mines).", int64(cs.Misses))
	counter("checkfenced_spec_cache_resumed_total", "Mines resumed from a checkpoint.", int64(cs.Resumed))
	counter("checkfenced_spec_cache_corrupt_total", "Quarantined corrupt cache files.", int64(cs.Corrupt))
	gauge("checkfenced_spec_cache_entries", "In-memory spec cache entries.", int64(cs.Entries))
	if s.cfg.Fleet != nil {
		fm := s.cfg.Fleet.Metrics()
		counter("checkfenced_fleet_tasks_dispatched_total", "Fleet leases granted (including re-dispatch).", fm.TasksDispatched)
		counter("checkfenced_fleet_tasks_completed_total", "Fleet task outcomes accepted (first per task).", fm.TasksCompleted)
		counter("checkfenced_fleet_lease_expirations_total", "Leases lost to missing heartbeats.", fm.LeaseExpirations)
		counter("checkfenced_fleet_requeues_total", "Tasks requeued after a lost lease or worker error.", fm.Requeues)
		counter("checkfenced_fleet_quarantines_total", "Poison circuit-breaker trips (cube solved locally serial).", fm.Quarantines)
		counter("checkfenced_fleet_speculations_total", "Straggler tasks speculatively re-dispatched.", fm.Speculations)
		counter("checkfenced_fleet_dup_results_total", "Duplicate results dropped by fingerprint dedup.", fm.DupResults)
		counter("checkfenced_fleet_late_results_total", "Results rejected after lease reassignment.", fm.LateResults)
		counter("checkfenced_fleet_local_fallbacks_total", "Tasks solved locally after retry exhaustion.", fm.LocalFallbacks)
		counter("checkfenced_fleet_spec_mismatches_total", "PASS aggregations with divergent observation sets.", fm.SpecMismatches)
		counter("checkfenced_fleet_workers_drained_total", "Polls refused for unhealthy workers.", fm.WorkersDrained)
		counter("checkfenced_fleet_journal_replayed_total", "Task outcomes restored from the journal.", fm.JournalReplayed)
	}
	io.WriteString(w, b.String())
}

package encode

import (
	"testing"

	"checkfence/internal/bitvec"
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/ranges"
	"checkfence/internal/sat"
)

func newTestEncoder() *Encoder {
	return New(memmodel.SequentialConsistency, ranges.Disabled())
}

func TestConstValInvariants(t *testing.T) {
	e := newTestEncoder()
	// Undefined: all-zero representation.
	u := e.ConstVal(lsl.Undef())
	if u.K1 != bitvec.False || u.K0 != bitvec.False {
		t.Error("undef kind bits must be 00")
	}
	for _, c := range u.Comps {
		if v, ok := c.IsConst(); !ok || v != 0 {
			t.Error("undef components must be zero")
		}
	}
	// Integer: value in comps[0], rest zero.
	i := e.ConstVal(lsl.Int(5))
	if v, _ := i.Comps[0].IsConst(); v != 5 {
		t.Errorf("int comps[0] = %d", v)
	}
	// Pointer: components stored shifted by one so the first zero
	// marks the depth.
	p := e.ConstVal(lsl.Ptr(3, 0))
	if v, _ := p.Comps[0].IsConst(); v != 4 {
		t.Errorf("ptr base comp = %d, want 4 (3+1)", v)
	}
	if v, _ := p.Comps[1].IsConst(); v != 1 {
		t.Errorf("ptr offset comp = %d, want 1 (0+1)", v)
	}
}

// TestEvalValInCloneMatchesSerial: decoding a symbolic value through
// a winner clone's model (the portfolio/cube path) must agree with the
// serial EvalVal once the encoder's own solver adopts that model.
func TestEvalValInCloneMatchesSerial(t *testing.T) {
	e := newTestEncoder()
	threads := []Thread{
		{Name: "init"},
		{Name: "t1", Segments: [][]lsl.Stmt{{
			&lsl.ConstStmt{Dst: "p", Val: lsl.Ptr(0)},
			&lsl.HavocStmt{Dst: "h", Bits: 2},
			&lsl.StoreStmt{Addr: "p", Src: "h"},
			&lsl.LoadStmt{Dst: "r", Addr: "p"},
		}}, OpIDs: []int{0}},
	}
	if err := e.Encode(threads); err != nil {
		t.Fatal(err)
	}
	if e.S.Solve() != sat.Sat {
		t.Fatal("encoding must be satisfiable")
	}
	clone := e.S.CloneFormula()
	if clone.Solve() != sat.Sat {
		t.Fatal("clone must be satisfiable")
	}
	e.S.AdoptModelFrom(clone)
	for _, reg := range []lsl.Reg{"p", "h", "r"} {
		sv, ok := e.Envs[1][reg]
		if !ok {
			t.Fatalf("register %s not in thread env", reg)
		}
		got := e.EvalValIn(clone, sv)
		want := e.EvalVal(sv)
		if !got.Equal(want) {
			t.Errorf("%s: EvalValIn(clone) = %v, EvalVal after adopt = %v", reg, got, want)
		}
	}
	// The recorded havoc decodes to the same value both ways too.
	if len(e.Havocs) != 1 {
		t.Fatalf("Havocs = %d, want 1", len(e.Havocs))
	}
	h := e.Havocs[0]
	if got, want := e.B.EvalBVIn(clone, h.Val), e.B.EvalBV(h.Val); got != want {
		t.Errorf("havoc: EvalBVIn(clone) = %d, EvalBV = %d", got, want)
	}
}

func TestEqValConstantFolding(t *testing.T) {
	e := newTestEncoder()
	cases := []struct {
		a, b lsl.Value
		eq   bool
	}{
		{lsl.Int(3), lsl.Int(3), true},
		{lsl.Int(3), lsl.Int(4), false},
		{lsl.Int(0), lsl.Ptr(0), false}, // null int vs pointer base 0
		{lsl.Ptr(1, 2), lsl.Ptr(1, 2), true},
		{lsl.Ptr(1, 2), lsl.Ptr(1, 2, 0), false}, // depth differs
		{lsl.Undef(), lsl.Undef(), true},
		{lsl.Undef(), lsl.Int(0), false},
	}
	for _, c := range cases {
		n := e.EqVal(e.ConstVal(c.a), e.ConstVal(c.b))
		want := bitvec.Const(c.eq)
		if n != want {
			t.Errorf("EqVal(%v, %v) did not fold to %v", c.a, c.b, c.eq)
		}
	}
}

func TestTruthyFolding(t *testing.T) {
	e := newTestEncoder()
	cases := []struct {
		v      lsl.Value
		truthy bool
	}{
		{lsl.Int(0), false},
		{lsl.Int(1), true},
		{lsl.Int(-2), true},
		{lsl.Ptr(0), true},
		{lsl.Undef(), false},
	}
	for _, c := range cases {
		if got := e.Truthy(e.ConstVal(c.v)); got != bitvec.Const(c.truthy) {
			t.Errorf("Truthy(%v) != %v", c.v, c.truthy)
		}
	}
}

func TestAppendCompStatic(t *testing.T) {
	e := newTestEncoder()
	p := e.ConstVal(lsl.Ptr(2))
	out, invalid := e.AppendComp(p, bitvec.ConstBV(e.W, 1))
	if invalid != bitvec.False {
		t.Error("append to shallow pointer must be valid")
	}
	if !e.constEquals(out, lsl.Ptr(2, 1)) {
		t.Errorf("AppendComp result wrong")
	}
	// Appending to a non-pointer is invalid.
	_, invalid = e.AppendComp(e.ConstVal(lsl.Int(3)), bitvec.ConstBV(e.W, 0))
	if invalid != bitvec.True {
		t.Error("append to integer must be invalid")
	}
	// Appending to a depth-3 pointer fills the last slot (D = 4)...
	deep := e.ConstVal(lsl.Ptr(1, 1, 1))
	_, invalid = e.AppendComp(deep, bitvec.ConstBV(e.W, 0))
	if invalid != bitvec.False {
		t.Error("append filling the last slot must be valid")
	}
	// ...and appending to a full pointer is invalid.
	full := e.ConstVal(lsl.Ptr(1, 1, 1, 1))
	_, invalid = e.AppendComp(full, bitvec.ConstBV(e.W, 0))
	if invalid != bitvec.True {
		t.Error("append past depth bound must be invalid")
	}
}

// constEquals checks a SymVal against a constant value by folding.
func (e *Encoder) constEquals(sv SymVal, v lsl.Value) bool {
	return e.EqVal(sv, e.ConstVal(v)) == bitvec.True
}

func TestAppendCompSymbolicIndex(t *testing.T) {
	// Array indexing with a symbolic index: p[i] with i in {0,1}.
	e := newTestEncoder()
	idx := e.B.VarBV(1)
	p := e.ConstVal(lsl.Ptr(4))
	out, invalid := e.AppendComp(p, idx)
	if invalid != bitvec.False {
		t.Fatal("append must be valid")
	}
	// Force idx = 1 and check the decoded pointer.
	e.B.Assert(idx[0])
	for _, bv := range out.Comps {
		for _, n := range bv {
			e.B.Lit(n)
		}
	}
	if e.S.Solve() != sat.Sat {
		t.Fatal("UNSAT")
	}
	if got := e.EvalVal(out); !got.Equal(lsl.Ptr(4, 1)) {
		t.Errorf("p[1] = %v", got)
	}
}

func TestMuxValMergesKinds(t *testing.T) {
	// ite(c, ptr, int 0) — the null-vs-pointer merge the queue code
	// relies on (next == 0 tests).
	e := newTestEncoder()
	c := e.B.Var()
	merged := e.MuxVal(c, e.ConstVal(lsl.Ptr(3)), e.ConstVal(lsl.Int(0)))
	e.B.Assert(c)
	e.B.Lit(merged.K1)
	e.B.Lit(merged.K0)
	for _, bv := range merged.Comps {
		for _, n := range bv {
			e.B.Lit(n)
		}
	}
	if e.S.Solve() != sat.Sat {
		t.Fatal("UNSAT")
	}
	if got := e.EvalVal(merged); !got.Equal(lsl.Ptr(3)) {
		t.Errorf("mux true arm = %v", got)
	}
}

func TestBoolAndIntVal(t *testing.T) {
	e := newTestEncoder()
	if !e.constEquals(e.BoolVal(bitvec.True), lsl.Int(1)) {
		t.Error("BoolVal(true) != 1")
	}
	if !e.constEquals(e.BoolVal(bitvec.False), lsl.Int(0)) {
		t.Error("BoolVal(false) != 0")
	}
	if !e.constEquals(e.IntVal(bitvec.ConstBV(4, 7)), lsl.Int(7)) {
		t.Error("IntVal(7) != 7")
	}
}

package encode

import (
	"fmt"

	"checkfence/internal/bitvec"
	"checkfence/internal/lsl"
)

// compiler is the per-thread symbolic compilation state. It performs
// the guarded single-pass walk that CBMC-style bounded model checkers
// use: every register holds a circuit value, every assignment becomes
// a multiplexer guarded by the current liveness condition, and breaks
// accumulate into per-block "broken" disjunctions.
type compiler struct {
	e       *Encoder
	thread  int
	opID    int
	group   int // current atomic block id, -1 outside
	progIdx int
	env     map[lsl.Reg]SymVal
	live    bitvec.Node
	// errSoFar accumulates this thread's runtime error conditions.
	// Assumptions are conditioned on its negation: an execution that
	// has already raised an error is a counterexample and must stay
	// satisfiable, not be pruned by a later assume over the garbage
	// value (e.g. spinning on an uninitialized lock).
	errSoFar bitvec.Node
}

type blockFrame struct {
	tag    string
	broken bitvec.Node
}

func (e *Encoder) compileThread(ti int, th Thread) (map[lsl.Reg]SymVal, error) {
	c := &compiler{
		e:        e,
		thread:   ti,
		opID:     -1,
		group:    -1,
		env:      map[lsl.Reg]SymVal{},
		live:     bitvec.True,
		errSoFar: bitvec.False,
	}
	for si, seg := range th.Segments {
		if si < len(th.OpIDs) {
			c.opID = th.OpIDs[si]
		} else {
			c.opID = -1
		}
		if err := c.stmts(seg, nil); err != nil {
			return nil, err
		}
	}
	return c.env, nil
}

func (c *compiler) value(r lsl.Reg) SymVal {
	if v, ok := c.env[r]; ok {
		return v
	}
	// Never-assigned registers are undefined.
	u := c.e.UndefVal()
	c.env[r] = u
	return u
}

func (c *compiler) assign(r lsl.Reg, v SymVal) {
	if c.live == bitvec.True {
		c.env[r] = v
		return
	}
	c.env[r] = c.e.MuxVal(c.live, v, c.value(r))
}

func (c *compiler) errIf(cond bitvec.Node, msg string) {
	g := c.e.B.And(c.live, cond)
	if g == bitvec.False {
		return
	}
	c.e.Errors = append(c.e.Errors, ErrCond{Cond: g, Msg: msg})
	c.errSoFar = c.e.B.Or(c.errSoFar, g)
}

// condTruthy evaluates a register as a branch condition: undefined
// values are flagged as errors and treated as false.
func (c *compiler) condTruthy(r lsl.Reg, ctxMsg string) bitvec.Node {
	v := c.value(r)
	c.errIf(c.e.IsUndef(v), "undefined value used in "+ctxMsg)
	return c.e.Truthy(v)
}

// stmts compiles a statement list. frames is the enclosing block
// stack (innermost last); the slice is shared down the recursion and
// mutated through pointers.
func (c *compiler) stmts(list []lsl.Stmt, frames []*blockFrame) error {
	for _, s := range list {
		if err := c.e.pollAbort(); err != nil {
			return err
		}
		if err := c.stmt(s, frames); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(s lsl.Stmt, frames []*blockFrame) error {
	b := c.e.B
	switch s := s.(type) {
	case *lsl.ConstStmt:
		c.assign(s.Dst, c.e.ConstVal(s.Val))
		return nil

	case *lsl.HavocStmt:
		bv := b.VarBV(s.Bits)
		// Record the choice point; havocs of one thread are appended in
		// program order, which is the order replay consumes them in.
		c.e.Havocs = append(c.e.Havocs, &HavocEv{Thread: c.thread, Exec: c.live, Val: bv})
		c.assign(s.Dst, c.e.IntVal(bv))
		return nil

	case *lsl.OpStmt:
		v, err := c.applyOp(s)
		if err != nil {
			return err
		}
		c.assign(s.Dst, v)
		return nil

	case *lsl.LoadStmt:
		addr := c.value(s.Addr)
		c.errIf(c.e.IsPtr(addr).Not(), "load from non-pointer address")
		val := c.e.FreshVal()
		acc := &Access{
			Idx: len(c.e.Accesses), Thread: c.thread, ProgIdx: c.progIdx,
			IsLoad: true, OpID: c.opID, Group: c.group,
			Exec: c.live, Addr: addr, Val: val, AddrReg: s.Addr,
			Desc: s.String(),
		}
		c.progIdx++
		c.e.Accesses = append(c.e.Accesses, acc)
		c.assign(s.Dst, val)
		return nil

	case *lsl.StoreStmt:
		addr := c.value(s.Addr)
		c.errIf(c.e.IsPtr(addr).Not(), "store to non-pointer address")
		acc := &Access{
			Idx: len(c.e.Accesses), Thread: c.thread, ProgIdx: c.progIdx,
			IsLoad: false, OpID: c.opID, Group: c.group,
			Exec: c.live, Addr: addr, Val: c.value(s.Src), AddrReg: s.Addr,
			Desc: s.String(),
		}
		c.progIdx++
		c.e.Accesses = append(c.e.Accesses, acc)
		return nil

	case *lsl.FenceStmt:
		c.e.Fences = append(c.e.Fences, &FenceEv{
			Thread: c.thread, ProgIdx: c.progIdx, Kind: s.Kind, Exec: c.live,
		})
		c.progIdx++
		return nil

	case *lsl.AtomicStmt:
		if c.group >= 0 {
			// Nested atomic blocks merge into the enclosing one.
			return c.stmts(s.Body, frames)
		}
		c.group = c.e.numGroups
		c.e.numGroups++
		err := c.stmts(s.Body, frames)
		c.group = -1
		return err

	case *lsl.BlockStmt:
		if s.Loop != lsl.NotLoop {
			return fmt.Errorf("loop %q survived unrolling", s.Tag)
		}
		frame := &blockFrame{tag: s.Tag, broken: bitvec.False}
		if err := c.stmts(s.Body, append(frames, frame)); err != nil {
			return err
		}
		// Executions that broke out of this block resume here; breaks
		// to outer blocks remain excluded from the live condition.
		c.live = b.Or(c.live, frame.broken)
		return nil

	case *lsl.BreakStmt:
		cond := c.condTruthy(s.Cond, "break condition")
		g := b.And(c.live, cond)
		var target *blockFrame
		for i := len(frames) - 1; i >= 0; i-- {
			if frames[i].tag == s.Tag {
				target = frames[i]
				break
			}
		}
		if target == nil {
			return fmt.Errorf("break targets unknown block %q", s.Tag)
		}
		target.broken = b.Or(target.broken, g)
		c.live = b.And(c.live, g.Not())
		return nil

	case *lsl.ContinueStmt:
		return fmt.Errorf("continue %q survived unrolling", s.Tag)

	case *lsl.AssertStmt:
		cond := c.condTruthy(s.Cond, "assertion")
		c.errIf(cond.Not(), "assertion failed: "+s.Msg)
		return nil

	case *lsl.AssumeStmt:
		v := c.value(s.Cond)
		// An assumption on an undefined value is a runtime error the
		// checker must be able to observe, so the exclusion
		// constraint applies only to defined values (otherwise the
		// constraint would make the erroneous execution infeasible
		// and hide the bug — e.g. spinning on an uninitialized lock).
		undef := c.e.IsUndef(v)
		c.errIf(undef, "undefined value used in assumption")
		ok := b.AndAll(c.live, undef.Not(), c.errSoFar.Not())
		c.e.B.Assert(b.Implies(ok, c.e.Truthy(v)))
		return nil

	case *lsl.OverflowStmt:
		prev, ok := c.e.Overflow[s.LoopID]
		if !ok {
			prev = bitvec.False
		}
		c.e.Overflow[s.LoopID] = b.Or(prev, c.live)
		// Execution past the marker is meaningless; treat the path as
		// dead (checks assert the marker unreachable anyway).
		c.live = b.And(c.live, bitvec.False)
		return nil

	case *lsl.CallStmt:
		return fmt.Errorf("call to %q survived inlining", s.Proc)
	case *lsl.AllocStmt:
		return fmt.Errorf("allocation %q survived unrolling", s.Site)
	}
	return fmt.Errorf("unsupported statement %T", s)
}

func (c *compiler) applyOp(s *lsl.OpStmt) (SymVal, error) {
	b := c.e.B
	e := c.e
	arg := func(i int) SymVal { return c.value(s.Args[i]) }

	switch s.Op {
	case lsl.OpIdent:
		return arg(0), nil

	case lsl.OpEq, lsl.OpNe:
		a, v := arg(0), arg(1)
		c.errIf(b.Or(e.IsUndef(a), e.IsUndef(v)), "undefined value used in comparison")
		eq := e.EqVal(a, v)
		if s.Op == lsl.OpNe {
			eq = eq.Not()
		}
		return e.BoolVal(eq), nil

	case lsl.OpField:
		a := arg(0)
		out, invalid := e.AppendComp(a, bitvec.ConstBV(e.W, s.Imm))
		c.errIf(invalid, "invalid field access")
		return out, nil

	case lsl.OpIndex:
		a, idx := arg(0), arg(1)
		c.errIf(e.IsInt(idx).Not(), "non-integer array index")
		out, invalid := e.AppendComp(a, idx.Comps[0])
		c.errIf(invalid, "invalid array index")
		return out, nil

	case lsl.OpSelect:
		cond := arg(0)
		c.errIf(e.IsUndef(cond), "undefined value used in select")
		return e.MuxVal(e.Truthy(cond), arg(1), arg(2)), nil

	case lsl.OpBool, lsl.OpNot:
		a := arg(0)
		c.errIf(e.IsUndef(a), "undefined value used in condition")
		t := e.Truthy(a)
		if s.Op == lsl.OpNot {
			t = t.Not()
		}
		return e.BoolVal(t), nil

	case lsl.OpNeg:
		a := arg(0)
		c.errIf(e.IsInt(a).Not(), "negation of non-integer")
		return e.IntVal(b.SubBV(bitvec.ConstBV(e.W, 0), a.Comps[0])), nil
	}

	// Binary integer operations.
	a, v := arg(0), arg(1)
	c.errIf(b.Or(e.IsInt(a).Not(), e.IsInt(v).Not()),
		fmt.Sprintf("%v applied to non-integers", s.Op))
	x, y := a.Comps[0], v.Comps[0]
	switch s.Op {
	case lsl.OpAdd:
		return e.IntVal(b.AddBV(x, y)), nil
	case lsl.OpSub:
		return e.IntVal(b.SubBV(x, y)), nil
	case lsl.OpMul:
		return e.IntVal(b.MulBV(x, y)), nil
	case lsl.OpLt:
		return e.BoolVal(b.LtSignedBV(x, y)), nil
	case lsl.OpLe:
		return e.BoolVal(b.LeSignedBV(x, y)), nil
	case lsl.OpGt:
		return e.BoolVal(b.LtSignedBV(y, x)), nil
	case lsl.OpGe:
		return e.BoolVal(b.LeSignedBV(y, x)), nil
	case lsl.OpAnd:
		return e.BoolVal(b.And(b.IsZero(x).Not(), b.IsZero(y).Not())), nil
	case lsl.OpOr:
		return e.BoolVal(b.Or(b.IsZero(x).Not(), b.IsZero(y).Not())), nil
	case lsl.OpXor:
		xw, yw := x.Extend(e.W), y.Extend(e.W)
		out := make(bitvec.BV, e.W)
		for i := range out {
			out[i] = b.Xor(xw[i], yw[i])
		}
		return e.IntVal(out), nil
	}
	return SymVal{}, fmt.Errorf("unsupported op %v", s.Op)
}

package encode

import (
	"testing"

	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/ranges"
	"checkfence/internal/sat"
)

// Litmus-test helpers: threads are built directly in LSL. Global x has
// base 0, y has base 1 unless stated otherwise.

func mkConst(dst string, v lsl.Value) lsl.Stmt {
	return &lsl.ConstStmt{Dst: lsl.Reg(dst), Val: v}
}
func mkStore(addr, src string) lsl.Stmt {
	return &lsl.StoreStmt{Addr: lsl.Reg(addr), Src: lsl.Reg(src)}
}
func mkLoad(dst, addr string) lsl.Stmt {
	return &lsl.LoadStmt{Dst: lsl.Reg(dst), Addr: lsl.Reg(addr)}
}
func mkFence(k lsl.FenceKind) lsl.Stmt { return &lsl.FenceStmt{Kind: k} }

// seg prefixes register names so threads do not collide.
func seg(prefix string, stmts ...lsl.Stmt) []lsl.Stmt { return stmts }

// encodeThreads builds an encoder over the given thread bodies
// (thread 0 is init) and returns it.
func encodeThreads(t *testing.T, model memmodel.Model, bodies ...[]lsl.Stmt) *Encoder {
	t.Helper()
	info := ranges.Analyze(bodies)
	e := New(model, info)
	threads := make([]Thread, len(bodies))
	for i, b := range bodies {
		threads[i] = Thread{Name: "t", Segments: [][]lsl.Stmt{b}, OpIDs: []int{i}}
	}
	if err := e.Encode(threads); err != nil {
		t.Fatal(err)
	}
	e.B.Assert(e.ErrorNode().Not())
	return e
}

// requireFinal asserts that the named registers of the given threads
// have the given values, then solves.
func solveWith(t *testing.T, e *Encoder, want map[[2]interface{}]lsl.Value) sat.Status {
	t.Helper()
	for k, v := range want {
		ti := k[0].(int)
		reg := lsl.Reg(k[1].(string))
		sv, ok := e.Envs[ti][reg]
		if !ok {
			t.Fatalf("thread %d has no register %s", ti, reg)
		}
		e.B.Assert(e.EqVal(sv, e.ConstVal(v)))
	}
	return e.S.Solve()
}

func initXY() []lsl.Stmt {
	// x at base 0, y at base 1, both initialized to 0.
	return []lsl.Stmt{
		mkConst("i.xa", lsl.Ptr(0)), mkConst("i.z", lsl.Int(0)),
		mkStore("i.xa", "i.z"),
		mkConst("i.ya", lsl.Ptr(1)),
		mkStore("i.ya", "i.z"),
	}
}

// TestStoreBuffering: t1: x=1; r1=y  t2: y=1; r2=x.
// r1=r2=0 must be impossible under SC and possible under Relaxed.
func TestStoreBuffering(t *testing.T) {
	build := func(model memmodel.Model) *Encoder {
		t1 := []lsl.Stmt{
			mkConst("a.xa", lsl.Ptr(0)), mkConst("a.ya", lsl.Ptr(1)),
			mkConst("a.one", lsl.Int(1)),
			mkStore("a.xa", "a.one"),
			mkLoad("a.r1", "a.ya"),
		}
		t2 := []lsl.Stmt{
			mkConst("b.xa", lsl.Ptr(0)), mkConst("b.ya", lsl.Ptr(1)),
			mkConst("b.one", lsl.Int(1)),
			mkStore("b.ya", "b.one"),
			mkLoad("b.r2", "b.xa"),
		}
		return encodeThreads(t, model, initXY(), t1, t2)
	}
	want := map[[2]interface{}]lsl.Value{
		{1, "a.r1"}: lsl.Int(0),
		{2, "b.r2"}: lsl.Int(0),
	}
	if got := solveWith(t, build(memmodel.SequentialConsistency), want); got != sat.Unsat {
		t.Errorf("SC store buffering: %v, want UNSAT", got)
	}
	if got := solveWith(t, build(memmodel.Relaxed), want); got != sat.Sat {
		t.Errorf("Relaxed store buffering: %v, want SAT", got)
	}
}

// TestMessagePassing: t1: x=1; y=1  t2: r1=y; r2=x.
// r1=1 ∧ r2=0 impossible under SC, possible under Relaxed, and
// impossible again with store-store and load-load fences.
func TestMessagePassing(t *testing.T) {
	build := func(model memmodel.Model, fenced bool) *Encoder {
		var t1 []lsl.Stmt
		t1 = append(t1,
			mkConst("a.xa", lsl.Ptr(0)), mkConst("a.ya", lsl.Ptr(1)),
			mkConst("a.one", lsl.Int(1)),
			mkStore("a.xa", "a.one"))
		if fenced {
			t1 = append(t1, mkFence(lsl.FenceStoreStore))
		}
		t1 = append(t1, mkStore("a.ya", "a.one"))

		var t2 []lsl.Stmt
		t2 = append(t2,
			mkConst("b.xa", lsl.Ptr(0)), mkConst("b.ya", lsl.Ptr(1)),
			mkLoad("b.r1", "b.ya"))
		if fenced {
			t2 = append(t2, mkFence(lsl.FenceLoadLoad))
		}
		t2 = append(t2, mkLoad("b.r2", "b.xa"))
		return encodeThreads(t, model, initXY(), t1, t2)
	}
	want := map[[2]interface{}]lsl.Value{
		{1, "b.r1"}: lsl.Int(1),
		{2, "b.r2"}: lsl.Int(0),
	}
	// Note threads are (init, t1, t2): indices 1 and 2; both loads are
	// in thread 2.
	want = map[[2]interface{}]lsl.Value{
		{2, "b.r1"}: lsl.Int(1),
		{2, "b.r2"}: lsl.Int(0),
	}
	if got := solveWith(t, build(memmodel.SequentialConsistency, false), want); got != sat.Unsat {
		t.Errorf("SC message passing: %v, want UNSAT", got)
	}
	if got := solveWith(t, build(memmodel.Relaxed, false), want); got != sat.Sat {
		t.Errorf("Relaxed unfenced message passing: %v, want SAT", got)
	}
	if got := solveWith(t, build(memmodel.Relaxed, true), want); got != sat.Unsat {
		t.Errorf("Relaxed fenced message passing: %v, want UNSAT", got)
	}
}

// TestIRIW reproduces paper Fig. 2: the outcome is not possible on
// Relaxed (which orders all stores globally), even though weaker
// models allow it.
func TestIRIW(t *testing.T) {
	t3 := []lsl.Stmt{
		mkConst("c.xa", lsl.Ptr(0)), mkConst("c.ya", lsl.Ptr(1)),
		mkLoad("c.r1", "c.xa"),
		mkFence(lsl.FenceLoadLoad),
		mkLoad("c.r2", "c.ya"),
	}
	t4 := []lsl.Stmt{
		mkConst("d.xa", lsl.Ptr(0)), mkConst("d.ya", lsl.Ptr(1)),
		mkLoad("d.r1", "d.ya"),
		mkFence(lsl.FenceLoadLoad),
		mkLoad("d.r2", "d.xa"),
	}
	t1 := []lsl.Stmt{
		mkConst("a.xa", lsl.Ptr(0)), mkConst("a.one", lsl.Int(1)),
		mkStore("a.xa", "a.one"),
	}
	t2 := []lsl.Stmt{
		mkConst("b.ya", lsl.Ptr(1)), mkConst("b.one", lsl.Int(1)),
		mkStore("b.ya", "b.one"),
	}
	e := encodeThreads(t, memmodel.Relaxed, initXY(), t1, t2, t3, t4)
	want := map[[2]interface{}]lsl.Value{
		{3, "c.r1"}: lsl.Int(1),
		{3, "c.r2"}: lsl.Int(0),
		{4, "d.r1"}: lsl.Int(1),
		{4, "d.r2"}: lsl.Int(0),
	}
	if got := solveWith(t, e, want); got != sat.Unsat {
		t.Errorf("IRIW on Relaxed: %v, want UNSAT (stores are globally ordered)", got)
	}
}

// TestStoreForwarding: a thread reads its own buffered store under
// Relaxed even when the store has not yet reached memory order.
func TestStoreForwarding(t *testing.T) {
	t1 := []lsl.Stmt{
		mkConst("a.xa", lsl.Ptr(0)), mkConst("a.one", lsl.Int(1)),
		mkStore("a.xa", "a.one"),
		mkLoad("a.r", "a.xa"),
	}
	e := encodeThreads(t, memmodel.Relaxed, initXY(), t1)
	// The load must see 1 (own store forwarded or from memory); 0 is
	// impossible because same-address program order holds
	// (store x then load x: axiom 1 orders the store only before
	// *stores*... forwarding still makes the own store visible, and it
	// is the maximal visible one unless another store intervenes —
	// there is none writing 0 after init).
	want := map[[2]interface{}]lsl.Value{{1, "a.r"}: lsl.Int(0)}
	if got := solveWith(t, e, want); got != sat.Unsat {
		t.Errorf("store forwarding: load saw stale 0: %v, want UNSAT", got)
	}
}

// TestCoherenceSameAddressStores: same-address stores of one thread
// stay in order even under Relaxed.
func TestCoherenceSameAddressStores(t *testing.T) {
	t1 := []lsl.Stmt{
		mkConst("a.xa", lsl.Ptr(0)),
		mkConst("a.one", lsl.Int(1)), mkConst("a.two", lsl.Int(2)),
		mkStore("a.xa", "a.one"),
		mkStore("a.xa", "a.two"),
	}
	t2 := []lsl.Stmt{
		mkConst("b.xa", lsl.Ptr(0)),
		mkLoad("b.r1", "b.xa"),
		mkLoad("b.r2", "b.xa"),
	}
	e := encodeThreads(t, memmodel.Relaxed, initXY(), t1, t2)
	// Reading 2 then 1 would require the observer to see the stores
	// out of order. The two loads may themselves be reordered under
	// Relaxed (relaxation 4), so r1=2, r2=1 IS allowed; forbid the
	// reordering with a load-load fence instead.
	t2f := []lsl.Stmt{
		mkConst("b.xa", lsl.Ptr(0)),
		mkLoad("b.r1", "b.xa"),
		mkFence(lsl.FenceLoadLoad),
		mkLoad("b.r2", "b.xa"),
	}
	ef := encodeThreads(t, memmodel.Relaxed, initXY(), t1, t2f)
	want := map[[2]interface{}]lsl.Value{
		{2, "b.r1"}: lsl.Int(2),
		{2, "b.r2"}: lsl.Int(1),
	}
	if got := solveWith(t, ef, want); got != sat.Unsat {
		t.Errorf("fenced coherence violation: %v, want UNSAT", got)
	}
	if got := solveWith(t, e, want); got != sat.Sat {
		t.Errorf("unfenced same-address load reordering: %v, want SAT", got)
	}
}

// TestAtomicBlocksExcludeInterleaving: two atomic increments never
// lose an update.
func TestAtomicBlocksExcludeInterleaving(t *testing.T) {
	inc := func(p string) []lsl.Stmt {
		return []lsl.Stmt{
			mkConst(p+".xa", lsl.Ptr(0)),
			mkConst(p+".one", lsl.Int(1)),
			&lsl.AtomicStmt{Body: []lsl.Stmt{
				mkLoad(p+".v", p+".xa"),
				&lsl.OpStmt{Dst: lsl.Reg(p + ".v1"), Op: lsl.OpAdd,
					Args: []lsl.Reg{lsl.Reg(p + ".v"), lsl.Reg(p + ".one")}},
				mkStore(p+".xa", p+".v1"),
			}},
			mkLoad(p+".after", p+".xa"),
		}
	}
	e := encodeThreads(t, memmodel.Relaxed, initXY(), inc("a"), inc("b"))
	// Both threads read back the final value somewhere; the counter
	// must end at 2: it is impossible for both increments to read 0.
	e.B.Assert(e.EqVal(e.Envs[1][lsl.Reg("a.v")], e.ConstVal(lsl.Int(0))))
	e.B.Assert(e.EqVal(e.Envs[2][lsl.Reg("b.v")], e.ConstVal(lsl.Int(0))))
	if got := e.S.Solve(); got != sat.Unsat {
		t.Errorf("atomic increments both read 0: %v, want UNSAT", got)
	}
}

// TestSerialModelOperationAtomicity: under Serial whole operations are
// atomic even without atomic blocks.
func TestSerialModelOperationAtomicity(t *testing.T) {
	inc := func(p string) []lsl.Stmt {
		return []lsl.Stmt{
			mkConst(p+".xa", lsl.Ptr(0)),
			mkConst(p+".one", lsl.Int(1)),
			mkLoad(p+".v", p+".xa"),
			&lsl.OpStmt{Dst: lsl.Reg(p + ".v1"), Op: lsl.OpAdd,
				Args: []lsl.Reg{lsl.Reg(p + ".v"), lsl.Reg(p + ".one")}},
			mkStore(p+".xa", p+".v1"),
		}
	}
	eSC := encodeThreads(t, memmodel.SequentialConsistency, initXY(), inc("a"), inc("b"))
	eSer := encodeThreads(t, memmodel.Serial, initXY(), inc("a"), inc("b"))
	want := map[[2]interface{}]lsl.Value{
		{1, "a.v"}: lsl.Int(0),
		{2, "b.v"}: lsl.Int(0),
	}
	// Under plain SC the unsynchronized increments can interleave and
	// both read 0; under Serial each operation is atomic, so they
	// cannot.
	if got := solveWith(t, eSC, want); got != sat.Sat {
		t.Errorf("SC lost update: %v, want SAT", got)
	}
	if got := solveWith(t, eSer, want); got != sat.Unsat {
		t.Errorf("Serial lost update: %v, want UNSAT", got)
	}
}

// TestUninitializedReadIsError: reading a location never written and
// branching on it must be reported as an error.
func TestUninitializedReadIsError(t *testing.T) {
	t1 := []lsl.Stmt{
		mkConst("a.xa", lsl.Ptr(7)), // never-initialized location
		mkLoad("a.r", "a.xa"),
		&lsl.OpStmt{Dst: "a.c", Op: lsl.OpBool, Args: []lsl.Reg{"a.r"}},
	}
	info := ranges.Analyze([][]lsl.Stmt{t1})
	e := New(memmodel.SequentialConsistency, info)
	if err := e.Encode([]Thread{{}, {Name: "t1", Segments: [][]lsl.Stmt{t1}, OpIDs: []int{0}}}); err != nil {
		t.Fatal(err)
	}
	e.B.Assert(e.ErrorNode())
	if got := e.S.Solve(); got != sat.Sat {
		t.Errorf("uninitialized use: %v, want SAT (error reachable)", got)
	}
}

// TestGuardedAccessDoesNotConstrain: a load that does not execute must
// not constrain anything.
func TestGuardedAccessDoesNotConstrain(t *testing.T) {
	t1 := []lsl.Stmt{
		mkConst("a.xa", lsl.Ptr(0)),
		mkConst("a.f", lsl.Int(0)),
		&lsl.BlockStmt{Tag: "skip", Body: []lsl.Stmt{
			&lsl.BreakStmt{Cond: "a.t", Tag: "skip"},
			mkLoad("a.r", "a.xa"),
		}},
	}
	// a.t undefined would be an error; set it to 1 so the break is
	// taken and the load is skipped.
	t1 = append([]lsl.Stmt{mkConst("a.t", lsl.Int(1))}, t1...)
	e := encodeThreads(t, memmodel.SequentialConsistency, initXY(), t1)
	// The skipped load leaves a.r undefined.
	want := map[[2]interface{}]lsl.Value{{1, "a.r"}: lsl.Undef()}
	if got := solveWith(t, e, want); got != sat.Sat {
		t.Errorf("skipped load: %v, want SAT with undefined result", got)
	}
}

// TestEvalValRoundTrip checks SymVal decoding through the solver.
func TestEvalValRoundTrip(t *testing.T) {
	info := ranges.Disabled()
	e := New(memmodel.SequentialConsistency, info)
	vals := []lsl.Value{
		lsl.Undef(), lsl.Int(0), lsl.Int(5), lsl.Int(-3),
		lsl.Ptr(0), lsl.Ptr(3, 1), lsl.Ptr(2, 0, 1),
	}
	var svs []SymVal
	for _, v := range vals {
		sv := e.FreshVal()
		e.B.Assert(e.EqVal(sv, e.ConstVal(v)))
		svs = append(svs, sv)
	}
	if e.S.Solve() != sat.Sat {
		t.Fatal("UNSAT")
	}
	for i, v := range vals {
		if got := e.EvalVal(svs[i]); !got.Equal(v) {
			t.Errorf("round trip %v: got %v", v, got)
		}
	}
}

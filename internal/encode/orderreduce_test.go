package encode

import (
	"fmt"
	"math/rand"
	"testing"

	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/ranges"
	"checkfence/internal/sat"
)

// encodeThreadsCfg is encodeThreads with an explicit Config, so tests
// can pit the reduced order encoding against the unreduced one.
func encodeThreadsCfg(t *testing.T, model memmodel.Model, cfg Config, bodies ...[]lsl.Stmt) *Encoder {
	t.Helper()
	info := ranges.Analyze(bodies)
	e := NewWithConfig(model, info, cfg)
	threads := make([]Thread, len(bodies))
	for i, b := range bodies {
		threads[i] = Thread{Name: "t", Segments: [][]lsl.Stmt{b}, OpIDs: []int{i}}
	}
	if err := e.Encode(threads); err != nil {
		t.Fatal(err)
	}
	e.B.Assert(e.ErrorNode().Not())
	return e
}

// TestOrderReduceDifferential re-runs the classic litmus shapes under
// every memory model with the order reduction on and off; the verdicts
// must be identical, and the reduced encoding must actually reduce
// something on at least one model.
func TestOrderReduceDifferential(t *testing.T) {
	mkT1 := func(fenced bool) []lsl.Stmt {
		t1 := []lsl.Stmt{
			mkConst("a.xa", lsl.Ptr(0)), mkConst("a.ya", lsl.Ptr(1)),
			mkConst("a.one", lsl.Int(1)),
			mkStore("a.xa", "a.one"),
		}
		if fenced {
			t1 = append(t1, mkFence(lsl.FenceStoreStore))
		}
		return append(t1, mkStore("a.ya", "a.one"))
	}
	t2 := []lsl.Stmt{
		mkConst("b.xa", lsl.Ptr(0)), mkConst("b.ya", lsl.Ptr(1)),
		mkLoad("b.r1", "b.ya"),
		mkLoad("b.r2", "b.xa"),
	}
	models := []memmodel.Model{
		memmodel.SequentialConsistency, memmodel.TSO, memmodel.PSO,
		memmodel.Relaxed, memmodel.Serial,
	}
	reduced := 0
	for _, model := range models {
		for _, fenced := range []bool{false, true} {
			mp := map[[2]interface{}]lsl.Value{
				{2, "b.r1"}: lsl.Int(1),
				{2, "b.r2"}: lsl.Int(0),
			}
			on := encodeThreadsCfg(t, model, Config{OrderReduce: true}, initXY(), mkT1(fenced), t2)
			off := encodeThreadsCfg(t, model, Config{}, initXY(), mkT1(fenced), t2)
			stOn := solveWith(t, on, mp)
			stOff := solveWith(t, off, mp)
			if stOn != stOff {
				t.Errorf("%v fenced=%v: reduced=%v unreduced=%v", model, fenced, stOn, stOff)
			}
			if off.OrderVarsFixed+off.OrderVarsMerged != 0 {
				t.Errorf("%v: unreduced encoder reports reduction counters", model)
			}
			reduced += on.OrderVarsFixed + on.OrderVarsMerged
		}
	}
	if reduced == 0 {
		t.Error("reduction never fixed or merged a single order variable across all models")
	}
}

// TestOrderReduceFenceFixing: a fence matching the pair each model
// actually relaxes (store→load under TSO, store→store under
// PSO/Relaxed) between two always-executed same-thread accesses
// forces their order constant, so the reduced encoding must report
// fixed variables.
func TestOrderReduceFenceFixing(t *testing.T) {
	prefix := []lsl.Stmt{
		mkConst("a.xa", lsl.Ptr(0)), mkConst("a.ya", lsl.Ptr(1)),
		mkConst("a.one", lsl.Int(1)),
	}
	storeLoad := append(append([]lsl.Stmt{}, prefix...),
		mkStore("a.xa", "a.one"),
		mkFence(lsl.FenceStoreLoad),
		mkLoad("a.r1", "a.ya"))
	storeStore := append(append([]lsl.Stmt{}, prefix...),
		mkStore("a.xa", "a.one"),
		mkFence(lsl.FenceStoreStore),
		mkStore("a.ya", "a.one"))
	for _, tc := range []struct {
		model memmodel.Model
		body  []lsl.Stmt
	}{
		{memmodel.TSO, storeLoad},
		{memmodel.PSO, storeStore},
		{memmodel.Relaxed, storeStore},
	} {
		e := encodeThreadsCfg(t, tc.model, Config{OrderReduce: true}, initXY(), tc.body)
		if e.OrderVarsFixed == 0 {
			t.Errorf("%v: fence fixed no order variable", tc.model)
		}
		if st := e.S.Solve(); st != sat.Sat {
			t.Errorf("%v: fenced single-thread program must be satisfiable, got %v", tc.model, st)
		}
	}
}

// TestOrderReduceSerialMerging: under Serial, all operations of one
// invocation are interchangeable for ordering purposes, so the
// reduction must merge their order variables.
func TestOrderReduceSerialMerging(t *testing.T) {
	t1 := []lsl.Stmt{
		mkConst("a.xa", lsl.Ptr(0)), mkConst("a.one", lsl.Int(1)),
		mkStore("a.xa", "a.one"),
		mkLoad("a.r1", "a.xa"),
	}
	t2 := []lsl.Stmt{
		mkConst("b.xa", lsl.Ptr(0)), mkConst("b.two", lsl.Int(2)),
		mkStore("b.xa", "b.two"),
		mkLoad("b.r2", "b.xa"),
	}
	e := encodeThreadsCfg(t, memmodel.Serial, Config{OrderReduce: true}, initXY(), t1, t2)
	if e.OrderVarsMerged == 0 {
		t.Error("Serial: no order variables merged for same-invocation operations")
	}
	if st := e.S.Solve(); st != sat.Sat {
		t.Errorf("Serial merge encoding unsatisfiable: %v", st)
	}
}

// TestOrderReduceRandomDifferential cross-checks reduced vs unreduced
// encodings on random straight-line programs under every model: same
// verdict, and when satisfiable, the reduced model's register values
// are achievable in the unreduced encoding too (checked by re-solving
// the unreduced encoding under the reduced model's observation).
func TestOrderReduceRandomDifferential(t *testing.T) {
	models := []memmodel.Model{
		memmodel.SequentialConsistency, memmodel.TSO, memmodel.PSO,
		memmodel.Relaxed, memmodel.Serial,
	}
	fences := []lsl.FenceKind{
		lsl.FenceLoadLoad, lsl.FenceLoadStore,
		lsl.FenceStoreLoad, lsl.FenceStoreStore,
	}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		genThread := func(p string) []lsl.Stmt {
			body := []lsl.Stmt{
				mkConst(p+".xa", lsl.Ptr(0)), mkConst(p+".ya", lsl.Ptr(1)),
				mkConst(p+".one", lsl.Int(1)), mkConst(p+".two", lsl.Int(2)),
			}
			n := 3 + rng.Intn(3)
			for i := 0; i < n; i++ {
				addr := p + ".xa"
				if rng.Intn(2) == 0 {
					addr = p + ".ya"
				}
				switch rng.Intn(3) {
				case 0:
					src := p + ".one"
					if rng.Intn(2) == 0 {
						src = p + ".two"
					}
					body = append(body, mkStore(addr, src))
				case 1:
					body = append(body, mkLoad(fmt.Sprintf("%s.r%d", p, i), addr))
				default:
					body = append(body, mkFence(fences[rng.Intn(len(fences))]))
				}
			}
			return body
		}
		tA, tB := genThread("a"), genThread("b")
		model := models[rng.Intn(len(models))]

		on := encodeThreadsCfg(t, model, Config{OrderReduce: true}, initXY(), tA, tB)
		off := encodeThreadsCfg(t, model, Config{}, initXY(), tA, tB)
		stOn, stOff := on.S.Solve(), off.S.Solve()
		if stOn != stOff {
			t.Fatalf("seed %d %v: reduced=%v unreduced=%v", seed, model, stOn, stOff)
		}
		if stOn != sat.Sat {
			continue
		}
		// Pin every loaded register to the reduced model's value and
		// demand the unreduced encoding admits the same observation.
		for ti, env := range on.Envs {
			for reg, sv := range env {
				v := on.EvalVal(sv)
				osv, ok := off.Envs[ti][reg]
				if !ok {
					t.Fatalf("seed %d: unreduced encoder lacks register %v", seed, reg)
				}
				off.B.Assert(off.EqVal(osv, off.ConstVal(v)))
			}
		}
		if st := off.S.Solve(); st != sat.Sat {
			t.Fatalf("seed %d %v: reduced observation rejected by unreduced encoding: %v",
				seed, model, st)
		}
	}
}

// Package encode builds the propositional formula Φ(T,I,Y) whose
// solutions are exactly the executions of an unrolled test program on
// memory model Y (paper §3.2). It combines
//
//   - the thread-local formulas Δ (CBMC-style symbolic compilation of
//     each thread into circuits over SSA values), and
//   - the memory model formula Θ (the axioms of §2.3.2 over a total
//     memory order <M represented by one boolean per access pair, with
//     explicit transitivity clauses, and Init/Flows auxiliary
//     variables for the load value axioms).
package encode

import (
	"fmt"

	"checkfence/internal/bitvec"
	"checkfence/internal/lsl"
	"checkfence/internal/sat"
)

// SymVal is the circuit representation of an LSL value: a 2-bit kind
// tag and D components of width W.
//
// Encoding invariants:
//   - undefined: kind=00, all components zero
//   - integer:   kind=01, Comps[0] holds the two's complement value,
//     Comps[1..] are zero
//   - pointer:   kind=10, Comps[i] holds component_i + 1 for i < depth
//     and zero beyond, so the first zero component marks the pointer
//     depth and equality is plain componentwise comparison
type SymVal struct {
	K1, K0 bitvec.Node // kind bits (K1 K0): 00 undef, 01 int, 10 ptr
	Comps  []bitvec.BV
}

// IsUndef returns the node "v is the undefined value".
func (e *Encoder) IsUndef(v SymVal) bitvec.Node {
	return e.B.And(v.K1.Not(), v.K0.Not())
}

// IsInt returns the node "v is an integer".
func (e *Encoder) IsInt(v SymVal) bitvec.Node {
	return e.B.And(v.K1.Not(), v.K0)
}

// IsPtr returns the node "v is a pointer".
func (e *Encoder) IsPtr(v SymVal) bitvec.Node {
	return e.B.And(v.K1, v.K0.Not())
}

// ConstVal builds the circuit constant for an LSL value.
func (e *Encoder) ConstVal(v lsl.Value) SymVal {
	out := SymVal{K1: bitvec.False, K0: bitvec.False, Comps: make([]bitvec.BV, e.D)}
	for i := range out.Comps {
		out.Comps[i] = bitvec.ConstBV(e.W, 0)
	}
	switch v.Kind {
	case lsl.KindInt:
		out.K0 = bitvec.True
		out.Comps[0] = bitvec.ConstBV(e.W, v.Int)
	case lsl.KindPtr:
		out.K1 = bitvec.True
		for i, c := range v.Ptr {
			if i >= e.D {
				panic(fmt.Sprintf("encode: pointer %v exceeds depth bound %d", v, e.D))
			}
			out.Comps[i] = bitvec.ConstBV(e.W, c+1)
		}
	}
	return out
}

// UndefVal is the undefined constant.
func (e *Encoder) UndefVal() SymVal { return e.ConstVal(lsl.Undef()) }

// FreshVal allocates an unconstrained value (used for load results;
// the memory model axioms pin it to a stored value or undefined).
func (e *Encoder) FreshVal() SymVal {
	out := SymVal{K1: e.B.Var(), K0: e.B.Var(), Comps: make([]bitvec.BV, e.D)}
	for i := range out.Comps {
		out.Comps[i] = e.B.VarBV(e.W)
	}
	return out
}

// IntVal wraps an integer bitvector as a value.
func (e *Encoder) IntVal(bv bitvec.BV) SymVal {
	out := SymVal{K1: bitvec.False, K0: bitvec.True, Comps: make([]bitvec.BV, e.D)}
	out.Comps[0] = bv.Extend(e.W)
	for i := 1; i < e.D; i++ {
		out.Comps[i] = bitvec.ConstBV(e.W, 0)
	}
	return out
}

// BoolVal wraps a boolean node as the integer 0/1.
func (e *Encoder) BoolVal(n bitvec.Node) SymVal {
	bv := make(bitvec.BV, 1)
	bv[0] = n
	return e.IntVal(bv)
}

// EqVal returns the node "a equals b" under LSL equality: kinds,
// depths, and components all match. The encoding invariants make this
// a flat componentwise comparison.
func (e *Encoder) EqVal(a, b SymVal) bitvec.Node {
	acc := e.B.And(e.B.Iff(a.K1, b.K1), e.B.Iff(a.K0, b.K0))
	for i := 0; i < e.D; i++ {
		acc = e.B.And(acc, e.B.EqBV(a.Comps[i], b.Comps[i]))
	}
	return acc
}

// Truthy returns the node "a is a defined value C considers true":
// any pointer, or a non-zero integer. Undefined values are not truthy;
// callers emit a separate error for branching on them.
func (e *Encoder) Truthy(a SymVal) bitvec.Node {
	nonzero := e.B.IsZero(a.Comps[0]).Not()
	return e.B.Or(e.IsPtr(a), e.B.And(e.IsInt(a), nonzero))
}

// MuxVal returns c ? a : b.
func (e *Encoder) MuxVal(c bitvec.Node, a, b SymVal) SymVal {
	out := SymVal{
		K1:    e.B.Ite(c, a.K1, b.K1),
		K0:    e.B.Ite(c, a.K0, b.K0),
		Comps: make([]bitvec.BV, e.D),
	}
	for i := 0; i < e.D; i++ {
		out.Comps[i] = e.B.MuxBV(c, a.Comps[i], b.Comps[i])
	}
	return out
}

// AppendComp returns the pointer a extended with one more component
// whose (unshifted) value is given by comp; the append position is the
// first zero component. invalid reports structural failure: a is not
// a pointer or is already at maximum depth.
func (e *Encoder) AppendComp(a SymVal, comp bitvec.BV) (out SymVal, invalid bitvec.Node) {
	shifted := e.B.AddBV(comp.Extend(e.W), bitvec.ConstBV(e.W, 1))
	out = SymVal{K1: a.K1, K0: a.K0, Comps: make([]bitvec.BV, e.D)}
	out.Comps[0] = a.Comps[0]
	prevNonzero := e.B.IsZero(a.Comps[0]).Not()
	for k := 1; k < e.D; k++ {
		here := e.B.And(e.B.IsZero(a.Comps[k]), prevNonzero)
		out.Comps[k] = e.B.MuxBV(here, shifted, a.Comps[k])
		prevNonzero = e.B.IsZero(a.Comps[k]).Not()
	}
	full := e.B.IsZero(a.Comps[e.D-1]).Not()
	invalid = e.B.Or(e.IsPtr(a).Not(), full)
	return out, invalid
}

// EvalVal decodes a SymVal under the current SAT model.
func (e *Encoder) EvalVal(v SymVal) lsl.Value {
	return e.EvalValIn(e.S, v)
}

// EvalValIn decodes a SymVal under s's model, where s is a
// CloneFormula snapshot of e.S (see bitvec.Builder.EvalIn). Parallel
// mining workers use it to decode observations from their private
// clones without touching the shared solver.
func (e *Encoder) EvalValIn(s *sat.Solver, v SymVal) lsl.Value {
	k1, k0 := e.B.EvalIn(s, v.K1), e.B.EvalIn(s, v.K0)
	switch {
	case !k1 && !k0:
		return lsl.Undef()
	case !k1 && k0:
		raw := e.B.EvalBVIn(s, v.Comps[0])
		// Sign-extend from width W.
		if raw&(1<<uint(e.W-1)) != 0 {
			raw -= 1 << uint(e.W)
		}
		return lsl.Int(raw)
	case k1 && !k0:
		var comps []int64
		for i := 0; i < e.D; i++ {
			c := e.B.EvalBVIn(s, v.Comps[i])
			if c == 0 {
				break
			}
			comps = append(comps, c-1)
		}
		if len(comps) == 0 {
			comps = []int64{0} // malformed; decode defensively
		}
		return lsl.PtrFromComponents(comps)
	default:
		return lsl.Undef() // unreachable kind 11 on well-formed values
	}
}

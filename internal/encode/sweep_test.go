package encode

import (
	"fmt"
	"math/rand"
	"testing"

	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/ranges"
	"checkfence/internal/sat"
)

// sweepModels is the hardware-model family one encoding can serve.
var sweepModels = []memmodel.Model{
	memmodel.SequentialConsistency, memmodel.TSO, memmodel.PSO, memmodel.Relaxed,
}

// encodeSweep builds a sweep encoder over the given models with errors
// excluded, mirroring encodeThreadsCfg.
func encodeSweep(t *testing.T, models []memmodel.Model, cfg Config, bodies ...[]lsl.Stmt) *Encoder {
	t.Helper()
	info := ranges.Analyze(bodies)
	e, err := NewSweepWithConfig(models, info, cfg)
	if err != nil {
		t.Fatal(err)
	}
	threads := make([]Thread, len(bodies))
	for i, b := range bodies {
		threads[i] = Thread{Name: "t", Segments: [][]lsl.Stmt{b}, OpIDs: []int{i}}
	}
	if err := e.Encode(threads); err != nil {
		t.Fatal(err)
	}
	e.B.Assert(e.ErrorNode().Not())
	return e
}

// solveSweepWith solves the sweep encoder under model m's selectors
// with the wanted register values pinned by assumption (never by
// assertion — the encoder is shared across models).
func solveSweepWith(t *testing.T, e *Encoder, m memmodel.Model,
	want map[[2]interface{}]lsl.Value) sat.Status {
	t.Helper()
	assum := e.SelectorLits(m)
	for k, v := range want {
		ti, reg := k[0].(int), lsl.Reg(k[1].(string))
		sv, ok := e.Envs[ti][reg]
		if !ok {
			t.Fatalf("register %s not in thread %d env", reg, ti)
		}
		assum = append(assum, e.B.Lit(e.EqVal(sv, e.ConstVal(v))))
	}
	return e.S.Solve(assum...)
}

// TestSweepConstruction covers the constructor's contract: Serial and
// duplicates are rejected, the base model is the weakest member, and
// SelectorLits panics for models outside the sweep.
func TestSweepConstruction(t *testing.T) {
	info := ranges.Disabled()
	if _, err := NewSweepWithConfig(nil, info, Config{}); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := NewSweepWithConfig([]memmodel.Model{memmodel.Serial}, info, Config{}); err == nil {
		t.Error("Serial sweep accepted")
	}
	if _, err := NewSweepWithConfig([]memmodel.Model{memmodel.TSO, memmodel.TSO}, info, Config{}); err == nil {
		t.Error("duplicate sweep model accepted")
	}
	e, err := NewSweepWithConfig([]memmodel.Model{memmodel.TSO, memmodel.Relaxed, memmodel.PSO}, info, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Model != memmodel.Relaxed {
		t.Errorf("base model = %v, want relaxed (the weakest)", e.Model)
	}
	if got := len(e.SweepModels()); got != 3 {
		t.Errorf("SweepModels length = %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("SelectorLits for a non-member model did not panic")
		}
	}()
	es := encodeSweep(t, []memmodel.Model{memmodel.SequentialConsistency, memmodel.TSO},
		Config{}, initXY())
	es.SelectorLits(memmodel.Relaxed)
}

// TestSweepLitmusDifferential runs the store-buffering and
// message-passing shapes through one sweep encoding and through
// per-model encoders: every model's verdict on the weak observation
// must agree, and the weak models must actually diverge from SC so the
// selectors demonstrably change the theory being solved.
func TestSweepLitmusDifferential(t *testing.T) {
	mkWriter := func(fenced bool) []lsl.Stmt {
		t1 := []lsl.Stmt{
			mkConst("a.xa", lsl.Ptr(0)), mkConst("a.ya", lsl.Ptr(1)),
			mkConst("a.one", lsl.Int(1)),
			mkStore("a.xa", "a.one"),
		}
		if fenced {
			t1 = append(t1, mkFence(lsl.FenceStoreStore))
		}
		return append(t1, mkStore("a.ya", "a.one"))
	}
	mkReader := func(fenced bool) []lsl.Stmt {
		t2 := []lsl.Stmt{
			mkConst("b.xa", lsl.Ptr(0)), mkConst("b.ya", lsl.Ptr(1)),
			mkLoad("b.r1", "b.ya"),
		}
		if fenced {
			t2 = append(t2, mkFence(lsl.FenceLoadLoad))
		}
		return append(t2, mkLoad("b.r2", "b.xa"))
	}
	for _, fenced := range []bool{false, true} {
		// Message passing: r1 = 1 (saw the flag) but r2 = 0 (missed the
		// data) — forbidden under SC/TSO, allowed under PSO/Relaxed
		// unless fenced.
		obs := map[[2]interface{}]lsl.Value{
			{2, "b.r1"}: lsl.Int(1),
			{2, "b.r2"}: lsl.Int(0),
		}
		sw := encodeSweep(t, sweepModels, Config{OrderReduce: true}, initXY(), mkWriter(fenced), mkReader(fenced))
		if !fenced && sw.SelectorUnits == 0 {
			// Fully fenced threads can legitimately emit none: the fence
			// axioms force every candidate pair as a base-model constant.
			t.Fatal("sweep emitted no selector-guarded units")
		}
		if got := len(sw.SelectorSatVars()); got != len(sweepModels) {
			t.Fatalf("SelectorSatVars = %d, want %d", got, len(sweepModels))
		}
		got := map[memmodel.Model]sat.Status{}
		for _, m := range sweepModels {
			got[m] = solveSweepWith(t, sw, m, obs)
		}
		for _, m := range sweepModels {
			single := encodeThreadsCfg(t, m, Config{OrderReduce: true}, initXY(), mkWriter(fenced), mkReader(fenced))
			want := solveWith(t, single, obs)
			if got[m] != want {
				t.Errorf("fenced=%v %v: sweep=%v single=%v", fenced, m, got[m], want)
			}
		}
		if !fenced && (got[memmodel.SequentialConsistency] != sat.Unsat || got[memmodel.PSO] != sat.Sat) {
			t.Errorf("unfenced mp: sc=%v pso=%v, want unsat/sat", got[memmodel.SequentialConsistency], got[memmodel.PSO])
		}
		if fenced && got[memmodel.Relaxed] != sat.Unsat {
			t.Errorf("fenced mp: relaxed=%v, want unsat", got[memmodel.Relaxed])
		}
	}
}

// TestSweepRandomDifferential cross-checks the sweep encoding against
// per-model encoders on random straight-line programs, both ways: a
// sweep model's observation must be achievable in the single-model
// encoding, and a single-model observation must be achievable in the
// sweep under that model's selectors.
func TestSweepRandomDifferential(t *testing.T) {
	fences := []lsl.FenceKind{
		lsl.FenceLoadLoad, lsl.FenceLoadStore,
		lsl.FenceStoreLoad, lsl.FenceStoreStore,
	}
	for seed := int64(0); seed < 14; seed++ {
		rng := rand.New(rand.NewSource(seed))
		genThread := func(p string) []lsl.Stmt {
			body := []lsl.Stmt{
				mkConst(p+".xa", lsl.Ptr(0)), mkConst(p+".ya", lsl.Ptr(1)),
				mkConst(p+".one", lsl.Int(1)), mkConst(p+".two", lsl.Int(2)),
			}
			n := 3 + rng.Intn(3)
			for i := 0; i < n; i++ {
				addr := p + ".xa"
				if rng.Intn(2) == 0 {
					addr = p + ".ya"
				}
				switch rng.Intn(3) {
				case 0:
					src := p + ".one"
					if rng.Intn(2) == 0 {
						src = p + ".two"
					}
					body = append(body, mkStore(addr, src))
				case 1:
					body = append(body, mkLoad(fmt.Sprintf("%s.r%d", p, i), addr))
				default:
					body = append(body, mkFence(fences[rng.Intn(len(fences))]))
				}
			}
			return body
		}
		tA, tB := genThread("a"), genThread("b")
		cfg := Config{OrderReduce: seed%2 == 0}
		sw := encodeSweep(t, sweepModels, cfg, initXY(), tA, tB)
		for _, m := range sweepModels {
			single := encodeThreadsCfg(t, m, cfg, initXY(), tA, tB)
			stSweep := sw.S.Solve(sw.SelectorLits(m)...)
			stSingle := single.S.Solve()
			if stSweep != stSingle {
				t.Fatalf("seed %d %v: sweep=%v single=%v", seed, m, stSweep, stSingle)
			}
			if stSweep != sat.Sat {
				continue
			}
			// Sweep model's observation must be a single-model execution.
			for ti, env := range sw.Envs {
				for reg, sv := range env {
					v := sw.EvalVal(sv)
					osv, ok := single.Envs[ti][reg]
					if !ok {
						t.Fatalf("seed %d: single encoder lacks register %v", seed, reg)
					}
					single.B.Assert(single.EqVal(osv, single.ConstVal(v)))
				}
			}
			if st := single.S.Solve(); st != sat.Sat {
				t.Fatalf("seed %d %v: sweep observation rejected by single-model encoding: %v",
					seed, m, st)
			}
			// And the single-model observation must fit the sweep under
			// m's selectors (pinned by assumption, not assertion).
			assum := sw.SelectorLits(m)
			for ti, env := range single.Envs {
				for reg, sv := range env {
					v := single.EvalVal(sv)
					ssv := sw.Envs[ti][reg]
					assum = append(assum, sw.B.Lit(sw.EqVal(ssv, sw.ConstVal(v))))
				}
			}
			if st := sw.S.Solve(assum...); st != sat.Sat {
				t.Fatalf("seed %d %v: single-model observation rejected by sweep: %v",
					seed, m, st)
			}
		}
	}
}

package encode

import (
	"fmt"

	"checkfence/internal/bitvec"
	"checkfence/internal/faultinject"
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/ranges"
	"checkfence/internal/sat"
)

// Access is one memory access (load or store) of the unrolled test.
type Access struct {
	Idx     int  // index into Encoder.Accesses
	Thread  int  // thread index; 0 is the initialization pseudo-thread
	ProgIdx int  // program-order position within the thread
	IsLoad  bool // load or store
	OpID    int  // operation invocation id (-1 for none)
	Group   int  // atomic block id (-1 for none)

	Exec    bitvec.Node // guard: does this access execute
	Addr    SymVal
	Val     SymVal  // store: value written; load: value read
	AddrReg lsl.Reg // source register of the address, for alias queries
	Desc    string  // human-readable source form for traces
}

// FenceEv is a fence occurrence (kept separate from accesses; fences
// do not participate in the memory order, they constrain it).
type FenceEv struct {
	Thread  int
	ProgIdx int
	Kind    lsl.FenceKind
	Exec    bitvec.Node
}

// HavocEv is one havoc occurrence: a nondeterministic value the SAT
// solver chooses freely. Recording them lets trace decoding recover
// the concrete choices of a counterexample so the replay validator can
// feed the same values back through the reference interpreter.
type HavocEv struct {
	Thread int
	Exec   bitvec.Node // guard: does this havoc execute
	Val    bitvec.BV   // the chosen value (zero-extended on decode)
}

// ErrCond is a potential runtime error with its condition.
type ErrCond struct {
	Cond bitvec.Node
	Msg  string
}

// Thread is one input thread: a name, its unrolled operation
// segments, and the operation ids they belong to.
type Thread struct {
	Name string
	// Segments are compiled in order; all statements of segment i
	// belong to operation OpIDs[i].
	Segments [][]lsl.Stmt
	OpIDs    []int
}

// Config selects the formula-minimization layers applied while
// building and before solving Φ. The zero value disables everything;
// DefaultConfig enables all layers.
type Config struct {
	// RewriteLevel is the AIG structural rewriting level applied at
	// gate construction (0 = off, 1 = one-level rules, 2 = two-level
	// rules).
	RewriteLevel int
	// PolarityAware selects Plaisted–Greenbaum polarity-aware CNF
	// encoding instead of full two-polarity Tseitin.
	PolarityAware bool
	// Preprocess enables SatELite-style CNF preprocessing (bounded
	// variable elimination, subsumption, self-subsuming resolution)
	// before the first Solve; see PreprocessCNF.
	Preprocess bool
	// OrderReduce enables the model-aware reduction of the memory-order
	// encoding: order variables forced by program order together with
	// the fence and same-address axioms become constants, the
	// interchangeable order pairs of an atomic block (and, under
	// Serial, of an operation) collapse into one variable, and the
	// transitivity axioms are emitted only over the reduced skeleton.
	OrderReduce bool
	// Inprocess enables the solver's inprocessing layer (clause
	// vivification, on-the-fly subsumption, the tiered learnt-clause
	// database, chronological backtracking); see internal/sat.
	Inprocess bool
	// Abort, when non-nil, is polled between encode phases and
	// periodically inside the heavy compilation and axiom loops; a
	// non-nil return aborts Encode with that error. Budgeted checks
	// install a deadline poll here so a formula too large to build in
	// time fails promptly instead of after the full encode.
	Abort func() error
	// Faults, when non-nil, installs fault-injection hooks on the
	// encoder and its solver (see internal/faultinject).
	Faults faultinject.Faults
}

// DefaultConfig returns the full minimization pipeline.
func DefaultConfig() Config {
	return Config{RewriteLevel: 2, PolarityAware: true, Preprocess: true,
		OrderReduce: true, Inprocess: true}
}

// Encoder assembles Φ for one (test, model) pair.
type Encoder struct {
	S     *sat.Solver
	B     *bitvec.Builder
	Model memmodel.Model
	Info  *ranges.Info
	Cfg   Config

	W int // component bit width
	D int // pointer depth bound

	Accesses []*Access
	Fences   []*FenceEv
	Havocs   []*HavocEv
	Errors   []ErrCond
	Overflow map[int]bitvec.Node // loop id -> "bound exhausted" guard

	// Envs[i] is the final register environment of thread i, from
	// which the harness extracts observed argument/return values.
	Envs []map[lsl.Reg]SymVal

	order     [][]bitvec.Node // order[i][j] for i<j: node for i <M j
	numGroups int

	// Order-encoding reduction state (Cfg.OrderReduce): orderRep maps
	// each access to the representative of its merge class (identity
	// when reduction is off), and the counters record how many pairs
	// were fixed to constants beyond the baseline rules and how many
	// shared an already-allocated variable.
	orderRep        []int
	OrderVarsFixed  int
	OrderVarsMerged int

	// Model-sweep state (NewSweepWithConfig): the swept models in
	// decreasing strength, one selector variable per model, and the
	// count of selector-guarded program-order unit clauses emitted.
	// Empty on single-model encoders. Model holds the weakest swept
	// model — its axioms are the unguarded base every stronger model's
	// guarded deltas build on.
	sweep         []memmodel.Model
	selectors     []bitvec.Node
	SelectorUnits int

	// abortErr caches the first non-nil Cfg.Abort result; once set,
	// every remaining encode loop bails without re-polling.
	abortErr error
	// stmtTick rate-limits the abort poll inside statement compilation.
	stmtTick int
}

// New creates an encoder over a fresh solver with the default
// minimization configuration.
func New(model memmodel.Model, info *ranges.Info) *Encoder {
	return NewWithConfig(model, info, DefaultConfig())
}

// NewWithConfig creates an encoder over a fresh solver with an
// explicit minimization configuration.
func NewWithConfig(model memmodel.Model, info *ranges.Info, cfg Config) *Encoder {
	s := sat.New()
	s.SetInprocess(cfg.Inprocess)
	b := bitvec.NewBuilder(s)
	b.SetRewriteLevel(cfg.RewriteLevel)
	b.SetPolarityAware(cfg.PolarityAware)
	if cfg.Faults != nil {
		s.SetFaults(cfg.Faults)
	}
	e := &Encoder{
		S:        s,
		B:        b,
		Model:    model,
		Info:     info,
		Cfg:      cfg,
		W:        info.IntWidth,
		D:        info.MaxPtrDepth,
		Overflow: map[int]bitvec.Node{},
	}
	if e.D < 1 {
		e.D = 1
	}
	return e
}

// NewSweepWithConfig creates a model-sweep encoder: one formula that
// serves every model in models, each selected by assuming its selector
// literals (SelectorLits). The base axioms are the weakest model's —
// sound for every stronger model, whose executions are a subset — and
// each stronger model's additional unconditional program-order
// requirements become unit clauses guarded by that model's selector
// (assertSweepUnits). Serial is rejected: its seriality axioms and
// operation merge classes reshape the formula itself, not just the
// order constraints, so it cannot share an encoding with the hardware
// models.
func NewSweepWithConfig(models []memmodel.Model, info *ranges.Info, cfg Config) (*Encoder, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("encode: sweep needs at least one model")
	}
	seen := map[memmodel.Model]bool{}
	sweep := make([]memmodel.Model, 0, len(models))
	for _, m := range models {
		if m == memmodel.Serial {
			return nil, fmt.Errorf("encode: the Serial model cannot join a sweep")
		}
		if seen[m] {
			return nil, fmt.Errorf("encode: duplicate sweep model %s", m)
		}
		seen[m] = true
		sweep = append(sweep, m)
	}
	e := NewWithConfig(memmodel.Weakest(sweep), info, cfg)
	e.sweep = sweep
	return e, nil
}

// SweepModels returns the swept models (nil on single-model encoders).
func (e *Encoder) SweepModels() []memmodel.Model { return e.sweep }

// aborted polls the abort hook, caching the first error so the heavy
// encode loops can stop mid-phase with one cheap comparison.
func (e *Encoder) aborted() bool {
	if e.abortErr != nil {
		return true
	}
	if e.Cfg.Abort != nil {
		e.abortErr = e.Cfg.Abort()
	}
	return e.abortErr != nil
}

// pollAbort is the rate-limited abort check used in the per-statement
// compilation loop.
func (e *Encoder) pollAbort() error {
	e.stmtTick++
	if e.stmtTick&63 == 0 && e.aborted() {
		return e.abortErr
	}
	return nil
}

// PreprocessCNF runs CNF preprocessing over the clauses emitted so
// far, honoring the incremental contract: the given root literals
// (error literal, observation bits — anything later clauses,
// assumptions, or blocking clauses will mention) and every
// materialized memory-order variable are frozen against elimination.
// Callers must materialize those roots before calling this, and only
// add clauses over frozen (or fresh) variables afterwards. A no-op
// unless Cfg.Preprocess is set.
func (e *Encoder) PreprocessCNF(roots ...sat.Lit) {
	if !e.Cfg.Preprocess {
		return
	}
	for _, l := range roots {
		e.S.Freeze(l.Var())
	}
	for _, v := range e.OrderSatVars() {
		e.S.Freeze(v)
	}
	// Sweep selector variables are assumed on every per-model solve and
	// must survive elimination just like the order variables.
	for _, v := range e.SelectorSatVars() {
		e.S.Freeze(v)
	}
	e.S.Preprocess()
}

// OrderSatVars returns the SAT variables of every materialized,
// non-constant memory-order node. PreprocessCNF freezes them; the
// cube-and-conquer splitter prefers them as splitting variables, since
// the memory order decides the interleaving structure of an execution
// and both polarities of such a split carve out genuinely different
// executions.
func (e *Encoder) OrderSatVars() []int {
	var vars []int
	seen := map[int]bool{}
	for _, row := range e.order {
		for _, n := range row {
			if n == bitvec.True || n == bitvec.False {
				continue
			}
			// Merged pairs share one variable; report it once.
			if v, ok := e.B.SatVar(n); ok && !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	return vars
}

// Encode compiles all threads and asserts the memory model axioms.
// Thread 0 must be the initialization pseudo-thread (possibly empty);
// its accesses are ordered before all others and execute sequentially.
// A configured Abort hook can stop the build between phases and inside
// the heavy loops; Encode then returns the hook's error.
func (e *Encoder) Encode(threads []Thread) error {
	if e.Cfg.Faults != nil && e.Cfg.Faults.Fire(faultinject.EncodePanic) {
		panic(faultinject.Injected{Site: faultinject.EncodePanic})
	}
	for ti, th := range threads {
		if e.aborted() {
			return e.abortErr
		}
		env, err := e.compileThread(ti, th)
		if err != nil {
			return fmt.Errorf("encode: thread %d (%s): %w", ti, th.Name, err)
		}
		e.Envs = append(e.Envs, env)
	}
	for _, phase := range []func(){e.buildOrder, e.assertOrderAxioms, e.assertSweepUnits, e.assertValueAxioms} {
		if e.aborted() {
			return e.abortErr
		}
		phase()
	}
	if e.abortErr != nil {
		// A mid-phase abort leaves the formula incomplete; surface it.
		return e.abortErr
	}
	return nil
}

// mLess returns the node "access i happens before access j in memory
// order". It is defined for i != j.
func (e *Encoder) mLess(i, j int) bitvec.Node {
	if i < j {
		return e.order[i][j-i-1]
	}
	return e.order[j][i-j-1].Not()
}

// buildOrder allocates the memory order relation. Pairs whose order is
// fixed by the model (program order under SC/Serial, initialization
// before everything, atomic-block internal order) become constants,
// which shrinks the formula considerably without losing executions:
// the order of non-executed accesses is irrelevant to all other
// axioms, so fixing it is always sound.
//
// With Cfg.OrderReduce, two further model-aware reductions apply
// before any variable is allocated. First, pairs forced by the fence
// or same-address axioms under constant-true execution guards become
// constants too (orderForced): the axiom's clause would be a unit, so
// substituting the constant is equivalence-preserving. Second, the
// accesses of one atomic block (and, under Serial, of one operation)
// form a merge class: the atomicity/seriality axioms force every
// member to relate identically to any outside access, so all pairs
// (member, z) share a single variable keyed on the class
// representatives. A constant reaching one member pair therefore fixes
// the whole class pair — exactly what the equivalence axioms would
// have propagated — and assertContiguous/assertOrderAxioms skip the
// constraints the identification already discharges.
func (e *Encoder) buildOrder() {
	n := len(e.Accesses)
	e.orderRep = e.orderClasses()
	e.order = make([][]bitvec.Node, n)
	for i := 0; i < n; i++ {
		e.order[i] = make([]bitvec.Node, n-i-1)
	}

	type pair [2]int
	// Pass 1: collect constants per class pair. Keys are ordered rep
	// pairs; the node is oriented "k[0] before k[1]".
	fixed := map[pair]bitvec.Node{}
	before := func(i, j int) { // access i is forced before access j
		a, b := e.orderRep[i], e.orderRep[j]
		if a == b {
			return // intra-class pairs are handled in pass 2
		}
		node := bitvec.True
		if a > b {
			a, b = b, a
			node = bitvec.False
		}
		if old, ok := fixed[pair{a, b}]; ok {
			if old != node {
				// The forcing rules only ever order program-order-earlier
				// members of one class before later outsiders (and dually),
				// so two members can never disagree; reaching this branch
				// would mean the merge classes are unsound.
				panic("encode: contradictory forced memory order in reduction")
			}
			return
		}
		fixed[pair{a, b}] = node
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := e.Accesses[i], e.Accesses[j]
			switch {
			case a.Thread == 0 && b.Thread != 0:
				before(i, j) // init precedes everything
			case b.Thread == 0 && a.Thread != 0:
				before(j, i)
			case a.Thread == b.Thread && e.progOrderFixed(a, b):
				before(i, j) // accesses are created in program order
			case e.orderForced(i, j):
				before(i, j)
			}
		}
	}

	// Pass 2: assign nodes, allocating one variable per unfixed class
	// pair and counting the reduction's wins against the baseline rules.
	vars := map[pair]bitvec.Node{}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ra, rb := e.orderRep[i], e.orderRep[j]
			if ra == rb {
				// Same class: members are created in program order and
				// the class grouping guarantees the pair is fixed.
				e.order[i][j-i-1] = bitvec.True
				continue
			}
			k, inv := pair{ra, rb}, false
			if ra > rb {
				k, inv = pair{rb, ra}, true
			}
			node, isFixed := fixed[k]
			if !isFixed {
				var seen bool
				if node, seen = vars[k]; !seen {
					node = e.B.Var()
					vars[k] = node
				} else {
					e.OrderVarsMerged++
				}
			} else if !e.baselineFixed(i, j) {
				e.OrderVarsFixed++
			}
			if inv {
				node = node.Not()
			}
			e.order[i][j-i-1] = node
		}
	}
}

// orderClasses computes the merge classes of the reduction: the
// accesses of one atomic block always relate identically to outsiders
// (atomicity axiom), as do the accesses of one operation under Serial
// (seriality axiom), so each class needs only one order variable per
// outside class. Returns the representative (lowest member index) per
// access; the identity map when reduction is off.
func (e *Encoder) orderClasses() []int {
	n := len(e.Accesses)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	if !e.Cfg.OrderReduce {
		return parent
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra // smaller index becomes the representative
	}
	firstGroup := map[int]int{}
	firstOp := map[[2]int]int{}
	for i, a := range e.Accesses {
		if a.Group >= 0 {
			if f, ok := firstGroup[a.Group]; ok {
				union(f, i)
			} else {
				firstGroup[a.Group] = i
			}
		}
		if e.Model == memmodel.Serial && a.Thread != 0 && a.OpID >= 0 {
			k := [2]int{a.Thread, a.OpID}
			if f, ok := firstOp[k]; ok {
				union(f, i)
			} else {
				firstOp[k] = i
			}
		}
	}
	rep := make([]int, n)
	for i := range rep {
		rep[i] = find(i)
	}
	return rep
}

// baselineFixed reports whether the pair (i, j) is a constant under
// the baseline rules alone (without OrderReduce) — used to attribute
// the OrderVarsFixed counter to the reduction's own rules.
func (e *Encoder) baselineFixed(i, j int) bool {
	a, b := e.Accesses[i], e.Accesses[j]
	return a.Thread == 0 && b.Thread != 0 ||
		b.Thread == 0 && a.Thread != 0 ||
		a.Thread == b.Thread && e.progOrderFixed(a, b)
}

// orderForced reports whether the fence or same-address axioms force
// access i (program-order-earlier, same thread) before access j
// unconditionally. Only pairs whose execution guards are the constant
// True qualify: the axioms order the pair when every participant
// executes, and a constant guard discharges that hypothesis, so the
// axiom clause degenerates to the unit i <M j.
func (e *Encoder) orderForced(i, j int) bool {
	if !e.Cfg.OrderReduce {
		return false
	}
	a, b := e.Accesses[i], e.Accesses[j]
	if a.Thread != b.Thread || a.Thread == 0 || a.ProgIdx >= b.ProgIdx {
		return false
	}
	switch e.Model {
	case memmodel.TSO, memmodel.PSO, memmodel.Relaxed:
	default:
		return false // SC/Serial: program order is already unconditional
	}
	if a.Exec != bitvec.True || b.Exec != bitvec.True {
		return false
	}
	// A matching fence between the pair (assertFences).
	for _, f := range e.Fences {
		if f.Thread != a.Thread || f.Exec != bitvec.True {
			continue
		}
		if a.ProgIdx < f.ProgIdx && f.ProgIdx < b.ProgIdx &&
			f.Kind.OrdersBefore(a.IsLoad) && f.Kind.OrdersAfter(b.IsLoad) {
			return true
		}
	}
	// The same-address program-order axiom with statically equal
	// addresses (assertSameAddrProgramOrder; Relaxed and the PSO
	// store→store case — TSO has no conditional same-address axiom).
	if e.Model != memmodel.TSO && !b.IsLoad && !(e.Model == memmodel.PSO && a.IsLoad) {
		if la := e.ConstAddrLoc(a); la != "" && la == e.ConstAddrLoc(b) {
			return true
		}
	}
	return false
}

// progOrderFixed reports whether the model forces a (earlier in
// program order) before b unconditionally: always under SC and
// Serial, within one atomic block, for the initialization thread, and
// for the pairs each relaxed model keeps ordered (TSO relaxes only
// store→load; PSO additionally relaxes store→store, keeping loads in
// order; Relaxed keeps nothing unconditionally).
func (e *Encoder) progOrderFixed(a, b *Access) bool {
	if a.Thread == 0 {
		return true
	}
	if a.Group >= 0 && a.Group == b.Group {
		return true
	}
	return e.Model.KeepsProgramOrder(a.IsLoad, b.IsLoad)
}

// assertOrderAxioms emits transitivity, the model's program-order
// axioms, fence constraints, and atomicity constraints.
func (e *Encoder) assertOrderAxioms() {
	n := len(e.Accesses)

	// Transitivity: two clauses per unordered triple, emitted over the
	// merge-class skeleton only — one representative per class. Merged
	// pairs share their representative's node, so a representative
	// triple covers every member triple, and triples touching a class
	// twice reduce to tautologies over the intra-class constants.
	// Clauses trivially satisfied by constants or a repeated node are
	// skipped up front. The cubic loop dominates encode time on large
	// harnesses, so poll the abort hook per row.
	reps := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if e.orderRep[i] == i {
			reps = append(reps, i)
		}
	}
	for ii := 0; ii < len(reps); ii++ {
		if e.aborted() {
			return
		}
		i := reps[ii]
		for jj := ii + 1; jj < len(reps); jj++ {
			j := reps[jj]
			a := e.mLess(i, j)
			for kk := jj + 1; kk < len(reps); kk++ {
				k := reps[kk]
				b := e.mLess(j, k)
				c := e.mLess(i, k)
				if !(a == bitvec.False || b == bitvec.False || c == bitvec.True || c == a || c == b) {
					e.B.AssertOr(a.Not(), b.Not(), c)
				}
				if !(a == bitvec.True || b == bitvec.True || c == bitvec.False || a == c || b == c) {
					e.B.AssertOr(a, b, c.Not())
				}
			}
		}
	}

	switch e.Model {
	case memmodel.Relaxed, memmodel.PSO:
		e.assertSameAddrProgramOrder()
		e.assertFences()
	case memmodel.TSO:
		e.assertFences()
	}
	e.assertAtomicity()
	if e.Model == memmodel.Serial {
		e.assertSeriality()
	}
}

// assertSameAddrProgramOrder emits the conditional same-address
// program-order axiom of the weak models. For Relaxed it is axiom 1:
// if x <p y, a(x) = a(y), and y is a store, then x <M y. For PSO only
// the store→store case remains conditional (load-first pairs are
// already unconditional); store→load pairs are relaxed (the store
// buffer forwards).
func (e *Encoder) assertSameAddrProgramOrder() {
	for i, a := range e.Accesses {
		for j, b := range e.Accesses {
			if a.Thread != b.Thread || a.ProgIdx >= b.ProgIdx || !e.orderFree(i, j) {
				continue
			}
			if b.IsLoad {
				continue
			}
			if e.Model == memmodel.PSO && a.IsLoad {
				continue // already fixed unconditionally
			}
			if !e.Info.MayAlias(a.AddrReg, b.AddrReg) {
				continue
			}
			sameAddr := e.EqVal(a.Addr, b.Addr)
			e.B.AssertOr(a.Exec.Not(), b.Exec.Not(), sameAddr.Not(), e.mLess(i, j))
		}
	}
}

// orderFree reports whether the order of pair (i,j) is a free variable
// (not already fixed to a constant).
func (e *Encoder) orderFree(i, j int) bool {
	m := e.mLess(i, j)
	return m != bitvec.True && m != bitvec.False
}

// assertFences emits the fence axioms: for an X-Y fence f and accesses
// x <p f <p y with matching kinds, if all three execute then x <M y.
func (e *Encoder) assertFences() {
	for _, f := range e.Fences {
		for i, a := range e.Accesses {
			if a.Thread != f.Thread || a.ProgIdx >= f.ProgIdx {
				continue
			}
			if !f.Kind.OrdersBefore(a.IsLoad) {
				continue
			}
			for j, b := range e.Accesses {
				if b.Thread != f.Thread || b.ProgIdx <= f.ProgIdx {
					continue
				}
				if !f.Kind.OrdersAfter(b.IsLoad) || !e.orderFree(i, j) {
					continue
				}
				e.B.AssertOr(a.Exec.Not(), f.Exec.Not(), b.Exec.Not(), e.mLess(i, j))
			}
		}
	}
}

// assertAtomicity keeps each atomic block contiguous in memory order:
// for accesses g, g' of one block and any access z outside it,
// g <M z iff g' <M z. Chaining consecutive members suffices.
func (e *Encoder) assertAtomicity() {
	groups := map[int][]int{}
	for i, a := range e.Accesses {
		if a.Group >= 0 {
			groups[a.Group] = append(groups[a.Group], i)
		}
	}
	for _, members := range groups {
		e.assertContiguous(members, func(z *Access) bool { return true })
	}
}

// assertSeriality emits the seriality condition (paper §2.3.2): the
// accesses of one operation are contiguous with respect to accesses of
// other threads. (Operations of the same thread are already separated
// by program order.)
func (e *Encoder) assertSeriality() {
	ops := map[[2]int][]int{}
	for i, a := range e.Accesses {
		if a.OpID >= 0 && a.Thread != 0 {
			k := [2]int{a.Thread, a.OpID}
			ops[k] = append(ops[k], i)
		}
	}
	for k, members := range ops {
		thread := k[0]
		e.assertContiguous(members, func(z *Access) bool { return z.Thread != thread })
	}
}

// assertContiguous makes the given accesses adjacent in memory order
// relative to every access z (of a different group) accepted by
// include.
func (e *Encoder) assertContiguous(members []int, include func(*Access) bool) {
	if len(members) < 2 {
		return
	}
	inGroup := map[int]bool{}
	for _, m := range members {
		inGroup[m] = true
	}
	for z, az := range e.Accesses {
		if inGroup[z] || !include(az) {
			continue
		}
		for mi := 0; mi+1 < len(members); mi++ {
			g1, g2 := members[mi], members[mi+1]
			a := e.mLess(g1, z)
			b := e.mLess(g2, z)
			if a == b {
				continue // identified by the order reduction
			}
			// a <-> b
			e.B.AssertOr(a.Not(), b)
			e.B.AssertOr(a, b.Not())
		}
	}
}

// assertSweepUnits emits the per-model deltas of a sweep encoding.
//
// The base formula carries the weakest swept model's axioms, which
// every stronger model implies (a stronger model's memory orders are a
// subset of the weaker's, and its axiom set a superset). What a
// stronger model M adds over the weakest base W is exactly its larger
// unconditional program-order relation (KeepsProgramOrder): for every
// same-thread pair a <p b that M keeps ordered but the base left as a
// variable, emit the unit clause (¬sel_M ∨ a <M b). Solving under the
// assumptions sel_M ∧ ¬sel_M' for all M' ≠ M then yields precisely M's
// theory: the guarded units force M's program order, and the base's
// conditional fence/same-address clauses — emitted for W, the most
// general form in the family — are satisfied or subsumed once those
// orders are forced. M's conditional same-address requirements are a
// subset of W's emissions (OrdersSameAddrStore shrinks as models
// strengthen, and the pairs it drops are exactly the ones
// KeepsProgramOrder picked up), and the fence axioms do not branch on
// the model at all, so no guarded conditional clauses are needed.
//
// Store forwarding in the value axioms follows the base model. That is
// sound for a non-forwarding swept model (only SequentialConsistency
// qualifies) because its guarded units force every same-thread
// earlier-store/later-load pair into memory order, making the
// forwarding shortcut `before = True` coincide with the forced value
// of a <M b under that model's selector.
//
// Units are deduplicated per (merge-class pair, model): merged pairs
// share one variable, so one clause covers every member pair.
func (e *Encoder) assertSweepUnits() {
	if len(e.sweep) == 0 {
		return
	}
	e.selectors = make([]bitvec.Node, len(e.sweep))
	for i := range e.sweep {
		e.selectors[i] = e.B.Var()
	}
	type classPair struct{ ra, rb, model int }
	seen := map[classPair]bool{}
	n := len(e.Accesses)
	for mi, m := range e.sweep {
		if m == e.Model {
			continue // the base model's axioms are already unguarded
		}
		sel := e.selectors[mi]
		for i := 0; i < n; i++ {
			if e.aborted() {
				return
			}
			a := e.Accesses[i]
			if a.Thread == 0 {
				continue // init pairs are base constants already
			}
			for j := i + 1; j < n; j++ {
				b := e.Accesses[j]
				if b.Thread != a.Thread {
					continue
				}
				// Accesses are created in program order, so i < j means
				// a <p b within the thread.
				if !m.KeepsProgramOrder(a.IsLoad, b.IsLoad) {
					continue
				}
				node := e.mLess(i, j)
				if node == bitvec.True {
					continue // already forced under the base model
				}
				if node == bitvec.False {
					// The base rules only ever force program-order-earlier
					// accesses first within a thread, so a reversed
					// constant here would mean the base fixing is unsound
					// for the stronger model.
					panic("encode: sweep unit contradicts a base-model constant")
				}
				k := classPair{e.orderRep[i], e.orderRep[j], mi}
				if seen[k] {
					continue
				}
				seen[k] = true
				e.B.AssertOr(sel.Not(), node)
				e.SelectorUnits++
			}
		}
	}
}

// SelectorLits returns the assumption literals selecting model m on a
// sweep encoder: m's selector positive, every other selector negative.
// The negative literals matter — leaving another model's selector free
// would let the solver enable its guarded units and over-constrain the
// query. Panics when m was not in the sweep (a driver bug, not an
// input condition).
func (e *Encoder) SelectorLits(m memmodel.Model) []sat.Lit {
	if len(e.sweep) == 0 {
		panic("encode: SelectorLits on a single-model encoder")
	}
	lits := make([]sat.Lit, len(e.sweep))
	found := false
	for i, sm := range e.sweep {
		l := e.B.Lit(e.selectors[i])
		if sm == m {
			found = true
		} else {
			l = l.Not()
		}
		lits[i] = l
	}
	if !found {
		panic(fmt.Sprintf("encode: model %s is not in the sweep", m))
	}
	return lits
}

// SelectorSatVars returns the SAT variables of the sweep selectors
// (nil on single-model encoders, or before Encode). PreprocessCNF
// freezes them, and the cube splitter avoids them: a cube fixing a
// selector contradicts half the per-model assumption sets and solves
// trivially instead of usefully.
func (e *Encoder) SelectorSatVars() []int {
	if len(e.selectors) == 0 {
		return nil
	}
	vars := make([]int, 0, len(e.selectors))
	for _, s := range e.selectors {
		vars = append(vars, e.B.Lit(s).Var())
	}
	return vars
}

// assertValueAxioms emits the Init/Flows constraints that determine
// load values (axioms 2 and 3 of §2.3.2, for the chosen model's
// visibility definition).
func (e *Encoder) assertValueAxioms() {
	undef := e.UndefVal()
	for li, l := range e.Accesses {
		if !l.IsLoad {
			continue
		}
		if e.aborted() {
			return
		}
		// visible(s, l) for every store that may alias.
		type cand struct {
			si      int
			visible bitvec.Node
		}
		var cands []cand
		for si, s := range e.Accesses {
			if s.IsLoad || si == li {
				continue
			}
			if !e.Info.MayAlias(l.AddrReg, s.AddrReg) {
				continue
			}
			sameAddr := e.EqVal(l.Addr, s.Addr)
			before := e.mLess(si, li)
			if e.forwards() && s.Thread == l.Thread && s.ProgIdx < l.ProgIdx {
				// Store forwarding: a program-order-earlier store of
				// the same thread is visible even if globally later
				// (store buffering, present in TSO, PSO, and Relaxed).
				before = bitvec.True
			}
			vis := e.B.AndAll(s.Exec, sameAddr, before)
			if vis == bitvec.False {
				continue
			}
			cands = append(cands, cand{si: si, visible: vis})
		}

		initV := e.B.Var()
		// Init_l -> no store is visible; Init_l -> v(l) = undefined.
		for _, c := range cands {
			e.B.AssertOr(initV.Not(), c.visible.Not())
		}
		e.B.AssertOr(initV.Not(), e.EqVal(l.Val, undef))

		// Flows_{s,l} -> s visible, maximal, and v(l) = v(s).
		flowNodes := make([]bitvec.Node, 0, len(cands))
		for ci, c := range cands {
			flow := e.B.Var()
			flowNodes = append(flowNodes, flow)
			e.B.AssertOr(flow.Not(), c.visible)
			e.B.AssertOr(flow.Not(), e.EqVal(l.Val, e.Accesses[c.si].Val))
			for cj, c2 := range cands {
				if ci == cj {
					continue
				}
				// No visible store strictly after s.
				e.B.AssertOr(flow.Not(), c2.visible.Not(), e.mLess(c2.si, c.si))
			}
		}
		// An executed load reads from initial memory or some store.
		clause := append([]bitvec.Node{l.Exec.Not(), initV}, flowNodes...)
		e.B.AssertOr(clause...)
	}
}

// forwards reports whether the model has a store buffer with local
// forwarding.
func (e *Encoder) forwards() bool { return e.Model.Forwards() }

// ErrorNode returns the disjunction of all runtime error conditions
// (assertion failures and undefined-value uses).
func (e *Encoder) ErrorNode() bitvec.Node {
	nodes := make([]bitvec.Node, len(e.Errors))
	for i, ec := range e.Errors {
		nodes[i] = ec.Cond
	}
	return e.B.OrAll(nodes...)
}

// AssertNoOverflow constrains every loop to stay within its unrolling
// bound (used for regular checking; the lazy-bound probe asserts the
// opposite in a fresh encoder).
func (e *Encoder) AssertNoOverflow() {
	for _, g := range e.Overflow {
		e.B.Assert(g.Not())
	}
}

// AssertSomeOverflow requires that at least one loop exceeds its
// bound (the probe of paper §3.3).
func (e *Encoder) AssertSomeOverflow() {
	nodes := make([]bitvec.Node, 0, len(e.Overflow))
	for _, g := range e.Overflow {
		nodes = append(nodes, g)
	}
	e.B.AssertOr(nodes...)
}

// MemOrderNode exposes the circuit node for "access i precedes access
// j in memory order" (the commit-point method builds on it).
func (e *Encoder) MemOrderNode(i, j int) bitvec.Node { return e.mLess(i, j) }

// ConstAddrLoc returns the location an access statically addresses,
// or "" when the address is not a compile-time constant pointer.
func (e *Encoder) ConstAddrLoc(a *Access) lsl.Loc {
	if a.Addr.K1 != bitvec.True || a.Addr.K0 != bitvec.False {
		return ""
	}
	var comps []int64
	for _, bv := range a.Addr.Comps {
		v, ok := bv.IsConst()
		if !ok {
			return ""
		}
		if v == 0 {
			break
		}
		comps = append(comps, v-1)
	}
	if len(comps) == 0 {
		return ""
	}
	return lsl.LocOf(lsl.PtrFromComponents(comps))
}

// MemOrderBefore reports, under the solver's current model, whether
// access i precedes access j in the memory order (trace decoding).
func (e *Encoder) MemOrderBefore(i, j int) bool {
	if i == j {
		return false
	}
	return e.B.Eval(e.mLess(i, j))
}

// OverflowingLoops returns the loop ids whose overflow guard holds in
// the current model.
func (e *Encoder) OverflowingLoops() []int {
	var out []int
	for id, g := range e.Overflow {
		if e.B.Eval(g) {
			out = append(out, id)
		}
	}
	return out
}

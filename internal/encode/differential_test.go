package encode

import (
	"math/rand"
	"testing"

	"checkfence/internal/interp"
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/ranges"
	"checkfence/internal/sat"
)

// genProgram builds a random single-threaded program over two memory
// locations with branches, arithmetic, and memory traffic. It avoids
// undefined-value uses by initializing memory first.
func genProgram(rng *rand.Rand) []lsl.Stmt {
	body := []lsl.Stmt{
		&lsl.ConstStmt{Dst: "p0", Val: lsl.Ptr(0)},
		&lsl.ConstStmt{Dst: "p1", Val: lsl.Ptr(1)},
		&lsl.ConstStmt{Dst: "r0", Val: lsl.Int(int64(rng.Intn(4)))},
		&lsl.ConstStmt{Dst: "r1", Val: lsl.Int(int64(rng.Intn(4)))},
		&lsl.StoreStmt{Addr: "p0", Src: "r0"},
		&lsl.StoreStmt{Addr: "p1", Src: "r1"},
	}
	regs := []lsl.Reg{"r0", "r1", "r2", "r3"}
	// Seed r2, r3.
	body = append(body,
		&lsl.OpStmt{Dst: "r2", Op: lsl.OpAdd, Args: []lsl.Reg{"r0", "r1"}},
		&lsl.OpStmt{Dst: "r3", Op: lsl.OpSub, Args: []lsl.Reg{"r0", "r1"}},
	)
	ops := []lsl.Op{lsl.OpAdd, lsl.OpSub, lsl.OpMul, lsl.OpEq, lsl.OpNe,
		lsl.OpLt, lsl.OpLe, lsl.OpGt, lsl.OpGe, lsl.OpXor}
	n := 3 + rng.Intn(8)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0: // store
			addr := lsl.Reg([]string{"p0", "p1"}[rng.Intn(2)])
			body = append(body, &lsl.StoreStmt{Addr: addr, Src: regs[rng.Intn(4)]})
		case 1: // load
			addr := lsl.Reg([]string{"p0", "p1"}[rng.Intn(2)])
			body = append(body, &lsl.LoadStmt{Dst: regs[rng.Intn(4)], Addr: addr})
		case 2: // guarded block
			cond := regs[rng.Intn(4)]
			inner := &lsl.OpStmt{
				Dst: regs[rng.Intn(4)], Op: ops[rng.Intn(len(ops))],
				Args: []lsl.Reg{regs[rng.Intn(4)], regs[rng.Intn(4)]},
			}
			tag := "b" // nested same-tag blocks are fine lexically
			body = append(body, &lsl.BlockStmt{Tag: tag, Body: []lsl.Stmt{
				&lsl.OpStmt{Dst: "gc", Op: lsl.OpBool, Args: []lsl.Reg{cond}},
				&lsl.BreakStmt{Cond: "gc", Tag: tag},
				inner,
			}})
		case 3: // select
			body = append(body, &lsl.OpStmt{
				Dst: regs[rng.Intn(4)], Op: lsl.OpSelect,
				Args: []lsl.Reg{regs[rng.Intn(4)], regs[rng.Intn(4)], regs[rng.Intn(4)]},
			})
		default: // arithmetic
			body = append(body, &lsl.OpStmt{
				Dst: regs[rng.Intn(4)], Op: ops[rng.Intn(len(ops))],
				Args: []lsl.Reg{regs[rng.Intn(4)], regs[rng.Intn(4)]},
			})
		}
	}
	return body
}

// TestEncoderMatchesInterpreter: for deterministic single-threaded
// programs, the SAT encoding must have exactly the execution the
// interpreter computes — forcing the final register values to the
// interpreted ones is satisfiable, and forcing any register to a
// different value is unsatisfiable.
func TestEncoderMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	regs := []lsl.Reg{"r0", "r1", "r2", "r3"}
	for iter := 0; iter < 40; iter++ {
		body := genProgram(rng)

		p := lsl.NewProgram()
		p.AddGlobal("g0", 1)
		p.AddGlobal("g1", 1)
		m := interp.NewMachine(p)
		env, err := m.RunBody(body)
		if err != nil {
			// The generator can produce undefined-use errors via
			// skipped loads; such programs are exercised elsewhere.
			continue
		}

		for _, model := range []memmodel.Model{memmodel.SequentialConsistency, memmodel.Serial} {
			info := ranges.Analyze([][]lsl.Stmt{body})
			e := New(model, info)
			if err := e.Encode([]Thread{
				{},
				{Name: "t", Segments: [][]lsl.Stmt{body}, OpIDs: []int{0}},
			}); err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			e.B.Assert(e.ErrorNode().Not())
			for _, r := range regs {
				want, ok := env[r]
				if !ok {
					continue
				}
				sv := e.Envs[1][r]
				e.B.Assert(e.EqVal(sv, e.ConstVal(want)))
			}
			if st := e.S.Solve(); st != sat.Sat {
				t.Fatalf("iter %d (%v): interpreted execution infeasible in encoding", iter, model)
			}
			// Determinism: r2 differing from the interpreted value is
			// impossible.
			if want, ok := env["r2"]; ok {
				e2 := New(model, info)
				if err := e2.Encode([]Thread{
					{},
					{Name: "t", Segments: [][]lsl.Stmt{body}, OpIDs: []int{0}},
				}); err != nil {
					t.Fatal(err)
				}
				e2.B.Assert(e2.ErrorNode().Not())
				e2.B.Assert(e2.EqVal(e2.Envs[1]["r2"], e2.ConstVal(want)).Not())
				if st := e2.S.Solve(); st != sat.Unsat {
					t.Fatalf("iter %d (%v): single-threaded program nondeterministic in encoding", iter, model)
				}
			}
		}
	}
}

// Package bitvec provides a hash-consed boolean circuit builder with a
// Tseitin transformation to CNF, plus bitvector operations built on
// top of it.
//
// The CheckFence encoder compiles the thread-local program semantics
// (the Δ formulas of the paper) into such circuits: every SSA register
// becomes a vector of circuit nodes, and guarded assignments become
// multiplexers. The CNF lowering then materializes exactly the nodes
// that the final formula references as SAT variables and clauses,
// which keeps the CNF polynomial in the unrolled program size as the
// paper requires.
//
// Two minimization layers shrink the formula before the solver sees
// it:
//
//   - AIG rewriting: And applies the local one- and two-level
//     rewriting rules (contradiction, idempotence, subsumption,
//     substitution, resolution) of Brummayer & Biere, "Local Two-Level
//     And-Inverter Graph Minimization without Blowup", so structurally
//     redundant gates are never created. SetRewriteLevel selects how
//     deep the matching looks.
//
//   - Polarity-aware Tseitin (Plaisted–Greenbaum): materialization
//     tracks which implication direction of each gate's definition the
//     formula actually references and emits only that direction — one
//     or two clauses per gate instead of three. A gate first used in
//     one polarity is soundly promoted to the full encoding if the
//     other polarity is requested later (e.g. by a blocking clause of
//     the mining loop), which keeps incremental solving intact.
package bitvec

import (
	"checkfence/internal/sat"
)

// Node is a reference to a circuit node, with the low bit carrying
// negation (an and-inverter graph). The constant true node is the
// node with index 0; False is its negation.
type Node int32

// True and False are the constant nodes.
const (
	True  Node = 0
	False Node = 1
)

// Not negates a node.
func (n Node) Not() Node { return n ^ 1 }

func (n Node) index() int32  { return int32(n >> 1) }
func (n Node) negated() bool { return n&1 == 1 }

// gate is an internal AND gate (or a free variable when isVar).
type gate struct {
	a, b  Node
	isVar bool
}

// Polarity bits of a gate's CNF encoding. polPos means the clauses
// for "gate variable → definition" have been emitted (needed when the
// gate occurs positively in the formula), polNeg the reverse
// implication (needed for negative occurrences). Full Tseitin is
// polBoth.
const (
	polNone uint8 = 0
	polPos  uint8 = 1
	polNeg  uint8 = 2
	polBoth uint8 = 3
)

// flipPol swaps the positive and negative polarity bits (crossing a
// negation edge flips the occurrence polarity of the cone below it).
func flipPol(p uint8) uint8 { return (p&polPos)<<1 | (p&polNeg)>>1 }

// Builder constructs circuits and lowers them to CNF in a sat.Solver.
type Builder struct {
	gates   []gate
	hash    map[[2]Node]Node
	solver  *sat.Solver
	satVars []int   // gate index -> sat variable (-1 if not materialized)
	pols    []uint8 // gate index -> polarity bits already encoded

	rewriteLevel  int  // 0 = hash/consts only, 1 = one-level, 2 = two-level rules
	polarityAware bool // false = always emit full two-polarity Tseitin
	rewrites      int64
}

// NewBuilder returns a Builder that materializes CNF into the given
// solver. Minimization defaults to fully on: two-level AIG rewriting
// and polarity-aware encoding.
func NewBuilder(s *sat.Solver) *Builder {
	b := &Builder{
		hash:          make(map[[2]Node]Node),
		solver:        s,
		rewriteLevel:  2,
		polarityAware: true,
	}
	// Gate 0 is the constant true.
	b.gates = append(b.gates, gate{})
	b.satVars = append(b.satVars, -1)
	b.pols = append(b.pols, polNone)
	return b
}

// SetRewriteLevel selects the AIG structural rewriting level applied
// by And: 0 disables rewriting (constant folding and hash-consing
// only), 1 enables the one-level rules, 2 (the default) additionally
// the two-level rules. Rewriting is applied at construction time, so
// the level should be set before building the circuit.
func (b *Builder) SetRewriteLevel(level int) {
	if level < 0 {
		level = 0
	}
	if level > 2 {
		level = 2
	}
	b.rewriteLevel = level
}

// SetPolarityAware selects between Plaisted–Greenbaum polarity-aware
// encoding (the default) and the classic two-polarity Tseitin
// transformation. Like SetRewriteLevel it should be set before any
// node is materialized.
func (b *Builder) SetPolarityAware(on bool) { b.polarityAware = on }

// NumGates returns the number of structural nodes created (constant
// and variables included).
func (b *Builder) NumGates() int { return len(b.gates) }

// Rewrites returns how many And constructions were answered by a
// structural rewriting rule instead of a new gate.
func (b *Builder) Rewrites() int64 { return b.rewrites }

// Var introduces a fresh free boolean variable node.
func (b *Builder) Var() Node {
	idx := int32(len(b.gates))
	b.gates = append(b.gates, gate{isVar: true})
	b.satVars = append(b.satVars, -1)
	b.pols = append(b.pols, polNone)
	return Node(idx << 1)
}

// Const returns the node for a boolean constant.
func Const(v bool) Node {
	if v {
		return True
	}
	return False
}

// And returns the conjunction of two nodes, with constant folding,
// structural hashing, and (behind SetRewriteLevel) local AIG
// rewriting.
func (b *Builder) And(x, y Node) Node { return b.and(x, y, 0) }

// maxRewriteDepth bounds the recursion of the substitution-style
// rules, which rebuild a conjunction from rewritten pieces. The rules
// strictly shrink their redexes, but the bound keeps pathological
// chains linear.
const maxRewriteDepth = 32

func (b *Builder) and(x, y Node, depth int) Node {
	// Constant and trivial cases.
	switch {
	case x == False || y == False || x == y.Not():
		return False
	case x == True:
		return y
	case y == True:
		return x
	case x == y:
		return x
	}
	if x > y {
		x, y = y, x
	}
	key := [2]Node{x, y}
	if n, ok := b.hash[key]; ok {
		return n
	}
	if b.rewriteLevel >= 1 && depth < maxRewriteDepth {
		if n, ok := b.rewriteAnd(x, y, depth+1); ok {
			b.rewrites++
			return n
		}
	}
	idx := int32(len(b.gates))
	b.gates = append(b.gates, gate{a: x, b: y})
	b.satVars = append(b.satVars, -1)
	b.pols = append(b.pols, polNone)
	n := Node(idx << 1)
	b.hash[key] = n
	return n
}

// gateOperands returns the AND operands of the gate underlying n
// (ignoring n's own negation); ok is false for variables and the
// constant.
func (b *Builder) gateOperands(n Node) (Node, Node, bool) {
	idx := n.index()
	if idx == 0 {
		return 0, 0, false
	}
	g := b.gates[idx]
	if g.isVar {
		return 0, 0, false
	}
	return g.a, g.b, true
}

// rewriteAnd applies the Brummayer–Biere local rewriting rules to
// x ∧ y, reporting whether a rule fired. Level 1 matches one gate
// operand against the sibling node; level 2 additionally matches two
// gate operands against each other.
func (b *Builder) rewriteAnd(x, y Node, depth int) (Node, bool) {
	// One-level (asymmetric) rules: one side is a gate, the other is
	// matched against its operands.
	for _, p := range [2][2]Node{{x, y}, {y, x}} {
		g, o := p[0], p[1]
		a, c, ok := b.gateOperands(g)
		if !ok {
			continue
		}
		if !g.negated() {
			// g = a ∧ c.
			if o == a.Not() || o == c.Not() {
				return False, true // contradiction: (a∧c) ∧ ¬a
			}
			if o == a || o == c {
				return g, true // idempotence: (a∧c) ∧ a = a∧c
			}
		} else {
			// g = ¬(a ∧ c).
			if o == a.Not() || o == c.Not() {
				return o, true // subsumption: ¬(a∧c) ∧ ¬a = ¬a
			}
			if o == a {
				return b.and(o, c.Not(), depth), true // substitution: ¬(a∧c) ∧ a = a ∧ ¬c
			}
			if o == c {
				return b.and(o, a.Not(), depth), true
			}
		}
	}
	if b.rewriteLevel < 2 {
		return 0, false
	}

	// Two-level (symmetric) rules: both sides are gates.
	a, c, okx := b.gateOperands(x)
	d, e, oky := b.gateOperands(y)
	if !okx || !oky {
		return 0, false
	}
	switch {
	case !x.negated() && !y.negated():
		// (a∧c) ∧ (d∧e).
		if a == d.Not() || a == e.Not() || c == d.Not() || c == e.Not() {
			return False, true // contradiction across the pair
		}
		// Idempotence over a shared operand: drop the duplicate and
		// keep the smaller sibling, (a∧c)∧(a∧e) = (a∧c)∧e.
		if a == d || c == d {
			return b.and(x, e, depth), true
		}
		if a == e || c == e {
			return b.and(x, d, depth), true
		}
	case x.negated() != y.negated():
		if !x.negated() { // normalize: x is the negated gate
			x, y = y, x
			a, c, d, e = d, e, a, c
		}
		// ¬(a∧c) ∧ (d∧e).
		if a == d.Not() || a == e.Not() || c == d.Not() || c == e.Not() {
			return y, true // subsumption: d∧e already implies ¬(a∧c)
		}
		if a == d || a == e {
			return b.and(y, c.Not(), depth), true // substitution: (d∧e) ∧ ¬c
		}
		if c == d || c == e {
			return b.and(y, a.Not(), depth), true
		}
	default:
		// ¬(a∧c) ∧ ¬(d∧e): resolution. When the gates share one
		// operand and the other operands are complementary, the
		// conjunction collapses to the negated shared operand:
		// ¬(a∧c) ∧ ¬(¬a∧c) = ¬c.
		if (a == d.Not() && c == e) || (a == e.Not() && c == d) {
			return c.Not(), true
		}
		if (c == d.Not() && a == e) || (c == e.Not() && a == d) {
			return a.Not(), true
		}
	}
	return 0, false
}

// Or returns the disjunction of two nodes.
func (b *Builder) Or(x, y Node) Node { return b.And(x.Not(), y.Not()).Not() }

// Xor returns the exclusive or of two nodes.
func (b *Builder) Xor(x, y Node) Node {
	// x^y = (x|y) & !(x&y)
	return b.And(b.Or(x, y), b.And(x, y).Not())
}

// Iff returns the equivalence of two nodes.
func (b *Builder) Iff(x, y Node) Node { return b.Xor(x, y).Not() }

// Ite returns if-then-else: c ? t : e, with the standard mux
// simplifications applied before falling back to the two-gate form.
func (b *Builder) Ite(c, t, e Node) Node {
	switch {
	case c == True:
		return t
	case c == False:
		return e
	case t == e:
		return t
	case t == True:
		return b.Or(c, e) // c ? 1 : e
	case t == False:
		return b.And(c.Not(), e) // c ? 0 : e
	case e == False:
		return b.And(c, t) // c ? t : 0
	case e == True:
		return b.Or(c.Not(), t) // c ? t : 1
	case c == t:
		return b.Or(c, e) // c ? c : e
	case c == t.Not():
		return b.And(c.Not(), e) // c ? ¬c : e
	case c == e:
		return b.And(c, t) // c ? t : c
	case c == e.Not():
		return b.Or(c.Not(), t) // c ? t : ¬c
	case t == e.Not():
		return b.Iff(c, t) // c ? t : ¬t
	}
	return b.Or(b.And(c, t), b.And(c.Not(), e))
}

// Implies returns x -> y.
func (b *Builder) Implies(x, y Node) Node { return b.Or(x.Not(), y) }

// reduceTree folds op over ns as a balanced binary tree, so wide
// reductions produce logarithmic-depth cones (which hash-cons far
// better than linear chains across similar reductions).
func (b *Builder) reduceTree(ns []Node, op func(x, y Node) Node, empty Node) Node {
	if len(ns) == 0 {
		return empty
	}
	work := make([]Node, len(ns))
	copy(work, ns)
	for len(work) > 1 {
		half := 0
		for i := 0; i+1 < len(work); i += 2 {
			work[half] = op(work[i], work[i+1])
			half++
		}
		if len(work)%2 == 1 {
			work[half] = work[len(work)-1]
			half++
		}
		work = work[:half]
	}
	return work[0]
}

// AndAll reduces a list with And as a balanced tree (True for the
// empty list).
func (b *Builder) AndAll(ns ...Node) Node { return b.reduceTree(ns, b.And, True) }

// OrAll reduces a list with Or as a balanced tree (False for the
// empty list).
func (b *Builder) OrAll(ns ...Node) Node { return b.reduceTree(ns, b.Or, False) }

// Lit materializes the node in the solver and returns the SAT literal
// representing it. The cone is encoded in both polarities (full
// Tseitin), so the literal may later appear in clauses with either
// sign — the mining loop's blocking clauses and solver assumptions
// need exactly that.
func (b *Builder) Lit(n Node) sat.Lit { return b.litPol(n, polBoth) }

// litPol materializes n for the given occurrence polarity of the node
// (polPos = the returned literal appears positively in a clause) and
// returns its literal. Under polarity-aware encoding only the
// implication directions the occurrence needs are emitted; previously
// emitted directions are never duplicated, and missing ones are added
// incrementally (promotion).
func (b *Builder) litPol(n Node, occ uint8) sat.Lit {
	if !b.polarityAware {
		occ = polBoth
	}
	idx := n.index()
	if idx == 0 {
		// Constant: use a dedicated always-true variable.
		return sat.MkLit(b.constVar(), n.negated())
	}
	if n.negated() {
		occ = flipPol(occ)
	}
	return sat.MkLit(b.materialize(idx, occ), n.negated())
}

func (b *Builder) constVar() int {
	if b.satVars[0] >= 0 {
		return b.satVars[0]
	}
	v := b.solver.NewVar()
	b.solver.AddClause(sat.Pos(v))
	b.satVars[0] = v
	return v
}

// polItem is a pending polarity request for a gate.
type polItem struct {
	idx int32
	pol uint8
}

// materialize returns the SAT variable for gate root, creating
// variables for the whole cone and emitting the definitional clauses
// for the requested polarity bits (and only those). It uses an
// explicit stack to avoid deep recursion on long mux chains.
func (b *Builder) materialize(root int32, need uint8) int {
	if v := b.satVars[root]; v >= 0 && b.pols[root]&need == need {
		return v
	}
	stack := []polItem{{root, need}}
	var emit []polItem
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		add := it.pol &^ b.pols[it.idx]
		if b.satVars[it.idx] < 0 {
			b.satVars[it.idx] = b.solver.NewVar()
		}
		if add == 0 {
			continue
		}
		b.pols[it.idx] |= add
		g := b.gates[it.idx]
		if g.isVar {
			continue
		}
		emit = append(emit, polItem{it.idx, add})
		for _, op := range [2]Node{g.a, g.b} {
			p := add
			if op.negated() {
				p = flipPol(p)
			}
			if op.index() != 0 {
				stack = append(stack, polItem{op.index(), p})
			}
		}
	}
	// Every cone variable now exists; emit the newly requested
	// implication directions.
	for _, it := range emit {
		g := b.gates[it.idx]
		v := b.satVars[it.idx]
		la := b.litOfOperand(g.a)
		lb := b.litOfOperand(g.b)
		if it.pol&polPos != 0 {
			// v -> la & lb
			b.solver.AddClause(sat.Neg(v), la)
			b.solver.AddClause(sat.Neg(v), lb)
		}
		if it.pol&polNeg != 0 {
			// la & lb -> v
			b.solver.AddClause(sat.Pos(v), la.Not(), lb.Not())
		}
	}
	return b.satVars[root]
}

func (b *Builder) litOfOperand(n Node) sat.Lit {
	idx := n.index()
	if idx == 0 {
		return sat.MkLit(b.constVar(), n.negated())
	}
	return sat.MkLit(b.satVars[idx], n.negated())
}

// SatVar returns the SAT variable backing node n, if it has been
// materialized (the encoder uses it to freeze the memory-order
// variables against preprocessing).
func (b *Builder) SatVar(n Node) (int, bool) {
	v := b.satVars[n.index()]
	return v, v >= 0
}

// Assert adds the clause requiring the node to be true. The node
// occurs positively, so only that polarity of its cone is encoded.
func (b *Builder) Assert(n Node) {
	if n == True {
		return
	}
	b.solver.AddClause(b.litPol(n, polPos))
}

// AssertOr adds a single clause requiring at least one node to hold.
// This is how blocking clauses and the per-observation exclusion
// clauses of the inclusion check are emitted without auxiliary gates.
// Every node occurs positively in the clause, so each cone is encoded
// for that single polarity.
func (b *Builder) AssertOr(ns ...Node) {
	lits := make([]sat.Lit, 0, len(ns))
	for _, n := range ns {
		if n == True {
			return // clause trivially satisfied
		}
		if n == False {
			continue
		}
		lits = append(lits, b.litPol(n, polPos))
	}
	b.solver.AddClause(lits...)
}

// Eval evaluates the node under the solver's current model
// (valid after a Sat result). The SAT variable of a gate encoded in
// only one polarity is not constrained to equal its definition, so
// such gates (and unmaterialized ones) are evaluated structurally
// from the free-variable assignment; fully encoded gates and
// variables read the solver model directly.
func (b *Builder) Eval(n Node) bool {
	return b.EvalIn(b.solver, n)
}

// EvalIn evaluates the node under s's current model instead of the
// builder's own solver. s must hold the same formula — a CloneFormula
// snapshot of the builder's solver (possibly extended with learned or
// blocking clauses) — so the SAT variable indices line up. This is
// what lets parallel mining workers decode observations from their
// private clones concurrently: EvalIn only reads the builder's gate
// structures, which are immutable during solving.
func (b *Builder) EvalIn(s *sat.Solver, n Node) bool {
	val := b.evalGate(s, n.index(), nil)
	if n.negated() {
		return !val
	}
	return val
}

func (b *Builder) evalGate(s *sat.Solver, idx int32, memo map[int32]bool) bool {
	if idx == 0 {
		return true
	}
	g := b.gates[idx]
	if v := b.satVars[idx]; v >= 0 && (g.isVar || b.pols[idx] == polBoth) {
		return s.Value(v)
	}
	if g.isVar {
		// Unmaterialized free variable: unconstrained, treat as false.
		return false
	}
	if val, ok := memo[idx]; ok {
		return val
	}
	if memo == nil {
		// Allocated only when a structural descent actually happens;
		// it keeps the walk linear in the cone despite DAG sharing.
		memo = map[int32]bool{}
	}
	val := false
	if b.evalGate(s, g.a.index(), memo) != g.a.negated() {
		val = b.evalGate(s, g.b.index(), memo) != g.b.negated()
	}
	memo[idx] = val
	return val
}

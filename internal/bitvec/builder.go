// Package bitvec provides a hash-consed boolean circuit builder with a
// Tseitin transformation to CNF, plus bitvector operations built on
// top of it.
//
// The CheckFence encoder compiles the thread-local program semantics
// (the Δ formulas of the paper) into such circuits: every SSA register
// becomes a vector of circuit nodes, and guarded assignments become
// multiplexers. The Tseitin transform then materializes exactly the
// nodes that the final formula references as SAT variables and
// clauses, which keeps the CNF polynomial in the unrolled program
// size as the paper requires.
package bitvec

import (
	"checkfence/internal/sat"
)

// Node is a reference to a circuit node, with the low bit carrying
// negation (an and-inverter graph). The constant true node is the
// node with index 0; False is its negation.
type Node int32

// True and False are the constant nodes.
const (
	True  Node = 0
	False Node = 1
)

// Not negates a node.
func (n Node) Not() Node { return n ^ 1 }

func (n Node) index() int32  { return int32(n >> 1) }
func (n Node) negated() bool { return n&1 == 1 }

// gate is an internal AND gate (or a free variable when isVar).
type gate struct {
	a, b  Node
	isVar bool
}

// Builder constructs circuits and lowers them to CNF in a sat.Solver.
type Builder struct {
	gates   []gate
	hash    map[[2]Node]Node
	solver  *sat.Solver
	satVars []int // gate index -> sat variable (-1 if not materialized)
}

// NewBuilder returns a Builder that materializes CNF into the given
// solver.
func NewBuilder(s *sat.Solver) *Builder {
	b := &Builder{
		hash:   make(map[[2]Node]Node),
		solver: s,
	}
	// Gate 0 is the constant true.
	b.gates = append(b.gates, gate{})
	b.satVars = append(b.satVars, -1)
	return b
}

// NumGates returns the number of structural nodes created (constant
// and variables included).
func (b *Builder) NumGates() int { return len(b.gates) }

// Var introduces a fresh free boolean variable node.
func (b *Builder) Var() Node {
	idx := int32(len(b.gates))
	b.gates = append(b.gates, gate{isVar: true})
	b.satVars = append(b.satVars, -1)
	return Node(idx << 1)
}

// Const returns the node for a boolean constant.
func Const(v bool) Node {
	if v {
		return True
	}
	return False
}

// And returns the conjunction of two nodes, with structural hashing
// and constant folding.
func (b *Builder) And(x, y Node) Node {
	// Constant and trivial cases.
	switch {
	case x == False || y == False || x == y.Not():
		return False
	case x == True:
		return y
	case y == True:
		return x
	case x == y:
		return x
	}
	if x > y {
		x, y = y, x
	}
	key := [2]Node{x, y}
	if n, ok := b.hash[key]; ok {
		return n
	}
	idx := int32(len(b.gates))
	b.gates = append(b.gates, gate{a: x, b: y})
	b.satVars = append(b.satVars, -1)
	n := Node(idx << 1)
	b.hash[key] = n
	return n
}

// Or returns the disjunction of two nodes.
func (b *Builder) Or(x, y Node) Node { return b.And(x.Not(), y.Not()).Not() }

// Xor returns the exclusive or of two nodes.
func (b *Builder) Xor(x, y Node) Node {
	// x^y = (x|y) & !(x&y)
	return b.And(b.Or(x, y), b.And(x, y).Not())
}

// Iff returns the equivalence of two nodes.
func (b *Builder) Iff(x, y Node) Node { return b.Xor(x, y).Not() }

// Ite returns if-then-else: c ? t : e.
func (b *Builder) Ite(c, t, e Node) Node {
	if c == True {
		return t
	}
	if c == False {
		return e
	}
	if t == e {
		return t
	}
	return b.Or(b.And(c, t), b.And(c.Not(), e))
}

// Implies returns x -> y.
func (b *Builder) Implies(x, y Node) Node { return b.Or(x.Not(), y) }

// AndAll folds And over a list (True for the empty list).
func (b *Builder) AndAll(ns ...Node) Node {
	acc := True
	for _, n := range ns {
		acc = b.And(acc, n)
	}
	return acc
}

// OrAll folds Or over a list (False for the empty list).
func (b *Builder) OrAll(ns ...Node) Node {
	acc := False
	for _, n := range ns {
		acc = b.Or(acc, n)
	}
	return acc
}

// Lit materializes the node in the solver and returns the SAT literal
// representing it. Gates are lowered with the Tseitin transformation;
// shared subcircuits are materialized once.
func (b *Builder) Lit(n Node) sat.Lit {
	idx := n.index()
	if idx == 0 {
		// Constant: use a dedicated always-true variable.
		v := b.constVar()
		return sat.MkLit(v, n.negated())
	}
	v := b.materialize(idx)
	return sat.MkLit(v, n.negated())
}

func (b *Builder) constVar() int {
	if b.satVars[0] >= 0 {
		return b.satVars[0]
	}
	v := b.solver.NewVar()
	b.solver.AddClause(sat.Pos(v))
	b.satVars[0] = v
	return v
}

// materialize returns the SAT variable for gate idx, creating
// variables and Tseitin clauses for the whole cone as needed. It uses
// an explicit stack to avoid deep recursion on long mux chains.
func (b *Builder) materialize(root int32) int {
	if b.satVars[root] >= 0 {
		return b.satVars[root]
	}
	stack := []int32{root}
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		g := b.gates[idx]
		if b.satVars[idx] >= 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		if g.isVar {
			b.satVars[idx] = b.solver.NewVar()
			stack = stack[:len(stack)-1]
			continue
		}
		ai, bi := g.a.index(), g.b.index()
		ready := true
		if ai != 0 && b.satVars[ai] < 0 {
			stack = append(stack, ai)
			ready = false
		}
		if bi != 0 && b.satVars[bi] < 0 {
			stack = append(stack, bi)
			ready = false
		}
		if !ready {
			continue
		}
		stack = stack[:len(stack)-1]
		la := b.litOfOperand(g.a)
		lb := b.litOfOperand(g.b)
		v := b.solver.NewVar()
		b.satVars[idx] = v
		// v <-> la & lb
		b.solver.AddClause(sat.Neg(v), la)
		b.solver.AddClause(sat.Neg(v), lb)
		b.solver.AddClause(sat.Pos(v), la.Not(), lb.Not())
	}
	return b.satVars[root]
}

func (b *Builder) litOfOperand(n Node) sat.Lit {
	idx := n.index()
	if idx == 0 {
		return sat.MkLit(b.constVar(), n.negated())
	}
	return sat.MkLit(b.satVars[idx], n.negated())
}

// Assert adds the clause requiring the node to be true.
func (b *Builder) Assert(n Node) {
	if n == True {
		return
	}
	b.solver.AddClause(b.Lit(n))
}

// AssertOr adds a single clause requiring at least one node to hold.
// This is how blocking clauses and the per-observation exclusion
// clauses of the inclusion check are emitted without auxiliary gates.
func (b *Builder) AssertOr(ns ...Node) {
	lits := make([]sat.Lit, 0, len(ns))
	for _, n := range ns {
		if n == True {
			return // clause trivially satisfied
		}
		if n == False {
			continue
		}
		lits = append(lits, b.Lit(n))
	}
	b.solver.AddClause(lits...)
}

// Eval evaluates the node under the solver's current model
// (valid after a Sat result). Nodes that were never materialized are
// evaluated structurally.
func (b *Builder) Eval(n Node) bool {
	idx := n.index()
	val := b.evalGate(idx)
	if n.negated() {
		return !val
	}
	return val
}

func (b *Builder) evalGate(idx int32) bool {
	if idx == 0 {
		return true
	}
	if v := b.satVars[idx]; v >= 0 {
		return b.solver.Value(v)
	}
	g := b.gates[idx]
	if g.isVar {
		// Unmaterialized free variable: unconstrained, treat as false.
		return false
	}
	av := b.evalGate(g.a.index()) != g.a.negated()
	if !av {
		return false
	}
	return b.evalGate(g.b.index()) != g.b.negated()
}

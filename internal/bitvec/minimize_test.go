package bitvec

// Tests for the formula-minimization layer of the builder: AIG
// rewriting, balanced reduction trees, Ite simplification, and the
// polarity-aware (Plaisted–Greenbaum) encoding. The property test
// compares the minimizing builder against the legacy configuration
// (classic Tseitin, no rewriting) on random circuits, using exhaustive
// truth tables over the free variables as the reference semantics.

import (
	"math/bits"
	"math/rand"
	"testing"

	"checkfence/internal/sat"
)

// legacyBuilder returns a builder configured like the pre-minimization
// encoder: full bidirectional Tseitin, no rewriting.
func legacyBuilder(s *sat.Solver) *Builder {
	b := NewBuilder(s)
	b.SetRewriteLevel(0)
	b.SetPolarityAware(false)
	return b
}

func TestRewriteRules(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	a, c, d := b.Var(), b.Var(), b.Var()
	g := b.And(a, c)

	// Level 1: the conjunct contradicts or repeats an operand.
	if got := b.And(g, a.Not()); got != False {
		t.Errorf("contradiction: And(a&c, !a) = %v, want False", got)
	}
	if got := b.And(g, a); got != g {
		t.Errorf("idempotence: And(a&c, a) = %v, want %v", g, got)
	}
	// Negated gate: subsumption and substitution.
	if got := b.And(g.Not(), a.Not()); got != a.Not() {
		t.Errorf("subsumption: And(!(a&c), !a) = %v, want %v", got, a.Not())
	}
	if got, want := b.And(g.Not(), a), b.And(a, c.Not()); got != want {
		t.Errorf("substitution: And(!(a&c), a) = %v, want %v", got, want)
	}

	// Level 2, both operands negated gates: resolution.
	h := b.And(a.Not(), c)
	if got := b.And(g.Not(), h.Not()); got != c.Not() {
		t.Errorf("resolution: And(!(a&c), !(!a&c)) = %v, want %v", got, c.Not())
	}
	// Level 2, both positive: contradiction across gates.
	if got := b.And(b.And(a, c), b.And(a.Not(), d)); got != False {
		t.Errorf("two-level contradiction = %v, want False", got)
	}
}

func TestIteSimplifications(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	c, x, e := b.Var(), b.Var(), b.Var()
	cases := []struct {
		name      string
		got, want Node
	}{
		{"same branches", b.Ite(c, x, x), x},
		{"then true", b.Ite(c, True, e), b.Or(c, e)},
		{"then false", b.Ite(c, False, e), b.And(c.Not(), e)},
		{"else true", b.Ite(c, x, True), b.Or(c.Not(), x)},
		{"else false", b.Ite(c, x, False), b.And(c, x)},
		{"then is cond", b.Ite(c, c, e), b.Or(c, e)},
		{"else is cond", b.Ite(c, x, c), b.And(c, x)},
		{"negated branches", b.Ite(c, x, x.Not()), b.Iff(c, x)},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("Ite %s: got %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

// depth returns the longest operand chain below n.
func depth(b *Builder, n Node) int {
	x, y, ok := b.gateOperands(n)
	if !ok {
		return 0
	}
	dx, dy := depth(b, x), depth(b, y)
	if dy > dx {
		dx = dy
	}
	return dx + 1
}

func TestBalancedReduction(t *testing.T) {
	s := sat.New()
	b := legacyBuilder(s) // no rewriting: the shape is the test
	var vars []Node
	for i := 0; i < 64; i++ {
		vars = append(vars, b.Var())
	}
	and := b.AndAll(vars...)
	if d := depth(b, and); d != 6 {
		t.Errorf("AndAll(64) depth = %d, want 6 (balanced)", d)
	}
	or := b.OrAll(vars...)
	if d := depth(b, or); d != 6 {
		t.Errorf("OrAll(64) depth = %d, want 6 (balanced)", d)
	}
	if b.AndAll() != True || b.OrAll() != False {
		t.Error("empty reductions must fold to the identity")
	}
	if b.AndAll(vars[3]) != vars[3] {
		t.Error("singleton reduction must be the operand itself")
	}
}

// circuit is a randomly generated DAG over nVars free variables,
// described operationally so it can be replayed into any builder. The
// reference semantics is a 32-row truth table per node (one bit per
// assignment of the 5 variables).
type circuit struct {
	ops []circuitOp
}

type circuitOp struct {
	kind    int // 0 And, 1 Or, 2 Xor, 3 Ite
	a, b, c int // operand indices into the node list; negative = negated
}

const propVars = 5

// buildCircuit replays the circuit into a builder. It returns the
// variable nodes and every intermediate node.
func (ci *circuit) build(b *Builder) (vars, nodes []Node) {
	for i := 0; i < propVars; i++ {
		v := b.Var()
		vars = append(vars, v)
		nodes = append(nodes, v)
	}
	pick := func(ref int) Node {
		n := nodes[abs(ref)]
		if ref < 0 {
			n = n.Not()
		}
		return n
	}
	for _, op := range ci.ops {
		var n Node
		switch op.kind {
		case 0:
			n = b.And(pick(op.a), pick(op.b))
		case 1:
			n = b.Or(pick(op.a), pick(op.b))
		case 2:
			n = b.Xor(pick(op.a), pick(op.b))
		default:
			n = b.Ite(pick(op.c), pick(op.a), pick(op.b))
		}
		nodes = append(nodes, n)
	}
	return vars, nodes
}

// tables computes the truth table of every node: bit r of tables()[i]
// is node i's value under assignment r (variable v = bit v of r).
func (ci *circuit) tables() []uint32 {
	var tt []uint32
	for i := 0; i < propVars; i++ {
		var col uint32
		for r := 0; r < 32; r++ {
			if r>>uint(i)&1 == 1 {
				col |= 1 << uint(r)
			}
		}
		tt = append(tt, col)
	}
	pick := func(ref int) uint32 {
		v := tt[abs(ref)]
		if ref < 0 {
			v = ^v
		}
		return v
	}
	for _, op := range ci.ops {
		var v uint32
		switch op.kind {
		case 0:
			v = pick(op.a) & pick(op.b)
		case 1:
			v = pick(op.a) | pick(op.b)
		case 2:
			v = pick(op.a) ^ pick(op.b)
		default:
			v = pick(op.c)&pick(op.a) | ^pick(op.c)&pick(op.b)
		}
		tt = append(tt, v)
	}
	return tt
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func randomCircuit(rng *rand.Rand, nOps int) *circuit {
	ci := &circuit{}
	for i := 0; i < nOps; i++ {
		limit := propVars + i
		ref := func() int {
			r := rng.Intn(limit)
			if rng.Intn(2) == 1 {
				return -r
			}
			return r
		}
		ci.ops = append(ci.ops, circuitOp{
			kind: rng.Intn(4), a: ref(), b: ref(), c: ref(),
		})
	}
	return ci
}

// countModels enumerates the satisfying assignments of root projected
// onto the free variables, using blocking clauses over the variable
// literals (the spec-mining pattern, which requires both polarities of
// every blocked literal and therefore exercises polarity promotion).
func countModels(t *testing.T, b *Builder, s *sat.Solver, vars []Node, root Node) int {
	t.Helper()
	b.Assert(root)
	count := 0
	for {
		switch st := s.Solve(); st {
		case sat.Unsat:
			return count
		case sat.Sat:
		default:
			t.Fatalf("solver returned %v", st)
		}
		count++
		if count > 32 {
			t.Fatal("more projected models than assignments")
		}
		block := make([]sat.Lit, len(vars))
		for i, v := range vars {
			lit := b.Lit(v)
			if b.Eval(v) {
				lit = lit.Not()
			}
			block[i] = lit
		}
		s.AddClause(block...)
	}
}

// TestMinimizedBuilderDifferential checks, on random circuits, that
// the minimizing builder and the legacy builder agree with the truth
// table: same satisfiability, same projected model count, and — after
// each Sat — Eval agrees with the table on every node of the circuit
// (this exercises model reconstruction for gates the PG encoding
// never materialized, or materialized in one polarity only).
func TestMinimizedBuilderDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for it := 0; it < iters; it++ {
		ci := randomCircuit(rng, 3+rng.Intn(25))
		tt := ci.tables()
		rootIdx := len(tt) - 1 - rng.Intn(len(ci.ops)+1)
		wantModels := bits.OnesCount32(tt[rootIdx])

		for _, legacy := range []bool{false, true} {
			s := sat.New()
			var b *Builder
			if legacy {
				b = legacyBuilder(s)
			} else {
				b = NewBuilder(s)
			}
			vars, nodes := ci.build(b)
			root := nodes[rootIdx]

			// First: solve once and compare every node's Eval with
			// the truth table at the model's variable assignment.
			b.Assert(root)
			st := s.Solve()
			if (st == sat.Sat) != (wantModels > 0) {
				t.Fatalf("iter %d legacy=%v: status %v, want models=%d", it, legacy, st, wantModels)
			}
			if st == sat.Sat {
				row := 0
				for i, v := range vars {
					if b.Eval(v) {
						row |= 1 << uint(i)
					}
				}
				if tt[rootIdx]>>uint(row)&1 != 1 {
					t.Fatalf("iter %d legacy=%v: model row %d does not satisfy root", it, legacy, row)
				}
				for i, n := range nodes {
					if got, want := b.Eval(n), tt[i]>>uint(row)&1 == 1; got != want {
						t.Fatalf("iter %d legacy=%v: node %d Eval=%v, table=%v", it, legacy, i, got, want)
					}
				}
			}

			// Second: full projected enumeration on a fresh solver,
			// which promotes the variable polarities via Lit and adds
			// blocking clauses (both polarities).
			s2 := sat.New()
			var b2 *Builder
			if legacy {
				b2 = legacyBuilder(s2)
			} else {
				b2 = NewBuilder(s2)
			}
			vars2, nodes2 := ci.build(b2)
			if got := countModels(t, b2, s2, vars2, nodes2[rootIdx]); got != wantModels {
				t.Fatalf("iter %d legacy=%v: %d projected models, want %d", it, legacy, got, wantModels)
			}
		}
	}
}

// TestPolarityPromotion materializes a gate first in a single
// polarity (via Assert) and later in both (via Lit), and checks that
// the incremental promotion leaves the encoding consistent: forcing
// the gate false must forbid the conjunction.
func TestPolarityPromotion(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	x, y := b.Var(), b.Var()
	g := b.And(x, y)
	other := b.Or(x, y)
	b.Assert(other) // g itself stays positive-only so far
	if s.Solve() != sat.Sat {
		t.Fatal("Or(x,y) must be satisfiable")
	}
	// Promotion: request both polarities and pin g false while
	// asserting both inputs true — only the promoted direction
	// (x&y -> g) makes this unsatisfiable.
	lit := b.Lit(g)
	s.AddClause(lit.Not())
	s.AddClause(b.Lit(x))
	s.AddClause(b.Lit(y))
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("x&y with And(x,y) forced false must be UNSAT, got %v", st)
	}
}

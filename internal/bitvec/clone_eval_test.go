package bitvec

import (
	"testing"

	"checkfence/internal/sat"
)

// buildFormula constructs a small mixed circuit with materialized
// gates, single-polarity cones, and free variables — the shapes
// EvalIn must decode structurally as well as from the model.
func buildFormula(b *Builder) (nodes []Node, bv BV) {
	x, y, z := b.Var(), b.Var(), b.Var()
	g1 := b.And(x, y.Not())
	g2 := b.Or(g1, z)
	g3 := b.Xor(x, z)
	b.Assert(g2)            // materializes g2's cone (one polarity)
	b.AssertOr(g3, y)       // g3 single-polarity too
	free := b.Var()         // never asserted: unconstrained
	ite := b.Ite(x, y, z)   // unmaterialized gate, structural eval
	bv = BV{x, g1, g3, ite} // a vector mixing all kinds
	return []Node{x, y, z, g1, g2, g3, free, ite, g2.Not()}, bv
}

// TestEvalInCloneMatchesSerialEval: decoding a node through a
// CloneFormula snapshot's model must agree with the serial Eval once
// the original solver adopts that model — the portfolio-winner
// decoding path.
func TestEvalInCloneMatchesSerialEval(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	nodes, bv := buildFormula(b)

	if s.Solve() != sat.Sat {
		t.Fatal("formula must be satisfiable")
	}

	clone := s.CloneFormula()
	if clone.Solve() != sat.Sat {
		t.Fatal("clone must be satisfiable")
	}

	// The winner's model becomes readable through the original solver.
	s.AdoptModelFrom(clone)
	for i, n := range nodes {
		if got, want := b.EvalIn(clone, n), b.Eval(n); got != want {
			t.Errorf("node %d: EvalIn(clone) = %v, Eval after adopt = %v", i, got, want)
		}
	}
	if got, want := b.EvalBVIn(clone, bv), b.EvalBV(bv); got != want {
		t.Errorf("EvalBVIn(clone) = %d, EvalBV after adopt = %d", got, want)
	}
}

// TestEvalInDivergedCloneModels: a clone driven to a different model
// (via a blocking clause) must decode under its own assignment, not
// the original's.
func TestEvalInDivergedCloneModels(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	x, y := b.Var(), b.Var()
	b.AssertOr(x, y) // at least one holds

	if s.Solve() != sat.Sat {
		t.Fatal("formula must be satisfiable")
	}
	x0, y0 := b.Eval(x), b.Eval(y)

	clone := s.CloneFormula()
	// Block the original model in the clone, forcing a different one.
	var blocking []sat.Lit
	for v, val := range map[Node]bool{x: x0, y: y0} {
		sv, ok := b.SatVar(v)
		if !ok {
			t.Fatal("variable not materialized")
		}
		blocking = append(blocking, sat.MkLit(sv, val))
	}
	clone.AddClause(blocking...)
	if clone.Solve() != sat.Sat {
		t.Fatal("blocked clone must still be satisfiable")
	}
	if b.EvalIn(clone, x) == x0 && b.EvalIn(clone, y) == y0 {
		t.Fatal("clone decoded to the blocked model")
	}
	// Adopting the clone's model flips the serial view to match it.
	s.AdoptModelFrom(clone)
	if b.Eval(x) != b.EvalIn(clone, x) || b.Eval(y) != b.EvalIn(clone, y) {
		t.Error("Eval after AdoptModelFrom must mirror the clone's model")
	}
}

package bitvec

import "checkfence/internal/sat"

// BV is a little-endian bitvector of circuit nodes: BV[0] is the least
// significant bit.
type BV []Node

// ConstBV returns a constant bitvector of the given width.
func ConstBV(width int, value int64) BV {
	bv := make(BV, width)
	for i := range bv {
		bv[i] = Const(value>>uint(i)&1 == 1)
	}
	return bv
}

// VarBV returns a bitvector of fresh variables.
func (b *Builder) VarBV(width int) BV {
	bv := make(BV, width)
	for i := range bv {
		bv[i] = b.Var()
	}
	return bv
}

// IsConst reports whether every bit is a constant, and if so its value.
func (bv BV) IsConst() (int64, bool) {
	var v int64
	for i, n := range bv {
		switch n {
		case True:
			v |= 1 << uint(i)
		case False:
		default:
			return 0, false
		}
	}
	return v, true
}

// Extend zero-extends (or truncates) to the given width.
func (bv BV) Extend(width int) BV {
	if len(bv) == width {
		return bv
	}
	out := make(BV, width)
	for i := range out {
		if i < len(bv) {
			out[i] = bv[i]
		} else {
			out[i] = False
		}
	}
	return out
}

func matchWidths(x, y BV) (BV, BV) {
	w := len(x)
	if len(y) > w {
		w = len(y)
	}
	return x.Extend(w), y.Extend(w)
}

// EqBV returns a node that is true iff the two vectors are equal
// (after zero extension to matching widths).
func (b *Builder) EqBV(x, y BV) Node {
	x, y = matchWidths(x, y)
	bits := make([]Node, len(x))
	for i := range x {
		bits[i] = b.Iff(x[i], y[i])
	}
	return b.AndAll(bits...)
}

// AddBV returns x + y (ripple carry, result width = max input width,
// wrapping on overflow like machine arithmetic).
func (b *Builder) AddBV(x, y BV) BV {
	x, y = matchWidths(x, y)
	out := make(BV, len(x))
	carry := False
	for i := range x {
		s := b.Xor(b.Xor(x[i], y[i]), carry)
		carry = b.Or(b.And(x[i], y[i]), b.And(carry, b.Xor(x[i], y[i])))
		out[i] = s
	}
	return out
}

// SubBV returns x - y (two's complement, wrapping).
func (b *Builder) SubBV(x, y BV) BV {
	x, y = matchWidths(x, y)
	out := make(BV, len(x))
	carry := True
	for i := range x {
		yn := y[i].Not()
		s := b.Xor(b.Xor(x[i], yn), carry)
		carry = b.Or(b.And(x[i], yn), b.And(carry, b.Xor(x[i], yn)))
		out[i] = s
	}
	return out
}

// MulBV returns x * y via shift-and-add (wrapping). Used rarely; the
// study set needs it only for array index scaling.
func (b *Builder) MulBV(x, y BV) BV {
	x, y = matchWidths(x, y)
	w := len(x)
	acc := ConstBV(w, 0)
	shifted := x
	for i := 0; i < w; i++ {
		term := make(BV, w)
		for j := range term {
			term[j] = b.And(shifted[j], y[i])
		}
		acc = b.AddBV(acc, term)
		// Shift x left by one.
		next := make(BV, w)
		copy(next[1:], shifted[:w-1])
		next[0] = False
		shifted = next
	}
	return acc
}

// LtBV returns a node true iff x < y as unsigned integers.
func (b *Builder) LtBV(x, y BV) Node {
	x, y = matchWidths(x, y)
	lt := False
	for i := range x { // from LSB to MSB; MSB comparison dominates
		bitLt := b.And(x[i].Not(), y[i])
		bitEq := b.Iff(x[i], y[i])
		lt = b.Or(bitLt, b.And(bitEq, lt))
	}
	return lt
}

// LeBV returns x <= y (unsigned).
func (b *Builder) LeBV(x, y BV) Node { return b.LtBV(y, x).Not() }

// LtSignedBV returns x < y as two's complement signed integers of
// equal (max) width.
func (b *Builder) LtSignedBV(x, y BV) Node {
	x, y = matchWidths(x, y)
	w := len(x)
	xs, ys := x[w-1], y[w-1]
	// x negative, y non-negative => true; equal signs => unsigned
	// comparison decides.
	diffSign := b.Xor(xs, ys)
	return b.Ite(diffSign, xs, b.LtBV(x, y))
}

// LeSignedBV returns x <= y (signed).
func (b *Builder) LeSignedBV(x, y BV) Node { return b.LtSignedBV(y, x).Not() }

// MuxBV returns c ? t : e, bitwise.
func (b *Builder) MuxBV(c Node, t, e BV) BV {
	t, e = matchWidths(t, e)
	out := make(BV, len(t))
	for i := range out {
		out[i] = b.Ite(c, t[i], e[i])
	}
	return out
}

// IsZero returns a node true iff every bit is zero.
func (b *Builder) IsZero(x BV) Node {
	bits := make([]Node, len(x))
	for i, n := range x {
		bits[i] = n.Not()
	}
	return b.AndAll(bits...)
}

// EvalBV evaluates the bitvector under the current model.
func (b *Builder) EvalBV(bv BV) int64 {
	return b.EvalBVIn(b.solver, bv)
}

// EvalBVIn evaluates the bitvector under s's model (see EvalIn).
func (b *Builder) EvalBVIn(s *sat.Solver, bv BV) int64 {
	var v int64
	for i, n := range bv {
		if b.EvalIn(s, n) {
			v |= 1 << uint(i)
		}
	}
	return v
}

// WidthFor returns the number of bits needed to represent all values
// in [0, max].
func WidthFor(max int64) int {
	w := 1
	for int64(1)<<uint(w) <= max {
		w++
	}
	return w
}

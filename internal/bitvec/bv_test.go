package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"checkfence/internal/sat"
)

// solveNode asserts the node and reports whether the resulting CNF is
// satisfiable.
func solveNode(t *testing.T, b *Builder, s *sat.Solver, n Node) bool {
	t.Helper()
	b.Assert(n)
	return s.Solve() == sat.Sat
}

func TestConstantFolding(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	x := b.Var()
	if b.And(x, True) != x || b.And(True, x) != x {
		t.Error("And identity")
	}
	if b.And(x, False) != False || b.And(x, x.Not()) != False {
		t.Error("And annihilation")
	}
	if b.And(x, x) != x {
		t.Error("And idempotence")
	}
	if b.Or(x, True) != True || b.Or(x, False) != x {
		t.Error("Or folding")
	}
	if b.Ite(True, x, x.Not()) != x || b.Ite(False, x, x.Not()) != x.Not() {
		t.Error("Ite folding")
	}
}

func TestStructuralHashing(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	x, y := b.Var(), b.Var()
	if b.And(x, y) != b.And(y, x) {
		t.Error("And must be hash-consed commutatively")
	}
	n := b.NumGates()
	b.And(x, y)
	if b.NumGates() != n {
		t.Error("repeated And must not allocate")
	}
}

func TestTseitinSatisfiability(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	x, y := b.Var(), b.Var()
	// (x xor y) and x  => model must have x=1, y=0.
	n := b.And(b.Xor(x, y), x)
	if !solveNode(t, b, s, n) {
		t.Fatal("expected SAT")
	}
	if !b.Eval(x) || b.Eval(y) {
		t.Errorf("model x=%v y=%v, want true,false", b.Eval(x), b.Eval(y))
	}
	if !b.Eval(n) {
		t.Error("asserted node must evaluate true")
	}
}

func TestTseitinUnsat(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	x, y, z := b.Var(), b.Var(), b.Var()
	f := b.AndAll(b.Or(x, y), b.Or(x.Not(), z), z.Not(), b.And(y.Not(), x.Not()).Not())
	// f forces: z=0, so x=0 (from x->z), so y=1; last conjunct
	// requires !( !y & !x ) which holds; so f is SAT. Make it unsat:
	g := b.And(f, y.Not())
	b.Assert(g)
	if s.Solve() != sat.Unsat {
		t.Fatal("expected UNSAT")
	}
}

// TestCircuitEquivalenceQuick exhaustively compares circuit semantics
// with Go's boolean operators over random assignments, by asserting
// the inputs to fixed values and checking the output.
func TestCircuitEquivalenceQuick(t *testing.T) {
	f := func(xv, yv, cv bool) bool {
		s := sat.New()
		b := NewBuilder(s)
		x, y, c := b.Var(), b.Var(), b.Var()
		nodes := map[string]Node{
			"and": b.And(x, y),
			"or":  b.Or(x, y),
			"xor": b.Xor(x, y),
			"iff": b.Iff(x, y),
			"imp": b.Implies(x, y),
			"ite": b.Ite(c, x, y),
		}
		want := map[string]bool{
			"and": xv && yv,
			"or":  xv || yv,
			"xor": xv != yv,
			"iff": xv == yv,
			"imp": !xv || yv,
			"ite": (cv && xv) || (!cv && yv),
		}
		b.Assert(b.Iff(x, Const(xv)))
		b.Assert(b.Iff(y, Const(yv)))
		b.Assert(b.Iff(c, Const(cv)))
		// Materialize all outputs before solving.
		for _, n := range nodes {
			b.Lit(n)
		}
		if s.Solve() != sat.Sat {
			return false
		}
		for name, n := range nodes {
			if b.Eval(n) != want[name] {
				t.Logf("%s(%v,%v,%v): got %v want %v", name, xv, yv, cv, b.Eval(n), want[name])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstBVRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 5, 13, 255} {
		bv := ConstBV(8, v)
		got, ok := bv.IsConst()
		if !ok || got != v {
			t.Errorf("ConstBV(8,%d) round trip = %d,%v", v, got, ok)
		}
	}
	if _, ok := append(ConstBV(2, 1), Node(100)).IsConst(); ok {
		t.Error("non-constant BV reported constant")
	}
}

// TestBVArithmeticRandom checks AddBV/SubBV/MulBV/LtBV/LeBV/EqBV against Go
// integer semantics by constraining variable vectors to concrete
// values.
func TestBVArithmeticRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		w := 1 + rng.Intn(7)
		mask := int64(1)<<uint(w) - 1
		xv := rng.Int63() & mask
		yv := rng.Int63() & mask

		s := sat.New()
		b := NewBuilder(s)
		x := b.VarBV(w)
		y := b.VarBV(w)
		b.Assert(b.EqBV(x, ConstBV(w, xv)))
		b.Assert(b.EqBV(y, ConstBV(w, yv)))

		sum := b.AddBV(x, y)
		diff := b.SubBV(x, y)
		prod := b.MulBV(x, y)
		lt := b.LtBV(x, y)
		le := b.LeBV(x, y)
		eq := b.EqBV(x, y)

		for _, n := range []Node{lt, le, eq} {
			b.Lit(n)
		}
		for _, bv := range []BV{sum, diff, prod} {
			for _, n := range bv {
				b.Lit(n)
			}
		}
		if s.Solve() != sat.Sat {
			t.Fatalf("iter %d: constrained formula UNSAT", iter)
		}
		if got := b.EvalBV(sum); got != (xv+yv)&mask {
			t.Errorf("iter %d: %d+%d = %d, want %d", iter, xv, yv, got, (xv+yv)&mask)
		}
		if got := b.EvalBV(diff); got != (xv-yv)&mask {
			t.Errorf("iter %d: %d-%d = %d, want %d", iter, xv, yv, got, (xv-yv)&mask)
		}
		if got := b.EvalBV(prod); got != (xv*yv)&mask {
			t.Errorf("iter %d: %d*%d = %d, want %d", iter, xv, yv, got, (xv*yv)&mask)
		}
		if b.Eval(lt) != (xv < yv) {
			t.Errorf("iter %d: lt(%d,%d) = %v", iter, xv, yv, b.Eval(lt))
		}
		if b.Eval(le) != (xv <= yv) {
			t.Errorf("iter %d: le(%d,%d) = %v", iter, xv, yv, b.Eval(le))
		}
		if b.Eval(eq) != (xv == yv) {
			t.Errorf("iter %d: eq(%d,%d) = %v", iter, xv, yv, b.Eval(eq))
		}
	}
}

func TestMuxBVAndIsZero(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	c := b.Var()
	x := ConstBV(4, 9)
	y := ConstBV(4, 2)
	m := b.MuxBV(c, x, y)
	b.Assert(c)
	for _, n := range m {
		b.Lit(n)
	}
	if s.Solve() != sat.Sat {
		t.Fatal("UNSAT")
	}
	if got := b.EvalBV(m); got != 9 {
		t.Errorf("mux = %d, want 9", got)
	}
	if b.Eval(b.IsZero(ConstBV(3, 0))) != true {
		t.Error("IsZero(0) must be true")
	}
	if b.IsZero(ConstBV(3, 4)) != False {
		t.Error("IsZero(4) must fold to False")
	}
}

func TestExtendAndMixedWidths(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	x := ConstBV(2, 3)
	y := ConstBV(5, 3)
	if b.EqBV(x, y) != True {
		t.Error("3 (2-bit) must equal 3 (5-bit) after zero extension")
	}
	sum := b.AddBV(x, ConstBV(5, 4))
	v, ok := sum.IsConst()
	if !ok || v != 7 {
		t.Errorf("3+4 = %d,%v", v, ok)
	}
}

func TestWidthFor(t *testing.T) {
	cases := map[int64]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 255: 8, 256: 9}
	for max, want := range cases {
		if got := WidthFor(max); got != want {
			t.Errorf("WidthFor(%d) = %d, want %d", max, got, want)
		}
	}
}

func TestAssertOr(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	x, y := b.Var(), b.Var()
	b.AssertOr(x, y)
	b.Assert(x.Not())
	if s.Solve() != sat.Sat {
		t.Fatal("UNSAT")
	}
	if !b.Eval(y) {
		t.Error("y must be true")
	}
	// A clause containing True is dropped entirely.
	before := s.NumClauses()
	b.AssertOr(False, True, x)
	if s.NumClauses() != before {
		t.Error("trivially satisfied clause must not be added")
	}
	// A clause of only False nodes is the empty clause.
	b.AssertOr(False)
	if s.Solve() != sat.Unsat {
		t.Error("empty clause must make the formula unsat")
	}
}

func TestEvalUnmaterialized(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	x := b.Var()
	n := b.And(x, True)
	// Nothing asserted: solving trivially sat; eval of unmaterialized
	// var defaults to false.
	if s.Solve() != sat.Sat {
		t.Fatal("UNSAT")
	}
	if b.Eval(n) {
		t.Error("unmaterialized var should default false")
	}
	if !b.Eval(True) || b.Eval(False) {
		t.Error("constants")
	}
}

func BenchmarkAdder32(bb *testing.B) {
	for i := 0; i < bb.N; i++ {
		s := sat.New()
		b := NewBuilder(s)
		x := b.VarBV(32)
		y := b.VarBV(32)
		sum := b.AddBV(x, y)
		b.Assert(b.EqBV(sum, ConstBV(32, 123456)))
		if s.Solve() != sat.Sat {
			bb.Fatal("UNSAT")
		}
	}
}

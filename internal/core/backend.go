package core

// This file implements multi-backend checking: the Backend option, the
// cost-based router that picks the polynomial reads-from engine or a
// SAT strategy per check, and the rf check path itself. The router is
// conservative by construction — the rf backend is only consulted on
// programs its Scan proves to be inside the exactly-modeled fragment,
// and any rf failure (inapplicability discovered late, budget
// exhaustion) degrades to SAT, never the reverse.

import (
	"errors"
	"fmt"
	"time"

	"checkfence/internal/encode"
	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
	"checkfence/internal/rf"
	"checkfence/internal/spec"
	"checkfence/internal/trace"
)

// Backend selects the verdict engine of a check.
type Backend int

const (
	// BackendAuto (the default) routes per check: the polynomial
	// reads-from engine when the program is in its fragment and the
	// static cost model predicts a win, otherwise SAT with the
	// configured parallelism — stripped to a serial solve when the
	// encoded formula is too small for portfolio or cube setup costs
	// to amortize.
	BackendAuto Backend = iota
	// BackendRF forces the reads-from engine; if it cannot produce a
	// verdict the degradation ladder falls back to SAT.
	BackendRF
	// BackendSAT forces a serial SAT solve (no portfolio, no cube).
	BackendSAT
	// BackendPortfolio forces portfolio SAT solving.
	BackendPortfolio
	// BackendCube forces cube-and-conquer SAT solving.
	BackendCube
)

func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendRF:
		return "rf"
	case BackendSAT:
		return "sat"
	case BackendPortfolio:
		return "portfolio"
	case BackendCube:
		return "cube"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend converts a -backend flag value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "auto", "":
		return BackendAuto, nil
	case "rf":
		return BackendRF, nil
	case "sat", "serial":
		return BackendSAT, nil
	case "portfolio":
		return BackendPortfolio, nil
	case "cube":
		return BackendCube, nil
	}
	return 0, fmt.Errorf("core: unknown backend %q (auto, rf, sat, portfolio, cube)", s)
}

// normalizeBackend reconciles the Backend selection with the
// parallelism knobs: explicit single-strategy backends override them.
func (o Options) normalizeBackend() Options {
	switch o.Backend {
	case BackendSAT:
		o.Portfolio, o.ShareClauses, o.Cube = 0, false, 0
	case BackendPortfolio:
		if o.Portfolio < 2 {
			o.Portfolio = 4
			o.ShareClauses = true
		}
		o.Cube = 0
	case BackendCube:
		if o.Cube < 2 {
			o.Cube = 4
		}
		o.Portfolio, o.ShareClauses = 0, false
	}
	return o
}

// Static cost model of the router. The rf enumeration is worst-case
// exponential in residual case splits and in loads-per-location, so
// `auto` only routes to it when every dimension is litmus-scale; an
// explicit -backend rf skips the caps and relies on the budget (which
// degrades to SAT on exhaustion).
const (
	rfMaxInstrs     = 512
	rfMaxThreads    = 8
	rfMaxEvents     = 64
	rfMaxLocs       = 16
	rfMaxCandidates = 1 << 16
)

// Small-instance guard of the auto backend: below these post-encode
// formula sizes, portfolio racing and cube-and-conquer lose more to
// per-worker formula cloning and preprocessing than they recover
// (BENCH_solve rows of the msn/Tpc2 class show 0.4-0.5x "speedups"),
// so `auto` strips them and solves serially. Explicit backends are
// never overridden.
const (
	autoSerialMaxClauses = 150_000
	autoSerialMaxVars    = 40_000
)

// routeDecision is the router's choice for one check attempt.
type routeDecision struct {
	useRF  bool
	prog   *rf.Program
	reason string
	err    error // set when a forced rf backend is inapplicable
}

// routeRF decides whether this attempt runs on the reads-from engine.
func routeRF(opts Options, unrolled *harness.Unrolled) routeDecision {
	switch opts.Backend {
	case BackendAuto, BackendRF:
	default:
		return routeDecision{reason: opts.Backend.String()}
	}
	if opts.SpecSource == SpecRef && opts.Spec == nil {
		return routeDecision{reason: "sat (refset mining configured)",
			err: fmt.Errorf("%w: refset mining configured", rf.ErrNotApplicable)}
	}
	if len(opts.Assume) > 0 {
		// Cube assumptions name SAT order variables; the reads-from
		// engine has none. Declining here (instead of silently solving
		// the whole check) keeps a fan-out worker restricted to its
		// cube.
		return routeDecision{reason: "sat (cube assumptions)",
			err: fmt.Errorf("%w: cube assumptions require the SAT backend", rf.ErrNotApplicable)}
	}
	p, err := rf.Scan(unrolled.Threads)
	if err != nil {
		return routeDecision{reason: "sat (" + err.Error() + ")", err: err}
	}
	if opts.Backend == BackendRF {
		return routeDecision{useRF: true, prog: p, reason: "rf (forced)"}
	}
	if unrolled.Instrs > rfMaxInstrs || len(unrolled.Threads) > rfMaxThreads ||
		p.NumEvents() > rfMaxEvents || p.NumLocs() > rfMaxLocs ||
		p.Candidates() > rfMaxCandidates {
		return routeDecision{reason: fmt.Sprintf(
			"sat (rf cost model: %d instrs, %d threads, %d events, %d locations, %d candidates)",
			unrolled.Instrs, len(unrolled.Threads), p.NumEvents(), p.NumLocs(), p.Candidates())}
	}
	return routeDecision{useRF: true, prog: p, reason: "rf"}
}

// runCheckRF performs mining and the inclusion check on the reads-from
// engine, mirroring the SAT path's contract: done=true when a
// counterexample was found. Fragment programs cannot reach runtime
// errors, so the sequential-bug phase is vacuous here.
func runCheckRF(res *Result, built *harness.Built, unrolled *harness.Unrolled,
	p *rf.Program, opts Options) (bool, error) {

	var est rf.EnumStats
	defer func() {
		res.Stats.RFSteps += est.Steps
		res.Stats.RFExecs += est.Execs
		res.Stats.RFConsistent += est.Consistent
		res.Stats.RFSplits += est.Splits
	}()
	budget := rf.Budget{}

	mineStart := time.Now()
	theSpec := opts.Spec
	if theSpec == nil {
		set, st, err := p.Observations(memmodel.Serial, built.Entries, budget)
		est.Add(st)
		if err != nil {
			return false, fmt.Errorf("rf mining: %w", err)
		}
		theSpec = set
	}
	res.Spec = theSpec
	res.Stats.ObsSetSize = theSpec.Len()
	res.Stats.MineTime += time.Since(mineStart)

	refuteStart := time.Now()
	names, _ := trace.HarnessNames(built, unrolled)
	cex, st, err := p.CheckInclusion(opts.Model, built.Entries, theSpec, names, budget)
	est.Add(st)
	res.Stats.RefuteTime += time.Since(refuteStart)
	if err != nil {
		return false, fmt.Errorf("rf inclusion: %w", err)
	}
	if cex == nil {
		res.Pass = true
		return false, nil // passed at these bounds; caller probes
	}
	res.Pass = false
	res.Cex = cex
	if err := validateCex(cex, built, unrolled, opts); err != nil {
		return false, err
	}
	return true, nil
}

// rfFallbackable reports whether an rf failure may silently fall back
// to SAT within the same attempt: only the engine's own
// inapplicability and budget signals qualify. Anything else (a
// validation failure, an internal error) must propagate — falling back
// would hide a bug in CheckFence itself.
func rfFallbackable(err error) bool {
	return errors.Is(err, rf.ErrNotApplicable) || errors.Is(err, rf.ErrBudget)
}

// solveStrategy maps the parallelism options onto a spec.Strategy like
// Options.strategy, additionally applying the auto backend's
// small-instance guard against the encoder's post-encode formula size.
func (o Options) solveStrategy(e *encode.Encoder, ps *spec.ParStats, res *Result) spec.Strategy {
	strat := o.strategy(ps)
	if o.Backend != BackendAuto || (strat.Portfolio <= 1 && strat.Cube <= 1) {
		return strat
	}
	st := e.S.Stats()
	if st.Clauses < autoSerialMaxClauses && st.Vars < autoSerialMaxVars {
		strat.Portfolio, strat.ShareClauses, strat.Cube = 0, false, 0
		res.Stats.AutoSerial = true
	}
	return strat
}
